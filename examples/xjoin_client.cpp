// xjoin_client: query a running xjoin_server over the framed-socket
// protocol, with the library's full retry/backoff policy in play.
//
//   ./build/examples/xjoin_client [--port=N] [--query=TEXT] [--tenant=T]
//
// Defaults match the xjoin_server demo database. The client first pings
// (health/readiness), then runs the query and prints the rows; a shed
// or admission rejection is retried honoring the server's retry hint.
#include <cstdio>
#include <cstring>
#include <string>

#include "net/client.h"

namespace {

std::string FlagOr(int argc, char** argv, const char* name,
                   const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xjoin;

  net::ClientOptions options;
  options.port = std::atoi(FlagOr(argc, argv, "port", "7788").c_str());
  net::XJoinClient client(options);

  auto health = client.Ping();
  if (!health.ok()) {
    std::fprintf(stderr, "ping failed: %s\n",
                 health.status().ToString().c_str());
    return 1;
  }
  std::printf("server %s: %d connections, %d in-flight, %lld served\n",
              health->draining ? "DRAINING" : "ready",
              health->active_connections, health->inflight,
              static_cast<long long>(health->served));

  net::QueryRequest request;
  request.text = FlagOr(argc, argv, "query", "Q(*) := R");
  request.tenant = FlagOr(argc, argv, "tenant", "");
  auto result = client.Query(request);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  for (size_t c = 0; c < result->columns.size(); ++c) {
    std::printf("%s%s", c ? "\t" : "", result->columns[c].c_str());
  }
  std::printf("\n");
  for (const auto& row : result->rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%s", c ? "\t" : "", row[c].c_str());
    }
    std::printf("\n");
  }
  const net::ClientStats& stats = client.stats();
  std::fprintf(stderr, "(%lld rows; %lld retries, %lld reconnects)\n",
               static_cast<long long>(result->rows.size()),
               static_cast<long long>(stats.retries),
               static_cast<long long>(stats.reconnects));
  return 0;
}
