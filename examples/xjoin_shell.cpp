// xjoin_shell: a tiny REPL over MultiModelDatabase. Loads CSV tables
// and XML documents from disk, answers textual multi-model queries with
// either engine, and explains plans. Also usable non-interactively:
//
//   printf 'demo\nquery ... \n' | ./build/examples/xjoin_shell
//
// Commands:
//   load csv  NAME FILE     register a relation from a CSV file
//   load xml  NAME FILE     register an XML document
//   demo                    register the Figure-1 sample data (R, invoices)
//   query  TEXT             evaluate with XJoin
//   baseline TEXT           evaluate with the baseline engine
//   explain TEXT            print the plan and size bound
//   list                    registered relations and documents
//   help | quit
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "core/database.h"

namespace {

using namespace xjoin;

void PrintRelation(const MultiModelDatabase& db, const Relation& rel,
                   size_t max_rows = 20) {
  const auto& schema = rel.schema();
  for (size_t c = 0; c < schema.size(); ++c) {
    std::printf("%s%s", c ? "\t" : "", schema.attribute(c).c_str());
  }
  std::printf("\n");
  for (size_t r = 0; r < std::min(max_rows, rel.num_rows()); ++r) {
    for (size_t c = 0; c < rel.num_columns(); ++c) {
      std::printf("%s%s", c ? "\t" : "",
                  db.dictionary().Decode(rel.at(r, c)).c_str());
    }
    std::printf("\n");
  }
  if (rel.num_rows() > max_rows) {
    std::printf("... (%zu rows total)\n", rel.num_rows());
  } else {
    std::printf("(%zu rows)\n", rel.num_rows());
  }
}

void LoadDemo(MultiModelDatabase* db) {
  auto st = db->RegisterRelationCsv("R",
                                    "orderID,userID\n"
                                    "10963,jack\n"
                                    "20134,tom\n"
                                    "35768,bob\n");
  auto st2 = db->RegisterDocumentXml("invoices", R"(
      <invoices>
        <invoice><orderID>10963</orderID>
          <orderLine><ISBN>978-3-16-1</ISBN><price>30</price></orderLine>
        </invoice>
        <invoice><orderID>20134</orderID>
          <orderLine><ISBN>634-3-12-2</ISBN><price>20</price></orderLine>
        </invoice>
      </invoices>)");
  if (!st.ok() || !st2.ok()) {
    std::printf("demo data already loaded\n");
  } else {
    std::printf("loaded relation R and document invoices; try:\n"
                "  query Q(userID, ISBN, price) := R, "
                "invoices:invoice[orderID]/orderLine[ISBN]/price\n");
  }
}

int RunShell() {
  MultiModelDatabase db;
  std::string line;
  bool interactive = true;
  while (true) {
    if (interactive) std::printf("xjoin> ");
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream in{std::string(trimmed)};
    std::string command;
    in >> command;

    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      std::printf(
          "commands: load csv NAME FILE | load xml NAME FILE | demo |\n"
          "          query TEXT | baseline TEXT | explain TEXT | list | "
          "quit\n");
    } else if (command == "demo") {
      LoadDemo(&db);
    } else if (command == "load") {
      std::string kind, name, file;
      in >> kind >> name >> file;
      Status st = Status::InvalidArgument("usage: load csv|xml NAME FILE");
      if (kind == "csv" && !name.empty() && !file.empty()) {
        Dictionary* dict = db.mutable_dictionary();
        auto rel = ReadCsvFile(file, CsvOptions{}, dict);
        st = rel.ok() ? db.RegisterRelation(name, *std::move(rel))
                      : rel.status();
      } else if (kind == "xml" && !name.empty() && !file.empty()) {
        std::ifstream f(file);
        if (!f) {
          st = Status::IOError("cannot open " + file);
        } else {
          std::ostringstream buf;
          buf << f.rdbuf();
          st = db.RegisterDocumentXml(name, buf.str());
        }
      }
      std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
    } else if (command == "list") {
      for (const auto& name : db.RelationNames()) {
        auto rel = db.relation(name);
        std::printf("relation %s  [%zu rows]\n", name.c_str(),
                    (*rel)->num_rows());
      }
      for (const auto& name : db.DocumentNames()) {
        auto index = db.document_index(name);
        std::printf("document %s  [%zu nodes]\n", name.c_str(),
                    (*index)->doc().num_nodes());
      }
    } else if (command == "query" || command == "baseline" ||
               command == "explain") {
      std::string rest;
      std::getline(in, rest);
      std::string text(TrimWhitespace(rest));
      if (command == "explain") {
        auto plan = db.Explain(text);
        std::printf("%s",
                    plan.ok()
                        ? plan->c_str()
                        : (plan.status().ToString() + "\n").c_str());
      } else {
        Engine engine =
            command == "query" ? Engine::kXJoin : Engine::kBaseline;
        Metrics metrics;
        Timer timer;
        auto result = db.Query(text, engine, &metrics);
        if (!result.ok()) {
          std::printf("%s\n", result.status().ToString().c_str());
        } else {
          PrintRelation(db, *result);
          std::printf("[%s, %.2fms, max intermediate %lld]\n",
                      command == "query" ? "xjoin" : "baseline",
                      timer.ElapsedSeconds() * 1e3,
                      static_cast<long long>(
                          std::max(metrics.Get("xjoin.max_intermediate"),
                                   metrics.Get("baseline.max_intermediate"))));
        }
      }
    } else {
      std::printf("unknown command '%s' (try help)\n", command.c_str());
    }
  }
  return 0;
}

}  // namespace

int main() { return RunShell(); }
