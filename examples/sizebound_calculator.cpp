// Size-bound calculator: a small command-line tool around the Section-3
// machinery. Give it a twig pattern (and optionally relational schemas)
// and it prints the decomposition, the Equation-1 LP, and the worst-case
// size bound — the paper's Example 3.3 workflow as a utility.
//
//   ./build/examples/sizebound_calculator 'A[B,D]//C/E//F[H]//G'
//       'R1:B,D' 'R2:F,G,H'    (all on one command line)
//
// With no arguments it runs the paper's example. Relational schemas are
// NAME:attr1,attr2,...; every input is assumed to have size n (the
// uniform analytical setting); the tool prints the bound exponent rho*
// such that |Q| <= n^rho*.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/decompose.h"
#include "lp/edge_cover.h"
#include "lp/hypergraph.h"
#include "xml/twig.h"

int main(int argc, char** argv) {
  using namespace xjoin;

  std::string pattern = "A[B,D]//C/E//F[H]//G";
  std::vector<std::string> relation_specs = {"R1:B,D", "R2:F,G,H"};
  if (argc > 1) {
    pattern = argv[1];
    relation_specs.clear();
    for (int i = 2; i < argc; ++i) relation_specs.push_back(argv[i]);
  }

  auto twig = Twig::Parse(pattern);
  if (!twig.ok()) {
    std::fprintf(stderr, "twig error: %s\n", twig.status().ToString().c_str());
    return 1;
  }
  auto decomposition = DecomposeTwig(*twig);
  if (!decomposition.ok()) {
    std::fprintf(stderr, "%s\n", decomposition.status().ToString().c_str());
    return 1;
  }

  std::printf("twig:          %s\n", twig->ToString().c_str());
  std::printf("transformed:   %s\n",
              DecompositionToString(*twig, *decomposition).c_str());

  Hypergraph graph;
  const double n = 2.0;  // any uniform size; rho* is size-independent
  for (const auto& spec : relation_specs) {
    auto colon = spec.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad relation spec (want NAME:a,b,c): %s\n",
                   spec.c_str());
      return 1;
    }
    HyperEdge edge;
    edge.name = spec.substr(0, colon);
    edge.attributes = SplitString(spec.substr(colon + 1), ',');
    edge.size = n;
    auto st = graph.AddEdge(edge);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  for (size_t p = 0; p < decomposition->paths.size(); ++p) {
    HyperEdge edge;
    edge.name = "P" + std::to_string(p + 1);
    edge.attributes = decomposition->paths[p].attributes;
    edge.size = n;
    auto st = graph.AddEdge(edge);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  auto cover = SolveFractionalEdgeCover(graph);
  if (!cover.ok()) {
    std::fprintf(stderr, "%s\n", cover.status().ToString().c_str());
    return 1;
  }

  std::printf("\nhypergraph (all |edges| = n):\n%s", graph.ToString().c_str());
  std::printf("\nfractional edge cover (primal x_R):\n");
  for (size_t e = 0; e < graph.edges().size(); ++e) {
    if (cover->edge_weights[e] > 1e-9) {
      std::printf("  x[%s] = %s\n", graph.edges()[e].name.c_str(),
                  FormatDouble(cover->edge_weights[e]).c_str());
    }
  }
  std::printf("\ndual attribute weights (Equation 1 y_a, in log-n units):\n");
  for (size_t a = 0; a < graph.attributes().size(); ++a) {
    double y = cover->attribute_weights[a];
    if (y > 1e-9) {
      std::printf("  y[%s] = %s\n", graph.attributes()[a].c_str(),
                  FormatDouble(y / std::log2(n)).c_str());
    }
  }
  std::printf("\nworst-case size bound: |Q| <= n^%s\n",
              FormatDouble(cover->uniform_exponent).c_str());
  return 0;
}
