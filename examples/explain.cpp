// EXPLAIN: render a query's prepared execution plan without (and then
// with) running it.
//
// Registers the paper's Figure-1 bookstore data in a MultiModelDatabase,
// prints ExplainXJoin for the multi-model query — inputs with
// trie-cache provenance, transform(Sx), the expansion order with
// per-level lead rationale and chosen intersection kernel, the shard
// plan, the execution mode with the host's SIMD dispatch level, and
// the worst-case size bound — then runs the query twice to show the
// plan cache taking over (the second EXPLAIN reports the hit and the
// pinned tries).
//
//   ./build/examples/explain
#include <cstdio>

#include "core/database.h"

int main() {
  using namespace xjoin;

  MultiModelDatabase db;
  Status status = db.RegisterRelationCsv("R",
                                         "orderID,userID\n"
                                         "10963,jack\n"
                                         "20134,tom\n"
                                         "35768,bob\n");
  if (!status.ok()) {
    std::fprintf(stderr, "register error: %s\n", status.ToString().c_str());
    return 1;
  }
  status = db.RegisterDocumentXml("invoices", R"(
      <invoices>
        <invoice><orderID>10963</orderID>
          <orderLine><ISBN>978-3-16-1</ISBN><price>30</price></orderLine>
        </invoice>
        <invoice><orderID>20134</orderID>
          <orderLine><ISBN>634-3-12-2</ISBN><price>20</price></orderLine>
        </invoice>
      </invoices>)");
  if (!status.ok()) {
    std::fprintf(stderr, "register error: %s\n", status.ToString().c_str());
    return 1;
  }

  const std::string query =
      "Q(userID, ISBN, price) := R, "
      "invoices : invoice[orderID]/orderLine[ISBN]/price";

  auto explained = db.ExplainXJoin(query);
  if (!explained.ok()) {
    std::fprintf(stderr, "explain error: %s\n",
                 explained.status().ToString().c_str());
    return 1;
  }
  std::printf("=== EXPLAIN (cold: the plan was just prepared) ===\n\n%s\n",
              explained->c_str());

  // Run the query twice: the first execution reuses the plan EXPLAIN
  // just prepared, the second is a pure plan-cache hit.
  for (int run = 1; run <= 2; ++run) {
    Metrics metrics;
    XJoinOptions options;
    options.metrics = &metrics;
    auto result = db.QueryXJoin(query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "run %d: %lld rows, plan cache %lld hit(s) %lld miss(es), "
        "tries built %lld\n",
        run, static_cast<long long>(result->num_rows()),
        static_cast<long long>(metrics.Get("db.plan_cache.hits")),
        static_cast<long long>(metrics.Get("db.plan_cache.misses")),
        static_cast<long long>(metrics.Get("trie.builds")));
  }

  auto warm = db.ExplainXJoin(query);
  if (!warm.ok()) {
    std::fprintf(stderr, "explain error: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== EXPLAIN (warm: served from the plan cache) ===\n\n%s",
              warm->c_str());

  // Admission counters: run one query through a tenant pool and cancel
  // another before it starts, then read the db-wide totals the warm
  // EXPLAIN above also reports on its "admission:" line.
  status = db.CreateTenantPool("bookstore");
  if (!status.ok()) {
    std::fprintf(stderr, "pool error: %s\n", status.ToString().c_str());
    return 1;
  }
  Session session = db.OpenSession();
  QueryOptions tenanted;
  tenanted.tenant = "bookstore";
  if (auto r = session.Query(query, tenanted); !r.ok()) {
    std::fprintf(stderr, "query error: %s\n", r.status().ToString().c_str());
    return 1;
  }
  Session doomed = db.OpenSession();
  doomed.Cancel("example shutdown");
  auto cancelled = doomed.Query(query);
  CacheStats stats = db.cache_stats();
  std::printf(
      "\n=== Admission (after one tenant-pool query + one cancel) ===\n\n"
      "cancelled query returned: %s\n"
      "db-wide: %lld admitted, %lld queued, %lld rejected, %lld cancelled\n",
      cancelled.status().ToString().c_str(),
      static_cast<long long>(stats.admission_admitted),
      static_cast<long long>(stats.admission_queued),
      static_cast<long long>(stats.admission_rejected),
      static_cast<long long>(stats.admission_cancelled));
  return 0;
}
