// xjoin_server: stand up the framed-socket serving front-end over a
// small demo database and serve until SIGINT/SIGTERM, then drain
// gracefully.
//
//   ./build/examples/xjoin_server [--port=N] [--drain-ms=N]
//
// The demo database carries the paper's Figure 1 shape: a relational
// order table, an XML invoice document, and a "demo" tenant pool so
// remote callers can exercise admission control (set tenant="demo" on
// the request). Pair with ./build/examples/xjoin_client.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "core/database.h"
#include "net/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

// "--name=value" flag lookup; returns fallback when absent.
long FlagOr(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xjoin;

  MultiModelDatabase db;
  Status st = db.RegisterRelationCsv("R",
                                     "orderID,userID\n"
                                     "10963,jack\n"
                                     "20134,tom\n"
                                     "35768,bob\n");
  if (st.ok()) {
    st = db.RegisterDocumentXml("invoices", R"(
      <invoices>
        <invoice><orderID>10963</orderID>
          <orderLine><ISBN>978-3-16-1</ISBN><price>30</price></orderLine>
        </invoice>
        <invoice><orderID>20134</orderID>
          <orderLine><ISBN>634-3-12-2</ISBN><price>20</price></orderLine>
        </invoice>
      </invoices>)");
  }
  if (st.ok()) {
    TenantPoolOptions pool;
    pool.max_concurrent = 2;
    pool.max_queue_depth = 4;
    pool.queue_deadline_micros = 50 * 1000;
    st = db.CreateTenantPool("demo", pool);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  net::ServerOptions options;
  options.port = static_cast<int>(FlagOr(argc, argv, "port", 7788));
  net::XJoinServer server(&db, options);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%d  (try: Q(*) := R)\n", server.port());
  std::printf("Ctrl-C drains and exits.\n");

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const long drain_ms = FlagOr(argc, argv, "drain-ms", 2000);
  std::printf("draining (up to %ld ms)...\n", drain_ms);
  server.Shutdown(drain_ms * 1000);

  const net::ServerStats stats = server.stats();
  std::printf(
      "served_ok=%lld served_error=%lld shed=%lld evicted=%lld "
      "cancelled_disconnect=%lld cancelled_drain=%lld\n",
      static_cast<long long>(stats.served_ok),
      static_cast<long long>(stats.served_error),
      static_cast<long long>(stats.shed_inflight + stats.shed_draining +
                             stats.rejected_conn_limit),
      static_cast<long long>(stats.evicted_slow),
      static_cast<long long>(stats.cancelled_disconnect),
      static_cast<long long>(stats.cancelled_drain));
  return 0;
}
