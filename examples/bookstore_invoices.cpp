// Domain example 1: order/invoice reconciliation (the paper's Figure 1
// scenario at realistic scale). Generates a bookstore instance, runs the
// enriched multi-model query with both engines, verifies they agree, and
// reports per-engine statistics — the workflow a downstream user would
// follow to decide which engine to deploy.
//
//   ./build/examples/bookstore_invoices [scale]
#include <cstdio>
#include <cstdlib>

#include "common/metrics.h"
#include "core/baseline.h"
#include "core/bound.h"
#include "core/xjoin.h"
#include "relational/operators.h"
#include "workload/bookstore.h"

int main(int argc, char** argv) {
  using namespace xjoin;

  int64_t scale = argc > 1 ? std::atoll(argv[1]) : 4;
  BookstoreOptions options;
  options.num_orders = 500 * scale;
  options.num_invoices = 400 * scale;
  options.num_users = 100 * scale;
  options.num_books = 150 * scale;
  std::printf("generating bookstore instance (scale %lld): %lld orders, "
              "%lld invoices...\n",
              static_cast<long long>(scale),
              static_cast<long long>(options.num_orders),
              static_cast<long long>(options.num_invoices));
  BookstoreInstance inst = MakeBookstore(options);
  std::printf("document: %zu XML nodes\n", inst.doc->num_nodes());

  MultiModelQuery query = inst.EnrichedQuery();

  // What does the theory promise? Print the data-dependent bound first.
  auto bound = ComputeBound(query);
  if (bound.ok()) {
    std::printf("worst-case size bound: 2^%.2f tuples\n",
                bound->cover.log2_bound);
  }

  // XJoin.
  Metrics xj_metrics;
  XJoinOptions xj_options;
  xj_options.metrics = &xj_metrics;
  Timer timer;
  auto xj = ExecuteXJoin(query, xj_options);
  double xj_seconds = timer.ElapsedSeconds();
  if (!xj.ok()) {
    std::fprintf(stderr, "XJoin failed: %s\n", xj.status().ToString().c_str());
    return 1;
  }

  // Baseline.
  Metrics base_metrics;
  BaselineOptions base_options;
  base_options.metrics = &base_metrics;
  timer.Restart();
  auto base = ExecuteBaseline(query, base_options);
  double base_seconds = timer.ElapsedSeconds();
  if (!base.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }

  auto base_proj = Project(*base, xj->schema().attributes());
  bool agree = base_proj.ok() && RelationsEqualAsSets(*xj, *base_proj);
  std::printf("\nQ(userID, country, ISBN, genre, price): %zu tuples "
              "(engines agree: %s)\n",
              xj->num_rows(), agree ? "yes" : "NO — BUG");

  std::printf("\n%-22s %12s %12s\n", "", "XJoin", "baseline");
  std::printf("%-22s %11.2fms %11.2fms\n", "running time", xj_seconds * 1e3,
              base_seconds * 1e3);
  std::printf("%-22s %12lld %12lld\n", "max intermediate",
              static_cast<long long>(xj_metrics.Get("xjoin.max_intermediate")),
              static_cast<long long>(
                  base_metrics.Get("baseline.max_intermediate")));

  // Show a few result rows, decoded.
  const Dictionary& dict = *inst.dict;
  std::printf("\nsample results:\n");
  for (size_t r = 0; r < std::min<size_t>(5, xj->num_rows()); ++r) {
    std::printf("  user=%s country=%s isbn=%s genre=%s price=%s\n",
                dict.Decode(xj->at(r, 0)).c_str(),
                dict.Decode(xj->at(r, 1)).c_str(),
                dict.Decode(xj->at(r, 2)).c_str(),
                dict.Decode(xj->at(r, 3)).c_str(),
                dict.Decode(xj->at(r, 4)).c_str());
  }
  return agree ? 0 : 1;
}
