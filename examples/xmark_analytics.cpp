// Domain example 2: auction analytics over XMark-like data. Runs two
// multi-model queries (a flat closed-auction join and a deep
// open-auction twig), aggregates the answers into per-category /
// per-country report tables, and prints them — the "analytics on mixed
// relational + XML data" use case from the paper's motivation.
//
//   ./build/examples/xmark_analytics [scale]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/xjoin.h"
#include "workload/xmark.h"

int main(int argc, char** argv) {
  using namespace xjoin;

  int64_t scale = argc > 1 ? std::atoll(argv[1]) : 2;
  XMarkOptions options;
  options.num_items = 200 * scale;
  options.num_persons = 100 * scale;
  options.num_open_auctions = 120 * scale;
  options.num_closed_auctions = 100 * scale;
  XMarkInstance inst = MakeXMark(options);
  const Dictionary& dict = *inst.dict;
  std::printf("XMark-like document: %zu nodes, %lld items, %lld persons\n\n",
              inst.doc->num_nodes(), static_cast<long long>(options.num_items),
              static_cast<long long>(options.num_persons));

  // Query 1: closed auctions joined with item categories and buyer
  // countries; aggregate revenue by (category, country).
  {
    MultiModelQuery query = inst.ClosedAuctionQuery();
    auto result = ExecuteXJoin(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query 1 failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    // Output schema: itemref, category, buyer, country, price.
    std::map<std::pair<std::string, std::string>, int64_t> revenue;
    for (size_t r = 0; r < result->num_rows(); ++r) {
      const std::string& category = dict.Decode(result->at(r, 1));
      const std::string& country = dict.Decode(result->at(r, 3));
      revenue[{category, country}] += std::atoll(
          dict.Decode(result->at(r, 4)).c_str());
    }
    std::printf(
        "closed-auction revenue by (category, country) — top 10 of %zu:\n",
                revenue.size());
    std::multimap<int64_t, std::pair<std::string, std::string>> by_revenue;
    for (const auto& [key, total] : revenue) by_revenue.emplace(total, key);
    int shown = 0;
    for (auto it = by_revenue.rbegin(); it != by_revenue.rend() && shown < 10;
         ++it, ++shown) {
      std::printf("  %-8s %-10s %8lld\n", it->second.first.c_str(),
                  it->second.second.c_str(), static_cast<long long>(it->first));
    }
  }

  // Query 2: deep twig — which categories attract the most bidders?
  {
    MultiModelQuery query = inst.OpenAuctionQuery();
    auto result = ExecuteXJoin(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query 2 failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    // Output schema: itemref, category, personref.
    std::map<std::string, int64_t> bids_per_category;
    for (size_t r = 0; r < result->num_rows(); ++r) {
      ++bids_per_category[dict.Decode(result->at(r, 1))];
    }
    std::printf("\ndistinct (item, bidder) pairs per category:\n");
    for (const auto& [category, count] : bids_per_category) {
      std::printf("  %-8s %6lld\n", category.c_str(),
                  static_cast<long long>(count));
    }
  }
  return 0;
}
