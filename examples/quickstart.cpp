// Quickstart: the paper's Figure 1 in ~60 lines.
//
// Build a relational table R(orderID, userID), parse an XML invoice
// document, express the twig query invoice[orderID]/orderLine[ISBN]/price,
// and evaluate Q(userID, ISBN, price) with the worst-case optimal XJoin.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "common/dictionary.h"
#include "core/xjoin.h"
#include "relational/csv.h"
#include "xml/node_index.h"
#include "xml/parser.h"

int main() {
  using namespace xjoin;

  // One dictionary shared by both models: that is what makes the
  // cross-model equi-join meaningful.
  Dictionary dict;

  // --- Relational side: load R(orderID, userID) from CSV. ------------
  const char* csv =
      "orderID,userID\n"
      "10963,jack\n"
      "20134,tom\n"
      "35768,bob\n";
  auto orders = ReadCsv(csv, CsvOptions{}, &dict);
  if (!orders.ok()) {
    std::fprintf(stderr, "CSV error: %s\n", orders.status().ToString().c_str());
    return 1;
  }

  // --- XML side: parse the invoices document. -------------------------
  const char* xml = R"(
    <invoices>
      <invoice><orderID>10963</orderID>
        <orderLine><ISBN>978-3-16-1</ISBN><price>30</price>
                   <discount>0.1</discount></orderLine>
      </invoice>
      <invoice><orderID>20134</orderID>
        <orderLine><ISBN>634-3-12-2</ISBN><price>20</price>
                   <discount>0.3</discount></orderLine>
      </invoice>
    </invoices>)";
  auto doc = ParseXml(xml);
  if (!doc.ok()) {
    std::fprintf(stderr, "XML error: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  NodeIndex index = NodeIndex::Build(&*doc, &dict);

  // --- The multi-model query. -----------------------------------------
  auto twig = Twig::Parse("invoice[orderID]/orderLine[ISBN]/price");
  if (!twig.ok()) {
    std::fprintf(stderr, "twig error: %s\n", twig.status().ToString().c_str());
    return 1;
  }
  MultiModelQuery query;
  query.relations.push_back({"R", &*orders});
  query.twigs.push_back(TwigInput{*std::move(twig), &index});
  query.output_attributes = {"userID", "ISBN", "price"};

  // --- Evaluate with XJoin and print. ----------------------------------
  Metrics metrics;
  XJoinOptions options;
  options.metrics = &metrics;
  auto result = ExecuteXJoin(query, options);
  if (!result.ok()) {
    std::fprintf(stderr, "XJoin error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Q(userID, ISBN, price):\n");
  for (size_t r = 0; r < result->num_rows(); ++r) {
    std::printf("  %-6s %-12s %s\n", dict.Decode(result->at(r, 0)).c_str(),
                dict.Decode(result->at(r, 1)).c_str(),
                dict.Decode(result->at(r, 2)).c_str());
  }
  std::printf("\nmax intermediate result: %lld tuples\n",
              static_cast<long long>(metrics.Get("xjoin.max_intermediate")));
  return 0;
}
