#include "twigjoin/structural_join.h"

#include <algorithm>

namespace xjoin {

std::vector<NodePair> StructuralJoin(const XmlDocument& doc,
                                     const std::vector<NodeId>& ancestors,
                                     const std::vector<NodeId>& descendants,
                                     TwigAxis axis) {
  std::vector<NodePair> out;
  std::vector<NodeId> stack;  // strictly nested ancestors, outermost first
  size_t ai = 0;
  for (NodeId d : descendants) {
    // Push every ancestor-list node that starts before d.
    while (ai < ancestors.size() && ancestors[ai] < d) {
      NodeId a = ancestors[ai];
      // Pop ancestors whose region ended before a starts.
      while (!stack.empty() && doc.node(stack.back()).subtree_end < a) {
        stack.pop_back();
      }
      stack.push_back(a);
      ++ai;
    }
    // Pop ancestors whose region ended before d.
    while (!stack.empty() && doc.node(stack.back()).subtree_end < d) {
      stack.pop_back();
    }
    // Every remaining stack element contains d.
    for (NodeId a : stack) {
      if (axis == TwigAxis::kChild && doc.node(d).parent != a) continue;
      out.emplace_back(a, d);
    }
  }
  // The scan above appends in (descendant, stack-depth) order; normalize to
  // (descendant, ancestor).
  std::sort(out.begin(), out.end(),
            [](const NodePair& x, const NodePair& y) {
              if (x.second != y.second) return x.second < y.second;
              return x.first < y.first;
            });
  return out;
}

}  // namespace xjoin
