// TwigStack (Bruno, Koudas, Srivastava, SIGMOD 2002): the holistic twig
// join. Streams every query node's candidates in document order,
// maintains one stack of nested partial ancestors per query node, and
// only pushes elements that (for A-D-only twigs) are guaranteed to
// participate in a complete match — emitting compactly-encoded path
// solutions that a final merge joins into twig matches. For twigs with
// parent-child edges TwigStack remains correct but loses the
// no-useless-intermediate guarantee (the classic result), which our
// benchmarks expose.
#ifndef XJOIN_TWIGJOIN_TWIGSTACK_H_
#define XJOIN_TWIGJOIN_TWIGSTACK_H_

#include "common/metrics.h"
#include "common/status.h"
#include "relational/relation.h"
#include "xml/document.h"
#include "xml/node_index.h"
#include "xml/twig.h"

namespace xjoin {

/// Runs TwigStack; returns all embeddings as a node-binding relation
/// over the twig's attributes (same contract as the matchers in
/// twig_matchers.h). Metrics (nullable): "twigstack.pushes",
/// "twigstack.path_solutions", "twigstack.max_intermediate".
Result<Relation> MatchTwigStack(const XmlDocument& doc, const NodeIndex& index,
                                const Twig& twig, Metrics* metrics = nullptr);

}  // namespace xjoin

#endif  // XJOIN_TWIGJOIN_TWIGSTACK_H_
