#include "twigjoin/naive_twig.h"

#include <algorithm>

namespace xjoin {

namespace {

bool TagMatches(const XmlDocument& doc, NodeId node, const std::string& tag) {
  if (tag == "*") return true;
  int32_t code = doc.LookupTag(tag);
  return code >= 0 && doc.node(node).tag == code;
}

bool AxisSatisfied(const XmlDocument& doc, TwigAxis axis, NodeId parent,
                   NodeId child) {
  if (axis == TwigAxis::kChild) return doc.IsParent(parent, child);
  return doc.IsAncestor(parent, child);
}

struct SearchState {
  const XmlDocument* doc;
  const Twig* twig;
  size_t limit;
  std::vector<TwigMatch>* out;
  TwigMatch current;
};

// Expands twig node `q` (whose parent binding, if any, is already in
// current). Returns false to stop the search (limit reached).
bool Expand(SearchState* s, TwigNodeId q) {
  const TwigNode& qn = s->twig->node(q);
  std::vector<NodeId> candidates;
  if (qn.parent == kNullTwigNode) {
    int32_t code = qn.tag == "*" ? -2 : s->doc->LookupTag(qn.tag);
    if (qn.tag != "*" && code < 0) return true;  // tag absent: no matches
    for (size_t i = 0; i < s->doc->num_nodes(); ++i) {
      NodeId id = static_cast<NodeId>(i);
      if (qn.tag == "*" || s->doc->node(id).tag == code)
        candidates.push_back(id);
    }
  } else {
    NodeId bound_parent = s->current[static_cast<size_t>(qn.parent)];
    if (qn.axis == TwigAxis::kChild) {
      for (NodeId c = s->doc->node(bound_parent).first_child; c != kNullNode;
           c = s->doc->node(c).next_sibling) {
        if (TagMatches(*s->doc, c, qn.tag)) candidates.push_back(c);
      }
    } else {
      NodeId end = s->doc->node(bound_parent).subtree_end;
      for (NodeId d = bound_parent + 1; d <= end; ++d) {
        if (TagMatches(*s->doc, d, qn.tag)) candidates.push_back(d);
      }
    }
  }

  for (NodeId cand : candidates) {
    s->current[static_cast<size_t>(q)] = cand;
    if (static_cast<size_t>(q) + 1 == s->twig->num_nodes()) {
      s->out->push_back(s->current);
      if (s->limit != 0 && s->out->size() >= s->limit) return false;
    } else {
      // Twig nodes are in preorder, so node q+1's parent is already bound.
      if (!Expand(s, q + 1)) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<TwigMatch> MatchTwigNaive(const XmlDocument& doc, const Twig& twig,
                                      size_t limit) {
  std::vector<TwigMatch> out;
  if (twig.num_nodes() == 0 || doc.num_nodes() == 0) return out;
  SearchState s{&doc, &twig, limit, &out,
                TwigMatch(twig.num_nodes(), kNullNode)};
  Expand(&s, twig.root());
  return out;
}

bool IsValidMatch(const XmlDocument& doc, const Twig& twig,
                  const TwigMatch& match) {
  if (match.size() != twig.num_nodes()) return false;
  for (size_t i = 0; i < twig.num_nodes(); ++i) {
    const TwigNode& qn = twig.node(static_cast<TwigNodeId>(i));
    NodeId bound = match[i];
    if (bound < 0 || static_cast<size_t>(bound) >= doc.num_nodes())
      return false;
    if (!TagMatches(doc, bound, qn.tag)) return false;
    if (qn.parent != kNullTwigNode) {
      NodeId parent_bound = match[static_cast<size_t>(qn.parent)];
      if (!AxisSatisfied(doc, qn.axis, parent_bound, bound)) return false;
    }
  }
  return true;
}

}  // namespace xjoin
