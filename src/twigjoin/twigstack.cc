#include "twigjoin/twigstack.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/logging.h"
#include "relational/operators.h"

namespace xjoin {

namespace {

constexpr int64_t kInf = std::numeric_limits<int64_t>::max();

struct StackEntry {
  NodeId node;
  int parent_ptr;  // index of top of parent's stack at push time, or -1
};

class TwigStackRunner {
 public:
  TwigStackRunner(const XmlDocument& doc, const NodeIndex& index,
                  const Twig& twig, Metrics* metrics)
      : doc_(doc), twig_(twig), metrics_(metrics) {
    const size_t n = twig.num_nodes();
    streams_.resize(n);
    cursor_.assign(n, 0);
    stacks_.resize(n);
    for (size_t q = 0; q < n; ++q) {
      const TwigNode& node = twig.node(static_cast<TwigNodeId>(q));
      if (node.tag == "*") {
        streams_[q].resize(doc.num_nodes());
        for (size_t i = 0; i < doc.num_nodes(); ++i) {
          streams_[q][i] = static_cast<NodeId>(i);
        }
      } else {
        int32_t code = doc.LookupTag(node.tag);
        if (code >= 0) streams_[q] = index.NodesByTag(code);
      }
    }
    leaves_ = twig.Leaves();
  }

  // Runs phase 1 (path solutions) and phase 2 (merge).
  Result<Relation> Run() {
    while (!End()) {
      NextResult next = GetNext(twig_.root());
      if (!next.alive || Eof(next.node)) break;  // no productive stream left
      TwigNodeId q = next.node;
      size_t qi = static_cast<size_t>(q);
      const TwigNode& node = twig_.node(q);
      if (node.parent != kNullTwigNode) {
        CleanStack(node.parent, NextL(q));
      }
      if (node.parent == kNullTwigNode ||
          !stacks_[static_cast<size_t>(node.parent)].empty()) {
        CleanStack(q, NextL(q));
        int ptr = node.parent == kNullTwigNode
                      ? -1
                      : static_cast<int>(
                            stacks_[static_cast<size_t>(node.parent)].size()) -
                            1;
        StackEntry entry{static_cast<NodeId>(NextL(q)), ptr};
        Advance(q);
        MetricsAdd(metrics_, "twigstack.pushes", 1);
        if (node.children.empty()) {
          EmitPathSolutions(q, entry);
        } else {
          stacks_[qi].push_back(entry);
        }
      } else {
        Advance(q);
      }
    }
    return Merge();
  }

 private:
  bool Eof(TwigNodeId q) const {
    return cursor_[static_cast<size_t>(q)] >=
           streams_[static_cast<size_t>(q)].size();
  }
  int64_t NextL(TwigNodeId q) const {
    size_t qi = static_cast<size_t>(q);
    return Eof(q) ? kInf : streams_[qi][cursor_[qi]];
  }
  int64_t NextEnd(TwigNodeId q) const {
    size_t qi = static_cast<size_t>(q);
    if (Eof(q)) return kInf;
    return doc_.node(streams_[qi][cursor_[qi]]).subtree_end;
  }
  void Advance(TwigNodeId q) { ++cursor_[static_cast<size_t>(q)]; }

  bool End() const {
    for (TwigNodeId leaf : leaves_) {
      if (!Eof(leaf)) return false;
    }
    return true;
  }

  void CleanStack(TwigNodeId q, int64_t next_start) {
    auto& stack = stacks_[static_cast<size_t>(q)];
    while (!stack.empty() &&
           doc_.node(stack.back().node).subtree_end < next_start) {
      stack.pop_back();
    }
  }

  // GetNext with explicit subtree liveness. A subtree is dead when every
  // leaf stream below it is exhausted; dead subtrees mean their ancestor
  // q can never head a *new* complete match, but q's other children must
  // keep streaming (their path solutions still merge with path solutions
  // recorded before the sibling died).
  struct NextResult {
    TwigNodeId node;
    bool alive;
  };

  NextResult GetNext(TwigNodeId q) {
    const TwigNode& node = twig_.node(q);
    if (node.children.empty()) return {q, !Eof(q)};
    bool any_dead = false;
    std::vector<TwigNodeId> ready;  // children whose head is their own
    for (TwigNodeId child : node.children) {
      NextResult r = GetNext(child);
      if (!r.alive) {
        any_dead = true;
        continue;
      }
      if (r.node != child) return r;  // a deeper node must be consumed first
      ready.push_back(child);
    }
    if (ready.empty()) return {q, false};  // whole subtree exhausted
    TwigNodeId nmin = ready[0], nmax = ready[0];
    for (TwigNodeId child : ready) {
      if (NextL(child) < NextL(nmin)) nmin = child;
      if (NextL(child) > NextL(nmax)) nmax = child;
    }
    if (any_dead) {
      // New q-elements are useless (they would need a match in the dead
      // subtree); keep draining the live children against the existing
      // stacks.
      return {nmin, true};
    }
    // Skip q-elements that end before the farthest child head begins:
    // they cannot contain a head of every child stream.
    while (NextEnd(q) < NextL(nmax)) Advance(q);
    if (!Eof(q) && NextL(q) < NextL(nmin)) return {q, true};
    return {nmin, true};
  }

  // Expands all root-to-leaf chains ending at the (not-pushed) leaf
  // entry, appending one row per chain to the leaf's path solutions.
  void EmitPathSolutions(TwigNodeId leaf, const StackEntry& leaf_entry) {
    std::vector<TwigNodeId> path = twig_.PathFromRoot(leaf);
    size_t leaf_index = 0;
    for (; leaf_index < leaves_.size(); ++leaf_index) {
      if (leaves_[leaf_index] == leaf) break;
    }
    auto& rows = path_solutions_[leaf_index];
    std::vector<NodeId> chain(path.size());

    // Level i of the chain corresponds to path[i]; the leaf is last.
    auto expand = [&](auto&& self, size_t level,
                      const StackEntry& entry) -> void {
      chain[level] = entry.node;
      if (level == 0) {
        rows.push_back(chain);
        MetricsAdd(metrics_, "twigstack.path_solutions", 1);
        return;
      }
      const TwigNode& qn = twig_.node(path[level]);
      const auto& parent_stack = stacks_[static_cast<size_t>(path[level - 1])];
      for (int pos = 0; pos <= entry.parent_ptr; ++pos) {
        const StackEntry& cand = parent_stack[static_cast<size_t>(pos)];
        if (qn.axis == TwigAxis::kChild) {
          if (doc_.node(entry.node).parent != cand.node) continue;
        } else if (cand.node >= entry.node) {
          continue;  // repeated tags: require a strictly earlier start
        }
        self(self, level - 1, cand);
      }
    };
    expand(expand, path.size() - 1, leaf_entry);
  }

  Result<Relation> Merge() {
    // One relation per leaf path; columns are the path nodes'
    // attributes holding node-id bindings; merged with hash joins on
    // the shared branching prefixes.
    std::vector<Relation> relations;
    int64_t max_intermediate = 0;
    for (size_t li = 0; li < leaves_.size(); ++li) {
      std::vector<TwigNodeId> path = twig_.PathFromRoot(leaves_[li]);
      std::vector<std::string> attrs;
      attrs.reserve(path.size());
      for (TwigNodeId q : path) attrs.push_back(twig_.node(q).attribute);
      XJ_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
      Relation rel(std::move(schema));
      for (const auto& row : path_solutions_[li]) {
        Tuple tuple(row.size());
        for (size_t c = 0; c < row.size(); ++c) tuple[c] = row[c];
        rel.AppendRow(tuple);
      }
      max_intermediate =
          std::max(max_intermediate, static_cast<int64_t>(rel.num_rows()));
      relations.push_back(std::move(rel));
    }
    std::vector<const Relation*> inputs;
    inputs.reserve(relations.size());
    for (const auto& r : relations) inputs.push_back(&r);
    Metrics local;
    XJ_ASSIGN_OR_RETURN(Relation merged, JoinAll(inputs, &local));
    if (metrics_ != nullptr) {
      metrics_->RecordMax(
          "twigstack.max_intermediate",
          std::max(max_intermediate, local.Get("plan.max_intermediate")));
    }
    return merged;
  }

  const XmlDocument& doc_;
  const Twig& twig_;
  Metrics* metrics_;
  std::vector<std::vector<NodeId>> streams_;
  std::vector<size_t> cursor_;
  std::vector<std::vector<StackEntry>> stacks_;
  std::vector<TwigNodeId> leaves_;
  std::map<size_t, std::vector<std::vector<NodeId>>> path_solutions_;
};

}  // namespace

Result<Relation> MatchTwigStack(const XmlDocument& doc, const NodeIndex& index,
                                const Twig& twig, Metrics* metrics) {
  XJ_RETURN_NOT_OK(twig.Validate());
  TwigStackRunner runner(doc, index, twig, metrics);
  return runner.Run();
}

}  // namespace xjoin
