// Stack-tree structural join (Al-Khalifa et al., ICDE 2002; the paper's
// reference [1]): given two document-order node lists, emits all
// (ancestor, descendant) or (parent, child) pairs in one merge pass with
// a stack of nested ancestors.
#ifndef XJOIN_TWIGJOIN_STRUCTURAL_JOIN_H_
#define XJOIN_TWIGJOIN_STRUCTURAL_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "xml/document.h"
#include "xml/twig.h"

namespace xjoin {

/// One joined pair: first is the ancestor/parent, second the
/// descendant/child.
using NodePair = std::pair<NodeId, NodeId>;

/// Stack-tree-desc: all pairs (a, d) with a from `ancestors`, d from
/// `descendants`, a related to d by `axis`. Both inputs must be sorted in
/// document order (ascending NodeId). Output is sorted by (descendant,
/// ancestor) — the "desc" variant's natural order. Runs in
/// O(|A| + |D| + |output|).
std::vector<NodePair> StructuralJoin(const XmlDocument& doc,
                                     const std::vector<NodeId>& ancestors,
                                     const std::vector<NodeId>& descendants,
                                     TwigAxis axis);

}  // namespace xjoin

#endif  // XJOIN_TWIGJOIN_STRUCTURAL_JOIN_H_
