// Twig matching strategies above the primitives:
//
//   * MatchTwigStructuralPlan — one stack-tree structural join per twig
//     edge, then hash joins of the pair lists on shared query nodes (a
//     "binary structural join plan", the classic pre-holistic approach).
//   * MatchTwigPathStack — PathStack per root-to-leaf path (linear chain
//     matching with linked stacks), then a merge join of path solutions
//     on their shared prefix nodes. This is the decomposition whose
//     intermediate path solutions can blow up — the behaviour the paper's
//     baseline exhibits on A-D-free twigs too.
//
// Both return the set of embeddings as a Relation whose schema is the
// twig's attribute list (node-id bindings stored directly as int64),
// which lets callers reuse the relational operators for merging and
// comparison. Use MatchesToRelation/RelationToMatches to convert.
#ifndef XJOIN_TWIGJOIN_TWIG_MATCHERS_H_
#define XJOIN_TWIGJOIN_TWIG_MATCHERS_H_

#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "relational/relation.h"
#include "twigjoin/naive_twig.h"
#include "xml/document.h"
#include "xml/node_index.h"
#include "xml/twig.h"

namespace xjoin {

/// Converts matches to a relation over the twig's attributes.
Result<Relation> MatchesToRelation(const Twig& twig,
                                   const std::vector<TwigMatch>& matches);

/// Converts a node-binding relation back to matches (columns must be the
/// twig's attributes, possibly permuted).
Result<std::vector<TwigMatch>> RelationToMatches(const Twig& twig,
                                                 const Relation& relation);

/// Binary structural-join plan. Metrics (nullable): records
/// "twig_plan.max_intermediate" and "twig_plan.total_intermediate".
Result<Relation> MatchTwigStructuralPlan(const XmlDocument& doc,
                                         const NodeIndex& index,
                                         const Twig& twig,
                                         Metrics* metrics = nullptr);

/// PathStack per root-leaf path + merge. Metrics (nullable): records
/// "twig_path.path_solutions" (total path solutions materialized,
/// the paper's blow-up quantity) and "twig_path.max_intermediate".
Result<Relation> MatchTwigPathStack(const XmlDocument& doc,
                                    const NodeIndex& index, const Twig& twig,
                                    Metrics* metrics = nullptr);

/// Matches one root-to-leaf chain (`path` = twig node ids, root first)
/// with the linked-stack PathStack algorithm; returns one column per
/// path node, bindings in document order of the leaf.
std::vector<std::vector<NodeId>> MatchPathStack(
    const XmlDocument& doc, const NodeIndex& index, const Twig& twig,
    const std::vector<TwigNodeId>& path);

}  // namespace xjoin

#endif  // XJOIN_TWIGJOIN_TWIG_MATCHERS_H_
