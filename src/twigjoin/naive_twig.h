// Brute-force twig matching by backtracking over the document tree.
// Exponential in the worst case; it is the correctness oracle the fast
// algorithms (TwigStack, PathStack, XJoin's validation) are tested
// against, and the paper's "Q2" when used inside the baseline.
#ifndef XJOIN_TWIGJOIN_NAIVE_TWIG_H_
#define XJOIN_TWIGJOIN_NAIVE_TWIG_H_

#include <vector>

#include "common/status.h"
#include "xml/document.h"
#include "xml/twig.h"

namespace xjoin {

/// One embedding of a twig: match[i] is the document node bound to twig
/// node i.
using TwigMatch = std::vector<NodeId>;

/// Enumerates every embedding of `twig` in `doc` (edges satisfy their
/// axis, tags match; "*" matches any tag). Output order is lexicographic
/// in (twig-node-0 binding, twig-node-1 binding, ...).
/// `limit` caps the number of matches (0 = unlimited).
std::vector<TwigMatch> MatchTwigNaive(const XmlDocument& doc, const Twig& twig,
                                      size_t limit = 0);

/// True iff `match` is a valid embedding of `twig` in `doc`.
bool IsValidMatch(const XmlDocument& doc, const Twig& twig,
                  const TwigMatch& match);

}  // namespace xjoin

#endif  // XJOIN_TWIGJOIN_NAIVE_TWIG_H_
