#include "twigjoin/twig_matchers.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "relational/operators.h"
#include "twigjoin/structural_join.h"

namespace xjoin {

namespace {

// Document-order stream of candidate nodes for one twig node.
std::vector<NodeId> StreamFor(const XmlDocument& doc, const NodeIndex& index,
                              const TwigNode& qn) {
  if (qn.tag == "*") {
    std::vector<NodeId> all(doc.num_nodes());
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<NodeId>(i);
    return all;
  }
  int32_t code = doc.LookupTag(qn.tag);
  if (code < 0) return {};
  return index.NodesByTag(code);
}

}  // namespace

Result<Relation> MatchesToRelation(const Twig& twig,
                                   const std::vector<TwigMatch>& matches) {
  XJ_ASSIGN_OR_RETURN(Schema schema, Schema::Make(twig.attributes()));
  Relation rel(std::move(schema));
  Tuple row(twig.num_nodes());
  for (const auto& m : matches) {
    if (m.size() != twig.num_nodes()) {
      return Status::InvalidArgument("match arity mismatch");
    }
    for (size_t i = 0; i < m.size(); ++i) row[i] = m[i];
    rel.AppendRow(row);
  }
  return rel;
}

Result<std::vector<TwigMatch>> RelationToMatches(const Twig& twig,
                                                 const Relation& relation) {
  std::vector<size_t> col_of_node(twig.num_nodes());
  for (size_t i = 0; i < twig.num_nodes(); ++i) {
    int c = relation.schema().IndexOf(
        twig.node(static_cast<TwigNodeId>(i)).attribute);
    if (c < 0) {
      return Status::InvalidArgument(
          "relation lacks twig attribute " +
          twig.node(static_cast<TwigNodeId>(i)).attribute);
    }
    col_of_node[i] = static_cast<size_t>(c);
  }
  std::vector<TwigMatch> out;
  out.reserve(relation.num_rows());
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    TwigMatch m(twig.num_nodes());
    for (size_t i = 0; i < twig.num_nodes(); ++i) {
      m[i] = static_cast<NodeId>(relation.at(r, col_of_node[i]));
    }
    out.push_back(std::move(m));
  }
  return out;
}

Result<Relation> MatchTwigStructuralPlan(const XmlDocument& doc,
                                         const NodeIndex& index,
                                         const Twig& twig, Metrics* metrics) {
  if (twig.num_nodes() == 1) {
    XJ_ASSIGN_OR_RETURN(Schema schema,
                        Schema::Make({twig.node(twig.root()).attribute}));
    Relation rel(std::move(schema));
    for (NodeId n : StreamFor(doc, index, twig.node(twig.root()))) {
      rel.AppendRow({n});
    }
    return rel;
  }

  // One pair relation per edge, joined left-deep in edge order.
  std::vector<Relation> edge_relations;
  for (size_t i = 1; i < twig.num_nodes(); ++i) {
    TwigNodeId child = static_cast<TwigNodeId>(i);
    const TwigNode& cn = twig.node(child);
    const TwigNode& pn = twig.node(cn.parent);
    std::vector<NodePair> pairs = StructuralJoin(
        doc, StreamFor(doc, index, pn), StreamFor(doc, index, cn), cn.axis);
    XJ_ASSIGN_OR_RETURN(Schema schema,
                        Schema::Make({pn.attribute, cn.attribute}));
    Relation rel(std::move(schema));
    for (const auto& [a, d] : pairs) rel.AppendRow({a, d});
    MetricsAdd(metrics, "twig_plan.edge_pairs",
               static_cast<int64_t>(rel.num_rows()));
    edge_relations.push_back(std::move(rel));
  }

  std::vector<const Relation*> inputs;
  inputs.reserve(edge_relations.size());
  for (const auto& r : edge_relations) inputs.push_back(&r);
  Metrics local;
  XJ_ASSIGN_OR_RETURN(Relation joined, JoinAll(inputs, &local));
  if (metrics != nullptr) {
    metrics->RecordMax("twig_plan.max_intermediate",
                       local.Get("plan.max_intermediate"));
    metrics->Add("twig_plan.total_intermediate",
                 local.Get("plan.total_intermediate"));
  }
  return joined;
}

std::vector<std::vector<NodeId>> MatchPathStack(
    const XmlDocument& doc, const NodeIndex& index, const Twig& twig,
    const std::vector<TwigNodeId>& path) {
  const size_t k = path.size();
  std::vector<std::vector<NodeId>> solutions;
  if (k == 0) return solutions;

  struct StackEntry {
    NodeId node;
    int parent_ptr;  // index of top of parent stack at push time, or -1
  };
  std::vector<std::vector<NodeId>> streams(k);
  std::vector<size_t> cursor(k, 0);
  std::vector<std::vector<StackEntry>> stacks(k);
  std::vector<TwigAxis> axis(k, TwigAxis::kChild);
  for (size_t i = 0; i < k; ++i) {
    streams[i] = StreamFor(doc, index, twig.node(path[i]));
    if (i > 0) axis[i] = twig.node(path[i]).axis;
  }

  constexpr int64_t kInf = std::numeric_limits<int64_t>::max();
  auto head = [&](size_t i) -> int64_t {
    return cursor[i] < streams[i].size() ? streams[i][cursor[i]] : kInf;
  };

  // Recursive chain expansion from a just-pushed leaf entry.
  std::vector<NodeId> partial(k);
  auto expand = [&](auto&& self, size_t level,
                    const StackEntry& entry) -> void {
    partial[level] = entry.node;
    if (level == 0) {
      solutions.emplace_back(partial);
      return;
    }
    for (int pos = 0; pos <= entry.parent_ptr; ++pos) {
      const StackEntry& cand = stacks[level - 1][static_cast<size_t>(pos)];
      if (axis[level] == TwigAxis::kChild) {
        if (doc.node(entry.node).parent != cand.node) continue;
      } else if (cand.node >= entry.node) {
        // Repeated tags can put the same document node on adjacent
        // stacks in the same round; proper ancestry requires a strictly
        // earlier start.
        continue;
      }
      self(self, level - 1, cand);
    }
  };

  while (head(k - 1) != kInf) {
    // Pick the stream with the minimal next start position.
    size_t qmin = 0;
    int64_t best = kInf;
    for (size_t i = 0; i < k; ++i) {
      if (head(i) < best) {
        best = head(i);
        qmin = i;
      }
    }
    NodeId v = static_cast<NodeId>(best);
    // Clean all stacks: entries whose region ended before v are dead.
    for (auto& s : stacks) {
      while (!s.empty() && doc.node(s.back().node).subtree_end < v)
        s.pop_back();
    }
    ++cursor[qmin];
    if (qmin > 0 && stacks[qmin - 1].empty()) {
      continue;  // no live ancestor chain; skip this element
    }
    StackEntry entry{v, qmin > 0 ? static_cast<int>(stacks[qmin - 1].size()) - 1
                                 : -1};
    if (qmin == k - 1) {
      // Leaf: emit solutions through this entry, do not keep it (a leaf
      // entry can never be an ancestor of a later leaf element of the
      // same path query node... unless the path has repeated tags where
      // a leaf node is also an ancestor; keeping it is unnecessary since
      // leaves never serve as chain parents).
      expand(expand, k - 1, entry);
    } else {
      stacks[qmin].push_back(entry);
    }
  }
  return solutions;
}

Result<Relation> MatchTwigPathStack(const XmlDocument& doc,
                                    const NodeIndex& index, const Twig& twig,
                                    Metrics* metrics) {
  std::vector<TwigNodeId> leaves = twig.Leaves();
  std::vector<Relation> path_relations;
  int64_t total_path_solutions = 0;
  for (TwigNodeId leaf : leaves) {
    std::vector<TwigNodeId> path = twig.PathFromRoot(leaf);
    std::vector<std::vector<NodeId>> sols =
        MatchPathStack(doc, index, twig, path);
    total_path_solutions += static_cast<int64_t>(sols.size());
    std::vector<std::string> attrs;
    attrs.reserve(path.size());
    for (TwigNodeId q : path) attrs.push_back(twig.node(q).attribute);
    XJ_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
    Relation rel(std::move(schema));
    for (const auto& s : sols) {
      Tuple row(s.size());
      for (size_t i = 0; i < s.size(); ++i) row[i] = s[i];
      rel.AppendRow(row);
    }
    path_relations.push_back(std::move(rel));
  }
  MetricsAdd(metrics, "twig_path.path_solutions", total_path_solutions);

  std::vector<const Relation*> inputs;
  inputs.reserve(path_relations.size());
  for (const auto& r : path_relations) inputs.push_back(&r);
  Metrics local;
  XJ_ASSIGN_OR_RETURN(Relation joined, JoinAll(inputs, &local));
  if (metrics != nullptr) {
    metrics->RecordMax("twig_path.max_intermediate",
                       std::max(local.Get("plan.max_intermediate"),
                                total_path_solutions));
  }
  return joined;
}

}  // namespace xjoin
