#include "xml/node_index.h"

#include <algorithm>

#include "common/logging.h"

namespace xjoin {

NodeIndex NodeIndex::Build(const XmlDocument* doc, Dictionary* dict,
                           ValuePolicy policy) {
  NodeIndex index;
  index.doc_ = doc;
  index.policy_ = policy;
  const size_t n = doc->num_nodes();
  index.values_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const XmlNode& node = doc->node(static_cast<NodeId>(i));
    if (policy == ValuePolicy::kTextOrNodeId && !node.text.empty()) {
      index.values_[i] = dict->Intern(node.text);
    } else {
      // '\x1F' cannot occur in parsed text, so synthetic values never
      // collide with real ones.
      index.values_[i] = dict->Intern("\x1Fnode:" + std::to_string(i));
    }
  }

  const size_t num_tags = static_cast<size_t>(doc->tag_dict().size());
  index.by_tag_.resize(num_tags);
  index.by_tag_value_.resize(num_tags);
  for (size_t i = 0; i < n; ++i) {
    const XmlNode& node = doc->node(static_cast<NodeId>(i));
    index.by_tag_[static_cast<size_t>(node.tag)].push_back(
        static_cast<NodeId>(i));
    index.by_tag_value_[static_cast<size_t>(node.tag)].push_back(
        ValueNode{index.values_[i], static_cast<NodeId>(i)});
  }
  for (auto& list : index.by_tag_value_) {
    std::sort(list.begin(), list.end(),
              [](const ValueNode& a, const ValueNode& b) {
                if (a.value != b.value) return a.value < b.value;
                return a.node < b.node;
              });
  }
  return index;
}

const std::vector<NodeId>& NodeIndex::NodesByTag(int32_t tag) const {
  if (tag < 0 || static_cast<size_t>(tag) >= by_tag_.size())
    return empty_nodes_;
  return by_tag_[static_cast<size_t>(tag)];
}

const std::vector<ValueNode>& NodeIndex::ValueSortedNodes(int32_t tag) const {
  if (tag < 0 || static_cast<size_t>(tag) >= by_tag_value_.size()) {
    return empty_value_nodes_;
  }
  return by_tag_value_[static_cast<size_t>(tag)];
}

std::vector<ValueNode> NodeIndex::ChildValues(NodeId parent,
                                              int32_t tag) const {
  std::vector<ValueNode> out;
  for (NodeId c = doc_->node(parent).first_child; c != kNullNode;
       c = doc_->node(c).next_sibling) {
    if (doc_->node(c).tag == tag) out.push_back(ValueNode{ValueOf(c), c});
  }
  std::sort(out.begin(), out.end(), [](const ValueNode& a, const ValueNode& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.node < b.node;
  });
  return out;
}

std::vector<ValueNode> NodeIndex::DescendantValues(NodeId ancestor,
                                                   int32_t tag) const {
  std::vector<ValueNode> out;
  const std::vector<NodeId>& stream = NodesByTag(tag);
  // Document-order stream is sorted by NodeId; descendants form the
  // contiguous range (ancestor, subtree_end].
  auto lo = std::upper_bound(stream.begin(), stream.end(), ancestor);
  NodeId end = doc_->node(ancestor).subtree_end;
  for (auto it = lo; it != stream.end() && *it <= end; ++it) {
    out.push_back(ValueNode{ValueOf(*it), *it});
  }
  std::sort(out.begin(), out.end(), [](const ValueNode& a, const ValueNode& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.node < b.node;
  });
  return out;
}

std::vector<NodeId> NodeIndex::NodesByTagValue(int32_t tag,
                                               int64_t value) const {
  const auto& list = ValueSortedNodes(tag);
  std::vector<NodeId> out;
  auto cmp = [](const ValueNode& a, int64_t v) { return a.value < v; };
  auto it = std::lower_bound(list.begin(), list.end(), value, cmp);
  for (; it != list.end() && it->value == value; ++it) out.push_back(it->node);
  return out;
}

}  // namespace xjoin
