// In-memory XML document: a node arena in document (preorder) order with
// region encoding (start, end, level) — the classic labeling scheme of
// structural-join work (Al-Khalifa et al.) that decides ancestor-
// descendant relationships in O(1).
#ifndef XJOIN_XML_DOCUMENT_H_
#define XJOIN_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/dictionary.h"
#include "common/status.h"

namespace xjoin {

/// Index of a node within its document; nodes are numbered in preorder,
/// so NodeId doubles as the region-encoding `start` position.
using NodeId = int32_t;
constexpr NodeId kNullNode = -1;

/// One element node. XML attributes are modeled as child elements whose
/// tag is "@name" holding the attribute value as text, which keeps the
/// twig machinery uniform.
struct XmlNode {
  int32_t tag = -1;               ///< code in XmlDocument::tag_dict()
  NodeId parent = kNullNode;
  NodeId first_child = kNullNode;
  NodeId next_sibling = kNullNode;
  NodeId subtree_end = kNullNode;  ///< largest NodeId in this subtree
  int32_t level = 0;               ///< root element has level 0
  std::string text;                ///< concatenated trimmed direct text
};

/// An XML document. Construct through XmlDocumentBuilder or ParseXml.
class XmlDocument {
 public:
  size_t num_nodes() const { return nodes_.size(); }
  const XmlNode& node(NodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }

  /// The root element; kNullNode for an empty document.
  NodeId root() const { return nodes_.empty() ? kNullNode : 0; }

  /// Tag-name dictionary (codes are XmlNode::tag values).
  const Dictionary& tag_dict() const { return tag_dict_; }
  Dictionary* mutable_tag_dict() { return &tag_dict_; }

  /// Tag code for `name`, or -1 if the tag never occurs.
  int32_t LookupTag(const std::string& name) const {
    return static_cast<int32_t>(tag_dict_.Lookup(name));
  }

  /// True iff `ancestor` is a proper ancestor of `descendant` (region
  /// containment: start_a < start_d && end_d <= end_a).
  bool IsAncestor(NodeId ancestor, NodeId descendant) const {
    return ancestor < descendant &&
           descendant <= nodes_[static_cast<size_t>(ancestor)].subtree_end;
  }

  /// True iff `parent` is the parent of `child`.
  bool IsParent(NodeId parent, NodeId child) const {
    return child >= 0 && nodes_[static_cast<size_t>(child)].parent == parent;
  }

  /// All node ids with the given tag code, in document order.
  std::vector<NodeId> NodesWithTag(int32_t tag) const;

  /// Children of `id` in document order.
  std::vector<NodeId> Children(NodeId id) const;

  /// Human-readable tag of a node.
  const std::string& TagName(NodeId id) const {
    return tag_dict_.Decode(node(id).tag);
  }

  /// Structural sanity check (exhaustive; for tests): verifies parent /
  /// sibling / region-encoding consistency.
  Status Validate() const;

 private:
  friend class XmlDocumentBuilder;

  Dictionary tag_dict_;
  std::vector<XmlNode> nodes_;
};

/// Event-style builder: StartElement / AddText / EndElement, used by both
/// the parser and the synthetic workload generators.
class XmlDocumentBuilder {
 public:
  XmlDocumentBuilder();

  /// Opens an element; returns its NodeId.
  NodeId StartElement(const std::string& tag);

  /// Appends text to the currently open element. Whitespace-only text is
  /// ignored; multiple chunks are concatenated with no separator.
  void AddText(const std::string& text);

  /// Convenience: StartElement + AddText + EndElement.
  NodeId AddLeaf(const std::string& tag, const std::string& text);

  /// Closes the innermost open element.
  Status EndElement();

  /// Number of currently open elements.
  size_t open_depth() const { return stack_.size(); }

  /// Finalizes the document; fails if elements remain open or the
  /// document is empty or has trailing siblings of the root.
  Result<XmlDocument> Finish();

 private:
  XmlDocument doc_;
  std::vector<NodeId> stack_;
  std::vector<NodeId> last_child_;  // parallel to stack_
  bool root_done_ = false;
};

}  // namespace xjoin

#endif  // XJOIN_XML_DOCUMENT_H_
