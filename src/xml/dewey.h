// Dewey labeling: each node's label is the path of child ordinals from
// the root (root = []; its 3rd child's 2nd child = [2, 1]). Dewey labels
// decide every axis relationship from the labels alone — the property
// TJFast's extended Dewey (the paper's reference [5]) builds on — and
// support lexicographic document-order comparison. Provided as an
// alternative labeling substrate to the region encoding, with identical
// answers (tested against each other).
#ifndef XJOIN_XML_DEWEY_H_
#define XJOIN_XML_DEWEY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/document.h"

namespace xjoin {

/// A Dewey label; component i is the child ordinal at depth i+1.
using DeweyLabel = std::vector<int32_t>;

/// Dewey labels for every node of a document.
class DeweyLabeling {
 public:
  /// Computes all labels in one pass. O(total label length).
  static DeweyLabeling Build(const XmlDocument& doc);

  const DeweyLabel& label(NodeId id) const {
    return labels_[static_cast<size_t>(id)];
  }
  size_t num_nodes() const { return labels_.size(); }

  /// "1.0.2"-style rendering ("" for the root).
  static std::string ToString(const DeweyLabel& label);

  /// Parses "1.0.2" back into a label; empty string = root.
  static DeweyLabel FromString(const std::string& text);

  /// True iff `a` is a proper prefix of `d` (ancestor relation).
  static bool IsAncestor(const DeweyLabel& a, const DeweyLabel& d);

  /// True iff `p` is `c` minus its last component (parent relation).
  static bool IsParent(const DeweyLabel& p, const DeweyLabel& c);

  /// Document-order comparison (<0, 0, >0) — prefix sorts first.
  static int Compare(const DeweyLabel& a, const DeweyLabel& b);

  /// Longest common prefix of two labels: the label of the lowest
  /// common ancestor.
  static DeweyLabel LowestCommonAncestor(const DeweyLabel& a,
                                         const DeweyLabel& b);

 private:
  DeweyLabeling() = default;
  std::vector<DeweyLabel> labels_;
};

}  // namespace xjoin

#endif  // XJOIN_XML_DEWEY_H_
