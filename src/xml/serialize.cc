#include "xml/serialize.h"

#include <sstream>

#include "common/string_util.h"

namespace xjoin {

std::string EscapeXml(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

void WriteNode(const XmlDocument& doc, NodeId id, const XmlWriteOptions& opts,
               int indent, std::ostringstream* out) {
  const XmlNode& n = doc.node(id);
  std::string pad = opts.indent
                        ? std::string(static_cast<size_t>(indent) * 2, ' ')
                        : std::string();
  const std::string& tag = doc.TagName(id);
  *out << pad << "<" << tag;

  std::vector<NodeId> element_children;
  for (NodeId c = n.first_child; c != kNullNode; c = doc.node(c).next_sibling) {
    const std::string& ctag = doc.TagName(c);
    if (opts.attributes && StartsWith(ctag, "@") &&
        doc.node(c).first_child == kNullNode) {
      *out << " " << ctag.substr(1) << "=\"" << EscapeXml(doc.node(c).text)
           << "\"";
    } else {
      element_children.push_back(c);
    }
  }

  if (element_children.empty() && n.text.empty()) {
    *out << "/>";
    if (opts.indent) *out << "\n";
    return;
  }
  *out << ">";
  if (!n.text.empty()) *out << EscapeXml(n.text);
  if (!element_children.empty()) {
    if (opts.indent) *out << "\n";
    for (NodeId c : element_children) {
      WriteNode(doc, c, opts, indent + 1, out);
    }
    *out << pad;
  }
  *out << "</" << tag << ">";
  if (opts.indent) *out << "\n";
}

}  // namespace

std::string WriteXml(const XmlDocument& doc, const XmlWriteOptions& options) {
  std::ostringstream out;
  if (doc.root() != kNullNode) WriteNode(doc, doc.root(), options, 0, &out);
  return out.str();
}

}  // namespace xjoin
