// Twig pattern queries: the XML query model of the paper. A twig is a
// small tree of query nodes; every edge is parent-child (P-C, '/') or
// ancestor-descendant (A-D, '//'). Each query node carries a tag to
// match and an attribute name (unique within the twig) under which its
// matched value joins with the rest of the multi-model query.
#ifndef XJOIN_XML_TWIG_H_
#define XJOIN_XML_TWIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace xjoin {

/// Edge axis between a twig node and its parent.
enum class TwigAxis : uint8_t {
  kChild,       ///< '/'  — parent-child
  kDescendant,  ///< '//' — ancestor-descendant
};

/// Index of a query node within its twig.
using TwigNodeId = int32_t;
constexpr TwigNodeId kNullTwigNode = -1;

/// One query node.
struct TwigNode {
  std::string tag;        ///< element tag to match ("*" matches any tag)
  std::string attribute;  ///< join attribute name (defaults to tag)
  TwigAxis axis = TwigAxis::kChild;  ///< relationship to parent (root: ignored)
  TwigNodeId parent = kNullTwigNode;
  std::vector<TwigNodeId> children;
};

/// A twig pattern. Node 0 is the root. Construct via Twig::Parse or
/// TwigBuilder.
class Twig {
 public:
  /// Parses an XPath-like pattern:
  ///
  ///   pattern  := ['/' | '//'] step (('/' | '//') step)*
  ///   step     := tag ['=' alias] ['[' pattern (',' pattern)* ']']
  ///
  /// '/' introduces a P-C edge, '//' an A-D edge. A leading separator is
  /// ignored (twig roots match anywhere, per the structural-join
  /// literature). `tag=alias` renames the node's join attribute; by
  /// default the attribute equals the tag. Examples:
  ///   "A[B,C/E]/D"                     (Figure 2's left sub-twig shape)
  ///   "invoices//orderLine[ISBN,price]" (Figure 1)
  static Result<Twig> Parse(const std::string& pattern);

  size_t num_nodes() const { return nodes_.size(); }
  const TwigNode& node(TwigNodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  TwigNodeId root() const { return 0; }

  /// All attribute names in node-id order (preorder of the pattern).
  std::vector<std::string> attributes() const;

  /// Node whose attribute is `name`, or kNullTwigNode.
  TwigNodeId NodeByAttribute(const std::string& name) const;

  /// True if some edge of the twig is A-D.
  bool HasDescendantEdge() const;

  /// Leaves in node-id order.
  std::vector<TwigNodeId> Leaves() const;

  /// Node ids on the root-to-node path, root first, `id` last.
  std::vector<TwigNodeId> PathFromRoot(TwigNodeId id) const;

  /// Pattern rendering (parsable by Parse; attribute aliases included
  /// only where they differ from the tag).
  std::string ToString() const;

  /// Checks attribute uniqueness and tree shape.
  Status Validate() const;

 private:
  friend class TwigBuilder;
  std::vector<TwigNode> nodes_;
};

/// Programmatic twig construction (used by tests and generators).
class TwigBuilder {
 public:
  /// Adds the root node; must be called exactly once, first.
  TwigNodeId AddRoot(const std::string& tag, const std::string& attribute = "");

  /// Adds a node under `parent`; empty attribute defaults to the tag.
  TwigNodeId AddChild(TwigNodeId parent, TwigAxis axis, const std::string& tag,
                      const std::string& attribute = "");

  /// Validates and returns the twig.
  Result<Twig> Finish();

 private:
  Twig twig_;
};

}  // namespace xjoin

#endif  // XJOIN_XML_TWIG_H_
