// XML serialization: render an XmlDocument back to text. Inverse of
// ParseXml up to whitespace; "@name" children render as attributes.
#ifndef XJOIN_XML_SERIALIZE_H_
#define XJOIN_XML_SERIALIZE_H_

#include <string>

#include "xml/document.h"

namespace xjoin {

/// Serialization knobs.
struct XmlWriteOptions {
  bool indent = true;        ///< pretty-print with 2-space indentation
  bool attributes = true;    ///< render "@name" children as attributes
};

/// Renders the document as XML text.
std::string WriteXml(const XmlDocument& doc,
                     const XmlWriteOptions& options = {});

/// Escapes &, <, >, ", ' for use in character data / attribute values.
std::string EscapeXml(const std::string& raw);

}  // namespace xjoin

#endif  // XJOIN_XML_SERIALIZE_H_
