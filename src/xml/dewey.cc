#include "xml/dewey.h"

#include <algorithm>

#include "common/string_util.h"

namespace xjoin {

DeweyLabeling DeweyLabeling::Build(const XmlDocument& doc) {
  DeweyLabeling labeling;
  labeling.labels_.resize(doc.num_nodes());
  // Parents precede children in preorder, so one pass suffices; ordinals
  // are assigned by counting arrivals per parent.
  std::vector<int32_t> next_ordinal(doc.num_nodes(), 0);
  for (size_t i = 0; i < doc.num_nodes(); ++i) {
    const XmlNode& node = doc.node(static_cast<NodeId>(i));
    if (node.parent == kNullNode) continue;  // root keeps the empty label
    const DeweyLabel& parent_label =
        labeling.labels_[static_cast<size_t>(node.parent)];
    DeweyLabel& label = labeling.labels_[i];
    label.reserve(parent_label.size() + 1);
    label = parent_label;
    label.push_back(next_ordinal[static_cast<size_t>(node.parent)]++);
  }
  return labeling;
}

std::string DeweyLabeling::ToString(const DeweyLabel& label) {
  std::string out;
  for (size_t i = 0; i < label.size(); ++i) {
    if (i) out += '.';
    out += std::to_string(label[i]);
  }
  return out;
}

DeweyLabel DeweyLabeling::FromString(const std::string& text) {
  DeweyLabel label;
  if (text.empty()) return label;
  for (const auto& part : SplitString(text, '.')) {
    auto v = ParseInt64(part);
    label.push_back(v.ok() ? static_cast<int32_t>(*v) : 0);
  }
  return label;
}

bool DeweyLabeling::IsAncestor(const DeweyLabel& a, const DeweyLabel& d) {
  if (a.size() >= d.size()) return false;
  return std::equal(a.begin(), a.end(), d.begin());
}

bool DeweyLabeling::IsParent(const DeweyLabel& p, const DeweyLabel& c) {
  return c.size() == p.size() + 1 && IsAncestor(p, c);
}

int DeweyLabeling::Compare(const DeweyLabel& a, const DeweyLabel& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

DeweyLabel DeweyLabeling::LowestCommonAncestor(const DeweyLabel& a,
                                               const DeweyLabel& b) {
  DeweyLabel out;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n && a[i] == b[i]; ++i) out.push_back(a[i]);
  return out;
}

}  // namespace xjoin
