// NodeIndex: per-document access structures shared by the twig-join
// algorithms and the multi-model engine. It assigns every node a *join
// value code* in the same dictionary the relational side uses, and keeps
// per-tag node streams (document order, for TwigStack) and per-tag
// value-sorted lists (for trie-style enumeration).
#ifndef XJOIN_XML_NODE_INDEX_H_
#define XJOIN_XML_NODE_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/dictionary.h"
#include "common/status.h"
#include "xml/document.h"

namespace xjoin {

/// How a matched node's join value is derived (DESIGN.md §2).
enum class ValuePolicy : uint8_t {
  /// Text content when the node has any, otherwise a synthetic unique
  /// per-node value ("\x1Fnode:<id>"). Default; matches the paper's
  /// Figure 1 where value-carrying elements join with relational columns.
  kTextOrNodeId,
  /// Always the synthetic unique per-node value; turns every value join
  /// into a node-identity join (useful as an exact structural oracle).
  kNodeIdAlways,
};

/// A (value, node) pair; lists are sorted by (value, node).
struct ValueNode {
  int64_t value;
  NodeId node;
  bool operator==(const ValueNode& o) const {
    return value == o.value && node == o.node;
  }
};

/// Immutable index over one document. The dictionary is shared with the
/// relational catalog so value codes agree across models.
class NodeIndex {
 public:
  /// Builds the index, interning node values into `dict`.
  static NodeIndex Build(const XmlDocument* doc, Dictionary* dict,
                         ValuePolicy policy = ValuePolicy::kTextOrNodeId);

  const XmlDocument& doc() const { return *doc_; }
  ValuePolicy policy() const { return policy_; }

  /// Join value code of a node.
  int64_t ValueOf(NodeId id) const { return values_[static_cast<size_t>(id)]; }

  /// Nodes with tag code `tag` in document order; empty for unknown tags.
  const std::vector<NodeId>& NodesByTag(int32_t tag) const;

  /// (value, node) pairs for tag code `tag`, sorted by value then node.
  const std::vector<ValueNode>& ValueSortedNodes(int32_t tag) const;

  /// Children of `parent` with tag code `tag`, as (value, node) pairs
  /// sorted by value then node. Computed on the fly (the lazy path trie's
  /// workhorse).
  std::vector<ValueNode> ChildValues(NodeId parent, int32_t tag) const;

  /// Descendants of `ancestor` with tag code `tag`, value-sorted.
  /// Uses the region encoding over the per-tag document-order stream.
  std::vector<ValueNode> DescendantValues(NodeId ancestor, int32_t tag) const;

  /// All nodes whose join value is `value` and tag is `tag`.
  std::vector<NodeId> NodesByTagValue(int32_t tag, int64_t value) const;

 private:
  NodeIndex() = default;

  const XmlDocument* doc_ = nullptr;
  ValuePolicy policy_ = ValuePolicy::kTextOrNodeId;
  std::vector<int64_t> values_;                      // by NodeId
  std::vector<std::vector<NodeId>> by_tag_;          // by tag code
  std::vector<std::vector<ValueNode>> by_tag_value_; // by tag code
  std::vector<NodeId> empty_nodes_;
  std::vector<ValueNode> empty_value_nodes_;
};

}  // namespace xjoin

#endif  // XJOIN_XML_NODE_INDEX_H_
