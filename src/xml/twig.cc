#include "xml/twig.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace xjoin {

namespace {

class TwigParser {
 public:
  explicit TwigParser(const std::string& text) : text_(text) {}

  Result<Twig> Run() {
    TwigAxis root_axis;  // ignored for the root
    XJ_RETURN_NOT_OK(ParseLeadingSeparator(&root_axis));
    XJ_RETURN_NOT_OK(ParsePath(kNullTwigNode, root_axis, &builder_));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after pattern");
    }
    return builder_.Finish();
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::ParseError("twig pattern at offset " + std::to_string(pos_) +
                              ": " + msg);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseLeadingSeparator(TwigAxis* axis) {
    *axis = TwigAxis::kChild;
    if (Consume('/')) {
      if (Consume('/')) *axis = TwigAxis::kDescendant;
    }
    return Status::OK();
  }

  static bool IsNameChar(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
           c == '@' || c == '*' || c == ':';
  }

  Result<std::string> ParseName() {
    SkipWhitespace();
    std::string name;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) {
      name += text_[pos_];
      ++pos_;
    }
    if (name.empty()) return Error("expected tag name");
    return name;
  }

  // Parses "step (('/'|'//') step)*" hanging the first step under
  // `parent` with `axis`.
  Status ParsePath(TwigNodeId parent, TwigAxis axis, TwigBuilder* builder) {
    for (;;) {
      XJ_ASSIGN_OR_RETURN(std::string tag, ParseName());
      std::string alias;
      if (Consume('=')) {
        XJ_ASSIGN_OR_RETURN(alias, ParseName());
      }
      TwigNodeId id = (parent == kNullTwigNode)
                          ? builder->AddRoot(tag, alias)
                          : builder->AddChild(parent, axis, tag, alias);

      if (Consume('[')) {
        for (;;) {
          TwigAxis branch_axis = TwigAxis::kChild;
          if (Consume('/')) {
            if (Consume('/')) branch_axis = TwigAxis::kDescendant;
          }
          XJ_RETURN_NOT_OK(ParsePath(id, branch_axis, builder));
          if (Consume(',')) continue;
          if (Consume(']')) break;
          return Error("expected ',' or ']' in branch list");
        }
      }

      if (Consume('/')) {
        axis = Consume('/') ? TwigAxis::kDescendant : TwigAxis::kChild;
        parent = id;
        continue;
      }
      return Status::OK();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  TwigBuilder builder_;
};

void RenderNode(const Twig& twig, TwigNodeId id, std::string* out) {
  const TwigNode& n = twig.node(id);
  *out += n.tag;
  if (n.attribute != n.tag) {
    *out += "=";
    *out += n.attribute;
  }
  const auto& kids = n.children;
  if (kids.empty()) return;
  // Render the first child inline when it is an only child, else bracket
  // every child. Bracketing all children is always parse-compatible; we
  // bracket all but the last for readability.
  if (kids.size() == 1) {
    const TwigNode& c = twig.node(kids[0]);
    *out += (c.axis == TwigAxis::kDescendant) ? "//" : "/";
    RenderNode(twig, kids[0], out);
    return;
  }
  *out += "[";
  for (size_t i = 0; i + 1 < kids.size(); ++i) {
    if (i) *out += ",";
    const TwigNode& c = twig.node(kids[i]);
    if (c.axis == TwigAxis::kDescendant) *out += "//";
    RenderNode(twig, kids[i], out);
  }
  *out += "]";
  const TwigNode& last = twig.node(kids.back());
  *out += (last.axis == TwigAxis::kDescendant) ? "//" : "/";
  RenderNode(twig, kids.back(), out);
}

}  // namespace

Result<Twig> Twig::Parse(const std::string& pattern) {
  TwigParser parser(pattern);
  return parser.Run();
}

std::vector<std::string> Twig::attributes() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.attribute);
  return out;
}

TwigNodeId Twig::NodeByAttribute(const std::string& name) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].attribute == name) return static_cast<TwigNodeId>(i);
  }
  return kNullTwigNode;
}

bool Twig::HasDescendantEdge() const {
  for (size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].axis == TwigAxis::kDescendant) return true;
  }
  return false;
}

std::vector<TwigNodeId> Twig::Leaves() const {
  std::vector<TwigNodeId> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].children.empty()) out.push_back(static_cast<TwigNodeId>(i));
  }
  return out;
}

std::vector<TwigNodeId> Twig::PathFromRoot(TwigNodeId id) const {
  std::vector<TwigNodeId> path;
  for (TwigNodeId cur = id; cur != kNullTwigNode; cur = node(cur).parent) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string Twig::ToString() const {
  std::string out;
  if (!nodes_.empty()) RenderNode(*this, root(), &out);
  return out;
}

Status Twig::Validate() const {
  if (nodes_.empty()) return Status::InvalidArgument("empty twig");
  std::unordered_set<std::string> attrs;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const TwigNode& n = nodes_[i];
    if (n.tag.empty()) return Status::InvalidArgument("twig node without tag");
    if (n.attribute.empty()) {
      return Status::InvalidArgument("twig node without attribute");
    }
    if (!attrs.insert(n.attribute).second) {
      return Status::InvalidArgument(
          "duplicate twig attribute '" + n.attribute +
          "' (use tag=alias to disambiguate repeated tags)");
    }
    if (i == 0) {
      if (n.parent != kNullTwigNode) {
        return Status::InvalidArgument("twig root with parent");
      }
    } else {
      if (n.parent == kNullTwigNode || n.parent >= static_cast<TwigNodeId>(i)) {
        return Status::InvalidArgument("twig nodes must be in preorder");
      }
    }
  }
  return Status::OK();
}

TwigNodeId TwigBuilder::AddRoot(const std::string& tag,
                                const std::string& attribute) {
  XJ_CHECK(twig_.nodes_.empty()) << "AddRoot called twice";
  TwigNode n;
  n.tag = tag;
  n.attribute = attribute.empty() ? tag : attribute;
  twig_.nodes_.push_back(std::move(n));
  return 0;
}

TwigNodeId TwigBuilder::AddChild(TwigNodeId parent, TwigAxis axis,
                                 const std::string& tag,
                                 const std::string& attribute) {
  XJ_CHECK(parent >= 0 &&
           static_cast<size_t>(parent) < twig_.nodes_.size())
      << "bad twig parent";
  TwigNodeId id = static_cast<TwigNodeId>(twig_.nodes_.size());
  TwigNode n;
  n.tag = tag;
  n.attribute = attribute.empty() ? tag : attribute;
  n.axis = axis;
  n.parent = parent;
  twig_.nodes_.push_back(std::move(n));
  twig_.nodes_[static_cast<size_t>(parent)].children.push_back(id);
  return id;
}

Result<Twig> TwigBuilder::Finish() {
  XJ_RETURN_NOT_OK(twig_.Validate());
  return std::move(twig_);
}

}  // namespace xjoin
