#include "xml/document.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace xjoin {

std::vector<NodeId> XmlDocument::NodesWithTag(int32_t tag) const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].tag == tag) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<NodeId> XmlDocument::Children(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c = node(id).first_child; c != kNullNode;
       c = node(c).next_sibling) {
    out.push_back(c);
  }
  return out;
}

Status XmlDocument::Validate() const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const XmlNode& n = nodes_[i];
    NodeId id = static_cast<NodeId>(i);
    if (n.subtree_end < id ||
        static_cast<size_t>(n.subtree_end) >= nodes_.size() + 0u ||
        n.subtree_end >= static_cast<NodeId>(nodes_.size())) {
      return Status::Internal("node " + std::to_string(i) +
                              ": bad subtree_end " +
                              std::to_string(n.subtree_end));
    }
    if (n.parent != kNullNode) {
      const XmlNode& p = nodes_[static_cast<size_t>(n.parent)];
      if (!(n.parent < id && id <= p.subtree_end)) {
        return Status::Internal("node " + std::to_string(i) +
                                ": not inside parent region");
      }
      if (n.level != p.level + 1) {
        return Status::Internal("node " + std::to_string(i) + ": bad level");
      }
    } else if (id != 0) {
      return Status::Internal("non-root node without parent");
    }
    for (NodeId c = n.first_child; c != kNullNode;
         c = nodes_[static_cast<size_t>(c)].next_sibling) {
      if (nodes_[static_cast<size_t>(c)].parent != id) {
        return Status::Internal("child/parent pointer mismatch at node " +
                                std::to_string(c));
      }
    }
  }
  return Status::OK();
}

XmlDocumentBuilder::XmlDocumentBuilder() = default;

NodeId XmlDocumentBuilder::StartElement(const std::string& tag) {
  NodeId id = static_cast<NodeId>(doc_.nodes_.size());
  XmlNode n;
  n.tag = static_cast<int32_t>(doc_.tag_dict_.Intern(tag));
  n.level = static_cast<int32_t>(stack_.size());
  if (!stack_.empty()) {
    n.parent = stack_.back();
    NodeId prev = last_child_.back();
    if (prev == kNullNode) {
      doc_.nodes_[static_cast<size_t>(stack_.back())].first_child = id;
    } else {
      doc_.nodes_[static_cast<size_t>(prev)].next_sibling = id;
    }
    last_child_.back() = id;
  }
  doc_.nodes_.push_back(std::move(n));
  stack_.push_back(id);
  last_child_.push_back(kNullNode);
  return id;
}

void XmlDocumentBuilder::AddText(const std::string& text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty() || stack_.empty()) return;
  doc_.nodes_[static_cast<size_t>(stack_.back())].text += trimmed;
}

NodeId XmlDocumentBuilder::AddLeaf(const std::string& tag,
                                   const std::string& text) {
  NodeId id = StartElement(tag);
  AddText(text);
  XJ_CHECK_OK(EndElement());
  return id;
}

Status XmlDocumentBuilder::EndElement() {
  if (stack_.empty()) return Status::InvalidArgument("EndElement at depth 0");
  NodeId id = stack_.back();
  doc_.nodes_[static_cast<size_t>(id)].subtree_end =
      static_cast<NodeId>(doc_.nodes_.size()) - 1;
  stack_.pop_back();
  last_child_.pop_back();
  if (stack_.empty()) root_done_ = true;
  return Status::OK();
}

Result<XmlDocument> XmlDocumentBuilder::Finish() {
  if (!stack_.empty()) {
    return Status::InvalidArgument(std::to_string(stack_.size()) +
                                   " elements left open");
  }
  if (doc_.nodes_.empty()) return Status::InvalidArgument("empty document");
  if (doc_.nodes_[0].subtree_end !=
      static_cast<NodeId>(doc_.nodes_.size()) - 1) {
    return Status::InvalidArgument("document has multiple root elements");
  }
  return std::move(doc_);
}

}  // namespace xjoin
