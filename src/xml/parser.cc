#include "xml/parser.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace xjoin {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<XmlDocument> Run() {
    XJ_RETURN_NOT_OK(ParseProlog());
    XJ_RETURN_NOT_OK(ParseElement());
    SkipMisc();
    if (!AtEnd()) return Error("trailing content after root element");
    return builder_.Finish();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }

  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  bool Consume(std::string_view token) {
    if (text_.substr(pos_).substr(0, token.size()) != token) return false;
    for (size_t i = 0; i < token.size(); ++i) Advance();
    return true;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("XML " + std::to_string(line_) + ":" +
                              std::to_string(col_) + ": " + msg);
  }

  void SkipWhitespace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\r' ||
                        Peek() == '\n')) {
      Advance();
    }
  }

  Status SkipUntil(std::string_view terminator, const std::string& what) {
    while (!AtEnd()) {
      if (Consume(terminator)) return Status::OK();
      Advance();
    }
    return Error("unterminated " + what);
  }

  // Comments, PIs and whitespace between top-level constructs.
  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (Consume("<!--")) {
        if (!SkipUntil("-->", "comment").ok()) return;
      } else if (!AtEnd() && Peek() == '<' && PeekAt(1) == '?') {
        if (!SkipUntil("?>", "processing instruction").ok()) return;
      } else {
        return;
      }
    }
  }

  Status ParseProlog() {
    SkipMisc();
    if (Consume("<!DOCTYPE")) {
      // Skip a (possibly bracketed) DOCTYPE without interpreting it.
      int bracket_depth = 0;
      while (!AtEnd()) {
        char c = Peek();
        if (c == '[') ++bracket_depth;
        if (c == ']') --bracket_depth;
        if (c == '>' && bracket_depth <= 0) {
          Advance();
          SkipMisc();
          return Status::OK();
        }
        Advance();
      }
      return Error("unterminated DOCTYPE");
    }
    return Status::OK();
  }

  static bool IsNameStart(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) {
      name += Peek();
      Advance();
    }
    return name;
  }

  // Decodes one entity/char reference after the '&' has been consumed.
  Result<std::string> ParseReference() {
    std::string entity;
    while (!AtEnd() && Peek() != ';') {
      entity += Peek();
      Advance();
      if (entity.size() > 12) return Error("unterminated entity reference");
    }
    if (AtEnd()) return Error("unterminated entity reference");
    Advance();  // ';'
    if (entity == "amp") return std::string("&");
    if (entity == "lt") return std::string("<");
    if (entity == "gt") return std::string(">");
    if (entity == "quot") return std::string("\"");
    if (entity == "apos") return std::string("'");
    if (!entity.empty() && entity[0] == '#') {
      int base = 10;
      std::string digits = entity.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty())
        return Error("bad character reference &" + entity + ";");
      char* end = nullptr;
      long code = std::strtol(digits.c_str(), &end, base);
      if (end != digits.c_str() + digits.size() || code <= 0 ||
          code > 0x10FFFF) {
        return Error("bad character reference &" + entity + ";");
      }
      // Encode as UTF-8.
      std::string out;
      unsigned cp = static_cast<unsigned>(code);
      if (cp < 0x80) {
        out += static_cast<char>(cp);
      } else if (cp < 0x800) {
        out += static_cast<char>(0xC0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      } else if (cp < 0x10000) {
        out += static_cast<char>(0xE0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      } else {
        out += static_cast<char>(0xF0 | (cp >> 18));
        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      }
      return out;
    }
    return Error("unknown entity &" + entity + ";");
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        Advance();
        XJ_ASSIGN_OR_RETURN(std::string decoded, ParseReference());
        value += decoded;
      } else if (Peek() == '<') {
        return Error("'<' in attribute value");
      } else {
        value += Peek();
        Advance();
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    Advance();  // closing quote
    return value;
  }

  Status ParseElement() {
    if (!Consume("<")) return Error("expected '<'");
    XJ_ASSIGN_OR_RETURN(std::string tag, ParseName());
    builder_.StartElement(tag);

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag <" + tag);
      if (Peek() == '>' || (Peek() == '/' && PeekAt(1) == '>')) break;
      XJ_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (!Consume("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      XJ_ASSIGN_OR_RETURN(std::string attr_value, ParseAttributeValue());
      builder_.StartElement("@" + attr_name);
      builder_.AddText(attr_value);
      XJ_RETURN_NOT_OK(builder_.EndElement());
    }

    if (Consume("/>")) return builder_.EndElement();
    if (!Consume(">")) return Error("expected '>'");

    // Content.
    std::string text;
    for (;;) {
      if (AtEnd()) return Error("unterminated element <" + tag + ">");
      if (Peek() == '<') {
        if (Consume("<!--")) {
          XJ_RETURN_NOT_OK(SkipUntil("-->", "comment"));
        } else if (Consume("<![CDATA[")) {
          while (!AtEnd() && !Consume("]]>")) {
            text += Peek();
            Advance();
          }
        } else if (PeekAt(1) == '?') {
          XJ_RETURN_NOT_OK(SkipUntil("?>", "processing instruction"));
        } else if (PeekAt(1) == '/') {
          Consume("</");
          XJ_ASSIGN_OR_RETURN(std::string closing, ParseName());
          if (closing != tag) {
            return Error("mismatched close tag </" + closing +
                         ">, expected </" + tag + ">");
          }
          SkipWhitespace();
          if (!Consume(">")) return Error("expected '>' in close tag");
          builder_.AddText(text);
          return builder_.EndElement();
        } else {
          XJ_RETURN_NOT_OK(ParseElement());
        }
      } else if (Peek() == '&') {
        Advance();
        XJ_ASSIGN_OR_RETURN(std::string decoded, ParseReference());
        text += decoded;
      } else {
        text += Peek();
        Advance();
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
  XmlDocumentBuilder builder_;
};

}  // namespace

Result<XmlDocument> ParseXml(std::string_view text) {
  Parser parser(text);
  return parser.Run();
}

Result<XmlDocument> ParseXmlFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  auto doc = ParseXml(text);
  if (!doc.ok()) return doc.status().WithContext(path);
  return doc;
}

}  // namespace xjoin
