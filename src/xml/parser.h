// A small, dependency-free XML parser covering the subset the paper's
// datasets need: elements, attributes (mapped to "@name" child elements),
// character data with the five predefined entities plus numeric
// references, comments, processing instructions, and CDATA sections.
// No DTD processing; documents must have a single root element.
#ifndef XJOIN_XML_PARSER_H_
#define XJOIN_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "xml/document.h"

namespace xjoin {

/// Parses `text` into a document. Errors carry 1-based line/column.
Result<XmlDocument> ParseXml(std::string_view text);

/// Reads and parses a file.
Result<XmlDocument> ParseXmlFile(const std::string& path);

}  // namespace xjoin

#endif  // XJOIN_XML_PARSER_H_
