#include "net/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "net/socket.h"

namespace xjoin {
namespace net {

namespace {

// splitmix64: deterministic, seedable, and good enough to decorrelate
// backoff across clients sharing a seed base.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

bool IsRetryable(const Status& status) {
  // Overload rejections are worth retrying only when the producer
  // attached retry context; a kResourceExhausted without it (result
  // too large, budget ceiling) will fail identically on every try.
  return status.code() == StatusCode::kResourceExhausted &&
         status.retry_info().has_value();
}

}  // namespace

XJoinClient::XJoinClient(ClientOptions options)
    : options_(std::move(options)), rng_state_(options_.jitter_seed) {}

XJoinClient::~XJoinClient() { Close(); }

void XJoinClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status XJoinClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  XJ_ASSIGN_OR_RETURN(
      fd_, ConnectTcp(options_.host, options_.port,
                      SteadyNowMicros() + options_.connect_timeout_micros));
  ++stats_.reconnects;
  return Status::OK();
}

Result<std::pair<FrameHeader, std::string>> XJoinClient::RoundTrip(
    FrameType type, const std::string& request_payload) {
  XJ_RETURN_NOT_OK(EnsureConnected());
  const int64_t deadline = SteadyNowMicros() + options_.request_timeout_micros;
  const Status wrote = WriteFrame(fd_, type, request_payload, deadline);
  if (!wrote.ok()) {
    Close();  // the stream position is unknown; start fresh
    return wrote.WithContext("request write");
  }
  Result<std::pair<FrameHeader, std::string>> frame = ReadFrame(fd_, deadline);
  if (!frame.ok()) {
    Close();
    return frame.status().WithContext("response read");
  }
  return frame;
}

void XJoinClient::Backoff(int retry_number, const RetryInfo* hint) {
  int64_t wait;
  if (hint != nullptr && hint->retry_after_micros > 0) {
    wait = hint->retry_after_micros;
    ++stats_.hints_honored;
  } else {
    const int shift = std::min(retry_number - 1, 20);
    wait = std::min(options_.backoff_cap_micros,
                    options_.backoff_base_micros << shift);
  }
  if (wait <= 0) return;
  // Jitter into [wait/2, wait] so a shed stampede decorrelates.
  const int64_t half = wait / 2;
  wait = half + static_cast<int64_t>(NextRandom(&rng_state_) %
                                     static_cast<uint64_t>(half + 1));
  std::this_thread::sleep_for(std::chrono::microseconds(wait));
}

Result<QueryResultSet> XJoinClient::Query(const QueryRequest& request) {
  ++stats_.requests;
  const std::string payload = EncodeQueryRequest(request);
  const int max_attempts = std::max(1, options_.max_attempts);
  Status last = Status::Internal("query never attempted");
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) ++stats_.retries;
    Result<std::pair<FrameHeader, std::string>> frame =
        RoundTrip(FrameType::kQuery, payload);
    if (!frame.ok()) {
      last = frame.status();  // transport failure: retryable
      if (attempt < max_attempts) Backoff(attempt, nullptr);
      continue;
    }
    const FrameHeader& header = frame->first;
    if (header.type == FrameType::kResult) {
      Result<QueryResultSet> result = DecodeQueryResultSet(frame->second);
      if (!result.ok()) {
        Close();  // a garbled result payload poisons the stream
        return result.status().WithContext("malformed result frame");
      }
      return result;
    }
    if (header.type == FrameType::kError) {
      Status error;
      const Status parsed = DecodeErrorStatus(frame->second, &error);
      if (!parsed.ok()) {
        Close();
        return parsed.WithContext("malformed error frame");
      }
      last = error;
      if (!IsRetryable(last)) return last;
      if (attempt < max_attempts) {
        const RetryInfo* hint = last.retry_info().has_value()
                                    ? &last.retry_info().value()
                                    : nullptr;
        Backoff(attempt, hint);
      }
      continue;
    }
    Close();  // a pong to a query is a protocol violation
    return Status::Internal("unexpected frame type " +
                            std::to_string(static_cast<int>(header.type)) +
                            " in response to a query");
  }
  return last.WithContext("after " + std::to_string(max_attempts) +
                          " attempts");
}

Result<HealthReply> XJoinClient::Ping() {
  ++stats_.requests;
  const int max_attempts = std::max(1, options_.max_attempts);
  Status last = Status::Internal("ping never attempted");
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) ++stats_.retries;
    Result<std::pair<FrameHeader, std::string>> frame =
        RoundTrip(FrameType::kPing, std::string());
    if (!frame.ok()) {
      last = frame.status();
      if (attempt < max_attempts) Backoff(attempt, nullptr);
      continue;
    }
    if (frame->first.type == FrameType::kPong) {
      Result<HealthReply> health = DecodeHealthReply(frame->second);
      if (!health.ok()) {
        Close();
        return health.status().WithContext("malformed pong frame");
      }
      return health;
    }
    if (frame->first.type == FrameType::kError) {
      Status error;
      const Status parsed = DecodeErrorStatus(frame->second, &error);
      if (!parsed.ok()) {
        Close();
        return parsed.WithContext("malformed error frame");
      }
      return error;
    }
    Close();
    return Status::Internal("unexpected frame type in response to a ping");
  }
  return last.WithContext("after " + std::to_string(max_attempts) +
                          " attempts");
}

}  // namespace net
}  // namespace xjoin
