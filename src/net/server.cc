#include "net/server.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "net/socket.h"

namespace xjoin {
namespace net {

namespace {

enum ConnState : int {
  kReadHeader = 0,
  kReadBody = 1,
  kQueued = 2,
  kExecuting = 3,
  kClosed = 4,
};

// Budget for small frames the event loop writes itself (shed errors,
// pongs): long enough for any live loopback peer, short enough that a
// wedged one cannot stall the loop.
constexpr int64_t kInlineWriteBudgetMicros = 100 * 1000;

#ifdef POLLRDHUP
constexpr short kHangupEvents = POLLRDHUP;
constexpr bool kHaveRdhup = true;
#else
// No POLLRDHUP: watch POLLIN on busy connections and probe with
// MSG_PEEK — 0 bytes means the peer hung up.
constexpr short kHangupEvents = POLLIN;
constexpr bool kHaveRdhup = false;
#endif

}  // namespace

struct XJoinServer::Conn {
  int fd = -1;
  std::atomic<int> state{kReadHeader};

  // Frame assembly. Event-loop-only while the state is kReadHeader /
  // kReadBody; the worker resets the handful it touches before handing
  // the connection back (the release of the atomic state store orders
  // those writes, and the loop never reads them while the connection is
  // kQueued / kExecuting).
  uint8_t head[kFrameHeaderSize];
  size_t have = 0;
  bool have_header = false;
  FrameHeader header;
  std::string body;
  int64_t frame_deadline = 0;  ///< 0 = no partial frame in flight
  int64_t idle_since = 0;

  /// The active request's cancel scope. Guarded by cancel_mu: the event
  /// loop cancels it on disconnect while the worker clears it on
  /// completion.
  std::mutex cancel_mu;
  std::shared_ptr<CancellationToken> cancel;

  /// Peer hung up (or a write failed): the response is undeliverable
  /// and the loop should close as soon as the worker hands back.
  std::atomic<bool> client_gone{false};

  /// Fallback-only (no POLLRDHUP): the peer pipelined bytes while a
  /// request was executing; stop polling until the worker hands back,
  /// or the loop would spin on POLLIN.
  std::atomic<bool> pipelined{false};
};

struct XJoinServer::Job {
  std::shared_ptr<Conn> conn;
  QueryRequest request;
};

XJoinServer::XJoinServer(const MultiModelDatabase* db, ServerOptions options)
    : db_(db), options_(options) {}

XJoinServer::~XJoinServer() { Shutdown(); }

Status XJoinServer::Start() {
  if (started_.exchange(true)) {
    return Status::Internal("server already started");
  }
  XJ_ASSIGN_OR_RETURN(listen_fd_, ListenLoopback(options_.port));
  XJ_ASSIGN_OR_RETURN(port_, ListenerPort(listen_fd_));
  int pipefd[2];
  if (::pipe(pipefd) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  XJ_RETURN_NOT_OK(SetNonBlocking(wake_rd_));
  XJ_RETURN_NOT_OK(SetNonBlocking(wake_wr_));
  const int num_workers = std::max(1, options_.num_workers);
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  loop_thread_ = std::thread([this] { EventLoop(); });
  XJ_LOG(Info) << "xjoin server listening on 127.0.0.1:" << port_ << " ("
               << num_workers << " workers, max " << options_.max_connections
               << " connections, max " << options_.max_inflight
               << " in-flight)";
  return Status::OK();
}

void XJoinServer::Poke() {
  if (wake_wr_ < 0) return;
  const char b = 0;
  const ssize_t ignored = ::write(wake_wr_, &b, 1);
  (void)ignored;  // a full pipe already guarantees a wakeup
}

Status XJoinServer::ShedError(const std::string& why, int queue_depth) const {
  return Status::ResourceExhausted(why).WithRetryInfo(
      RetryInfo{options_.shed_retry_after_micros, queue_depth});
}

HealthReply XJoinServer::Health() const {
  HealthReply health;
  health.draining = draining_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    health.active_connections = static_cast<int32_t>(conns_.size());
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    health.inflight = inflight_;
  }
  health.served = served_ok_.load(std::memory_order_relaxed) +
                  served_error_.load(std::memory_order_relaxed);
  health.shed = rejected_conn_limit_.load(std::memory_order_relaxed) +
                shed_inflight_.load(std::memory_order_relaxed) +
                shed_draining_.load(std::memory_order_relaxed);
  return health;
}

ServerStats XJoinServer::stats() const {
  ServerStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected_conn_limit =
      rejected_conn_limit_.load(std::memory_order_relaxed);
  out.shed_inflight = shed_inflight_.load(std::memory_order_relaxed);
  out.shed_draining = shed_draining_.load(std::memory_order_relaxed);
  out.evicted_slow = evicted_slow_.load(std::memory_order_relaxed);
  out.served_ok = served_ok_.load(std::memory_order_relaxed);
  out.served_error = served_error_.load(std::memory_order_relaxed);
  out.cancelled_disconnect =
      cancelled_disconnect_.load(std::memory_order_relaxed);
  out.cancelled_drain = cancelled_drain_.load(std::memory_order_relaxed);
  out.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  out.pings = pings_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    out.active_connections = static_cast<int>(conns_.size());
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    out.inflight = inflight_;
  }
  return out;
}

void XJoinServer::EventLoop() {
  std::vector<struct pollfd> pfds;
  std::vector<std::shared_ptr<Conn>> polled;
  while (!loop_stop_.load(std::memory_order_relaxed)) {
    // Draining: stop accepting. Only this thread touches listen_fd_
    // after Start(), so the close cannot race a poll() on it.
    if (draining_.load(std::memory_order_relaxed) && listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }

    pfds.clear();
    polled.clear();
    pfds.push_back({wake_rd_, POLLIN, 0});
    if (listen_fd_ >= 0) pfds.push_back({listen_fd_, POLLIN, 0});
    const size_t fixed = pfds.size();

    // Sweep: close finished/evicted connections, poll the rest.
    const int64_t now = SteadyNowMicros();
    int64_t next_deadline = 0;
    auto track_deadline = [&next_deadline](int64_t d) {
      if (d > 0 && (next_deadline == 0 || d < next_deadline)) {
        next_deadline = d;
      }
    };
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        const std::shared_ptr<Conn>& conn = it->second;
        const int state = conn->state.load();
        bool close_now = state == kClosed;
        if (!close_now && (state == kReadHeader || state == kReadBody)) {
          if (conn->client_gone.load(std::memory_order_relaxed)) {
            close_now = true;
          } else if (conn->frame_deadline > 0 &&
                     now >= conn->frame_deadline) {
            evicted_slow_.fetch_add(1, std::memory_order_relaxed);
            close_now = true;
          } else if (options_.idle_timeout_micros > 0 &&
                     conn->frame_deadline == 0 &&
                     now - conn->idle_since >= options_.idle_timeout_micros) {
            evicted_slow_.fetch_add(1, std::memory_order_relaxed);
            close_now = true;
          }
        }
        if (close_now) {
          ::close(conn->fd);
          it = conns_.erase(it);
          continue;
        }
        if (state == kReadHeader || state == kReadBody) {
          pfds.push_back({conn->fd, POLLIN, 0});
          polled.push_back(conn);
          track_deadline(conn->frame_deadline);
          if (options_.idle_timeout_micros > 0 && conn->frame_deadline == 0) {
            track_deadline(conn->idle_since + options_.idle_timeout_micros);
          }
        } else if (!conn->pipelined.load(std::memory_order_relaxed)) {
          // kQueued / kExecuting: watch only for the peer hanging up.
          pfds.push_back({conn->fd, kHangupEvents, 0});
          polled.push_back(conn);
        }
        ++it;
      }
    }

    int timeout_ms = 100;
    if (next_deadline > 0) {
      const int64_t left_ms = (next_deadline - now) / 1000 + 1;
      timeout_ms = static_cast<int>(std::max<int64_t>(
          1, std::min<int64_t>(left_ms, timeout_ms)));
    }
    const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      XJ_LOG(Warning) << "server poll failed: " << std::strerror(errno);
      continue;
    }
    if (pfds[0].revents != 0) {
      char buf[64];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (listen_fd_ >= 0 && fixed > 1 && pfds[1].revents != 0) {
      HandleAccept();
    }
    for (size_t i = fixed; i < pfds.size(); ++i) {
      const std::shared_ptr<Conn>& conn = polled[i - fixed];
      const short revents = pfds[i].revents;
      if (revents == 0) continue;
      const int state = conn->state.load();
      if (state == kQueued || state == kExecuting) {
        bool gone = (revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
#ifdef POLLRDHUP
        gone = gone || (revents & POLLRDHUP) != 0;
#endif
        if (!kHaveRdhup && !gone && (revents & POLLIN) != 0) {
          char probe;
          const ssize_t n =
              ::recv(conn->fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
          if (n == 0) {
            gone = true;
          } else if (n > 0) {
            conn->pipelined.store(true, std::memory_order_relaxed);
          }
        }
        if (gone &&
            !conn->client_gone.exchange(true, std::memory_order_relaxed)) {
          std::lock_guard<std::mutex> lk(conn->cancel_mu);
          if (conn->cancel != nullptr) {
            conn->cancel->Cancel("client disconnected");
            cancelled_disconnect_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } else if (state == kReadHeader || state == kReadBody) {
        HandleReadable(conn);
      }
    }
  }
}

void XJoinServer::HandleAccept() {
  for (;;) {
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained the backlog
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (XJOIN_FAULT("net.accept")) {
      ::close(cfd);
      continue;
    }
    if (!SetNonBlocking(cfd).ok()) {
      ::close(cfd);
      continue;
    }
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    size_t live;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      live = conns_.size();
    }
    if (static_cast<int>(live) >= options_.max_connections) {
      rejected_conn_limit_.fetch_add(1, std::memory_order_relaxed);
      const Status shed =
          ShedError("connection ceiling reached (" +
                        std::to_string(options_.max_connections) +
                        " connections); retry against a live slot",
                    /*queue_depth=*/-1);
      WriteFrame(cfd, FrameType::kError, EncodeErrorStatus(shed),
                 SteadyNowMicros() + kInlineWriteBudgetMicros);
      ::close(cfd);
      continue;
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = cfd;
    conn->idle_since = SteadyNowMicros();
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.emplace(cfd, std::move(conn));
  }
}

void XJoinServer::HandleReadable(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    const size_t want =
        !conn->have_header
            ? kFrameHeaderSize - conn->have
            : static_cast<size_t>(conn->header.payload_len) - conn->have;
    if (want > 0) {
      uint8_t* dst =
          !conn->have_header
              ? conn->head + conn->have
              : reinterpret_cast<uint8_t*>(&conn->body[0]) + conn->have;
      const ssize_t n = ::recv(conn->fd, dst, want, 0);
      if (n == 0) {  // clean EOF
        conn->state.store(kClosed);
        return;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // more later
        conn->state.store(kClosed);
        return;
      }
      if (XJOIN_FAULT("net.read")) {  // simulated torn read
        conn->state.store(kClosed);
        return;
      }
      conn->have += static_cast<size_t>(n);
      if (conn->frame_deadline == 0 && options_.read_timeout_micros > 0) {
        conn->frame_deadline =
            SteadyNowMicros() + options_.read_timeout_micros;
      }
      conn->state.store(conn->have_header ? kReadBody : kReadHeader);
    }
    if (!conn->have_header) {
      if (conn->have < kFrameHeaderSize) continue;
      const Result<FrameHeader> header = DecodeFrameHeader(conn->head);
      if (!header.ok()) {
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        conn->state.store(kClosed);
        return;
      }
      conn->header = *header;
      conn->have_header = true;
      conn->have = 0;
      conn->body.assign(conn->header.payload_len, '\0');
      if (conn->header.payload_len > 0) continue;
    } else if (conn->have < conn->header.payload_len) {
      continue;
    }
    HandleFrame(conn);
    if (conn->state.load() != kReadHeader) return;  // queued or closed
  }
}

void XJoinServer::HandleFrame(const std::shared_ptr<Conn>& conn) {
  const FrameType type = conn->header.type;
  const std::string body = std::move(conn->body);
  // Forget the assembled frame before dispatch so an inline reply
  // leaves the connection ready for its next request.
  conn->have = 0;
  conn->have_header = false;
  conn->body.clear();
  conn->frame_deadline = 0;
  conn->idle_since = SteadyNowMicros();
  conn->state.store(kReadHeader);

  switch (type) {
    case FrameType::kPing: {
      pings_.fetch_add(1, std::memory_order_relaxed);
      WriteInline(conn, FrameType::kPong, EncodeHealthReply(Health()));
      return;
    }
    case FrameType::kQuery: {
      Result<QueryRequest> request = DecodeQueryRequest(body);
      if (!request.ok()) {
        // The framing is intact; the payload is not. Typed reply, keep
        // the connection.
        WriteInline(conn, FrameType::kError,
                    EncodeErrorStatus(Status::InvalidArgument(
                        "malformed query frame: " +
                        request.status().message())));
        return;
      }
      if (draining_.load(std::memory_order_relaxed)) {
        shed_draining_.fetch_add(1, std::memory_order_relaxed);
        WriteInline(conn, FrameType::kError,
                    EncodeErrorStatus(ShedError(
                        "server is draining; retry against another replica",
                        /*queue_depth=*/-1)));
        return;
      }
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        if (inflight_ >= options_.max_inflight) {
          const int depth = static_cast<int>(queue_.size());
          lock.unlock();
          shed_inflight_.fetch_add(1, std::memory_order_relaxed);
          WriteInline(conn, FrameType::kError,
                      EncodeErrorStatus(ShedError(
                          "in-flight request ceiling reached (" +
                              std::to_string(options_.max_inflight) +
                              " requests queued or executing)",
                          depth)));
          return;
        }
        ++inflight_;
        {
          std::lock_guard<std::mutex> lk(conn->cancel_mu);
          conn->cancel = std::make_shared<CancellationToken>();
        }
        conn->state.store(kQueued);
        queue_.push_back(Job{conn, std::move(*request)});
      }
      queue_cv_.notify_one();
      return;
    }
    default:
      // kResult / kError / kPong have no business arriving at a server.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      conn->state.store(kClosed);
      return;
  }
}

void XJoinServer::WriteInline(const std::shared_ptr<Conn>& conn,
                              FrameType type, const std::string& payload) {
  const Status st = WriteFrame(conn->fd, type, payload,
                               SteadyNowMicros() + kInlineWriteBudgetMicros);
  if (!st.ok()) {
    if (st.code() == StatusCode::kDeadlineExceeded) {
      evicted_slow_.fetch_add(1, std::memory_order_relaxed);
    }
    conn->state.store(kClosed);
    return;
  }
  if (type == FrameType::kError) {
    served_error_.fetch_add(1, std::memory_order_relaxed);
  }
}

void XJoinServer::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // workers_stop_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const std::shared_ptr<Conn>& conn = job.conn;
    conn->state.store(kExecuting);
    std::shared_ptr<CancellationToken> token;
    {
      std::lock_guard<std::mutex> lk(conn->cancel_mu);
      token = conn->cancel;
    }

    QueryOptions qopts;
    qopts.xjoin.num_threads = options_.query_num_threads;
    qopts.max_rows = job.request.max_rows;
    qopts.max_bytes = job.request.max_bytes;
    qopts.deadline_micros = job.request.deadline_micros;
    qopts.tenant = job.request.tenant;
    qopts.cancel = token.get();

    // Each request runs over its own snapshot, pinned for exactly the
    // request's lifetime. Execution morsel-parallelizes on the shared
    // Executor pool inside the engine.
    const Session session = db_->OpenSession();
    const Result<Relation> result = session.Query(job.request.text, qopts);

    FrameType type = FrameType::kError;
    std::string payload;
    if (result.ok()) {
      const Relation& rel = *result;
      const Dictionary& dict = db_->dictionary();
      QueryResultSet rs;
      rs.columns = rel.schema().attributes();
      rs.rows.reserve(rel.num_rows());
      for (size_t r = 0; r < rel.num_rows(); ++r) {
        std::vector<std::string> row;
        row.reserve(rel.num_columns());
        for (size_t c = 0; c < rel.num_columns(); ++c) {
          const int64_t code = rel.at(r, c);
          row.push_back(dict.Contains(code) ? dict.Decode(code)
                                            : "#" + std::to_string(code));
        }
        rs.rows.push_back(std::move(row));
      }
      Result<std::string> encoded = EncodeQueryResultSet(rs);
      if (encoded.ok()) {
        type = FrameType::kResult;
        payload = std::move(*encoded);
      } else {
        payload = EncodeErrorStatus(encoded.status());
      }
    } else {
      payload = EncodeErrorStatus(result.status());
    }

    bool keep = false;
    if (!conn->client_gone.load(std::memory_order_relaxed)) {
      if (XJOIN_FAULT("net.drop_response")) {
        // Simulated lost response: the request executed, the client
        // never hears back and must retry on a fresh connection.
        conn->client_gone.store(true, std::memory_order_relaxed);
      } else {
        const Status wrote =
            WriteFrame(conn->fd, type, payload,
                       SteadyNowMicros() + options_.write_timeout_micros);
        if (wrote.ok()) {
          keep = true;
          (type == FrameType::kResult ? served_ok_ : served_error_)
              .fetch_add(1, std::memory_order_relaxed);
        } else {
          if (wrote.code() == StatusCode::kDeadlineExceeded) {
            evicted_slow_.fetch_add(1, std::memory_order_relaxed);
          }
          conn->client_gone.store(true, std::memory_order_relaxed);
        }
      }
    }

    {
      std::lock_guard<std::mutex> lk(conn->cancel_mu);
      conn->cancel.reset();
    }
    conn->pipelined.store(false, std::memory_order_relaxed);
    conn->frame_deadline = 0;
    conn->idle_since = SteadyNowMicros();
    conn->state.store(keep ? kReadHeader : kClosed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --inflight_;
    }
    drain_cv_.notify_all();
    Poke();
  }
}

void XJoinServer::Shutdown(int64_t drain_deadline_micros) {
  if (!started_.load(std::memory_order_relaxed)) return;
  if (shut_down_.exchange(true)) return;
  draining_.store(true, std::memory_order_relaxed);
  Poke();  // the loop notices and closes the listen fd

  // Phase 1: let in-flight requests finish until the drain deadline.
  const int64_t deadline =
      SteadyNowMicros() + std::max<int64_t>(0, drain_deadline_micros);
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    while (inflight_ > 0 && SteadyNowMicros() < deadline) {
      drain_cv_.wait_for(lock, std::chrono::milliseconds(5));
    }
  }

  // Phase 2: cancel whatever is still running or queued. The engines
  // unwind within one budget-check interval; the clients of those
  // requests see a typed kCancelled response.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& entry : conns_) {
      const std::shared_ptr<Conn>& conn = entry.second;
      std::lock_guard<std::mutex> lk(conn->cancel_mu);
      if (conn->cancel != nullptr) {
        conn->cancel->Cancel("server drain deadline exceeded");
        cancelled_drain_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    while (inflight_ > 0) {
      drain_cv_.wait_for(lock, std::chrono::milliseconds(5));
    }
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  // Phase 3: stop the loop and release every fd.
  loop_stop_.store(true, std::memory_order_relaxed);
  Poke();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& entry : conns_) ::close(entry.second->fd);
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_rd_ >= 0) {
    ::close(wake_rd_);
    wake_rd_ = -1;
  }
  if (wake_wr_ >= 0) {
    ::close(wake_wr_);
    wake_wr_ = -1;
  }
}

}  // namespace net
}  // namespace xjoin
