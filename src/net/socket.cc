#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "common/fault.h"

namespace xjoin {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// Blocks until `fd` is ready for `events` or the deadline passes.
Status WaitReady(int fd, short events, int64_t deadline_micros) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline_micros > 0) {
      const int64_t left = deadline_micros - SteadyNowMicros();
      if (left <= 0) return Status::DeadlineExceeded("socket wait timed out");
      timeout_ms = static_cast<int>((left + 999) / 1000);
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) return Status::DeadlineExceeded("socket wait timed out");
    if (pfd.revents & (POLLERR | POLLNVAL)) {
      return Status::IOError("socket error while waiting for readiness");
    }
    return Status::OK();
  }
}

}  // namespace

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Result<int> ListenLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) < 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  const Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  return fd;
}

Result<int> ListenerPort(int fd) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<int> ConnectTcp(const std::string& host, int port,
                       int64_t deadline_micros) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("invalid IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) {
      const Status st = Errno("connect");
      ::close(fd);
      return st;
    }
    const Status ready = WaitReady(fd, POLLOUT, deadline_micros);
    if (!ready.ok()) {
      ::close(fd);
      return ready.WithContext("connect to " + host + ":" +
                               std::to_string(port));
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      ::close(fd);
      return Status::IOError("connect to " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(err != 0 ? err : errno));
    }
  }
  return fd;
}

Status ReadFull(int fd, uint8_t* buf, size_t n, int64_t deadline_micros) {
  size_t have = 0;
  while (have < n) {
    const ssize_t rc = ::recv(fd, buf + have, n - have, 0);
    if (rc > 0) {
      have += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (have == 0) return Status::IOError("connection closed");
      return Status::IOError("connection closed mid-frame (" +
                             std::to_string(have) + "/" + std::to_string(n) +
                             " bytes)");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      XJ_RETURN_NOT_OK(WaitReady(fd, POLLIN, deadline_micros));
      continue;
    }
    return Errno("recv");
  }
  return Status::OK();
}

Status WriteFull(int fd, const uint8_t* buf, size_t n,
                 int64_t deadline_micros) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      XJ_RETURN_NOT_OK(WaitReady(fd, POLLOUT, deadline_micros));
      continue;
    }
    return Errno("send");
  }
  return Status::OK();
}

Status WriteFrame(int fd, FrameType type, std::string_view payload,
                  int64_t deadline_micros) {
  if (XJOIN_FAULT("net.write")) {
    return Status::IOError(
        "fault injection: response write failed (site net.write)");
  }
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload exceeds the 64 MiB cap");
  }
  FrameHeader header;
  header.type = type;
  header.payload_len = static_cast<uint32_t>(payload.size());
  uint8_t head[kFrameHeaderSize];
  EncodeFrameHeader(header, head);
  // Header and payload go out as one buffer so a slow peer cannot
  // observe a torn header boundary across our two writes.
  std::string wire;
  wire.reserve(kFrameHeaderSize + payload.size());
  wire.append(reinterpret_cast<const char*>(head), kFrameHeaderSize);
  wire.append(payload.data(), payload.size());
  return WriteFull(fd, reinterpret_cast<const uint8_t*>(wire.data()),
                   wire.size(), deadline_micros);
}

Result<std::pair<FrameHeader, std::string>> ReadFrame(
    int fd, int64_t deadline_micros) {
  uint8_t head[kFrameHeaderSize];
  XJ_RETURN_NOT_OK(ReadFull(fd, head, kFrameHeaderSize, deadline_micros));
  XJ_ASSIGN_OR_RETURN(FrameHeader header, DecodeFrameHeader(head));
  std::string payload(header.payload_len, '\0');
  if (header.payload_len > 0) {
    XJ_RETURN_NOT_OK(ReadFull(fd,
                              reinterpret_cast<uint8_t*>(&payload[0]),
                              header.payload_len, deadline_micros));
  }
  return std::make_pair(header, std::move(payload));
}

}  // namespace net
}  // namespace xjoin
