#include "net/frame.h"

#include <cstring>

namespace xjoin {
namespace net {

namespace {

// Little-endian scalar/string writer over a std::string buffer.
class PayloadWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

// Bounds-checked little-endian reader. Every Get* fails kParseError
// instead of reading past the payload, so a truncated or hostile frame
// can never walk off the buffer.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* out) {
    if (pos_ + 1 > data_.size()) return Truncated();
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }
  Status GetU32(uint32_t* out) {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }
  Status GetU64(uint64_t* out) {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }
  Status GetI64(int64_t* out) {
    uint64_t v = 0;
    XJ_RETURN_NOT_OK(GetU64(&v));
    *out = static_cast<int64_t>(v);
    return Status::OK();
  }
  Status GetI32(int32_t* out) {
    uint32_t v = 0;
    XJ_RETURN_NOT_OK(GetU32(&v));
    *out = static_cast<int32_t>(v);
    return Status::OK();
  }
  Status GetString(std::string* out) {
    uint32_t len = 0;
    XJ_RETURN_NOT_OK(GetU32(&len));
    if (pos_ + len > data_.size()) return Truncated();
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  /// Decoders call this last: trailing bytes mean a version/format
  /// mismatch and must not be silently ignored.
  Status ExpectEnd() const {
    if (pos_ != data_.size()) {
      return Status::ParseError("frame payload has " +
                                std::to_string(data_.size() - pos_) +
                                " trailing bytes");
    }
    return Status::OK();
  }

 private:
  Status Truncated() const {
    return Status::ParseError("frame payload truncated at offset " +
                              std::to_string(pos_));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kQuery) &&
         type <= static_cast<uint8_t>(FrameType::kPong);
}

void EncodeFrameHeader(const FrameHeader& header,
                       uint8_t out[kFrameHeaderSize]) {
  const uint32_t magic = kFrameMagic;
  for (int i = 0; i < 4; ++i) out[i] = (magic >> (8 * i)) & 0xff;
  out[4] = header.version;
  out[5] = static_cast<uint8_t>(header.type);
  out[6] = 0;
  out[7] = 0;
  for (int i = 0; i < 4; ++i) {
    out[8 + i] = (header.payload_len >> (8 * i)) & 0xff;
  }
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data) {
  uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<uint32_t>(data[i]) << (8 * i);
  }
  if (magic != kFrameMagic) {
    return Status::ParseError("bad frame magic (not an xjoin stream)");
  }
  FrameHeader header;
  header.version = data[4];
  if (header.version != kProtocolVersion) {
    return Status::ParseError("unsupported protocol version " +
                              std::to_string(header.version));
  }
  if (!IsKnownFrameType(data[5])) {
    return Status::ParseError("unknown frame type " + std::to_string(data[5]));
  }
  header.type = static_cast<FrameType>(data[5]);
  if (data[6] != 0 || data[7] != 0) {
    return Status::ParseError("nonzero reserved bits in frame header");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(data[8 + i]) << (8 * i);
  }
  if (len > kMaxPayloadBytes) {
    return Status::ParseError("frame payload of " + std::to_string(len) +
                              " bytes exceeds the 64 MiB cap");
  }
  header.payload_len = len;
  return header;
}

std::string EncodeQueryRequest(const QueryRequest& req) {
  PayloadWriter w;
  w.PutString(req.text);
  w.PutString(req.tenant);
  w.PutI64(req.max_rows);
  w.PutI64(req.max_bytes);
  w.PutI64(req.deadline_micros);
  return w.Take();
}

Result<QueryRequest> DecodeQueryRequest(std::string_view payload) {
  PayloadReader r(payload);
  QueryRequest req;
  XJ_RETURN_NOT_OK(r.GetString(&req.text));
  XJ_RETURN_NOT_OK(r.GetString(&req.tenant));
  XJ_RETURN_NOT_OK(r.GetI64(&req.max_rows));
  XJ_RETURN_NOT_OK(r.GetI64(&req.max_bytes));
  XJ_RETURN_NOT_OK(r.GetI64(&req.deadline_micros));
  XJ_RETURN_NOT_OK(r.ExpectEnd());
  return req;
}

Result<std::string> EncodeQueryResultSet(const QueryResultSet& result) {
  PayloadWriter w;
  w.PutU32(static_cast<uint32_t>(result.columns.size()));
  for (const std::string& name : result.columns) w.PutString(name);
  w.PutU64(result.rows.size());
  for (const auto& row : result.rows) {
    for (const std::string& cell : row) {
      w.PutString(cell);
      if (w.size() > kMaxPayloadBytes) break;  // fail below, stop growing
    }
    if (w.size() > kMaxPayloadBytes) break;
  }
  if (w.size() > kMaxPayloadBytes) {
    return Status::ResourceExhausted(
        "serialized result exceeds the 64 MiB frame cap; constrain the "
        "query with max_rows / max_bytes");
  }
  return w.Take();
}

Result<QueryResultSet> DecodeQueryResultSet(std::string_view payload) {
  PayloadReader r(payload);
  QueryResultSet result;
  uint32_t num_columns = 0;
  XJ_RETURN_NOT_OK(r.GetU32(&num_columns));
  result.columns.resize(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    XJ_RETURN_NOT_OK(r.GetString(&result.columns[c]));
  }
  uint64_t num_rows = 0;
  XJ_RETURN_NOT_OK(r.GetU64(&num_rows));
  // A row costs at least num_columns 4-byte length prefixes, so a
  // hostile count cannot force a huge allocation before the bounds
  // checks below reject the truncated payload.
  if (num_columns > 0 && num_rows > payload.size() / (4 * num_columns) + 1) {
    return Status::ParseError("result row count " + std::to_string(num_rows) +
                              " is impossible for the payload size");
  }
  result.rows.reserve(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    std::vector<std::string> row(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      XJ_RETURN_NOT_OK(r.GetString(&row[c]));
    }
    result.rows.push_back(std::move(row));
  }
  XJ_RETURN_NOT_OK(r.ExpectEnd());
  return result;
}

std::string EncodeErrorStatus(const Status& status) {
  PayloadWriter w;
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  if (status.retry_info().has_value()) {
    w.PutU8(1);
    w.PutI64(status.retry_info()->retry_after_micros);
    w.PutI32(status.retry_info()->queue_depth);
  } else {
    w.PutU8(0);
    w.PutI64(0);
    w.PutI32(-1);
  }
  return w.Take();
}

Status DecodeErrorStatus(std::string_view payload, Status* decoded) {
  PayloadReader r(payload);
  uint8_t code = 0;
  std::string message;
  uint8_t has_retry = 0;
  int64_t retry_after = 0;
  int32_t queue_depth = -1;
  XJ_RETURN_NOT_OK(r.GetU8(&code));
  XJ_RETURN_NOT_OK(r.GetString(&message));
  XJ_RETURN_NOT_OK(r.GetU8(&has_retry));
  XJ_RETURN_NOT_OK(r.GetI64(&retry_after));
  XJ_RETURN_NOT_OK(r.GetI32(&queue_depth));
  XJ_RETURN_NOT_OK(r.ExpectEnd());
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kCancelled)) {
    return Status::ParseError("error frame carries invalid status code " +
                              std::to_string(code));
  }
  Status st(static_cast<StatusCode>(code), std::move(message));
  if (has_retry != 0) {
    st = st.WithRetryInfo(RetryInfo{retry_after, queue_depth});
  }
  *decoded = std::move(st);
  return Status::OK();
}

std::string EncodeHealthReply(const HealthReply& health) {
  PayloadWriter w;
  w.PutU8(health.draining ? 1 : 0);
  w.PutI32(health.active_connections);
  w.PutI32(health.inflight);
  w.PutI64(health.served);
  w.PutI64(health.shed);
  return w.Take();
}

Result<HealthReply> DecodeHealthReply(std::string_view payload) {
  PayloadReader r(payload);
  HealthReply health;
  uint8_t draining = 0;
  XJ_RETURN_NOT_OK(r.GetU8(&draining));
  health.draining = draining != 0;
  XJ_RETURN_NOT_OK(r.GetI32(&health.active_connections));
  XJ_RETURN_NOT_OK(r.GetI32(&health.inflight));
  XJ_RETURN_NOT_OK(r.GetI64(&health.served));
  XJ_RETURN_NOT_OK(r.GetI64(&health.shed));
  XJ_RETURN_NOT_OK(r.ExpectEnd());
  return health;
}

}  // namespace net
}  // namespace xjoin
