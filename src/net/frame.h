// Wire protocol for the xjoin network front-end: a length-prefixed
// framed request/response format over a byte stream, dependency-free
// (no protobuf), deterministic, and versioned.
//
// Every frame is a fixed 12-byte little-endian header followed by
// `payload_len` payload bytes:
//
//     offset  size  field
//     0       4     magic        0x584A4F49 ("XJOI" read as LE u32)
//     4       1     version      kProtocolVersion (currently 1)
//     5       1     type         FrameType
//     6       2     reserved     must be 0
//     8       4     payload_len  <= kMaxPayloadBytes (64 MiB)
//
// Frame conversation (client drives; one outstanding request per
// connection):
//
//     kQuery  ->                  <- kResult | kError
//     kPing   ->                  <- kPong
//
// A malformed HEADER (bad magic/version/oversized payload) poisons the
// stream — the receiver closes the connection. A malformed PAYLOAD on
// an intact header is recoverable — the server answers kError
// (kInvalidArgument) and keeps the connection.
//
// Payload encodings are little-endian with u32 length-prefixed strings;
// result cells travel as decoded dictionary strings so the bytes mean
// the same thing on both sides of the socket. Error payloads carry the
// machine-readable StatusCode plus optional RetryInfo (retry-after
// suggestion + admission queue depth), so a client backs off on data
// instead of parsing the human message.
#ifndef XJOIN_NET_FRAME_H_
#define XJOIN_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xjoin {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x584A4F49;  // "XJOI"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 12;
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;  // 64 MiB

enum class FrameType : uint8_t {
  kQuery = 1,   ///< client -> server: run a query
  kResult = 2,  ///< server -> client: rows
  kError = 3,   ///< server -> client: typed Status (+ retry context)
  kPing = 4,    ///< client -> server: health/readiness probe
  kPong = 5,    ///< server -> client: health snapshot
};

/// True for the five known frame types above.
bool IsKnownFrameType(uint8_t type);

struct FrameHeader {
  uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kQuery;
  uint32_t payload_len = 0;
};

/// Serializes `header` into exactly kFrameHeaderSize bytes.
void EncodeFrameHeader(const FrameHeader& header,
                       uint8_t out[kFrameHeaderSize]);

/// Parses a header from exactly kFrameHeaderSize bytes. Fails
/// kParseError on bad magic, unknown version, unknown type, nonzero
/// reserved bits, or an oversized payload — all of which mean the
/// stream can no longer be trusted and the connection should close.
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data);

/// A query request as it travels on the wire: the query text plus the
/// QueryOptions subset that makes sense cross-process (per-query
/// budgets and the tenant pool name; cancellation is implicit — the
/// connection is the cancel scope).
struct QueryRequest {
  std::string text;
  std::string tenant;          ///< "" = no admission pool
  int64_t max_rows = 0;        ///< 0 = unlimited
  int64_t max_bytes = 0;       ///< 0 = unlimited
  int64_t deadline_micros = 0; ///< relative to server-side start; 0 = none
};

std::string EncodeQueryRequest(const QueryRequest& req);
Result<QueryRequest> DecodeQueryRequest(std::string_view payload);

/// A query result as it travels on the wire: column names plus row-major
/// cells, each cell the dictionary-decoded string (cells whose code is
/// not in the server dictionary — possible only for synthetic data —
/// travel as "#<code>").
struct QueryResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

/// Fails kResourceExhausted (no retry context) when the serialized
/// result would not fit one frame; tighten max_rows/max_bytes instead
/// of retrying.
Result<std::string> EncodeQueryResultSet(const QueryResultSet& result);
Result<QueryResultSet> DecodeQueryResultSet(std::string_view payload);

/// Serializes a non-OK Status, including its RetryInfo when present.
std::string EncodeErrorStatus(const Status& status);
/// Reconstructs the Status (code, message, retry context) from a kError
/// payload into *decoded. The return value reports the decode itself
/// (kParseError on a malformed payload; *decoded untouched then).
Status DecodeErrorStatus(std::string_view payload, Status* decoded);

/// The kPong payload: a point-in-time health/readiness snapshot.
struct HealthReply {
  bool draining = false;  ///< true once Shutdown began: not ready
  int32_t active_connections = 0;
  int32_t inflight = 0;  ///< requests queued or executing
  int64_t served = 0;    ///< responses written (rows or typed errors)
  int64_t shed = 0;      ///< requests rejected by overload ceilings
};

std::string EncodeHealthReply(const HealthReply& health);
Result<HealthReply> DecodeHealthReply(std::string_view payload);

}  // namespace net
}  // namespace xjoin

#endif  // XJOIN_NET_FRAME_H_
