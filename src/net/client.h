// Client library for the xjoin framed-socket front-end: a persistent
// connection with lazy (re)connect, per-attempt timeouts, and a retry
// policy that distinguishes three failure classes:
//
//   * transport failures (connect/read/write errors and timeouts) —
//     retried on a fresh connection with bounded exponential backoff
//     plus deterministic jitter. Queries are read-only, so replaying a
//     request whose response was lost is safe;
//   * typed overload rejections (kResourceExhausted carrying RetryInfo,
//     from tenant admission or the server's shedding ceilings) —
//     retried, honoring the server's retry_after_micros hint when one
//     is present instead of the local backoff curve;
//   * everything else (kInvalidArgument, kParseError, kNotFound,
//     kCancelled, kDeadlineExceeded, kInternal, and kResourceExhausted
//     WITHOUT retry context, e.g. "result exceeds the frame cap") —
//     returned to the caller immediately: retrying cannot help.
//
// Jitter is a pure function of (jitter_seed, retry#), so a test that
// pins the seed replays the identical backoff schedule.
#ifndef XJOIN_NET_CLIENT_H_
#define XJOIN_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/frame.h"

namespace xjoin {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Budget for establishing one connection.
  int64_t connect_timeout_micros = 2'000'000;
  /// Per-attempt budget covering the request write and the full
  /// response read.
  int64_t request_timeout_micros = 30'000'000;
  /// Total tries per Query/Ping call (1 = no retries).
  int max_attempts = 4;
  /// Backoff after retryable failure n (1-based) is
  /// min(cap, base << (n-1)), jittered into [half, full].
  int64_t backoff_base_micros = 2'000;
  int64_t backoff_cap_micros = 250'000;
  /// Seed for the deterministic backoff jitter.
  uint64_t jitter_seed = 1;
};

/// Monotonic per-client counters.
struct ClientStats {
  int64_t requests = 0;       ///< Query/Ping calls
  int64_t retries = 0;        ///< extra attempts beyond the first
  int64_t reconnects = 0;     ///< connections established
  int64_t hints_honored = 0;  ///< backoffs that used a server retry hint
};

/// Not thread-safe: one XJoinClient per thread (the server side is the
/// concurrent one). Destruction closes the connection.
class XJoinClient {
 public:
  explicit XJoinClient(ClientOptions options);
  ~XJoinClient();

  XJoinClient(const XJoinClient&) = delete;
  XJoinClient& operator=(const XJoinClient&) = delete;

  /// Runs one query with the retry policy above. On success the rows
  /// are dictionary-decoded strings in server row order.
  Result<QueryResultSet> Query(const QueryRequest& request);

  /// Health/readiness probe (same retry policy; a draining server still
  /// answers pongs, so check HealthReply::draining).
  Result<HealthReply> Ping();

  /// Drops the connection; the next call reconnects.
  void Close();

  const ClientStats& stats() const { return stats_; }

 private:
  /// Connects if not connected.
  Status EnsureConnected();

  /// One attempt: write `request_payload`, read one response frame.
  Result<std::pair<FrameHeader, std::string>> RoundTrip(
      FrameType type, const std::string& request_payload);

  /// Sleeps before retry `retry_number` (1-based), honoring `hint`
  /// (nullable) over the local curve.
  void Backoff(int retry_number, const RetryInfo* hint);

  ClientOptions options_;
  int fd_ = -1;
  uint64_t rng_state_;
  ClientStats stats_;
};

}  // namespace net
}  // namespace xjoin

#endif  // XJOIN_NET_CLIENT_H_
