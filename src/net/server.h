// Long-lived framed-socket serving front-end over MultiModelDatabase.
//
// Thread model — one event-loop thread plus a small request-worker
// pool:
//
//   event loop (poll)                      workers (num_workers)
//   ----------------------                 ---------------------------
//   accept / reject at the     frame -->   pop request, open a Session
//   connection ceiling         queue       (pins a snapshot), run the
//   read + decode frames                   query — execution itself
//   shed at the inflight                   morsel-parallelizes on the
//   ceiling / while draining               shared Executor pool — then
//   answer kPing inline                    write the response frame
//   watch executing conns for              with the write deadline
//   disconnect -> cancel token
//   evict slow readers
//   own every fd close
//
// Connection state machine (Conn::state, atomic):
//
//         +------------------------------------------------+
//         v                                                |
//   kReadHeader -> kReadBody -> kQueued -> kExecuting -----+
//        |              |          |            |      (response written)
//        +--------------+----------+------------+---> kClosed
//          (EOF, bad header, slow read,    (disconnect, write failure,
//           idle eviction)                  net.drop_response)
//
// Ownership rules that keep this race-free without a lock per
// connection: the event loop is the only thread that reads from a fd or
// closes it, and it never touches a connection's buffers while the
// state is kQueued/kExecuting (it only polls the fd for hangup); the
// worker owns the connection during those states, writes the response
// itself, and hands the connection back by storing kReadHeader (or
// kClosed) and poking the loop's wakeup pipe. A client disconnect
// mid-query cancels the per-request CancellationToken — the engine
// unwinds within one budget-check interval and the worker finds
// client_gone instead of writing to a dead socket.
//
// Overload shedding: past max_connections new sockets get one kError
// frame (kResourceExhausted + retry hint) and close; past max_inflight
// new requests get the same without executing. Per-tenant admission
// (QueryRequest::tenant -> TenantPool) and aggregate budgets run
// inside the database as for in-process callers; their typed
// rejections — now carrying RetryInfo — serialize onto the wire
// unchanged.
//
// Graceful drain (Shutdown): stop accepting, answer new requests with
// a typed shed error, let in-flight requests finish until the drain
// deadline, then cancel their tokens ("server drain deadline
// exceeded" -> clients see kCancelled), join workers and the loop, and
// close every fd. kPing keeps answering during the drain with
// draining=true, so load balancers stop routing before the socket
// disappears.
#ifndef XJOIN_NET_SERVER_H_
#define XJOIN_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/database.h"
#include "net/frame.h"

namespace xjoin {
namespace net {

struct ServerOptions {
  /// 127.0.0.1 port to listen on; 0 = ephemeral (read back with port()).
  int port = 0;
  /// Request workers. Query execution itself morsel-parallelizes on the
  /// shared Executor pool, so this caps concurrent *requests*, not
  /// total threads doing join work.
  int num_workers = 4;
  /// Connection ceiling: accepts past it get one typed kError frame
  /// (kResourceExhausted + retry hint) and an immediate close.
  int max_connections = 64;
  /// Requests queued-or-executing across all connections; past it new
  /// requests are shed without executing.
  int max_inflight = 16;
  /// Slow-client eviction: once the first byte of a frame arrives, the
  /// whole frame must arrive within this budget. 0 disables.
  int64_t read_timeout_micros = 5'000'000;
  /// Response write budget per frame; a slower client is evicted.
  int64_t write_timeout_micros = 5'000'000;
  /// Evict connections idle (no partial frame) longer than this.
  /// 0 = idle connections live forever.
  int64_t idle_timeout_micros = 0;
  /// xjoin.num_threads for every served query: execution shards onto
  /// the process-wide Executor pool (results are byte-identical to a
  /// serial run). <= 1 runs each request fully serial on its worker.
  int query_num_threads = 4;
  /// retry_after_micros attached to connection-ceiling, inflight-shed,
  /// and draining rejections.
  int64_t shed_retry_after_micros = 20'000;
};

/// Point-in-time serving counters (monotonic except the two gauges).
struct ServerStats {
  int64_t accepted = 0;
  int64_t rejected_conn_limit = 0;  ///< shed at the connection ceiling
  int64_t shed_inflight = 0;        ///< shed at the inflight ceiling
  int64_t shed_draining = 0;        ///< requests arriving during drain
  int64_t evicted_slow = 0;         ///< read/write deadline evictions
  int64_t served_ok = 0;            ///< kResult responses written
  int64_t served_error = 0;         ///< kError responses written
  int64_t cancelled_disconnect = 0; ///< queries cancelled by client EOF
  int64_t cancelled_drain = 0;      ///< queries cancelled at drain deadline
  int64_t bad_frames = 0;           ///< header-level protocol violations
  int64_t pings = 0;
  int active_connections = 0;       ///< gauge
  int inflight = 0;                 ///< gauge: queued + executing
};

class XJoinServer {
 public:
  /// `db` must outlive the server. The server never mutates it.
  XJoinServer(const MultiModelDatabase* db, ServerOptions options);

  /// Shuts down with a short default drain if Start() succeeded and
  /// Shutdown() was never called.
  ~XJoinServer();

  XJoinServer(const XJoinServer&) = delete;
  XJoinServer& operator=(const XJoinServer&) = delete;

  /// Binds, listens, and launches the event loop and workers. Fails
  /// (kIOError) if the port cannot be bound.
  Status Start();

  /// The bound port (valid after Start(); the interesting case is
  /// options.port == 0).
  int port() const { return port_; }

  /// Graceful drain, idempotent: stop accepting, shed new requests,
  /// give in-flight requests up to `drain_deadline_micros` to finish,
  /// cancel whatever remains, then tear everything down. Blocks until
  /// all threads are joined and all fds are closed.
  void Shutdown(int64_t drain_deadline_micros = 2'000'000);

  /// True once Shutdown began (kPong mirrors this as not-ready).
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  ServerStats stats() const;

 private:
  struct Conn;
  struct Job;

  void EventLoop();
  void WorkerLoop();

  /// Accept-ready: drain the listen fd, applying the connection
  /// ceiling and the net.accept fault site.
  void HandleAccept();

  /// Read-ready connection: pull bytes, assemble frames, dispatch.
  void HandleReadable(const std::shared_ptr<Conn>& conn);

  /// A full frame arrived on `conn`.
  void HandleFrame(const std::shared_ptr<Conn>& conn);

  /// Best-effort small inline reply from the event loop (error/pong).
  void WriteInline(const std::shared_ptr<Conn>& conn, FrameType type,
                   const std::string& payload);

  /// Builds the shed Status for the given situation.
  Status ShedError(const std::string& why, int queue_depth) const;

  void CloseConn(const std::shared_ptr<Conn>& conn);
  void Poke();  // wakeup-pipe nudge for the event loop

  HealthReply Health() const;

  const MultiModelDatabase* const db_;
  const ServerOptions options_;
  int port_ = 0;

  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> loop_stop_{false};
  std::atomic<bool> shut_down_{false};

  /// Connection registry. The event loop mutates it; Shutdown reads it
  /// (to cancel in-flight tokens) under the same lock.
  mutable std::mutex conns_mu_;
  std::map<int, std::shared_ptr<Conn>> conns_;

  /// Request queue feeding the workers (mutable: stats()/Health() are
  /// const readers of the inflight gauge).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;  // signalled when inflight_ drops
  std::deque<Job> queue_;
  bool workers_stop_ = false;  // guarded by queue_mu_
  int inflight_ = 0;           // queued + executing; guarded by queue_mu_

  // Monotonic counters (relaxed atomics: stats are advisory).
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> rejected_conn_limit_{0};
  std::atomic<int64_t> shed_inflight_{0};
  std::atomic<int64_t> shed_draining_{0};
  std::atomic<int64_t> evicted_slow_{0};
  std::atomic<int64_t> served_ok_{0};
  std::atomic<int64_t> served_error_{0};
  std::atomic<int64_t> cancelled_disconnect_{0};
  std::atomic<int64_t> cancelled_drain_{0};
  std::atomic<int64_t> bad_frames_{0};
  std::atomic<int64_t> pings_{0};
};

}  // namespace net
}  // namespace xjoin

#endif  // XJOIN_NET_SERVER_H_
