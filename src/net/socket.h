// Thin POSIX socket helpers shared by the server and client: listener
// and connect setup, and deadline-bounded full reads/writes of whole
// frames over nonblocking fds (readiness via poll()).
//
// Deadlines are absolute steady-clock microseconds (SteadyNowMicros() +
// budget); 0 means "no deadline". Timeouts surface as
// kDeadlineExceeded, every other socket failure (ECONNRESET, EPIPE,
// EOF mid-frame, ...) as kIOError — callers map both onto their own
// policy (the server evicts the slow client, the client retries on a
// fresh connection).
#ifndef XJOIN_NET_SOCKET_H_
#define XJOIN_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"
#include "net/frame.h"

namespace xjoin {
namespace net {

/// Monotonic now, in microseconds. The time base for every deadline in
/// this module.
int64_t SteadyNowMicros();

/// Marks `fd` nonblocking (all frame IO here is poll-driven).
Status SetNonBlocking(int fd);

/// Opens a nonblocking TCP listener on 127.0.0.1:`port` (0 = kernel
/// picks an ephemeral port; read it back with ListenerPort). Returns
/// the listen fd.
Result<int> ListenLoopback(int port);

/// The locally bound port of a listen fd.
Result<int> ListenerPort(int fd);

/// Connects to `host`:`port` (IPv4 dotted quad, e.g. "127.0.0.1")
/// within the deadline. Returns a connected nonblocking fd.
Result<int> ConnectTcp(const std::string& host, int port,
                       int64_t deadline_micros);

/// Reads exactly `n` bytes. EOF mid-read is kIOError (a clean EOF at
/// offset 0 is distinguishable by the message "connection closed").
Status ReadFull(int fd, uint8_t* buf, size_t n, int64_t deadline_micros);

/// Writes exactly `n` bytes (MSG_NOSIGNAL: a dead peer is a kIOError,
/// not a SIGPIPE).
Status WriteFull(int fd, const uint8_t* buf, size_t n,
                 int64_t deadline_micros);

/// Writes one whole frame (header + payload). The net.write fault site
/// fires per frame and surfaces as kIOError, exercising the
/// mid-response-loss paths.
Status WriteFrame(int fd, FrameType type, std::string_view payload,
                  int64_t deadline_micros);

/// Reads one whole frame. Header-level violations (bad magic, unknown
/// version/type, oversized payload) surface as the decoder's
/// kParseError — the stream is poisoned and the caller must close.
Result<std::pair<FrameHeader, std::string>> ReadFrame(
    int fd, int64_t deadline_micros);

}  // namespace net
}  // namespace xjoin

#endif  // XJOIN_NET_SOCKET_H_
