// Lemma 3.2 instances: for a given query hypergraph, data on which the
// join result (and therefore any algorithm's output) actually reaches
// the AGM bound. Construction is the standard one from Atserias-Grohe-
// Marx: give each attribute a value domain of size ~n^{y_a} (y = dual
// optimum) and fill every relation with the full cross product of its
// attributes' domains — each relation then has at most n tuples while
// the join has ~n^{sum y_a} = bound many.
#ifndef XJOIN_WORKLOAD_ADVERSARIAL_H_
#define XJOIN_WORKLOAD_ADVERSARIAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/dictionary.h"
#include "common/status.h"
#include "relational/relation.h"

namespace xjoin {

/// One generated relational instance.
struct AdversarialInstance {
  std::unique_ptr<Dictionary> dict;
  /// Relations in the order of the input schemas.
  std::vector<std::unique_ptr<Relation>> relations;
  /// Chosen per-attribute domain sizes (floor(n^{y_a}), at least 1).
  std::map<std::string, int64_t> domain_sizes;
  /// The exact join cardinality of the instance: prod over attributes of
  /// the domain sizes (every combination joins).
  double expected_join_size = 1.0;
};

/// Builds the instance for relation schemas `schemas` (attribute name
/// lists) with the per-relation size target n. Uses the dual LP optimum
/// internally. Fails on invalid schemas.
Result<AdversarialInstance> MakeAgmTightInstance(
    const std::vector<std::vector<std::string>>& schemas, int64_t n);

}  // namespace xjoin

#endif  // XJOIN_WORKLOAD_ADVERSARIAL_H_
