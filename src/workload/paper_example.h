// The running example of the paper (Figures 2 and 3, Examples 3.3/3.4):
// twig  A[B,D] // C/E,  E//F[H],  F//G   (paths (A,B),(A,D),(C,E),(F,H),(G))
// plus relational tables. Two relational schemas are provided:
//   * Figure 2 / Example 3.3:  R1(B,D), R2(F,G,H)      -> bound n^3.5
//   * Figure 3 / Example 3.4:  R1(A,B,C,D), R2(E,F,G,H) -> bound n^2
// The generated document realizes the twig's worst case (~n^5
// embeddings): a nested C/E spine under one big A with fan-outs of n,
// exactly the kind of instance Lemma 3.2 promises.
#ifndef XJOIN_WORKLOAD_PAPER_EXAMPLE_H_
#define XJOIN_WORKLOAD_PAPER_EXAMPLE_H_

#include <cstdint>
#include <memory>

#include "common/dictionary.h"
#include "core/query.h"
#include "relational/relation.h"
#include "xml/document.h"
#include "xml/node_index.h"
#include "xml/twig.h"

namespace xjoin {

/// Which relational schema accompanies the twig.
enum class PaperSchema {
  kExample33,  ///< R1(B,D), R2(F,G,H)
  kExample34,  ///< R1(A,B,C,D), R2(E,F,G,H)
};

/// How relational tuples relate to the document's values.
enum class PaperDataMode {
  /// Diagonal tuples over the document's real values: the final result
  /// has ~n tuples while the twig alone has ~n^5 embeddings — the
  /// adversarial gap of Figure 3.
  kAdversarial,
  /// Uniform random tuples over the value domains (sanity workload).
  kRandom,
};

/// A self-contained generated instance. The NodeIndex shares `dict` with
/// the relations.
struct PaperInstance {
  std::unique_ptr<Dictionary> dict;
  std::unique_ptr<XmlDocument> doc;
  std::unique_ptr<NodeIndex> index;
  std::unique_ptr<Relation> r1;
  std::unique_ptr<Relation> r2;
  Twig twig;

  /// Assembles the MultiModelQuery view over this instance (all
  /// attributes as output).
  MultiModelQuery Query() const;
};

/// Builds the instance with per-tag population n (n >= 1).
PaperInstance MakePaperInstance(int64_t n, PaperSchema schema,
                                PaperDataMode mode, uint64_t seed = 42);

/// The paper twig "A[B,D]//C/E, E//F[H], F//G" by itself.
Twig MakePaperTwig();

}  // namespace xjoin

#endif  // XJOIN_WORKLOAD_PAPER_EXAMPLE_H_
