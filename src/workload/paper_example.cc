#include "workload/paper_example.h"

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace xjoin {

MultiModelQuery PaperInstance::Query() const {
  MultiModelQuery q;
  q.relations.push_back({"R1", r1.get()});
  q.relations.push_back({"R2", r2.get()});
  q.twigs.push_back(TwigInput{twig, index.get()});
  return q;
}

Twig MakePaperTwig() {
  TwigBuilder b;
  TwigNodeId a = b.AddRoot("A");
  b.AddChild(a, TwigAxis::kChild, "B");
  b.AddChild(a, TwigAxis::kChild, "D");
  TwigNodeId c = b.AddChild(a, TwigAxis::kDescendant, "C");
  TwigNodeId e = b.AddChild(c, TwigAxis::kChild, "E");
  TwigNodeId f = b.AddChild(e, TwigAxis::kDescendant, "F");
  b.AddChild(f, TwigAxis::kChild, "H");
  b.AddChild(f, TwigAxis::kDescendant, "G");
  auto twig = b.Finish();
  XJ_CHECK(twig.ok()) << twig.status().ToString();
  return *std::move(twig);
}

namespace {

std::string Val(const char* prefix, int64_t i) {
  return std::string(prefix) + std::to_string(i);
}

// Builds the worst-case document described in the header comment.
std::unique_ptr<XmlDocument> BuildDocument(int64_t n) {
  XmlDocumentBuilder b;
  b.StartElement("root");
  // The big A holding the whole twig-match structure.
  b.StartElement("A");
  b.AddText(Val("a", 1));
  for (int64_t i = 1; i <= n; ++i) b.AddLeaf("B", Val("b", i));
  for (int64_t i = 1; i <= n; ++i) b.AddLeaf("D", Val("d", i));
  // Nested C/E spine: C1 > E1 > C2 > E2 > ... > Cn > En.
  for (int64_t i = 1; i <= n; ++i) {
    b.StartElement("C");
    b.AddText(Val("c", i));
    b.StartElement("E");
    b.AddText(Val("e", i));
  }
  // The single productive F inside the innermost E.
  b.StartElement("F");
  b.AddText(Val("f", 1));
  for (int64_t i = 1; i <= n; ++i) b.AddLeaf("H", Val("h", i));
  for (int64_t i = 1; i <= n; ++i) b.AddLeaf("G", Val("g", i));
  XJ_CHECK_OK(b.EndElement());  // F
  for (int64_t i = 1; i <= n; ++i) {
    XJ_CHECK_OK(b.EndElement());  // E
    XJ_CHECK_OK(b.EndElement());  // C
  }
  XJ_CHECK_OK(b.EndElement());  // A
  // Dummy A's and F's so every twig tag has exactly n document nodes.
  for (int64_t i = 2; i <= n; ++i) b.AddLeaf("A", Val("a", i));
  for (int64_t i = 2; i <= n; ++i) b.AddLeaf("F", Val("f", i));
  XJ_CHECK_OK(b.EndElement());  // root
  auto doc = b.Finish();
  XJ_CHECK(doc.ok()) << doc.status().ToString();
  return std::make_unique<XmlDocument>(*std::move(doc));
}

}  // namespace

PaperInstance MakePaperInstance(int64_t n, PaperSchema schema,
                                PaperDataMode mode, uint64_t seed) {
  XJ_CHECK(n >= 1);
  PaperInstance inst;
  inst.twig = MakePaperTwig();
  inst.dict = std::make_unique<Dictionary>();
  inst.doc = BuildDocument(n);
  inst.index = std::make_unique<NodeIndex>(
      NodeIndex::Build(inst.doc.get(), inst.dict.get()));

  Rng rng(seed);
  auto code = [&](const char* prefix, int64_t i) {
    return inst.dict->Intern(Val(prefix, i));
  };
  auto pick = [&](const char* prefix) {
    return code(prefix, 1 + static_cast<int64_t>(rng.NextBounded(
                            static_cast<uint64_t>(n))));
  };

  if (schema == PaperSchema::kExample33) {
    auto s1 = Schema::Make({"B", "D"});
    auto s2 = Schema::Make({"F", "G", "H"});
    XJ_CHECK(s1.ok() && s2.ok());
    inst.r1 = std::make_unique<Relation>(*s1);
    inst.r2 = std::make_unique<Relation>(*s2);
    for (int64_t i = 1; i <= n; ++i) {
      if (mode == PaperDataMode::kAdversarial) {
        inst.r1->AppendRow({code("b", i), code("d", i)});
        inst.r2->AppendRow({code("f", 1), code("g", i), code("h", i)});
      } else {
        inst.r1->AppendRow({pick("b"), pick("d")});
        inst.r2->AppendRow({pick("f"), pick("g"), pick("h")});
      }
    }
  } else {
    auto s1 = Schema::Make({"A", "B", "C", "D"});
    auto s2 = Schema::Make({"E", "F", "G", "H"});
    XJ_CHECK(s1.ok() && s2.ok());
    inst.r1 = std::make_unique<Relation>(*s1);
    inst.r2 = std::make_unique<Relation>(*s2);
    for (int64_t i = 1; i <= n; ++i) {
      if (mode == PaperDataMode::kAdversarial) {
        inst.r1->AppendRow(
            {code("a", 1), code("b", i), code("c", i), code("d", i)});
        inst.r2->AppendRow(
            {code("e", i), code("f", 1), code("g", i), code("h", i)});
      } else {
        inst.r1->AppendRow({pick("a"), pick("b"), pick("c"), pick("d")});
        inst.r2->AppendRow({pick("e"), pick("f"), pick("g"), pick("h")});
      }
    }
  }
  return inst;
}

}  // namespace xjoin
