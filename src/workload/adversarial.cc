#include "workload/adversarial.h"

#include <cmath>

#include "lp/edge_cover.h"
#include "lp/hypergraph.h"
#include "relational/schema.h"

namespace xjoin {

Result<AdversarialInstance> MakeAgmTightInstance(
    const std::vector<std::vector<std::string>>& schemas, int64_t n) {
  if (schemas.empty()) return Status::InvalidArgument("no schemas");
  if (n < 1) return Status::InvalidArgument("n must be >= 1");

  Hypergraph graph;
  for (size_t i = 0; i < schemas.size(); ++i) {
    HyperEdge edge;
    edge.name = "R" + std::to_string(i + 1);
    edge.attributes = schemas[i];
    edge.size = static_cast<double>(n);
    XJ_RETURN_NOT_OK(graph.AddEdge(std::move(edge)));
  }
  XJ_ASSIGN_OR_RETURN(EdgeCoverResult cover, SolveFractionalEdgeCover(graph));

  AdversarialInstance inst;
  inst.dict = std::make_unique<Dictionary>();
  const auto& attrs = graph.attributes();
  for (size_t a = 0; a < attrs.size(); ++a) {
    // y_a is in "log_n" units when all edges have size n: the dual
    // constraint per edge is sum y_a <= log2(n), so the per-attribute
    // domain is 2^{y_a} = n^{y_a / log2 n}.
    double y = cover.attribute_weights[a];
    int64_t d =
        std::max<int64_t>(1, static_cast<int64_t>(std::floor(std::exp2(y))));
    inst.domain_sizes[attrs[a]] = d;
    inst.expected_join_size *= static_cast<double>(d);
  }

  // Intern per-attribute domain values once so relations share codes.
  std::map<std::string, std::vector<int64_t>> domains;
  for (const auto& [attr, size] : inst.domain_sizes) {
    auto& vals = domains[attr];
    vals.reserve(static_cast<size_t>(size));
    for (int64_t v = 0; v < size; ++v) {
      vals.push_back(inst.dict->Intern(attr + "#" + std::to_string(v)));
    }
  }

  for (const auto& schema_attrs : schemas) {
    XJ_ASSIGN_OR_RETURN(Schema schema, Schema::Make(schema_attrs));
    auto rel = std::make_unique<Relation>(std::move(schema));
    // Cross product of the attribute domains, odometer-style.
    std::vector<size_t> idx(schema_attrs.size(), 0);
    for (;;) {
      Tuple row(schema_attrs.size());
      for (size_t c = 0; c < schema_attrs.size(); ++c) {
        row[c] = domains[schema_attrs[c]][idx[c]];
      }
      rel->AppendRow(row);
      size_t c = 0;
      for (; c < idx.size(); ++c) {
        if (++idx[c] < domains[schema_attrs[c]].size()) break;
        idx[c] = 0;
      }
      if (c == idx.size()) break;
    }
    inst.relations.push_back(std::move(rel));
  }
  return inst;
}

}  // namespace xjoin
