#include "workload/bookstore.h"

#include <string>

#include "common/logging.h"
#include "common/random.h"

namespace xjoin {

namespace {

std::string OrderId(int64_t i) { return "ord-" + std::to_string(10000 + i); }
std::string UserId(int64_t i) { return "user" + std::to_string(i); }
std::string Isbn(int64_t i) {
  return "978-" + std::to_string(100 + i % 900) + "-" + std::to_string(i);
}

}  // namespace

BookstoreInstance MakeBookstore(const BookstoreOptions& options) {
  XJ_CHECK(options.num_orders > 0 && options.num_users > 0 &&
           options.num_books > 0);
  Rng rng(options.seed);
  ZipfGenerator book_zipf(static_cast<uint64_t>(options.num_books),
                          options.book_zipf_theta);

  BookstoreInstance inst;
  inst.dict = std::make_unique<Dictionary>();

  // XML invoices.
  XmlDocumentBuilder b;
  b.StartElement("invoices");
  for (int64_t i = 0; i < options.num_invoices; ++i) {
    b.StartElement("invoice");
    bool matched = rng.NextBernoulli(options.matched_fraction);
    int64_t oid = matched
                      ? static_cast<int64_t>(rng.NextBounded(
                            static_cast<uint64_t>(options.num_orders)))
                      : options.num_orders + i;  // dangling reference
    b.AddLeaf("orderID", OrderId(oid));
    int64_t lines = 1 + static_cast<int64_t>(rng.NextBounded(
                            static_cast<uint64_t>(
                                options.max_lines_per_invoice)));
    for (int64_t l = 0; l < lines; ++l) {
      b.StartElement("orderLine");
      b.AddLeaf("ISBN", Isbn(static_cast<int64_t>(book_zipf.Next(&rng))));
      b.AddLeaf("price", std::to_string(5 + rng.NextBounded(95)));
      b.AddLeaf("discount", "0." + std::to_string(rng.NextBounded(5)));
      XJ_CHECK_OK(b.EndElement());  // orderLine
    }
    XJ_CHECK_OK(b.EndElement());  // invoice
  }
  XJ_CHECK_OK(b.EndElement());  // invoices
  auto doc = b.Finish();
  XJ_CHECK(doc.ok()) << doc.status().ToString();
  inst.doc = std::make_unique<XmlDocument>(*std::move(doc));
  inst.index = std::make_unique<NodeIndex>(
      NodeIndex::Build(inst.doc.get(), inst.dict.get()));

  // Relational tables.
  auto orders_schema = Schema::Make({"orderID", "userID"});
  auto cust_schema = Schema::Make({"userID", "country"});
  auto book_schema = Schema::Make({"ISBN", "genre"});
  XJ_CHECK(orders_schema.ok() && cust_schema.ok() && book_schema.ok());

  inst.orders = std::make_unique<Relation>(*orders_schema);
  for (int64_t i = 0; i < options.num_orders; ++i) {
    int64_t user = static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(options.num_users)));
    inst.orders->AppendRow(
        {inst.dict->Intern(OrderId(i)), inst.dict->Intern(UserId(user))});
  }

  const char* countries[] = {"FI", "DE", "US", "JP", "BR"};
  inst.customers = std::make_unique<Relation>(*cust_schema);
  for (int64_t i = 0; i < options.num_users; ++i) {
    inst.customers->AppendRow(
        {inst.dict->Intern(UserId(i)),
         inst.dict->Intern(countries[rng.NextBounded(5)])});
  }

  const char* genres[] = {"databases", "systems", "theory", "ml", "networks"};
  inst.books = std::make_unique<Relation>(*book_schema);
  for (int64_t i = 0; i < options.num_books; ++i) {
    inst.books->AppendRow({inst.dict->Intern(Isbn(i)),
                           inst.dict->Intern(genres[rng.NextBounded(5)])});
  }
  return inst;
}

MultiModelQuery BookstoreInstance::Figure1Query() const {
  MultiModelQuery q;
  q.relations.push_back({"R", orders.get()});
  auto twig = Twig::Parse("invoice[orderID]/orderLine[ISBN]/price");
  XJ_CHECK(twig.ok()) << twig.status().ToString();
  q.twigs.push_back(TwigInput{*std::move(twig), index.get()});
  q.output_attributes = {"userID", "ISBN", "price"};
  return q;
}

MultiModelQuery BookstoreInstance::EnrichedQuery() const {
  MultiModelQuery q;
  q.relations.push_back({"R", orders.get()});
  q.relations.push_back({"Cust", customers.get()});
  q.relations.push_back({"Book", books.get()});
  auto twig = Twig::Parse("invoice[orderID]/orderLine[ISBN]/price");
  XJ_CHECK(twig.ok()) << twig.status().ToString();
  q.twigs.push_back(TwigInput{*std::move(twig), index.get()});
  q.output_attributes = {"userID", "country", "ISBN", "genre", "price"};
  return q;
}

}  // namespace xjoin
