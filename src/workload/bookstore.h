// The Figure-1 motivating workload at TPC-ish shape: a relational order
// table R(orderID, userID) (plus customer and book dimension tables)
// joined with an XML invoice document
//   <invoices><invoice><orderID>..</orderID>
//     <orderLine><ISBN>..</ISBN><price>..</price><discount>..</discount>
//     </orderLine>* </invoice>*</invoices>
// through the twig invoice[orderID]/orderLine[ISBN]/price, producing
// Q(userID, ISBN, price). TPC data itself is not redistributable
// offline; the generator mimics the relevant shape (uniform keys with a
// configurable matched fraction and Zipf-skewed books per line) — see
// DESIGN.md "Substitutions".
#ifndef XJOIN_WORKLOAD_BOOKSTORE_H_
#define XJOIN_WORKLOAD_BOOKSTORE_H_

#include <cstdint>
#include <memory>

#include "common/dictionary.h"
#include "core/query.h"
#include "relational/relation.h"
#include "xml/document.h"
#include "xml/node_index.h"
#include "xml/twig.h"

namespace xjoin {

/// Generator knobs.
struct BookstoreOptions {
  int64_t num_orders = 500;     ///< relational orders
  int64_t num_invoices = 400;   ///< XML invoices (referencing order ids)
  int64_t num_users = 100;
  int64_t num_books = 200;
  int64_t max_lines_per_invoice = 4;
  /// Fraction of invoices whose orderID exists in the order table.
  double matched_fraction = 0.8;
  double book_zipf_theta = 0.7;
  uint64_t seed = 11;
};

/// Generated instance.
struct BookstoreInstance {
  std::unique_ptr<Dictionary> dict;
  std::unique_ptr<XmlDocument> doc;
  std::unique_ptr<NodeIndex> index;
  std::unique_ptr<Relation> orders;     ///< R(orderID, userID)
  std::unique_ptr<Relation> customers;  ///< Cust(userID, country)
  std::unique_ptr<Relation> books;      ///< Book(ISBN, genre)

  /// The Figure-1 query: R ⋈ twig; output (userID, ISBN, price).
  MultiModelQuery Figure1Query() const;

  /// Wider query joining all three tables with the twig;
  /// output (userID, country, ISBN, genre, price).
  MultiModelQuery EnrichedQuery() const;
};

/// Builds the instance.
BookstoreInstance MakeBookstore(const BookstoreOptions& options = {});

}  // namespace xjoin

#endif  // XJOIN_WORKLOAD_BOOKSTORE_H_
