// XMark-like auction data. The real XMark generator (xmlgen) is not
// available offline, so this module synthesizes documents with the same
// core element hierarchy as XMark's auction.dtd (site / regions / items,
// people / person, open_auctions / bidders, closed_auctions) and
// Zipf-skewed cross references — exercising the same code paths
// (value joins between deep twig matches and relational tables over
// skewed keys). See DESIGN.md "Substitutions".
#ifndef XJOIN_WORKLOAD_XMARK_H_
#define XJOIN_WORKLOAD_XMARK_H_

#include <cstdint>
#include <memory>

#include "common/dictionary.h"
#include "core/query.h"
#include "relational/relation.h"
#include "xml/document.h"
#include "xml/node_index.h"
#include "xml/twig.h"

namespace xjoin {

/// Generator knobs. Defaults approximate XMark scale factor ~0.002.
struct XMarkOptions {
  int64_t num_items = 200;
  int64_t num_persons = 100;
  int64_t num_open_auctions = 120;
  int64_t num_closed_auctions = 100;
  int64_t max_bidders_per_auction = 5;
  int64_t num_categories = 20;
  double zipf_theta = 0.8;  ///< skew of item/person references
  uint64_t seed = 7;
};

/// Generated instance: one document plus two relational tables that
/// reference its values.
struct XMarkInstance {
  std::unique_ptr<Dictionary> dict;
  std::unique_ptr<XmlDocument> doc;
  std::unique_ptr<NodeIndex> index;
  /// ItemCat(itemref, category): category assignments for items.
  std::unique_ptr<Relation> item_category;
  /// PersonGeo(buyer, country): country per person.
  std::unique_ptr<Relation> person_country;

  /// Twig closed_auction[itemref, buyer, price] joined with both tables;
  /// output (itemref, category, buyer, country, price).
  MultiModelQuery ClosedAuctionQuery() const;

  /// Deep twig site//open_auction[bidder/personref, itemref] joined with
  /// ItemCat; output (itemref, category, personref).
  MultiModelQuery OpenAuctionQuery() const;
};

/// Builds the instance.
XMarkInstance MakeXMark(const XMarkOptions& options = {});

}  // namespace xjoin

#endif  // XJOIN_WORKLOAD_XMARK_H_
