#include "workload/xmark.h"

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace xjoin {

namespace {

const char* kRegions[] = {"africa", "asia", "australia", "europe",
                          "namerica", "samerica"};

std::string ItemId(int64_t i) { return "item" + std::to_string(i); }
std::string PersonId(int64_t i) { return "person" + std::to_string(i); }
std::string CategoryId(int64_t i) { return "cat" + std::to_string(i); }

}  // namespace

XMarkInstance MakeXMark(const XMarkOptions& options) {
  XJ_CHECK(options.num_items > 0 && options.num_persons > 0);
  Rng rng(options.seed);
  ZipfGenerator item_zipf(static_cast<uint64_t>(options.num_items),
                          options.zipf_theta);
  ZipfGenerator person_zipf(static_cast<uint64_t>(options.num_persons),
                            options.zipf_theta);

  std::vector<int64_t> item_category(static_cast<size_t>(options.num_items));
  for (auto& c : item_category) {
    c = static_cast<int64_t>(rng.NextBounded(
        static_cast<uint64_t>(options.num_categories)));
  }
  std::vector<std::string> person_country(
      static_cast<size_t>(options.num_persons));
  const char* countries[] = {"Finland", "Germany", "Japan", "Brazil", "Kenya"};
  for (auto& c : person_country) c = countries[rng.NextBounded(5)];

  XmlDocumentBuilder b;
  b.StartElement("site");

  b.StartElement("regions");
  for (int64_t i = 0; i < options.num_items; ++i) {
    const char* region = kRegions[rng.NextBounded(6)];
    b.StartElement(region);
    b.StartElement("item");
    b.AddLeaf("id", ItemId(i));
    b.AddLeaf("name", "item name " + rng.NextString(6));
    b.AddLeaf("incategory", CategoryId(item_category[static_cast<size_t>(i)]));
    b.AddLeaf("quantity", std::to_string(1 + rng.NextBounded(5)));
    XJ_CHECK_OK(b.EndElement());  // item
    XJ_CHECK_OK(b.EndElement());  // region
  }
  XJ_CHECK_OK(b.EndElement());  // regions

  b.StartElement("people");
  for (int64_t i = 0; i < options.num_persons; ++i) {
    b.StartElement("person");
    b.AddLeaf("id", PersonId(i));
    b.AddLeaf("name", "person " + rng.NextString(5));
    b.AddLeaf("emailaddress", rng.NextString(8) + "@example.org");
    b.AddLeaf("country", person_country[static_cast<size_t>(i)]);
    XJ_CHECK_OK(b.EndElement());
  }
  XJ_CHECK_OK(b.EndElement());  // people

  b.StartElement("open_auctions");
  for (int64_t i = 0; i < options.num_open_auctions; ++i) {
    b.StartElement("open_auction");
    b.AddLeaf("itemref", ItemId(static_cast<int64_t>(item_zipf.Next(&rng))));
    b.AddLeaf("seller", PersonId(static_cast<int64_t>(person_zipf.Next(&rng))));
    int64_t bidders = 1 + static_cast<int64_t>(rng.NextBounded(
                              static_cast<uint64_t>(
                                  options.max_bidders_per_auction)));
    for (int64_t k = 0; k < bidders; ++k) {
      b.StartElement("bidder");
      b.AddLeaf("personref",
                PersonId(static_cast<int64_t>(person_zipf.Next(&rng))));
      b.AddLeaf("increase", std::to_string(1 + rng.NextBounded(50)));
      XJ_CHECK_OK(b.EndElement());
    }
    b.AddLeaf("current", std::to_string(10 + rng.NextBounded(500)));
    XJ_CHECK_OK(b.EndElement());
  }
  XJ_CHECK_OK(b.EndElement());  // open_auctions

  b.StartElement("closed_auctions");
  for (int64_t i = 0; i < options.num_closed_auctions; ++i) {
    b.StartElement("closed_auction");
    b.AddLeaf("itemref", ItemId(static_cast<int64_t>(item_zipf.Next(&rng))));
    b.AddLeaf("buyer", PersonId(static_cast<int64_t>(person_zipf.Next(&rng))));
    b.AddLeaf("seller", PersonId(static_cast<int64_t>(person_zipf.Next(&rng))));
    b.AddLeaf("price", std::to_string(10 + rng.NextBounded(1000)));
    XJ_CHECK_OK(b.EndElement());
  }
  XJ_CHECK_OK(b.EndElement());  // closed_auctions

  XJ_CHECK_OK(b.EndElement());  // site

  XMarkInstance inst;
  inst.dict = std::make_unique<Dictionary>();
  auto doc = b.Finish();
  XJ_CHECK(doc.ok()) << doc.status().ToString();
  inst.doc = std::make_unique<XmlDocument>(*std::move(doc));
  inst.index = std::make_unique<NodeIndex>(
      NodeIndex::Build(inst.doc.get(), inst.dict.get()));

  // Relational side.
  auto item_schema = Schema::Make({"itemref", "category"});
  auto person_schema = Schema::Make({"buyer", "country"});
  XJ_CHECK(item_schema.ok() && person_schema.ok());
  inst.item_category = std::make_unique<Relation>(*item_schema);
  for (int64_t i = 0; i < options.num_items; ++i) {
    inst.item_category->AppendRow(
        {inst.dict->Intern(ItemId(i)),
         inst.dict->Intern(CategoryId(item_category[static_cast<size_t>(i)]))});
  }
  inst.person_country = std::make_unique<Relation>(*person_schema);
  for (int64_t i = 0; i < options.num_persons; ++i) {
    inst.person_country->AppendRow(
        {inst.dict->Intern(PersonId(i)),
         inst.dict->Intern(person_country[static_cast<size_t>(i)])});
  }
  return inst;
}

MultiModelQuery XMarkInstance::ClosedAuctionQuery() const {
  MultiModelQuery q;
  q.relations.push_back({"ItemCat", item_category.get()});
  q.relations.push_back({"PersonGeo", person_country.get()});
  auto twig = Twig::Parse("closed_auction[itemref,buyer]/price");
  XJ_CHECK(twig.ok()) << twig.status().ToString();
  q.twigs.push_back(TwigInput{*std::move(twig), index.get()});
  q.output_attributes = {"itemref", "category", "buyer", "country", "price"};
  return q;
}

MultiModelQuery XMarkInstance::OpenAuctionQuery() const {
  MultiModelQuery q;
  q.relations.push_back({"ItemCat", item_category.get()});
  auto twig = Twig::Parse("site//open_auction[bidder/personref]/itemref");
  XJ_CHECK(twig.ok()) << twig.status().ToString();
  q.twigs.push_back(TwigInput{*std::move(twig), index.get()});
  q.output_attributes = {"itemref", "category", "personref"};
  return q;
}

}  // namespace xjoin
