#include "lp/edge_cover.h"

#include <cmath>

#include "lp/simplex.h"

namespace xjoin {

namespace {

// Builds "minimize sum x_e * cost_e subject to covering every attribute
// in `subset` with weight >= 1" restricted to edges intersecting subset.
LpProblem CoverProblem(const Hypergraph& graph,
                       const std::vector<std::string>& subset,
                       const std::vector<double>& costs) {
  LpProblem lp;
  lp.sense = LpProblem::Sense::kMinimize;
  lp.objective = costs;
  for (const auto& attr : subset) {
    LpConstraint c;
    c.coeffs.assign(graph.edges().size(), 0.0);
    for (size_t e : graph.EdgesCovering(attr)) c.coeffs[e] = 1.0;
    c.relation = LpRelation::kGreaterEqual;
    c.rhs = 1.0;
    lp.constraints.push_back(std::move(c));
  }
  return lp;
}

}  // namespace

Result<EdgeCoverResult> SolveFractionalEdgeCover(const Hypergraph& graph) {
  if (graph.empty()) return Status::InvalidArgument("empty hypergraph");
  const auto& edges = graph.edges();
  const auto& attrs = graph.attributes();

  std::vector<double> log_costs(edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    log_costs[e] = std::log2(edges[e].size);
  }

  EdgeCoverResult result;

  // Primal, log-weighted.
  {
    LpProblem lp = CoverProblem(graph, attrs, log_costs);
    XJ_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(lp));
    if (!sol.optimal()) {
      return Status::Internal("edge-cover primal not optimal");
    }
    result.edge_weights = sol.values;
    result.log2_bound = sol.objective;
    result.bound = std::exp2(sol.objective);
  }

  // Dual of the log-weighted primal: maximize sum y_a subject to, per
  // edge, sum_{a in e} y_a <= log2|e|.
  {
    LpProblem lp;
    lp.sense = LpProblem::Sense::kMaximize;
    lp.objective.assign(attrs.size(), 1.0);
    for (size_t e = 0; e < edges.size(); ++e) {
      LpConstraint c;
      c.coeffs.assign(attrs.size(), 0.0);
      for (const auto& a : edges[e].attributes) {
        c.coeffs[static_cast<size_t>(graph.AttributeIndex(a))] = 1.0;
      }
      c.relation = LpRelation::kLessEqual;
      c.rhs = log_costs[e];
      lp.constraints.push_back(std::move(c));
    }
    XJ_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(lp));
    if (!sol.optimal()) return Status::Internal("edge-cover dual not optimal");
    result.attribute_weights = sol.values;
  }

  // Uniform exponent rho* (Equation 1 with unit capacities).
  {
    std::vector<double> unit_costs(edges.size(), 1.0);
    LpProblem lp = CoverProblem(graph, attrs, unit_costs);
    XJ_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(lp));
    if (!sol.optimal()) {
      return Status::Internal("edge-cover uniform LP not optimal");
    }
    result.uniform_exponent = sol.objective;
  }

  return result;
}

Result<double> Log2BoundForSubset(const Hypergraph& graph,
                                  const std::vector<std::string>& subset) {
  if (subset.empty()) return 0.0;
  std::vector<double> log_costs(graph.edges().size());
  for (size_t e = 0; e < graph.edges().size(); ++e) {
    log_costs[e] = std::log2(graph.edges()[e].size);
  }
  LpProblem lp = CoverProblem(graph, subset, log_costs);
  XJ_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(lp));
  if (sol.outcome == LpSolution::Outcome::kInfeasible) {
    return Status::InvalidArgument("subset contains an uncoverable attribute");
  }
  if (!sol.optimal()) return Status::Internal("subset cover LP not optimal");
  return sol.objective;
}

}  // namespace xjoin
