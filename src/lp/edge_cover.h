// Fractional edge cover and the AGM bound (Atserias-Grohe-Marx, FOCS'08
// — the paper's reference [2]), in both the primal form (minimum-weight
// fractional cover) and the dual form of the paper's Equation 1
// (maximum fractional independent set / vertex packing).
#ifndef XJOIN_LP_EDGE_COVER_H_
#define XJOIN_LP_EDGE_COVER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "lp/hypergraph.h"

namespace xjoin {

/// Result of the edge-cover LPs on a hypergraph.
struct EdgeCoverResult {
  /// Primal: x_R per edge; minimizes sum x_R * log|R| s.t. every
  /// attribute is covered by total weight >= 1.
  std::vector<double> edge_weights;
  /// Dual (Equation 1): y_a per attribute; maximizes sum y_a * log-domain
  /// weight subject to sum_{a in R} y_a <= 1 per edge when all sizes are
  /// equal; in general the dual of the log-weighted primal.
  std::vector<double> attribute_weights;
  /// log2 of the AGM bound: sum x_R * log2|R| (== the dual optimum).
  double log2_bound = 0.0;
  /// The AGM bound itself: prod |R|^{x_R}. May overflow to +inf for huge
  /// inputs; use log2_bound for comparisons.
  double bound = 1.0;
  /// When every edge has the same size n, the bound is n^rho with rho =
  /// sum x_R = sum y_a. This is that exponent (computed with unit edge
  /// weights); meaningful for the paper's "each tag has n nodes" analyses.
  double uniform_exponent = 0.0;
};

/// Solves the cover LPs for `graph` with the dense simplex of
/// lp/simplex.h: O(attributes × edges) tableau per pivot, polynomially
/// many pivots in practice (exponential only on adversarial LPs, which
/// query hypergraphs are not). Fails on an empty hypergraph or if some
/// attribute cannot be covered (never happens by construction).
Result<EdgeCoverResult> SolveFractionalEdgeCover(const Hypergraph& graph);

/// AGM bound restricted to a subset of attributes: the minimum-weight
/// fractional cover of `subset` using the edges' full sizes. Upper-bounds
/// the number of distinct tuples the join can take on `subset` (the
/// quantity Lemma 3.5 compares per-stage intermediates against).
/// Attributes in `subset` that no edge covers make the problem infeasible
/// and yield an error.
Result<double> Log2BoundForSubset(const Hypergraph& graph,
                                  const std::vector<std::string>& subset);

}  // namespace xjoin

#endif  // XJOIN_LP_EDGE_COVER_H_
