#include "lp/hypergraph.h"

#include <sstream>
#include <unordered_set>

namespace xjoin {

Status Hypergraph::AddEdge(HyperEdge edge) {
  if (edge.attributes.empty()) {
    return Status::InvalidArgument("hyperedge " + edge.name +
                                   " has no attributes");
  }
  if (edge.size < 1.0) {
    return Status::InvalidArgument("hyperedge " + edge.name + " has size < 1");
  }
  std::unordered_set<std::string> seen;
  for (const auto& a : edge.attributes) {
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("hyperedge " + edge.name +
                                     " repeats attribute " + a);
    }
  }
  for (const auto& a : edge.attributes) {
    if (AttributeIndex(a) < 0) attributes_.push_back(a);
  }
  edges_.push_back(std::move(edge));
  return Status::OK();
}

int Hypergraph::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<size_t> Hypergraph::EdgesCovering(
    const std::string& attribute) const {
  std::vector<size_t> out;
  for (size_t e = 0; e < edges_.size(); ++e) {
    for (const auto& a : edges_[e].attributes) {
      if (a == attribute) {
        out.push_back(e);
        break;
      }
    }
  }
  return out;
}

std::string Hypergraph::ToString() const {
  std::ostringstream out;
  for (const auto& e : edges_) {
    out << e.name << "(";
    for (size_t i = 0; i < e.attributes.size(); ++i) {
      if (i) out << ", ";
      out << e.attributes[i];
    }
    out << ") |" << e.name << "|=" << e.size << "\n";
  }
  return out.str();
}

}  // namespace xjoin
