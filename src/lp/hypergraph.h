// Query hypergraphs: vertices are attribute names, hyperedges are
// relations (real or twig-path-derived) with cardinalities. This is the
// structure Equation 1's linear program is written over.
#ifndef XJOIN_LP_HYPERGRAPH_H_
#define XJOIN_LP_HYPERGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace xjoin {

/// One hyperedge: a named relation schema with a size. In the Equation-1
/// program an edge is either a real relational table or a decomposed
/// twig path treated as a table (paper Section 3).
struct HyperEdge {
  std::string name;
  std::vector<std::string> attributes;
  double size = 1.0;  ///< cardinality |R| (>= 1)
};

/// A multi-hypergraph over attribute names — the structure the paper's
/// Equation 1 (fractional edge cover / AGM bound, reference [2]) is
/// written over. Parallel edges with the same attribute set are allowed
/// (two paths can share a schema).
class Hypergraph {
 public:
  /// Adds an edge; fails on empty attribute list, duplicate attributes
  /// within the edge, or size < 1. O(|edge|) amortized.
  Status AddEdge(HyperEdge edge);

  const std::vector<HyperEdge>& edges() const { return edges_; }

  /// All distinct attributes, in first-appearance order.
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Index of an attribute in attributes(), or -1. O(#attributes) scan.
  int AttributeIndex(const std::string& name) const;

  /// Edges containing `attribute` (indices into edges()).
  /// O(sum of edge arities) scan.
  std::vector<size_t> EdgesCovering(const std::string& attribute) const;

  /// True if every attribute appears in at least one edge (always true by
  /// construction) and every edge is non-empty.
  bool empty() const { return edges_.empty(); }

  /// Multi-line rendering for EXPERIMENTS.md-style reports.
  std::string ToString() const;

 private:
  std::vector<HyperEdge> edges_;
  std::vector<std::string> attributes_;
};

}  // namespace xjoin

#endif  // XJOIN_LP_HYPERGRAPH_H_
