// Query hypergraphs: vertices are attribute names, hyperedges are
// relations (real or twig-path-derived) with cardinalities. This is the
// structure Equation 1's linear program is written over.
#ifndef XJOIN_LP_HYPERGRAPH_H_
#define XJOIN_LP_HYPERGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace xjoin {

/// One hyperedge: a named relation schema with a size.
struct HyperEdge {
  std::string name;
  std::vector<std::string> attributes;
  double size = 1.0;  ///< cardinality |R| (>= 1)
};

/// A multi-hypergraph over attribute names.
class Hypergraph {
 public:
  /// Adds an edge; fails on empty attribute list, duplicate attributes
  /// within the edge, or size < 1.
  Status AddEdge(HyperEdge edge);

  const std::vector<HyperEdge>& edges() const { return edges_; }

  /// All distinct attributes, in first-appearance order.
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Index of an attribute in attributes(), or -1.
  int AttributeIndex(const std::string& name) const;

  /// Edges containing `attribute` (indices into edges()).
  std::vector<size_t> EdgesCovering(const std::string& attribute) const;

  /// True if every attribute appears in at least one edge (always true by
  /// construction) and every edge is non-empty.
  bool empty() const { return edges_.empty(); }

  /// Multi-line rendering for EXPERIMENTS.md-style reports.
  std::string ToString() const;

 private:
  std::vector<HyperEdge> edges_;
  std::vector<std::string> attributes_;
};

}  // namespace xjoin

#endif  // XJOIN_LP_HYPERGRAPH_H_
