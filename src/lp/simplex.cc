#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace xjoin {

namespace {

constexpr double kEps = 1e-9;

// Tableau for "minimize c·x st Ax = b, x >= 0, b >= 0" solved with the
// primal simplex using Bland's rule. Columns: n structural + slack +
// artificial; rows: m constraints + objective row.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                      cells_(rows * cols, 0.0) {}

  double& at(size_t r, size_t c) { return cells_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return cells_[r * cols_ + c]; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

 private:
  size_t rows_, cols_;
  std::vector<double> cells_;
};

// One simplex phase: minimizes the objective encoded in the last tableau
// row over columns [0, num_priceable). Returns false on unboundedness.
bool RunSimplex(Tableau* t, std::vector<size_t>* basis, size_t num_priceable) {
  const size_t m = t->rows() - 1;
  const size_t obj = m;
  for (;;) {
    // Bland's rule: entering column = lowest index with negative reduced
    // cost.
    size_t enter = num_priceable;
    for (size_t c = 0; c < num_priceable; ++c) {
      if (t->at(obj, c) < -kEps) {
        enter = c;
        break;
      }
    }
    if (enter == num_priceable) return true;  // optimal

    // Ratio test; Bland tie-break on the basis variable index.
    size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < m; ++r) {
      double a = t->at(r, enter);
      if (a > kEps) {
        double ratio = t->at(r, t->cols() - 1) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && leave < m &&
             (*basis)[r] < (*basis)[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == m) return false;  // unbounded

    // Pivot.
    double pivot = t->at(leave, enter);
    for (size_t c = 0; c < t->cols(); ++c) t->at(leave, c) /= pivot;
    for (size_t r = 0; r <= m; ++r) {
      if (r == leave) continue;
      double factor = t->at(r, enter);
      if (std::abs(factor) < kEps) continue;
      for (size_t c = 0; c < t->cols(); ++c) {
        t->at(r, c) -= factor * t->at(leave, c);
      }
    }
    (*basis)[leave] = enter;
  }
}

}  // namespace

Result<LpSolution> SolveLp(const LpProblem& problem) {
  const size_t n = problem.objective.size();
  const size_t m = problem.constraints.size();
  for (const auto& c : problem.constraints) {
    if (c.coeffs.size() != n) {
      return Status::InvalidArgument("constraint arity mismatch");
    }
  }

  // Normalize to minimization with b >= 0 and equality rows augmented by
  // slack/surplus columns.
  const bool maximize = problem.sense == LpProblem::Sense::kMaximize;
  std::vector<double> cost(n);
  for (size_t j = 0; j < n; ++j) {
    cost[j] = maximize ? -problem.objective[j] : problem.objective[j];
  }

  // Count slack columns (one per inequality).
  size_t num_slack = 0;
  for (const auto& c : problem.constraints) {
    if (c.relation != LpRelation::kEqual) ++num_slack;
  }
  const size_t num_art = m;
  const size_t total_cols = n + num_slack + num_art + 1;  // + rhs
  Tableau t(m + 1, total_cols);
  std::vector<size_t> basis(m);

  size_t slack_at = n;
  for (size_t r = 0; r < m; ++r) {
    const auto& c = problem.constraints[r];
    double sign = c.rhs < 0 ? -1.0 : 1.0;
    for (size_t j = 0; j < n; ++j) t.at(r, j) = sign * c.coeffs[j];
    t.at(r, total_cols - 1) = sign * c.rhs;
    LpRelation rel = c.relation;
    if (sign < 0) {
      if (rel == LpRelation::kLessEqual) {
        rel = LpRelation::kGreaterEqual;
      } else if (rel == LpRelation::kGreaterEqual) {
        rel = LpRelation::kLessEqual;
      }
    }
    if (rel == LpRelation::kLessEqual) {
      t.at(r, slack_at++) = 1.0;
    } else if (rel == LpRelation::kGreaterEqual) {
      t.at(r, slack_at++) = -1.0;
    }
    // Artificial variable, initially basic.
    t.at(r, n + num_slack + r) = 1.0;
    basis[r] = n + num_slack + r;
  }

  // Phase 1: minimize the sum of artificials. Objective row = -(sum of
  // constraint rows) over non-artificial columns, so reduced costs of the
  // initial basis are zero.
  for (size_t c = 0; c < total_cols; ++c) {
    double sum = 0.0;
    for (size_t r = 0; r < m; ++r) sum += t.at(r, c);
    bool is_artificial = c >= n + num_slack && c < n + num_slack + num_art;
    t.at(m, c) = is_artificial ? 0.0 : -sum;
  }
  if (!RunSimplex(&t, &basis, n + num_slack)) {
    return Status::Internal("phase-1 LP unbounded (should be impossible)");
  }
  double phase1 = -t.at(m, total_cols - 1);
  LpSolution solution;
  if (phase1 > 1e-7) {
    solution.outcome = LpSolution::Outcome::kInfeasible;
    return solution;
  }

  // Drive any remaining basic artificials out (degenerate rows). If a row
  // has no pivotable structural/slack column it is redundant: zero it.
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] >= n + num_slack) {
      size_t pivot_col = n + num_slack;
      for (size_t c = 0; c < n + num_slack; ++c) {
        if (std::abs(t.at(r, c)) > kEps) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col == n + num_slack) continue;  // redundant row
      double pivot = t.at(r, pivot_col);
      for (size_t c = 0; c < total_cols; ++c) t.at(r, c) /= pivot;
      for (size_t rr = 0; rr <= m; ++rr) {
        if (rr == r) continue;
        double factor = t.at(rr, pivot_col);
        if (std::abs(factor) < kEps) continue;
        for (size_t c = 0; c < total_cols; ++c) {
          t.at(rr, c) -= factor * t.at(r, c);
        }
      }
      basis[r] = pivot_col;
    }
  }

  // Phase 2 objective row: costs, then eliminate basic columns.
  for (size_t c = 0; c < total_cols; ++c) t.at(m, c) = 0.0;
  for (size_t j = 0; j < n; ++j) t.at(m, j) = cost[j];
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] < n) {
      double factor = t.at(m, basis[r]);
      if (std::abs(factor) < kEps) continue;
      for (size_t c = 0; c < total_cols; ++c) {
        t.at(m, c) -= factor * t.at(r, c);
      }
    }
  }
  if (!RunSimplex(&t, &basis, n + num_slack)) {
    solution.outcome = LpSolution::Outcome::kUnbounded;
    return solution;
  }

  solution.outcome = LpSolution::Outcome::kOptimal;
  solution.values.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] < n) solution.values[basis[r]] = t.at(r, total_cols - 1);
  }
  double obj = 0.0;
  for (size_t j = 0; j < n; ++j)
    obj += problem.objective[j] * solution.values[j];
  solution.objective = obj;
  return solution;
}

}  // namespace xjoin
