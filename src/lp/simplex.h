// A small dense two-phase simplex solver. The multi-model size bound of
// the paper (Equation 1) is a linear program over at most a few dozen
// variables, so a textbook tableau method with Bland's anti-cycling rule
// is exact enough and has no dependencies.
#ifndef XJOIN_LP_SIMPLEX_H_
#define XJOIN_LP_SIMPLEX_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace xjoin {

/// Relational operator of one linear constraint.
enum class LpRelation : char {
  kLessEqual = '<',
  kGreaterEqual = '>',
  kEqual = '=',
};

/// One constraint: coeffs · x  (relation)  rhs.
struct LpConstraint {
  std::vector<double> coeffs;
  LpRelation relation = LpRelation::kLessEqual;
  double rhs = 0.0;
};

/// min/max objective · x subject to constraints and x >= 0.
struct LpProblem {
  enum class Sense { kMinimize, kMaximize };
  Sense sense = Sense::kMinimize;
  std::vector<double> objective;
  std::vector<LpConstraint> constraints;
};

/// Solver outcome.
struct LpSolution {
  enum class Outcome { kOptimal, kInfeasible, kUnbounded };
  Outcome outcome = Outcome::kOptimal;
  double objective = 0.0;
  std::vector<double> values;  ///< one per problem variable

  bool optimal() const { return outcome == Outcome::kOptimal; }
};

/// Solves the LP. Returns InvalidArgument for malformed input (dimension
/// mismatches); infeasibility/unboundedness are reported in the solution.
Result<LpSolution> SolveLp(const LpProblem& problem);

}  // namespace xjoin

#endif  // XJOIN_LP_SIMPLEX_H_
