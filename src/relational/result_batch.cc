#include "relational/result_batch.h"

#include "common/logging.h"

namespace xjoin {

ResultBatch::ResultBatch(size_t arity, size_t capacity)
    : capacity_(capacity), cols_(arity), col_ptrs_(arity) {
  XJ_DCHECK(arity >= 1 && capacity >= 1);
  for (auto& col : cols_) col.reserve(capacity);
}

void ResultBatch::PushRow(const std::vector<int64_t>& row) {
  XJ_DCHECK(!full());
  XJ_DCHECK(row.size() >= cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(row[c]);
}

void ResultBatch::PushRun(const std::vector<int64_t>& prefix,
                          const int64_t* keys, size_t count) {
  XJ_DCHECK(count <= capacity_ - size());
  const size_t last = cols_.size() - 1;
  for (size_t c = 0; c < last; ++c) {
    cols_[c].insert(cols_[c].end(), count, prefix[c]);
  }
  cols_[last].insert(cols_[last].end(), keys, keys + count);
}

void ResultBatch::Flush(Relation* out) {
  if (empty()) return;
  for (size_t c = 0; c < cols_.size(); ++c) col_ptrs_[c] = cols_[c].data();
  out->AppendColumnBlock(col_ptrs_.data(), size());
  for (auto& col : cols_) col.clear();
}

}  // namespace xjoin
