#ifndef XJOIN_RELATIONAL_INTERSECT_KERNELS_IMPL_H_
#define XJOIN_RELATIONAL_INTERSECT_KERNELS_IMPL_H_

// Shared kernel bodies, stamped out once per SIMD level. Each variant
// TU (intersect_kernels.cc and the -msse4.2/-mavx2 TUs) instantiates
// Kernels<Ops> with an Ops policy supplying the vector primitive:
//
//   LinearLowerBound(keys, lo, hi, key) — first index in [lo, hi)
//     with keys[index] >= key, scanning forward block-wise with the
//     level's vector compare (scalar loop for the scalar policy and
//     for sub-block tails).
//   kLinearCutoff — window size below which LowerBound switches from
//     binary halving to the linear scan.
//   kScanBudget — how many keys a kMerge seek scans linearly before
//     falling back to the gallop bracket.
//
// Everything above the primitive — gallop bracketing, leapfrog
// align/advance, the resumable drain — is shared, which is what makes
// the counter-exactness contract in intersect_kernels.h hold by
// construction: all variants execute the same jump sequence.

#include <cstddef>
#include <cstdint>

#include "relational/intersect_kernels.h"

namespace xjoin {
namespace intersect_internal {

template <class Ops>
struct Kernels {
  static size_t LowerBound(const int64_t* keys, size_t lo, size_t hi,
                           int64_t key) {
    while (hi - lo > Ops::kLinearCutoff) {
      size_t mid = lo + (hi - lo) / 2;
      if (keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return Ops::LinearLowerBound(keys, lo, hi, key);
  }

  static size_t Seek(const int64_t* keys, size_t pos, size_t hi, int64_t key,
                     IntersectStrategy strategy) {
    if (strategy == IntersectStrategy::kMerge) {
      // Linear-scan-first: near-equal cardinalities land a few keys
      // ahead, so a bounded forward scan usually resolves the seek
      // without the gallop's cache-unfriendly probes. The scan stays
      // scalar at every SIMD level — merge is chosen precisely when
      // gaps are a couple of keys, where a compare-and-branch beats
      // vector setup latency; the vector primitive earns its keep in
      // LowerBound's wide brackets below.
      size_t scan_hi =
          hi - pos > Ops::kScanBudget ? pos + Ops::kScanBudget : hi;
      size_t scanned = pos;
      while (scanned < scan_hi && keys[scanned] < key) ++scanned;
      if (scanned < scan_hi || scan_hi == hi) return scanned;
      pos = scanned;  // everything before `scanned` is < key: gallop on
    }
    size_t base = pos;
    size_t step = 1;
    while (base + step < hi && keys[base + step] < key) {
      base += step;
      step <<= 1;
    }
    size_t bracket_hi = base + step < hi ? base + step : hi;
    return LowerBound(keys, base, bracket_hi, key);
  }

  // Mirrors the scalar engine's leapfrog align: false if any cursor is
  // exhausted; otherwise seek every lagging cursor to the running max
  // (one counted seek per jump) until all agree on one key (cursor 0's
  // current key).
  static bool Align(KeyCursor* cursors, size_t n, IntersectStrategy strategy,
                    int64_t* seeks) {
    for (size_t i = 0; i < n; ++i) {
      if (cursors[i].pos >= cursors[i].hi) return false;
    }
    for (;;) {
      int64_t max_key = cursors[0].keys[cursors[0].pos];
      for (size_t i = 1; i < n; ++i) {
        int64_t key = cursors[i].keys[cursors[i].pos];
        if (key > max_key) max_key = key;
      }
      bool all_equal = true;
      for (size_t i = 0; i < n; ++i) {
        KeyCursor& c = cursors[i];
        if (c.keys[c.pos] < max_key) {
          c.pos = Seek(c.keys, c.pos, c.hi, max_key, strategy);
          ++*seeks;
          if (c.pos >= c.hi) return false;
          if (c.keys[c.pos] > max_key) {
            all_equal = false;
            break;  // overshot: restart with the new max
          }
        }
      }
      if (all_equal) return true;
    }
  }

  // Mirrors the scalar engine's advance: step the lead cursor (one
  // counted seek), then realign.
  static bool Advance(KeyCursor* cursors, size_t n,
                      IntersectStrategy strategy, int64_t* seeks) {
    ++cursors[0].pos;
    ++*seeks;
    if (cursors[0].pos >= cursors[0].hi) return false;
    return Align(cursors, n, strategy, seeks);
  }

  static size_t Drain(KeyCursor* cursors, size_t n,
                      IntersectStrategy strategy, bool first, bool has_hi,
                      int64_t hi, int64_t* out, size_t cap, int64_t* seeks,
                      bool* done) {
    size_t count = 0;
    bool have = first ? Align(cursors, n, strategy, seeks)
                      : Advance(cursors, n, strategy, seeks);
    while (have) {
      int64_t key = cursors[0].keys[cursors[0].pos];
      if (has_hi && key >= hi) break;  // shard bound: drained dry
      out[count++] = key;
      if (count == cap) {
        *done = false;
        return count;
      }
      have = Advance(cursors, n, strategy, seeks);
    }
    *done = true;
    return count;
  }
};

}  // namespace intersect_internal
}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_INTERSECT_KERNELS_IMPL_H_
