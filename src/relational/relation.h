// In-memory columnar relations over dictionary codes.
#ifndef XJOIN_RELATIONAL_RELATION_H_
#define XJOIN_RELATIONAL_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"

namespace xjoin {

/// A tuple is one int64 code per schema attribute, in schema order.
using Tuple = std::vector<int64_t>;

/// Column-oriented storage for a bag of tuples. Rows are addressed by
/// index; columns are contiguous vectors (cache-friendly scans, cheap
/// column projection for trie building).
class Relation {
 public:
  /// Creates an empty relation with the given schema.
  explicit Relation(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  /// Pre-reserves capacity for `rows` total rows in every column, so a
  /// producer with a size estimate (the join engine uses its level-0
  /// key-count estimate) avoids incremental growth entirely.
  void Reserve(size_t rows);

  /// Appends a row given in schema order. Precondition: row.size() == arity.
  void AppendRow(const Tuple& row);

  /// Appends `num_rows` rows given columnar (SoA): columns[c] points at
  /// `num_rows` values of attribute c, in schema order. One geometric
  /// reserve + contiguous copy per column — the batched engine's flush
  /// path, with no per-row temporaries. Precondition: columns has
  /// num_columns() entries.
  void AppendColumnBlock(const int64_t* const* columns, size_t num_rows);

  /// Appends every row of `other`, in order, by bulk column splice —
  /// O(columns) vector inserts, no per-row temporaries. Precondition:
  /// identical schema (same attribute names in the same order).
  void AppendRows(const Relation& other);

  /// Cell accessor.
  int64_t at(size_t row, size_t col) const { return columns_[col][row]; }

  /// Materializes row `row` as a Tuple.
  Tuple GetRow(size_t row) const;

  /// Whole column (by position).
  const std::vector<int64_t>& column(size_t col) const { return columns_[col]; }

  /// Column by attribute name; fails if the attribute is absent.
  Result<const std::vector<int64_t>*> ColumnByName(
      const std::string& name) const;

  /// Sorts rows lexicographically by the given column positions (all
  /// columns if empty) and removes duplicate rows. Used to turn bags
  /// into sets before trie construction and result comparison.
  void SortAndDedup();

  /// Returns all rows as tuples, in storage order.
  std::vector<Tuple> ToTuples() const;

  /// Builds a relation from schema + tuples (validates arity).
  static Result<Relation> FromTuples(Schema schema, std::vector<Tuple> tuples);

  /// True if `row` (schema order) occurs in this relation. O(n) scan;
  /// intended for tests.
  bool ContainsRow(const Tuple& row) const;

  /// Multi-line debug rendering (at most `max_rows` rows).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<std::vector<int64_t>> columns_;
};

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_RELATION_H_
