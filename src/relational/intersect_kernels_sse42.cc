// SSE4.2 kernel variant. This TU — and only this TU — is compiled with
// -msse4.2 (see src/relational/CMakeLists.txt), so the vector code
// here never leaks into translation units that must stay runnable on
// baseline x86-64. When the flag is unavailable (non-x86 target, or a
// toolchain without it) the registry entry degrades to null and
// dispatch walks down to scalar.
#include "relational/intersect_kernels.h"

#if defined(__SSE4_2__) && (defined(__GNUC__) || defined(__clang__))

#include <emmintrin.h>
#include <smmintrin.h>

#include "relational/intersect_kernels_impl.h"

namespace xjoin {
namespace intersect_internal {
namespace {

// PCMPGTQ (64-bit signed greater-than) is the SSE4.2 floor for these
// kernels; __m128i holds two lanes.
struct Sse42Ops {
  static constexpr size_t kLinearCutoff = 16;
  static constexpr size_t kScanBudget = 16;

  static size_t LinearLowerBound(const int64_t* keys, size_t lo, size_t hi,
                                 int64_t key) {
    const __m128i needle = _mm_set1_epi64x(key);
    size_t i = lo;
    while (i + 2 <= hi) {
      // Keys ascend, so lanes < key form a prefix of the block: the
      // popcount of the less-than mask is the in-block offset of the
      // first lane >= key.
      __m128i block =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
      __m128i lt = _mm_cmpgt_epi64(needle, block);
      unsigned mask =
          static_cast<unsigned>(_mm_movemask_pd(_mm_castsi128_pd(lt)));
      if (mask != 0x3u) {
        return i + static_cast<size_t>(__builtin_popcount(mask));
      }
      i += 2;
    }
    while (i < hi && keys[i] < key) ++i;  // tail
    return i;
  }
};

using Sse42Kernels = Kernels<Sse42Ops>;

constexpr IntersectKernel kSse42Kernel = {
    SimdLevel::kSse42,
    &Sse42Kernels::LowerBound,
    &Sse42Kernels::Seek,
    &Sse42Kernels::Drain,
};

}  // namespace

const IntersectKernel* Sse42IntersectKernel() { return &kSse42Kernel; }

}  // namespace intersect_internal
}  // namespace xjoin

#else  // !__SSE4_2__

namespace xjoin {
namespace intersect_internal {

const IntersectKernel* Sse42IntersectKernel() { return nullptr; }

}  // namespace intersect_internal
}  // namespace xjoin

#endif  // __SSE4_2__
