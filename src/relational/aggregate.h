// Group-by aggregation over relations. Aggregates operate either on
// dictionary codes directly (kCount, kCountDistinct) or on the *decoded
// numeric value* of the codes (kSum/kMin/kMax/kAvg decode each cell
// through the dictionary and parse it as a number) — join columns are
// codes, but measures like `price` are numeric strings in the shared
// dictionary.
#ifndef XJOIN_RELATIONAL_AGGREGATE_H_
#define XJOIN_RELATIONAL_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/dictionary.h"
#include "common/status.h"
#include "relational/relation.h"

namespace xjoin {

/// Supported aggregate functions.
enum class AggregateFunction {
  kCount,          ///< number of rows in the group
  kCountDistinct,  ///< distinct codes of the input attribute
  kSum,            ///< sum of numeric values
  kMin,            ///< minimum numeric value
  kMax,            ///< maximum numeric value
  kAvg,            ///< mean numeric value
};

/// One aggregate specification.
struct AggregateSpec {
  AggregateFunction function = AggregateFunction::kCount;
  /// Input attribute; ignored for kCount (may be empty).
  std::string attribute;
  /// Output attribute name.
  std::string as;
};

/// Groups `input` by `group_by` and computes `aggregates` per group.
/// The output schema is group_by followed by each spec's `as` name; all
/// outputs are dictionary codes (numeric results are canonicalized
/// through Value and interned into `dict`). Groups appear in sorted
/// order of their keys.
Result<Relation> GroupBy(const Relation& input,
                         const std::vector<std::string>& group_by,
                         const std::vector<AggregateSpec>& aggregates,
                         Dictionary* dict);

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_AGGREGATE_H_
