// CSV ingestion: parse delimited text into a Relation, dictionary-
// encoding every cell. Supports quoted fields with embedded delimiters
// and doubled quotes (RFC 4180 subset, no embedded newlines).
#ifndef XJOIN_RELATIONAL_CSV_H_
#define XJOIN_RELATIONAL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/dictionary.h"
#include "common/status.h"
#include "relational/relation.h"
#include "relational/value.h"

namespace xjoin {

/// Options for ReadCsv.
struct CsvOptions {
  char delimiter = ',';
  /// If true the first line provides attribute names; otherwise names are
  /// col0, col1, ...
  bool has_header = true;
  /// Per-column types; if empty every column is kString. Values are parsed
  /// and re-canonicalized through Value so "007" (int64) and "7" encode
  /// identically.
  std::vector<ValueType> types;
};

/// Parses `text` into a relation, interning every cell into `dict`.
Result<Relation> ReadCsv(std::string_view text, const CsvOptions& options,
                         Dictionary* dict);

/// Reads a file and delegates to ReadCsv.
Result<Relation> ReadCsvFile(const std::string& path, const CsvOptions& options,
                             Dictionary* dict);

/// Renders `relation` as CSV, decoding codes through `dict`.
std::string WriteCsv(const Relation& relation, const Dictionary& dict,
                     char delimiter = ',');

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_CSV_H_
