// Materialized tries over columnar relations, stored as CSR level
// arrays: level d keeps a dense array of distinct keys (given the bound
// prefix) plus child offsets into level d+1 — classic compressed-
// sparse-row nesting. Cursors are O(1) per Open/Next/Up/EstimateKeys;
// Seek gallops inside the current parent's (small) child range.
#ifndef XJOIN_RELATIONAL_TRIE_H_
#define XJOIN_RELATIONAL_TRIE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "relational/relation.h"
#include "relational/trie_iterator.h"

namespace xjoin {

/// Knobs for RelationTrie::Build.
struct TrieBuildOptions {
  /// Worker threads for the per-level CSR construction (the sort stays
  /// serial — it is the LSD radix fast path). <= 1 builds fully inline.
  int num_threads = 1;
  /// Nullable counters: "trie.builds", "trie.build_micros",
  /// "trie.radix_sorts", "trie.std_sorts".
  Metrics* metrics = nullptr;
};

/// A relation deduplicated and sorted lexicographically under an
/// attribute permutation, flattened into one CSR level per attribute:
///
///   keys_[d]        — all level-d trie nodes' keys, parent-major
///   child_begin_[d] — node i at level d owns keys_[d+1] entries
///                     [child_begin_[d][i], child_begin_[d][i+1])
///
/// Build sorts dictionary codes with an LSD radix sort (std::sort below
/// a small-input threshold) and assembles the per-level arrays in one
/// pass over the sorted columns — duplicate rows fold away during that
/// pass, no re-reads of the unsorted relation.
class RelationTrie {
 public:
  /// Builds the CSR trie for `relation` under the attribute order given
  /// as a list of attribute names (must be exactly the relation's
  /// attributes, possibly permuted).
  static Result<RelationTrie> Build(const Relation& relation,
                                    const std::vector<std::string>& order,
                                    const TrieBuildOptions& options = {});

  /// Attribute names in trie (sorted) order.
  const std::vector<std::string>& attribute_order() const { return order_; }

  /// Number of distinct tuples (leaf count).
  size_t num_rows() const { return keys_.empty() ? 0 : keys_.back().size(); }
  int arity() const { return static_cast<int>(keys_.size()); }

  /// Creates a cursor positioned at the virtual root.
  std::unique_ptr<TrieIterator> NewIterator() const;

  /// Heap bytes held by the CSR arrays (keys + child offsets). Used by
  /// the database's byte-budget trie cache for eviction accounting.
  size_t ByteSizeEstimate() const {
    size_t bytes = 0;
    for (const auto& level : keys_) bytes += level.capacity() * sizeof(int64_t);
    for (const auto& level : child_begin_) {
      bytes += level.capacity() * sizeof(size_t);
    }
    return bytes;
  }

  /// Direct read access to the CSR arrays (tests, debugging).
  const std::vector<int64_t>& level_keys(size_t d) const { return keys_[d]; }
  const std::vector<size_t>& child_begin(size_t d) const {
    return child_begin_[d];
  }

 private:
  RelationTrie() = default;

  friend class RelationTrieIterator;

  std::vector<std::string> order_;
  std::vector<std::vector<int64_t>> keys_;        // one per level
  std::vector<std::vector<size_t>> child_begin_;  // one per level except last
};

/// Cursor over a RelationTrie. The state at depth d is the half-open
/// range [lo, hi) of keys_[d] owned by the bound prefix (the parent
/// node's child range) plus the cursor position within it, so Open,
/// Next, Up, Key, AtEnd, and EstimateKeys are all O(1); Seek is a gallop
/// + binary search over the per-parent range only.
class RelationTrieIterator final : public TrieIterator {
 public:
  explicit RelationTrieIterator(const RelationTrie* trie);

  int arity() const override { return trie_->arity(); }
  int depth() const override { return depth_; }
  void Open() override;
  void Up() override;
  bool AtEnd() const override;
  int64_t Key() const override;
  void Next() override;
  void Seek(int64_t key) override;
  int64_t EstimateKeys() const override;
  /// O(1)-per-key bulk drain: one bounds computation + a contiguous copy
  /// straight out of the CSR level array.
  size_t NextBlock(int64_t hi_exclusive, KeyBlock* out) override;
  /// CSR levels are sorted arrays, so the raw span is always available.
  bool RawLevelSpan(RawKeySpan* out) const override;
  std::unique_ptr<TrieIterator> Clone() const override;

 private:
  struct Frame {
    size_t lo, hi;  // the parent's child range within keys_[depth]
    size_t pos;     // cursor, lo <= pos <= hi
  };

  const RelationTrie* trie_;
  int depth_ = -1;
  std::vector<Frame> frames_;
};

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_TRIE_H_
