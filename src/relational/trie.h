// Materialized tries over columnar relations, stored as CSR level
// arrays: level d keeps a dense array of distinct keys (given the bound
// prefix) plus child offsets into level d+1 — classic compressed-
// sparse-row nesting. Cursors are O(1) per Open/Next/Up/EstimateKeys;
// Seek gallops inside the current parent's (small) child range.
//
// Incremental maintenance: the CSR arrays are an immutable shared base
// (`Core`, behind a shared_ptr), and a trie may additionally carry a
// small sorted delta side-file (`Delta`: pending insert rows plus
// tombstones over base rows). ApplyDelta produces a NEW trie value that
// shares the base arrays — callers holding the old trie (session
// snapshot pins, in-flight plans) are never mutated under them — and
// folds the delta into a fresh Core (amortized compaction) once it
// exceeds a size ratio, so single-tuple updates never pay a full radix
// rebuild.
#ifndef XJOIN_RELATIONAL_TRIE_H_
#define XJOIN_RELATIONAL_TRIE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "relational/relation.h"
#include "relational/trie_iterator.h"

namespace xjoin {

/// Knobs for RelationTrie::Build.
struct TrieBuildOptions {
  /// Worker threads for the per-level CSR construction (the sort stays
  /// serial — it is the LSD radix fast path). <= 1 builds fully inline.
  int num_threads = 1;
  /// Nullable counters: "trie.builds", "trie.build_micros",
  /// "trie.radix_sorts", "trie.std_sorts".
  Metrics* metrics = nullptr;
};

/// Knobs for RelationTrie::ApplyDelta.
struct TrieDeltaOptions {
  /// Fold the pending delta into fresh level arrays once
  /// inserts + tombstones exceed max(compact_min_rows,
  /// compact_ratio * base leaf count). Compaction is a linear merge of
  /// the (already sorted) base enumeration with the delta — no radix
  /// re-sort — so the amortized cost per updated tuple stays O(k).
  double compact_ratio = 0.25;
  size_t compact_min_rows = 64;
  /// Compact unconditionally (tests; also used by benchmarks to pin the
  /// compaction boundary).
  bool force_compact = false;
  /// Nullable counters: "trie.delta_applies", "trie.compactions",
  /// "trie.compact_micros".
  Metrics* metrics = nullptr;
};

/// A relation deduplicated and sorted lexicographically under an
/// attribute permutation, flattened into one CSR level per attribute:
///
///   keys[d]        — all level-d trie nodes' keys, parent-major
///   child_begin[d] — node i at level d owns keys[d+1] entries
///                    [child_begin[d][i], child_begin[d][i+1])
///
/// Build sorts dictionary codes with an LSD radix sort (std::sort below
/// a small-input threshold) and assembles the per-level arrays in one
/// pass over the sorted columns — duplicate rows fold away during that
/// pass, no re-reads of the unsorted relation.
///
/// The logical contents of a trie are (base \ tombstones) ∪ inserts;
/// the delta is empty for freshly built or just-compacted tries, and
/// iterators merge it on the fly otherwise (see
/// RelationDeltaTrieIterator).
class RelationTrie {
 public:
  /// Builds the CSR trie for `relation` under the attribute order given
  /// as a list of attribute names (must be exactly the relation's
  /// attributes, possibly permuted).
  static Result<RelationTrie> Build(const Relation& relation,
                                    const std::vector<std::string>& order,
                                    const TrieBuildOptions& options = {});

  /// Returns a new trie whose logical contents apply `deletes` then
  /// `inserts` (tuples in trie attribute order) on top of this trie.
  /// Deleting an absent tuple and inserting a present one are no-ops,
  /// so replaying the same batch is idempotent. The result shares this
  /// trie's base level arrays (copy-on-swap: `*this` is untouched)
  /// unless the merged pending delta crossed the compaction threshold,
  /// in which case it carries a freshly assembled Core and no delta.
  Result<RelationTrie> ApplyDelta(const std::vector<Tuple>& inserts,
                                  const std::vector<Tuple>& deletes,
                                  const TrieDeltaOptions& options = {}) const;

  /// Attribute names in trie (sorted) order.
  const std::vector<std::string>& attribute_order() const { return order_; }

  /// Number of distinct tuples: base leaves minus tombstones plus
  /// pending inserts.
  size_t num_rows() const {
    return base_rows() + delta_insert_rows() - delta_tombstone_rows();
  }
  int arity() const {
    return core_ == nullptr ? 0 : static_cast<int>(core_->keys.size());
  }

  /// True when a pending (not yet compacted) delta side-file is
  /// attached; NewIterator returns the merging cursor in that case.
  bool has_delta() const { return delta_ != nullptr; }
  size_t delta_insert_rows() const {
    return delta_ == nullptr ? 0 : delta_->insert_rows;
  }
  size_t delta_tombstone_rows() const {
    return delta_ == nullptr ? 0 : delta_->tombstone_rows;
  }

  /// True when `other` shares this trie's base level arrays — i.e. it
  /// was derived from the same Core by ApplyDelta without compaction.
  bool SharesBaseWith(const RelationTrie& other) const {
    return core_ != nullptr && core_ == other.core_;
  }

  /// Upper bound on the distinct keys at level `d` (base keys plus
  /// pending insert rows); the planner's shard/lead estimates use this
  /// instead of level_keys so delta tries plan sensibly.
  size_t LevelKeyEstimate(size_t d) const {
    size_t estimate = core_ == nullptr ? 0 : core_->keys[d].size();
    if (delta_ != nullptr) estimate += delta_->insert_rows;
    return estimate;
  }

  /// Appends the logical contents (delta merged) in lexicographic trie
  /// order. O(num_rows * arity); tests and compaction debugging.
  void EnumerateTuples(std::vector<Tuple>* out) const;

  /// Creates a cursor positioned at the virtual root.
  std::unique_ptr<TrieIterator> NewIterator() const;

  /// Heap bytes held by the CSR arrays plus any delta side-file. Used
  /// by the database's byte-budget trie cache for eviction accounting.
  size_t ByteSizeEstimate() const;

  /// Direct read access to the BASE CSR arrays (tests, debugging);
  /// pending delta rows are not reflected here.
  const std::vector<int64_t>& level_keys(size_t d) const {
    return core_->keys[d];
  }
  const std::vector<size_t>& child_begin(size_t d) const {
    return core_->child_begin[d];
  }

 private:
  RelationTrie() = default;

  friend class RelationTrieIterator;
  friend class RelationDeltaTrieIterator;

  /// The immutable CSR level arrays. Shared (never mutated) across
  /// every trie value derived by ApplyDelta without compaction, and
  /// across iterator clones on other threads.
  struct Core {
    std::vector<std::vector<int64_t>> keys;         // one per level
    std::vector<std::vector<size_t>> child_begin;   // one per level except last
  };

  /// The sorted delta side-file: columnar tuple rows in trie order,
  /// lexicographically sorted and distinct within each side. Invariants:
  /// inserts ∩ base = ∅, tombstones ⊆ base, inserts ∩ tombstones = ∅
  /// (ApplyDelta's classification enforces all three).
  struct Delta {
    std::vector<std::vector<int64_t>> inserts;     // k columns
    std::vector<std::vector<int64_t>> tombstones;  // k columns
    size_t insert_rows = 0;
    size_t tombstone_rows = 0;
  };

  size_t base_rows() const {
    return core_ == nullptr || core_->keys.empty() ? 0
                                                   : core_->keys.back().size();
  }
  bool BaseContains(const Tuple& tuple) const;

  std::vector<std::string> order_;
  std::shared_ptr<const Core> core_;
  std::shared_ptr<const Delta> delta_;  // null == no pending delta
};

/// Cursor over a RelationTrie with no pending delta. The state at depth
/// d is the half-open range [lo, hi) of keys[d] owned by the bound
/// prefix (the parent node's child range) plus the cursor position
/// within it, so Open, Next, Up, Key, AtEnd, and EstimateKeys are all
/// O(1); Seek is a gallop + binary search over the per-parent range
/// only.
class RelationTrieIterator final : public TrieIterator {
 public:
  explicit RelationTrieIterator(const RelationTrie* trie);

  int arity() const override { return trie_->arity(); }
  int depth() const override { return depth_; }
  void Open() override;
  void Up() override;
  bool AtEnd() const override;
  int64_t Key() const override;
  void Next() override;
  void Seek(int64_t key) override;
  int64_t EstimateKeys() const override;
  /// O(1)-per-key bulk drain: one bounds computation + a contiguous copy
  /// straight out of the CSR level array.
  size_t NextBlock(int64_t hi_exclusive, KeyBlock* out) override;
  /// CSR levels are sorted arrays, so the raw span is always available.
  bool RawLevelSpan(RawKeySpan* out) const override;
  /// Delta-free CSR storage is exactly the raw layout: always true.
  bool RawTrieSpans(RawTrieView* out) const override;
  std::unique_ptr<TrieIterator> Clone() const override;

 private:
  struct Frame {
    size_t lo, hi;  // the parent's child range within keys[depth]
    size_t pos;     // cursor, lo <= pos <= hi
  };

  const RelationTrie* trie_;
  int depth_ = -1;
  std::vector<Frame> frames_;
};

/// Cursor over a RelationTrie with a pending delta side-file: a
/// three-way sorted merge of the base CSR range, the pending insert
/// rows, and the tombstone rows for the bound prefix. Base keys whose
/// entire subtree is tombstoned are skipped; keys present in both the
/// base and an insert subtree (shared prefix) surface once. Upper-bound
/// EstimateKeys, scalar NextBlock except on pure-base tails, and
/// RawLevelSpan only when the current range has no delta rows (the
/// batched kernels fall back to scalar leapfrog otherwise) keep the
/// TrieIterator contract intact — see tests/trie_conformance_test.cc.
class RelationDeltaTrieIterator final : public TrieIterator {
 public:
  explicit RelationDeltaTrieIterator(const RelationTrie* trie);

  int arity() const override { return trie_->arity(); }
  int depth() const override { return depth_; }
  void Open() override;
  void Up() override;
  bool AtEnd() const override;
  int64_t Key() const override;
  void Next() override;
  void Seek(int64_t key) override;
  int64_t EstimateKeys() const override;
  size_t NextBlock(int64_t hi_exclusive, KeyBlock* out) override;
  bool RawLevelSpan(RawKeySpan* out) const override;
  std::unique_ptr<TrieIterator> Clone() const override;

 private:
  struct Frame {
    size_t blo = 0, bhi = 0, bpos = 0;  // base child range in keys[depth]
    size_t ilo = 0, ihi = 0, ipos = 0;  // pending-insert rows for the prefix
    size_t tlo = 0, thi = 0;            // tombstone rows for the prefix
    int64_t key = 0;                    // merged key when !exhausted
    bool from_base = false;             // key present in the base range
    bool from_insert = false;           // key present in the insert range
    bool exhausted = true;
  };

  /// Skips fully tombstoned base keys, then recomputes the merged head
  /// (key / from_base / from_insert / exhausted) at depth `d`.
  void Reposition(Frame* f, size_t d) const;
  /// Base leaves under the child node `node` of level `d` (cascaded
  /// child ranges, O(arity)); a base key dies only when its tombstone
  /// count equals this.
  size_t SubtreeLeafCount(size_t d, size_t node) const;

  const RelationTrie* trie_;
  const RelationTrie::Core* core_;
  const RelationTrie::Delta* delta_;
  int depth_ = -1;
  std::vector<Frame> frames_;
};

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_TRIE_H_
