// Materialized sorted tries over columnar relations.
#ifndef XJOIN_RELATIONAL_TRIE_H_
#define XJOIN_RELATIONAL_TRIE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"
#include "relational/trie_iterator.h"

namespace xjoin {

/// A relation sorted lexicographically under an attribute permutation,
/// exposing TrieIterator cursors. Building costs O(n log n); cursors are
/// O(log n) per Seek (binary search within the active range).
class RelationTrie {
 public:
  /// Sorts (a copy of) `relation` by the attribute order given as a list
  /// of attribute names (must be exactly the relation's attributes,
  /// possibly permuted) and deduplicates rows.
  static Result<RelationTrie> Build(const Relation& relation,
                                    const std::vector<std::string>& order);

  /// Attribute names in trie (sorted) order.
  const std::vector<std::string>& attribute_order() const { return order_; }

  size_t num_rows() const { return cols_.empty() ? 0 : cols_[0].size(); }
  int arity() const { return static_cast<int>(cols_.size()); }

  /// Creates a cursor positioned at the virtual root.
  std::unique_ptr<TrieIterator> NewIterator() const;

  /// Direct read access to sorted column `c` (tests, debugging).
  const std::vector<int64_t>& column(size_t c) const { return cols_[c]; }

 private:
  RelationTrie() = default;

  friend class RelationTrieIterator;

  std::vector<std::string> order_;
  std::vector<std::vector<int64_t>> cols_;  // sorted lexicographically
};

/// Cursor over a RelationTrie. The state at depth d is a half-open row
/// range [lo, hi) of tuples agreeing with the bound prefix, plus the
/// current key group [pos, group_end) within it.
class RelationTrieIterator final : public TrieIterator {
 public:
  explicit RelationTrieIterator(const RelationTrie* trie);

  int arity() const override { return trie_->arity(); }
  int depth() const override { return depth_; }
  void Open() override;
  void Up() override;
  bool AtEnd() const override;
  int64_t Key() const override;
  void Next() override;
  void Seek(int64_t key) override;
  int64_t EstimateKeys() const override;
  std::unique_ptr<TrieIterator> Clone() const override;

 private:
  struct Frame {
    size_t lo, hi;        // rows matching the bound prefix
    size_t pos;           // start of the current key group
    size_t group_end;     // one past the current key group
  };

  // Recomputes group_end for the frame at depth_ from pos.
  void FixGroup();

  const RelationTrie* trie_;
  int depth_ = -1;
  std::vector<Frame> frames_;
};

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_TRIE_H_
