// Fixed-capacity columnar (SoA) staging buffer for join results. The
// batched generic-join engine emits bindings into a ResultBatch and
// flushes full batches into the output Relation through
// Relation::AppendColumnBlock — one contiguous copy per column instead
// of one Tuple allocation plus per-column push_back per row.
#ifndef XJOIN_RELATIONAL_RESULT_BATCH_H_
#define XJOIN_RELATIONAL_RESULT_BATCH_H_

#include <cstdint>
#include <vector>

#include "relational/relation.h"

namespace xjoin {

/// Default result-batch capacity in rows — the batch_size that
/// GenericJoinOptions and XJoinOptions start from. Block-at-a-time
/// execution is on by default; callers opt back into the scalar
/// row-at-a-time path with batch_size = 0. 1024 rows keeps a batch's
/// working set (8 KiB per column) inside L1/L2 while amortizing the
/// per-block dispatch overhead; the equivalence suites hold results
/// byte-identical at every size, so the constant is purely a
/// performance knob.
inline constexpr int kDefaultResultBatchCapacity = 1024;

/// One column per output attribute, at most `capacity` staged rows.
/// Append order is preserved by Flush, so producers that emit rows in
/// result order stay deterministic through batching.
class ResultBatch {
 public:
  /// Precondition: arity >= 1, capacity >= 1.
  ResultBatch(size_t arity, size_t capacity);

  size_t arity() const { return cols_.size(); }
  size_t capacity() const { return capacity_; }
  size_t size() const { return cols_[0].size(); }
  bool empty() const { return size() == 0; }
  bool full() const { return size() >= capacity_; }

  /// Stages one row: the first arity() entries of `row`, in column
  /// order. Precondition: !full().
  void PushRow(const std::vector<int64_t>& row);

  /// Stages `count` rows that share row[0..arity-2] == prefix[0..arity-2]
  /// and take their last column from keys[0..count-1] — the shape a
  /// last-level key run produces. Column-at-a-time: one fill per prefix
  /// column, one contiguous copy for the key column. Precondition:
  /// count <= capacity() - size().
  void PushRun(const std::vector<int64_t>& prefix, const int64_t* keys,
               size_t count);

  /// Appends all staged rows to `out` (via AppendColumnBlock) and clears
  /// the batch. No-op when empty. Precondition: out has arity() columns.
  void Flush(Relation* out);

 private:
  size_t capacity_;
  std::vector<std::vector<int64_t>> cols_;
  std::vector<const int64_t*> col_ptrs_;  // scratch for Flush
};

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_RESULT_BATCH_H_
