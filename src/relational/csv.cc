#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace xjoin {

namespace {

// Splits one CSV record honoring quotes. Returns ParseError on dangling
// quote.
Result<std::vector<std::string>> SplitCsvLine(std::string_view line,
                                              char delimiter, size_t line_no) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": unterminated quote");
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

Result<Relation> ReadCsv(std::string_view text, const CsvOptions& options,
                         Dictionary* dict) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      std::string_view line = text.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) lines.push_back(line);
      start = i + 1;
    }
  }
  if (lines.empty()) return Status::ParseError("empty CSV input");

  size_t first_data = 0;
  std::vector<std::string> names;
  XJ_ASSIGN_OR_RETURN(std::vector<std::string> first_fields,
                      SplitCsvLine(lines[0], options.delimiter, 1));
  size_t arity = first_fields.size();
  if (options.has_header) {
    for (auto& f : first_fields) names.emplace_back(TrimWhitespace(f));
    first_data = 1;
  } else {
    for (size_t c = 0; c < arity; ++c)
      names.push_back("col" + std::to_string(c));
  }
  if (!options.types.empty() && options.types.size() != arity) {
    return Status::InvalidArgument("CSV type list arity mismatch");
  }
  XJ_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(names)));
  Relation rel(std::move(schema));

  Tuple row(arity);
  for (size_t ln = first_data; ln < lines.size(); ++ln) {
    XJ_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                        SplitCsvLine(lines[ln], options.delimiter, ln + 1));
    if (fields.size() != arity) {
      return Status::ParseError(
          "line " + std::to_string(ln + 1) + ": expected " +
          std::to_string(arity) + " fields, got " +
          std::to_string(fields.size()));
    }
    for (size_t c = 0; c < arity; ++c) {
      ValueType t =
          options.types.empty() ? ValueType::kString : options.types[c];
      auto value = ParseValue(t, fields[c]);
      if (!value.ok()) {
        return value.status().WithContext("line " + std::to_string(ln + 1));
      }
      row[c] = value->Encode(dict);
    }
    rel.AppendRow(row);
  }
  return rel;
}

Result<Relation> ReadCsvFile(const std::string& path, const CsvOptions& options,
                             Dictionary* dict) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  auto rel = ReadCsv(text, options, dict);
  if (!rel.ok()) return rel.status().WithContext(path);
  return rel;
}

std::string WriteCsv(const Relation& relation, const Dictionary& dict,
                     char delimiter) {
  std::ostringstream out;
  const auto& schema = relation.schema();
  for (size_t c = 0; c < schema.size(); ++c) {
    if (c) out << delimiter;
    out << schema.attribute(c);
  }
  out << "\n";
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    for (size_t c = 0; c < relation.num_columns(); ++c) {
      if (c) out << delimiter;
      const std::string& s = dict.Decode(relation.at(r, c));
      bool needs_quote = s.find(delimiter) != std::string::npos ||
                         s.find('"') != std::string::npos;
      if (needs_quote) {
        out << '"';
        for (char ch : s) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << s;
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace xjoin
