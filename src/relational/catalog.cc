#include "relational/catalog.h"

namespace xjoin {

Status Catalog::AddRelation(const std::string& name, Relation relation) {
  if (relations_.count(name)) {
    return Status::AlreadyExists("relation " + name + " already registered");
  }
  relations_.emplace(name, std::move(relation));
  return Status::OK();
}

void Catalog::PutRelation(const std::string& name, Relation relation) {
  relations_.insert_or_assign(name, std::move(relation));
}

Result<const Relation*> Catalog::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("no relation " + name);
  return &it->second;
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) {
    (void)rel;
    names.push_back(name);
  }
  return names;
}

}  // namespace xjoin
