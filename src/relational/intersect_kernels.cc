#include "relational/intersect_kernels.h"

#include "relational/intersect_kernels_impl.h"

namespace xjoin {

namespace {

// Portable fallback: plain scalar loops, no target-specific flags.
// This is also the reference the SIMD variants are tested against.
struct ScalarOps {
  static constexpr size_t kLinearCutoff = 8;
  static constexpr size_t kScanBudget = 16;

  static size_t LinearLowerBound(const int64_t* keys, size_t lo, size_t hi,
                                 int64_t key) {
    while (lo < hi && keys[lo] < key) ++lo;
    return lo;
  }
};

using ScalarKernels = intersect_internal::Kernels<ScalarOps>;

constexpr IntersectKernel kScalarKernel = {
    SimdLevel::kScalar,
    &ScalarKernels::LowerBound,
    &ScalarKernels::Seek,
    &ScalarKernels::Drain,
};

}  // namespace

const IntersectKernel* IntersectKernelFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &kScalarKernel;
    case SimdLevel::kSse42:
      return intersect_internal::Sse42IntersectKernel();
    case SimdLevel::kAvx2:
      return intersect_internal::Avx2IntersectKernel();
  }
  return &kScalarKernel;
}

const IntersectKernel& ActiveIntersectKernel() {
  // Walk down the ladder from the policy level to the first table this
  // binary actually carries (the -m flags may be unavailable).
  for (int level = static_cast<int>(ActiveSimdLevel()); level > 0; --level) {
    const IntersectKernel* kernel =
        IntersectKernelFor(static_cast<SimdLevel>(level));
    if (kernel != nullptr) return *kernel;
  }
  return kScalarKernel;
}

}  // namespace xjoin
