#include "relational/schema.h"

#include <unordered_set>

namespace xjoin {

Result<Schema> Schema::Make(std::vector<std::string> attributes) {
  std::unordered_set<std::string> seen;
  for (const auto& a : attributes) {
    if (a.empty()) return Status::InvalidArgument("empty attribute name");
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a);
    }
  }
  Schema s;
  s.attributes_ = std::move(attributes);
  return s;
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString(const std::string& relation_name) const {
  std::string out = relation_name;
  out += "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i) out += ", ";
    out += attributes_[i];
  }
  out += ")";
  return out;
}

}  // namespace xjoin
