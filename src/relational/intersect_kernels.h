#ifndef XJOIN_RELATIONAL_INTERSECT_KERNELS_H_
#define XJOIN_RELATIONAL_INTERSECT_KERNELS_H_

// SIMD galloping-intersection kernels over raw CSR level arrays.
//
// The generic-join engine's hot loop is multi-way sorted-set
// intersection: leapfrog seeks over the `keys[d]` arrays of CSR tries.
// This module packages that loop as a table of function pointers — one
// table per SimdLevel (scalar / SSE4.2 / AVX2), selected once per
// engine run by ActiveIntersectKernel() — so the binary carries every
// variant and picks at runtime, staying runnable on baseline x86-64.
//
// Counter-exactness contract: every variant performs the *same logical
// leapfrog jump sequence* as the scalar engine. A "seek" lands at
// exactly the same position and is counted exactly once no matter
// which table executes it; SIMD only accelerates the interior search
// of each seek (vectorized lower-bound probing and linear compare
// scans). Consequently gj.* counters and result bytes are identical
// across dispatch levels — the invariant tests/intersect_kernel_test.cc
// and tests/batch_test.cc enforce.
//
// Two seek strategies, selected per level from EstimateKeys ratios:
//
//   kGallop — doubling gallop to bracket the target, then a vectorized
//     lower-bound probe inside the bracket. Wins when cardinalities
//     are skewed (the small side jumps far into the big side).
//   kMerge  — block-wise linear compare scan (4 keys per AVX2 step)
//     from the current position, falling back to gallop once a scan
//     budget is exhausted. Wins for near-equal cardinalities, where
//     seeks land a few keys ahead and galloping is overhead.
//
// Both land on the identical position (the std::lower_bound of the
// target), so the choice is a pure speed knob.

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

namespace xjoin {

/// A borrowed cursor over one sorted, duplicate-free CSR key range
/// [pos, hi). The kernels advance `pos` only.
struct KeyCursor {
  const int64_t* keys = nullptr;
  size_t pos = 0;
  size_t hi = 0;
};

enum class IntersectStrategy : int {
  kGallop = 0,
  kMerge = 1,
};

inline const char* IntersectStrategyName(IntersectStrategy strategy) {
  return strategy == IntersectStrategy::kMerge ? "merge" : "gallop";
}

/// Cardinality-skew threshold: at or below this max/min estimate ratio
/// a 2-way intersection runs kMerge, above it (or with 3+ cursors)
/// kGallop. Shared by the planner (EXPLAIN rendering) and the engine
/// (per-prefix re-selection) so the recorded choice matches execution.
inline constexpr int64_t kMergeSkewRatio = 8;

inline IntersectStrategy ChooseIntersectStrategy(size_t num_cursors,
                                                 int64_t min_estimate,
                                                 int64_t max_estimate) {
  if (num_cursors == 2 && min_estimate > 0 &&
      max_estimate <= min_estimate * kMergeSkewRatio) {
    return IntersectStrategy::kMerge;
  }
  return IntersectStrategy::kGallop;
}

/// One dispatchable kernel variant. All function pointers are non-null.
struct IntersectKernel {
  SimdLevel level;

  /// First index in [lo, hi) with keys[index] >= key, or hi.
  /// Binary-narrows to a small window, then probes it with the
  /// variant's vector compare (tails run scalar).
  size_t (*lower_bound)(const int64_t* keys, size_t lo, size_t hi,
                        int64_t key);

  /// One leapfrog seek from `pos`: returns the first index in
  /// [pos, hi) with keys[index] >= key, or hi. kGallop brackets by
  /// doubling then lower-bounds; kMerge linear-scans up to a budget
  /// first. Identical landing either way.
  size_t (*seek)(const int64_t* keys, size_t pos, size_t hi, int64_t key,
                 IntersectStrategy strategy);

  /// Resumable multi-way intersection drain, the batched engine's
  /// deepest-level loop. Mirrors the scalar engine op for op:
  /// `first` starts with an align (initial intersection) instead of an
  /// advance; every aligned key < `hi` (when `has_hi`) is appended to
  /// `out`; each underlying seek increments *seeks by one. Returns the
  /// number of keys produced and sets *done=false iff it stopped only
  /// because `cap` was reached (resume with first=false). Cursors hold
  /// their final positions either way.
  size_t (*drain)(KeyCursor* cursors, size_t num_cursors,
                  IntersectStrategy strategy, bool first, bool has_hi,
                  int64_t hi, int64_t* out, size_t cap, int64_t* seeks,
                  bool* done);
};

namespace intersect_internal {
// Per-TU registries: return null when the TU was compiled without the
// matching -m flag (non-x86 builds, or a toolchain lacking the flag).
const IntersectKernel* Sse42IntersectKernel();
const IntersectKernel* Avx2IntersectKernel();
}  // namespace intersect_internal

/// The table for an exact level, or null if that level was not
/// compiled into this binary. The scalar table always exists.
const IntersectKernel* IntersectKernelFor(SimdLevel level);

/// The best table at or below ActiveSimdLevel() that is actually
/// compiled in. Re-resolved per call so dispatch overrides (tests,
/// XJOIN_SIMD) take effect on the next engine run.
const IntersectKernel& ActiveIntersectKernel();

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_INTERSECT_KERNELS_H_
