// Typed values for loading external data. Inside the engines every join
// column is an int64 dictionary code (see common/dictionary.h); Value is
// the boundary type used by CSV ingestion and result rendering.
#ifndef XJOIN_RELATIONAL_VALUE_H_
#define XJOIN_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/dictionary.h"
#include "common/status.h"

namespace xjoin {

/// Logical column types understood by the CSV loader.
enum class ValueType : uint8_t { kInt64, kDouble, kString };

const char* ValueTypeToString(ValueType t);

/// A dynamically typed scalar.
class Value {
 public:
  Value() : payload_(int64_t{0}) {}
  explicit Value(int64_t v) : payload_(v) {}
  explicit Value(double v) : payload_(v) {}
  explicit Value(std::string v) : payload_(std::move(v)) {}

  ValueType type() const {
    switch (payload_.index()) {
      case 0:
        return ValueType::kInt64;
      case 1:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_int64() const { return std::holds_alternative<int64_t>(payload_); }
  bool is_double() const { return std::holds_alternative<double>(payload_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(payload_);
  }

  int64_t AsInt64() const { return std::get<int64_t>(payload_); }
  double AsDouble() const { return std::get<double>(payload_); }
  const std::string& AsString() const {
    return std::get<std::string>(payload_);
  }

  /// Canonical textual form: what Encode() interns into the dictionary.
  std::string ToString() const;

  /// Interns this value's canonical textual form, returning its code.
  int64_t Encode(Dictionary* dict) const { return dict->Intern(ToString()); }

  bool operator==(const Value& other) const {
    return payload_ == other.payload_;
  }

 private:
  std::variant<int64_t, double, std::string> payload_;
};

/// Parses `text` as the given type ("12" -> Value(int64 12), etc.).
Result<Value> ParseValue(ValueType type, std::string_view text);

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_VALUE_H_
