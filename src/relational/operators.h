// Classical relational operators used by the baseline plans (paper
// Figure 3: Q1 is evaluated with binary joins) and by result
// post-processing. All operators are set-semantics over dictionary codes.
#ifndef XJOIN_RELATIONAL_OPERATORS_H_
#define XJOIN_RELATIONAL_OPERATORS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "relational/relation.h"

namespace xjoin {

/// Projects onto `attributes` (deduplicated output).
Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attributes);

/// Keeps rows where `predicate(row)` is true; row is in schema order.
Relation Select(const Relation& input,
                const std::function<bool(const Tuple&)>& predicate);

/// Natural hash join: matches on all shared attribute names; the output
/// schema is left's attributes followed by right's non-shared attributes.
/// If the schemas share no attribute this is a cartesian product.
/// `metrics` (nullable) gets "hash_join.output" and
/// "hash_join.probe_matches" counters.
Result<Relation> HashJoin(const Relation& left, const Relation& right,
                          Metrics* metrics = nullptr);

/// Left-deep natural-join plan over `inputs` in the given order, tracking
/// the peak intermediate cardinality in metrics counter
/// "plan.max_intermediate" and the sum in "plan.total_intermediate".
Result<Relation> JoinAll(const std::vector<const Relation*>& inputs,
                         Metrics* metrics = nullptr);

/// Semi-join: rows of `left` with at least one match in `right` on the
/// shared attributes.
Result<Relation> SemiJoin(const Relation& left, const Relation& right);

/// True if both relations contain exactly the same set of rows (order-
/// insensitive); schemas must list the same attributes in the same order.
bool RelationsEqualAsSets(const Relation& a, const Relation& b);

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_OPERATORS_H_
