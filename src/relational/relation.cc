#include "relational/relation.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/logging.h"

namespace xjoin {

Relation::Relation(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.size());
}

void Relation::Reserve(size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
}

void Relation::AppendRow(const Tuple& row) {
  XJ_DCHECK(row.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) columns_[c].push_back(row[c]);
}

void Relation::AppendColumnBlock(const int64_t* const* columns,
                                 size_t num_rows) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::vector<int64_t>& col = columns_[c];
    // Grow geometrically: vector::insert is only required to fit, so an
    // unlucky sequence of block flushes could otherwise reallocate on
    // every flush.
    size_t need = col.size() + num_rows;
    if (need > col.capacity()) {
      col.reserve(std::max(need, col.capacity() * 2));
    }
    col.insert(col.end(), columns[c], columns[c] + num_rows);
  }
}

void Relation::AppendRows(const Relation& other) {
  XJ_DCHECK(schema_ == other.schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].insert(columns_[c].end(), other.columns_[c].begin(),
                       other.columns_[c].end());
  }
}

Tuple Relation::GetRow(size_t row) const {
  Tuple t(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) t[c] = columns_[c][row];
  return t;
}

Result<const std::vector<int64_t>*> Relation::ColumnByName(
    const std::string& name) const {
  int idx = schema_.IndexOf(name);
  if (idx < 0) return Status::NotFound("no attribute " + name);
  return &columns_[static_cast<size_t>(idx)];
}

void Relation::SortAndDedup() {
  const size_t n = num_rows();
  const size_t k = num_columns();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t c = 0; c < k; ++c) {
      if (columns_[c][a] != columns_[c][b])
        return columns_[c][a] < columns_[c][b];
    }
    return false;
  });
  std::vector<std::vector<int64_t>> out(k);
  for (auto& col : out) col.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t r = order[i];
    if (i > 0) {
      size_t prev = order[i - 1];
      bool same = true;
      for (size_t c = 0; c < k; ++c) {
        if (columns_[c][r] != columns_[c][prev]) {
          same = false;
          break;
        }
      }
      if (same) continue;
    }
    for (size_t c = 0; c < k; ++c) out[c].push_back(columns_[c][r]);
  }
  columns_ = std::move(out);
  if (k == 0) columns_.resize(0);
}

std::vector<Tuple> Relation::ToTuples() const {
  std::vector<Tuple> out;
  out.reserve(num_rows());
  for (size_t r = 0; r < num_rows(); ++r) out.push_back(GetRow(r));
  return out;
}

Result<Relation> Relation::FromTuples(Schema schema,
                                      std::vector<Tuple> tuples) {
  Relation rel(std::move(schema));
  for (const auto& t : tuples) {
    if (t.size() != rel.num_columns()) {
      return Status::InvalidArgument("tuple arity mismatch");
    }
    rel.AppendRow(t);
  }
  return rel;
}

bool Relation::ContainsRow(const Tuple& row) const {
  if (row.size() != num_columns()) return false;
  for (size_t r = 0; r < num_rows(); ++r) {
    bool same = true;
    for (size_t c = 0; c < num_columns(); ++c) {
      if (columns_[c][r] != row[c]) {
        same = false;
        break;
      }
    }
    if (same) return true;
  }
  return false;
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream out;
  out << schema_.ToString("rel") << " [" << num_rows() << " rows]\n";
  for (size_t r = 0; r < std::min(max_rows, num_rows()); ++r) {
    out << "  (";
    for (size_t c = 0; c < num_columns(); ++c) {
      if (c) out << ", ";
      out << columns_[c][r];
    }
    out << ")\n";
  }
  if (num_rows() > max_rows) out << "  ...\n";
  return out.str();
}

}  // namespace xjoin
