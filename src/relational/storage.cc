#include "relational/storage.h"

#include <fstream>

#include "common/logging.h"

namespace xjoin {

namespace {

constexpr uint8_t kFormatVersion = 1;
constexpr char kDictMagic[4] = {'X', 'J', 'D', 'C'};
constexpr char kRelMagic[4] = {'X', 'J', 'R', 'L'};
constexpr char kDocMagic[4] = {'X', 'J', 'X', 'M'};

uint64_t Fnv1a(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Frames a payload: magic + version + payload length + payload + checksum.
std::string Frame(const char magic[4], std::string payload) {
  BinaryWriter out;
  for (int i = 0; i < 4; ++i) out.PutU8(static_cast<uint8_t>(magic[i]));
  out.PutU8(kFormatVersion);
  out.PutVarint(payload.size());
  std::string framed = out.TakeBuffer();
  framed += payload;
  BinaryWriter tail;
  tail.PutVarint(Fnv1a(payload));
  framed += tail.buffer();
  return framed;
}

Result<std::string_view> Unframe(const char magic[4], std::string_view data) {
  BinaryReader reader(data);
  for (int i = 0; i < 4; ++i) {
    XJ_ASSIGN_OR_RETURN(uint8_t c, reader.GetU8());
    if (c != static_cast<uint8_t>(magic[i])) {
      return Status::ParseError("bad magic (not an xjoin file of this kind)");
    }
  }
  XJ_ASSIGN_OR_RETURN(uint8_t version, reader.GetU8());
  if (version != kFormatVersion) {
    return Status::ParseError("unsupported format version " +
                              std::to_string(version));
  }
  XJ_ASSIGN_OR_RETURN(uint64_t length, reader.GetVarint());
  size_t start = reader.position();
  if (start + length > data.size()) {
    return Status::ParseError("truncated payload");
  }
  std::string_view payload = data.substr(start, length);
  BinaryReader tail(data.substr(start + length));
  XJ_ASSIGN_OR_RETURN(uint64_t checksum, tail.GetVarint());
  if (checksum != Fnv1a(payload)) {
    return Status::ParseError("checksum mismatch (corrupted file)");
  }
  return payload;
}

}  // namespace

void BinaryWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  buffer_.push_back(static_cast<char>(v));
}

void BinaryWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buffer_.append(s);
}

Result<uint8_t> BinaryReader::GetU8() {
  if (pos_ >= data_.size()) return Status::ParseError("truncated input");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint64_t> BinaryReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    XJ_ASSIGN_OR_RETURN(uint8_t byte, GetU8());
    if (shift >= 64) return Status::ParseError("varint overflow");
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return v;
    shift += 7;
  }
}

Result<int64_t> BinaryReader::GetSignedVarint() {
  XJ_ASSIGN_OR_RETURN(uint64_t raw, GetVarint());
  return static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

Result<std::string> BinaryReader::GetString() {
  XJ_ASSIGN_OR_RETURN(uint64_t length, GetVarint());
  if (pos_ + length > data_.size()) {
    return Status::ParseError("truncated string");
  }
  std::string out(data_.substr(pos_, length));
  pos_ += length;
  return out;
}

std::string SerializeDictionary(const Dictionary& dict) {
  BinaryWriter out;
  out.PutVarint(static_cast<uint64_t>(dict.size()));
  for (int64_t code = 0; code < dict.size(); ++code) {
    out.PutString(dict.Decode(code));
  }
  return Frame(kDictMagic, out.TakeBuffer());
}

Result<Dictionary> DeserializeDictionary(std::string_view data) {
  XJ_ASSIGN_OR_RETURN(std::string_view payload, Unframe(kDictMagic, data));
  BinaryReader reader(payload);
  XJ_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  Dictionary dict;
  for (uint64_t i = 0; i < count; ++i) {
    XJ_ASSIGN_OR_RETURN(std::string s, reader.GetString());
    int64_t code = dict.Intern(s);
    if (code != static_cast<int64_t>(i)) {
      return Status::ParseError("duplicate dictionary entry: " + s);
    }
  }
  return dict;
}

std::string SerializeRelation(const Relation& relation) {
  BinaryWriter out;
  out.PutVarint(relation.schema().size());
  for (const auto& attr : relation.schema().attributes()) out.PutString(attr);
  out.PutVarint(relation.num_rows());
  for (size_t c = 0; c < relation.num_columns(); ++c) {
    for (int64_t v : relation.column(c)) out.PutSignedVarint(v);
  }
  return Frame(kRelMagic, out.TakeBuffer());
}

Result<Relation> DeserializeRelation(std::string_view data) {
  XJ_ASSIGN_OR_RETURN(std::string_view payload, Unframe(kRelMagic, data));
  BinaryReader reader(payload);
  XJ_ASSIGN_OR_RETURN(uint64_t arity, reader.GetVarint());
  std::vector<std::string> attrs;
  for (uint64_t c = 0; c < arity; ++c) {
    XJ_ASSIGN_OR_RETURN(std::string attr, reader.GetString());
    attrs.push_back(std::move(attr));
  }
  XJ_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  XJ_ASSIGN_OR_RETURN(uint64_t rows, reader.GetVarint());
  std::vector<std::vector<int64_t>> columns(arity);
  for (uint64_t c = 0; c < arity; ++c) {
    columns[c].reserve(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      XJ_ASSIGN_OR_RETURN(int64_t v, reader.GetSignedVarint());
      columns[c].push_back(v);
    }
  }
  Relation rel(std::move(schema));
  Tuple row(arity);
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < arity; ++c) row[c] = columns[c][r];
    rel.AppendRow(row);
  }
  return rel;
}

std::string SerializeDocument(const XmlDocument& doc) {
  BinaryWriter out;
  const Dictionary& tags = doc.tag_dict();
  out.PutVarint(static_cast<uint64_t>(tags.size()));
  for (int64_t code = 0; code < tags.size(); ++code) {
    out.PutString(tags.Decode(code));
  }
  out.PutVarint(doc.num_nodes());
  for (size_t i = 0; i < doc.num_nodes(); ++i) {
    const XmlNode& node = doc.node(static_cast<NodeId>(i));
    out.PutVarint(static_cast<uint64_t>(node.tag));
    // Parents precede children in preorder; store parent + text, the
    // rest (levels, regions, sibling links) is reconstructed.
    out.PutSignedVarint(node.parent);
    out.PutString(node.text);
  }
  return Frame(kDocMagic, out.TakeBuffer());
}

Result<XmlDocument> DeserializeDocument(std::string_view data) {
  XJ_ASSIGN_OR_RETURN(std::string_view payload, Unframe(kDocMagic, data));
  BinaryReader reader(payload);
  XJ_ASSIGN_OR_RETURN(uint64_t num_tags, reader.GetVarint());
  std::vector<std::string> tag_names;
  for (uint64_t i = 0; i < num_tags; ++i) {
    XJ_ASSIGN_OR_RETURN(std::string tag, reader.GetString());
    tag_names.push_back(std::move(tag));
  }
  XJ_ASSIGN_OR_RETURN(uint64_t num_nodes, reader.GetVarint());

  // Rebuild through the builder to recompute the derived structure.
  // Nodes arrive in preorder with parent pointers, so we emit
  // StartElement/EndElement events with an explicit stack.
  XmlDocumentBuilder builder;
  std::vector<NodeId> open;  // node ids currently open
  for (uint64_t i = 0; i < num_nodes; ++i) {
    XJ_ASSIGN_OR_RETURN(uint64_t tag, reader.GetVarint());
    if (tag >= num_tags) return Status::ParseError("bad tag code");
    XJ_ASSIGN_OR_RETURN(int64_t parent, reader.GetSignedVarint());
    XJ_ASSIGN_OR_RETURN(std::string text, reader.GetString());
    if (parent >= static_cast<int64_t>(i) ||
        (i == 0) != (parent == kNullNode)) {
      return Status::ParseError("bad parent pointer");
    }
    // Close elements until the parent is on top of the stack.
    while (!open.empty() && open.back() != parent) {
      XJ_RETURN_NOT_OK(builder.EndElement());
      open.pop_back();
    }
    if (i > 0 && open.empty()) return Status::ParseError("orphan node");
    builder.StartElement(tag_names[tag]);
    builder.AddText(text);
    open.push_back(static_cast<NodeId>(i));
  }
  while (!open.empty()) {
    XJ_RETURN_NOT_OK(builder.EndElement());
    open.pop_back();
  }
  return builder.Finish();
}

Status WriteFileBytes(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

}  // namespace xjoin
