// A named collection of relations sharing one dictionary — the
// "relational database" side of the multi-model framework.
#ifndef XJOIN_RELATIONAL_CATALOG_H_
#define XJOIN_RELATIONAL_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "common/dictionary.h"
#include "common/status.h"
#include "relational/relation.h"

namespace xjoin {

/// Owns relations by name plus the dictionary their codes refer to.
class Catalog {
 public:
  Catalog() = default;

  /// The shared dictionary for all relations in this catalog.
  Dictionary* dictionary() { return &dict_; }
  const Dictionary& dictionary() const { return dict_; }

  /// Registers a relation; fails if the name is taken.
  Status AddRelation(const std::string& name, Relation relation);

  /// Replaces or inserts a relation.
  void PutRelation(const std::string& name, Relation relation);

  /// Looks a relation up; fails with NotFound.
  Result<const Relation*> GetRelation(const std::string& name) const;

  bool HasRelation(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  /// All registered names in lexicographic order.
  std::vector<std::string> RelationNames() const;

 private:
  Dictionary dict_;
  std::map<std::string, Relation> relations_;
};

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_CATALOG_H_
