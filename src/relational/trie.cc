#include "relational/trie.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/logging.h"
#include "common/parallel.h"

namespace xjoin {

namespace {

// Below this row count the comparator std::sort beats the radix passes'
// setup cost.
constexpr size_t kRadixMinRows = 256;

// Order-preserving map from int64 to uint64 (flips the sign bit so
// unsigned digit comparison matches signed order).
inline uint64_t OrderedBits(int64_t v) {
  return static_cast<uint64_t>(v) ^ (uint64_t{1} << 63);
}

// One stable LSD counting pass over 8-bit digits at `shift`, permuting
// `src` into `dst` by biased[row]'s digit. Returns false (dst untouched)
// when every key shares the digit, so callers skip the permute.
bool RadixPass(const std::vector<uint64_t>& biased, int shift,
               const std::vector<size_t>& src, std::vector<size_t>* dst) {
  size_t count[256] = {0};
  for (size_t r : src) ++count[(biased[r] >> shift) & 0xFF];
  size_t offsets[256];
  size_t running = 0;
  for (int digit = 0; digit < 256; ++digit) {
    if (count[digit] == src.size()) return false;
    offsets[digit] = running;
    running += count[digit];
  }
  for (size_t r : src) {
    (*dst)[offsets[(biased[r] >> shift) & 0xFF]++] = r;
  }
  return true;
}

// Stable-sorts `rows` by `col` (ascending) with an LSD radix over the
// bytes that actually vary; constant bytes cost one pass over the column
// (the variation mask), nothing more.
void StableRadixSortByColumn(const std::vector<int64_t>& col,
                             std::vector<size_t>* rows,
                             std::vector<size_t>* scratch,
                             std::vector<uint64_t>* biased) {
  const size_t n = col.size();
  uint64_t first = OrderedBits(col[0]);
  uint64_t varying = 0;
  for (size_t i = 0; i < n; ++i) {
    (*biased)[i] = OrderedBits(col[i]);
    varying |= (*biased)[i] ^ first;
  }
  for (int byte = 0; byte < 8; ++byte) {
    if (((varying >> (8 * byte)) & 0xFF) == 0) continue;
    if (RadixPass(*biased, 8 * byte, *rows, scratch)) rows->swap(*scratch);
  }
}

size_t LowerBoundRange(const std::vector<int64_t>& col, size_t lo, size_t hi,
                       int64_t key) {
  return static_cast<size_t>(
      std::lower_bound(col.begin() + static_cast<ptrdiff_t>(lo),
                       col.begin() + static_cast<ptrdiff_t>(hi), key) -
      col.begin());
}

size_t UpperBoundRange(const std::vector<int64_t>& col, size_t lo, size_t hi,
                       int64_t key) {
  return static_cast<size_t>(
      std::upper_bound(col.begin() + static_cast<ptrdiff_t>(lo),
                       col.begin() + static_cast<ptrdiff_t>(hi), key) -
      col.begin());
}

}  // namespace

// A minimal non-owning view so file-local helpers can walk the private
// Core without befriending every free function.
struct RelationTrieCoreView {
  const std::vector<std::vector<int64_t>>* keys;
  const std::vector<std::vector<size_t>>* child_begin;
};

namespace {

// Assembles the CSR level arrays from lexicographically sorted columnar
// rows (duplicates allowed — they fold away): diff[i] is the first level
// where sorted row i differs from row i-1, then level d gets one node
// per row whose first difference is at or above d. Shared by Build
// (after the radix sort) and by delta compaction (whose merge output is
// already sorted, so compaction never re-sorts).
void AssembleCsrLevels(const std::vector<std::vector<int64_t>>& sorted,
                       size_t n, size_t k, int num_threads,
                       std::vector<std::vector<int64_t>>* keys,
                       std::vector<std::vector<size_t>>* child_begin) {
  std::vector<uint32_t> diff(n);
  ParallelFor(num_threads, n, /*grain=*/4096, [&](size_t i) {
    if (i == 0) {
      diff[0] = 0;
      return;
    }
    uint32_t level = 0;
    while (level < k && sorted[level][i] == sorted[level][i - 1]) ++level;
    diff[i] = level;
  });

  ParallelFor(num_threads, k, /*grain=*/1, [&](size_t d) {
    std::vector<int64_t>& level_keys = (*keys)[d];
    const std::vector<int64_t>& col = sorted[d];
    if (d + 1 < k) {
      std::vector<size_t>& cb = (*child_begin)[d];
      cb.clear();
      size_t children = 0;
      for (size_t i = 0; i < n; ++i) {
        if (diff[i] <= d) {
          cb.push_back(children);
          level_keys.push_back(col[i]);
        }
        if (diff[i] <= d + 1) ++children;
      }
      cb.push_back(children);
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (diff[i] <= d) level_keys.push_back(col[i]);
      }
    }
  });
}

}  // namespace

Result<RelationTrie> RelationTrie::Build(const Relation& relation,
                                         const std::vector<std::string>& order,
                                         const TrieBuildOptions& options) {
  if (order.size() != relation.schema().size()) {
    return Status::InvalidArgument("trie order arity mismatch");
  }
  std::vector<size_t> perm;
  perm.reserve(order.size());
  for (const auto& name : order) {
    int idx = relation.schema().IndexOf(name);
    if (idx < 0) {
      return Status::InvalidArgument("trie order names unknown attribute: " +
                                     name);
    }
    perm.push_back(static_cast<size_t>(idx));
  }
  // Reject permutations with repeats.
  {
    std::vector<size_t> copy = perm;
    std::sort(copy.begin(), copy.end());
    for (size_t i = 0; i + 1 < copy.size(); ++i) {
      if (copy[i] == copy[i + 1]) {
        return Status::InvalidArgument("trie order repeats an attribute");
      }
    }
  }

  Timer timer;
  const size_t n = relation.num_rows();
  const size_t k = order.size();
  const int num_threads = std::max(1, options.num_threads);

  RelationTrie trie;
  trie.order_ = order;
  auto core = std::make_shared<Core>();
  core->keys.resize(k);
  core->child_begin.resize(k > 0 ? k - 1 : 0);
  for (auto& cb : core->child_begin) cb.push_back(0);
  trie.core_ = core;
  if (n == 0 || k == 0) return trie;

  // 1. Reference the columns in trie order — the relation is columnar,
  // so no copies are needed until the sorted materialization below.
  std::vector<const std::vector<int64_t>*> cols(k);
  for (size_t c = 0; c < k; ++c) cols[c] = &relation.column(perm[c]);

  // 2. Sort the row permutation lexicographically. Fast path: LSD radix
  // over the columns, least-significant first — each column costs only
  // one counting pass per byte that actually varies (dictionary codes
  // are small, so typically 1-2 passes). Tiny inputs use std::sort.
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), size_t{0});
  if (n >= kRadixMinRows) {
    std::vector<size_t> scratch(n);
    std::vector<uint64_t> biased(n);
    for (size_t c = k; c-- > 0;) {
      StableRadixSortByColumn(*cols[c], &rows, &scratch, &biased);
    }
    MetricsAdd(options.metrics, "trie.radix_sorts", 1);
  } else {
    std::sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
      for (size_t c = 0; c < k; ++c) {
        if ((*cols[c])[a] != (*cols[c])[b]) {
          return (*cols[c])[a] < (*cols[c])[b];
        }
      }
      return false;
    });
    MetricsAdd(options.metrics, "trie.std_sorts", 1);
  }

  // 3. Materialize the sorted columns (parallel per column).
  std::vector<std::vector<int64_t>> sorted(k);
  ParallelFor(num_threads, k, /*grain=*/1, [&](size_t c) {
    const std::vector<int64_t>& col = *cols[c];
    sorted[c].resize(n);
    for (size_t i = 0; i < n; ++i) sorted[c][i] = col[rows[i]];
  });

  // 4+5. Dedup + per-level CSR assembly over the sorted columns.
  AssembleCsrLevels(sorted, n, k, num_threads, &core->keys,
                    &core->child_begin);

  MetricsAdd(options.metrics, "trie.builds", 1);
  MetricsAdd(options.metrics, "trie.build_micros", timer.ElapsedMicros());
  return trie;
}

namespace {

// Depth-first enumeration of a Core's (base) tuples in lexicographic
// order; O(total trie nodes), recursion depth = arity.
template <typename Fn>
void WalkBaseSubtree(const RelationTrieCoreView& view, size_t d, size_t lo,
                     size_t hi, Tuple* tuple, const Fn& fn) {
  const size_t k = view.keys->size();
  for (size_t i = lo; i < hi; ++i) {
    (*tuple)[d] = (*view.keys)[d][i];
    if (d + 1 == k) {
      fn(*tuple);
    } else {
      WalkBaseSubtree(view, d + 1, (*view.child_begin)[d][i],
                      (*view.child_begin)[d][i + 1], tuple, fn);
    }
  }
}

template <typename Fn>
void WalkBase(const RelationTrieCoreView& view, Fn&& fn) {
  const size_t k = view.keys->size();
  if (k == 0 || (*view.keys)[0].empty()) return;
  Tuple tuple(k);
  WalkBaseSubtree(view, 0, 0, (*view.keys)[0].size(), &tuple, fn);
}

}  // namespace

bool RelationTrie::BaseContains(const Tuple& tuple) const {
  const size_t k = core_->keys.size();
  size_t lo = 0;
  size_t hi = core_->keys[0].size();
  for (size_t d = 0; d < k; ++d) {
    const std::vector<int64_t>& col = core_->keys[d];
    size_t at = LowerBoundRange(col, lo, hi, tuple[d]);
    if (at >= hi || col[at] != tuple[d]) return false;
    if (d + 1 < k) {
      lo = core_->child_begin[d][at];
      hi = core_->child_begin[d][at + 1];
    }
  }
  return true;
}

Result<RelationTrie> RelationTrie::ApplyDelta(
    const std::vector<Tuple>& inserts, const std::vector<Tuple>& deletes,
    const TrieDeltaOptions& options) const {
  const size_t k = core_ == nullptr ? 0 : core_->keys.size();
  if (k == 0) {
    if (inserts.empty() && deletes.empty()) return *this;
    return Status::InvalidArgument("delta on a zero-arity trie");
  }
  for (const Tuple& t : inserts) {
    if (t.size() != k) return Status::InvalidArgument("delta tuple arity");
  }
  for (const Tuple& t : deletes) {
    if (t.size() != k) return Status::InvalidArgument("delta tuple arity");
  }

  // Pending state per tuple: +1 pending insert, -1 tombstone. Seeded
  // from the existing side-file, then the batch is classified on top —
  // deletes before inserts, so a tuple in both lists ends up present.
  std::map<Tuple, int> pending;
  if (delta_ != nullptr) {
    Tuple t(k);
    for (size_t r = 0; r < delta_->insert_rows; ++r) {
      for (size_t d = 0; d < k; ++d) t[d] = delta_->inserts[d][r];
      pending[t] = +1;
    }
    for (size_t r = 0; r < delta_->tombstone_rows; ++r) {
      for (size_t d = 0; d < k; ++d) t[d] = delta_->tombstones[d][r];
      pending[t] = -1;
    }
  }
  for (const Tuple& t : deletes) {
    auto it = pending.find(t);
    if (it != pending.end()) {
      // Deleting a pending insert cancels it; deleting an existing
      // tombstone is a no-op.
      if (it->second > 0) pending.erase(it);
    } else if (BaseContains(t)) {
      pending[t] = -1;
    }
  }
  for (const Tuple& t : inserts) {
    auto it = pending.find(t);
    if (it != pending.end()) {
      // Inserting over a tombstone resurrects the base tuple;
      // re-inserting a pending insert is a no-op.
      if (it->second < 0) pending.erase(it);
    } else if (!BaseContains(t)) {
      pending[t] = +1;
    }
  }

  MetricsAdd(options.metrics, "trie.delta_applies", 1);

  RelationTrie out;
  out.order_ = order_;
  out.core_ = core_;
  if (pending.empty()) return out;

  size_t insert_rows = 0;
  size_t tombstone_rows = 0;
  for (const auto& [tuple, sign] : pending) {
    (void)tuple;
    if (sign > 0) {
      ++insert_rows;
    } else {
      ++tombstone_rows;
    }
  }

  const size_t base = base_rows();
  const size_t threshold =
      std::max(options.compact_min_rows,
               static_cast<size_t>(options.compact_ratio *
                                   static_cast<double>(base)));
  if (!options.force_compact && insert_rows + tombstone_rows <= threshold) {
    // Stay in delta form: split the pending map (already sorted) into
    // the two columnar side-files.
    auto delta = std::make_shared<Delta>();
    delta->inserts.resize(k);
    delta->tombstones.resize(k);
    for (size_t d = 0; d < k; ++d) {
      delta->inserts[d].reserve(insert_rows);
      delta->tombstones[d].reserve(tombstone_rows);
    }
    for (const auto& [tuple, sign] : pending) {
      std::vector<std::vector<int64_t>>& side =
          sign > 0 ? delta->inserts : delta->tombstones;
      for (size_t d = 0; d < k; ++d) side[d].push_back(tuple[d]);
    }
    delta->insert_rows = insert_rows;
    delta->tombstone_rows = tombstone_rows;
    out.delta_ = delta;
    return out;
  }

  // Compaction: linear merge of the sorted base enumeration with the
  // pending map into fresh sorted columns, then the shared CSR assembly
  // pass — no radix re-sort, O(base + delta).
  Timer timer;
  std::vector<std::vector<int64_t>> merged(k);
  const size_t merged_rows = base - tombstone_rows + insert_rows;
  for (auto& col : merged) col.reserve(merged_rows);
  auto emit = [&](const Tuple& t) {
    for (size_t d = 0; d < k; ++d) merged[d].push_back(t[d]);
  };
  auto pit = pending.begin();
  RelationTrieCoreView view{&core_->keys, &core_->child_begin};
  WalkBase(view, [&](const Tuple& t) {
    while (pit != pending.end() && pit->first < t) {
      if (pit->second > 0) emit(pit->first);
      ++pit;
    }
    if (pit != pending.end() && pit->first == t) {
      // Tombstone drops the base tuple; a pending insert can never
      // collide with a base tuple (classification keeps them disjoint).
      if (pit->second > 0) emit(t);
      ++pit;
      return;
    }
    emit(t);
  });
  while (pit != pending.end()) {
    if (pit->second > 0) emit(pit->first);
    ++pit;
  }

  auto core = std::make_shared<Core>();
  core->keys.resize(k);
  core->child_begin.resize(k > 0 ? k - 1 : 0);
  for (auto& cb : core->child_begin) cb.push_back(0);
  if (!merged.empty() && !merged[0].empty()) {
    AssembleCsrLevels(merged, merged[0].size(), k, /*num_threads=*/1,
                      &core->keys, &core->child_begin);
  }
  out.core_ = core;
  MetricsAdd(options.metrics, "trie.compactions", 1);
  MetricsAdd(options.metrics, "trie.compact_micros", timer.ElapsedMicros());
  return out;
}

void RelationTrie::EnumerateTuples(std::vector<Tuple>* out) const {
  out->clear();
  const int k = arity();
  if (k == 0) return;
  std::unique_ptr<TrieIterator> it = NewIterator();
  Tuple tuple(static_cast<size_t>(k));
  it->Open();
  for (;;) {
    if (!it->AtEnd()) {
      tuple[static_cast<size_t>(it->depth())] = it->Key();
      if (it->depth() == k - 1) {
        out->push_back(tuple);
        it->Next();
      } else {
        it->Open();
      }
    } else {
      if (it->depth() == 0) break;
      it->Up();
      it->Next();
    }
  }
}

size_t RelationTrie::ByteSizeEstimate() const {
  size_t bytes = 0;
  if (core_ != nullptr) {
    for (const auto& level : core_->keys) {
      bytes += level.capacity() * sizeof(int64_t);
    }
    for (const auto& level : core_->child_begin) {
      bytes += level.capacity() * sizeof(size_t);
    }
  }
  if (delta_ != nullptr) {
    for (const auto& col : delta_->inserts) {
      bytes += col.capacity() * sizeof(int64_t);
    }
    for (const auto& col : delta_->tombstones) {
      bytes += col.capacity() * sizeof(int64_t);
    }
  }
  return bytes;
}

std::unique_ptr<TrieIterator> RelationTrie::NewIterator() const {
  if (delta_ != nullptr) {
    return std::make_unique<RelationDeltaTrieIterator>(this);
  }
  return std::make_unique<RelationTrieIterator>(this);
}

RelationTrieIterator::RelationTrieIterator(const RelationTrie* trie)
    : trie_(trie) {
  XJ_DCHECK(trie->delta_ == nullptr);
  frames_.reserve(static_cast<size_t>(trie->arity()));
}

void RelationTrieIterator::Open() {
  XJ_DCHECK(depth_ + 1 < trie_->arity());
  size_t lo, hi;
  if (depth_ < 0) {
    lo = 0;
    hi = trie_->core_->keys[0].size();
  } else {
    const Frame& f = frames_[static_cast<size_t>(depth_)];
    XJ_DCHECK(f.pos < f.hi);
    const std::vector<size_t>& cb =
        trie_->core_->child_begin[static_cast<size_t>(depth_)];
    lo = cb[f.pos];
    hi = cb[f.pos + 1];
  }
  ++depth_;
  frames_.push_back(Frame{lo, hi, lo});
}

void RelationTrieIterator::Up() {
  XJ_DCHECK(depth_ >= 0);
  frames_.pop_back();
  --depth_;
}

bool RelationTrieIterator::AtEnd() const {
  XJ_DCHECK(depth_ >= 0);
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  return f.pos >= f.hi;
}

int64_t RelationTrieIterator::Key() const {
  XJ_DCHECK(!AtEnd());
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  return trie_->core_->keys[static_cast<size_t>(depth_)][f.pos];
}

void RelationTrieIterator::Next() {
  XJ_DCHECK(!AtEnd());
  ++frames_[static_cast<size_t>(depth_)].pos;
}

void RelationTrieIterator::Seek(int64_t key) {
  XJ_DCHECK(!AtEnd());
  Frame& f = frames_[static_cast<size_t>(depth_)];
  const std::vector<int64_t>& col =
      trie_->core_->keys[static_cast<size_t>(depth_)];
  // Keys within the parent's child range are already distinct; gallop to
  // bracket the target (leapfrog seeks are usually near the cursor),
  // then binary search only inside the bracket.
  size_t base = f.pos;
  size_t step = 1;
  while (base + step < f.hi && col[base + step] < key) {
    base += step;
    step <<= 1;
  }
  size_t search_hi = std::min(base + step, f.hi);
  f.pos = LowerBoundRange(col, base, search_hi, key);
}

size_t RelationTrieIterator::NextBlock(int64_t hi_exclusive, KeyBlock* out) {
  XJ_DCHECK(depth_ >= 0);
  out->keys.clear();
  Frame& f = frames_[static_cast<size_t>(depth_)];
  const std::vector<int64_t>& col =
      trie_->core_->keys[static_cast<size_t>(depth_)];
  size_t end = std::min(f.pos + out->capacity, f.hi);
  // Keys are sorted: if the last candidate clears hi_exclusive the whole
  // run does; otherwise binary-search the cut inside the candidate run.
  if (end > f.pos && col[end - 1] >= hi_exclusive) {
    end = LowerBoundRange(col, f.pos, end, hi_exclusive);
  }
  out->keys.assign(col.begin() + static_cast<ptrdiff_t>(f.pos),
                   col.begin() + static_cast<ptrdiff_t>(end));
  f.pos = end;
  return out->keys.size();
}

bool RelationTrieIterator::RawLevelSpan(RawKeySpan* out) const {
  XJ_DCHECK(depth_ >= 0);
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  out->keys = trie_->core_->keys[static_cast<size_t>(depth_)].data();
  out->pos = f.pos;
  out->hi = f.hi;
  return true;
}

bool RelationTrieIterator::RawTrieSpans(RawTrieView* out) const {
  const RelationTrie::Core* core = trie_->core_.get();
  const size_t arity = core == nullptr ? 0 : core->keys.size();
  out->levels.clear();
  out->levels.reserve(arity);
  for (size_t d = 0; d < arity; ++d) {
    RawTrieView::Level level;
    level.keys = core->keys[d].data();
    level.num_keys = core->keys[d].size();
    // The deepest level has no children to index into.
    level.child_begin =
        d + 1 < arity ? core->child_begin[d].data() : nullptr;
    out->levels.push_back(level);
  }
  return true;
}

int64_t RelationTrieIterator::EstimateKeys() const {
  XJ_DCHECK(depth_ >= 0);
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  return static_cast<int64_t>(f.hi - f.pos);
}

std::unique_ptr<TrieIterator> RelationTrieIterator::Clone() const {
  return std::make_unique<RelationTrieIterator>(trie_);
}

RelationDeltaTrieIterator::RelationDeltaTrieIterator(const RelationTrie* trie)
    : trie_(trie), core_(trie->core_.get()), delta_(trie->delta_.get()) {
  XJ_DCHECK(delta_ != nullptr);
  frames_.reserve(static_cast<size_t>(trie->arity()));
}

size_t RelationDeltaTrieIterator::SubtreeLeafCount(size_t d,
                                                   size_t node) const {
  const size_t k = core_->keys.size();
  size_t lo = node;
  size_t hi = node + 1;
  for (size_t dd = d; dd + 1 < k; ++dd) {
    lo = core_->child_begin[dd][lo];
    hi = core_->child_begin[dd][hi];
  }
  return hi - lo;
}

void RelationDeltaTrieIterator::Reposition(Frame* f, size_t d) const {
  // Skip base keys whose entire subtree is tombstoned. A key is dead
  // only when the tombstones for this prefix+key account for every base
  // leaf under it; the common tombstone-free range short-circuits.
  if (f->thi > f->tlo) {
    const std::vector<int64_t>& tcol = delta_->tombstones[d];
    while (f->bpos < f->bhi) {
      int64_t bk = core_->keys[d][f->bpos];
      size_t t0 = LowerBoundRange(tcol, f->tlo, f->thi, bk);
      size_t t1 = UpperBoundRange(tcol, t0, f->thi, bk);
      if (t1 == t0) break;
      if (t1 - t0 < SubtreeLeafCount(d, f->bpos)) break;
      ++f->bpos;
    }
  }
  const bool has_base = f->bpos < f->bhi;
  const bool has_insert = f->ipos < f->ihi;
  if (!has_base && !has_insert) {
    f->exhausted = true;
    f->from_base = f->from_insert = false;
    return;
  }
  f->exhausted = false;
  const int64_t bk = has_base ? core_->keys[d][f->bpos] : 0;
  const int64_t ik = has_insert ? delta_->inserts[d][f->ipos] : 0;
  f->from_base = has_base && (!has_insert || bk <= ik);
  f->from_insert = has_insert && (!has_base || ik <= bk);
  f->key = f->from_base ? bk : ik;
}

void RelationDeltaTrieIterator::Open() {
  XJ_DCHECK(depth_ + 1 < arity());
  Frame nf;
  if (depth_ < 0) {
    nf.blo = 0;
    nf.bhi = core_->keys[0].size();
    nf.ilo = 0;
    nf.ihi = delta_->inserts.empty() ? 0 : delta_->inserts[0].size();
    nf.tlo = 0;
    nf.thi = delta_->tombstones.empty() ? 0 : delta_->tombstones[0].size();
  } else {
    const Frame& f = frames_[static_cast<size_t>(depth_)];
    XJ_DCHECK(!f.exhausted);
    const size_t d = static_cast<size_t>(depth_);
    if (f.from_base) {
      const std::vector<size_t>& cb = core_->child_begin[d];
      nf.blo = cb[f.bpos];
      nf.bhi = cb[f.bpos + 1];
    }
    if (f.from_insert) {
      nf.ilo = f.ipos;
      nf.ihi = UpperBoundRange(delta_->inserts[d], f.ipos, f.ihi, f.key);
    }
    // Tombstones live only under base subtrees (tombstones ⊆ base).
    if (f.from_base && f.thi > f.tlo) {
      nf.tlo = LowerBoundRange(delta_->tombstones[d], f.tlo, f.thi, f.key);
      nf.thi = UpperBoundRange(delta_->tombstones[d], nf.tlo, f.thi, f.key);
    }
  }
  nf.bpos = nf.blo;
  nf.ipos = nf.ilo;
  ++depth_;
  frames_.push_back(nf);
  Reposition(&frames_.back(), static_cast<size_t>(depth_));
}

void RelationDeltaTrieIterator::Up() {
  XJ_DCHECK(depth_ >= 0);
  frames_.pop_back();
  --depth_;
}

bool RelationDeltaTrieIterator::AtEnd() const {
  XJ_DCHECK(depth_ >= 0);
  return frames_[static_cast<size_t>(depth_)].exhausted;
}

int64_t RelationDeltaTrieIterator::Key() const {
  XJ_DCHECK(!AtEnd());
  return frames_[static_cast<size_t>(depth_)].key;
}

void RelationDeltaTrieIterator::Next() {
  XJ_DCHECK(!AtEnd());
  Frame& f = frames_[static_cast<size_t>(depth_)];
  const size_t d = static_cast<size_t>(depth_);
  // Base keys are distinct within the parent range; insert rows can
  // repeat the level key (one row per tuple), so skip the whole run.
  if (f.from_base) ++f.bpos;
  if (f.from_insert) {
    f.ipos = UpperBoundRange(delta_->inserts[d], f.ipos, f.ihi, f.key);
  }
  Reposition(&f, d);
}

void RelationDeltaTrieIterator::Seek(int64_t key) {
  XJ_DCHECK(!AtEnd());
  Frame& f = frames_[static_cast<size_t>(depth_)];
  const size_t d = static_cast<size_t>(depth_);
  f.bpos = LowerBoundRange(core_->keys[d], f.bpos, f.bhi, key);
  f.ipos = LowerBoundRange(delta_->inserts[d], f.ipos, f.ihi, key);
  Reposition(&f, d);
}

int64_t RelationDeltaTrieIterator::EstimateKeys() const {
  XJ_DCHECK(depth_ >= 0);
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  // Upper bound (conformance contract): remaining base keys plus
  // remaining insert rows; tombstones only shrink the true count, and
  // both cursors are monotone, so the estimate never grows.
  return static_cast<int64_t>((f.bhi - f.bpos) + (f.ihi - f.ipos));
}

size_t RelationDeltaTrieIterator::NextBlock(int64_t hi_exclusive,
                                            KeyBlock* out) {
  XJ_DCHECK(depth_ >= 0);
  Frame& f = frames_[static_cast<size_t>(depth_)];
  if (f.ipos >= f.ihi && f.tlo == f.thi) {
    // Pure-base tail: same contiguous copy as the plain CSR cursor.
    out->keys.clear();
    const std::vector<int64_t>& col =
        core_->keys[static_cast<size_t>(depth_)];
    size_t end = std::min(f.bpos + out->capacity, f.bhi);
    if (end > f.bpos && col[end - 1] >= hi_exclusive) {
      end = LowerBoundRange(col, f.bpos, end, hi_exclusive);
    }
    out->keys.assign(col.begin() + static_cast<ptrdiff_t>(f.bpos),
                     col.begin() + static_cast<ptrdiff_t>(end));
    f.bpos = end;
    Reposition(&f, static_cast<size_t>(depth_));
    return out->keys.size();
  }
  // Delta rows in range: fall back to the scalar merge drain.
  return TrieIterator::NextBlock(hi_exclusive, out);
}

bool RelationDeltaTrieIterator::RawLevelSpan(RawKeySpan* out) const {
  XJ_DCHECK(depth_ >= 0);
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  // The raw-CSR kernels may only see this level when no delta rows can
  // surface in the remaining range; otherwise report unavailable and
  // the engine stays on the virtual (merging) protocol.
  if (f.ipos < f.ihi || f.tlo != f.thi) return false;
  out->keys = core_->keys[static_cast<size_t>(depth_)].data();
  out->pos = f.bpos;
  out->hi = f.bhi;
  return true;
}

std::unique_ptr<TrieIterator> RelationDeltaTrieIterator::Clone() const {
  return std::make_unique<RelationDeltaTrieIterator>(trie_);
}

}  // namespace xjoin
