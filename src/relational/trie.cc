#include "relational/trie.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/parallel.h"

namespace xjoin {

namespace {

// Below this row count the comparator std::sort beats the radix passes'
// setup cost.
constexpr size_t kRadixMinRows = 256;

// Order-preserving map from int64 to uint64 (flips the sign bit so
// unsigned digit comparison matches signed order).
inline uint64_t OrderedBits(int64_t v) {
  return static_cast<uint64_t>(v) ^ (uint64_t{1} << 63);
}

// One stable LSD counting pass over 8-bit digits at `shift`, permuting
// `src` into `dst` by biased[row]'s digit. Returns false (dst untouched)
// when every key shares the digit, so callers skip the permute.
bool RadixPass(const std::vector<uint64_t>& biased, int shift,
               const std::vector<size_t>& src, std::vector<size_t>* dst) {
  size_t count[256] = {0};
  for (size_t r : src) ++count[(biased[r] >> shift) & 0xFF];
  size_t offsets[256];
  size_t running = 0;
  for (int digit = 0; digit < 256; ++digit) {
    if (count[digit] == src.size()) return false;
    offsets[digit] = running;
    running += count[digit];
  }
  for (size_t r : src) {
    (*dst)[offsets[(biased[r] >> shift) & 0xFF]++] = r;
  }
  return true;
}

// Stable-sorts `rows` by `col` (ascending) with an LSD radix over the
// bytes that actually vary; constant bytes cost one pass over the column
// (the variation mask), nothing more.
void StableRadixSortByColumn(const std::vector<int64_t>& col,
                             std::vector<size_t>* rows,
                             std::vector<size_t>* scratch,
                             std::vector<uint64_t>* biased) {
  const size_t n = col.size();
  uint64_t first = OrderedBits(col[0]);
  uint64_t varying = 0;
  for (size_t i = 0; i < n; ++i) {
    (*biased)[i] = OrderedBits(col[i]);
    varying |= (*biased)[i] ^ first;
  }
  for (int byte = 0; byte < 8; ++byte) {
    if (((varying >> (8 * byte)) & 0xFF) == 0) continue;
    if (RadixPass(*biased, 8 * byte, *rows, scratch)) rows->swap(*scratch);
  }
}

}  // namespace

Result<RelationTrie> RelationTrie::Build(const Relation& relation,
                                         const std::vector<std::string>& order,
                                         const TrieBuildOptions& options) {
  if (order.size() != relation.schema().size()) {
    return Status::InvalidArgument("trie order arity mismatch");
  }
  std::vector<size_t> perm;
  perm.reserve(order.size());
  for (const auto& name : order) {
    int idx = relation.schema().IndexOf(name);
    if (idx < 0) {
      return Status::InvalidArgument("trie order names unknown attribute: " +
                                     name);
    }
    perm.push_back(static_cast<size_t>(idx));
  }
  // Reject permutations with repeats.
  {
    std::vector<size_t> copy = perm;
    std::sort(copy.begin(), copy.end());
    for (size_t i = 0; i + 1 < copy.size(); ++i) {
      if (copy[i] == copy[i + 1]) {
        return Status::InvalidArgument("trie order repeats an attribute");
      }
    }
  }

  Timer timer;
  const size_t n = relation.num_rows();
  const size_t k = order.size();
  const int num_threads = std::max(1, options.num_threads);

  RelationTrie trie;
  trie.order_ = order;
  trie.keys_.resize(k);
  trie.child_begin_.resize(k > 0 ? k - 1 : 0);
  for (auto& cb : trie.child_begin_) cb.push_back(0);
  if (n == 0 || k == 0) return trie;

  // 1. Reference the columns in trie order — the relation is columnar,
  // so no copies are needed until the sorted materialization below.
  std::vector<const std::vector<int64_t>*> cols(k);
  for (size_t c = 0; c < k; ++c) cols[c] = &relation.column(perm[c]);

  // 2. Sort the row permutation lexicographically. Fast path: LSD radix
  // over the columns, least-significant first — each column costs only
  // one counting pass per byte that actually varies (dictionary codes
  // are small, so typically 1-2 passes). Tiny inputs use std::sort.
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), size_t{0});
  if (n >= kRadixMinRows) {
    std::vector<size_t> scratch(n);
    std::vector<uint64_t> biased(n);
    for (size_t c = k; c-- > 0;) {
      StableRadixSortByColumn(*cols[c], &rows, &scratch, &biased);
    }
    MetricsAdd(options.metrics, "trie.radix_sorts", 1);
  } else {
    std::sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
      for (size_t c = 0; c < k; ++c) {
        if ((*cols[c])[a] != (*cols[c])[b]) {
          return (*cols[c])[a] < (*cols[c])[b];
        }
      }
      return false;
    });
    MetricsAdd(options.metrics, "trie.std_sorts", 1);
  }

  // 3. Materialize the sorted columns (parallel per column).
  std::vector<std::vector<int64_t>> sorted(k);
  ParallelFor(num_threads, k, /*grain=*/1, [&](size_t c) {
    const std::vector<int64_t>& col = *cols[c];
    sorted[c].resize(n);
    for (size_t i = 0; i < n; ++i) sorted[c][i] = col[rows[i]];
  });

  // 4. diff[i] = first level where sorted row i differs from row i-1
  // (0 for the first row, k for a full duplicate). Duplicates therefore
  // create no trie node at any level — dedup falls out of the CSR pass
  // for free, with no re-reads of the unsorted relation.
  std::vector<uint32_t> diff(n);
  ParallelFor(num_threads, n, /*grain=*/4096, [&](size_t i) {
    if (i == 0) {
      diff[0] = 0;
      return;
    }
    uint32_t level = 0;
    while (level < k && sorted[level][i] == sorted[level][i - 1]) ++level;
    diff[i] = level;
  });

  // 5. Per-level CSR assembly: level d gets one node per row whose first
  // difference is at or above it, and counts its level-(d+1) children as
  // it goes. Levels are independent given `diff`, so they run on the
  // pool.
  ParallelFor(num_threads, k, /*grain=*/1, [&](size_t d) {
    std::vector<int64_t>& keys = trie.keys_[d];
    const std::vector<int64_t>& col = sorted[d];
    if (d + 1 < k) {
      std::vector<size_t>& cb = trie.child_begin_[d];
      cb.clear();
      size_t children = 0;
      for (size_t i = 0; i < n; ++i) {
        if (diff[i] <= d) {
          cb.push_back(children);
          keys.push_back(col[i]);
        }
        if (diff[i] <= d + 1) ++children;
      }
      cb.push_back(children);
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (diff[i] <= d) keys.push_back(col[i]);
      }
    }
  });

  MetricsAdd(options.metrics, "trie.builds", 1);
  MetricsAdd(options.metrics, "trie.build_micros", timer.ElapsedMicros());
  return trie;
}

std::unique_ptr<TrieIterator> RelationTrie::NewIterator() const {
  return std::make_unique<RelationTrieIterator>(this);
}

RelationTrieIterator::RelationTrieIterator(const RelationTrie* trie)
    : trie_(trie) {
  frames_.reserve(static_cast<size_t>(trie->arity()));
}

void RelationTrieIterator::Open() {
  XJ_DCHECK(depth_ + 1 < trie_->arity());
  size_t lo, hi;
  if (depth_ < 0) {
    lo = 0;
    hi = trie_->keys_[0].size();
  } else {
    const Frame& f = frames_[static_cast<size_t>(depth_)];
    XJ_DCHECK(f.pos < f.hi);
    const std::vector<size_t>& cb =
        trie_->child_begin_[static_cast<size_t>(depth_)];
    lo = cb[f.pos];
    hi = cb[f.pos + 1];
  }
  ++depth_;
  frames_.push_back(Frame{lo, hi, lo});
}

void RelationTrieIterator::Up() {
  XJ_DCHECK(depth_ >= 0);
  frames_.pop_back();
  --depth_;
}

bool RelationTrieIterator::AtEnd() const {
  XJ_DCHECK(depth_ >= 0);
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  return f.pos >= f.hi;
}

int64_t RelationTrieIterator::Key() const {
  XJ_DCHECK(!AtEnd());
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  return trie_->keys_[static_cast<size_t>(depth_)][f.pos];
}

void RelationTrieIterator::Next() {
  XJ_DCHECK(!AtEnd());
  ++frames_[static_cast<size_t>(depth_)].pos;
}

void RelationTrieIterator::Seek(int64_t key) {
  XJ_DCHECK(!AtEnd());
  Frame& f = frames_[static_cast<size_t>(depth_)];
  const std::vector<int64_t>& col = trie_->keys_[static_cast<size_t>(depth_)];
  // Keys within the parent's child range are already distinct; gallop to
  // bracket the target (leapfrog seeks are usually near the cursor),
  // then binary search only inside the bracket.
  size_t base = f.pos;
  size_t step = 1;
  while (base + step < f.hi && col[base + step] < key) {
    base += step;
    step <<= 1;
  }
  size_t search_hi = std::min(base + step, f.hi);
  f.pos = static_cast<size_t>(
      std::lower_bound(col.begin() + static_cast<ptrdiff_t>(base),
                       col.begin() + static_cast<ptrdiff_t>(search_hi), key) -
      col.begin());
}

size_t RelationTrieIterator::NextBlock(int64_t hi_exclusive, KeyBlock* out) {
  XJ_DCHECK(depth_ >= 0);
  out->keys.clear();
  Frame& f = frames_[static_cast<size_t>(depth_)];
  const std::vector<int64_t>& col = trie_->keys_[static_cast<size_t>(depth_)];
  size_t end = std::min(f.pos + out->capacity, f.hi);
  // Keys are sorted: if the last candidate clears hi_exclusive the whole
  // run does; otherwise binary-search the cut inside the candidate run.
  if (end > f.pos && col[end - 1] >= hi_exclusive) {
    end = static_cast<size_t>(
        std::lower_bound(col.begin() + static_cast<ptrdiff_t>(f.pos),
                         col.begin() + static_cast<ptrdiff_t>(end),
                         hi_exclusive) -
        col.begin());
  }
  out->keys.assign(col.begin() + static_cast<ptrdiff_t>(f.pos),
                   col.begin() + static_cast<ptrdiff_t>(end));
  f.pos = end;
  return out->keys.size();
}

bool RelationTrieIterator::RawLevelSpan(RawKeySpan* out) const {
  XJ_DCHECK(depth_ >= 0);
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  out->keys = trie_->keys_[static_cast<size_t>(depth_)].data();
  out->pos = f.pos;
  out->hi = f.hi;
  return true;
}

int64_t RelationTrieIterator::EstimateKeys() const {
  XJ_DCHECK(depth_ >= 0);
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  return static_cast<int64_t>(f.hi - f.pos);
}

std::unique_ptr<TrieIterator> RelationTrieIterator::Clone() const {
  return std::make_unique<RelationTrieIterator>(trie_);
}

}  // namespace xjoin
