// Attribute names and relation schemas. Attribute identity is by name;
// the multi-model query model joins relational columns and twig query
// nodes that share an attribute name (paper Figures 1-3).
#ifndef XJOIN_RELATIONAL_SCHEMA_H_
#define XJOIN_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace xjoin {

/// An ordered list of distinct attribute names, e.g. R1(B, D).
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; fails on duplicate or empty attribute names.
  static Result<Schema> Make(std::vector<std::string> attributes);

  size_t size() const { return attributes_.size(); }
  const std::string& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Position of `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  bool Contains(const std::string& name) const { return IndexOf(name) >= 0; }

  /// "R(A, B, C)"-style rendering with the given relation name.
  std::string ToString(const std::string& relation_name) const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

 private:
  std::vector<std::string> attributes_;
};

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_SCHEMA_H_
