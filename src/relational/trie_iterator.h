// The trie-iterator interface of Veldhuizen's Leapfrog Triejoin, the
// substrate the generic worst-case-optimal engine (core/generic_join.h)
// drives. A trie iterator presents a relation as a sorted trie whose
// level i enumerates the distinct values of attribute i given the bound
// prefix. Implementations:
//   * RelationTrie           — materialized, over a columnar Relation
//     (delta-free tries walk the CSR arrays directly; tries carrying a
//     pending update side-file merge base and delta on the fly — see
//     RelationDeltaTrieIterator in relational/trie.h)
//   * LazyPathTrie           — navigates an XML document in place
//   * MaterializedPathTrie   — XML path relation flattened to a Relation
#ifndef XJOIN_RELATIONAL_TRIE_ITERATOR_H_
#define XJOIN_RELATIONAL_TRIE_ITERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace xjoin {

/// Fixed-capacity destination buffer for bulk key drains (NextBlock
/// below). `keys` holds the drained keys; `capacity` bounds how many one
/// call may produce. Reused across calls — NextBlock clears it first.
struct KeyBlock {
  explicit KeyBlock(size_t cap) : capacity(cap) { keys.reserve(cap); }

  std::vector<int64_t> keys;
  size_t capacity;
};

/// Borrowed view of a CSR level: the backing sorted-key array plus the
/// cursor's remaining half-open range [pos, hi) within it. Only
/// iterators whose level really is a contiguous sorted array expose one
/// (see TrieIterator::RawLevelSpan) — it is the devirtualization hook
/// the batched last-level intersection kernel builds on.
struct RawKeySpan {
  const int64_t* keys = nullptr;
  size_t pos = 0;
  size_t hi = 0;
};

/// Borrowed view of a whole delta-free CSR trie: per level, the full
/// sorted key array plus the child_begin offsets that map a key at
/// position p to its children's range [child_begin[p], child_begin[p+1])
/// one level down (the deepest level has no child_begin). Iterators
/// whose backing storage is exactly this layout expose one via
/// TrieIterator::RawTrieSpans — the hook the full-depth batched
/// generic-join executor devirtualizes on, navigating the arrays
/// directly instead of driving the virtual cursor protocol.
struct RawTrieView {
  struct Level {
    const int64_t* keys = nullptr;
    size_t num_keys = 0;
    const size_t* child_begin = nullptr;  // null at the deepest level
  };
  std::vector<Level> levels;
};

/// Cursor over a sorted trie of tuples.
///
/// Protocol (all positions are per-level, keys are sorted ascending):
///   depth() starts at -1 (virtual root). Open() descends to the first key
///   of the next level; Up() ascends. At a level, Key() reads the current
///   key, Next() advances to the next distinct key, Seek(k) advances to the
///   least key >= k (never moves backward), and AtEnd() reports exhaustion
///   of the level. Calling Key/Next/Seek while AtEnd() is invalid.
///
/// Threading: an iterator is single-threaded, but distinct iterators over
/// the same underlying data (see Clone()) may be driven from different
/// threads concurrently — implementations must keep all mutable state
/// inside the iterator and treat the backing trie/document as immutable.
class TrieIterator {
 public:
  virtual ~TrieIterator() = default;

  /// Number of trie levels (attributes).
  virtual int arity() const = 0;

  /// Current depth: -1 before the first Open, otherwise 0..arity()-1.
  virtual int depth() const = 0;

  /// Descends one level to the first key. Precondition: depth()+1 < arity()
  /// and (depth() == -1 or !AtEnd()).
  virtual void Open() = 0;

  /// Ascends one level. Precondition: depth() >= 0.
  virtual void Up() = 0;

  /// True when the current level has no more keys at or after the cursor.
  virtual bool AtEnd() const = 0;

  /// The key at the cursor. Precondition: !AtEnd() and depth() >= 0.
  virtual int64_t Key() const = 0;

  /// Moves to the next distinct key at this level.
  /// Precondition: !AtEnd().
  virtual void Next() = 0;

  /// Moves forward to the least key >= `key`, possibly landing AtEnd().
  /// Precondition: !AtEnd() and key >= Key().
  virtual void Seek(int64_t key) = 0;

  /// Estimated number of keys remaining at the current level (used by
  /// planners to pick the smallest iterator to lead a leapfrog). A rough
  /// upper bound is fine.
  virtual int64_t EstimateKeys() const = 0;

  /// Bulk drain: moves the cursor forward over up to `out->capacity`
  /// distinct keys strictly below `hi_exclusive`, appending them to
  /// `out->keys` (cleared first) in ascending order. Equivalent to the
  /// scalar loop { emit Key(); Next(); } stopped at capacity,
  /// hi_exclusive, or AtEnd() — afterwards the cursor rests on the first
  /// key not emitted (>= hi_exclusive), or AtEnd(). Returns the number
  /// of keys drained. Precondition: depth() >= 0 (AtEnd() is fine and
  /// yields 0). This default is the scalar loop itself, so every
  /// implementation conforms for free; CSR-backed tries override it with
  /// an O(1)-per-key copy out of the level array.
  virtual size_t NextBlock(int64_t hi_exclusive, KeyBlock* out) {
    out->keys.clear();
    while (out->keys.size() < out->capacity && !AtEnd()) {
      int64_t key = Key();
      if (key >= hi_exclusive) break;
      out->keys.push_back(key);
      Next();
    }
    return out->keys.size();
  }

  /// Exposes the current level as a raw sorted-array span when the
  /// backing storage allows it (CSR tries do; document-navigating tries
  /// return false). The span aliases iterator-internal state: it is
  /// invalidated by any subsequent cursor movement, and a caller that
  /// consumes keys through the span without moving the cursor must
  /// ascend (Up()) out of the level before using the iterator again.
  /// Precondition: depth() >= 0.
  virtual bool RawLevelSpan(RawKeySpan* out) const {
    (void)out;
    return false;
  }

  /// Exposes the whole backing trie as raw CSR arrays (all levels at
  /// once, position-independent) when the storage is a plain delta-free
  /// CSR trie. Returns false otherwise — delta-merging and
  /// document-navigating iterators decline, sending the engine down the
  /// virtual-protocol path. The view borrows the backing arrays, which
  /// outlive the iterator; it is unaffected by cursor movement.
  virtual bool RawTrieSpans(RawTrieView* out) const {
    (void)out;
    return false;
  }

  /// Creates a fresh, independent iterator over the same underlying trie,
  /// positioned at the virtual root (depth() == -1) regardless of this
  /// iterator's current position. The clone shares only immutable backing
  /// data (sorted columns, the document, the node index) and may therefore
  /// be used from a different thread than the original — this is what the
  /// sharded generic-join driver relies on to give every shard its own
  /// cursor stack with zero shared mutable state. The backing data must
  /// outlive the clone, exactly as it must outlive the original.
  virtual std::unique_ptr<TrieIterator> Clone() const = 0;
};

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_TRIE_ITERATOR_H_
