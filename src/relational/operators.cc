#include "relational/operators.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"

namespace xjoin {

namespace {

struct KeyHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (int64_t v : t) h = HashCombine(h, static_cast<size_t>(v));
    return h;
  }
};

}  // namespace

Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attributes) {
  std::vector<size_t> idx;
  idx.reserve(attributes.size());
  for (const auto& a : attributes) {
    int i = input.schema().IndexOf(a);
    if (i < 0)
      return Status::InvalidArgument("project: unknown attribute " + a);
    idx.push_back(static_cast<size_t>(i));
  }
  XJ_ASSIGN_OR_RETURN(Schema out_schema, Schema::Make(attributes));
  Relation out(std::move(out_schema));
  Tuple row(idx.size());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    for (size_t c = 0; c < idx.size(); ++c) row[c] = input.at(r, idx[c]);
    out.AppendRow(row);
  }
  out.SortAndDedup();
  return out;
}

Relation Select(const Relation& input,
                const std::function<bool(const Tuple&)>& predicate) {
  Relation out(input.schema());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    Tuple row = input.GetRow(r);
    if (predicate(row)) out.AppendRow(row);
  }
  return out;
}

Result<Relation> HashJoin(const Relation& left, const Relation& right,
                          Metrics* metrics) {
  // Shared attributes, with positions in each side.
  std::vector<std::pair<size_t, size_t>> shared;  // (left idx, right idx)
  for (size_t i = 0; i < left.schema().size(); ++i) {
    int j = right.schema().IndexOf(left.schema().attribute(i));
    if (j >= 0) shared.emplace_back(i, static_cast<size_t>(j));
  }
  std::vector<size_t> right_extra;  // right columns not shared
  for (size_t j = 0; j < right.schema().size(); ++j) {
    bool is_shared = false;
    for (const auto& [li, rj] : shared) {
      (void)li;
      if (rj == j) {
        is_shared = true;
        break;
      }
    }
    if (!is_shared) right_extra.push_back(j);
  }

  std::vector<std::string> out_attrs = left.schema().attributes();
  for (size_t j : right_extra) out_attrs.push_back(right.schema().attribute(j));
  XJ_ASSIGN_OR_RETURN(Schema out_schema, Schema::Make(std::move(out_attrs)));
  Relation out(std::move(out_schema));

  // Build on the smaller side keyed by the shared attributes; for clarity
  // we always build on `right` (callers order plans explicitly).
  std::unordered_map<Tuple, std::vector<size_t>, KeyHash> table;
  table.reserve(right.num_rows() * 2);
  Tuple key(shared.size());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    for (size_t c = 0; c < shared.size(); ++c)
      key[c] = right.at(r, shared[c].second);
    table[key].push_back(r);
  }

  Tuple out_row(out.num_columns());
  for (size_t l = 0; l < left.num_rows(); ++l) {
    for (size_t c = 0; c < shared.size(); ++c)
      key[c] = left.at(l, shared[c].first);
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (size_t r : it->second) {
      size_t o = 0;
      for (size_t c = 0; c < left.num_columns(); ++c)
        out_row[o++] = left.at(l, c);
      for (size_t j : right_extra) out_row[o++] = right.at(r, j);
      out.AppendRow(out_row);
      MetricsAdd(metrics, "hash_join.probe_matches", 1);
    }
  }
  out.SortAndDedup();
  MetricsAdd(metrics, "hash_join.output", static_cast<int64_t>(out.num_rows()));
  return out;
}

Result<Relation> JoinAll(const std::vector<const Relation*>& inputs,
                         Metrics* metrics) {
  if (inputs.empty()) return Status::InvalidArgument("JoinAll: no inputs");
  Relation acc = *inputs[0];
  acc.SortAndDedup();
  int64_t max_intermediate = static_cast<int64_t>(acc.num_rows());
  int64_t total_intermediate = static_cast<int64_t>(acc.num_rows());
  for (size_t i = 1; i < inputs.size(); ++i) {
    XJ_ASSIGN_OR_RETURN(acc, HashJoin(acc, *inputs[i], nullptr));
    max_intermediate =
        std::max(max_intermediate, static_cast<int64_t>(acc.num_rows()));
    total_intermediate += static_cast<int64_t>(acc.num_rows());
  }
  if (metrics != nullptr) {
    metrics->RecordMax("plan.max_intermediate", max_intermediate);
    metrics->Add("plan.total_intermediate", total_intermediate);
  }
  return acc;
}

Result<Relation> SemiJoin(const Relation& left, const Relation& right) {
  std::vector<std::pair<size_t, size_t>> shared;
  for (size_t i = 0; i < left.schema().size(); ++i) {
    int j = right.schema().IndexOf(left.schema().attribute(i));
    if (j >= 0) shared.emplace_back(i, static_cast<size_t>(j));
  }
  if (shared.empty()) {
    // Degenerate: keep everything iff right is non-empty.
    if (right.num_rows() > 0) return left;
    return Relation(left.schema());
  }
  std::unordered_map<Tuple, bool, KeyHash> table;
  Tuple key(shared.size());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    for (size_t c = 0; c < shared.size(); ++c)
      key[c] = right.at(r, shared[c].second);
    table[key] = true;
  }
  Relation out(left.schema());
  for (size_t l = 0; l < left.num_rows(); ++l) {
    for (size_t c = 0; c < shared.size(); ++c)
      key[c] = left.at(l, shared[c].first);
    if (table.count(key)) out.AppendRow(left.GetRow(l));
  }
  return out;
}

bool RelationsEqualAsSets(const Relation& a, const Relation& b) {
  if (!(a.schema() == b.schema())) return false;
  Relation ca = a;
  Relation cb = b;
  ca.SortAndDedup();
  cb.SortAndDedup();
  if (ca.num_rows() != cb.num_rows()) return false;
  for (size_t r = 0; r < ca.num_rows(); ++r) {
    for (size_t c = 0; c < ca.num_columns(); ++c) {
      if (ca.at(r, c) != cb.at(r, c)) return false;
    }
  }
  return true;
}

}  // namespace xjoin
