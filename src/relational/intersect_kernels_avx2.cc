// AVX2 kernel variant. This TU — and only this TU — is compiled with
// -mavx2 (see src/relational/CMakeLists.txt), so the vector code here
// never leaks into translation units that must stay runnable on
// baseline x86-64. When the flag is unavailable the registry entry
// degrades to null and dispatch walks down to SSE4.2 or scalar.
#include "relational/intersect_kernels.h"

#if defined(__AVX2__) && (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

#include "relational/intersect_kernels_impl.h"

namespace xjoin {
namespace intersect_internal {
namespace {

// __m256i holds four int64 lanes; VPCMPGTQ is the signed compare.
struct Avx2Ops {
  static constexpr size_t kLinearCutoff = 32;
  static constexpr size_t kScanBudget = 32;

  static size_t LinearLowerBound(const int64_t* keys, size_t lo, size_t hi,
                                 int64_t key) {
    const __m256i needle = _mm256_set1_epi64x(key);
    size_t i = lo;
    while (i + 4 <= hi) {
      // Keys ascend, so lanes < key form a prefix of the block: the
      // popcount of the less-than mask is the in-block offset of the
      // first lane >= key. Loads are unaligned by design — CSR level
      // ranges start at arbitrary child offsets.
      __m256i block =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
      __m256i lt = _mm256_cmpgt_epi64(needle, block);
      unsigned mask =
          static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(lt)));
      if (mask != 0xFu) {
        return i + static_cast<size_t>(__builtin_popcount(mask));
      }
      i += 4;
    }
    while (i < hi && keys[i] < key) ++i;  // tail
    return i;
  }
};

using Avx2Kernels = Kernels<Avx2Ops>;

constexpr IntersectKernel kAvx2Kernel = {
    SimdLevel::kAvx2,
    &Avx2Kernels::LowerBound,
    &Avx2Kernels::Seek,
    &Avx2Kernels::Drain,
};

}  // namespace

const IntersectKernel* Avx2IntersectKernel() { return &kAvx2Kernel; }

}  // namespace intersect_internal
}  // namespace xjoin

#else  // !__AVX2__

namespace xjoin {
namespace intersect_internal {

const IntersectKernel* Avx2IntersectKernel() { return nullptr; }

}  // namespace intersect_internal
}  // namespace xjoin

#endif  // __AVX2__
