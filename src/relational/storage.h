// Binary persistence for the multi-model storage objects: Dictionary,
// Relation, and XmlDocument serialize to a compact little-endian format
// with a magic tag, a format version, and a FNV-1a checksum over the
// payload, so a corrupted or truncated file fails loudly instead of
// loading garbage. Numbers use varint encoding (codes and node ids are
// small in practice).
#ifndef XJOIN_RELATIONAL_STORAGE_H_
#define XJOIN_RELATIONAL_STORAGE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/dictionary.h"
#include "common/status.h"
#include "relational/relation.h"
#include "xml/document.h"

namespace xjoin {

/// Byte-buffer writer with varint support.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutVarint(uint64_t v);
  void PutSignedVarint(int64_t v) {
    // ZigZag encoding.
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }
  void PutString(std::string_view s);

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Byte-buffer reader; every accessor reports truncation via Status.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint64_t> GetVarint();
  Result<int64_t> GetSignedVarint();
  Result<std::string> GetString();
  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Serializes a dictionary (all strings in code order).
std::string SerializeDictionary(const Dictionary& dict);
Result<Dictionary> DeserializeDictionary(std::string_view data);

/// Serializes a relation (schema + columns).
std::string SerializeRelation(const Relation& relation);
Result<Relation> DeserializeRelation(std::string_view data);

/// Serializes a document (tags + tree structure + text).
std::string SerializeDocument(const XmlDocument& doc);
Result<XmlDocument> DeserializeDocument(std::string_view data);

/// File helpers (any of the three payload kinds).
Status WriteFileBytes(const std::string& path, std::string_view data);
Result<std::string> ReadFileBytes(const std::string& path);

}  // namespace xjoin

#endif  // XJOIN_RELATIONAL_STORAGE_H_
