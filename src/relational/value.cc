#include "relational/value.h"

#include "common/string_util.h"

namespace xjoin {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return FormatDouble(AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return {};
}

Result<Value> ParseValue(ValueType type, std::string_view text) {
  switch (type) {
    case ValueType::kInt64: {
      XJ_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value(v);
    }
    case ValueType::kDouble: {
      XJ_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Value(v);
    }
    case ValueType::kString:
      return Value(std::string(text));
  }
  return Status::Internal("unreachable value type");
}

}  // namespace xjoin
