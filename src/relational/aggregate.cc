#include "relational/aggregate.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "common/string_util.h"
#include "relational/value.h"

namespace xjoin {

namespace {

struct GroupState {
  int64_t count = 0;
  std::vector<std::set<int64_t>> distinct;  // per distinct-spec
  std::vector<double> sum;                  // per numeric spec
  std::vector<double> min;
  std::vector<double> max;
  std::vector<int64_t> numeric_count;
};

}  // namespace

Result<Relation> GroupBy(const Relation& input,
                         const std::vector<std::string>& group_by,
                         const std::vector<AggregateSpec>& aggregates,
                         Dictionary* dict) {
  // Resolve columns.
  std::vector<size_t> key_cols;
  for (const auto& attr : group_by) {
    int idx = input.schema().IndexOf(attr);
    if (idx < 0)
      return Status::InvalidArgument("group-by: unknown attribute " + attr);
    key_cols.push_back(static_cast<size_t>(idx));
  }
  std::vector<int> agg_cols(aggregates.size(), -1);
  for (size_t i = 0; i < aggregates.size(); ++i) {
    const AggregateSpec& spec = aggregates[i];
    if (spec.as.empty()) {
      return Status::InvalidArgument("aggregate without output name");
    }
    if (spec.function == AggregateFunction::kCount) continue;
    agg_cols[i] = input.schema().IndexOf(spec.attribute);
    if (agg_cols[i] < 0) {
      return Status::InvalidArgument("aggregate: unknown attribute " +
                                     spec.attribute);
    }
  }

  // Accumulate.
  std::map<Tuple, GroupState> groups;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    Tuple key(key_cols.size());
    for (size_t c = 0; c < key_cols.size(); ++c)
      key[c] = input.at(r, key_cols[c]);
    GroupState& state = groups[key];
    if (state.distinct.empty()) {
      state.distinct.resize(aggregates.size());
      state.sum.assign(aggregates.size(), 0.0);
      state.min.assign(aggregates.size(),
                       std::numeric_limits<double>::infinity());
      state.max.assign(aggregates.size(),
                       -std::numeric_limits<double>::infinity());
      state.numeric_count.assign(aggregates.size(), 0);
    }
    ++state.count;
    for (size_t i = 0; i < aggregates.size(); ++i) {
      const AggregateSpec& spec = aggregates[i];
      if (spec.function == AggregateFunction::kCount) continue;
      int64_t code = input.at(r, static_cast<size_t>(agg_cols[i]));
      if (spec.function == AggregateFunction::kCountDistinct) {
        state.distinct[i].insert(code);
        continue;
      }
      auto parsed = ParseDouble(dict->Decode(code));
      if (!parsed.ok()) {
        return Status::InvalidArgument(
            "aggregate " + spec.as + ": non-numeric value '" +
            dict->Decode(code) + "'");
      }
      double v = *parsed;
      state.sum[i] += v;
      state.min[i] = std::min(state.min[i], v);
      state.max[i] = std::max(state.max[i], v);
      ++state.numeric_count[i];
    }
  }

  // Emit.
  std::vector<std::string> out_attrs = group_by;
  for (const auto& spec : aggregates) out_attrs.push_back(spec.as);
  XJ_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(out_attrs)));
  Relation out(std::move(schema));
  for (const auto& [key, state] : groups) {
    Tuple row = key;
    for (size_t i = 0; i < aggregates.size(); ++i) {
      const AggregateSpec& spec = aggregates[i];
      Value value;
      switch (spec.function) {
        case AggregateFunction::kCount:
          value = Value(state.count);
          break;
        case AggregateFunction::kCountDistinct:
          value = Value(static_cast<int64_t>(state.distinct[i].size()));
          break;
        case AggregateFunction::kSum:
          value = Value(state.sum[i]);
          break;
        case AggregateFunction::kMin:
          value = Value(state.numeric_count[i] ? state.min[i] : 0.0);
          break;
        case AggregateFunction::kMax:
          value = Value(state.numeric_count[i] ? state.max[i] : 0.0);
          break;
        case AggregateFunction::kAvg:
          value = Value(state.numeric_count[i]
                            ? state.sum[i] / static_cast<double>(
                                                 state.numeric_count[i])
                            : 0.0);
          break;
      }
      row.push_back(value.Encode(dict));
    }
    out.AppendRow(row);
  }
  return out;
}

}  // namespace xjoin
