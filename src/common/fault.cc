#include "common/fault.h"

#include <utility>

namespace xjoin {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::FailAt(const std::string& site, int64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_[site] = nth;
}

void FaultInjector::SetSeed(uint64_t seed, double p) {
  std::lock_guard<std::mutex> lock(mu_);
  seeded_ = true;
  seed_ = seed;
  seed_p_ = p;
}

void FaultInjector::SetHandler(const std::string& site,
                               std::function<void(int64_t)> handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[site] = std::move(handler);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  hit_counts_.clear();
  fail_at_.clear();
  handlers_.clear();
  seeded_ = false;
  seed_ = 0;
  seed_p_ = 0.0;
}

int64_t FaultInjector::hits(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hit_counts_.find(site);
  return it == hit_counts_.end() ? 0 : it->second;
}

namespace {

// splitmix64: decorrelates (seed, site-hash, hit#) into a uniform
// 64-bit value so seeded chaos decisions replay exactly per seed.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool FaultInjector::Hit(const std::string& site) {
  std::function<void(int64_t)> handler;
  int64_t count = 0;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    count = ++hit_counts_[site];
    auto fa = fail_at_.find(site);
    if (fa != fail_at_.end() && count >= fa->second) fail = true;
    if (!fail && seeded_ && seed_p_ > 0.0) {
      uint64_t h = Mix(seed_ ^ Mix(std::hash<std::string>{}(site)) ^
                       Mix(static_cast<uint64_t>(count)));
      double u = static_cast<double>(h >> 11) *
                 (1.0 / 9007199254740992.0);  // [0,1) from top 53 bits
      fail = u < seed_p_;
    }
    auto hi = handlers_.find(site);
    if (hi != handlers_.end()) handler = hi->second;
  }
  // Outside the lock: handlers may call back into tokens, pools, or the
  // injector itself.
  if (handler) handler(count);
  return fail;
}

}  // namespace xjoin
