// Small string helpers shared by the parsers and CSV reader.
#ifndef XJOIN_COMMON_STRING_UTIL_H_
#define XJOIN_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xjoin {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Parses a base-10 signed integer; rejects trailing garbage and overflow.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a floating point number; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Parses a base-10 unsigned integer; rejects signs, trailing garbage,
/// and overflow.
Result<uint64_t> ParseUint64(std::string_view s);

/// Reads environment variable `name` as an unsigned integer. Unset
/// returns `fallback` silently; a malformed value (e.g. "banana",
/// "-3", "12x") logs one warning and returns `fallback`, so a typo'd
/// XJOIN_FAULT_SEED degrades to a deterministic default instead of
/// silently becoming 0.
uint64_t EnvUint64OrDefault(const char* name, uint64_t fallback);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Renders a double compactly ("3.5", not "3.500000").
std::string FormatDouble(double v);

/// Canonical spelling of a multi-model query text, used as a cache key
/// component: whitespace runs collapse to one space, the ends are
/// trimmed, and spaces adjacent to the query grammar's punctuation
/// (",():=[]/") are dropped — so "Q(*) := R , S" and "Q(*):=R,S" map to
/// the same key. Spaces inside identifiers are preserved (collapsed to
/// one), so distinct registered names cannot collide.
std::string CanonicalizeQueryText(std::string_view text);

}  // namespace xjoin

#endif  // XJOIN_COMMON_STRING_UTIL_H_
