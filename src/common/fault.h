// Deterministic fault injection for robustness tests. The engines mark
// named sites with XJOIN_FAULT("site"); in normal builds the macro
// compiles to a constant-false no-op (zero code, zero data, zero
// atomics), so release binaries are byte-identical with or without the
// sites. Configuring CMake with -DXJOIN_FAULTS=ON defines
// XJOIN_FAULTS_ENABLED and routes every site through the process-wide
// FaultInjector, which tests program to:
//   * fail the Nth hit of one site       (FailAt)      — deterministic
//     reproduction of "the 3rd shard dispatch fails";
//   * fail sites pseudo-randomly         (SetSeed)     — seeded chaos
//     sweeps; the decision hashes (seed, site, hit#) so a seed replays
//     the exact same failures;
//   * observe hits without failing them  (SetHandler)  — e.g. cancel a
//     token the moment a query's expansion loop reaches a tick site.
//
// Fault-site catalog (kept in sync with docs/ARCHITECTURE.md):
//   gj.shard_dispatch     before the sharded driver hands shards to the
//                         executor (a hit fails the query kInternal)
//   gj.tick               observer-only: each budget/cancel poll in the
//                         expansion loop (never fails; handler hook)
//   trie.build            before a relation/path trie build on cache
//                         miss (a hit fails the build kInternal)
//   trie.compact          before a relation delta publishes its rebuilt
//                         tries (a hit fails the update, old version
//                         must stay fully intact)
//   admission.queue_full  evaluated at tenant admission (a hit makes
//                         the pool report queue-full regardless of
//                         actual depth)
//   gj.morsel             per-shard morsel hand-off inside the sharded
//                         driver's ParallelFor body (a hit drops that
//                         shard's work; the query fails kInternal)
//   gj.result_merge       before shard results merge into the final
//                         relation (a hit fails the query kInternal)
//   net.accept            before the server accepts a pending
//                         connection (a hit drops it on the floor)
//   net.read              per read() in the server's frame decoder (a
//                         hit closes the connection mid-frame)
//   net.write             per write() of a response (a hit closes the
//                         connection mid-response)
//   net.drop_response     after a request executes but before its
//                         response frame is written (a hit closes the
//                         connection, simulating a lost response)
#ifndef XJOIN_COMMON_FAULT_H_
#define XJOIN_COMMON_FAULT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace xjoin {

/// Process-wide registry of armed faults. All methods are thread-safe.
/// Tests arm faults, run the scenario, then Disarm() — typically via a
/// small RAII guard so a failing assertion cannot leak armed faults
/// into the next test.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms `site` to fail on its `nth` hit (1-based) and every hit after.
  /// Replaces any previous programming of that site.
  void FailAt(const std::string& site, int64_t nth);

  /// Arms every site to fail pseudo-randomly with probability `p`. The
  /// decision is a pure function of (seed, site, hit#): re-running with
  /// the same seed replays the identical failure sequence.
  void SetSeed(uint64_t seed, double p);

  /// Installs an observer invoked (outside the injector lock) on every
  /// hit of `site`, receiving the 1-based hit count. The handler never
  /// makes the site fail; combine with FailAt/SetSeed if needed.
  void SetHandler(const std::string& site,
                  std::function<void(int64_t)> handler);

  /// Clears all programming and counters.
  void Disarm();

  /// Total times `site` has been reached since the last Disarm().
  int64_t hits(const std::string& site);

  /// Called by the XJOIN_FAULT macro: records a hit of `site`, invokes
  /// its handler if any, and returns whether the site should fail.
  bool Hit(const std::string& site);

 private:
  FaultInjector() = default;

  std::mutex mu_;
  std::map<std::string, int64_t> hit_counts_;
  std::map<std::string, int64_t> fail_at_;  // site -> nth (1-based)
  std::map<std::string, std::function<void(int64_t)>> handlers_;
  bool seeded_ = false;
  uint64_t seed_ = 0;
  double seed_p_ = 0.0;
};

/// RAII disarm: constructs clean, destructs clean. Put one at the top
/// of every fault test so armed faults never outlive it.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() { FaultInjector::Global().Disarm(); }
  ~ScopedFaultInjection() { FaultInjector::Global().Disarm(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace xjoin

#ifdef XJOIN_FAULTS_ENABLED
/// True when the named site should fail this time through.
#define XJOIN_FAULT(site) (::xjoin::FaultInjector::Global().Hit(site))
#else
/// Fault injection compiled out: constant false, no side effects.
#define XJOIN_FAULT(site) (false)
#endif

#endif  // XJOIN_COMMON_FAULT_H_
