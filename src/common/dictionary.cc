#include "common/dictionary.h"

#include <mutex>

#include "common/logging.h"

namespace xjoin {

int64_t Dictionary::Intern(std::string_view s) {
  {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    auto it = index_.find(std::string(s));
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(*mu_);
  auto it = index_.find(std::string(s));  // re-check: lost the race?
  if (it != index_.end()) return it->second;
  int64_t code = static_cast<int64_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), code);
  return code;
}

int64_t Dictionary::Lookup(std::string_view s) const {
  std::shared_lock<std::shared_mutex> lock(*mu_);
  auto it = index_.find(std::string(s));
  if (it == index_.end()) return -1;
  return it->second;
}

const std::string& Dictionary::Decode(int64_t code) const {
  std::shared_lock<std::shared_mutex> lock(*mu_);
  XJ_CHECK(code >= 0 && static_cast<size_t>(code) < strings_.size())
      << "dictionary code out of range: " << code;
  return strings_[static_cast<size_t>(code)];
}

bool Dictionary::Contains(int64_t code) const {
  std::shared_lock<std::shared_mutex> lock(*mu_);
  return code >= 0 && static_cast<size_t>(code) < strings_.size();
}

int64_t Dictionary::size() const {
  std::shared_lock<std::shared_mutex> lock(*mu_);
  return static_cast<int64_t>(strings_.size());
}

}  // namespace xjoin
