#include "common/dictionary.h"

#include "common/logging.h"

namespace xjoin {

int64_t Dictionary::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  int64_t code = static_cast<int64_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), code);
  return code;
}

int64_t Dictionary::Lookup(std::string_view s) const {
  auto it = index_.find(std::string(s));
  if (it == index_.end()) return -1;
  return it->second;
}

const std::string& Dictionary::Decode(int64_t code) const {
  XJ_CHECK(Contains(code)) << "dictionary code out of range: " << code;
  return strings_[static_cast<size_t>(code)];
}

}  // namespace xjoin
