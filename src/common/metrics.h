// Execution metrics: named counters recorded by the join engines so the
// benchmark harness can report intermediate-result sizes, seek counts,
// and per-stage timings the same way the paper's Figure 3 does.
#ifndef XJOIN_COMMON_METRICS_H_
#define XJOIN_COMMON_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace xjoin {

/// A bag of named int64 counters. Engines take a Metrics* (may be null,
/// in which case recording is a no-op) and bump counters as they run.
class Metrics {
 public:
  /// Adds `delta` to counter `name`, creating it at 0 if absent.
  void Add(const std::string& name, int64_t delta) { counters_[name] += delta; }

  /// Sets counter `name` to max(current, value); used for high-watermarks.
  void RecordMax(const std::string& name, int64_t value) {
    auto& slot = counters_[name];
    if (value > slot) slot = value;
  }

  /// Current value; 0 for unknown counters.
  int64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// All counters in name order (stable output for tests and benches).
  const std::map<std::string, int64_t>& counters() const { return counters_; }

  /// Adds every counter of `other` into this bag. This is an addition
  /// merge: exact for Add-style counters, which is all the per-shard /
  /// per-worker scratch Metrics of the parallel engines ever record —
  /// high-watermark (RecordMax) counters must not be merged this way.
  void MergeFrom(const Metrics& other) {
    for (const auto& [name, value] : other.counters_) counters_[name] += value;
  }

  void Clear() { counters_.clear(); }

  /// One "name=value" pair per line.
  std::string ToString() const;

 private:
  std::map<std::string, int64_t> counters_;
};

/// Helper: bump a possibly-null Metrics.
inline void MetricsAdd(Metrics* m, const std::string& name, int64_t delta) {
  if (m != nullptr) m->Add(name, delta);
}

/// Wall-clock stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Seconds elapsed, as a double.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xjoin

#endif  // XJOIN_COMMON_METRICS_H_
