#include "common/string_util.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace xjoin {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e &&
         (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::ParseError("empty integer literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::ParseError("integer overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer literal: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::ParseError("empty float literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid float literal: " + buf);
  }
  return v;
}

Result<uint64_t> ParseUint64(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::ParseError("empty integer literal");
  // strtoull happily accepts "-1" (wrapping it); reject signs up front.
  if (s.front() == '-' || s.front() == '+') {
    return Status::ParseError("invalid unsigned integer literal: " +
                              std::string(s));
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::ParseError("integer overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid unsigned integer literal: " + buf);
  }
  return static_cast<uint64_t>(v);
}

uint64_t EnvUint64OrDefault(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  Result<uint64_t> parsed = ParseUint64(value);
  if (!parsed.ok()) {
    XJ_LOG(Warning) << "ignoring malformed " << name << "='" << value
                    << "' (" << parsed.status().message() << "); using "
                    << fallback;
    return fallback;
  }
  return *parsed;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string CanonicalizeQueryText(std::string_view text) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  auto is_punct = [](char c) {
    return c == ',' || c == '(' || c == ')' || c == ':' || c == '=' ||
           c == '[' || c == ']' || c == '/';
  };
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (!is_space(text[i])) {
      out += text[i++];
      continue;
    }
    while (i < text.size() && is_space(text[i])) ++i;
    // A whitespace run survives (as one space) only between two
    // identifier characters; next to punctuation or at the ends the
    // parser ignores it.
    if (!out.empty() && !is_punct(out.back()) && i < text.size() &&
        !is_punct(text[i])) {
      out += ' ';
    }
  }
  return out;
}

}  // namespace xjoin
