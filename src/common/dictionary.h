// String dictionary: bijective mapping string <-> int64 code. All join
// columns in xjoin are dictionary codes, so heterogeneous sources
// (relational CSV values, XML text content) join by integer equality.
#ifndef XJOIN_COMMON_DICTIONARY_H_
#define XJOIN_COMMON_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace xjoin {

/// Dense code space: codes are assigned 0,1,2,... in first-seen order.
/// Codes only guarantee equality semantics across sources; their numeric
/// order is insertion order, which is a valid (arbitrary) total order for
/// trie-based joins.
///
/// Thread-safe: Intern takes a writer lock, the read paths share a
/// reader lock, so serving-core sessions can decode results while a
/// writer registers new data. Strings live in a deque — push_back never
/// relocates existing elements — so the reference Decode returns stays
/// valid for the dictionary's lifetime even across concurrent Interns.
class Dictionary {
 public:
  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  /// Movable (the lock lives behind a pointer) so Result<Dictionary>
  /// and the storage layer keep working; a moved-from dictionary must
  /// not be used.
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the code for `s`, inserting it if new.
  int64_t Intern(std::string_view s);

  /// Returns the code for `s` or -1 if absent. Does not insert.
  int64_t Lookup(std::string_view s) const;

  /// Returns the string for a code. Precondition: 0 <= code < size().
  /// The reference stays valid for the dictionary's lifetime.
  const std::string& Decode(int64_t code) const;

  /// Whether `code` is a valid interned code.
  bool Contains(int64_t code) const;

  int64_t size() const;

 private:
  mutable std::unique_ptr<std::shared_mutex> mu_ =
      std::make_unique<std::shared_mutex>();
  std::unordered_map<std::string, int64_t> index_;
  std::deque<std::string> strings_;
};

}  // namespace xjoin

#endif  // XJOIN_COMMON_DICTIONARY_H_
