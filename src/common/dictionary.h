// String dictionary: bijective mapping string <-> int64 code. All join
// columns in xjoin are dictionary codes, so heterogeneous sources
// (relational CSV values, XML text content) join by integer equality.
#ifndef XJOIN_COMMON_DICTIONARY_H_
#define XJOIN_COMMON_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xjoin {

/// Dense code space: codes are assigned 0,1,2,... in first-seen order.
/// Codes only guarantee equality semantics across sources; their numeric
/// order is insertion order, which is a valid (arbitrary) total order for
/// trie-based joins.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code for `s`, inserting it if new.
  int64_t Intern(std::string_view s);

  /// Returns the code for `s` or -1 if absent. Does not insert.
  int64_t Lookup(std::string_view s) const;

  /// Returns the string for a code. Precondition: 0 <= code < size().
  const std::string& Decode(int64_t code) const;

  /// Whether `code` is a valid interned code.
  bool Contains(int64_t code) const {
    return code >= 0 && static_cast<size_t>(code) < strings_.size();
  }

  int64_t size() const { return static_cast<int64_t>(strings_.size()); }

 private:
  std::unordered_map<std::string, int64_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace xjoin

#endif  // XJOIN_COMMON_DICTIONARY_H_
