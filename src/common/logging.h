// Minimal leveled logger plus CHECK/DCHECK macros in the style of
// Arrow's util/logging.h. Logging goes to stderr; CHECK failures abort.
#ifndef XJOIN_COMMON_LOGGING_H_
#define XJOIN_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace xjoin {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4
};

/// Process-wide minimum severity that is actually emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace xjoin

#define XJ_LOG(level)                                                     \
  ::xjoin::internal::LogMessage(::xjoin::LogLevel::k##level, __FILE__, __LINE__)

#define XJ_CHECK(cond)                                                       \
  if (!(cond))                                                               \
  ::xjoin::internal::LogMessage(::xjoin::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define XJ_CHECK_OK(expr)                                                    \
  do {                                                                       \
    ::xjoin::Status _xj_ck = (expr);                                         \
    XJ_CHECK(_xj_ck.ok()) << _xj_ck.ToString();                              \
  } while (false)

#ifdef NDEBUG
#define XJ_DCHECK(cond) XJ_CHECK(true || (cond))
#else
#define XJ_DCHECK(cond) XJ_CHECK(cond)
#endif

#endif  // XJOIN_COMMON_LOGGING_H_
