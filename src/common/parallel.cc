#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace xjoin {

int ParallelWorkerCount(int num_threads, size_t n, size_t grain) {
  if (num_threads <= 1 || n <= 1) return 1;
  if (grain == 0) grain = 1;
  size_t blocks = (n + grain - 1) / grain;
  size_t workers = std::min<size_t>(static_cast<size_t>(num_threads), blocks);
  return static_cast<int>(std::max<size_t>(workers, 1));
}

void ParallelForWorker(int num_threads, size_t n, size_t grain,
                       const std::function<void(int, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const int workers = ParallelWorkerCount(num_threads, n, grain);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }

  std::atomic<size_t> cursor{0};
  auto worker = [&](int w) {
    for (;;) {
      size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      size_t end = std::min(begin + grain, n);
      for (size_t i = begin; i < end; ++i) fn(w, i);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers) - 1);
  for (int t = 1; t < workers; ++t) threads.emplace_back(worker, t);
  worker(0);  // the calling thread is worker 0
  for (std::thread& t : threads) t.join();
}

void ParallelFor(int num_threads, size_t n, size_t grain,
                 const std::function<void(size_t)>& fn) {
  ParallelForWorker(num_threads, n, grain, [&fn](int, size_t i) { fn(i); });
}

}  // namespace xjoin
