#include "common/parallel.h"

#include "common/executor.h"

namespace xjoin {

void ParallelForWorker(int num_threads, size_t n, size_t grain,
                       const std::function<void(int, size_t)>& fn) {
  Executor::Default()->ParallelForWorker(num_threads, n, grain, fn);
}

void ParallelFor(int num_threads, size_t n, size_t grain,
                 const std::function<void(size_t)>& fn) {
  Executor::Default()->ParallelFor(num_threads, n, grain, fn);
}

}  // namespace xjoin
