// The shared morsel-driven executor pool: one set of long-lived worker
// threads serving every in-flight query, instead of each ParallelFor
// call spawning (and joining) its own std::threads. Callers submit an
// index space [0, n) cut into contiguous morsels of `grain` indices;
// the submitting thread always participates, and idle pool workers
// dynamically steal morsels off the job's atomic cursor until the space
// is drained. With N concurrent submitters the pool's workers spread
// across the active jobs, so N in-flight queries share the machine's
// cores rather than oversubscribing them N-fold.
//
// Scheduling is help-first and therefore deadlock-free: a submitter
// never blocks on anything another submitter holds — it drains its own
// morsels, and only waits (at the very end) for helpers that are
// already inside their final morsel. Nested submissions from inside a
// pool worker degrade gracefully to the same protocol.
//
// Determinism contract: which thread runs which morsel is unspecified,
// but every participant claims a distinct worker slot in
// [0, ParallelWorkerCount(max_parallelism, n, grain)), so per-slot
// scratch state (Metrics bags, shard outputs) never races and merges
// exactly — the same contract the old thread-spawning ParallelFor gave.
#ifndef XJOIN_COMMON_EXECUTOR_H_
#define XJOIN_COMMON_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace xjoin {

/// The number of participant slots a ParallelFor request can use:
/// min(max_parallelism, blocks of `grain` covering n), at least 1.
/// Callers size per-slot scratch state by this count.
int ParallelWorkerCount(int max_parallelism, size_t n, size_t grain);

/// A fixed pool of worker threads draining morsel jobs. Thread-safe:
/// any number of threads may submit concurrently; jobs are served
/// round-robin so no query starves another.
class Executor {
 public:
  /// Creates a pool with `num_threads` workers. 0 picks a default from
  /// std::thread::hardware_concurrency(), floored at 3 so the parallel
  /// paths stay genuinely concurrent even on tiny machines (a pool of
  /// 3 workers + the submitting thread covers num_threads=4 tests).
  explicit Executor(int num_threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Runs `fn(i)` for every i in [0, n). At most `max_parallelism`
  /// participants (the calling thread + stolen pool workers) run
  /// concurrently; work is handed out in contiguous morsels of `grain`
  /// indices via an atomic cursor. Degenerates to a plain inline loop
  /// when max_parallelism <= 1 or the space fits one morsel. Blocks
  /// until every index has run. `fn` must not throw.
  void ParallelFor(int max_parallelism, size_t n, size_t grain,
                   const std::function<void(size_t)>& fn);

  /// Like ParallelFor, but `fn` also receives the participant's slot
  /// index in [0, ParallelWorkerCount(max_parallelism, n, grain)) —
  /// distinct per concurrent participant, so per-slot scratch needs no
  /// synchronization.
  void ParallelForWorker(int max_parallelism, size_t n, size_t grain,
                         const std::function<void(int, size_t)>& fn);

  /// Pool width (worker threads, excluding submitters).
  int num_workers() const { return static_cast<int>(threads_.size()); }

  /// Observability: jobs submitted to the pool (inline-degenerate calls
  /// excluded) and morsels executed by pool workers (vs submitters) —
  /// "stolen" morsels in work-stealing terms.
  int64_t jobs_submitted() const {
    return jobs_submitted_.load(std::memory_order_relaxed);
  }
  int64_t morsels_stolen() const {
    return morsels_stolen_.load(std::memory_order_relaxed);
  }

  /// The process-wide shared pool (created on first use). Everything
  /// that does not carry an explicit Executor* — the free ParallelFor
  /// wrappers in common/parallel.h, engines with options.executor
  /// unset — runs here, which is what makes concurrent queries share
  /// one set of threads by default.
  static Executor* Default();

 private:
  struct Job {
    std::atomic<size_t> cursor{0};  // next unclaimed index
    size_t n = 0;
    size_t grain = 1;
    const std::function<void(int, size_t)>* fn = nullptr;
    std::atomic<int> next_slot{0};  // participant slot allocator
    int max_slots = 1;
    int active = 0;  // participants inside fn (guarded by mu_)
  };

  // Claims a slot and drains morsels until the cursor passes n.
  // Returns the number of morsels this participant ran, or -1 if the
  // job was already saturated (no slot left).
  static int64_t RunJob(Job* job);

  void WorkerLoop();
  // A job with an unclaimed slot and unclaimed work, or null.
  std::shared_ptr<Job> PickRunnableJobLocked();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: new job / stop
  std::condition_variable done_cv_;  // submitters: job drained
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> jobs_submitted_{0};
  std::atomic<int64_t> morsels_stolen_{0};
};

}  // namespace xjoin

#endif  // XJOIN_COMMON_EXECUTOR_H_
