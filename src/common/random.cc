#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace xjoin {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  XJ_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  XJ_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

std::string Rng::NextString(size_t length) {
  std::string out(length, 'a');
  for (auto& c : out) c = static_cast<char>('a' + NextBounded(26));
  return out;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  XJ_CHECK(n > 0) << "ZipfGenerator needs a positive domain";
  XJ_CHECK(theta >= 0.0) << "ZipfGenerator needs theta >= 0";
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = acc;
  }
  const double total = acc;
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

uint64_t ZipfGenerator::Next(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace xjoin
