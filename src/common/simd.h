#ifndef XJOIN_COMMON_SIMD_H_
#define XJOIN_COMMON_SIMD_H_

// Runtime CPU-feature detection and dispatch policy for the SIMD
// intersection kernels (relational/intersect_kernels.h).
//
// The dispatch ladder is scalar < SSE4.2 < AVX2 (SSE4.2 is the floor
// for vector work because PCMPGTQ — the 64-bit signed compare the
// kernels are built on — first appears there). The *effective* level
// is the minimum of three inputs:
//
//   1. what the CPU reports (`__builtin_cpu_supports`, cached once),
//   2. an optional `XJOIN_SIMD` environment cap ("scalar", "sse42",
//      "avx2"; unset means "no cap", and a malformed value logs a
//      warning then falls back to "no cap") read once at first use —
//      this is how CI forces the portable path on AVX2 hardware,
//   3. an optional programmatic override (SetSimdDispatchOverride),
//      which takes precedence over the environment cap but is still
//      clamped to the detected level so a test requesting AVX2 on an
//      SSE-only box can never steer execution toward illegal
//      instructions.
//
// Detection is pure policy: whether a kernel table for the chosen
// level was actually compiled into the binary is resolved separately
// by the kernel registry (the build may lack -mavx2 support), which
// walks down the ladder from ActiveSimdLevel() to the first available
// table.

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace xjoin {

enum class SimdLevel : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

inline const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse42:
      return "sse42";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

/// Parses a level name ("scalar", "sse42"/"sse4.2", "avx2"). Returns
/// false (leaving *out untouched) on anything else.
inline bool ParseSimdLevelName(const std::string& name, SimdLevel* out) {
  if (name == "scalar") {
    *out = SimdLevel::kScalar;
    return true;
  }
  if (name == "sse42" || name == "sse4.2") {
    *out = SimdLevel::kSse42;
    return true;
  }
  if (name == "avx2") {
    *out = SimdLevel::kAvx2;
    return true;
  }
  return false;
}

/// The highest level this CPU supports, probed once per process.
inline SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = [] {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
    if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse42;
#endif
    return SimdLevel::kScalar;
  }();
  return detected;
}

/// Resolves an XJOIN_SIMD-style cap value: null/empty means "no cap"
/// (kAvx2 — detection still clamps), a valid level name parses, and
/// anything else logs a warning and deterministically falls back to
/// "no cap" instead of being silently swallowed.
inline SimdLevel SimdCapFromEnvValue(const char* value) {
  if (value == nullptr || *value == '\0') return SimdLevel::kAvx2;
  SimdLevel parsed = SimdLevel::kAvx2;
  if (!ParseSimdLevelName(value, &parsed)) {
    XJ_LOG(Warning) << "ignoring malformed XJOIN_SIMD='" << value
                    << "' (want scalar|sse42|avx2); dispatch is uncapped";
  }
  return parsed;
}

namespace simd_internal {

// -1 = no programmatic override; otherwise a SimdLevel value.
inline std::atomic<int>& OverrideSlot() {
  static std::atomic<int> slot{-1};
  return slot;
}

// The XJOIN_SIMD environment cap, parsed once (malformed values warn
// and fall back to "no cap" — see SimdCapFromEnvValue).
inline SimdLevel EnvSimdCap() {
  static const SimdLevel cap = SimdCapFromEnvValue(std::getenv("XJOIN_SIMD"));
  return cap;
}

}  // namespace simd_internal

/// Test hook: pin the dispatch level (clamped to the detected one).
/// Takes precedence over the XJOIN_SIMD environment cap.
inline void SetSimdDispatchOverride(SimdLevel level) {
  simd_internal::OverrideSlot().store(static_cast<int>(level),
                                      std::memory_order_relaxed);
}

inline void ClearSimdDispatchOverride() {
  simd_internal::OverrideSlot().store(-1, std::memory_order_relaxed);
}

/// The dispatch level in effect right now:
/// min(override ?? env cap, detected).
inline SimdLevel ActiveSimdLevel() {
  int ov = simd_internal::OverrideSlot().load(std::memory_order_relaxed);
  SimdLevel requested =
      ov >= 0 ? static_cast<SimdLevel>(ov) : simd_internal::EnvSimdCap();
  SimdLevel detected = DetectedSimdLevel();
  return static_cast<int>(requested) < static_cast<int>(detected) ? requested
                                                                  : detected;
}

}  // namespace xjoin

#endif  // XJOIN_COMMON_SIMD_H_
