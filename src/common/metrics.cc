#include "common/metrics.h"

#include <sstream>

namespace xjoin {

std::string Metrics::ToString() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << name << "=" << value << "\n";
  }
  return out.str();
}

}  // namespace xjoin
