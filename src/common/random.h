// Deterministic pseudo-random generation for workload synthesis:
// a splitmix64/xoshiro-style engine plus uniform, Zipf, and sampling
// helpers. All generators are seeded explicitly so every experiment is
// reproducible bit-for-bit.
#ifndef XJOIN_COMMON_RANDOM_H_
#define XJOIN_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xjoin {

/// A small, fast, deterministic PRNG (xoshiro256** seeded via splitmix64).
/// Not cryptographic; intended for reproducible workload generation.
class Rng {
 public:
  /// Seeds the engine. Equal seeds yield identical streams on all platforms.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

 private:
  uint64_t state_[4];
};

/// Zipf-distributed integers over [0, n): rank r is drawn with probability
/// proportional to 1/(r+1)^theta. Uses a precomputed CDF with binary search,
/// so draws are O(log n) and exact for any theta >= 0 (theta == 0 is
/// uniform).
class ZipfGenerator {
 public:
  /// Builds the CDF. Precondition: n > 0, theta >= 0.
  ZipfGenerator(uint64_t n, double theta);

  /// Draws one rank in [0, n) using `rng`.
  uint64_t Next(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace xjoin

#endif  // XJOIN_COMMON_RANDOM_H_
