#include "common/executor.h"

#include <algorithm>

namespace xjoin {

int ParallelWorkerCount(int max_parallelism, size_t n, size_t grain) {
  if (max_parallelism <= 1 || n <= 1) return 1;
  if (grain == 0) grain = 1;
  size_t blocks = (n + grain - 1) / grain;
  size_t workers =
      std::min<size_t>(static_cast<size_t>(max_parallelism), blocks);
  return static_cast<int>(std::max<size_t>(workers, 1));
}

Executor::Executor(int num_threads) {
  if (num_threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    // Floor of 3: on 1-2 core dev machines a hardware-sized pool would
    // quietly serialize every parallel path (and their tests).
    num_threads = std::max(3, static_cast<int>(hw));
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int64_t Executor::RunJob(Job* job) {
  int slot = job->next_slot.fetch_add(1, std::memory_order_relaxed);
  if (slot >= job->max_slots) return -1;
  int64_t morsels = 0;
  for (;;) {
    size_t begin = job->cursor.fetch_add(job->grain, std::memory_order_relaxed);
    if (begin >= job->n) break;
    size_t end = std::min(begin + job->grain, job->n);
    for (size_t i = begin; i < end; ++i) (*job->fn)(slot, i);
    ++morsels;
  }
  return morsels;
}

std::shared_ptr<Executor::Job> Executor::PickRunnableJobLocked() {
  for (size_t k = 0; k < jobs_.size(); ++k) {
    // Round-robin: move the head job to the back so one long job does
    // not monopolize every worker while others queue behind it.
    std::shared_ptr<Job> job = jobs_.front();
    jobs_.pop_front();
    bool exhausted = job->cursor.load(std::memory_order_relaxed) >= job->n;
    bool saturated = job->next_slot.load(std::memory_order_relaxed) >=
                     job->max_slots;
    if (exhausted) continue;  // drop it; the submitter keeps its ref
    jobs_.push_back(job);
    if (!saturated) return job;
  }
  return nullptr;
}

void Executor::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::shared_ptr<Job> job;
    work_cv_.wait(lock, [&] {
      if (stop_) return true;
      job = PickRunnableJobLocked();
      return job != nullptr;
    });
    if (stop_) return;
    ++job->active;
    lock.unlock();
    int64_t morsels = RunJob(job.get());
    if (morsels > 0) {
      morsels_stolen_.fetch_add(morsels, std::memory_order_relaxed);
    }
    lock.lock();
    if (--job->active == 0) done_cv_.notify_all();
  }
}

void Executor::ParallelForWorker(int max_parallelism, size_t n, size_t grain,
                                 const std::function<void(int, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const int workers = ParallelWorkerCount(max_parallelism, n, grain);
  if (workers <= 1 || threads_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->n = n;
  job->grain = grain;
  job->fn = &fn;
  job->max_slots = workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
  }
  jobs_submitted_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_all();

  // Help-first: the submitter drains its own morsels alongside any
  // workers that picked the job up, then waits only for participants
  // already inside their final morsel.
  RunJob(job.get());

  std::unique_lock<std::mutex> lock(mu_);
  for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
    if (*it == job) {
      jobs_.erase(it);
      break;
    }
  }
  done_cv_.wait(lock, [&] { return job->active == 0; });
}

void Executor::ParallelFor(int max_parallelism, size_t n, size_t grain,
                           const std::function<void(size_t)>& fn) {
  ParallelForWorker(max_parallelism, n, grain,
                    [&fn](int, size_t i) { fn(i); });
}

Executor* Executor::Default() {
  static Executor* pool = new Executor();  // leaked: outlives exit-time users
  return pool;
}

}  // namespace xjoin
