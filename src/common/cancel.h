// Cooperative cancellation for the serving core. A CancellationToken is
// a shared atomic flag plus a reason string: one thread calls Cancel()
// (Session::Cancel, PreparedQuery::Cancel, or a caller-owned token in
// QueryOptions), and every engine loop polls cancelled() at the existing
// budget-check cadence — scalar leapfrog bindings, batched kernel
// blocks, final-validation rows, trie builds on cache miss, and tenant
// admission waits. A cancelled query unwinds promptly (within one
// budget-check interval per shard), discards its partial rows, and
// fails with a typed StatusCode::kCancelled.
//
// Tokens are plumbed into the engines as extra "cancel sources" on the
// query's shared BudgetTracker (common/budget.h): BudgetTracker::
// violated() — which every shard already polls each binding — also
// polls the attached tokens, so cancellation costs nothing on queries
// that carry no token and one relaxed load per source otherwise.
#ifndef XJOIN_COMMON_CANCEL_H_
#define XJOIN_COMMON_CANCEL_H_

#include <atomic>
#include <mutex>
#include <string>
#include <utility>

#include "common/status.h"

namespace xjoin {

/// A shared cancel flag. Thread-safe: any thread may Cancel() while
/// others poll cancelled(). Cancellation is sticky and first-call-wins
/// (the first reason is kept); it is never reset — cancel a *token* to
/// kill the queries observing it, then use a fresh token.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. The reason (optional) lands in the typed
  /// kCancelled Status every observing query fails with.
  void Cancel(std::string reason = std::string()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cancelled_.load(std::memory_order_relaxed)) return;  // first wins
      reason_ = std::move(reason);
    }
    // Release pairs with the acquire in status(): a poller that sees the
    // flag reads the reason written above.
    cancelled_.store(true, std::memory_order_release);
  }

  /// Whether cancellation has been requested. Relaxed load — engine
  /// loops poll this every binding.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// OK while live; the typed kCancelled Status (carrying the reason)
  /// once cancelled.
  Status status() const {
    if (!cancelled_.load(std::memory_order_acquire)) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    std::string msg = "query cancelled";
    if (!reason_.empty()) msg += ": " + reason_;
    msg += "; partial results are discarded";
    return Status::Cancelled(std::move(msg));
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::string reason_;  // guarded by mu_, written once before the flag
};

}  // namespace xjoin

#endif  // XJOIN_COMMON_CANCEL_H_
