// Status and Result<T>: Arrow/RocksDB-style error propagation without
// exceptions. All fallible public APIs in xjoin return one of these.
#ifndef XJOIN_COMMON_STATUS_H_
#define XJOIN_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace xjoin {

/// Machine-readable category of a failure.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIOError,
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
};

/// Human-readable name for a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Machine-readable retry context carried by admission/overload errors
/// (kResourceExhausted from tenant pools and the network front-end), so
/// clients back off on data instead of parsing the human message.
struct RetryInfo {
  /// Suggested wait before retrying; 0 = no specific suggestion.
  int64_t retry_after_micros = 0;
  /// Admission-queue depth observed when the error was raised; -1 when
  /// the error has no queue (e.g. a connection-ceiling rejection).
  int32_t queue_depth = -1;

  bool operator==(const RetryInfo& other) const {
    return retry_after_micros == other.retry_after_micros &&
           queue_depth == other.queue_depth;
  }
};

/// An error-or-success outcome. Cheap to move; success carries no
/// allocation. Inspect with ok()/code()/message().
class Status {
 public:
  /// Constructs a success status.
  Status() = default;

  /// Constructs a failure status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context + ": "` prepended to the
  /// message. No-op on success.
  Status WithContext(const std::string& context) const;

  /// Returns a copy of this status carrying machine-readable retry
  /// context (see RetryInfo). No-op on success.
  Status WithRetryInfo(RetryInfo info) const {
    Status out = *this;
    if (!out.ok()) out.retry_info_ = info;
    return out;
  }

  /// The structured retry context, if the producer attached one.
  const std::optional<RetryInfo>& retry_info() const { return retry_info_; }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_ &&
           retry_info_ == other.retry_info_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::optional<RetryInfo> retry_info_;
};

/// A value or an error. Like arrow::Result: construct from T or Status,
/// test with ok(), then take the value with ValueOrDie()/operator*.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status. Must not be OK.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; OK() when this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// The contained value. Precondition: ok().
  const T& ValueOrDie() const& { return std::get<T>(payload_); }
  T& ValueOrDie() & { return std::get<T>(payload_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// The value if ok, otherwise `fallback`.
  T ValueOr(T fallback) const {
    if (ok()) return ValueOrDie();
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a failed Status from the current function.
#define XJ_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::xjoin::Status _xj_st = (expr);           \
    if (!_xj_st.ok()) return _xj_st;           \
  } while (false)

#define XJ_CONCAT_IMPL(x, y) x##y
#define XJ_CONCAT(x, y) XJ_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on failure returns its Status, on
/// success assigns the value to `lhs` (which may be a declaration).
#define XJ_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  XJ_ASSIGN_OR_RETURN_IMPL(XJ_CONCAT(_xj_result_, __LINE__), lhs, rexpr)

#define XJ_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                             \
  if (!result.ok()) return result.status();          \
  lhs = std::move(result).ValueOrDie();

}  // namespace xjoin

#endif  // XJOIN_COMMON_STATUS_H_
