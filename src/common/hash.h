// Hash combinators shared by hash-join keys and memo tables.
#ifndef XJOIN_COMMON_HASH_H_
#define XJOIN_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace xjoin {

/// Mixes `value` into `seed` (boost::hash_combine-style with a 64-bit
/// golden-ratio constant and extra avalanche).
inline size_t HashCombine(size_t seed, size_t value) {
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

}  // namespace xjoin

#endif  // XJOIN_COMMON_HASH_H_
