// Hash combinators shared by hash-join keys, memo tables, and the
// database's cache-key fingerprints.
#ifndef XJOIN_COMMON_HASH_H_
#define XJOIN_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace xjoin {

/// Mixes `value` into `seed` (boost::hash_combine-style with a 64-bit
/// golden-ratio constant and extra avalanche).
inline size_t HashCombine(size_t seed, size_t value) {
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

/// Mixes a byte string into `seed`: FNV-1a over the bytes, then one
/// HashCombine so the string's position in a combinator chain matters.
inline size_t HashBytes(size_t seed, std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return HashCombine(seed, static_cast<size_t>(h));
}

/// Fixed-width (16-digit) lowercase-hex rendering of a hash, for
/// embedding fingerprints in string cache keys. Widened to 64 bits so
/// the rendering is identical on 32-bit size_t platforms.
inline std::string HashToHex(size_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace xjoin

#endif  // XJOIN_COMMON_HASH_H_
