// Per-query admission budgets for the serving core: row, byte, and
// wall-clock ceilings a caller attaches through QueryOptions. The
// engines charge materialized work against a shared BudgetTracker and
// abort every shard as soon as any ceiling is crossed; the query then
// fails with a typed Status (kResourceExhausted for rows/bytes,
// kDeadlineExceeded for time) and NO partial result is returned —
// budgets are guardrails against runaway queries, not LIMIT clauses.
//
// Semantics (also documented on QueryOptions):
//   max_rows / max_bytes  meter rows materialized at any stage — the
//       expansion output counts, not just the final projection — so a
//       query whose intermediate result explodes is stopped even if its
//       final answer would have been small. This is the resource guard.
//   deadline              an elapsed-wall-clock ceiling, checked at
//       query admission and then periodically (every few thousand
//       bindings) inside the expansion loop. This is the work guard.
#ifndef XJOIN_COMMON_BUDGET_H_
#define XJOIN_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace xjoin {

/// Thread-safe budget accounting shared by every shard of one query.
/// Default-constructed trackers have no limits and every charge is a
/// cheap relaxed no-op check.
class BudgetTracker {
 public:
  BudgetTracker() = default;

  /// Installs limits; 0 means unlimited for each. `deadline_micros` is
  /// relative to now.
  BudgetTracker(int64_t max_rows, int64_t max_bytes, int64_t deadline_micros)
      : max_rows_(max_rows), max_bytes_(max_bytes) {
    if (deadline_micros > 0) {
      has_deadline_ = true;
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(deadline_micros);
    }
  }

  bool limited() const {
    return max_rows_ > 0 || max_bytes_ > 0 || has_deadline_;
  }

  /// Charges `rows` newly materialized rows of `bytes` total size.
  /// Returns false once any budget is exceeded (sticky).
  bool ChargeRows(int64_t rows, int64_t bytes) {
    if (max_rows_ > 0 &&
        rows_.fetch_add(rows, std::memory_order_relaxed) + rows > max_rows_) {
      MarkViolation(kRowsExceeded);
    }
    if (max_bytes_ > 0 &&
        bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes >
            max_bytes_) {
      MarkViolation(kRowsExceeded);
    }
    return !violated();
  }

  /// Samples the clock against the deadline. Returns false once
  /// exceeded (sticky). Call sparingly (it reads steady_clock).
  bool CheckDeadline() {
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      MarkViolation(kDeadlineExceeded);
    }
    return !violated();
  }

  /// Whether any budget has been exceeded. Relaxed load — shards poll
  /// this every binding to abort early.
  bool violated() const {
    return violation_.load(std::memory_order_relaxed) != kNone;
  }

  /// OK, or the typed failure for the first budget crossed.
  Status status() const {
    switch (violation_.load(std::memory_order_relaxed)) {
      case kRowsExceeded:
        return Status::ResourceExhausted(
            "query exceeded its row/byte budget (max_rows=" +
            std::to_string(max_rows_) +
            ", max_bytes=" + std::to_string(max_bytes_) +
            "); partial results are discarded");
      case kDeadlineExceeded:
        return Status::DeadlineExceeded(
            "query exceeded its deadline; partial results are discarded");
      default:
        return Status::OK();
    }
  }

  int64_t rows_charged() const {
    return rows_.load(std::memory_order_relaxed);
  }
  int64_t bytes_charged() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  enum Violation : int { kNone = 0, kRowsExceeded = 1, kDeadlineExceeded = 2 };

  void MarkViolation(Violation v) {
    int expected = kNone;
    violation_.compare_exchange_strong(expected, v,
                                       std::memory_order_relaxed);
  }

  int64_t max_rows_ = 0;
  int64_t max_bytes_ = 0;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::atomic<int64_t> rows_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int> violation_{kNone};
};

}  // namespace xjoin

#endif  // XJOIN_COMMON_BUDGET_H_
