// Per-query admission budgets for the serving core: row, byte, and
// wall-clock ceilings a caller attaches through QueryOptions. The
// engines charge materialized work against a shared BudgetTracker and
// abort every shard as soon as any ceiling is crossed; the query then
// fails with a typed Status (kResourceExhausted for rows/bytes,
// kDeadlineExceeded for time) and NO partial result is returned —
// budgets are guardrails against runaway queries, not LIMIT clauses.
//
// The tracker is also the cancellation rendezvous: CancellationTokens
// (common/cancel.h) attach as "cancel sources", and the violated() poll
// every shard already performs each binding additionally observes them,
// turning a Cancel() from any thread into a typed kCancelled failure
// within one budget-check interval. Per-tenant aggregate in-flight
// ceilings (AggregateBudget, fed by TenantPool) layer on the same
// charge path.
//
// Semantics (also documented on QueryOptions):
//   max_rows / max_bytes  meter rows materialized at any stage — the
//       expansion output counts, not just the final projection — so a
//       query whose intermediate result explodes is stopped even if its
//       final answer would have been small. This is the resource guard.
//   deadline              an elapsed-wall-clock ceiling, checked at
//       query admission and then periodically (every few thousand
//       bindings) inside the expansion loop. This is the work guard.
#ifndef XJOIN_COMMON_BUDGET_H_
#define XJOIN_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/cancel.h"
#include "common/status.h"

namespace xjoin {

/// Aggregate in-flight row/byte ceilings shared by every concurrently
/// running query of one tenant pool. Queries charge through their own
/// BudgetTracker (AttachAggregate below) and release their charges when
/// they finish, so the ceilings bound the *sum* of live intermediate
/// results, not any single query. Thread-safe; 0 means unlimited.
class AggregateBudget {
 public:
  AggregateBudget(std::string label, int64_t max_rows, int64_t max_bytes)
      : label_(std::move(label)), max_rows_(max_rows), max_bytes_(max_bytes) {}

  enum Crossed { kNone = 0, kRows = 1, kBytes = 2 };

  /// Charges in-flight work; reports the first ceiling crossed (sticky
  /// decisions are the caller's — the charge itself always lands, and
  /// the matching Release keeps the accounting balanced).
  Crossed Charge(int64_t rows, int64_t bytes) {
    int64_t total_rows = rows_.fetch_add(rows, std::memory_order_relaxed) +
                         rows;
    int64_t total_bytes = bytes_.fetch_add(bytes, std::memory_order_relaxed) +
                          bytes;
    if (max_rows_ > 0 && total_rows > max_rows_) return kRows;
    if (max_bytes_ > 0 && total_bytes > max_bytes_) return kBytes;
    return kNone;
  }

  /// Returns a finished query's charges to the pool.
  void Release(int64_t rows, int64_t bytes) {
    rows_.fetch_sub(rows, std::memory_order_relaxed);
    bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t inflight_rows() const {
    return rows_.load(std::memory_order_relaxed);
  }
  int64_t inflight_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  int64_t max_rows() const { return max_rows_; }
  int64_t max_bytes() const { return max_bytes_; }
  /// Diagnostic name (the tenant pool), used in violation messages.
  const std::string& label() const { return label_; }

 private:
  const std::string label_;
  const int64_t max_rows_;
  const int64_t max_bytes_;
  std::atomic<int64_t> rows_{0};
  std::atomic<int64_t> bytes_{0};
};

/// Thread-safe budget accounting shared by every shard of one query.
/// Default-constructed trackers have no limits and every charge is a
/// cheap relaxed no-op check.
class BudgetTracker {
 public:
  BudgetTracker() = default;

  /// Installs limits; 0 means unlimited for each. `deadline_micros` is
  /// relative to now.
  BudgetTracker(int64_t max_rows, int64_t max_bytes, int64_t deadline_micros)
      : max_rows_(max_rows), max_bytes_(max_bytes) {
    if (deadline_micros > 0) {
      has_deadline_ = true;
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(deadline_micros);
    }
  }

  /// Whether the engines must charge work through this tracker: any
  /// finite limit, any attached cancel source, or a tenant aggregate.
  bool limited() const {
    return max_rows_ > 0 || max_bytes_ > 0 || has_deadline_ ||
           num_cancel_ > 0 || aggregate_ != nullptr;
  }

  /// Attaches a cancellation token this query observes (query-options
  /// token, session token, prepared-statement token). Idempotent per
  /// token; at most kMaxCancelSources distinct sources (extras are
  /// ignored — the plumbing never attaches more). NOT thread-safe:
  /// call during query setup, before any shard runs.
  void AddCancelSource(const CancellationToken* token) {
    if (token == nullptr) return;
    for (int i = 0; i < num_cancel_; ++i) {
      if (cancel_[i] == token) return;
    }
    if (num_cancel_ < kMaxCancelSources) cancel_[num_cancel_++] = token;
  }

  /// Whether any cancel source is attached (the engines count their
  /// cancellation polls only when one is).
  bool has_cancel() const { return num_cancel_ > 0; }

  /// Attaches the tenant pool's aggregate in-flight ceilings; every
  /// ChargeRows also charges the aggregate. NOT thread-safe: call
  /// during query setup. The caller owns the release (the admission
  /// slot returns rows_charged()/bytes_charged() when the query ends).
  void AttachAggregate(AggregateBudget* aggregate) {
    aggregate_ = aggregate;
  }

  /// Charges `rows` newly materialized rows of `bytes` total size.
  /// Returns false once any budget is exceeded (sticky).
  bool ChargeRows(int64_t rows, int64_t bytes) {
    int64_t total_rows =
        rows_.fetch_add(rows, std::memory_order_relaxed) + rows;
    int64_t total_bytes =
        bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (max_rows_ > 0 && total_rows > max_rows_) {
      MarkViolation(kRowsExceeded);
    }
    if (max_bytes_ > 0 && total_bytes > max_bytes_) {
      MarkViolation(kBytesExceeded);
    }
    if (aggregate_ != nullptr) {
      switch (aggregate_->Charge(rows, bytes)) {
        case AggregateBudget::kRows:
          MarkViolation(kTenantRowsExceeded);
          break;
        case AggregateBudget::kBytes:
          MarkViolation(kTenantBytesExceeded);
          break;
        case AggregateBudget::kNone:
          break;
      }
    }
    return !violated();
  }

  /// Samples the clock against the deadline. Returns false once
  /// exceeded (sticky). Call sparingly (it reads steady_clock).
  bool CheckDeadline() {
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      MarkViolation(kDeadlineExceeded);
    }
    return !violated();
  }

  /// Whether any budget has been exceeded or any attached token was
  /// cancelled. Relaxed loads — shards poll this every binding to abort
  /// early; a seen cancellation is latched as a sticky violation.
  bool violated() {
    if (violation_.load(std::memory_order_relaxed) != kNone) return true;
    for (int i = 0; i < num_cancel_; ++i) {
      if (cancel_[i]->cancelled()) {
        MarkViolation(kCancelled);
        return true;
      }
    }
    return false;
  }

  /// OK, or the typed failure naming the first limit actually crossed
  /// plus the totals charged when it tripped.
  Status status() const {
    switch (violation_.load(std::memory_order_relaxed)) {
      case kRowsExceeded:
        return Status::ResourceExhausted(
            "query exceeded max_rows=" + std::to_string(max_rows_) +
            " (charged " + ChargedTotals() +
            "); partial results are discarded");
      case kBytesExceeded:
        return Status::ResourceExhausted(
            "query exceeded max_bytes=" + std::to_string(max_bytes_) +
            " (charged " + ChargedTotals() +
            "); partial results are discarded");
      case kDeadlineExceeded:
        return Status::DeadlineExceeded(
            "query exceeded its deadline; partial results are discarded");
      case kCancelled:
        for (int i = 0; i < num_cancel_; ++i) {
          if (cancel_[i]->cancelled()) return cancel_[i]->status();
        }
        return Status::Cancelled(
            "query cancelled; partial results are discarded");
      case kTenantRowsExceeded:
        return Status::ResourceExhausted(
            "tenant pool '" + AggregateLabel() +
            "' exceeded its aggregate in-flight row ceiling (" +
            std::to_string(aggregate_ != nullptr ? aggregate_->max_rows()
                                                 : 0) +
            " rows across concurrent queries); partial results are "
            "discarded — retry when the pool drains");
      case kTenantBytesExceeded:
        return Status::ResourceExhausted(
            "tenant pool '" + AggregateLabel() +
            "' exceeded its aggregate in-flight byte ceiling (" +
            std::to_string(aggregate_ != nullptr ? aggregate_->max_bytes()
                                                 : 0) +
            " bytes across concurrent queries); partial results are "
            "discarded — retry when the pool drains");
      default:
        return Status::OK();
    }
  }

  int64_t rows_charged() const {
    return rows_.load(std::memory_order_relaxed);
  }
  int64_t bytes_charged() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  enum Violation : int {
    kNone = 0,
    kRowsExceeded = 1,
    kBytesExceeded = 2,
    kDeadlineExceeded = 3,
    kCancelled = 4,
    kTenantRowsExceeded = 5,
    kTenantBytesExceeded = 6,
  };

  static constexpr int kMaxCancelSources = 4;

  void MarkViolation(Violation v) {
    int expected = kNone;
    violation_.compare_exchange_strong(expected, v,
                                       std::memory_order_relaxed);
  }

  std::string ChargedTotals() const {
    return std::to_string(rows_charged()) + " rows, " +
           std::to_string(bytes_charged()) + " bytes";
  }

  std::string AggregateLabel() const {
    return aggregate_ != nullptr ? aggregate_->label() : std::string("?");
  }

  int64_t max_rows_ = 0;
  int64_t max_bytes_ = 0;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  // Cancel sources and the aggregate are set during query setup (before
  // any shard thread launches — the executor hand-off provides the
  // happens-before) and only read afterwards.
  const CancellationToken* cancel_[kMaxCancelSources] = {};
  int num_cancel_ = 0;
  AggregateBudget* aggregate_ = nullptr;
  std::atomic<int64_t> rows_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int> violation_{kNone};
};

}  // namespace xjoin

#endif  // XJOIN_COMMON_BUDGET_H_
