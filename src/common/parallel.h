// Minimal data-parallel driver for the sharded join paths. No task
// graph, no futures: callers hand over an index space and a parallelism
// budget, workers pull contiguous morsels off an atomic cursor. Since
// the serving-core refactor these free functions are thin wrappers over
// the process-wide Executor pool (common/executor.h): no call spawns
// threads of its own anymore, so concurrent queries share one fixed set
// of workers instead of oversubscribing the machine.
#ifndef XJOIN_COMMON_PARALLEL_H_
#define XJOIN_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/executor.h"

namespace xjoin {

/// Runs `fn(i)` for every i in [0, n), using at most `num_threads`
/// concurrent participants drawn from the shared Executor pool (the
/// calling thread always participates). Work is handed out in
/// contiguous blocks of `grain` indices via an atomic cursor, so uneven
/// per-index costs still balance.
///
/// Degenerates to a plain inline loop (no pool interaction, no locking)
/// when `num_threads <= 1` or when `n` fits in a single block — serial
/// callers pay nothing and behave deterministically.
///
/// `fn` must be safe to call concurrently from multiple threads whenever
/// more than one participant may run; indices are disjoint, so per-index
/// state needs no synchronization. Exceptions thrown by `fn` must not
/// escape it (the engines report failure through Status, not throw).
void ParallelFor(int num_threads, size_t n, size_t grain,
                 const std::function<void(size_t)>& fn);

/// Like ParallelFor, but `fn` also receives the participant slot index
/// in [0, ParallelWorkerCount(num_threads, n, grain)). Callers size
/// per-slot scratch state (e.g. Metrics bags) by that count, index it
/// race-free inside `fn`, and merge after the call returns — the
/// pattern the engines use to keep counters exact in parallel runs.
void ParallelForWorker(int num_threads, size_t n, size_t grain,
                       const std::function<void(int, size_t)>& fn);

// ParallelWorkerCount is declared in common/executor.h (included above):
// min(num_threads, blocks of `grain` covering n), at least 1.

}  // namespace xjoin

#endif  // XJOIN_COMMON_PARALLEL_H_
