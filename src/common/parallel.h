// Minimal data-parallel driver for the sharded join paths. No task
// graph, no futures: callers hand over an index space and a thread
// budget, workers pull contiguous blocks off an atomic cursor. This is
// deliberately the whole API — shards own their state, so the engines
// never need locks, only a way to run K independent jobs on N threads.
#ifndef XJOIN_COMMON_PARALLEL_H_
#define XJOIN_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace xjoin {

/// Runs `fn(i)` for every i in [0, n), using at most `num_threads` OS
/// threads. Work is handed out in contiguous blocks of `grain` indices
/// via an atomic cursor, so uneven per-index costs still balance.
///
/// Degenerates to a plain inline loop (no threads spawned, no locking)
/// when `num_threads <= 1`, when `n` fits in a single block, or when the
/// platform reports a single hardware thread — so serial callers pay
/// nothing and behave deterministically.
///
/// `fn` must be safe to call concurrently from multiple threads whenever
/// more than one worker may be spawned; indices are disjoint, so per-index
/// state needs no synchronization. Exceptions thrown by `fn` must not
/// escape it (the engines report failure through Status, not throw).
void ParallelFor(int num_threads, size_t n, size_t grain,
                 const std::function<void(size_t)>& fn);

/// Like ParallelFor, but `fn` also receives the worker index in
/// [0, ParallelWorkerCount(num_threads, n, grain)). Callers size
/// per-worker scratch state (e.g. Metrics bags) by that count, index it
/// race-free inside `fn`, and merge after the call returns — the
/// pattern the engines use to keep counters exact in parallel runs.
void ParallelForWorker(int num_threads, size_t n, size_t grain,
                       const std::function<void(int, size_t)>& fn);

/// The number of worker threads ParallelFor would actually use for the
/// given request: min(num_threads, blocks of `grain` covering n), at
/// least 1. Exposed so callers can size per-worker scratch state.
int ParallelWorkerCount(int num_threads, size_t n, size_t grain);

}  // namespace xjoin

#endif  // XJOIN_COMMON_PARALLEL_H_
