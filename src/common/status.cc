#include "common/status.h"

namespace xjoin {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  Status out(code_, context + ": " + message_);
  out.retry_info_ = retry_info_;  // context never strips retry data
  return out;
}

}  // namespace xjoin
