// Per-tenant admission control for the serving core. A TenantPool caps
// how many queries one tenant runs concurrently, queues the overflow in
// a bounded FIFO with a queue deadline, and (optionally) layers
// aggregate in-flight row/byte ceilings over every admitted query's
// BudgetTracker. Pools are registered on MultiModelDatabase and named
// by QueryOptions::tenant.
//
// Admission state machine for one query:
//
//            Admit()
//               |
//    slot free and no one waiting? ----yes----> RUNNING
//               | no                               |
//    queue at max_queue_depth? -----yes----> REJECTED (kResourceExhausted,
//               | no                         queue depth + retry context)
//               v
//            QUEUED  --(FIFO head + slot frees)--> RUNNING --Release()--> done
//               |                                      |
//               +--(queue deadline passes)--> REJECTED |
//               +--(token cancelled)--> CANCELLED <----+ (Cancel() mid-run)
//
// Saturated pools therefore degrade gracefully: callers get a typed,
// actionable error after a bounded wait instead of stampeding the
// shared executor.
#ifndef XJOIN_CORE_TENANT_H_
#define XJOIN_CORE_TENANT_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/budget.h"
#include "common/status.h"

namespace xjoin {

/// Configuration for one tenant's pool. All ceilings are per-pool, not
/// per-query (per-query limits stay in QueryOptions).
struct TenantPoolOptions {
  /// Queries of this tenant allowed to run at once (clamped to >= 1).
  int max_concurrent = 4;
  /// Queries allowed to wait for a slot; one more is rejected outright.
  /// 0 disables queueing (saturation rejects immediately).
  int max_queue_depth = 16;
  /// How long a queued query waits for a slot before a typed rejection.
  int64_t queue_deadline_micros = 100 * 1000;
  /// Aggregate ceilings on rows/bytes materialized by all concurrently
  /// running queries of this pool combined; 0 = unlimited. Enforced
  /// through each query's BudgetTracker (see AggregateBudget).
  int64_t max_inflight_rows = 0;
  int64_t max_inflight_bytes = 0;
};

/// Point-in-time counters for one pool (monotonic except running/
/// waiting/inflight_*, which are gauges).
struct TenantPoolStats {
  int64_t admitted = 0;   ///< queries that got a slot (incl. after queueing)
  int64_t queued = 0;     ///< queries that had to wait for a slot
  int64_t rejected = 0;   ///< queue-full, queue-deadline, or fault-forced
  int64_t cancelled = 0;  ///< cancelled while queued or while running
  int running = 0;
  int waiting = 0;
  int64_t inflight_rows = 0;
  int64_t inflight_bytes = 0;
};

/// One tenant's admission gate. Thread-safe; queries Admit() before
/// planning/execution and Release() exactly once per successful Admit.
class TenantPool {
 public:
  TenantPool(std::string name, TenantPoolOptions options);
  TenantPool(const TenantPool&) = delete;
  TenantPool& operator=(const TenantPool&) = delete;

  /// Blocks until this query holds a slot, FIFO among waiters. `budget`
  /// (optional) is polled while queued so an attached cancellation
  /// token or an already-expired query deadline aborts the wait
  /// promptly. Returns OK holding a slot; kResourceExhausted when the
  /// queue is full or the queue deadline passes; the budget's own typed
  /// status when it trips while waiting. `queued` (nullable) is set to
  /// whether the query had to wait for a slot.
  Status Admit(BudgetTracker* budget, bool* queued = nullptr);

  /// Returns the slot taken by a successful Admit().
  void Release();

  /// Records a query of this pool that finished with kCancelled.
  void NoteCancelled();

  /// The pool's aggregate in-flight ceilings, or nullptr when none are
  /// configured. Attach to each admitted query's BudgetTracker; release
  /// the query's charges when it finishes.
  AggregateBudget* aggregate() { return aggregate_.get(); }

  TenantPoolStats stats();

  const std::string& name() const { return name_; }
  const TenantPoolOptions& options() const { return options_; }

 private:
  int64_t RetryAfterMicros() const;
  /// Both rejection flavors carry machine-readable RetryInfo
  /// (retry-after suggestion + observed queue depth) on the Status, so
  /// network clients back off on data instead of the human message.
  Status QueueFullError(int depth);
  Status QueueTimeoutError(int depth);

  const std::string name_;
  const TenantPoolOptions options_;
  std::unique_ptr<AggregateBudget> aggregate_;  // null when unlimited

  std::mutex mu_;
  std::condition_variable cv_;
  int running_ = 0;                // guarded by mu_
  std::set<uint64_t> waiting_;     // FIFO: head = *begin(); guarded by mu_
  uint64_t next_ticket_ = 0;       // guarded by mu_
  int64_t admitted_ = 0;           // guarded by mu_
  int64_t queued_ = 0;             // guarded by mu_
  int64_t rejected_ = 0;           // guarded by mu_
  int64_t cancelled_ = 0;          // guarded by mu_
};

}  // namespace xjoin

#endif  // XJOIN_CORE_TENANT_H_
