// MultiModelDatabase: the convenience facade a downstream application
// uses — it owns the shared dictionary, registered relations (from CSV
// or tuples) and XML documents (parsed and indexed at registration),
// and evaluates textual multi-model queries:
//
//     Q(userID, ISBN, price) :=
//         R, invoices : invoice[orderID]/orderLine[ISBN]/price
//
// Grammar:
//     query   := [ head ":=" ] input ("," input)*
//     head    := NAME "(" attr ("," attr)* ")" | NAME "(*)"
//     input   := relation-name | document-name ":" twig-pattern
// Commas inside twig branch brackets do not split inputs. Without a
// head, the result contains every attribute.
#ifndef XJOIN_CORE_DATABASE_H_
#define XJOIN_CORE_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "common/dictionary.h"
#include "common/status.h"
#include "core/baseline.h"
#include "core/query.h"
#include "core/xjoin.h"
#include "relational/csv.h"
#include "relational/relation.h"
#include "xml/document.h"
#include "xml/node_index.h"

namespace xjoin {

/// Which engine evaluates a query.
enum class Engine {
  kXJoin,     ///< worst-case optimal (Algorithm 1)
  kBaseline,  ///< per-model evaluation + combine (Figure 3 baseline)
};

/// A parsed query bound to database storage. Valid as long as the
/// database outlives it and the referenced objects are not replaced.
struct PreparedQuery {
  MultiModelQuery query;
};

/// The facade. Not thread-safe for concurrent mutation; concurrent
/// const queries are safe (the internal trie cache is mutex-guarded).
class MultiModelDatabase {
 public:
  MultiModelDatabase() = default;

  /// The shared dictionary (useful for decoding result codes).
  const Dictionary& dictionary() const { return dict_; }
  Dictionary* mutable_dictionary() { return &dict_; }

  /// Registers a relation parsed from CSV text.
  Status RegisterRelationCsv(const std::string& name, std::string_view csv,
                             const CsvOptions& options = {});

  /// Registers an already-built relation (its codes must come from this
  /// database's dictionary).
  Status RegisterRelation(const std::string& name, Relation relation);

  /// Replaces an already-registered relation (NotFound otherwise). Bumps
  /// the relation's version and invalidates its cached tries, so later
  /// queries rebuild against the new contents.
  Status UpdateRelation(const std::string& name, Relation relation);

  /// Parses and registers an XML document under `name`.
  Status RegisterDocumentXml(const std::string& name, std::string_view xml,
                             ValuePolicy policy = ValuePolicy::kTextOrNodeId);

  /// Registers an already-parsed document.
  Status RegisterDocument(const std::string& name, XmlDocument doc,
                          ValuePolicy policy = ValuePolicy::kTextOrNodeId);

  /// Lookup; NotFound if missing.
  Result<const Relation*> relation(const std::string& name) const;
  Result<const NodeIndex*> document_index(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> RelationNames() const;
  std::vector<std::string> DocumentNames() const;

  /// Parses a textual query against the registered objects.
  Result<PreparedQuery> Prepare(const std::string& text) const;

  /// Prepares and evaluates in one step.
  Result<Relation> Query(const std::string& text,
                         Engine engine = Engine::kXJoin,
                         Metrics* metrics = nullptr) const;

  /// Prepares and evaluates with explicit XJoin options. Unless
  /// options.trie_provider is already set, the database wires in its
  /// trie cache: relation tries are built once per (relation, attribute
  /// order, relation version) and shared across queries, so repeated
  /// XJoin/bench queries stop rebuilding identical tries. Cache hits and
  /// misses are recorded on options.metrics ("db.trie_cache.hits" /
  /// "db.trie_cache.misses") and on the database-wide counters below.
  Result<Relation> QueryXJoin(const std::string& text,
                              XJoinOptions options) const;

  /// Explicit trie-cache invalidation hook: drops cached tries for
  /// `name` under every attribute order. UpdateRelation calls this
  /// automatically; call it yourself after mutating a relation through
  /// any other back door.
  void InvalidateTrieCache(const std::string& name);

  /// Drops every cached trie (all relations).
  void ClearTrieCache();

  /// Trie-cache observability (tests, ops).
  size_t TrieCacheSize() const;
  int64_t trie_cache_hits() const;
  int64_t trie_cache_misses() const;

  /// Monotonic per-relation version, bumped by UpdateRelation; part of
  /// the trie-cache key. NotFound for unknown relations.
  Result<uint64_t> relation_version(const std::string& name) const;

  /// Human-readable plan: inputs, twig decompositions, chosen attribute
  /// order, and the worst-case size bound.
  Result<std::string> Explain(const std::string& text) const;

 private:
  struct Document {
    std::unique_ptr<XmlDocument> doc;
    std::unique_ptr<NodeIndex> index;
  };

  struct RelationEntry {
    Relation relation;
    uint64_t version = 0;

    explicit RelationEntry(Relation rel) : relation(std::move(rel)) {}
  };

  // (relation name, relation version, attribute order joined with ',').
  using TrieCacheKey = std::tuple<std::string, uint64_t, std::string>;

  /// The TrieProvider XJoin calls: consult the cache, build and insert
  /// on miss (cache-miss builds use `num_threads` workers). Thread-safe
  /// against concurrent const queries.
  TrieProvider CacheTrieProvider(Metrics* metrics, int num_threads) const;

  Dictionary dict_;
  std::map<std::string, RelationEntry> relations_;
  std::map<std::string, Document> documents_;

  mutable std::mutex trie_cache_mu_;
  mutable std::map<TrieCacheKey, std::shared_ptr<const RelationTrie>>
      trie_cache_;
  mutable int64_t trie_cache_hits_ = 0;
  mutable int64_t trie_cache_misses_ = 0;
};

}  // namespace xjoin

#endif  // XJOIN_CORE_DATABASE_H_
