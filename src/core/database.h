// MultiModelDatabase: the serving core a downstream application talks
// to — it owns the shared dictionary, registered relations (from CSV
// or tuples) and XML documents (parsed and indexed at registration),
// and evaluates textual multi-model queries:
//
//     Q(userID, ISBN, price) :=
//         R, invoices : invoice[orderID]/orderLine[ISBN]/price
//
// Grammar:
//     query   := [ head ":=" ] input ("," input)*
//     head    := NAME "(" attr ("," attr)* ")" | NAME "(*)"
//     input   := relation-name | document-name ":" twig-pattern
// Commas inside twig branch brackets do not split inputs. Without a
// head, the result contains every attribute.
//
// Serving model (many concurrent callers):
//
//   Session session = db.OpenSession();
//   QueryOptions opts;
//   opts.max_rows = 100000;
//   opts.deadline_micros = 50000;
//   auto result = session.Query("Q(*) := R, invoices:invoice/orderID",
//                               opts);
//
// A Session captures a consistent snapshot of the database: the version
// of every relation and document plus shared_ptr pins on their storage.
// Every query through the session sees exactly that snapshot, no matter
// how many UpdateRelation / UpdateDocument calls land concurrently —
// writers replace registry entries copy-on-swap (the old storage stays
// alive while any session or cached plan pins it), so readers never
// block writers and never see a half-applied update. Queries on one
// session are safe to issue from multiple threads.
//
// The database is also a prepared-statement engine: Session::Query
// resolves the text to a cached XJoinPlan (key: canonical query text +
// options fingerprint, validated against the session's snapshot
// versions) and replays it with ExecutePlan, so repeated query shapes
// skip order selection, shard planning, and all trie builds. Relation
// tries and materialized path tries share one byte-budget LRU cache.
// Execution runs on the shared morsel-driven Executor pool, so N
// in-flight queries share cores instead of each spawning threads.
#ifndef XJOIN_CORE_DATABASE_H_
#define XJOIN_CORE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/cancel.h"
#include "common/dictionary.h"
#include "common/status.h"
#include "core/tenant.h"
#include "core/baseline.h"
#include "core/plan.h"
#include "core/query.h"
#include "core/xjoin.h"
#include "relational/csv.h"
#include "relational/relation.h"
#include "xml/document.h"
#include "xml/node_index.h"

namespace xjoin {

class MultiModelDatabase;

namespace internal {

/// The immutable payload behind a Session: every relation/document at
/// snapshot time, pinned via shared_ptr with its version. Shared
/// (shared_ptr) with plans and providers so a moved-from or destroyed
/// Session never invalidates an in-flight query. Internal — reach it
/// through Session.
struct SnapshotRelation {
  std::shared_ptr<const Relation> relation;
  uint64_t version = 0;
};
struct SnapshotDocument {
  std::shared_ptr<const XmlDocument> doc;
  std::shared_ptr<const NodeIndex> index;
  uint64_t version = 0;
};
struct DatabaseSnapshot {
  std::map<std::string, SnapshotRelation> relations;
  std::map<std::string, SnapshotDocument> documents;
};

}  // namespace internal

/// Which engine evaluates a query.
enum class Engine {
  kXJoin,     ///< worst-case optimal (Algorithm 1)
  kBaseline,  ///< per-model evaluation + combine (Figure 3 baseline)
};

/// The one options struct for every query entry point (replaces the old
/// Query(text, engine, metrics) vs QueryXJoin(text, XJoinOptions)
/// duality): engine choice, the full XJoin knob set, and per-query
/// admission budgets.
struct QueryOptions {
  /// Which engine evaluates the query. The budgets below apply to both;
  /// the XJoin engine enforces them mid-flight (it aborts expansion the
  /// moment a ceiling is crossed), the baseline engine post-hoc (each
  /// per-model stage completes, then the combined result is checked).
  Engine engine = Engine::kXJoin;
  /// XJoin execution knobs (order, sharding, batching, providers...).
  /// Ignored by the baseline engine. xjoin.metrics / xjoin.budget are
  /// overridden by the fields below when those are set.
  XJoinOptions xjoin;
  /// Admission budgets; 0 = unlimited. max_rows / max_bytes meter rows
  /// materialized at ANY stage — XJoin's expansion output counts even
  /// though validation may later discard most of it (they are resource
  /// guards, not a LIMIT clause). deadline_micros is relative to query
  /// start, checked at admission and sampled as work progresses. On
  /// violation the query returns Status kResourceExhausted /
  /// kDeadlineExceeded and partial results are discarded — a budgeted
  /// query either completes in full or returns no rows.
  int64_t max_rows = 0;
  int64_t max_bytes = 0;
  int64_t deadline_micros = 0;
  /// Optional caller-owned cancellation token (nullable). Another
  /// thread calling Cancel() on it makes this query fail with a typed
  /// kCancelled within one budget-check interval per shard, discarding
  /// partial rows. Session::Cancel / PreparedQuery::Cancel are
  /// shorthands that cancel a session- or statement-scoped token; this
  /// field scopes one to a single call. Never part of the plan-cache
  /// fingerprint.
  const CancellationToken* cancel = nullptr;
  /// Tenant pool this query is admitted through (empty = no admission
  /// control). Must name a pool created with CreateTenantPool;
  /// otherwise the query fails NotFound. A saturated pool queues the
  /// query (bounded FIFO, up to the pool's queue deadline) and then
  /// rejects it with a typed kResourceExhausted carrying queue-depth /
  /// retry context. Never part of the plan-cache fingerprint.
  std::string tenant;
  /// Nullable counters (same counter names as before: "gj.*",
  /// "xjoin.*", "db.*"). Wired into xjoin.metrics when that is null.
  Metrics* metrics = nullptr;
};

/// A prepared statement: a pinned, immutable execution plan plus the
/// parsed query embedded in it. Obtained from Session::Prepare (or the
/// deprecated MultiModelDatabase::Prepare) and replayed with
/// Session::Execute. The plan pins its snapshot storage and tries via
/// shared_ptr, so it stays executable — against the data it was
/// prepared on — even after updates replace the registry entries or the
/// caches evict.
struct PreparedQuery {
  std::shared_ptr<const XJoinPlan> plan;

  /// Statement-scoped cancel flag: every Execute of this prepared
  /// statement (from any session, any thread) observes it. Copies of
  /// the PreparedQuery share the token. Sticky — once cancelled, make a
  /// fresh statement to run again.
  std::shared_ptr<CancellationToken> cancel =
      std::make_shared<CancellationToken>();

  /// Cancels every in-flight (and future) Execute of this statement.
  void Cancel(std::string reason = std::string()) const {
    cancel->Cancel(std::move(reason));
  }

  /// The parsed query (relations + twigs + output attributes).
  const MultiModelQuery& query() const { return plan->query; }
};

/// A consistent read snapshot of the database. Cheap to open (copies a
/// name -> {pin, version} map under a shared lock), cheap to destroy
/// (drops the pins). Movable, not copyable; safe to query from multiple
/// threads concurrently. The database must outlive its sessions.
class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses, plans (through the plan cache when the cached plan matches
  /// this snapshot), and evaluates the query.
  Result<Relation> Query(const std::string& text,
                         const QueryOptions& options = {}) const;

  /// Prepares a reusable statement against this snapshot.
  Result<PreparedQuery> Prepare(const std::string& text,
                                const QueryOptions& options = {}) const;

  /// Replays a prepared statement. `prepared` may come from another
  /// session; it executes against the snapshot it was prepared on.
  Result<Relation> Execute(const PreparedQuery& prepared,
                           const QueryOptions& options = {}) const;

  /// Renders the (cached) execution plan for the query as text.
  Result<std::string> Explain(const std::string& text,
                              const QueryOptions& options = {}) const;

  /// Cancels every query currently running (or later issued) through
  /// this session, from any thread: they fail with a typed kCancelled
  /// within one budget-check interval per shard and discard partial
  /// rows. Sticky — open a fresh session to query again.
  void Cancel(std::string reason = std::string()) const {
    cancel_->Cancel(std::move(reason));
  }

  /// Snapshot introspection: names and versions as of OpenSession.
  std::vector<std::string> RelationNames() const;
  std::vector<std::string> DocumentNames() const;
  Result<uint64_t> relation_version(const std::string& name) const;
  Result<uint64_t> document_version(const std::string& name) const;

 private:
  friend class MultiModelDatabase;

  Session(const MultiModelDatabase* db,
          std::shared_ptr<const internal::DatabaseSnapshot> snap)
      : db_(db),
        snap_(std::move(snap)),
        cancel_(std::make_shared<CancellationToken>()) {}

  const MultiModelDatabase* db_;
  std::shared_ptr<const internal::DatabaseSnapshot> snap_;
  // Shared with in-flight queries so a moved-from Session never leaves
  // a dangling token behind.
  std::shared_ptr<CancellationToken> cancel_;
};

/// One atomically consistent reading of every cache counter — a single
/// call where the nine legacy per-counter getters each took (and
/// released) a lock, so two counters could straddle an intervening
/// query. Trie and plan sections are each internally consistent.
struct CacheStats {
  // Trie cache (relation + materialized path tries, shared LRU).
  size_t trie_entries = 0;
  size_t trie_bytes = 0;
  size_t trie_budget = 0;
  int64_t trie_hits = 0;
  int64_t trie_misses = 0;
  int64_t trie_evictions = 0;
  /// Cached tries delta-patched in place of a rebuild by
  /// ApplyRelationDelta (copy-on-swap, re-keyed to the new version).
  int64_t trie_patches = 0;
  /// Patches whose merged delta crossed the compaction threshold and
  /// folded into fresh level arrays.
  int64_t trie_compactions = 0;
  // Plan cache.
  size_t plan_entries = 0;
  size_t plan_capacity = 0;
  int64_t plan_hits = 0;
  int64_t plan_misses = 0;
  int64_t plan_invalidations = 0;
  int64_t plan_evictions = 0;
  /// Cached plans re-pinned to new trie versions at hit time (same
  /// query shape, sources version-bumped by ApplyRelationDelta) instead
  /// of being re-planned from scratch.
  int64_t plan_rebinds = 0;
  // Admission (all queries; tenant-pool and pool-less combined —
  // removed pools' history is retained).
  int64_t admission_admitted = 0;   ///< queries that got to run
  int64_t admission_queued = 0;     ///< waited in a tenant pool's queue
  int64_t admission_rejected = 0;   ///< queue-full / queue-deadline
  int64_t admission_cancelled = 0;  ///< finished with kCancelled
};

/// A single-batch logical update to a registered relation, applied by
/// MultiModelDatabase::ApplyRelationDelta. Tuples are in the relation's
/// schema order; deletes apply before inserts (so a tuple in both lists
/// ends up present), deleting an absent tuple and inserting a present
/// one are no-ops, and replaying the same batch is idempotent.
struct RelationDelta {
  std::vector<Tuple> inserts;
  std::vector<Tuple> deletes;
};

/// The serving core. Registration/update calls are serialized against
/// each other by an internal writer lock; queries (through sessions or
/// the deprecated direct entry points) run concurrently with each other
/// and with writers.
class MultiModelDatabase {
 public:
  MultiModelDatabase() = default;

  /// The shared dictionary (useful for decoding result codes).
  /// Thread-safe: Intern/Decode synchronize internally.
  const Dictionary& dictionary() const { return dict_; }
  Dictionary* mutable_dictionary() { return &dict_; }

  /// Opens a consistent read snapshot: every relation and document at
  /// its current version, pinned so concurrent updates cannot free the
  /// storage under the session's queries.
  Session OpenSession() const;

  /// Registers a relation parsed from CSV text.
  Status RegisterRelationCsv(const std::string& name, std::string_view csv,
                             const CsvOptions& options = {});

  /// Registers an already-built relation (its codes must come from this
  /// database's dictionary).
  Status RegisterRelation(const std::string& name, Relation relation);

  /// Replaces an already-registered relation (NotFound otherwise),
  /// copy-on-swap: the new contents are published under the writer
  /// lock, the version is bumped, and the relation's cached tries and
  /// dependent cached plans are dropped. Sessions opened before the
  /// update keep reading the old storage (their pins keep it alive);
  /// sessions opened after see the new contents.
  Status UpdateRelation(const std::string& name, Relation relation);

  /// The incremental-write path: applies a small batch of tuple inserts
  /// and deletes to an already-registered relation (NotFound otherwise)
  /// WITHOUT invalidating dependent state. The relation storage is
  /// copy-on-swapped (set semantics — see RelationDelta) and the
  /// version bumped as with UpdateRelation, but every cached trie over
  /// the relation is delta-patched in place of a rebuild
  /// (RelationTrie::ApplyDelta — a new trie object sharing the base
  /// level arrays, re-keyed under the new version) and cached plans are
  /// left to re-pin the patched tries at hit time (plan rebind) instead
  /// of being dropped. Sessions opened before the call keep their
  /// snapshot — the old storage and tries stay pinned; compaction never
  /// mutates a trie in place, so even mid-compaction snapshots stay
  /// byte-stable.
  Status ApplyRelationDelta(const std::string& name,
                            const RelationDelta& delta);

  /// Tunes when ApplyRelationDelta folds a trie's accumulated delta
  /// side-file into fresh level arrays: compaction triggers once
  /// pending rows exceed max(min_rows, ratio * base rows). (0.0, 0)
  /// compacts on every delta; a huge ratio never compacts. Default
  /// (0.25, 64).
  void SetTrieDeltaCompaction(double ratio, size_t min_rows);

  /// Parses and registers an XML document under `name`.
  Status RegisterDocumentXml(const std::string& name, std::string_view xml,
                             ValuePolicy policy = ValuePolicy::kTextOrNodeId);

  /// Registers an already-parsed document.
  Status RegisterDocument(const std::string& name, XmlDocument doc,
                          ValuePolicy policy = ValuePolicy::kTextOrNodeId);

  /// Replaces an already-registered document (NotFound otherwise),
  /// mirroring UpdateRelation's copy-on-swap contract.
  Status UpdateDocumentXml(const std::string& name, std::string_view xml,
                           ValuePolicy policy = ValuePolicy::kTextOrNodeId);
  Status UpdateDocument(const std::string& name, XmlDocument doc,
                        ValuePolicy policy = ValuePolicy::kTextOrNodeId);

  /// Lookup; NotFound if missing. The pointer is valid until the next
  /// Update of the same name — prefer OpenSession(), whose pins make
  /// the storage immortal for the session's lifetime.
  Result<const Relation*> relation(const std::string& name) const;
  Result<const NodeIndex*> document_index(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> RelationNames() const;
  std::vector<std::string> DocumentNames() const;

  /// Registers a tenant admission pool (AlreadyExists if the name is
  /// taken). Queries opt in with QueryOptions::tenant; see TenantPool
  /// for the admission state machine.
  Status CreateTenantPool(const std::string& name,
                          const TenantPoolOptions& options = {});

  /// Unregisters a pool (NotFound otherwise). In-flight queries
  /// admitted through it finish normally (the pool object is shared);
  /// its admission history folds into cache_stats(). New queries naming
  /// it fail NotFound.
  Status RemoveTenantPool(const std::string& name);

  /// Point-in-time admission counters for one pool; NotFound if absent.
  Result<TenantPoolStats> tenant_pool_stats(const std::string& name) const;

  /// Registered pool names, sorted.
  std::vector<std::string> TenantPoolNames() const;

  /// Unified one-shot entry point: OpenSession() + Session::Query.
  /// (No-options calls resolve to the deprecated overload below.)
  Result<Relation> Query(const std::string& text,
                         const QueryOptions& options) const;

  // --- deprecated one-shot API (thin wrappers over a throwaway
  //     session; see the README migration table). Kept so existing
  //     callers compile; new code should use OpenSession(). ---

  /// Deprecated: use Query(text, QueryOptions) or Session::Query.
  Result<Relation> Query(const std::string& text,
                         Engine engine = Engine::kXJoin,
                         Metrics* metrics = nullptr) const;

  /// Deprecated: use Query(text, QueryOptions) with options.xjoin.
  Result<Relation> QueryXJoin(const std::string& text,
                              XJoinOptions options) const;

  /// Deprecated: use Session::Prepare (the returned PreparedQuery is
  /// the same pinned-plan type).
  Result<PreparedQuery> Prepare(const std::string& text) const;

  /// Deprecated: use Session::Prepare and PreparedQuery::plan.
  Result<std::shared_ptr<const XJoinPlan>> PreparePlan(
      const std::string& text, const XJoinOptions& options = {}) const;

  /// Deprecated: use Session::Explain.
  Result<std::string> ExplainXJoin(const std::string& text,
                                   const XJoinOptions& options = {}) const;
  Result<std::string> Explain(const std::string& text) const;

  /// Explicit trie-cache invalidation hook: drops cached relation tries
  /// for relation `name` (every attribute order) or cached path tries
  /// for document `name`. UpdateRelation / UpdateDocument call this
  /// automatically; call it yourself after mutating storage through any
  /// other back door.
  void InvalidateTrieCache(const std::string& name);

  /// Drops every cached trie (all relations and documents). Sessions
  /// and prepared statements keep their pinned tries.
  void ClearTrieCache();

  /// Caps the total ByteSizeEstimate() of cached tries (relation and
  /// path tries combined). Least-recently-used entries are evicted on
  /// insert once the budget is exceeded; a trie larger than the whole
  /// budget is served uncached. Default 256 MiB. Setting a smaller
  /// budget evicts immediately.
  void SetTrieCacheBudget(size_t bytes);
  size_t trie_cache_budget() const;

  /// Caps the number of cached plans, LRU-evicted on insert (default
  /// 256). This bounds total pinned-trie memory too: every cached plan
  /// pins its tries via shared_ptr, past trie-cache eviction — the trie
  /// byte budget bounds the *cache*, the plan capacity bounds the
  /// *pins*. Setting a smaller capacity evicts immediately; 0 disables
  /// plan caching.
  void SetPlanCacheCapacity(size_t max_plans);
  size_t plan_cache_capacity() const;

  /// Plan-cache maintenance.
  void ClearPlanCache();

  /// One atomically consistent snapshot of every cache counter.
  CacheStats cache_stats() const;

  // --- deprecated per-counter getters: thin wrappers over
  //     cache_stats(), one lock round-trip each. Kept so existing
  //     callers compile; new code should take one cache_stats() and
  //     read fields off it. ---
  size_t TrieCacheSize() const { return cache_stats().trie_entries; }
  size_t trie_cache_bytes() const { return cache_stats().trie_bytes; }
  int64_t trie_cache_hits() const { return cache_stats().trie_hits; }
  int64_t trie_cache_misses() const { return cache_stats().trie_misses; }
  int64_t trie_cache_evictions() const {
    return cache_stats().trie_evictions;
  }
  size_t PlanCacheSize() const { return cache_stats().plan_entries; }
  int64_t plan_cache_hits() const { return cache_stats().plan_hits; }
  int64_t plan_cache_misses() const { return cache_stats().plan_misses; }
  int64_t plan_cache_invalidations() const {
    return cache_stats().plan_invalidations;
  }
  int64_t plan_cache_evictions() const {
    return cache_stats().plan_evictions;
  }

  /// Monotonic per-relation / per-document versions, bumped by
  /// UpdateRelation / UpdateDocument; part of the trie- and plan-cache
  /// keys. NotFound for unknown names. These read the *current*
  /// registry; Session has the snapshot-relative equivalents.
  Result<uint64_t> relation_version(const std::string& name) const;
  Result<uint64_t> document_version(const std::string& name) const;

 private:
  friend class Session;

  struct DocumentEntry {
    std::shared_ptr<const XmlDocument> doc;
    std::shared_ptr<const NodeIndex> index;
    uint64_t version = 0;
  };

  struct RelationEntry {
    std::shared_ptr<const Relation> relation;
    uint64_t version = 0;
  };

  /// One cached trie (relation or materialized path), on the shared
  /// byte-budget LRU list. `owner` is the relation or document name,
  /// for invalidation.
  struct TrieCacheEntry {
    std::string key;
    std::string owner;
    size_t bytes = 0;
    std::shared_ptr<const RelationTrie> trie;
  };

  /// Copies the registry into an immutable snapshot under the shared
  /// registry lock.
  std::shared_ptr<const internal::DatabaseSnapshot> TakeSnapshot() const;

  /// Parses `text` binding inputs against `snap` (raw pointers into the
  /// snapshot's pinned storage).
  Result<MultiModelQuery> ParseQuery(
      const std::string& text, const internal::DatabaseSnapshot& snap) const;

  /// The snapshot-aware planning path behind every entry point: plan
  /// cache lookup validated against the snapshot's versions, private
  /// prepare on miss, insert only when the snapshot is still current
  /// (an old session builds privately rather than poisoning the cache
  /// for new sessions, and never drops an entry that is valid for the
  /// current registry).
  Result<std::shared_ptr<const XJoinPlan>> PreparePlanSnapshot(
      const std::string& text, const XJoinOptions& options,
      const std::shared_ptr<const internal::DatabaseSnapshot>& snap) const;

  /// The unified execution path behind Session::Query / Execute:
  /// tenant admission, budget + cancel-source construction, engine
  /// dispatch, typed budget Statuses. `session_cancel` /
  /// `prepared_cancel` (nullable) are the session- and statement-scoped
  /// tokens attached alongside options.cancel.
  Result<Relation> RunQuery(
      const std::string& text, const QueryOptions& options,
      const std::shared_ptr<const internal::DatabaseSnapshot>& snap,
      const CancellationToken* session_cancel) const;
  Result<Relation> RunPlan(const XJoinPlan& plan, const QueryOptions& options,
                           const CancellationToken* session_cancel,
                           const CancellationToken* prepared_cancel) const;

  /// Resolves QueryOptions::tenant to its pool (nullptr when the field
  /// is empty; NotFound when it names no registered pool).
  Result<std::shared_ptr<TenantPool>> ResolveTenant(
      const std::string& tenant) const;

  /// The TrieProvider XJoin consults for relation tries: cache lookup,
  /// build and insert on miss (cache-miss builds use `num_threads`
  /// workers). Thread-safe against concurrent queries; identity and
  /// versions come from the captured snapshot. `cancel` (nullable)
  /// aborts before a cold build.
  TrieProvider CacheTrieProvider(
      std::shared_ptr<const internal::DatabaseSnapshot> snap, Metrics* metrics,
      int num_threads, const CancellationToken* cancel) const;

  /// Likewise for materialized path tries (materialize_paths queries).
  PathTrieProvider CachePathTrieProvider(
      std::shared_ptr<const internal::DatabaseSnapshot> snap, Metrics* metrics,
      int num_threads, const CancellationToken* cancel) const;

  /// Shared LRU plumbing (callers hold trie_cache_mu_; const because
  /// the providers run on the const query path — all touched state is
  /// mutable).
  std::shared_ptr<const RelationTrie> TrieCacheLookupLocked(
      const std::string& key) const;
  void TrieCacheInsertLocked(std::string key, std::string owner,
                             std::shared_ptr<const RelationTrie> trie) const;

  /// Drops cached plans whose sources include `name`.
  void InvalidatePlans(const std::string& name);

  /// Attaches snapshot versions, storage pins, and the cache key to a
  /// freshly prepared (or rebound) plan.
  void AttachSnapshotSources(
      XJoinPlan* plan, const internal::DatabaseSnapshot& snap,
      std::string key) const;

  /// Whether every source of `plan` matches the current registry
  /// version (callers must NOT hold registry_mu_).
  bool PlanMatchesRegistry(const XJoinPlan& plan) const;

  Dictionary dict_;

  /// Serializes writers (UpdateRelation / UpdateDocument /
  /// ApplyRelationDelta): the delta path is a read-modify-write of the
  /// registry entry plus every cached trie derived from it, so two
  /// writers must not interleave. Outermost in the lock order:
  /// update_mu_ -> registry_mu_ -> (released) -> cache mutexes; readers
  /// never take it.
  mutable std::mutex update_mu_;
  double trie_delta_ratio_ = 0.25;     // guarded by update_mu_
  size_t trie_delta_min_rows_ = 64;    // guarded by update_mu_

  /// The registry. Readers (sessions, lookups) take registry_mu_
  /// shared; Register*/Update* take it exclusive, swap the shared_ptr
  /// payload, and bump the version — old payloads stay alive while any
  /// session, plan, or in-flight query pins them. Lock order: never
  /// acquire a cache mutex while holding registry_mu_ (Update* swaps
  /// under the lock, releases it, then invalidates the caches; the
  /// plan-cache path may take registry_mu_ shared while holding
  /// plan_cache_mu_).
  mutable std::shared_mutex registry_mu_;
  std::map<std::string, RelationEntry> relations_;
  std::map<std::string, DocumentEntry> documents_;

  mutable std::mutex trie_cache_mu_;
  // Front = most recently used. The index maps cache key -> list node.
  mutable std::list<TrieCacheEntry> trie_lru_;
  mutable std::map<std::string, std::list<TrieCacheEntry>::iterator>
      trie_index_;
  mutable size_t trie_cache_bytes_ = 0;
  size_t trie_cache_budget_ = 256u << 20;  // 256 MiB
  mutable int64_t trie_cache_hits_ = 0;
  mutable int64_t trie_cache_misses_ = 0;
  mutable int64_t trie_cache_evictions_ = 0;
  mutable int64_t trie_cache_patches_ = 0;
  mutable int64_t trie_cache_compactions_ = 0;

  struct PlanCacheEntry {
    std::shared_ptr<const XJoinPlan> plan;
    std::list<std::string>::iterator lru;  // position in plan_lru_
  };

  mutable std::mutex plan_cache_mu_;
  // Front = most recently used key.
  mutable std::list<std::string> plan_lru_;
  mutable std::map<std::string, PlanCacheEntry> plan_cache_;
  size_t plan_cache_capacity_ = 256;
  mutable int64_t plan_cache_hits_ = 0;
  mutable int64_t plan_cache_misses_ = 0;
  mutable int64_t plan_cache_invalidations_ = 0;
  mutable int64_t plan_cache_evictions_ = 0;
  mutable int64_t plan_cache_rebinds_ = 0;

  /// Tenant admission pools. Pools are shared_ptr so an in-flight query
  /// keeps its pool alive across RemoveTenantPool. `tenant_retired_`
  /// accumulates the monotonic counters of removed pools so the
  /// db-wide admission totals never go backwards. Leaf in the lock
  /// order (never held while acquiring another mutex).
  mutable std::mutex tenant_mu_;
  std::map<std::string, std::shared_ptr<TenantPool>> tenant_pools_;
  TenantPoolStats tenant_retired_;  // guarded by tenant_mu_
  /// Admission accounting for queries outside any tenant pool, plus
  /// cancellations (which a pool-less query can also hit).
  mutable std::atomic<int64_t> untenanted_admitted_{0};
  mutable std::atomic<int64_t> untenanted_cancelled_{0};
};

}  // namespace xjoin

#endif  // XJOIN_CORE_DATABASE_H_
