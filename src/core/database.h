// MultiModelDatabase: the convenience facade a downstream application
// uses — it owns the shared dictionary, registered relations (from CSV
// or tuples) and XML documents (parsed and indexed at registration),
// and evaluates textual multi-model queries:
//
//     Q(userID, ISBN, price) :=
//         R, invoices : invoice[orderID]/orderLine[ISBN]/price
//
// Grammar:
//     query   := [ head ":=" ] input ("," input)*
//     head    := NAME "(" attr ("," attr)* ")" | NAME "(*)"
//     input   := relation-name | document-name ":" twig-pattern
// Commas inside twig branch brackets do not split inputs. Without a
// head, the result contains every attribute.
//
// The database is a prepared-statement engine: QueryXJoin resolves the
// text to a cached XJoinPlan (key: canonical query text + options
// fingerprint, re-validated against input versions on every hit) and
// replays it with ExecutePlan, so repeated query shapes skip order
// selection, shard planning, and all trie builds. Relation tries and
// materialized path tries share one byte-budget LRU cache invalidated
// by UpdateRelation / UpdateDocument version bumps.
#ifndef XJOIN_CORE_DATABASE_H_
#define XJOIN_CORE_DATABASE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/dictionary.h"
#include "common/status.h"
#include "core/baseline.h"
#include "core/plan.h"
#include "core/query.h"
#include "core/xjoin.h"
#include "relational/csv.h"
#include "relational/relation.h"
#include "xml/document.h"
#include "xml/node_index.h"

namespace xjoin {

/// Which engine evaluates a query.
enum class Engine {
  kXJoin,     ///< worst-case optimal (Algorithm 1)
  kBaseline,  ///< per-model evaluation + combine (Figure 3 baseline)
};

/// A parsed query bound to database storage. Valid as long as the
/// database outlives it and the referenced objects are not replaced.
struct PreparedQuery {
  MultiModelQuery query;
};

/// The facade. Not thread-safe for concurrent mutation; concurrent
/// const queries are safe (the internal caches are mutex-guarded).
class MultiModelDatabase {
 public:
  MultiModelDatabase() = default;

  /// The shared dictionary (useful for decoding result codes).
  const Dictionary& dictionary() const { return dict_; }
  Dictionary* mutable_dictionary() { return &dict_; }

  /// Registers a relation parsed from CSV text.
  Status RegisterRelationCsv(const std::string& name, std::string_view csv,
                             const CsvOptions& options = {});

  /// Registers an already-built relation (its codes must come from this
  /// database's dictionary).
  Status RegisterRelation(const std::string& name, Relation relation);

  /// Replaces an already-registered relation (NotFound otherwise). Bumps
  /// the relation's version, invalidates its cached tries, and drops
  /// cached plans that read it, so later queries re-prepare against the
  /// new contents.
  Status UpdateRelation(const std::string& name, Relation relation);

  /// Parses and registers an XML document under `name`.
  Status RegisterDocumentXml(const std::string& name, std::string_view xml,
                             ValuePolicy policy = ValuePolicy::kTextOrNodeId);

  /// Registers an already-parsed document.
  Status RegisterDocument(const std::string& name, XmlDocument doc,
                          ValuePolicy policy = ValuePolicy::kTextOrNodeId);

  /// Replaces an already-registered document (NotFound otherwise),
  /// mirroring UpdateRelation: bumps the document's version, drops its
  /// cached path tries, and invalidates dependent plans.
  Status UpdateDocumentXml(const std::string& name, std::string_view xml,
                           ValuePolicy policy = ValuePolicy::kTextOrNodeId);
  Status UpdateDocument(const std::string& name, XmlDocument doc,
                        ValuePolicy policy = ValuePolicy::kTextOrNodeId);

  /// Lookup; NotFound if missing.
  Result<const Relation*> relation(const std::string& name) const;
  Result<const NodeIndex*> document_index(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> RelationNames() const;
  std::vector<std::string> DocumentNames() const;

  /// Parses a textual query against the registered objects.
  Result<PreparedQuery> Prepare(const std::string& text) const;

  /// Prepares an execution plan for the query text, through the plan
  /// cache: the key is CanonicalizeQueryText(text) + the options
  /// fingerprint (PlanFingerprint), and a hit is re-validated against
  /// every input's current version — stale plans are dropped and
  /// re-prepared. Hits/misses/invalidations are recorded on
  /// options.metrics ("db.plan_cache.*") and the database-wide counters
  /// below. The plan stays valid while this database owns its inputs.
  Result<std::shared_ptr<const XJoinPlan>> PreparePlan(
      const std::string& text, const XJoinOptions& options = {}) const;

  /// Prepares and evaluates in one step.
  Result<Relation> Query(const std::string& text,
                         Engine engine = Engine::kXJoin,
                         Metrics* metrics = nullptr) const;

  /// Prepares and evaluates with explicit XJoin options:
  /// PreparePlan(text, options) + ExecutePlan. Unless the providers are
  /// already set, the database wires in its trie caches: relation tries
  /// are built once per (relation, attribute order, relation version),
  /// materialized path tries once per (document, twig path, document
  /// version), and shared across queries. Cache hits and misses are
  /// recorded on options.metrics ("db.trie_cache.hits" /
  /// "db.trie_cache.misses") and on the database-wide counters below.
  Result<Relation> QueryXJoin(const std::string& text,
                              XJoinOptions options) const;

  /// Renders the (cached) execution plan for the query as text: inputs
  /// with trie-cache provenance, transform(Sx), the expansion order
  /// with per-level lead rationale, the shard plan, the worst-case size
  /// bound, and the database cache counters.
  Result<std::string> ExplainXJoin(const std::string& text,
                                   const XJoinOptions& options = {}) const;

  /// Human-readable plan with default options (kept for convenience;
  /// equivalent to ExplainXJoin(text, {})).
  Result<std::string> Explain(const std::string& text) const;

  /// Explicit trie-cache invalidation hook: drops cached relation tries
  /// for relation `name` (every attribute order) or cached path tries
  /// for document `name`. UpdateRelation / UpdateDocument call this
  /// automatically; call it yourself after mutating storage through any
  /// other back door.
  void InvalidateTrieCache(const std::string& name);

  /// Drops every cached trie (all relations and documents).
  void ClearTrieCache();

  /// Caps the total ByteSizeEstimate() of cached tries (relation and
  /// path tries combined). Least-recently-used entries are evicted on
  /// insert once the budget is exceeded; a trie larger than the whole
  /// budget is served uncached. Default 256 MiB. Setting a smaller
  /// budget evicts immediately.
  void SetTrieCacheBudget(size_t bytes);
  size_t trie_cache_budget() const;

  /// Trie-cache observability (tests, ops).
  size_t TrieCacheSize() const;
  size_t trie_cache_bytes() const;
  int64_t trie_cache_hits() const;
  int64_t trie_cache_misses() const;
  int64_t trie_cache_evictions() const;

  /// Caps the number of cached plans, LRU-evicted on insert (default
  /// 256). This bounds total pinned-trie memory too: every cached plan
  /// pins its tries via shared_ptr, past trie-cache eviction — the trie
  /// byte budget bounds the *cache*, the plan capacity bounds the
  /// *pins*. Setting a smaller capacity evicts immediately; 0 disables
  /// plan caching.
  void SetPlanCacheCapacity(size_t max_plans);
  size_t plan_cache_capacity() const;

  /// Plan-cache maintenance and observability.
  void ClearPlanCache();
  size_t PlanCacheSize() const;
  int64_t plan_cache_hits() const;
  int64_t plan_cache_misses() const;
  int64_t plan_cache_invalidations() const;
  int64_t plan_cache_evictions() const;

  /// Monotonic per-relation / per-document versions, bumped by
  /// UpdateRelation / UpdateDocument; part of the trie- and plan-cache
  /// keys. NotFound for unknown names.
  Result<uint64_t> relation_version(const std::string& name) const;
  Result<uint64_t> document_version(const std::string& name) const;

 private:
  struct Document {
    std::unique_ptr<XmlDocument> doc;
    std::unique_ptr<NodeIndex> index;
    uint64_t version = 0;
  };

  struct RelationEntry {
    Relation relation;
    uint64_t version = 0;

    explicit RelationEntry(Relation rel) : relation(std::move(rel)) {}
  };

  /// One cached trie (relation or materialized path), on the shared
  /// byte-budget LRU list. `owner` is the relation or document name,
  /// for invalidation.
  struct TrieCacheEntry {
    std::string key;
    std::string owner;
    size_t bytes = 0;
    std::shared_ptr<const RelationTrie> trie;
  };

  /// The TrieProvider XJoin consults for relation tries: cache lookup,
  /// build and insert on miss (cache-miss builds use `num_threads`
  /// workers). Thread-safe against concurrent const queries.
  TrieProvider CacheTrieProvider(Metrics* metrics, int num_threads) const;

  /// Likewise for materialized path tries (materialize_paths queries).
  PathTrieProvider CachePathTrieProvider(Metrics* metrics,
                                         int num_threads) const;

  /// Shared LRU plumbing (callers hold trie_cache_mu_; const because
  /// the providers run on the const query path — all touched state is
  /// mutable).
  std::shared_ptr<const RelationTrie> TrieCacheLookupLocked(
      const std::string& key) const;
  void TrieCacheInsertLocked(std::string key, std::string owner,
                             std::shared_ptr<const RelationTrie> trie) const;

  /// Document name for one of our NodeIndex pointers; empty if foreign.
  std::string DocumentNameOf(const NodeIndex* index) const;

  /// Drops cached plans whose sources include `name`; returns how many.
  void InvalidatePlans(const std::string& name);

  Dictionary dict_;
  std::map<std::string, RelationEntry> relations_;
  std::map<std::string, Document> documents_;

  mutable std::mutex trie_cache_mu_;
  // Front = most recently used. The index maps cache key -> list node.
  mutable std::list<TrieCacheEntry> trie_lru_;
  mutable std::map<std::string, std::list<TrieCacheEntry>::iterator>
      trie_index_;
  mutable size_t trie_cache_bytes_ = 0;
  size_t trie_cache_budget_ = 256u << 20;  // 256 MiB
  mutable int64_t trie_cache_hits_ = 0;
  mutable int64_t trie_cache_misses_ = 0;
  mutable int64_t trie_cache_evictions_ = 0;

  struct PlanCacheEntry {
    std::shared_ptr<const XJoinPlan> plan;
    std::list<std::string>::iterator lru;  // position in plan_lru_
  };

  mutable std::mutex plan_cache_mu_;
  // Front = most recently used key.
  mutable std::list<std::string> plan_lru_;
  mutable std::map<std::string, PlanCacheEntry> plan_cache_;
  size_t plan_cache_capacity_ = 256;
  mutable int64_t plan_cache_hits_ = 0;
  mutable int64_t plan_cache_misses_ = 0;
  mutable int64_t plan_cache_invalidations_ = 0;
  mutable int64_t plan_cache_evictions_ = 0;
};

}  // namespace xjoin

#endif  // XJOIN_CORE_DATABASE_H_
