#include "core/generic_join.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <limits>
#include <optional>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "relational/intersect_kernels.h"
#include "relational/result_batch.h"
#include "relational/schema.h"

namespace xjoin {

bool LeapfrogAlign(const std::vector<TrieIterator*>& iters, int64_t* seeks) {
  if (iters.empty()) return false;
  for (TrieIterator* it : iters) {
    if (it->AtEnd()) return false;
  }
  for (;;) {
    int64_t max_key = iters[0]->Key();
    for (TrieIterator* it : iters) max_key = std::max(max_key, it->Key());
    bool all_equal = true;
    for (TrieIterator* it : iters) {
      if (it->Key() < max_key) {
        it->Seek(max_key);
        if (seeks != nullptr) ++*seeks;
        if (it->AtEnd()) return false;
        if (it->Key() > max_key) {
          all_equal = false;  // overshoot: new max, restart
          break;
        }
      }
    }
    if (all_equal) return true;
  }
}

bool LeapfrogAdvance(const std::vector<TrieIterator*>& iters, int64_t* seeks) {
  if (iters.empty()) return false;
  iters[0]->Next();
  if (seeks != nullptr) ++*seeks;
  if (iters[0]->AtEnd()) return false;
  return LeapfrogAlign(iters, seeks);
}

namespace {

// Per-depth plan entry: which inputs participate in the attribute bound
// at that depth.
struct LevelPlan {
  std::string attribute;
  std::vector<size_t> participants;  // indices into inputs
};

// Restriction of the leading attributes to a lexicographic half-open
// prefix range; a shard's slice of the expansion space. `depth` is the
// number of constrained levels: 1 shards on level-0 keys alone, 2 on
// (level-0, level-1) composite prefixes — the fallback when the level-0
// key domain is smaller than the requested shard count. Unbounded by
// default (serial run).
struct PrefixRange {
  int depth = 1;
  bool has_lo = false;
  int64_t lo[2] = {0, 0};  // inclusive lexicographic lower bound
  bool has_hi = false;
  int64_t hi[2] = {0, 0};  // exclusive lexicographic upper bound
};

// The devirtualized leapfrog primitives over raw CSR key arrays —
// gallop/align/advance with exact scalar seek accounting — live in the
// runtime-dispatched SIMD kernel tables (relational/intersect_kernels.h);
// the engine resolves ActiveIntersectKernel() once per run and drives
// the same jump sequence through whichever table the CPU supports, so
// "gj.seeks" and result bytes match the scalar engine count for count.

// The iterative (explicit-stack) expansion loop of Algorithm 1 over one
// key range. All mutable state lives in this object, so one Engine per
// shard over Clone()d iterators is data-race-free by construction. The
// engine only accumulates raw counters; the driver merges and publishes
// them, which keeps serial and sharded metric output consistent.
//
// batch_size > 0 switches to block-at-a-time execution (see
// GenericJoinOptions::batch_size): every binding is staged in a
// columnar ResultBatch and flushed in blocks. When every input exposes
// its whole trie as raw CSR arrays (RawTrieSpans), the entire
// expansion — all levels, not just the deepest — runs through the
// full-depth raw executor (RunRaw below): explicit frame stacks
// navigated through the child_begin arrays, leapfrog seeks through the
// runtime-dispatched SIMD kernel, zero virtual dispatch anywhere.
// Otherwise the virtual-protocol loop runs, with the deepest level
// still drained through NextBlock bulk copies or the SIMD kernel when
// its participants allow it. All counters are maintained exactly as in
// the scalar path in every mode.
class Engine {
 public:
  Engine(const std::vector<JoinInput>& inputs,
         const std::vector<LevelPlan>& plan, const PrefixFilter& filter,
         Metrics* filter_metrics, Relation* out, int batch_size = 0,
         BudgetTracker* budget = nullptr)
      : filter_(filter),
        filter_metrics_(filter_metrics),
        out_(out),
        budget_(budget != nullptr && budget->limited() ? budget : nullptr),
        count_cancel_(budget_ != nullptr && budget_->has_cancel()),
        row_bytes_(static_cast<int64_t>(plan.size()) * 8),
        prefix_(plan.size(), 0),
        level_totals_(plan.size(), 0) {
    level_iters_.resize(plan.size());
    for (size_t d = 0; d < plan.size(); ++d) {
      level_iters_[d].reserve(plan[d].participants.size());
      for (size_t i : plan[d].participants) {
        level_iters_[d].push_back(inputs[i].iterator);
      }
    }
    kernel_ = &ActiveIntersectKernel();
    if (batch_size > 0 && !plan.empty()) {
      batch_.emplace(plan.size(), static_cast<size_t>(batch_size));
      block_.emplace(static_cast<size_t>(batch_size));
      kernel_buf_.resize(static_cast<size_t>(batch_size));
      // Full-depth raw mode engages only when every input is a plain
      // delta-free CSR trie; a lazy path trie or a pending delta
      // side-file anywhere sends the run down the virtual loop.
      raw_mode_ = true;
      raw_inputs_.resize(inputs.size());
      for (size_t i = 0; i < inputs.size(); ++i) {
        if (!inputs[i].iterator->RawTrieSpans(&raw_inputs_[i].view)) {
          raw_mode_ = false;
          break;
        }
        raw_inputs_[i].frames.reserve(raw_inputs_[i].view.levels.size());
      }
      if (raw_mode_) {
        raw_levels_.resize(plan.size());
        raw_strategy_.assign(plan.size(), IntersectStrategy::kGallop);
        std::vector<size_t> next_local(inputs.size(), 0);
        for (size_t d = 0; d < plan.size(); ++d) {
          raw_levels_[d].reserve(plan[d].participants.size());
          for (size_t i : plan[d].participants) {
            raw_levels_[d].push_back(RawRef{i, next_local[i]++});
          }
        }
      } else {
        raw_inputs_.clear();
      }
    }
  }

  void Run(const PrefixRange& range) {
    if (raw_mode_) {
      RunRaw(range);
      batch_->Flush(out_);
      return;
    }
    const size_t num_levels = level_iters_.size();
    size_t depth = 0;
    bool entering = true;
    for (;;) {
      // Admission budget: sample the deadline periodically, poll the
      // shared violation flag — which also observes any attached
      // cancellation tokens — every binding so all shards abort fast.
      // Partial output is discarded by the driver, so an early break
      // needs no iterator cleanup.
      if (budget_ != nullptr) {
        if ((++budget_ticks_ & 4095) == 0) {
          budget_->CheckDeadline();
          // Observer-only fault site: lets tests trigger (e.g.) a
          // cancel deterministically mid-expansion. Never fails.
          (void)XJOIN_FAULT("gj.tick");
        }
        if (count_cancel_) ++cancel_checks_;
        if (budget_->violated()) break;
      }
      std::vector<TrieIterator*>& iters = level_iters_[depth];
      bool have;
      if (entering) {
        OpenLevel(iters, depth, range);
        if (depth == 0) {
          // Pre-size the output columns from the level-0 key estimate —
          // a free O(1) scale signal — capped so selective joins don't
          // over-allocate (growth past the reserve stays geometric).
          constexpr int64_t kMaxReserveRows = int64_t{1} << 16;
          out_->Reserve(static_cast<size_t>(std::clamp<int64_t>(
              iters[0]->EstimateKeys(), 0, kMaxReserveRows)));
        }
        if (batch_.has_value() && depth + 1 == num_levels) {
          // Batched mode: one kernel call drains the whole deepest
          // level for this prefix, then backtracks.
          RunDeepestLevel(iters, depth, range);
          for (TrieIterator* it : iters) it->Up();
          if (depth == 0) break;
          --depth;
          entering = false;
          continue;
        }
        have = LeapfrogAlign(iters, &seeks_);
      } else {
        have = LeapfrogAdvance(iters, &seeks_);
      }
      if (have && range.has_hi) {
        // Past this shard's slice? hi is an exclusive lexicographic
        // bound on the constrained prefix: with depth-2 ranges a level-0
        // key equal to hi[0] must still descend (keys below hi[1] are
        // ours), and the cut happens at level 1.
        if (depth == 0) {
          int64_t key = iters[0]->Key();
          if (range.depth == 1 ? key >= range.hi[0] : key > range.hi[0]) {
            have = false;
          }
        } else if (depth == 1 && range.depth == 2 &&
                   prefix_[0] == range.hi[0] &&
                   iters[0]->Key() >= range.hi[1]) {
          have = false;
        }
      }
      if (have) {
        prefix_[depth] = iters[0]->Key();
        ++level_totals_[depth];
        ++total_intermediate_;
        bool keep = !filter_ || filter_(depth, prefix_, filter_metrics_);
        if (keep) {
          if (depth + 1 == num_levels) {
            out_->AppendRow(prefix_);
            ChargeOutput(1);
            entering = false;  // advance at this level
          } else {
            ++depth;  // descend
            entering = true;
          }
        } else {
          entering = false;  // pruned: advance at this level
        }
        continue;
      }
      // Level exhausted: close it and backtrack.
      for (TrieIterator* it : iters) it->Up();
      if (depth == 0) break;
      --depth;
      entering = false;
    }
    if (batch_.has_value()) batch_->Flush(out_);
  }

  const std::vector<int64_t>& level_totals() const { return level_totals_; }
  int64_t seeks() const { return seeks_; }
  int64_t total_intermediate() const { return total_intermediate_; }
  int64_t cancel_checks() const { return cancel_checks_; }

 private:
  // The entering protocol shared by the scalar and batched paths: open
  // every participant, lead with the iterator reporting the fewest
  // remaining keys (LeapfrogAdvance steps iters[0], so the smallest
  // level drives the intersection; EstimateKeys is O(1) on the CSR
  // trie), and skip straight to the shard's lexicographic lower bound.
  void OpenLevel(std::vector<TrieIterator*>& iters, size_t depth,
                 const PrefixRange& range) {
    for (TrieIterator* it : iters) it->Open();
    if (iters.size() > 1) {
      size_t lead = 0;
      int64_t best = iters[0]->EstimateKeys();
      for (size_t i = 1; i < iters.size(); ++i) {
        int64_t estimate = iters[i]->EstimateKeys();
        if (estimate < best) {
          best = estimate;
          lead = i;
        }
      }
      if (lead != 0) std::swap(iters[0], iters[lead]);
    }
    if (range.has_lo && !iters[0]->AtEnd()) {
      if (depth == 0 && iters[0]->Key() < range.lo[0]) {
        iters[0]->Seek(range.lo[0]);
        ++seeks_;
      } else if (depth == 1 && range.depth == 2 &&
                 prefix_[0] == range.lo[0] && iters[0]->Key() < range.lo[1]) {
        iters[0]->Seek(range.lo[1]);
        ++seeks_;
      }
    }
  }

  // Charges n freshly materialized output rows (n x 8*arity bytes)
  // against the admission budget; no-op when the query has none.
  void ChargeOutput(int64_t n) {
    if (budget_ != nullptr) budget_->ChargeRows(n, n * row_bytes_);
  }

  // True when a budgeted query has tripped a ceiling and every loop
  // should unwind; the driver discards partial output.
  bool BudgetAborted() const {
    return budget_ != nullptr && budget_->violated();
  }

  // Stages one result row (prefix_[0..arity-1]) and flushes on a full
  // batch. Only the batched paths emit through here.
  void EmitRow() {
    batch_->PushRow(prefix_);
    ChargeOutput(1);
    if (batch_->full()) batch_->Flush(out_);
  }

  // Counts one binding at the deepest level and applies the prefix
  // filter; returns whether the binding survives.
  bool BindDeepest(size_t depth, int64_t key) {
    prefix_[depth] = key;
    ++level_totals_[depth];
    ++total_intermediate_;
    return !filter_ || filter_(depth, prefix_, filter_metrics_);
  }

  // Drains the entire deepest level for the current prefix. Called with
  // freshly opened, lead-swapped, lo-bounded iterators (OpenLevel);
  // afterwards the caller closes the level. Dispatch: bulk NextBlock
  // drain when a single input covers the level, the devirtualized
  // raw-cursor kernel when every participant exposes a CSR span, the
  // scalar leapfrog otherwise — identical bindings, seeks, and output
  // in all three.
  void RunDeepestLevel(std::vector<TrieIterator*>& iters, size_t depth,
                       const PrefixRange& range) {
    // Shard upper bounds can constrain levels 0 and 1 only; fold the
    // applicable one into a single exclusive key bound. A deepest level
    // at depth 0 means a one-attribute plan, and composite (depth-2)
    // ranges only arise on plans with >= 2 levels — so the bound at
    // depth 0 is always a plain exclusive level-0 cut.
    bool has_hi = false;
    int64_t hi = 0;
    if (range.has_hi) {
      if (depth == 0) {
        XJ_DCHECK(range.depth == 1);
        has_hi = true;
        hi = range.hi[0];
      } else if (depth == 1 && range.depth == 2 &&
                 prefix_[0] == range.hi[0]) {
        has_hi = true;
        hi = range.hi[1];
      }
    }

    if (iters.size() == 1) {
      DrainSingle(iters[0], depth, has_hi, hi);
      return;
    }

    raw_cursors_.clear();
    RawKeySpan span;
    for (TrieIterator* it : iters) {
      if (!it->RawLevelSpan(&span)) break;
      raw_cursors_.push_back(KeyCursor{span.keys, span.pos, span.hi});
    }
    if (raw_cursors_.size() == iters.size()) {
      RunDeepestRaw(depth, has_hi, hi);
    } else {
      RunDeepestScalar(iters, depth, has_hi, hi);
    }
  }

  // Single participant: the intersection is the level itself, so the
  // kernel degenerates to bulk block copies — NextBlock drains straight
  // out of the CSR level array (or via the scalar default for lazy
  // tries), and filter-free runs land in the batch column-at-a-time.
  // Each drained key corresponds to exactly one scalar Next, hence
  // seeks_ += n.
  void DrainSingle(TrieIterator* it, size_t depth, bool has_hi, int64_t hi) {
    const int64_t bound = has_hi ? hi : std::numeric_limits<int64_t>::max();
    for (;;) {
      size_t n = it->NextBlock(bound, &*block_);
      seeks_ += static_cast<int64_t>(n);
      if (n > 0) EmitDeepestRun(depth, block_->keys.data(), n);
      if (BudgetAborted()) return;
      if (n < block_->capacity) break;
    }
    if (!has_hi) {
      // NextBlock's exclusive bound cannot express "no bound" for keys
      // equal to INT64_MAX; bind any such stragglers scalar-wise.
      while (!it->AtEnd() && !BudgetAborted()) {
        if (BindDeepest(depth, it->Key())) EmitRow();
        it->Next();
        ++seeks_;
      }
    }
  }

  // Emits `n` deepest-level bindings from a contiguous ascending key
  // run: bulk columnar staging when no prefix filter is installed,
  // per-key bind + filter otherwise. Binding and budget accounting are
  // identical to the scalar per-key path.
  void EmitDeepestRun(size_t depth, const int64_t* keys, size_t n) {
    if (!filter_) {
      level_totals_[depth] += static_cast<int64_t>(n);
      total_intermediate_ += static_cast<int64_t>(n);
      while (n > 0) {
        size_t take = std::min(n, batch_->capacity() - batch_->size());
        batch_->PushRun(prefix_, keys, take);
        ChargeOutput(static_cast<int64_t>(take));
        if (batch_->full()) batch_->Flush(out_);
        keys += take;
        n -= take;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (BindDeepest(depth, keys[i])) EmitRow();
      }
    }
  }

  // Blockwise kernel drain of a multi-way deepest-level intersection:
  // each call fills kernel_buf_ with up to a batch of aligned keys (the
  // SIMD leapfrog runs entirely inside the kernel TU), which are then
  // emitted in bulk. Shared by the virtual RawLevelSpan path and the
  // full-depth raw executor.
  void DrainWithKernel(KeyCursor* cursors, size_t n,
                       IntersectStrategy strategy, size_t depth, bool has_hi,
                       int64_t hi) {
    bool first = true;
    bool done = false;
    while (!done) {
      size_t produced = kernel_->drain(cursors, n, strategy, first, has_hi,
                                       hi, kernel_buf_.data(),
                                       kernel_buf_.size(), &seeks_, &done);
      first = false;
      if (produced > 0) EmitDeepestRun(depth, kernel_buf_.data(), produced);
      if (BudgetAborted()) return;
    }
  }

  // All participants are CSR-backed: leapfrog over the raw key arrays
  // through the dispatched SIMD kernel — vectorized seeks on plain
  // int64_t loads, zero virtual dispatch per key — emitting into the
  // columnar batch. The seek strategy comes from the cardinality skew
  // of this prefix's remaining ranges (the dynamic EstimateKeys ratio).
  void RunDeepestRaw(size_t depth, bool has_hi, int64_t hi) {
    int64_t min_remaining = std::numeric_limits<int64_t>::max();
    int64_t max_remaining = 0;
    for (const KeyCursor& c : raw_cursors_) {
      int64_t remaining = static_cast<int64_t>(c.hi - c.pos);
      min_remaining = std::min(min_remaining, remaining);
      max_remaining = std::max(max_remaining, remaining);
    }
    IntersectStrategy strategy = ChooseIntersectStrategy(
        raw_cursors_.size(), min_remaining, max_remaining);
    DrainWithKernel(raw_cursors_.data(), raw_cursors_.size(), strategy, depth,
                    has_hi, hi);
  }

  // Mixed participants (a lazy path trie in the intersection): the
  // existing scalar leapfrog drives the level, but results still flow
  // through the columnar batch.
  void RunDeepestScalar(std::vector<TrieIterator*>& iters, size_t depth,
                        bool has_hi, int64_t hi) {
    bool have = LeapfrogAlign(iters, &seeks_);
    while (have) {
      if (BudgetAborted()) return;
      int64_t key = iters[0]->Key();
      if (has_hi && key >= hi) return;
      if (BindDeepest(depth, key)) EmitRow();
      have = LeapfrogAdvance(iters, &seeks_);
    }
  }

  // ---------------------------------------------------------------
  // Full-depth raw executor: the whole expansion over explicit frame
  // stacks and CSR child_begin arrays. Control flow, lead selection,
  // shard-range handling, budget cadence, and every counter mirror
  // Run() op for op — tests/batch_test.cc holds the paths byte- and
  // counter-identical at every batch size, thread count, and dispatch
  // level.
  // ---------------------------------------------------------------

  // One open trie level of one input: the remaining half-open range
  // [pos, hi) within that level's key array.
  struct RawFrame {
    size_t hi;
    size_t pos;
  };

  struct RawInputState {
    RawTrieView view;
    std::vector<RawFrame> frames;  // one per open level, top = deepest
  };

  // A level participant: which input, and the input-local trie level
  // that the engine level maps to.
  struct RawRef {
    size_t input;
    size_t local;
  };

  RawFrame& FrameOf(const RawRef& ref) {
    return raw_inputs_[ref.input].frames.back();
  }

  const RawTrieView::Level& LevelOf(const RawRef& ref) const {
    return raw_inputs_[ref.input].view.levels[ref.local];
  }

  int64_t RawKeyOf(const RawRef& ref) {
    return LevelOf(ref).keys[FrameOf(ref).pos];
  }

  void RunRaw(const PrefixRange& range) {
    const size_t num_levels = raw_levels_.size();
    size_t depth = 0;
    bool entering = true;
    for (;;) {
      if (budget_ != nullptr) {
        if ((++budget_ticks_ & 4095) == 0) {
          budget_->CheckDeadline();
          (void)XJOIN_FAULT("gj.tick");
        }
        if (count_cancel_) ++cancel_checks_;
        if (budget_->violated()) break;
      }
      std::vector<RawRef>& parts = raw_levels_[depth];
      bool have;
      if (entering) {
        OpenRawLevel(depth, range);
        if (depth == 0) {
          constexpr int64_t kMaxReserveRows = int64_t{1} << 16;
          const RawFrame& lead = FrameOf(parts[0]);
          out_->Reserve(static_cast<size_t>(std::clamp<int64_t>(
              static_cast<int64_t>(lead.hi - lead.pos), 0, kMaxReserveRows)));
        }
        if (depth + 1 == num_levels) {
          RunDeepestRawLevel(depth, range);
          CloseRawLevel(depth);
          if (depth == 0) break;
          --depth;
          entering = false;
          continue;
        }
        have = RawAlignLevel(depth);
      } else {
        have = RawAdvanceLevel(depth);
      }
      if (have && range.has_hi) {
        if (depth == 0) {
          int64_t key = RawKeyOf(parts[0]);
          if (range.depth == 1 ? key >= range.hi[0] : key > range.hi[0]) {
            have = false;
          }
        } else if (depth == 1 && range.depth == 2 &&
                   prefix_[0] == range.hi[0] &&
                   RawKeyOf(parts[0]) >= range.hi[1]) {
          have = false;
        }
      }
      if (have) {
        prefix_[depth] = RawKeyOf(parts[0]);
        ++level_totals_[depth];
        ++total_intermediate_;
        bool keep = !filter_ || filter_(depth, prefix_, filter_metrics_);
        if (keep) {
          ++depth;  // descend (the deepest level never reaches here)
          entering = true;
        } else {
          entering = false;  // pruned: advance at this level
        }
        continue;
      }
      CloseRawLevel(depth);
      if (depth == 0) break;
      --depth;
      entering = false;
    }
  }

  // Mirror of OpenLevel: push a frame per participant (child range from
  // the parent's position, whole level at local 0), lead with the
  // smallest remaining range, pick this open's seek strategy from the
  // cardinality skew, and skip to the shard's lexicographic lower
  // bound.
  void OpenRawLevel(size_t depth, const PrefixRange& range) {
    std::vector<RawRef>& parts = raw_levels_[depth];
    for (const RawRef& ref : parts) {
      RawInputState& st = raw_inputs_[ref.input];
      size_t lo, hi;
      if (ref.local == 0) {
        lo = 0;
        hi = st.view.levels[0].num_keys;
      } else {
        const RawFrame& parent = st.frames.back();
        const size_t* child_begin = st.view.levels[ref.local - 1].child_begin;
        lo = child_begin[parent.pos];
        hi = child_begin[parent.pos + 1];
      }
      st.frames.push_back(RawFrame{hi, lo});
    }
    int64_t min_remaining = std::numeric_limits<int64_t>::max();
    int64_t max_remaining = 0;
    if (parts.size() > 1) {
      size_t lead = 0;
      int64_t best = std::numeric_limits<int64_t>::max();
      for (size_t i = 0; i < parts.size(); ++i) {
        const RawFrame& f = FrameOf(parts[i]);
        int64_t remaining = static_cast<int64_t>(f.hi - f.pos);
        if (remaining < best) {
          best = remaining;
          lead = i;
        }
        min_remaining = std::min(min_remaining, remaining);
        max_remaining = std::max(max_remaining, remaining);
      }
      if (lead != 0) std::swap(parts[0], parts[lead]);
    }
    raw_strategy_[depth] = ChooseIntersectStrategy(parts.size(),
                                                   min_remaining,
                                                   max_remaining);
    if (range.has_lo) {
      RawFrame& lead = FrameOf(parts[0]);
      const RawTrieView::Level& level = LevelOf(parts[0]);
      if (lead.pos < lead.hi) {
        if (depth == 0 && level.keys[lead.pos] < range.lo[0]) {
          lead.pos = kernel_->seek(level.keys, lead.pos, lead.hi,
                                   range.lo[0], raw_strategy_[depth]);
          ++seeks_;
        } else if (depth == 1 && range.depth == 2 &&
                   prefix_[0] == range.lo[0] &&
                   level.keys[lead.pos] < range.lo[1]) {
          lead.pos = kernel_->seek(level.keys, lead.pos, lead.hi,
                                   range.lo[1], raw_strategy_[depth]);
          ++seeks_;
        }
      }
    }
  }

  void CloseRawLevel(size_t depth) {
    for (const RawRef& ref : raw_levels_[depth]) {
      raw_inputs_[ref.input].frames.pop_back();
    }
  }

  // Mirrors of LeapfrogAlign / LeapfrogAdvance over the frame stacks,
  // with each jump's interior search running through the dispatched
  // kernel. Identical seek accounting.
  bool RawAlignLevel(size_t depth) {
    std::vector<RawRef>& parts = raw_levels_[depth];
    for (const RawRef& ref : parts) {
      const RawFrame& f = FrameOf(ref);
      if (f.pos >= f.hi) return false;
    }
    if (parts.size() == 1) return true;
    const IntersectStrategy strategy = raw_strategy_[depth];
    for (;;) {
      int64_t max_key = RawKeyOf(parts[0]);
      for (size_t i = 1; i < parts.size(); ++i) {
        max_key = std::max(max_key, RawKeyOf(parts[i]));
      }
      bool all_equal = true;
      for (const RawRef& ref : parts) {
        RawFrame& f = FrameOf(ref);
        const RawTrieView::Level& level = LevelOf(ref);
        if (level.keys[f.pos] < max_key) {
          f.pos = kernel_->seek(level.keys, f.pos, f.hi, max_key, strategy);
          ++seeks_;
          if (f.pos >= f.hi) return false;
          if (level.keys[f.pos] > max_key) {
            all_equal = false;  // overshoot: new max, restart
            break;
          }
        }
      }
      if (all_equal) return true;
    }
  }

  bool RawAdvanceLevel(size_t depth) {
    RawFrame& lead = FrameOf(raw_levels_[depth][0]);
    ++lead.pos;
    ++seeks_;
    if (lead.pos >= lead.hi) return false;
    return RawAlignLevel(depth);
  }

  // Mirror of RunDeepestLevel: fold the shard bound, then drain the
  // level — bulk array copies for a single participant, the SIMD
  // kernel for a true intersection.
  void RunDeepestRawLevel(size_t depth, const PrefixRange& range) {
    bool has_hi = false;
    int64_t hi = 0;
    if (range.has_hi) {
      if (depth == 0) {
        XJ_DCHECK(range.depth == 1);
        has_hi = true;
        hi = range.hi[0];
      } else if (depth == 1 && range.depth == 2 &&
                 prefix_[0] == range.hi[0]) {
        has_hi = true;
        hi = range.hi[1];
      }
    }
    std::vector<RawRef>& parts = raw_levels_[depth];
    if (parts.size() == 1) {
      DrainSingleRaw(depth, has_hi, hi);
      return;
    }
    raw_cursors_.clear();
    for (const RawRef& ref : parts) {
      const RawFrame& f = FrameOf(ref);
      raw_cursors_.push_back(KeyCursor{LevelOf(ref).keys, f.pos, f.hi});
    }
    DrainWithKernel(raw_cursors_.data(), raw_cursors_.size(),
                    raw_strategy_[depth], depth, has_hi, hi);
  }

  // Mirror of DrainSingle over the raw level array: the same blockwise
  // protocol (n counted seeks per block of at most one batch, budget
  // poll between blocks, scalar INT64_MAX stragglers), but the keys
  // stage straight out of the CSR array with zero copies in between.
  void DrainSingleRaw(size_t depth, bool has_hi, int64_t hi) {
    RawFrame& f = FrameOf(raw_levels_[depth][0]);
    const RawTrieView::Level& level = LevelOf(raw_levels_[depth][0]);
    const int64_t bound = has_hi ? hi : std::numeric_limits<int64_t>::max();
    const size_t cap = kernel_buf_.size();
    for (;;) {
      size_t end = std::min(f.pos + cap, f.hi);
      if (end > f.pos && level.keys[end - 1] >= bound) {
        end = kernel_->lower_bound(level.keys, f.pos, end, bound);
      }
      size_t n = end - f.pos;
      seeks_ += static_cast<int64_t>(n);
      if (n > 0) {
        EmitDeepestRun(depth, level.keys + f.pos, n);
        f.pos = end;
      }
      if (BudgetAborted()) return;
      if (n < cap) break;
    }
    if (!has_hi) {
      while (f.pos < f.hi && !BudgetAborted()) {
        if (BindDeepest(depth, level.keys[f.pos])) EmitRow();
        ++f.pos;
        ++seeks_;
      }
    }
  }

  const PrefixFilter& filter_;
  Metrics* filter_metrics_;
  Relation* out_;
  BudgetTracker* budget_;   // null when the query has no finite budget
  bool count_cancel_;       // count cancellation polls (a token is attached)
  int64_t row_bytes_;       // bytes charged per materialized output row
  int64_t budget_ticks_ = 0;
  int64_t cancel_checks_ = 0;
  Tuple prefix_;
  std::vector<int64_t> level_totals_;
  std::vector<std::vector<TrieIterator*>> level_iters_;
  std::optional<ResultBatch> batch_;  // engaged iff batch_size > 0
  std::optional<KeyBlock> block_;     // NextBlock scratch, same capacity
  const IntersectKernel* kernel_ = nullptr;  // resolved once per engine
  std::vector<int64_t> kernel_buf_;   // drain destination, batch capacity
  std::vector<KeyCursor> raw_cursors_;
  // Full-depth raw mode, engaged iff batch is on and every input
  // exposes RawTrieSpans (plain delta-free CSR storage).
  std::vector<RawInputState> raw_inputs_;
  std::vector<std::vector<RawRef>> raw_levels_;  // participants per level
  std::vector<IntersectStrategy> raw_strategy_;  // chosen at each open
  bool raw_mode_ = false;
  int64_t seeks_ = 0;
  int64_t total_intermediate_ = 0;
};

// Publishes the merged engine counters in the same shape the serial
// engine always has.
void PublishMetrics(Metrics* metrics, const std::vector<int64_t>& level_totals,
                    int64_t seeks, int64_t total_intermediate,
                    int64_t output_rows, int64_t cancel_checks = 0) {
  if (metrics == nullptr) return;
  int64_t max_level = 0;
  for (size_t d = 0; d < level_totals.size(); ++d) {
    metrics->Add("gj.level" + std::to_string(d) + ".bindings",
                 level_totals[d]);
    max_level = std::max(max_level, level_totals[d]);
  }
  metrics->RecordMax("gj.max_intermediate", max_level);
  metrics->Add("gj.total_intermediate", total_intermediate);
  metrics->Add("gj.seeks", seeks);
  metrics->Add("gj.output", output_rows);
  // Only cancellable queries count their polls, so runs without a token
  // keep an identical counter set.
  if (cancel_checks > 0) metrics->Add("gj.cancel_checks", cancel_checks);
}

// Enumerates the distinct keys of the level-0 intersection (the shard
// partitioning domain) with a leapfrog over the level-0 participants
// only; leaves every iterator back at the virtual root.
std::vector<int64_t> Level0IntersectionKeys(
    const std::vector<TrieIterator*>& iters, int64_t* seeks) {
  std::vector<int64_t> keys;
  for (TrieIterator* it : iters) it->Open();
  if (LeapfrogAlign(iters, seeks)) {
    do {
      keys.push_back(iters[0]->Key());
    } while (LeapfrogAdvance(iters, seeks));
  }
  for (TrieIterator* it : iters) it->Up();
  return keys;
}

// Enumerates the (level-0, level-1) composite prefixes of the join —
// the deeper shard partitioning domain used when level 0 alone has
// fewer distinct keys than the requested shard count. Runs the engine
// over a two-level truncation of the plan; leaves every iterator back
// at the virtual root. Results are distinct and lexicographically
// ascending.
std::vector<std::array<int64_t, 2>> Level01PrefixPairs(
    const std::vector<JoinInput>& inputs, const std::vector<LevelPlan>& plan,
    int64_t* seeks) {
  std::vector<LevelPlan> plan2(plan.begin(), plan.begin() + 2);
  auto schema = Schema::Make({plan[0].attribute, plan[1].attribute});
  Relation pairs_rel(*schema);
  PrefixFilter no_filter;
  Engine engine(inputs, plan2, no_filter, nullptr, &pairs_rel);
  engine.Run(PrefixRange{});
  *seeks += engine.seeks();
  std::vector<std::array<int64_t, 2>> pairs;
  pairs.reserve(pairs_rel.num_rows());
  for (size_t r = 0; r < pairs_rel.num_rows(); ++r) {
    pairs.push_back({pairs_rel.at(r, 0), pairs_rel.at(r, 1)});
  }
  return pairs;
}

}  // namespace

Result<Relation> GenericJoin(const std::vector<JoinInput>& inputs,
                             const GenericJoinOptions& options) {
  const auto& order = options.attribute_order;
  if (order.empty()) return Status::InvalidArgument("empty attribute order");

  // A cancellation token rides the budget tracker as an extra "cancel
  // source": the per-binding violation poll then observes it for free.
  // A token without a caller budget gets a private unlimited tracker.
  BudgetTracker local_budget;
  BudgetTracker* budget = options.budget;
  if (options.cancel != nullptr) {
    if (budget == nullptr) budget = &local_budget;
    budget->AddCancelSource(options.cancel);
  }

  // Admission: refuse to start a query whose deadline already passed,
  // whose budget a prior stage already exhausted (a multi-step caller —
  // e.g. XJoin's expansion + validation — shares one tracker), or that
  // was cancelled before it began.
  if (budget != nullptr) {
    budget->CheckDeadline();
    if (budget->violated()) return budget->status();
  }

  // Build the per-level plan and validate input orders.
  std::vector<LevelPlan> plan(order.size());
  for (size_t d = 0; d < order.size(); ++d) plan[d].attribute = order[d];

  for (size_t i = 0; i < inputs.size(); ++i) {
    const JoinInput& in = inputs[i];
    if (in.iterator == nullptr) {
      return Status::InvalidArgument("input " + in.name + " has no iterator");
    }
    if (static_cast<size_t>(in.iterator->arity()) != in.attributes.size()) {
      return Status::InvalidArgument("input " + in.name + " arity mismatch");
    }
    // The input's attribute sequence must be a subsequence-in-order of
    // the global order, and the engine opens one trie level per global
    // level it participates in — so the input's k-th attribute must be
    // the k-th of its attributes encountered globally.
    size_t next = 0;
    for (const auto& attr : order) {
      if (next < in.attributes.size() && in.attributes[next] == attr) {
        ++next;
      }
    }
    if (next != in.attributes.size()) {
      return Status::InvalidArgument(
          "input " + in.name +
          " attribute order is inconsistent with the global order");
    }
    size_t seen = 0;
    for (size_t d = 0; d < order.size(); ++d) {
      if (seen < in.attributes.size() && in.attributes[seen] == order[d]) {
        plan[d].participants.push_back(i);
        ++seen;
      }
    }
  }

  for (size_t d = 0; d < plan.size(); ++d) {
    if (plan[d].participants.empty()) {
      return Status::InvalidArgument("attribute " + plan[d].attribute +
                                     " is covered by no input");
    }
  }

  XJ_ASSIGN_OR_RETURN(Schema schema, Schema::Make(order));
  Relation out(schema);

  const int num_threads = std::max(1, options.num_threads);
  const int requested_shards =
      options.num_shards > 0 ? options.num_shards : num_threads;

  if (requested_shards <= 1) {
    Engine engine(inputs, plan, options.prefix_filter, options.metrics, &out,
                  options.batch_size, budget);
    engine.Run(PrefixRange{});
    if (budget != nullptr && budget->violated()) {
      return budget->status();
    }
    PublishMetrics(options.metrics, engine.level_totals(), engine.seeks(),
                   engine.total_intermediate(),
                   static_cast<int64_t>(out.num_rows()),
                   engine.cancel_checks());
    return out;
  }

  // Sharded driver: partition the first attribute's matching keys into
  // contiguous ascending ranges, one per shard. When level 0 alone has
  // fewer distinct keys than the requested shard count (and the order
  // has a second attribute), fall back to sharding on the
  // level-0 x level-1 composite prefix instead of silently degenerating
  // to ~1 shard.
  int64_t plan_seeks = 0;
  std::vector<TrieIterator*> level0;
  level0.reserve(plan[0].participants.size());
  for (size_t i : plan[0].participants) level0.push_back(inputs[i].iterator);
  std::vector<int64_t> keys = Level0IntersectionKeys(level0, &plan_seeks);

  // Composite planning runs a serial two-level leapfrog, so by default
  // (shard_depth == 0) only pay for it when level-0 sharding would fall
  // well short of the request (under half the shards) — a near-miss
  // level-0 split is cheaper than enumerating the pair domain up front.
  // A prepared plan that already knows the domain sizes overrides the
  // decision through shard_depth.
  std::vector<std::array<int64_t, 2>> pairs;
  bool composite;
  if (options.shard_depth == 2) {
    composite = plan.size() >= 2 && !keys.empty();
  } else if (options.shard_depth == 1) {
    composite = false;
  } else {
    composite = keys.size() * 2 <= static_cast<size_t>(requested_shards) &&
                plan.size() >= 2 && !keys.empty();
  }
  if (composite) {
    pairs = Level01PrefixPairs(inputs, plan, &plan_seeks);
    composite = pairs.size() > 1;
  }

  const size_t domain = composite ? pairs.size() : keys.size();
  const size_t num_shards = std::min<size_t>(
      static_cast<size_t>(requested_shards), std::max<size_t>(domain, 1));

  if (num_shards <= 1) {
    // The prefix domain is too small to shard (0 or 1 distinct
    // prefixes): fall back to the serial engine instead of paying
    // clone + merge overhead.
    Engine engine(inputs, plan, options.prefix_filter, options.metrics, &out,
                  options.batch_size, budget);
    engine.Run(PrefixRange{});
    if (budget != nullptr && budget->violated()) {
      return budget->status();
    }
    PublishMetrics(options.metrics, engine.level_totals(), engine.seeks(),
                   engine.total_intermediate(),
                   static_cast<int64_t>(out.num_rows()),
                   engine.cancel_checks());
    if (options.metrics != nullptr) {
      options.metrics->Add("gj.shards", 1);
      options.metrics->Add("gj.shard_depth", 1);
      options.metrics->Add("gj.plan_seeks", plan_seeks);
    }
    return out;
  }

  struct Shard {
    std::vector<std::unique_ptr<TrieIterator>> owned;
    std::vector<JoinInput> inputs;
    PrefixRange range;
    Relation out;
    std::vector<int64_t> level_totals;
    int64_t seeks = 0;
    int64_t total_intermediate = 0;
    int64_t cancel_checks = 0;
    // Shard-local bag handed to the prefix filter; merged into
    // options.metrics at the barrier so filter counters stay exact.
    Metrics metrics;

    explicit Shard(Schema s) : out(std::move(s)) {}
  };

  std::vector<Shard> shards;
  shards.reserve(num_shards);
  const size_t per_shard = domain / num_shards;
  const size_t remainder = domain % num_shards;
  size_t cursor = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    Shard shard(schema);
    size_t take = per_shard + (s < remainder ? 1 : 0);
    shard.range.depth = composite ? 2 : 1;
    shard.range.has_lo = true;
    if (composite) {
      shard.range.lo[0] = pairs[cursor][0];
      shard.range.lo[1] = pairs[cursor][1];
    } else {
      shard.range.lo[0] = keys[cursor];
    }
    cursor += take;
    if (cursor < domain) {
      shard.range.has_hi = true;
      if (composite) {
        shard.range.hi[0] = pairs[cursor][0];
        shard.range.hi[1] = pairs[cursor][1];
      } else {
        shard.range.hi[0] = keys[cursor];
      }
    }
    shard.owned.reserve(inputs.size());
    shard.inputs.reserve(inputs.size());
    for (const JoinInput& in : inputs) {
      shard.owned.push_back(in.iterator->Clone());
      shard.inputs.push_back(
          JoinInput{in.name, in.attributes, shard.owned.back().get()});
    }
    shards.push_back(std::move(shard));
  }

  // Fault site: the executor hand-off. An armed hit fails the query
  // before any shard work is dispatched.
  if (XJOIN_FAULT("gj.shard_dispatch")) {
    return Status::Internal(
        "fault injection: shard dispatch to the executor failed "
        "(site gj.shard_dispatch)");
  }

  // Shards run as one morsel-driven job on the shared executor pool
  // (grain 1: each morsel is one shard), so N in-flight queries share
  // cores instead of each spawning num_threads threads. A shared budget
  // tracker aborts every shard once any of them trips a ceiling or sees
  // a cancellation.
  Executor* executor =
      options.executor != nullptr ? options.executor : Executor::Default();
#ifdef XJOIN_FAULTS_ENABLED
  // Fault site: the per-shard morsel hand-off. A hit makes the worker
  // drop that shard's work on the floor (the morsel "ran" but produced
  // nothing), which the barrier below converts into a typed failure —
  // exercising the executor path where a shard silently vanishes.
  std::atomic<bool> morsel_dropped{false};
#endif
  executor->ParallelFor(num_threads, shards.size(), /*grain=*/1,
                        [&](size_t s) {
#ifdef XJOIN_FAULTS_ENABLED
    if (XJOIN_FAULT("gj.morsel")) {
      morsel_dropped.store(true, std::memory_order_relaxed);
      return;
    }
#endif
    Shard& shard = shards[s];
    Metrics* filter_metrics =
        options.metrics != nullptr ? &shard.metrics : nullptr;
    Engine engine(shard.inputs, plan, options.prefix_filter, filter_metrics,
                  &shard.out, options.batch_size, budget);
    engine.Run(shard.range);
    shard.level_totals = engine.level_totals();
    shard.seeks = engine.seeks();
    shard.total_intermediate = engine.total_intermediate();
    shard.cancel_checks = engine.cancel_checks();
  });
  if (budget != nullptr && budget->violated()) {
    return budget->status();
  }
#ifdef XJOIN_FAULTS_ENABLED
  if (morsel_dropped.load(std::memory_order_relaxed)) {
    return Status::Internal(
        "fault injection: morsel hand-off dropped shard work "
        "(site gj.morsel)");
  }
#endif

  // Fault site: the result merge. A hit fails the query after all shard
  // work completed but before any rows reach the caller.
  if (XJOIN_FAULT("gj.result_merge")) {
    return Status::Internal(
        "fault injection: shard result merge failed (site gj.result_merge)");
  }

  // Deterministic merge: shards cover ascending key ranges, so appending
  // in shard order reproduces the serial row order exactly.
  std::vector<int64_t> level_totals(plan.size(), 0);
  int64_t seeks = 0;
  int64_t total_intermediate = 0;
  int64_t cancel_checks = 0;
  for (Shard& shard : shards) {
    out.AppendRows(shard.out);
    for (size_t d = 0; d < shard.level_totals.size(); ++d) {
      level_totals[d] += shard.level_totals[d];
    }
    seeks += shard.seeks;
    total_intermediate += shard.total_intermediate;
    cancel_checks += shard.cancel_checks;
    if (options.metrics != nullptr) options.metrics->MergeFrom(shard.metrics);
  }
  PublishMetrics(options.metrics, level_totals, seeks, total_intermediate,
                 static_cast<int64_t>(out.num_rows()), cancel_checks);
  if (options.metrics != nullptr) {
    options.metrics->Add("gj.shards", static_cast<int64_t>(num_shards));
    options.metrics->Add("gj.shard_depth", composite ? 2 : 1);
    options.metrics->Add("gj.plan_seeks", plan_seeks);
  }
  return out;
}

}  // namespace xjoin
