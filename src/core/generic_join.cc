#include "core/generic_join.h"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "relational/result_batch.h"
#include "relational/schema.h"

namespace xjoin {

bool LeapfrogAlign(const std::vector<TrieIterator*>& iters, int64_t* seeks) {
  if (iters.empty()) return false;
  for (TrieIterator* it : iters) {
    if (it->AtEnd()) return false;
  }
  for (;;) {
    int64_t max_key = iters[0]->Key();
    for (TrieIterator* it : iters) max_key = std::max(max_key, it->Key());
    bool all_equal = true;
    for (TrieIterator* it : iters) {
      if (it->Key() < max_key) {
        it->Seek(max_key);
        if (seeks != nullptr) ++*seeks;
        if (it->AtEnd()) return false;
        if (it->Key() > max_key) {
          all_equal = false;  // overshoot: new max, restart
          break;
        }
      }
    }
    if (all_equal) return true;
  }
}

bool LeapfrogAdvance(const std::vector<TrieIterator*>& iters, int64_t* seeks) {
  if (iters.empty()) return false;
  iters[0]->Next();
  if (seeks != nullptr) ++*seeks;
  if (iters[0]->AtEnd()) return false;
  return LeapfrogAlign(iters, seeks);
}

namespace {

// Per-depth plan entry: which inputs participate in the attribute bound
// at that depth.
struct LevelPlan {
  std::string attribute;
  std::vector<size_t> participants;  // indices into inputs
};

// Restriction of the leading attributes to a lexicographic half-open
// prefix range; a shard's slice of the expansion space. `depth` is the
// number of constrained levels: 1 shards on level-0 keys alone, 2 on
// (level-0, level-1) composite prefixes — the fallback when the level-0
// key domain is smaller than the requested shard count. Unbounded by
// default (serial run).
struct PrefixRange {
  int depth = 1;
  bool has_lo = false;
  int64_t lo[2] = {0, 0};  // inclusive lexicographic lower bound
  bool has_hi = false;
  int64_t hi[2] = {0, 0};  // exclusive lexicographic upper bound
};

// Devirtualized cursor over one CSR level: the raw sorted-key array and
// the cursor's remaining half-open range within it, as exposed by
// TrieIterator::RawLevelSpan. The batched last-level kernel below runs
// the leapfrog directly over these — plain loads, inlinable gallops, no
// virtual dispatch per key.
struct RawCursor {
  const int64_t* keys;
  size_t pos, hi;
};

// Mirror of RelationTrieIterator::Seek over a raw cursor: gallop to
// bracket the target, binary-search inside the bracket.
inline void RawSeek(RawCursor* c, int64_t key) {
  size_t base = c->pos;
  size_t step = 1;
  while (base + step < c->hi && c->keys[base + step] < key) {
    base += step;
    step <<= 1;
  }
  size_t search_hi = std::min(base + step, c->hi);
  c->pos = static_cast<size_t>(
      std::lower_bound(c->keys + base, c->keys + search_hi, key) - c->keys);
}

// Exact mirrors of LeapfrogAlign / LeapfrogAdvance over raw cursors —
// same control flow, same Seek/Next accounting, so the batched kernel's
// "gj.seeks" matches the scalar engine count for count.
bool RawAlign(std::vector<RawCursor>* cursors, int64_t* seeks) {
  for (const RawCursor& c : *cursors) {
    if (c.pos >= c.hi) return false;
  }
  for (;;) {
    int64_t max_key = (*cursors)[0].keys[(*cursors)[0].pos];
    for (const RawCursor& c : *cursors) {
      max_key = std::max(max_key, c.keys[c.pos]);
    }
    bool all_equal = true;
    for (RawCursor& c : *cursors) {
      if (c.keys[c.pos] < max_key) {
        RawSeek(&c, max_key);
        ++*seeks;
        if (c.pos >= c.hi) return false;
        if (c.keys[c.pos] > max_key) {
          all_equal = false;  // overshoot: new max, restart
          break;
        }
      }
    }
    if (all_equal) return true;
  }
}

bool RawAdvance(std::vector<RawCursor>* cursors, int64_t* seeks) {
  RawCursor& lead = (*cursors)[0];
  ++lead.pos;
  ++*seeks;
  if (lead.pos >= lead.hi) return false;
  return RawAlign(cursors, seeks);
}

// The iterative (explicit-stack) expansion loop of Algorithm 1 over one
// key range. All mutable state lives in this object, so one Engine per
// shard over Clone()d iterators is data-race-free by construction. The
// engine only accumulates raw counters; the driver merges and publishes
// them, which keeps serial and sharded metric output consistent.
//
// batch_size > 0 switches the deepest level to block-at-a-time
// execution (see GenericJoinOptions::batch_size): every binding is
// staged in a columnar ResultBatch and flushed in blocks, and the
// intersection itself runs through NextBlock bulk drains or the
// raw-cursor kernel above whenever the participants allow it. All
// counters are maintained exactly as in the scalar path.
class Engine {
 public:
  Engine(const std::vector<JoinInput>& inputs,
         const std::vector<LevelPlan>& plan, const PrefixFilter& filter,
         Metrics* filter_metrics, Relation* out, int batch_size = 0,
         BudgetTracker* budget = nullptr)
      : filter_(filter),
        filter_metrics_(filter_metrics),
        out_(out),
        budget_(budget != nullptr && budget->limited() ? budget : nullptr),
        count_cancel_(budget_ != nullptr && budget_->has_cancel()),
        row_bytes_(static_cast<int64_t>(plan.size()) * 8),
        prefix_(plan.size(), 0),
        level_totals_(plan.size(), 0) {
    level_iters_.resize(plan.size());
    for (size_t d = 0; d < plan.size(); ++d) {
      level_iters_[d].reserve(plan[d].participants.size());
      for (size_t i : plan[d].participants) {
        level_iters_[d].push_back(inputs[i].iterator);
      }
    }
    if (batch_size > 0 && !plan.empty()) {
      batch_.emplace(plan.size(), static_cast<size_t>(batch_size));
      block_.emplace(static_cast<size_t>(batch_size));
    }
  }

  void Run(const PrefixRange& range) {
    const size_t num_levels = level_iters_.size();
    size_t depth = 0;
    bool entering = true;
    for (;;) {
      // Admission budget: sample the deadline periodically, poll the
      // shared violation flag — which also observes any attached
      // cancellation tokens — every binding so all shards abort fast.
      // Partial output is discarded by the driver, so an early break
      // needs no iterator cleanup.
      if (budget_ != nullptr) {
        if ((++budget_ticks_ & 4095) == 0) {
          budget_->CheckDeadline();
          // Observer-only fault site: lets tests trigger (e.g.) a
          // cancel deterministically mid-expansion. Never fails.
          (void)XJOIN_FAULT("gj.tick");
        }
        if (count_cancel_) ++cancel_checks_;
        if (budget_->violated()) break;
      }
      std::vector<TrieIterator*>& iters = level_iters_[depth];
      bool have;
      if (entering) {
        OpenLevel(iters, depth, range);
        if (depth == 0) {
          // Pre-size the output columns from the level-0 key estimate —
          // a free O(1) scale signal — capped so selective joins don't
          // over-allocate (growth past the reserve stays geometric).
          constexpr int64_t kMaxReserveRows = int64_t{1} << 16;
          out_->Reserve(static_cast<size_t>(std::clamp<int64_t>(
              iters[0]->EstimateKeys(), 0, kMaxReserveRows)));
        }
        if (batch_.has_value() && depth + 1 == num_levels) {
          // Batched mode: one kernel call drains the whole deepest
          // level for this prefix, then backtracks.
          RunDeepestLevel(iters, depth, range);
          for (TrieIterator* it : iters) it->Up();
          if (depth == 0) break;
          --depth;
          entering = false;
          continue;
        }
        have = LeapfrogAlign(iters, &seeks_);
      } else {
        have = LeapfrogAdvance(iters, &seeks_);
      }
      if (have && range.has_hi) {
        // Past this shard's slice? hi is an exclusive lexicographic
        // bound on the constrained prefix: with depth-2 ranges a level-0
        // key equal to hi[0] must still descend (keys below hi[1] are
        // ours), and the cut happens at level 1.
        if (depth == 0) {
          int64_t key = iters[0]->Key();
          if (range.depth == 1 ? key >= range.hi[0] : key > range.hi[0]) {
            have = false;
          }
        } else if (depth == 1 && range.depth == 2 &&
                   prefix_[0] == range.hi[0] &&
                   iters[0]->Key() >= range.hi[1]) {
          have = false;
        }
      }
      if (have) {
        prefix_[depth] = iters[0]->Key();
        ++level_totals_[depth];
        ++total_intermediate_;
        bool keep = !filter_ || filter_(depth, prefix_, filter_metrics_);
        if (keep) {
          if (depth + 1 == num_levels) {
            out_->AppendRow(prefix_);
            ChargeOutput(1);
            entering = false;  // advance at this level
          } else {
            ++depth;  // descend
            entering = true;
          }
        } else {
          entering = false;  // pruned: advance at this level
        }
        continue;
      }
      // Level exhausted: close it and backtrack.
      for (TrieIterator* it : iters) it->Up();
      if (depth == 0) break;
      --depth;
      entering = false;
    }
    if (batch_.has_value()) batch_->Flush(out_);
  }

  const std::vector<int64_t>& level_totals() const { return level_totals_; }
  int64_t seeks() const { return seeks_; }
  int64_t total_intermediate() const { return total_intermediate_; }
  int64_t cancel_checks() const { return cancel_checks_; }

 private:
  // The entering protocol shared by the scalar and batched paths: open
  // every participant, lead with the iterator reporting the fewest
  // remaining keys (LeapfrogAdvance steps iters[0], so the smallest
  // level drives the intersection; EstimateKeys is O(1) on the CSR
  // trie), and skip straight to the shard's lexicographic lower bound.
  void OpenLevel(std::vector<TrieIterator*>& iters, size_t depth,
                 const PrefixRange& range) {
    for (TrieIterator* it : iters) it->Open();
    if (iters.size() > 1) {
      size_t lead = 0;
      int64_t best = iters[0]->EstimateKeys();
      for (size_t i = 1; i < iters.size(); ++i) {
        int64_t estimate = iters[i]->EstimateKeys();
        if (estimate < best) {
          best = estimate;
          lead = i;
        }
      }
      if (lead != 0) std::swap(iters[0], iters[lead]);
    }
    if (range.has_lo && !iters[0]->AtEnd()) {
      if (depth == 0 && iters[0]->Key() < range.lo[0]) {
        iters[0]->Seek(range.lo[0]);
        ++seeks_;
      } else if (depth == 1 && range.depth == 2 &&
                 prefix_[0] == range.lo[0] && iters[0]->Key() < range.lo[1]) {
        iters[0]->Seek(range.lo[1]);
        ++seeks_;
      }
    }
  }

  // Charges n freshly materialized output rows (n x 8*arity bytes)
  // against the admission budget; no-op when the query has none.
  void ChargeOutput(int64_t n) {
    if (budget_ != nullptr) budget_->ChargeRows(n, n * row_bytes_);
  }

  // True when a budgeted query has tripped a ceiling and every loop
  // should unwind; the driver discards partial output.
  bool BudgetAborted() const {
    return budget_ != nullptr && budget_->violated();
  }

  // Stages one result row (prefix_[0..arity-1]) and flushes on a full
  // batch. Only the batched paths emit through here.
  void EmitRow() {
    batch_->PushRow(prefix_);
    ChargeOutput(1);
    if (batch_->full()) batch_->Flush(out_);
  }

  // Counts one binding at the deepest level and applies the prefix
  // filter; returns whether the binding survives.
  bool BindDeepest(size_t depth, int64_t key) {
    prefix_[depth] = key;
    ++level_totals_[depth];
    ++total_intermediate_;
    return !filter_ || filter_(depth, prefix_, filter_metrics_);
  }

  // Drains the entire deepest level for the current prefix. Called with
  // freshly opened, lead-swapped, lo-bounded iterators (OpenLevel);
  // afterwards the caller closes the level. Dispatch: bulk NextBlock
  // drain when a single input covers the level, the devirtualized
  // raw-cursor kernel when every participant exposes a CSR span, the
  // scalar leapfrog otherwise — identical bindings, seeks, and output
  // in all three.
  void RunDeepestLevel(std::vector<TrieIterator*>& iters, size_t depth,
                       const PrefixRange& range) {
    // Shard upper bounds can constrain levels 0 and 1 only; fold the
    // applicable one into a single exclusive key bound. A deepest level
    // at depth 0 means a one-attribute plan, and composite (depth-2)
    // ranges only arise on plans with >= 2 levels — so the bound at
    // depth 0 is always a plain exclusive level-0 cut.
    bool has_hi = false;
    int64_t hi = 0;
    if (range.has_hi) {
      if (depth == 0) {
        XJ_DCHECK(range.depth == 1);
        has_hi = true;
        hi = range.hi[0];
      } else if (depth == 1 && range.depth == 2 &&
                 prefix_[0] == range.hi[0]) {
        has_hi = true;
        hi = range.hi[1];
      }
    }

    if (iters.size() == 1) {
      DrainSingle(iters[0], depth, has_hi, hi);
      return;
    }

    raw_cursors_.clear();
    RawKeySpan span;
    for (TrieIterator* it : iters) {
      if (!it->RawLevelSpan(&span)) break;
      raw_cursors_.push_back(RawCursor{span.keys, span.pos, span.hi});
    }
    if (raw_cursors_.size() == iters.size()) {
      RunDeepestRaw(depth, has_hi, hi);
    } else {
      RunDeepestScalar(iters, depth, has_hi, hi);
    }
  }

  // Single participant: the intersection is the level itself, so the
  // kernel degenerates to bulk block copies — NextBlock drains straight
  // out of the CSR level array (or via the scalar default for lazy
  // tries), and filter-free runs land in the batch column-at-a-time.
  // Each drained key corresponds to exactly one scalar Next, hence
  // seeks_ += n.
  void DrainSingle(TrieIterator* it, size_t depth, bool has_hi, int64_t hi) {
    const int64_t bound = has_hi ? hi : std::numeric_limits<int64_t>::max();
    for (;;) {
      size_t n = it->NextBlock(bound, &*block_);
      seeks_ += static_cast<int64_t>(n);
      if (n > 0) {
        if (!filter_) {
          level_totals_[depth] += static_cast<int64_t>(n);
          total_intermediate_ += static_cast<int64_t>(n);
          const int64_t* keys = block_->keys.data();
          size_t count = n;
          while (count > 0) {
            size_t take = std::min(count, batch_->capacity() - batch_->size());
            batch_->PushRun(prefix_, keys, take);
            ChargeOutput(static_cast<int64_t>(take));
            if (batch_->full()) batch_->Flush(out_);
            keys += take;
            count -= take;
          }
        } else {
          for (int64_t key : block_->keys) {
            if (BindDeepest(depth, key)) EmitRow();
          }
        }
      }
      if (BudgetAborted()) return;
      if (n < block_->capacity) break;
    }
    if (!has_hi) {
      // NextBlock's exclusive bound cannot express "no bound" for keys
      // equal to INT64_MAX; bind any such stragglers scalar-wise.
      while (!it->AtEnd() && !BudgetAborted()) {
        if (BindDeepest(depth, it->Key())) EmitRow();
        it->Next();
        ++seeks_;
      }
    }
  }

  // All participants are CSR-backed: leapfrog over the raw key arrays —
  // galloping merges on plain int64_t loads, zero virtual dispatch per
  // key — emitting into the columnar batch.
  void RunDeepestRaw(size_t depth, bool has_hi, int64_t hi) {
    if (!RawAlign(&raw_cursors_, &seeks_)) return;
    for (;;) {
      if (BudgetAborted()) return;
      int64_t key = raw_cursors_[0].keys[raw_cursors_[0].pos];
      if (has_hi && key >= hi) return;
      if (BindDeepest(depth, key)) EmitRow();
      if (!RawAdvance(&raw_cursors_, &seeks_)) return;
    }
  }

  // Mixed participants (a lazy path trie in the intersection): the
  // existing scalar leapfrog drives the level, but results still flow
  // through the columnar batch.
  void RunDeepestScalar(std::vector<TrieIterator*>& iters, size_t depth,
                        bool has_hi, int64_t hi) {
    bool have = LeapfrogAlign(iters, &seeks_);
    while (have) {
      if (BudgetAborted()) return;
      int64_t key = iters[0]->Key();
      if (has_hi && key >= hi) return;
      if (BindDeepest(depth, key)) EmitRow();
      have = LeapfrogAdvance(iters, &seeks_);
    }
  }

  const PrefixFilter& filter_;
  Metrics* filter_metrics_;
  Relation* out_;
  BudgetTracker* budget_;   // null when the query has no finite budget
  bool count_cancel_;       // count cancellation polls (a token is attached)
  int64_t row_bytes_;       // bytes charged per materialized output row
  int64_t budget_ticks_ = 0;
  int64_t cancel_checks_ = 0;
  Tuple prefix_;
  std::vector<int64_t> level_totals_;
  std::vector<std::vector<TrieIterator*>> level_iters_;
  std::optional<ResultBatch> batch_;  // engaged iff batch_size > 0
  std::optional<KeyBlock> block_;     // NextBlock scratch, same capacity
  std::vector<RawCursor> raw_cursors_;
  int64_t seeks_ = 0;
  int64_t total_intermediate_ = 0;
};

// Publishes the merged engine counters in the same shape the serial
// engine always has.
void PublishMetrics(Metrics* metrics, const std::vector<int64_t>& level_totals,
                    int64_t seeks, int64_t total_intermediate,
                    int64_t output_rows, int64_t cancel_checks = 0) {
  if (metrics == nullptr) return;
  int64_t max_level = 0;
  for (size_t d = 0; d < level_totals.size(); ++d) {
    metrics->Add("gj.level" + std::to_string(d) + ".bindings",
                 level_totals[d]);
    max_level = std::max(max_level, level_totals[d]);
  }
  metrics->RecordMax("gj.max_intermediate", max_level);
  metrics->Add("gj.total_intermediate", total_intermediate);
  metrics->Add("gj.seeks", seeks);
  metrics->Add("gj.output", output_rows);
  // Only cancellable queries count their polls, so runs without a token
  // keep an identical counter set.
  if (cancel_checks > 0) metrics->Add("gj.cancel_checks", cancel_checks);
}

// Enumerates the distinct keys of the level-0 intersection (the shard
// partitioning domain) with a leapfrog over the level-0 participants
// only; leaves every iterator back at the virtual root.
std::vector<int64_t> Level0IntersectionKeys(
    const std::vector<TrieIterator*>& iters, int64_t* seeks) {
  std::vector<int64_t> keys;
  for (TrieIterator* it : iters) it->Open();
  if (LeapfrogAlign(iters, seeks)) {
    do {
      keys.push_back(iters[0]->Key());
    } while (LeapfrogAdvance(iters, seeks));
  }
  for (TrieIterator* it : iters) it->Up();
  return keys;
}

// Enumerates the (level-0, level-1) composite prefixes of the join —
// the deeper shard partitioning domain used when level 0 alone has
// fewer distinct keys than the requested shard count. Runs the engine
// over a two-level truncation of the plan; leaves every iterator back
// at the virtual root. Results are distinct and lexicographically
// ascending.
std::vector<std::array<int64_t, 2>> Level01PrefixPairs(
    const std::vector<JoinInput>& inputs, const std::vector<LevelPlan>& plan,
    int64_t* seeks) {
  std::vector<LevelPlan> plan2(plan.begin(), plan.begin() + 2);
  auto schema = Schema::Make({plan[0].attribute, plan[1].attribute});
  Relation pairs_rel(*schema);
  PrefixFilter no_filter;
  Engine engine(inputs, plan2, no_filter, nullptr, &pairs_rel);
  engine.Run(PrefixRange{});
  *seeks += engine.seeks();
  std::vector<std::array<int64_t, 2>> pairs;
  pairs.reserve(pairs_rel.num_rows());
  for (size_t r = 0; r < pairs_rel.num_rows(); ++r) {
    pairs.push_back({pairs_rel.at(r, 0), pairs_rel.at(r, 1)});
  }
  return pairs;
}

}  // namespace

Result<Relation> GenericJoin(const std::vector<JoinInput>& inputs,
                             const GenericJoinOptions& options) {
  const auto& order = options.attribute_order;
  if (order.empty()) return Status::InvalidArgument("empty attribute order");

  // A cancellation token rides the budget tracker as an extra "cancel
  // source": the per-binding violation poll then observes it for free.
  // A token without a caller budget gets a private unlimited tracker.
  BudgetTracker local_budget;
  BudgetTracker* budget = options.budget;
  if (options.cancel != nullptr) {
    if (budget == nullptr) budget = &local_budget;
    budget->AddCancelSource(options.cancel);
  }

  // Admission: refuse to start a query whose deadline already passed,
  // whose budget a prior stage already exhausted (a multi-step caller —
  // e.g. XJoin's expansion + validation — shares one tracker), or that
  // was cancelled before it began.
  if (budget != nullptr) {
    budget->CheckDeadline();
    if (budget->violated()) return budget->status();
  }

  // Build the per-level plan and validate input orders.
  std::vector<LevelPlan> plan(order.size());
  for (size_t d = 0; d < order.size(); ++d) plan[d].attribute = order[d];

  for (size_t i = 0; i < inputs.size(); ++i) {
    const JoinInput& in = inputs[i];
    if (in.iterator == nullptr) {
      return Status::InvalidArgument("input " + in.name + " has no iterator");
    }
    if (static_cast<size_t>(in.iterator->arity()) != in.attributes.size()) {
      return Status::InvalidArgument("input " + in.name + " arity mismatch");
    }
    // The input's attribute sequence must be a subsequence-in-order of
    // the global order, and the engine opens one trie level per global
    // level it participates in — so the input's k-th attribute must be
    // the k-th of its attributes encountered globally.
    size_t next = 0;
    for (const auto& attr : order) {
      if (next < in.attributes.size() && in.attributes[next] == attr) {
        ++next;
      }
    }
    if (next != in.attributes.size()) {
      return Status::InvalidArgument(
          "input " + in.name +
          " attribute order is inconsistent with the global order");
    }
    size_t seen = 0;
    for (size_t d = 0; d < order.size(); ++d) {
      if (seen < in.attributes.size() && in.attributes[seen] == order[d]) {
        plan[d].participants.push_back(i);
        ++seen;
      }
    }
  }

  for (size_t d = 0; d < plan.size(); ++d) {
    if (plan[d].participants.empty()) {
      return Status::InvalidArgument("attribute " + plan[d].attribute +
                                     " is covered by no input");
    }
  }

  XJ_ASSIGN_OR_RETURN(Schema schema, Schema::Make(order));
  Relation out(schema);

  const int num_threads = std::max(1, options.num_threads);
  const int requested_shards =
      options.num_shards > 0 ? options.num_shards : num_threads;

  if (requested_shards <= 1) {
    Engine engine(inputs, plan, options.prefix_filter, options.metrics, &out,
                  options.batch_size, budget);
    engine.Run(PrefixRange{});
    if (budget != nullptr && budget->violated()) {
      return budget->status();
    }
    PublishMetrics(options.metrics, engine.level_totals(), engine.seeks(),
                   engine.total_intermediate(),
                   static_cast<int64_t>(out.num_rows()),
                   engine.cancel_checks());
    return out;
  }

  // Sharded driver: partition the first attribute's matching keys into
  // contiguous ascending ranges, one per shard. When level 0 alone has
  // fewer distinct keys than the requested shard count (and the order
  // has a second attribute), fall back to sharding on the
  // level-0 x level-1 composite prefix instead of silently degenerating
  // to ~1 shard.
  int64_t plan_seeks = 0;
  std::vector<TrieIterator*> level0;
  level0.reserve(plan[0].participants.size());
  for (size_t i : plan[0].participants) level0.push_back(inputs[i].iterator);
  std::vector<int64_t> keys = Level0IntersectionKeys(level0, &plan_seeks);

  // Composite planning runs a serial two-level leapfrog, so by default
  // (shard_depth == 0) only pay for it when level-0 sharding would fall
  // well short of the request (under half the shards) — a near-miss
  // level-0 split is cheaper than enumerating the pair domain up front.
  // A prepared plan that already knows the domain sizes overrides the
  // decision through shard_depth.
  std::vector<std::array<int64_t, 2>> pairs;
  bool composite;
  if (options.shard_depth == 2) {
    composite = plan.size() >= 2 && !keys.empty();
  } else if (options.shard_depth == 1) {
    composite = false;
  } else {
    composite = keys.size() * 2 <= static_cast<size_t>(requested_shards) &&
                plan.size() >= 2 && !keys.empty();
  }
  if (composite) {
    pairs = Level01PrefixPairs(inputs, plan, &plan_seeks);
    composite = pairs.size() > 1;
  }

  const size_t domain = composite ? pairs.size() : keys.size();
  const size_t num_shards = std::min<size_t>(
      static_cast<size_t>(requested_shards), std::max<size_t>(domain, 1));

  if (num_shards <= 1) {
    // The prefix domain is too small to shard (0 or 1 distinct
    // prefixes): fall back to the serial engine instead of paying
    // clone + merge overhead.
    Engine engine(inputs, plan, options.prefix_filter, options.metrics, &out,
                  options.batch_size, budget);
    engine.Run(PrefixRange{});
    if (budget != nullptr && budget->violated()) {
      return budget->status();
    }
    PublishMetrics(options.metrics, engine.level_totals(), engine.seeks(),
                   engine.total_intermediate(),
                   static_cast<int64_t>(out.num_rows()),
                   engine.cancel_checks());
    if (options.metrics != nullptr) {
      options.metrics->Add("gj.shards", 1);
      options.metrics->Add("gj.shard_depth", 1);
      options.metrics->Add("gj.plan_seeks", plan_seeks);
    }
    return out;
  }

  struct Shard {
    std::vector<std::unique_ptr<TrieIterator>> owned;
    std::vector<JoinInput> inputs;
    PrefixRange range;
    Relation out;
    std::vector<int64_t> level_totals;
    int64_t seeks = 0;
    int64_t total_intermediate = 0;
    int64_t cancel_checks = 0;
    // Shard-local bag handed to the prefix filter; merged into
    // options.metrics at the barrier so filter counters stay exact.
    Metrics metrics;

    explicit Shard(Schema s) : out(std::move(s)) {}
  };

  std::vector<Shard> shards;
  shards.reserve(num_shards);
  const size_t per_shard = domain / num_shards;
  const size_t remainder = domain % num_shards;
  size_t cursor = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    Shard shard(schema);
    size_t take = per_shard + (s < remainder ? 1 : 0);
    shard.range.depth = composite ? 2 : 1;
    shard.range.has_lo = true;
    if (composite) {
      shard.range.lo[0] = pairs[cursor][0];
      shard.range.lo[1] = pairs[cursor][1];
    } else {
      shard.range.lo[0] = keys[cursor];
    }
    cursor += take;
    if (cursor < domain) {
      shard.range.has_hi = true;
      if (composite) {
        shard.range.hi[0] = pairs[cursor][0];
        shard.range.hi[1] = pairs[cursor][1];
      } else {
        shard.range.hi[0] = keys[cursor];
      }
    }
    shard.owned.reserve(inputs.size());
    shard.inputs.reserve(inputs.size());
    for (const JoinInput& in : inputs) {
      shard.owned.push_back(in.iterator->Clone());
      shard.inputs.push_back(
          JoinInput{in.name, in.attributes, shard.owned.back().get()});
    }
    shards.push_back(std::move(shard));
  }

  // Fault site: the executor hand-off. An armed hit fails the query
  // before any shard work is dispatched.
  if (XJOIN_FAULT("gj.shard_dispatch")) {
    return Status::Internal(
        "fault injection: shard dispatch to the executor failed "
        "(site gj.shard_dispatch)");
  }

  // Shards run as one morsel-driven job on the shared executor pool
  // (grain 1: each morsel is one shard), so N in-flight queries share
  // cores instead of each spawning num_threads threads. A shared budget
  // tracker aborts every shard once any of them trips a ceiling or sees
  // a cancellation.
  Executor* executor =
      options.executor != nullptr ? options.executor : Executor::Default();
  executor->ParallelFor(num_threads, shards.size(), /*grain=*/1,
                        [&](size_t s) {
    Shard& shard = shards[s];
    Metrics* filter_metrics =
        options.metrics != nullptr ? &shard.metrics : nullptr;
    Engine engine(shard.inputs, plan, options.prefix_filter, filter_metrics,
                  &shard.out, options.batch_size, budget);
    engine.Run(shard.range);
    shard.level_totals = engine.level_totals();
    shard.seeks = engine.seeks();
    shard.total_intermediate = engine.total_intermediate();
    shard.cancel_checks = engine.cancel_checks();
  });
  if (budget != nullptr && budget->violated()) {
    return budget->status();
  }

  // Deterministic merge: shards cover ascending key ranges, so appending
  // in shard order reproduces the serial row order exactly.
  std::vector<int64_t> level_totals(plan.size(), 0);
  int64_t seeks = 0;
  int64_t total_intermediate = 0;
  int64_t cancel_checks = 0;
  for (Shard& shard : shards) {
    out.AppendRows(shard.out);
    for (size_t d = 0; d < shard.level_totals.size(); ++d) {
      level_totals[d] += shard.level_totals[d];
    }
    seeks += shard.seeks;
    total_intermediate += shard.total_intermediate;
    cancel_checks += shard.cancel_checks;
    if (options.metrics != nullptr) options.metrics->MergeFrom(shard.metrics);
  }
  PublishMetrics(options.metrics, level_totals, seeks, total_intermediate,
                 static_cast<int64_t>(out.num_rows()), cancel_checks);
  if (options.metrics != nullptr) {
    options.metrics->Add("gj.shards", static_cast<int64_t>(num_shards));
    options.metrics->Add("gj.shard_depth", composite ? 2 : 1);
    options.metrics->Add("gj.plan_seeks", plan_seeks);
  }
  return out;
}

}  // namespace xjoin
