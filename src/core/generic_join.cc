#include "core/generic_join.h"

#include <algorithm>

#include "common/logging.h"
#include "relational/schema.h"

namespace xjoin {

bool LeapfrogAlign(const std::vector<TrieIterator*>& iters, int64_t* seeks) {
  if (iters.empty()) return false;
  for (TrieIterator* it : iters) {
    if (it->AtEnd()) return false;
  }
  for (;;) {
    int64_t max_key = iters[0]->Key();
    for (TrieIterator* it : iters) max_key = std::max(max_key, it->Key());
    bool all_equal = true;
    for (TrieIterator* it : iters) {
      if (it->Key() < max_key) {
        it->Seek(max_key);
        if (seeks != nullptr) ++*seeks;
        if (it->AtEnd()) return false;
        if (it->Key() > max_key) {
          all_equal = false;  // overshoot: new max, restart
          break;
        }
      }
    }
    if (all_equal) return true;
  }
}

bool LeapfrogAdvance(const std::vector<TrieIterator*>& iters, int64_t* seeks) {
  if (iters.empty()) return false;
  iters[0]->Next();
  if (seeks != nullptr) ++*seeks;
  if (iters[0]->AtEnd()) return false;
  return LeapfrogAlign(iters, seeks);
}

namespace {

// Per-depth plan entry: which inputs participate in the attribute bound
// at that depth.
struct LevelPlan {
  std::string attribute;
  std::vector<size_t> participants;  // indices into inputs
};

class Engine {
 public:
  Engine(const std::vector<JoinInput>& inputs, const GenericJoinOptions& options,
         std::vector<LevelPlan> plan, Relation* out)
      : inputs_(inputs),
        options_(options),
        plan_(std::move(plan)),
        out_(out),
        prefix_(plan_.size(), 0) {}

  void Run() {
    level_totals_.assign(plan_.size(), 0);
    Descend(0);
    if (options_.metrics != nullptr) {
      int64_t max_level = 0;
      for (size_t d = 0; d < plan_.size(); ++d) {
        options_.metrics->Add("gj.level" + std::to_string(d) + ".bindings",
                              level_totals_[d]);
        max_level = std::max(max_level, level_totals_[d]);
      }
      options_.metrics->RecordMax("gj.max_intermediate", max_level);
      options_.metrics->Add("gj.total_intermediate", total_intermediate_);
      options_.metrics->Add("gj.seeks", seeks_);
      options_.metrics->Add("gj.output", static_cast<int64_t>(out_->num_rows()));
    }
  }

 private:
  void Descend(size_t depth) {
    const LevelPlan& level = plan_[depth];
    std::vector<TrieIterator*> iters;
    iters.reserve(level.participants.size());
    for (size_t i : level.participants) {
      inputs_[i].iterator->Open();
      iters.push_back(inputs_[i].iterator);
    }
    if (LeapfrogAlign(iters, &seeks_)) {
      do {
        prefix_[depth] = iters[0]->Key();
        ++level_totals_[depth];
        ++total_intermediate_;
        bool keep = true;
        if (options_.prefix_filter) {
          keep = options_.prefix_filter(depth, PrefixView(depth));
        }
        if (keep) {
          if (depth + 1 == plan_.size()) {
            out_->AppendRow(prefix_);
          } else {
            Descend(depth + 1);
          }
        }
      } while (LeapfrogAdvance(iters, &seeks_));
    }
    for (size_t i : level.participants) inputs_[i].iterator->Up();
  }

  std::vector<int64_t> PrefixView(size_t depth) const {
    return std::vector<int64_t>(prefix_.begin(),
                                prefix_.begin() + static_cast<ptrdiff_t>(depth) + 1);
  }

  const std::vector<JoinInput>& inputs_;
  const GenericJoinOptions& options_;
  std::vector<LevelPlan> plan_;
  Relation* out_;
  Tuple prefix_;
  std::vector<int64_t> level_totals_;
  int64_t seeks_ = 0;
  int64_t total_intermediate_ = 0;
};

}  // namespace

Result<Relation> GenericJoin(const std::vector<JoinInput>& inputs,
                             const GenericJoinOptions& options) {
  const auto& order = options.attribute_order;
  if (order.empty()) return Status::InvalidArgument("empty attribute order");

  // Build the per-level plan and validate input orders.
  std::vector<LevelPlan> plan(order.size());
  for (size_t d = 0; d < order.size(); ++d) plan[d].attribute = order[d];

  for (size_t i = 0; i < inputs.size(); ++i) {
    const JoinInput& in = inputs[i];
    if (in.iterator == nullptr) {
      return Status::InvalidArgument("input " + in.name + " has no iterator");
    }
    if (static_cast<size_t>(in.iterator->arity()) != in.attributes.size()) {
      return Status::InvalidArgument("input " + in.name + " arity mismatch");
    }
    // The input's attribute sequence must be a subsequence-in-order of
    // the global order, and the engine opens one trie level per global
    // level it participates in — so the input's k-th attribute must be
    // the k-th of its attributes encountered globally.
    size_t next = 0;
    for (const auto& attr : order) {
      if (next < in.attributes.size() && in.attributes[next] == attr) {
        ++next;
      }
    }
    if (next != in.attributes.size()) {
      return Status::InvalidArgument(
          "input " + in.name +
          " attribute order is inconsistent with the global order");
    }
    size_t seen = 0;
    for (size_t d = 0; d < order.size(); ++d) {
      if (seen < in.attributes.size() && in.attributes[seen] == order[d]) {
        plan[d].participants.push_back(i);
        ++seen;
      }
    }
  }

  for (size_t d = 0; d < plan.size(); ++d) {
    if (plan[d].participants.empty()) {
      return Status::InvalidArgument("attribute " + plan[d].attribute +
                                     " is covered by no input");
    }
  }

  XJ_ASSIGN_OR_RETURN(Schema schema, Schema::Make(order));
  Relation out(std::move(schema));
  Engine engine(inputs, options, std::move(plan), &out);
  engine.Run();
  return out;
}

}  // namespace xjoin
