#include "core/database.h"

#include <algorithm>
#include <utility>

#include "common/fault.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "xml/parser.h"
#include "xml/twig.h"

namespace xjoin {

namespace {

// Cache keys for the shared trie LRU. Relation tries key on
// (name, version, induced attribute order); materialized path tries on
// (document, version, path signature). The '\x1F' separators cannot
// occur in registered names or attribute names that come from parsing.
std::string RelationTrieKey(const std::string& name, uint64_t version,
                            const std::vector<std::string>& order) {
  return "rel\x1F" + name + "\x1F" + std::to_string(version) + "\x1F" +
         JoinStrings(order, ",");
}

std::string PathTrieKey(const std::string& doc_name, uint64_t version,
                        const std::string& signature) {
  return "path\x1F" + doc_name + "\x1F" + std::to_string(version) + "\x1F" +
         signature;
}

// Plan-cache key: canonical query spelling + options fingerprint, so
// "Q(*) := R,S" and "Q(*):=R, S" share a plan while num_threads or
// structural_pruning variants get distinct ones. Per-call services
// (metrics, providers, budget, executor) are not in the fingerprint.
std::string PlanCacheKey(const std::string& text, const XJoinOptions& options) {
  return CanonicalizeQueryText(text) + "\x1F" +
         HashToHex(PlanFingerprint(options));
}

// Whether every source the plan read exists in the snapshot at the
// same version (the hit condition for a session).
bool PlanMatchesSnapshot(const XJoinPlan& plan,
                         const internal::DatabaseSnapshot& snap) {
  for (const auto& source : plan.sources) {
    if (source.is_document) {
      auto it = snap.documents.find(source.name);
      if (it == snap.documents.end() || it->second.version != source.version) {
        return false;
      }
    } else {
      auto it = snap.relations.find(source.name);
      if (it == snap.relations.end() || it->second.version != source.version) {
        return false;
      }
    }
  }
  return true;
}

// Document name for a NodeIndex pointer within a snapshot; empty if the
// index is foreign (not part of this snapshot).
std::string SnapshotDocumentNameOf(const internal::DatabaseSnapshot& snap,
                                   const NodeIndex* index) {
  for (const auto& [name, doc] : snap.documents) {
    if (doc.index.get() == index) return name;
  }
  return std::string();
}

// Splits on commas at bracket depth zero (twig branches keep their
// commas).
std::vector<std::string> SplitTopLevel(std::string_view text) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  for (char c : text) {
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

// Applies a RelationDelta to columnar storage with set semantics:
// deletes drop every matching row, inserts append rows not already
// present. O(rows * log(deletes) + inserts * rows) — deltas are small
// by contract, and the trie rebuild this path replaces dwarfs the copy.
Relation ApplyDeltaRows(const Relation& base, const RelationDelta& delta) {
  std::vector<Tuple> deletes = delta.deletes;
  std::sort(deletes.begin(), deletes.end());
  Relation next(base.schema());
  next.Reserve(base.num_rows() + delta.inserts.size());
  for (size_t r = 0; r < base.num_rows(); ++r) {
    Tuple row = base.GetRow(r);
    if (!std::binary_search(deletes.begin(), deletes.end(), row)) {
      next.AppendRow(row);
    }
  }
  for (const Tuple& t : delta.inserts) {
    if (!next.ContainsRow(t)) next.AppendRow(t);
  }
  return next;
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registration and the copy-on-swap registry
// ---------------------------------------------------------------------------

Status MultiModelDatabase::RegisterRelationCsv(const std::string& name,
                                               std::string_view csv,
                                               const CsvOptions& options) {
  XJ_ASSIGN_OR_RETURN(Relation rel, ReadCsv(csv, options, &dict_));
  return RegisterRelation(name, std::move(rel));
}

Status MultiModelDatabase::RegisterRelation(const std::string& name,
                                            Relation relation) {
  if (name.empty()) return Status::InvalidArgument("empty relation name");
  auto shared = std::make_shared<const Relation>(std::move(relation));
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  if (relations_.count(name) || documents_.count(name)) {
    return Status::AlreadyExists(name + " is already registered");
  }
  relations_.emplace(name, RelationEntry{std::move(shared), 0});
  return Status::OK();
}

Status MultiModelDatabase::UpdateRelation(const std::string& name,
                                          Relation relation) {
  auto shared = std::make_shared<const Relation>(std::move(relation));
  // Writers are serialized (update_mu_ outermost) so a concurrent
  // ApplyRelationDelta cannot interleave its read-modify-write with
  // this full replacement.
  std::lock_guard<std::mutex> update_lock(update_mu_);
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    auto it = relations_.find(name);
    if (it == relations_.end()) return Status::NotFound("no relation " + name);
    // Copy-on-swap: the old shared_ptr stays alive while any session,
    // plan, or in-flight query pins it; new snapshots see the new one.
    it->second.relation = std::move(shared);
    ++it->second.version;
  }
  // Cache invalidation after releasing the registry lock (lock order:
  // never hold registry_mu_ while taking a cache mutex).
  InvalidateTrieCache(name);
  InvalidatePlans(name);
  return Status::OK();
}

Status MultiModelDatabase::ApplyRelationDelta(const std::string& name,
                                              const RelationDelta& delta) {
  if (delta.inserts.empty() && delta.deletes.empty()) return Status::OK();
  // Serialize writers: everything below is a read-modify-write of the
  // registry entry and of every cached trie derived from it.
  std::lock_guard<std::mutex> update_lock(update_mu_);

  std::shared_ptr<const Relation> base;
  uint64_t old_version = 0;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto it = relations_.find(name);
    if (it == relations_.end()) return Status::NotFound("no relation " + name);
    base = it->second.relation;
    old_version = it->second.version;
  }
  const Schema& schema = base->schema();
  const size_t arity = schema.size();
  if (arity == 0) {
    return Status::InvalidArgument("cannot delta a zero-arity relation");
  }
  for (const Tuple& t : delta.inserts) {
    if (t.size() != arity) {
      return Status::InvalidArgument("delta tuple arity mismatch for " + name);
    }
  }
  for (const Tuple& t : delta.deletes) {
    if (t.size() != arity) {
      return Status::InvalidArgument("delta tuple arity mismatch for " + name);
    }
  }

  // 1. New relation contents, copy-on-swap (set semantics).
  auto next = std::make_shared<const Relation>(ApplyDeltaRows(*base, delta));

  // 2. Collect the cached tries keyed at (name, old_version) and patch
  // each outside the cache lock (compaction can take a while):
  // RelationTrie::ApplyDelta returns a new trie sharing the base level
  // arrays, so session snapshots and plans pinning the old objects are
  // untouched. Tuples are permuted into each trie's attribute order.
  std::vector<std::shared_ptr<const RelationTrie>> old_tries;
  const std::string old_prefix =
      "rel\x1F" + name + "\x1F" + std::to_string(old_version) + "\x1F";
  {
    std::lock_guard<std::mutex> lock(trie_cache_mu_);
    for (const TrieCacheEntry& entry : trie_lru_) {
      if (entry.owner == name && HasPrefix(entry.key, old_prefix)) {
        old_tries.push_back(entry.trie);
      }
    }
  }
  TrieDeltaOptions delta_options;
  delta_options.compact_ratio = trie_delta_ratio_;
  delta_options.compact_min_rows = trie_delta_min_rows_;
  std::vector<std::pair<std::string, std::shared_ptr<const RelationTrie>>>
      patched;
  patched.reserve(old_tries.size());
  int64_t compactions = 0;
  for (const auto& old_trie : old_tries) {
    const std::vector<std::string>& order = old_trie->attribute_order();
    std::vector<size_t> perm(arity);
    for (size_t i = 0; i < arity; ++i) {
      perm[i] = static_cast<size_t>(schema.IndexOf(order[i]));
    }
    auto permute = [&](const std::vector<Tuple>& tuples) {
      std::vector<Tuple> out(tuples.size(), Tuple(arity));
      for (size_t r = 0; r < tuples.size(); ++r) {
        for (size_t i = 0; i < arity; ++i) out[r][i] = tuples[r][perm[i]];
      }
      return out;
    };
    XJ_ASSIGN_OR_RETURN(
        RelationTrie fresh,
        old_trie->ApplyDelta(permute(delta.inserts), permute(delta.deletes),
                             delta_options));
    auto shared = std::make_shared<const RelationTrie>(std::move(fresh));
    if (!shared->SharesBaseWith(*old_trie)) ++compactions;
    patched.emplace_back(RelationTrieKey(name, old_version + 1, order),
                         std::move(shared));
  }

  // Fault site: a failure here (after patching, before publication)
  // must leave the old version fully intact — the registry entry,
  // version, and every cached trie are untouched because nothing above
  // mutated shared state.
  if (XJOIN_FAULT("trie.compact")) {
    return Status::Internal("fault injection: delta compaction for " + name +
                            " failed before publish (site trie.compact)");
  }

  // 3. Publish: swap the storage and bump the version (update_mu_
  // guarantees it is still old_version).
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    auto it = relations_.find(name);
    if (it == relations_.end()) return Status::NotFound("no relation " + name);
    it->second.relation = std::move(next);
    it->second.version = old_version + 1;
  }

  // 4. Re-key the patched tries under the new version and drop the
  // old-version entries (pins keep the old objects alive for open
  // sessions). Cached plans are deliberately NOT invalidated: their
  // next hit revalidates versions and rebinds to the patched tries
  // (see PreparePlanSnapshot) instead of re-planning.
  {
    std::lock_guard<std::mutex> lock(trie_cache_mu_);
    for (auto it = trie_lru_.begin(); it != trie_lru_.end();) {
      if (it->owner == name && HasPrefix(it->key, old_prefix)) {
        trie_cache_bytes_ -= it->bytes;
        trie_index_.erase(it->key);
        it = trie_lru_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& [key, trie] : patched) {
      ++trie_cache_patches_;
      TrieCacheInsertLocked(std::move(key), name, std::move(trie));
    }
    trie_cache_compactions_ += compactions;
  }
  return Status::OK();
}

void MultiModelDatabase::SetTrieDeltaCompaction(double ratio,
                                                size_t min_rows) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  trie_delta_ratio_ = ratio;
  trie_delta_min_rows_ = min_rows;
}

Status MultiModelDatabase::RegisterDocumentXml(const std::string& name,
                                               std::string_view xml,
                                               ValuePolicy policy) {
  XJ_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(xml));
  return RegisterDocument(name, std::move(doc), policy);
}

Status MultiModelDatabase::RegisterDocument(const std::string& name,
                                            XmlDocument doc,
                                            ValuePolicy policy) {
  if (name.empty()) return Status::InvalidArgument("empty document name");
  // Build the index outside the lock (indexing is the expensive part;
  // Dictionary::Intern synchronizes internally).
  auto doc_shared = std::make_shared<const XmlDocument>(std::move(doc));
  auto index = std::make_shared<const NodeIndex>(
      NodeIndex::Build(doc_shared.get(), &dict_, policy));
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  if (relations_.count(name) || documents_.count(name)) {
    return Status::AlreadyExists(name + " is already registered");
  }
  documents_.emplace(
      name, DocumentEntry{std::move(doc_shared), std::move(index), 0});
  return Status::OK();
}

Status MultiModelDatabase::UpdateDocumentXml(const std::string& name,
                                             std::string_view xml,
                                             ValuePolicy policy) {
  XJ_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(xml));
  return UpdateDocument(name, std::move(doc), policy);
}

Status MultiModelDatabase::UpdateDocument(const std::string& name,
                                          XmlDocument doc,
                                          ValuePolicy policy) {
  auto doc_shared = std::make_shared<const XmlDocument>(std::move(doc));
  auto index = std::make_shared<const NodeIndex>(
      NodeIndex::Build(doc_shared.get(), &dict_, policy));
  std::lock_guard<std::mutex> update_lock(update_mu_);
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    auto it = documents_.find(name);
    if (it == documents_.end()) return Status::NotFound("no document " + name);
    it->second.doc = std::move(doc_shared);
    it->second.index = std::move(index);
    ++it->second.version;
  }
  InvalidateTrieCache(name);
  InvalidatePlans(name);
  return Status::OK();
}

Result<const Relation*> MultiModelDatabase::relation(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("no relation " + name);
  return it->second.relation.get();
}

Result<const NodeIndex*> MultiModelDatabase::document_index(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = documents_.find(name);
  if (it == documents_.end()) return Status::NotFound("no document " + name);
  return it->second.index.get();
}

std::vector<std::string> MultiModelDatabase::RelationNames() const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, entry] : relations_) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MultiModelDatabase::DocumentNames() const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(documents_.size());
  for (const auto& [name, doc] : documents_) {
    (void)doc;
    names.push_back(name);
  }
  return names;
}

Result<uint64_t> MultiModelDatabase::relation_version(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("no relation " + name);
  return it->second.version;
}

Result<uint64_t> MultiModelDatabase::document_version(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = documents_.find(name);
  if (it == documents_.end()) return Status::NotFound("no document " + name);
  return it->second.version;
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

std::shared_ptr<const internal::DatabaseSnapshot>
MultiModelDatabase::TakeSnapshot() const {
  auto snap = std::make_shared<internal::DatabaseSnapshot>();
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  for (const auto& [name, entry] : relations_) {
    snap->relations.emplace(
        name, internal::SnapshotRelation{entry.relation, entry.version});
  }
  for (const auto& [name, entry] : documents_) {
    snap->documents.emplace(
        name,
        internal::SnapshotDocument{entry.doc, entry.index, entry.version});
  }
  return snap;
}

Session MultiModelDatabase::OpenSession() const {
  return Session(this, TakeSnapshot());
}

Result<Relation> Session::Query(const std::string& text,
                                const QueryOptions& options) const {
  return db_->RunQuery(text, options, snap_, cancel_.get());
}

Result<PreparedQuery> Session::Prepare(const std::string& text,
                                       const QueryOptions& options) const {
  XJoinOptions xopts = options.xjoin;
  if (xopts.metrics == nullptr) xopts.metrics = options.metrics;
  XJ_ASSIGN_OR_RETURN(std::shared_ptr<const XJoinPlan> plan,
                      db_->PreparePlanSnapshot(text, xopts, snap_));
  return PreparedQuery{std::move(plan)};
}

Result<Relation> Session::Execute(const PreparedQuery& prepared,
                                  const QueryOptions& options) const {
  if (prepared.plan == nullptr) {
    return Status::InvalidArgument("empty PreparedQuery");
  }
  return db_->RunPlan(*prepared.plan, options, cancel_.get(),
                      prepared.cancel.get());
}

Result<std::string> Session::Explain(const std::string& text,
                                     const QueryOptions& options) const {
  XJoinOptions xopts = options.xjoin;
  if (xopts.metrics == nullptr) xopts.metrics = options.metrics;
  XJ_ASSIGN_OR_RETURN(std::shared_ptr<const XJoinPlan> plan,
                      db_->PreparePlanSnapshot(text, xopts, snap_));
  std::string out = "query: " + CanonicalizeQueryText(text) + "\n";
  out += ExplainPlan(*plan);
  CacheStats stats = db_->cache_stats();
  out += "plan cache: " + std::to_string(stats.plan_hits) + " hits, " +
         std::to_string(stats.plan_misses) + " misses, " +
         std::to_string(stats.plan_invalidations) +
         " invalidations (key = canonical text + options fingerprint)\n";
  out += "trie cache: " + std::to_string(stats.trie_entries) + " tries, " +
         std::to_string(stats.trie_bytes) + " bytes (budget " +
         std::to_string(stats.trie_budget) + "), " +
         std::to_string(stats.trie_hits) + " hits, " +
         std::to_string(stats.trie_misses) + " misses, " +
         std::to_string(stats.trie_evictions) + " evictions\n";
  out += "admission: " + std::to_string(stats.admission_admitted) +
         " admitted, " + std::to_string(stats.admission_queued) +
         " queued, " + std::to_string(stats.admission_rejected) +
         " rejected, " + std::to_string(stats.admission_cancelled) +
         " cancelled\n";
  return out;
}

std::vector<std::string> Session::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(snap_->relations.size());
  for (const auto& [name, entry] : snap_->relations) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> Session::DocumentNames() const {
  std::vector<std::string> names;
  names.reserve(snap_->documents.size());
  for (const auto& [name, doc] : snap_->documents) {
    (void)doc;
    names.push_back(name);
  }
  return names;
}

Result<uint64_t> Session::relation_version(const std::string& name) const {
  auto it = snap_->relations.find(name);
  if (it == snap_->relations.end()) {
    return Status::NotFound("no relation " + name);
  }
  return it->second.version;
}

Result<uint64_t> Session::document_version(const std::string& name) const {
  auto it = snap_->documents.find(name);
  if (it == snap_->documents.end()) {
    return Status::NotFound("no document " + name);
  }
  return it->second.version;
}

// ---------------------------------------------------------------------------
// Parsing (against a snapshot)
// ---------------------------------------------------------------------------

Result<MultiModelQuery> MultiModelDatabase::ParseQuery(
    const std::string& text, const internal::DatabaseSnapshot& snap) const {
  MultiModelQuery query;
  std::string_view rest = TrimWhitespace(text);

  // Optional head "Name(attrs) :=".
  auto assign = rest.find(":=");
  if (assign != std::string_view::npos) {
    std::string_view head = TrimWhitespace(rest.substr(0, assign));
    rest = TrimWhitespace(rest.substr(assign + 2));
    auto open = head.find('(');
    if (open == std::string_view::npos || head.back() != ')') {
      return Status::ParseError("query head must look like Q(a, b)");
    }
    std::string_view attrs = head.substr(open + 1, head.size() - open - 2);
    if (TrimWhitespace(attrs) != "*") {
      for (const auto& part : SplitString(attrs, ',')) {
        std::string attr(TrimWhitespace(part));
        if (attr.empty()) return Status::ParseError("empty output attribute");
        query.output_attributes.push_back(std::move(attr));
      }
    }
  }
  if (rest.empty()) return Status::ParseError("query has no inputs");

  for (const auto& part : SplitTopLevel(rest)) {
    std::string_view input = TrimWhitespace(part);
    if (input.empty()) return Status::ParseError("empty query input");
    auto colon = input.find(':');
    if (colon == std::string_view::npos) {
      // Relation reference, bound to the snapshot's pinned storage.
      std::string name(input);
      auto it = snap.relations.find(name);
      if (it == snap.relations.end()) {
        return Status::NotFound("no relation " + name);
      }
      query.relations.push_back({name, it->second.relation.get()});
    } else {
      std::string doc_name(TrimWhitespace(input.substr(0, colon)));
      std::string pattern(TrimWhitespace(input.substr(colon + 1)));
      auto it = snap.documents.find(doc_name);
      if (it == snap.documents.end()) {
        return Status::NotFound("no document " + doc_name);
      }
      XJ_ASSIGN_OR_RETURN(Twig twig, Twig::Parse(pattern));
      query.twigs.push_back(TwigInput{std::move(twig), it->second.index.get()});
    }
  }
  XJ_RETURN_NOT_OK(ValidateQuery(query));
  return query;
}

// ---------------------------------------------------------------------------
// Trie cache
// ---------------------------------------------------------------------------

std::shared_ptr<const RelationTrie> MultiModelDatabase::TrieCacheLookupLocked(
    const std::string& key) const {
  auto it = trie_index_.find(key);
  if (it == trie_index_.end()) return nullptr;
  trie_lru_.splice(trie_lru_.begin(), trie_lru_, it->second);  // touch
  return it->second->trie;
}

void MultiModelDatabase::TrieCacheInsertLocked(
    std::string key, std::string owner,
    std::shared_ptr<const RelationTrie> trie) const {
  if (trie_index_.count(key) != 0) return;  // lost a build race; keep first
  size_t bytes = trie->ByteSizeEstimate();
  if (bytes > trie_cache_budget_) return;  // oversize: serve uncached
  TrieCacheEntry entry;
  entry.key = key;
  entry.owner = std::move(owner);
  entry.bytes = bytes;
  entry.trie = std::move(trie);
  trie_lru_.push_front(std::move(entry));
  trie_index_[std::move(key)] = trie_lru_.begin();
  trie_cache_bytes_ += bytes;
  while (trie_cache_bytes_ > trie_cache_budget_ && trie_lru_.size() > 1) {
    const TrieCacheEntry& victim = trie_lru_.back();
    trie_cache_bytes_ -= victim.bytes;
    trie_index_.erase(victim.key);
    trie_lru_.pop_back();
    ++trie_cache_evictions_;
  }
}

void MultiModelDatabase::InvalidateTrieCache(const std::string& name) {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  for (auto it = trie_lru_.begin(); it != trie_lru_.end();) {
    if (it->owner == name) {
      trie_cache_bytes_ -= it->bytes;
      trie_index_.erase(it->key);
      it = trie_lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void MultiModelDatabase::ClearTrieCache() {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  trie_lru_.clear();
  trie_index_.clear();
  trie_cache_bytes_ = 0;
}

void MultiModelDatabase::SetTrieCacheBudget(size_t bytes) {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  trie_cache_budget_ = bytes;
  while (trie_cache_bytes_ > trie_cache_budget_ && !trie_lru_.empty()) {
    const TrieCacheEntry& victim = trie_lru_.back();
    trie_cache_bytes_ -= victim.bytes;
    trie_index_.erase(victim.key);
    trie_lru_.pop_back();
    ++trie_cache_evictions_;
  }
}

size_t MultiModelDatabase::trie_cache_budget() const {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  return trie_cache_budget_;
}

TrieProvider MultiModelDatabase::CacheTrieProvider(
    std::shared_ptr<const internal::DatabaseSnapshot> snap, Metrics* metrics,
    int num_threads, const CancellationToken* cancel) const {
  const MultiModelDatabase* self = this;
  return [self, snap = std::move(snap), metrics, num_threads, cancel](
             const std::string& name, const Relation& relation,
             const std::vector<std::string>& order)
             -> Result<std::shared_ptr<const RelationTrie>> {
    auto entry = snap->relations.find(name);
    if (entry == snap->relations.end() ||
        entry->second.relation.get() != &relation) {
      // Not one of the snapshot's relations (defensive: a provider is
      // only as good as its key) — let the engine build privately.
      return std::shared_ptr<const RelationTrie>();
    }
    // The key embeds the snapshot version, so an old session can never
    // be served a trie over newer data (and vice versa). Inserting an
    // old-version trie after an update is harmless: it can only be hit
    // by sessions on the same version, and the update's owner-wide
    // invalidation / LRU pressure reclaims it.
    std::string key = RelationTrieKey(name, entry->second.version, order);
    {
      std::lock_guard<std::mutex> lock(self->trie_cache_mu_);
      auto hit = self->TrieCacheLookupLocked(key);
      if (hit != nullptr) {
        ++self->trie_cache_hits_;
        MetricsAdd(metrics, "db.trie_cache.hits", 1);
        return hit;
      }
    }
    // Cache miss: a cancelled query must not pay for (or fault tests
    // silently survive) a cold build.
    if (cancel != nullptr && cancel->cancelled()) return cancel->status();
    if (XJOIN_FAULT("trie.build")) {
      return Status::Internal("fault injection: trie build for " + name +
                              " failed (site trie.build)");
    }
    // Build outside the lock (concurrent queries may race to build the
    // same trie; the insert below keeps the first and the extra build
    // is discarded — correctness over double-build avoidance).
    TrieBuildOptions build_options;
    build_options.num_threads = num_threads;
    build_options.metrics = metrics;
    XJ_ASSIGN_OR_RETURN(RelationTrie trie,
                        RelationTrie::Build(relation, order, build_options));
    auto shared = std::make_shared<const RelationTrie>(std::move(trie));
    std::lock_guard<std::mutex> lock(self->trie_cache_mu_);
    ++self->trie_cache_misses_;
    MetricsAdd(metrics, "db.trie_cache.misses", 1);
    int64_t before = self->trie_cache_evictions_;
    self->TrieCacheInsertLocked(std::move(key), name, shared);
    MetricsAdd(metrics, "db.trie_cache.evictions",
               self->trie_cache_evictions_ - before);
    return shared;
  };
}

PathTrieProvider MultiModelDatabase::CachePathTrieProvider(
    std::shared_ptr<const internal::DatabaseSnapshot> snap, Metrics* metrics,
    int num_threads, const CancellationToken* cancel) const {
  const MultiModelDatabase* self = this;
  return [self, snap = std::move(snap), metrics, num_threads, cancel](
             const PathRelation& relation, const std::string& signature)
             -> Result<std::shared_ptr<const RelationTrie>> {
    std::string doc_name = SnapshotDocumentNameOf(*snap, &relation.index());
    if (doc_name.empty()) {
      // A foreign document — no identity, no caching.
      return std::shared_ptr<const RelationTrie>();
    }
    uint64_t version = snap->documents.find(doc_name)->second.version;
    std::string key = PathTrieKey(doc_name, version, signature);
    {
      std::lock_guard<std::mutex> lock(self->trie_cache_mu_);
      auto hit = self->TrieCacheLookupLocked(key);
      if (hit != nullptr) {
        ++self->trie_cache_hits_;
        MetricsAdd(metrics, "db.trie_cache.hits", 1);
        return hit;
      }
    }
    if (cancel != nullptr && cancel->cancelled()) return cancel->status();
    if (XJOIN_FAULT("trie.build")) {
      return Status::Internal("fault injection: path trie build for " +
                              doc_name + " failed (site trie.build)");
    }
    TrieBuildOptions build_options;
    build_options.num_threads = num_threads;
    build_options.metrics = metrics;
    XJ_ASSIGN_OR_RETURN(Relation materialized, relation.Materialize());
    XJ_ASSIGN_OR_RETURN(RelationTrie trie,
                        RelationTrie::Build(materialized, relation.attributes(),
                                            build_options));
    auto shared = std::make_shared<const RelationTrie>(std::move(trie));
    std::lock_guard<std::mutex> lock(self->trie_cache_mu_);
    ++self->trie_cache_misses_;
    MetricsAdd(metrics, "db.trie_cache.misses", 1);
    int64_t before = self->trie_cache_evictions_;
    self->TrieCacheInsertLocked(std::move(key), doc_name, shared);
    MetricsAdd(metrics, "db.trie_cache.evictions",
               self->trie_cache_evictions_ - before);
    return shared;
  };
}

// ---------------------------------------------------------------------------
// Plan cache (snapshot-aware)
// ---------------------------------------------------------------------------

void MultiModelDatabase::ClearPlanCache() {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  plan_cache_.clear();
  plan_lru_.clear();
}

void MultiModelDatabase::SetPlanCacheCapacity(size_t max_plans) {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  plan_cache_capacity_ = max_plans;
  while (plan_cache_.size() > plan_cache_capacity_) {
    plan_cache_.erase(plan_lru_.back());
    plan_lru_.pop_back();
    ++plan_cache_evictions_;
  }
}

size_t MultiModelDatabase::plan_cache_capacity() const {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  return plan_cache_capacity_;
}

void MultiModelDatabase::InvalidatePlans(const std::string& name) {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  for (auto it = plan_cache_.begin(); it != plan_cache_.end();) {
    const auto& sources = it->second.plan->sources;
    bool depends = std::any_of(
        sources.begin(), sources.end(),
        [&name](const XJoinPlan::SourceVersion& s) { return s.name == name; });
    if (depends) {
      plan_lru_.erase(it->second.lru);
      it = plan_cache_.erase(it);
      ++plan_cache_invalidations_;
    } else {
      ++it;
    }
  }
}

CacheStats MultiModelDatabase::cache_stats() const {
  CacheStats stats;
  {
    // Lock order: trie then plan (nowhere does the reverse nesting
    // exist); each section is read atomically under its own mutex.
    std::lock_guard<std::mutex> trie_lock(trie_cache_mu_);
    std::lock_guard<std::mutex> plan_lock(plan_cache_mu_);
    stats.trie_entries = trie_lru_.size();
    stats.trie_bytes = trie_cache_bytes_;
    stats.trie_budget = trie_cache_budget_;
    stats.trie_hits = trie_cache_hits_;
    stats.trie_misses = trie_cache_misses_;
    stats.trie_evictions = trie_cache_evictions_;
    stats.trie_patches = trie_cache_patches_;
    stats.trie_compactions = trie_cache_compactions_;
    stats.plan_entries = plan_cache_.size();
    stats.plan_capacity = plan_cache_capacity_;
    stats.plan_hits = plan_cache_hits_;
    stats.plan_misses = plan_cache_misses_;
    stats.plan_invalidations = plan_cache_invalidations_;
    stats.plan_evictions = plan_cache_evictions_;
    stats.plan_rebinds = plan_cache_rebinds_;
  }
  // Admission totals: live pools + pools already removed + queries that
  // ran without a tenant. tenant_mu_ is a leaf lock, taken on its own.
  stats.admission_admitted = untenanted_admitted_.load();
  stats.admission_cancelled = untenanted_cancelled_.load();
  {
    std::lock_guard<std::mutex> tenant_lock(tenant_mu_);
    stats.admission_admitted += tenant_retired_.admitted;
    stats.admission_queued += tenant_retired_.queued;
    stats.admission_rejected += tenant_retired_.rejected;
    stats.admission_cancelled += tenant_retired_.cancelled;
    for (const auto& [name, pool] : tenant_pools_) {
      (void)name;
      TenantPoolStats s = pool->stats();
      stats.admission_admitted += s.admitted;
      stats.admission_queued += s.queued;
      stats.admission_rejected += s.rejected;
      stats.admission_cancelled += s.cancelled;
    }
  }
  return stats;
}

Status MultiModelDatabase::CreateTenantPool(const std::string& name,
                                            const TenantPoolOptions& options) {
  if (name.empty()) return Status::InvalidArgument("empty tenant pool name");
  std::lock_guard<std::mutex> lock(tenant_mu_);
  if (tenant_pools_.count(name)) {
    return Status::AlreadyExists("tenant pool '" + name +
                                 "' is already registered");
  }
  tenant_pools_.emplace(name, std::make_shared<TenantPool>(name, options));
  return Status::OK();
}

Status MultiModelDatabase::RemoveTenantPool(const std::string& name) {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  auto it = tenant_pools_.find(name);
  if (it == tenant_pools_.end()) {
    return Status::NotFound("no tenant pool '" + name + "'");
  }
  // Fold the monotonic history into the retired accumulator so the
  // db-wide admission totals never go backwards. In-flight queries
  // admitted through this pool still hold it via shared_ptr; their
  // releases/cancellations after this point are the one thing removal
  // loses.
  TenantPoolStats s = it->second->stats();
  tenant_retired_.admitted += s.admitted;
  tenant_retired_.queued += s.queued;
  tenant_retired_.rejected += s.rejected;
  tenant_retired_.cancelled += s.cancelled;
  tenant_pools_.erase(it);
  return Status::OK();
}

Result<TenantPoolStats> MultiModelDatabase::tenant_pool_stats(
    const std::string& name) const {
  std::shared_ptr<TenantPool> pool;
  {
    std::lock_guard<std::mutex> lock(tenant_mu_);
    auto it = tenant_pools_.find(name);
    if (it == tenant_pools_.end()) {
      return Status::NotFound("no tenant pool '" + name + "'");
    }
    pool = it->second;
  }
  return pool->stats();
}

std::vector<std::string> MultiModelDatabase::TenantPoolNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(tenant_mu_);
  names.reserve(tenant_pools_.size());
  for (const auto& [name, pool] : tenant_pools_) {
    (void)pool;
    names.push_back(name);
  }
  return names;
}

void MultiModelDatabase::AttachSnapshotSources(
    XJoinPlan* plan, const internal::DatabaseSnapshot& snap,
    std::string key) const {
  for (const auto& nr : plan->query.relations) {
    auto it = snap.relations.find(nr.name);
    if (it == snap.relations.end()) continue;  // defensive; parse bound it
    plan->sources.push_back({nr.name, /*is_document=*/false,
                             it->second.version});
    // Pin the snapshot storage the plan's raw pointers reference, so
    // the plan outlives any later copy-on-swap of the registry entry.
    plan->pins.push_back(it->second.relation);
  }
  for (const auto& ti : plan->query.twigs) {
    std::string doc_name = SnapshotDocumentNameOf(snap, ti.index);
    if (doc_name.empty()) continue;  // defensive; parse binds our docs
    auto it = snap.documents.find(doc_name);
    plan->sources.push_back({doc_name, /*is_document=*/true,
                             it->second.version});
    plan->pins.push_back(it->second.index);
    plan->pins.push_back(it->second.doc);
  }
  plan->cache_key = std::move(key);
}

bool MultiModelDatabase::PlanMatchesRegistry(const XJoinPlan& plan) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  for (const auto& source : plan.sources) {
    if (source.is_document) {
      auto it = documents_.find(source.name);
      if (it == documents_.end() || it->second.version != source.version) {
        return false;
      }
    } else {
      auto it = relations_.find(source.name);
      if (it == relations_.end() || it->second.version != source.version) {
        return false;
      }
    }
  }
  return true;
}

Result<std::shared_ptr<const XJoinPlan>>
MultiModelDatabase::PreparePlanSnapshot(
    const std::string& text, const XJoinOptions& options,
    const std::shared_ptr<const internal::DatabaseSnapshot>& snap) const {
  std::string key = PlanCacheKey(text, options);

  // Cache lookup, validated against the *snapshot's* versions. A
  // version mismatch keeps the entry as a rebind candidate.
  std::shared_ptr<const XJoinPlan> stale;
  {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      if (PlanMatchesSnapshot(*it->second.plan, *snap)) {
        plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.lru);
        ++plan_cache_hits_;
        MetricsAdd(options.metrics, "db.plan_cache.hits", 1);
        return it->second.plan;
      }
      stale = it->second.plan;
    }
  }

  if (stale != nullptr) {
    // Version mismatch. Rebind-eligible when the plan's *shape* still
    // transfers: every mismatched source is a relation present in the
    // snapshot with an unchanged schema (the delta-update path bumps
    // versions without touching shape); documents must match exactly.
    bool eligible = true;
    for (const auto& source : stale->sources) {
      if (source.is_document) {
        auto it = snap->documents.find(source.name);
        if (it == snap->documents.end() ||
            it->second.version != source.version) {
          eligible = false;
          break;
        }
      } else {
        auto it = snap->relations.find(source.name);
        if (it == snap->relations.end()) {
          eligible = false;
          break;
        }
        if (it->second.version == source.version) continue;
        const Relation* old_rel = nullptr;
        for (const auto& nr : stale->query.relations) {
          if (nr.name == source.name) {
            old_rel = nr.relation;
            break;
          }
        }
        if (old_rel == nullptr ||
            !(old_rel->schema() == it->second.relation->schema())) {
          eligible = false;
          break;
        }
      }
    }
    if (eligible) {
      // Re-pin instead of re-plan: reuse the stale plan's parsed query
      // with relation pointers remapped onto the snapshot (skips
      // parsing), and let RebindXJoin force the old expansion order
      // (skips order selection). The trie provider serves the
      // delta-patched tries at the new versions.
      MultiModelQuery query = stale->query;
      for (auto& nr : query.relations) {
        nr.relation = snap->relations.find(nr.name)->second.relation.get();
      }
      XJoinOptions rebind_options = options;
      int num_threads = std::max(1, options.num_threads);
      if (!rebind_options.trie_provider) {
        rebind_options.trie_provider =
            CacheTrieProvider(snap, options.metrics, num_threads,
                              options.cancel);
      }
      if (!rebind_options.path_trie_provider) {
        rebind_options.path_trie_provider =
            CachePathTrieProvider(snap, options.metrics, num_threads,
                                  options.cancel);
      }
      XJ_ASSIGN_OR_RETURN(std::shared_ptr<XJoinPlan> plan,
                          RebindXJoin(*stale, query, rebind_options));
      AttachSnapshotSources(plan.get(), *snap, key);
      std::shared_ptr<const XJoinPlan> shared = std::move(plan);
      // Same publish gate as a miss: a rebind for an *old* snapshot
      // stays private to its session instead of clobbering the entry
      // current sessions are hitting.
      bool current_valid = PlanMatchesRegistry(*shared);
      std::lock_guard<std::mutex> lock(plan_cache_mu_);
      ++plan_cache_rebinds_;
      MetricsAdd(options.metrics, "db.plan_cache.rebinds", 1);
      if (current_valid && plan_cache_capacity_ > 0) {
        auto it = plan_cache_.find(key);
        if (it != plan_cache_.end()) {
          plan_lru_.erase(it->second.lru);
          plan_cache_.erase(it);
        }
        plan_lru_.push_front(key);
        plan_cache_.emplace(std::move(key),
                            PlanCacheEntry{shared, plan_lru_.begin()});
      }
      return shared;
    }
    // Not rebindable. Drop the entry only when it is also stale for the
    // *current* registry (a back-door mutation or missed invalidation);
    // when it is merely newer than this — old — session's snapshot,
    // leave it for current sessions and build privately below.
    if (!PlanMatchesRegistry(*stale)) {
      std::lock_guard<std::mutex> lock(plan_cache_mu_);
      auto it = plan_cache_.find(key);
      if (it != plan_cache_.end() && it->second.plan == stale) {
        plan_lru_.erase(it->second.lru);
        plan_cache_.erase(it);
        ++plan_cache_invalidations_;
      }
    }
  }

  // Miss: parse against the snapshot, wire the database caches in
  // (unless the caller brought providers), prepare, record sources and
  // pins, publish.
  XJ_ASSIGN_OR_RETURN(MultiModelQuery query, ParseQuery(text, *snap));
  XJoinOptions prepare_options = options;
  int num_threads = std::max(1, options.num_threads);
  if (!prepare_options.trie_provider) {
    prepare_options.trie_provider =
        CacheTrieProvider(snap, options.metrics, num_threads, options.cancel);
  }
  if (!prepare_options.path_trie_provider) {
    prepare_options.path_trie_provider =
        CachePathTrieProvider(snap, options.metrics, num_threads,
                              options.cancel);
  }
  XJ_ASSIGN_OR_RETURN(std::shared_ptr<XJoinPlan> plan,
                      PrepareXJoin(query, prepare_options));
  AttachSnapshotSources(plan.get(), *snap, key);
  std::shared_ptr<const XJoinPlan> shared = std::move(plan);

  // Publish — but only when the plan's versions still match the
  // *current* registry. A plan prepared on an old snapshot stays
  // private to its session: inserting it would poison the cache for
  // new sessions (their validation would drop it, thrashing).
  bool current_valid = PlanMatchesRegistry(*shared);
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  ++plan_cache_misses_;
  MetricsAdd(options.metrics, "db.plan_cache.misses", 1);
  if (current_valid && plan_cache_.count(key) == 0 &&
      plan_cache_capacity_ > 0) {
    plan_lru_.push_front(key);
    plan_cache_.emplace(std::move(key),
                        PlanCacheEntry{shared, plan_lru_.begin()});
    // LRU capacity bound: evicting a plan also releases its pinned
    // tries and storage (the trie byte budget bounds the cache, this
    // bounds the pins).
    while (plan_cache_.size() > plan_cache_capacity_) {
      plan_cache_.erase(plan_lru_.back());
      plan_lru_.pop_back();
      ++plan_cache_evictions_;
    }
  }
  return shared;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Result<std::shared_ptr<TenantPool>> MultiModelDatabase::ResolveTenant(
    const std::string& tenant) const {
  if (tenant.empty()) return std::shared_ptr<TenantPool>();
  std::lock_guard<std::mutex> lock(tenant_mu_);
  auto it = tenant_pools_.find(tenant);
  if (it == tenant_pools_.end()) {
    return Status::NotFound("no tenant pool '" + tenant +
                            "' (create it with CreateTenantPool)");
  }
  return it->second;
}

namespace {

// Returns a tenant-pool slot (and the query's aggregate charges) when
// the query ends, however it ends. Declared AFTER the BudgetTracker at
// the call sites so it is destroyed first — the tracker's charged
// totals must still be alive to release.
struct SlotGuard {
  std::shared_ptr<TenantPool> pool;
  BudgetTracker* budget = nullptr;
  std::atomic<int64_t>* untenanted_cancelled = nullptr;
  bool cancelled = false;

  ~SlotGuard() {
    if (pool != nullptr) {
      if (pool->aggregate() != nullptr) {
        pool->aggregate()->Release(budget->rows_charged(),
                                   budget->bytes_charged());
      }
      if (cancelled) pool->NoteCancelled();
      pool->Release();
    } else if (cancelled && untenanted_cancelled != nullptr) {
      untenanted_cancelled->fetch_add(1, std::memory_order_relaxed);
    }
  }
};

}  // namespace

Result<Relation> MultiModelDatabase::RunPlan(
    const XJoinPlan& plan, const QueryOptions& options,
    const CancellationToken* session_cancel,
    const CancellationToken* prepared_cancel) const {
  XJ_ASSIGN_OR_RETURN(std::shared_ptr<TenantPool> pool,
                      ResolveTenant(options.tenant));

  // The budget clock starts here — planning/cache time is not charged;
  // admission queueing and execution time are. Every cancel scope the
  // query observes (call-, session-, statement-) attaches as a cancel
  // source, polled by one violated() check per binding.
  BudgetTracker budget(options.max_rows, options.max_bytes,
                       options.deadline_micros);
  budget.AddCancelSource(options.cancel);
  budget.AddCancelSource(session_cancel);
  budget.AddCancelSource(prepared_cancel);

  // Admission: take (or queue for) a slot in the tenant pool, then
  // layer the pool's aggregate in-flight ceilings on the budget.
  SlotGuard guard;
  if (pool != nullptr) {
    bool queued = false;
    Status admit = pool->Admit(&budget, &queued);
    if (queued) MetricsAdd(options.metrics, "db.admission.queued", 1);
    if (!admit.ok()) {
      MetricsAdd(options.metrics,
                 admit.code() == StatusCode::kCancelled
                     ? "db.admission.cancelled"
                     : "db.admission.rejected",
                 1);
      return admit;
    }
    guard.pool = pool;
    guard.budget = &budget;
    budget.AttachAggregate(pool->aggregate());
  } else {
    untenanted_admitted_.fetch_add(1, std::memory_order_relaxed);
    guard.untenanted_cancelled = &untenanted_cancelled_;
  }
  MetricsAdd(options.metrics, "db.admission.admitted", 1);

  // Cancelled (or past deadline) before any work: bail without touching
  // the engines.
  budget.CheckDeadline();
  if (budget.violated()) {
    Status st = budget.status();
    if (st.code() == StatusCode::kCancelled) {
      guard.cancelled = true;
      MetricsAdd(options.metrics, "db.admission.cancelled", 1);
    }
    return st;
  }

  Result<Relation> result = [&]() -> Result<Relation> {
    if (options.engine == Engine::kBaseline) {
      // The baseline engine has no mid-flight hooks; budgets are
      // enforced post-hoc on the combined result (the deadline still
      // cuts callers off with a typed Status, just after the work
      // instead of during).
      BaselineOptions baseline_options;
      baseline_options.metrics = options.metrics;
      XJ_ASSIGN_OR_RETURN(Relation baseline_result,
                          ExecuteBaseline(plan.query, baseline_options));
      if (budget.limited()) {
        auto rows = static_cast<int64_t>(baseline_result.num_rows());
        budget.ChargeRows(
            rows,
            rows * 8 * static_cast<int64_t>(baseline_result.num_columns()));
        budget.CheckDeadline();
        if (budget.violated()) return budget.status();
      }
      return baseline_result;
    }
    XJoinOptions exec_options = options.xjoin;
    if (exec_options.metrics == nullptr) {
      exec_options.metrics = options.metrics;
    }
    if (budget.limited()) exec_options.budget = &budget;
    return ExecutePlan(plan, exec_options);
  }();

  if (!result.ok() && result.status().code() == StatusCode::kCancelled) {
    guard.cancelled = true;
    MetricsAdd(options.metrics, "db.admission.cancelled", 1);
  }
  return result;
}

Result<Relation> MultiModelDatabase::RunQuery(
    const std::string& text, const QueryOptions& options,
    const std::shared_ptr<const internal::DatabaseSnapshot>& snap,
    const CancellationToken* session_cancel) const {
  if (options.engine == Engine::kBaseline) {
    // Baseline evaluation needs no plan — parse and evaluate directly
    // (planning would build tries the baseline never uses). A shell
    // plan carries the parsed query into the shared admission + budget
    // path; its engine branch never touches the XJoin plan fields.
    XJ_ASSIGN_OR_RETURN(MultiModelQuery query, ParseQuery(text, *snap));
    XJoinPlan shell;
    shell.query = std::move(query);
    return RunPlan(shell, options, session_cancel, nullptr);
  }
  XJoinOptions xopts = options.xjoin;
  if (xopts.metrics == nullptr) xopts.metrics = options.metrics;
  // Prepare-time cancellation: the cold path builds tries, which a
  // cancelled caller should never pay for. (Execution attaches every
  // scope to the budget tracker; prepare polls one token directly.)
  if (xopts.cancel == nullptr) {
    xopts.cancel = options.cancel != nullptr ? options.cancel : session_cancel;
  }
  Result<std::shared_ptr<const XJoinPlan>> plan =
      PreparePlanSnapshot(text, xopts, snap);
  if (!plan.ok()) {
    // A query cancelled while its plan was still being prepared never
    // reached admission, but it still finished kCancelled — count it so
    // the db-wide cancellation totals are complete.
    if (plan.status().code() == StatusCode::kCancelled) {
      untenanted_cancelled_.fetch_add(1, std::memory_order_relaxed);
      MetricsAdd(options.metrics, "db.admission.cancelled", 1);
    }
    return plan.status();
  }
  return RunPlan(**plan, options, session_cancel, nullptr);
}

// ---------------------------------------------------------------------------
// Deprecated one-shot entry points (thin wrappers over a throwaway
// snapshot; see the README migration table)
// ---------------------------------------------------------------------------

Result<Relation> MultiModelDatabase::Query(const std::string& text,
                                           const QueryOptions& options) const {
  return RunQuery(text, options, TakeSnapshot(), nullptr);
}

Result<Relation> MultiModelDatabase::Query(const std::string& text,
                                           Engine engine,
                                           Metrics* metrics) const {
  QueryOptions options;
  options.engine = engine;
  options.metrics = metrics;
  return RunQuery(text, options, TakeSnapshot(), nullptr);
}

Result<Relation> MultiModelDatabase::QueryXJoin(const std::string& text,
                                                XJoinOptions options) const {
  QueryOptions query_options;
  query_options.xjoin = std::move(options);
  return RunQuery(text, query_options, TakeSnapshot(), nullptr);
}

Result<PreparedQuery> MultiModelDatabase::Prepare(
    const std::string& text) const {
  XJ_ASSIGN_OR_RETURN(std::shared_ptr<const XJoinPlan> plan,
                      PreparePlanSnapshot(text, XJoinOptions{},
                                          TakeSnapshot()));
  return PreparedQuery{std::move(plan)};
}

Result<std::shared_ptr<const XJoinPlan>> MultiModelDatabase::PreparePlan(
    const std::string& text, const XJoinOptions& options) const {
  return PreparePlanSnapshot(text, options, TakeSnapshot());
}

Result<std::string> MultiModelDatabase::ExplainXJoin(
    const std::string& text, const XJoinOptions& options) const {
  QueryOptions query_options;
  query_options.xjoin = options;
  return OpenSession().Explain(text, query_options);
}

Result<std::string> MultiModelDatabase::Explain(const std::string& text) const {
  return ExplainXJoin(text, XJoinOptions{});
}

}  // namespace xjoin
