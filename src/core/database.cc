#include "core/database.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/string_util.h"
#include "xml/parser.h"
#include "xml/twig.h"

namespace xjoin {

namespace {

// Cache keys for the shared trie LRU. Relation tries key on
// (name, version, induced attribute order); materialized path tries on
// (document, version, path signature). The '\x1F' separators cannot
// occur in registered names or attribute names that come from parsing.
std::string RelationTrieKey(const std::string& name, uint64_t version,
                            const std::vector<std::string>& order) {
  return "rel\x1F" + name + "\x1F" + std::to_string(version) + "\x1F" +
         JoinStrings(order, ",");
}

std::string PathTrieKey(const std::string& doc_name, uint64_t version,
                        const std::string& signature) {
  return "path\x1F" + doc_name + "\x1F" + std::to_string(version) + "\x1F" +
         signature;
}

// Plan-cache key: canonical query spelling + options fingerprint, so
// "Q(*) := R,S" and "Q(*):=R, S" share a plan while num_threads or
// structural_pruning variants get distinct ones.
std::string PlanCacheKey(const std::string& text, const XJoinOptions& options) {
  return CanonicalizeQueryText(text) + "\x1F" +
         HashToHex(PlanFingerprint(options));
}

}  // namespace

Status MultiModelDatabase::RegisterRelationCsv(const std::string& name,
                                               std::string_view csv,
                                               const CsvOptions& options) {
  XJ_ASSIGN_OR_RETURN(Relation rel, ReadCsv(csv, options, &dict_));
  return RegisterRelation(name, std::move(rel));
}

Status MultiModelDatabase::RegisterRelation(const std::string& name,
                                            Relation relation) {
  if (name.empty()) return Status::InvalidArgument("empty relation name");
  if (relations_.count(name) || documents_.count(name)) {
    return Status::AlreadyExists(name + " is already registered");
  }
  relations_.emplace(name, RelationEntry(std::move(relation)));
  return Status::OK();
}

Status MultiModelDatabase::UpdateRelation(const std::string& name,
                                          Relation relation) {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("no relation " + name);
  it->second.relation = std::move(relation);
  ++it->second.version;
  InvalidateTrieCache(name);
  InvalidatePlans(name);
  return Status::OK();
}

std::shared_ptr<const RelationTrie> MultiModelDatabase::TrieCacheLookupLocked(
    const std::string& key) const {
  auto it = trie_index_.find(key);
  if (it == trie_index_.end()) return nullptr;
  trie_lru_.splice(trie_lru_.begin(), trie_lru_, it->second);  // touch
  return it->second->trie;
}

void MultiModelDatabase::TrieCacheInsertLocked(
    std::string key, std::string owner,
    std::shared_ptr<const RelationTrie> trie) const {
  if (trie_index_.count(key) != 0) return;  // lost a build race; keep first
  size_t bytes = trie->ByteSizeEstimate();
  if (bytes > trie_cache_budget_) return;  // oversize: serve uncached
  TrieCacheEntry entry;
  entry.key = key;
  entry.owner = std::move(owner);
  entry.bytes = bytes;
  entry.trie = std::move(trie);
  trie_lru_.push_front(std::move(entry));
  trie_index_[std::move(key)] = trie_lru_.begin();
  trie_cache_bytes_ += bytes;
  while (trie_cache_bytes_ > trie_cache_budget_ && trie_lru_.size() > 1) {
    const TrieCacheEntry& victim = trie_lru_.back();
    trie_cache_bytes_ -= victim.bytes;
    trie_index_.erase(victim.key);
    trie_lru_.pop_back();
    ++trie_cache_evictions_;
  }
}

void MultiModelDatabase::InvalidateTrieCache(const std::string& name) {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  for (auto it = trie_lru_.begin(); it != trie_lru_.end();) {
    if (it->owner == name) {
      trie_cache_bytes_ -= it->bytes;
      trie_index_.erase(it->key);
      it = trie_lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void MultiModelDatabase::ClearTrieCache() {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  trie_lru_.clear();
  trie_index_.clear();
  trie_cache_bytes_ = 0;
}

void MultiModelDatabase::SetTrieCacheBudget(size_t bytes) {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  trie_cache_budget_ = bytes;
  while (trie_cache_bytes_ > trie_cache_budget_ && !trie_lru_.empty()) {
    const TrieCacheEntry& victim = trie_lru_.back();
    trie_cache_bytes_ -= victim.bytes;
    trie_index_.erase(victim.key);
    trie_lru_.pop_back();
    ++trie_cache_evictions_;
  }
}

size_t MultiModelDatabase::trie_cache_budget() const {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  return trie_cache_budget_;
}

size_t MultiModelDatabase::TrieCacheSize() const {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  return trie_lru_.size();
}

size_t MultiModelDatabase::trie_cache_bytes() const {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  return trie_cache_bytes_;
}

int64_t MultiModelDatabase::trie_cache_hits() const {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  return trie_cache_hits_;
}

int64_t MultiModelDatabase::trie_cache_misses() const {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  return trie_cache_misses_;
}

int64_t MultiModelDatabase::trie_cache_evictions() const {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  return trie_cache_evictions_;
}

void MultiModelDatabase::ClearPlanCache() {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  plan_cache_.clear();
  plan_lru_.clear();
}

void MultiModelDatabase::SetPlanCacheCapacity(size_t max_plans) {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  plan_cache_capacity_ = max_plans;
  while (plan_cache_.size() > plan_cache_capacity_) {
    plan_cache_.erase(plan_lru_.back());
    plan_lru_.pop_back();
    ++plan_cache_evictions_;
  }
}

size_t MultiModelDatabase::plan_cache_capacity() const {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  return plan_cache_capacity_;
}

size_t MultiModelDatabase::PlanCacheSize() const {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  return plan_cache_.size();
}

int64_t MultiModelDatabase::plan_cache_hits() const {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  return plan_cache_hits_;
}

int64_t MultiModelDatabase::plan_cache_misses() const {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  return plan_cache_misses_;
}

int64_t MultiModelDatabase::plan_cache_invalidations() const {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  return plan_cache_invalidations_;
}

int64_t MultiModelDatabase::plan_cache_evictions() const {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  return plan_cache_evictions_;
}

void MultiModelDatabase::InvalidatePlans(const std::string& name) {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  for (auto it = plan_cache_.begin(); it != plan_cache_.end();) {
    const auto& sources = it->second.plan->sources;
    bool depends = std::any_of(
        sources.begin(), sources.end(),
        [&name](const XJoinPlan::SourceVersion& s) { return s.name == name; });
    if (depends) {
      plan_lru_.erase(it->second.lru);
      it = plan_cache_.erase(it);
      ++plan_cache_invalidations_;
    } else {
      ++it;
    }
  }
}

Result<uint64_t> MultiModelDatabase::relation_version(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("no relation " + name);
  return it->second.version;
}

Result<uint64_t> MultiModelDatabase::document_version(
    const std::string& name) const {
  auto it = documents_.find(name);
  if (it == documents_.end()) return Status::NotFound("no document " + name);
  return it->second.version;
}

TrieProvider MultiModelDatabase::CacheTrieProvider(Metrics* metrics,
                                                   int num_threads) const {
  const MultiModelDatabase* self = this;
  return [self, metrics, num_threads](
             const std::string& name, const Relation& relation,
             const std::vector<std::string>& order)
             -> Result<std::shared_ptr<const RelationTrie>> {
    auto entry = self->relations_.find(name);
    if (entry == self->relations_.end() ||
        &entry->second.relation != &relation) {
      // Not one of our registered relations (defensive: a provider is
      // only as good as its key) — let the engine build privately.
      return std::shared_ptr<const RelationTrie>();
    }
    std::string key = RelationTrieKey(name, entry->second.version, order);
    {
      std::lock_guard<std::mutex> lock(self->trie_cache_mu_);
      auto hit = self->TrieCacheLookupLocked(key);
      if (hit != nullptr) {
        ++self->trie_cache_hits_;
        MetricsAdd(metrics, "db.trie_cache.hits", 1);
        return hit;
      }
    }
    // Build outside the lock (concurrent queries may race to build the
    // same trie; the insert below keeps the first and the extra build
    // is discarded — correctness over double-build avoidance).
    TrieBuildOptions build_options;
    build_options.num_threads = num_threads;
    build_options.metrics = metrics;
    XJ_ASSIGN_OR_RETURN(RelationTrie trie,
                        RelationTrie::Build(relation, order, build_options));
    auto shared = std::make_shared<const RelationTrie>(std::move(trie));
    std::lock_guard<std::mutex> lock(self->trie_cache_mu_);
    ++self->trie_cache_misses_;
    MetricsAdd(metrics, "db.trie_cache.misses", 1);
    int64_t before = self->trie_cache_evictions_;
    self->TrieCacheInsertLocked(std::move(key), name, shared);
    MetricsAdd(metrics, "db.trie_cache.evictions",
               self->trie_cache_evictions_ - before);
    return shared;
  };
}

PathTrieProvider MultiModelDatabase::CachePathTrieProvider(
    Metrics* metrics, int num_threads) const {
  const MultiModelDatabase* self = this;
  return [self, metrics, num_threads](const PathRelation& relation,
                                      const std::string& signature)
             -> Result<std::shared_ptr<const RelationTrie>> {
    std::string doc_name = self->DocumentNameOf(&relation.index());
    if (doc_name.empty()) {
      // A foreign document — no identity, no caching.
      return std::shared_ptr<const RelationTrie>();
    }
    uint64_t version = self->documents_.find(doc_name)->second.version;
    std::string key = PathTrieKey(doc_name, version, signature);
    {
      std::lock_guard<std::mutex> lock(self->trie_cache_mu_);
      auto hit = self->TrieCacheLookupLocked(key);
      if (hit != nullptr) {
        ++self->trie_cache_hits_;
        MetricsAdd(metrics, "db.trie_cache.hits", 1);
        return hit;
      }
    }
    TrieBuildOptions build_options;
    build_options.num_threads = num_threads;
    build_options.metrics = metrics;
    XJ_ASSIGN_OR_RETURN(Relation materialized, relation.Materialize());
    XJ_ASSIGN_OR_RETURN(RelationTrie trie,
                        RelationTrie::Build(materialized, relation.attributes(),
                                            build_options));
    auto shared = std::make_shared<const RelationTrie>(std::move(trie));
    std::lock_guard<std::mutex> lock(self->trie_cache_mu_);
    ++self->trie_cache_misses_;
    MetricsAdd(metrics, "db.trie_cache.misses", 1);
    int64_t before = self->trie_cache_evictions_;
    self->TrieCacheInsertLocked(std::move(key), doc_name, shared);
    MetricsAdd(metrics, "db.trie_cache.evictions",
               self->trie_cache_evictions_ - before);
    return shared;
  };
}

std::string MultiModelDatabase::DocumentNameOf(const NodeIndex* index) const {
  for (const auto& [name, doc] : documents_) {
    if (doc.index.get() == index) return name;
  }
  return std::string();
}

Status MultiModelDatabase::RegisterDocumentXml(const std::string& name,
                                               std::string_view xml,
                                               ValuePolicy policy) {
  XJ_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(xml));
  return RegisterDocument(name, std::move(doc), policy);
}

Status MultiModelDatabase::RegisterDocument(const std::string& name,
                                            XmlDocument doc,
                                            ValuePolicy policy) {
  if (name.empty()) return Status::InvalidArgument("empty document name");
  if (relations_.count(name) || documents_.count(name)) {
    return Status::AlreadyExists(name + " is already registered");
  }
  Document entry;
  entry.doc = std::make_unique<XmlDocument>(std::move(doc));
  entry.index = std::make_unique<NodeIndex>(
      NodeIndex::Build(entry.doc.get(), &dict_, policy));
  documents_.emplace(name, std::move(entry));
  return Status::OK();
}

Status MultiModelDatabase::UpdateDocumentXml(const std::string& name,
                                             std::string_view xml,
                                             ValuePolicy policy) {
  XJ_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(xml));
  return UpdateDocument(name, std::move(doc), policy);
}

Status MultiModelDatabase::UpdateDocument(const std::string& name,
                                          XmlDocument doc,
                                          ValuePolicy policy) {
  auto it = documents_.find(name);
  if (it == documents_.end()) return Status::NotFound("no document " + name);
  it->second.doc = std::make_unique<XmlDocument>(std::move(doc));
  it->second.index = std::make_unique<NodeIndex>(
      NodeIndex::Build(it->second.doc.get(), &dict_, policy));
  ++it->second.version;
  InvalidateTrieCache(name);
  InvalidatePlans(name);
  return Status::OK();
}

Result<const Relation*> MultiModelDatabase::relation(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("no relation " + name);
  return &it->second.relation;
}

Result<const NodeIndex*> MultiModelDatabase::document_index(
    const std::string& name) const {
  auto it = documents_.find(name);
  if (it == documents_.end()) return Status::NotFound("no document " + name);
  return it->second.index.get();
}

std::vector<std::string> MultiModelDatabase::RelationNames() const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : relations_) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MultiModelDatabase::DocumentNames() const {
  std::vector<std::string> names;
  for (const auto& [name, doc] : documents_) {
    (void)doc;
    names.push_back(name);
  }
  return names;
}

namespace {

// Splits on commas at bracket depth zero (twig branches keep their
// commas).
std::vector<std::string> SplitTopLevel(std::string_view text) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  for (char c : text) {
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace

Result<PreparedQuery> MultiModelDatabase::Prepare(
    const std::string& text) const {
  PreparedQuery prepared;
  std::string_view rest = TrimWhitespace(text);

  // Optional head "Name(attrs) :=".
  auto assign = rest.find(":=");
  if (assign != std::string_view::npos) {
    std::string_view head = TrimWhitespace(rest.substr(0, assign));
    rest = TrimWhitespace(rest.substr(assign + 2));
    auto open = head.find('(');
    if (open == std::string_view::npos || head.back() != ')') {
      return Status::ParseError("query head must look like Q(a, b)");
    }
    std::string_view attrs = head.substr(open + 1, head.size() - open - 2);
    if (TrimWhitespace(attrs) != "*") {
      for (const auto& part : SplitString(attrs, ',')) {
        std::string attr(TrimWhitespace(part));
        if (attr.empty()) return Status::ParseError("empty output attribute");
        prepared.query.output_attributes.push_back(std::move(attr));
      }
    }
  }
  if (rest.empty()) return Status::ParseError("query has no inputs");

  for (const auto& part : SplitTopLevel(rest)) {
    std::string_view input = TrimWhitespace(part);
    if (input.empty()) return Status::ParseError("empty query input");
    auto colon = input.find(':');
    if (colon == std::string_view::npos) {
      // Relation reference.
      std::string name(input);
      auto rel = relation(name);
      if (!rel.ok()) return rel.status();
      prepared.query.relations.push_back({name, *rel});
    } else {
      std::string doc_name(TrimWhitespace(input.substr(0, colon)));
      std::string pattern(TrimWhitespace(input.substr(colon + 1)));
      auto index = document_index(doc_name);
      if (!index.ok()) return index.status();
      XJ_ASSIGN_OR_RETURN(Twig twig, Twig::Parse(pattern));
      prepared.query.twigs.push_back(TwigInput{std::move(twig), *index});
    }
  }
  XJ_RETURN_NOT_OK(ValidateQuery(prepared.query));
  return prepared;
}

Result<std::shared_ptr<const XJoinPlan>> MultiModelDatabase::PreparePlan(
    const std::string& text, const XJoinOptions& options) const {
  std::string key = PlanCacheKey(text, options);

  // Cache lookup + version re-validation. A plan whose recorded input
  // versions no longer match current storage is stale (e.g. a back-door
  // mutation that skipped Update*) and gets dropped here.
  {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      bool valid = true;
      for (const auto& source : it->second.plan->sources) {
        auto version = source.is_document ? document_version(source.name)
                                          : relation_version(source.name);
        if (!version.ok() || *version != source.version) {
          valid = false;
          break;
        }
      }
      if (valid) {
        plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.lru);
        ++plan_cache_hits_;
        MetricsAdd(options.metrics, "db.plan_cache.hits", 1);
        return it->second.plan;
      }
      plan_lru_.erase(it->second.lru);
      plan_cache_.erase(it);
      ++plan_cache_invalidations_;
    }
  }

  // Miss: parse, wire the database caches in (unless the caller brought
  // providers), prepare, snapshot input versions, publish.
  XJ_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(text));
  XJoinOptions prepare_options = options;
  int num_threads = std::max(1, options.num_threads);
  if (!prepare_options.trie_provider) {
    prepare_options.trie_provider =
        CacheTrieProvider(options.metrics, num_threads);
  }
  if (!prepare_options.path_trie_provider) {
    prepare_options.path_trie_provider =
        CachePathTrieProvider(options.metrics, num_threads);
  }
  XJ_ASSIGN_OR_RETURN(std::shared_ptr<XJoinPlan> plan,
                      PrepareXJoin(prepared.query, prepare_options));
  for (const auto& nr : plan->query.relations) {
    XJ_ASSIGN_OR_RETURN(uint64_t version, relation_version(nr.name));
    plan->sources.push_back({nr.name, /*is_document=*/false, version});
  }
  for (const auto& ti : plan->query.twigs) {
    std::string doc_name = DocumentNameOf(ti.index);
    if (doc_name.empty()) continue;  // defensive; Prepare binds our docs
    XJ_ASSIGN_OR_RETURN(uint64_t version, document_version(doc_name));
    plan->sources.push_back({doc_name, /*is_document=*/true, version});
  }
  plan->cache_key = key;
  std::shared_ptr<const XJoinPlan> shared = std::move(plan);

  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  ++plan_cache_misses_;
  MetricsAdd(options.metrics, "db.plan_cache.misses", 1);
  if (plan_cache_.count(key) == 0 && plan_cache_capacity_ > 0) {
    plan_lru_.push_front(key);
    plan_cache_.emplace(std::move(key),
                        PlanCacheEntry{shared, plan_lru_.begin()});
    // LRU capacity bound: evicting a plan also releases its pinned
    // tries (the trie byte budget bounds the cache, this bounds the
    // pins).
    while (plan_cache_.size() > plan_cache_capacity_) {
      plan_cache_.erase(plan_lru_.back());
      plan_lru_.pop_back();
      ++plan_cache_evictions_;
    }
  }
  return shared;
}

Result<Relation> MultiModelDatabase::Query(const std::string& text,
                                           Engine engine,
                                           Metrics* metrics) const {
  if (engine == Engine::kXJoin) {
    XJoinOptions options;
    options.metrics = metrics;
    return QueryXJoin(text, std::move(options));
  }
  XJ_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(text));
  BaselineOptions options;
  options.metrics = metrics;
  return ExecuteBaseline(prepared.query, options);
}

Result<Relation> MultiModelDatabase::QueryXJoin(const std::string& text,
                                                XJoinOptions options) const {
  XJ_ASSIGN_OR_RETURN(std::shared_ptr<const XJoinPlan> plan,
                      PreparePlan(text, options));
  return ExecutePlan(*plan, options);
}

Result<std::string> MultiModelDatabase::ExplainXJoin(
    const std::string& text, const XJoinOptions& options) const {
  XJ_ASSIGN_OR_RETURN(std::shared_ptr<const XJoinPlan> plan,
                      PreparePlan(text, options));
  std::string out = "query: " + CanonicalizeQueryText(text) + "\n";
  out += ExplainPlan(*plan);
  out += "plan cache: " + std::to_string(plan_cache_hits()) + " hits, " +
         std::to_string(plan_cache_misses()) + " misses, " +
         std::to_string(plan_cache_invalidations()) +
         " invalidations (key = canonical text + options fingerprint)\n";
  out += "trie cache: " + std::to_string(TrieCacheSize()) + " tries, " +
         std::to_string(trie_cache_bytes()) + " bytes (budget " +
         std::to_string(trie_cache_budget()) + "), " +
         std::to_string(trie_cache_hits()) + " hits, " +
         std::to_string(trie_cache_misses()) + " misses, " +
         std::to_string(trie_cache_evictions()) + " evictions\n";
  return out;
}

Result<std::string> MultiModelDatabase::Explain(const std::string& text) const {
  return ExplainXJoin(text, XJoinOptions{});
}

}  // namespace xjoin
