#include "core/database.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"
#include "core/bound.h"
#include "core/decompose.h"
#include "core/order.h"
#include "xml/parser.h"
#include "xml/twig.h"

namespace xjoin {

Status MultiModelDatabase::RegisterRelationCsv(const std::string& name,
                                               std::string_view csv,
                                               const CsvOptions& options) {
  XJ_ASSIGN_OR_RETURN(Relation rel, ReadCsv(csv, options, &dict_));
  return RegisterRelation(name, std::move(rel));
}

Status MultiModelDatabase::RegisterRelation(const std::string& name,
                                            Relation relation) {
  if (name.empty()) return Status::InvalidArgument("empty relation name");
  if (relations_.count(name) || documents_.count(name)) {
    return Status::AlreadyExists(name + " is already registered");
  }
  relations_.emplace(name, RelationEntry(std::move(relation)));
  return Status::OK();
}

Status MultiModelDatabase::UpdateRelation(const std::string& name,
                                          Relation relation) {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("no relation " + name);
  it->second.relation = std::move(relation);
  ++it->second.version;
  InvalidateTrieCache(name);
  return Status::OK();
}

void MultiModelDatabase::InvalidateTrieCache(const std::string& name) {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  for (auto it = trie_cache_.begin(); it != trie_cache_.end();) {
    if (std::get<0>(it->first) == name) {
      it = trie_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void MultiModelDatabase::ClearTrieCache() {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  trie_cache_.clear();
}

size_t MultiModelDatabase::TrieCacheSize() const {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  return trie_cache_.size();
}

int64_t MultiModelDatabase::trie_cache_hits() const {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  return trie_cache_hits_;
}

int64_t MultiModelDatabase::trie_cache_misses() const {
  std::lock_guard<std::mutex> lock(trie_cache_mu_);
  return trie_cache_misses_;
}

Result<uint64_t> MultiModelDatabase::relation_version(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("no relation " + name);
  return it->second.version;
}

TrieProvider MultiModelDatabase::CacheTrieProvider(Metrics* metrics,
                                                   int num_threads) const {
  return [this, metrics, num_threads](
             const std::string& name, const Relation& relation,
             const std::vector<std::string>& order)
             -> Result<std::shared_ptr<const RelationTrie>> {
    auto entry = relations_.find(name);
    if (entry == relations_.end() || &entry->second.relation != &relation) {
      // Not one of our registered relations (defensive: a provider is
      // only as good as its key) — let the engine build privately.
      return std::shared_ptr<const RelationTrie>();
    }
    TrieCacheKey key(name, entry->second.version, JoinStrings(order, ","));
    {
      std::lock_guard<std::mutex> lock(trie_cache_mu_);
      auto hit = trie_cache_.find(key);
      if (hit != trie_cache_.end()) {
        ++trie_cache_hits_;
        MetricsAdd(metrics, "db.trie_cache.hits", 1);
        return hit->second;
      }
    }
    // Build outside the lock (concurrent queries may race to build the
    // same trie; the emplace below keeps the first and the extra build
    // is discarded — correctness over double-build avoidance).
    TrieBuildOptions build_options;
    build_options.num_threads = num_threads;
    build_options.metrics = metrics;
    XJ_ASSIGN_OR_RETURN(RelationTrie trie,
                        RelationTrie::Build(relation, order, build_options));
    auto shared = std::make_shared<const RelationTrie>(std::move(trie));
    std::lock_guard<std::mutex> lock(trie_cache_mu_);
    ++trie_cache_misses_;
    MetricsAdd(metrics, "db.trie_cache.misses", 1);
    auto inserted = trie_cache_.emplace(std::move(key), std::move(shared));
    return inserted.first->second;
  };
}

Status MultiModelDatabase::RegisterDocumentXml(const std::string& name,
                                               std::string_view xml,
                                               ValuePolicy policy) {
  XJ_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(xml));
  return RegisterDocument(name, std::move(doc), policy);
}

Status MultiModelDatabase::RegisterDocument(const std::string& name,
                                            XmlDocument doc,
                                            ValuePolicy policy) {
  if (name.empty()) return Status::InvalidArgument("empty document name");
  if (relations_.count(name) || documents_.count(name)) {
    return Status::AlreadyExists(name + " is already registered");
  }
  Document entry;
  entry.doc = std::make_unique<XmlDocument>(std::move(doc));
  entry.index = std::make_unique<NodeIndex>(
      NodeIndex::Build(entry.doc.get(), &dict_, policy));
  documents_.emplace(name, std::move(entry));
  return Status::OK();
}

Result<const Relation*> MultiModelDatabase::relation(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("no relation " + name);
  return &it->second.relation;
}

Result<const NodeIndex*> MultiModelDatabase::document_index(
    const std::string& name) const {
  auto it = documents_.find(name);
  if (it == documents_.end()) return Status::NotFound("no document " + name);
  return it->second.index.get();
}

std::vector<std::string> MultiModelDatabase::RelationNames() const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : relations_) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MultiModelDatabase::DocumentNames() const {
  std::vector<std::string> names;
  for (const auto& [name, doc] : documents_) {
    (void)doc;
    names.push_back(name);
  }
  return names;
}

namespace {

// Splits on commas at bracket depth zero (twig branches keep their
// commas).
std::vector<std::string> SplitTopLevel(std::string_view text) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  for (char c : text) {
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace

Result<PreparedQuery> MultiModelDatabase::Prepare(
    const std::string& text) const {
  PreparedQuery prepared;
  std::string_view rest = TrimWhitespace(text);

  // Optional head "Name(attrs) :=".
  auto assign = rest.find(":=");
  if (assign != std::string_view::npos) {
    std::string_view head = TrimWhitespace(rest.substr(0, assign));
    rest = TrimWhitespace(rest.substr(assign + 2));
    auto open = head.find('(');
    if (open == std::string_view::npos || head.back() != ')') {
      return Status::ParseError("query head must look like Q(a, b)");
    }
    std::string_view attrs = head.substr(open + 1, head.size() - open - 2);
    if (TrimWhitespace(attrs) != "*") {
      for (const auto& part : SplitString(attrs, ',')) {
        std::string attr(TrimWhitespace(part));
        if (attr.empty()) return Status::ParseError("empty output attribute");
        prepared.query.output_attributes.push_back(std::move(attr));
      }
    }
  }
  if (rest.empty()) return Status::ParseError("query has no inputs");

  for (const auto& part : SplitTopLevel(rest)) {
    std::string_view input = TrimWhitespace(part);
    if (input.empty()) return Status::ParseError("empty query input");
    auto colon = input.find(':');
    if (colon == std::string_view::npos) {
      // Relation reference.
      std::string name(input);
      auto rel = relation(name);
      if (!rel.ok()) return rel.status();
      prepared.query.relations.push_back({name, *rel});
    } else {
      std::string doc_name(TrimWhitespace(input.substr(0, colon)));
      std::string pattern(TrimWhitespace(input.substr(colon + 1)));
      auto index = document_index(doc_name);
      if (!index.ok()) return index.status();
      XJ_ASSIGN_OR_RETURN(Twig twig, Twig::Parse(pattern));
      prepared.query.twigs.push_back(TwigInput{std::move(twig), *index});
    }
  }
  XJ_RETURN_NOT_OK(ValidateQuery(prepared.query));
  return prepared;
}

Result<Relation> MultiModelDatabase::Query(const std::string& text,
                                           Engine engine,
                                           Metrics* metrics) const {
  if (engine == Engine::kXJoin) {
    XJoinOptions options;
    options.metrics = metrics;
    return QueryXJoin(text, std::move(options));
  }
  XJ_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(text));
  BaselineOptions options;
  options.metrics = metrics;
  return ExecuteBaseline(prepared.query, options);
}

Result<Relation> MultiModelDatabase::QueryXJoin(const std::string& text,
                                                XJoinOptions options) const {
  XJ_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(text));
  if (!options.trie_provider) {
    options.trie_provider =
        CacheTrieProvider(options.metrics, std::max(1, options.num_threads));
  }
  return ExecuteXJoin(prepared.query, options);
}

Result<std::string> MultiModelDatabase::Explain(const std::string& text) const {
  XJ_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(text));
  const MultiModelQuery& query = prepared.query;
  std::ostringstream out;

  out << "inputs:\n";
  for (const auto& nr : query.relations) {
    out << "  relation " << nr.relation->schema().ToString(nr.name) << "  ["
        << nr.relation->num_rows() << " rows]\n";
  }
  for (size_t t = 0; t < query.twigs.size(); ++t) {
    const TwigInput& ti = query.twigs[t];
    out << "  twig " << ti.twig.ToString() << "  [document: "
        << ti.index->doc().num_nodes() << " nodes]\n";
    XJ_ASSIGN_OR_RETURN(TwigDecomposition d, DecomposeTwig(ti.twig));
    out << "    transform(Sx): " << DecompositionToString(ti.twig, d) << "\n";
  }

  XJ_ASSIGN_OR_RETURN(std::vector<std::string> order,
                      ChooseAttributeOrder(query));
  out << "expansion order (PA): " << JoinStrings(order, " -> ") << "\n";

  auto bound = ComputeBound(query);
  if (bound.ok()) {
    out << "worst-case size bound: 2^"
        << FormatDouble(bound->cover.log2_bound) << " = "
        << FormatDouble(std::exp2(bound->cover.log2_bound)) << " tuples\n";
    if (!query.output_attributes.empty()) {
      out << "bound on output attributes: 2^"
          << FormatDouble(bound->log2_output_bound) << "\n";
    }
  }
  out << "output: ";
  if (query.output_attributes.empty()) {
    out << "all attributes\n";
  } else {
    out << JoinStrings(query.output_attributes, ", ") << "\n";
  }
  return out.str();
}

}  // namespace xjoin
