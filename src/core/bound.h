// Multi-model worst-case size bounds (paper Section 3, Equation 1,
// Example 3.3): build the hypergraph of relational schemas plus
// decomposed twig-path schemas and solve the fractional edge cover LPs.
#ifndef XJOIN_CORE_BOUND_H_
#define XJOIN_CORE_BOUND_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "lp/edge_cover.h"
#include "lp/hypergraph.h"

namespace xjoin {

/// How twig-path edge cardinalities are determined.
enum class PathSizeMode {
  /// Exact: materialize each path relation and count tuples.
  /// O(#matching P-C chains) time and memory per path.
  kExact,
  /// DP chain count — an enumeration-free upper bound (DESIGN.md S10),
  /// O(document size) per path via PathRelation::CountChains.
  kChainCount,
  /// All edges get size `uniform_n` — the paper's "each tag consists of n
  /// nodes" analytical setting (Examples 3.3/3.4).
  kUniform,
};

/// Options for BuildQueryHypergraph.
struct BoundOptions {
  PathSizeMode path_size_mode = PathSizeMode::kExact;
  double uniform_n = 1.0;  ///< used by kUniform (applies to relations too)
};

/// Builds the Equation-1 hypergraph: one edge per relational table, one
/// edge per decomposed twig path (paper Section 3, Example 3.3 —
/// "consider P-C relations as relational tables for the size bound").
/// Cost: one DecomposeTwig per twig plus the per-path size evaluation
/// selected by `options.path_size_mode`.
Result<Hypergraph> BuildQueryHypergraph(const MultiModelQuery& query,
                                        const BoundOptions& options = {});

/// The complete bound report for a query (paper Equation 1).
struct MultiModelBound {
  Hypergraph hypergraph;    ///< the Equation-1 program's structure
  EdgeCoverResult cover;    ///< primal/dual optima; log2_bound is Eq. 1
  /// Bound restricted to the query's output attributes (== full bound
  /// when output_attributes is empty) — a Log2BoundForSubset cover.
  double log2_output_bound = 0.0;
};

/// Computes the AGM-style worst-case output bound of the multi-model
/// query (paper Section 3, Equation 1): hypergraph construction plus one
/// fractional-edge-cover LP solve (see lp/edge_cover.h for LP cost).
Result<MultiModelBound> ComputeBound(const MultiModelQuery& query,
                                     const BoundOptions& options = {});

}  // namespace xjoin

#endif  // XJOIN_CORE_BOUND_H_
