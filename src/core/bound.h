// Multi-model worst-case size bounds (paper Section 3, Equation 1,
// Example 3.3): build the hypergraph of relational schemas plus
// decomposed twig-path schemas and solve the fractional edge cover LPs.
#ifndef XJOIN_CORE_BOUND_H_
#define XJOIN_CORE_BOUND_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "lp/edge_cover.h"
#include "lp/hypergraph.h"

namespace xjoin {

/// How twig-path edge cardinalities are determined.
enum class PathSizeMode {
  /// Exact: materialize each path relation and count tuples.
  kExact,
  /// DP chain count — an enumeration-free upper bound (DESIGN.md S10).
  kChainCount,
  /// All edges get size `uniform_n` — the paper's "each tag consists of n
  /// nodes" analytical setting (Examples 3.3/3.4).
  kUniform,
};

/// Options for BuildQueryHypergraph.
struct BoundOptions {
  PathSizeMode path_size_mode = PathSizeMode::kExact;
  double uniform_n = 1.0;  ///< used by kUniform (applies to relations too)
};

/// Builds the Equation-1 hypergraph: one edge per relational table, one
/// edge per decomposed twig path.
Result<Hypergraph> BuildQueryHypergraph(const MultiModelQuery& query,
                                        const BoundOptions& options = {});

/// The complete bound report for a query.
struct MultiModelBound {
  Hypergraph hypergraph;
  EdgeCoverResult cover;
  /// Bound restricted to the query's output attributes (== full bound
  /// when output_attributes is empty).
  double log2_output_bound = 0.0;
};

/// Computes the AGM-style bound of the multi-model query.
Result<MultiModelBound> ComputeBound(const MultiModelQuery& query,
                                     const BoundOptions& options = {});

}  // namespace xjoin

#endif  // XJOIN_CORE_BOUND_H_
