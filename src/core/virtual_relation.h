// XML path relations. For a root-leaf path q1/q2/.../qk of a sub-twig,
// the logical relation is
//     { (val(x1), ..., val(xk)) : x(i+1) child of x(i), tag(xi)=tag(qi) }.
// The paper's XJoin "considers P-C relations as relational tables for
// the size bound, but does not physically transform them" — LazyPathTrie
// realizes exactly that: a TrieIterator that navigates the document in
// place, grouping candidate nodes by join value level by level.
// MaterializePathRelation flattens the same relation into a Relation for
// the ablation study and for exact size-bound inputs.
#ifndef XJOIN_CORE_VIRTUAL_RELATION_H_
#define XJOIN_CORE_VIRTUAL_RELATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/decompose.h"
#include "relational/relation.h"
#include "relational/trie_iterator.h"
#include "xml/node_index.h"
#include "xml/twig.h"

namespace xjoin {

/// Static description of one path relation over a document.
class PathRelation {
 public:
  /// Binds a decomposed path to a document. Fails if a tag on the path is
  /// "*" (wildcards are not joinable) — unknown tags are fine and yield
  /// an empty relation.
  static Result<PathRelation> Make(const Twig& twig, const TwigPath& path,
                                   const NodeIndex* index);

  /// Attribute names, root first (the trie's level order).
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Tag codes per level (-1 for a tag absent from the document).
  const std::vector<int32_t>& tags() const { return tags_; }

  const NodeIndex& index() const { return *index_; }
  int arity() const { return static_cast<int>(attributes_.size()); }

  /// A lazy cursor over the path trie (no materialization).
  std::unique_ptr<TrieIterator> NewLazyIterator() const;

  /// Flattens to value tuples (set semantics). O(#chains).
  Result<Relation> Materialize() const;

  /// Number of P-C chains matching the path (duplicate value tuples
  /// counted), by dynamic programming over the document — an upper bound
  /// on the relation's cardinality, computed without enumeration.
  int64_t CountChains() const;

 private:
  PathRelation() = default;

  std::vector<std::string> attributes_;
  std::vector<int32_t> tags_;
  const NodeIndex* index_ = nullptr;
};

/// TrieIterator over a PathRelation that walks the document lazily.
/// Level state is a value-sorted list of (value, node) candidates for the
/// current parent group; Open() on level i gathers the tag-matching
/// children of the nodes in the parent's current value group.
class LazyPathTrieIterator final : public TrieIterator {
 public:
  explicit LazyPathTrieIterator(const PathRelation* relation);

  int arity() const override { return relation_->arity(); }
  int depth() const override { return depth_; }
  void Open() override;
  void Up() override;
  bool AtEnd() const override;
  int64_t Key() const override;
  void Next() override;
  void Seek(int64_t key) override;
  int64_t EstimateKeys() const override;
  std::unique_ptr<TrieIterator> Clone() const override;

 private:
  struct Frame {
    std::vector<ValueNode> entries;  // sorted by (value, node)
    size_t pos = 0;                  // start of current value group
    size_t group_end = 0;            // one past the group
  };

  void FixGroup();

  const PathRelation* relation_;
  int depth_ = -1;
  std::vector<Frame> frames_;
};

}  // namespace xjoin

#endif  // XJOIN_CORE_VIRTUAL_RELATION_H_
