// XJoin (paper Algorithm 1): the worst-case optimal multi-model join.
//
//   S <- Sr ∪ transform(Sx)        — relations + twig path relations
//   for each p in PA:              — attribute-at-a-time expansion
//     expand by common values of p across all of S (leapfrog)
//   filter R by validating the structure of Sx
//
// The path relations are navigated lazily by default ("we do not
// physically transform them into relational tables"); set
// materialize_paths for the ablation. structural_pruning enables the
// paper's on-going-work extension: partially validating the twig during
// the join.
#ifndef XJOIN_CORE_XJOIN_H_
#define XJOIN_CORE_XJOIN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/order.h"
#include "core/query.h"
#include "relational/relation.h"
#include "relational/trie.h"

namespace xjoin {

/// Optional supplier of materialized relation tries, consulted for every
/// named relational input before the engine builds one privately — this
/// is how MultiModelDatabase's trie cache plugs into XJoin. Returning a
/// null shared_ptr (inside an OK result) means "no cached trie, build
/// locally". A returned trie must match (relation, order) exactly and
/// must stay immutable and alive for the duration of the query; the
/// engine keeps the shared_ptr until execution finishes.
using TrieProvider = std::function<Result<std::shared_ptr<const RelationTrie>>(
    const std::string& name, const Relation& relation,
    const std::vector<std::string>& order)>;

/// Execution options for XJoin.
struct XJoinOptions {
  /// The paper's PA: explicit expansion order. Empty = choose
  /// automatically (core/order.h). Must respect twig path precedence.
  std::vector<std::string> attribute_order;
  /// Greedy rule used when attribute_order is empty.
  OrderHeuristic order_heuristic = OrderHeuristic::kCoverage;
  /// Ablation: flatten path relations to materialized tries first.
  bool materialize_paths = false;
  /// §4 extension: prune prefixes whose partial twig structure is
  /// already infeasible.
  bool structural_pruning = false;
  /// Worker threads for the expansion loop and the final structural
  /// validation. <= 1 (default) runs fully serial, bit-identical to the
  /// pre-sharding engine; > 1 shards the first attribute's key domain
  /// across a thread pool (see GenericJoinOptions::num_threads). The
  /// result relation is byte-identical either way.
  int num_threads = 1;
  /// Prefix shard count forwarded to GenericJoinOptions::num_shards
  /// (0 = one shard per thread). num_shards > 1 with num_threads == 1
  /// exercises the shard partitioning deterministically on one thread.
  int num_shards = 0;
  /// Optional trie cache hook (see TrieProvider above). Empty = every
  /// query builds its own tries.
  TrieProvider trie_provider;
  /// Nullable counters. Records the generic-join "gj.*" counters plus
  /// "xjoin.expanded" (tuples before validation), "xjoin.validated"
  /// (tuples after), "xjoin.pruned" (prefixes cut by partial validation),
  /// and "xjoin.max_intermediate". With num_threads > 1 the per-twig
  /// validation sub-counters are skipped (they would race); the "gj.*"
  /// binding counters remain exact.
  Metrics* metrics = nullptr;
};

/// Runs XJoin (paper Algorithm 1) and returns the distinct result tuples
/// over the query's output attributes (all attributes when
/// output_attributes is empty).
///
/// Worst-case optimality (paper Theorem 4.1 via Lemma 3.5): with a
/// bound-respecting expansion order, every per-attribute expansion stage
/// stays within the Equation-1 fractional-cover bound of the query, so
/// total expansion work is O~(bound); the trailing structural validation
/// adds O(|expanded|) embedding checks. Fails on invalid queries
/// (ValidateQuery) or an inconsistent user-supplied attribute_order.
Result<Relation> ExecuteXJoin(const MultiModelQuery& query,
                              const XJoinOptions& options = {});

}  // namespace xjoin

#endif  // XJOIN_CORE_XJOIN_H_
