// XJoin (paper Algorithm 1): the worst-case optimal multi-model join.
//
//   S <- Sr ∪ transform(Sx)        — relations + twig path relations
//   for each p in PA:              — attribute-at-a-time expansion
//     expand by common values of p across all of S (leapfrog)
//   filter R by validating the structure of Sx
//
// The path relations are navigated lazily by default ("we do not
// physically transform them into relational tables"); set
// materialize_paths for the ablation. structural_pruning enables the
// paper's on-going-work extension: partially validating the twig during
// the join.
#ifndef XJOIN_CORE_XJOIN_H_
#define XJOIN_CORE_XJOIN_H_

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/order.h"
#include "core/query.h"
#include "relational/relation.h"

namespace xjoin {

/// Execution options for XJoin.
struct XJoinOptions {
  /// The paper's PA: explicit expansion order. Empty = choose
  /// automatically (core/order.h). Must respect twig path precedence.
  std::vector<std::string> attribute_order;
  /// Greedy rule used when attribute_order is empty.
  OrderHeuristic order_heuristic = OrderHeuristic::kCoverage;
  /// Ablation: flatten path relations to materialized tries first.
  bool materialize_paths = false;
  /// §4 extension: prune prefixes whose partial twig structure is
  /// already infeasible.
  bool structural_pruning = false;
  /// Nullable counters. Records the generic-join "gj.*" counters plus
  /// "xjoin.expanded" (tuples before validation), "xjoin.validated"
  /// (tuples after), "xjoin.pruned" (prefixes cut by partial validation),
  /// and "xjoin.max_intermediate".
  Metrics* metrics = nullptr;
};

/// Runs XJoin and returns the distinct result tuples over the query's
/// output attributes (all attributes when output_attributes is empty).
Result<Relation> ExecuteXJoin(const MultiModelQuery& query,
                              const XJoinOptions& options = {});

}  // namespace xjoin

#endif  // XJOIN_CORE_XJOIN_H_
