// XJoin (paper Algorithm 1): the worst-case optimal multi-model join.
//
//   S <- Sr ∪ transform(Sx)        — relations + twig path relations
//   for each p in PA:              — attribute-at-a-time expansion
//     expand by common values of p across all of S (leapfrog)
//   filter R by validating the structure of Sx
//
// The one-shot procedure is split into a prepared pipeline
// (core/plan.h): PrepareXJoin derives everything shape-dependent once
// (order, decompositions, shard plan, pinned tries) and ExecutePlan
// replays it — ExecuteXJoin below is exactly Prepare + Execute. The
// path relations are navigated lazily by default ("we do not physically
// transform them into relational tables"); set materialize_paths for
// the ablation. structural_pruning enables the paper's on-going-work
// extension: partially validating the twig during the join.
#ifndef XJOIN_CORE_XJOIN_H_
#define XJOIN_CORE_XJOIN_H_

#include "common/status.h"
#include "core/plan.h"
#include "core/query.h"
#include "relational/relation.h"

namespace xjoin {

/// Executes a prepared plan: instantiates cursors over the pinned tries
/// (lazy document cursors for unmaterialized paths), runs the expansion
/// loop under the plan's shard plan, validates twig structure, and
/// projects. Only options.metrics is consulted — every engine knob
/// (threads, shards, pruning, order) was frozen into the plan at
/// prepare time, which is what makes a cached plan deterministic. Safe
/// to call concurrently on the same plan.
Result<Relation> ExecutePlan(const XJoinPlan& plan,
                             const XJoinOptions& options = {});

/// Runs XJoin (paper Algorithm 1) and returns the distinct result tuples
/// over the query's output attributes (all attributes when
/// output_attributes is empty). Implemented as
/// PrepareXJoin(query, options) + ExecutePlan(plan, options).
///
/// Worst-case optimality (paper Theorem 4.1 via Lemma 3.5): with a
/// bound-respecting expansion order, every per-attribute expansion stage
/// stays within the Equation-1 fractional-cover bound of the query, so
/// total expansion work is O~(bound); the trailing structural validation
/// adds O(|expanded|) embedding checks. Fails on invalid queries
/// (ValidateQuery) or an inconsistent user-supplied attribute_order.
Result<Relation> ExecuteXJoin(const MultiModelQuery& query,
                              const XJoinOptions& options = {});

}  // namespace xjoin

#endif  // XJOIN_CORE_XJOIN_H_
