#include "core/plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "common/hash.h"
#include "common/simd.h"
#include "common/string_util.h"
#include "core/bound.h"
#include "relational/intersect_kernels.h"

namespace xjoin {

namespace {

// Static key-count estimate for one input at one of its local trie
// levels: exact level sizes for materialized tries, per-tag candidate
// populations for lazy path relations. O(1) either way.
int64_t LevelEstimate(const std::shared_ptr<const RelationTrie>& trie,
                      const PathRelation* path, size_t local_level) {
  if (trie != nullptr) {
    // Delta-aware upper bound: base level keys plus pending insert rows
    // (exact for the common no-delta case).
    return static_cast<int64_t>(trie->LevelKeyEstimate(local_level));
  }
  return static_cast<int64_t>(
      path->index().NodesByTag(path->tags()[local_level]).size());
}

// One resolved join participant, as the planner sees it.
struct PlannedInput {
  const std::string* name;
  const std::vector<std::string>* attrs;
  const std::shared_ptr<const RelationTrie>* trie;  // null entry = lazy
  const PathRelation* path;                         // set for path inputs
};

std::vector<PlannedInput> CollectInputs(const XJoinPlan& plan) {
  std::vector<PlannedInput> inputs;
  inputs.reserve(plan.rel_inputs.size() + plan.path_inputs.size());
  for (const auto& r : plan.rel_inputs) {
    inputs.push_back({&r.name, &r.attrs, &r.trie, nullptr});
  }
  for (const auto& p : plan.path_inputs) {
    inputs.push_back({&p.name, &p.attrs, &p.trie,
                      &plan.twigs[p.twig_index].paths[p.path_index]});
  }
  return inputs;
}

// Fills plan.levels: participants, coverage, the planned leapfrog lead
// (smallest static key-count estimate at the input's local level), and
// the planned intersection kernel — the same selection rule the raw
// executor applies at run time (ChooseIntersectStrategy), fed the
// static estimates.
void PlanLevels(XJoinPlan* plan) {
  std::vector<PlannedInput> inputs = CollectInputs(*plan);
  plan->levels.reserve(plan->order.size());
  for (const auto& attribute : plan->order) {
    PlanLevel level;
    level.attribute = attribute;
    int64_t best = std::numeric_limits<int64_t>::max();
    int64_t min_estimate = std::numeric_limits<int64_t>::max();
    int64_t max_estimate = 0;
    bool all_raw = true;
    for (const auto& in : inputs) {
      auto it = std::find(in.attrs->begin(), in.attrs->end(), attribute);
      if (it == in.attrs->end()) continue;
      size_t local = static_cast<size_t>(it - in.attrs->begin());
      level.participants.push_back(*in.name);
      int64_t estimate = LevelEstimate(*in.trie, in.path, local);
      if (estimate < best) {
        best = estimate;
        level.lead = *in.name;
        level.lead_estimate = estimate;
      }
      min_estimate = std::min(min_estimate, estimate);
      max_estimate = std::max(max_estimate, estimate);
      // The raw executor engages only over plain delta-free CSR tries
      // (RawTrieSpans); lazy path inputs and delta tries leapfrog
      // through the virtual protocol.
      if (*in.trie == nullptr || (*in.trie)->has_delta()) all_raw = false;
    }
    level.coverage = static_cast<int>(level.participants.size());
    if (plan->batch_size <= 0) {
      level.kernel = "scalar";
    } else if (level.coverage <= 1) {
      level.kernel = "drain";
    } else if (all_raw) {
      level.kernel = IntersectStrategyName(ChooseIntersectStrategy(
          level.participants.size(), min_estimate, max_estimate));
    } else {
      level.kernel = "leapfrog";
    }
    plan->levels.push_back(std::move(level));
  }
}

// Chooses the shard partitioning from the level-0 / level-1 domain-size
// estimates: depth 2 (composite prefixes) when level 0 alone cannot
// feed the requested shard count but one level deeper can, shard count
// capped by the chosen domain's estimate.
void PlanShards(XJoinPlan* plan) {
  ShardPlan& sp = plan->shard_plan;
  sp.requested = plan->num_shards > 0 ? plan->num_shards : plan->num_threads;
  sp.requested = std::max(1, sp.requested);
  if (plan->order.empty()) {
    sp.depth = 1;
    sp.count = 1;
    return;
  }

  std::vector<PlannedInput> inputs = CollectInputs(*plan);
  const std::string& attr0 = plan->order[0];
  // An input covering the first global attribute holds it at local
  // level 0 (induced orders are subsequences of the global order).
  int64_t level0 = std::numeric_limits<int64_t>::max();
  for (const auto& in : inputs) {
    if (!in.attrs->empty() && (*in.attrs)[0] == attr0) {
      level0 = std::min(level0, LevelEstimate(*in.trie, in.path, 0));
    }
  }
  if (level0 == std::numeric_limits<int64_t>::max()) level0 = 0;
  sp.level0_keys = level0;

  if (sp.requested <= 1) {
    sp.depth = 1;
    sp.count = 1;
    return;
  }

  if (level0 >= sp.requested) {
    sp.depth = 1;
    sp.count = sp.requested;
    return;
  }

  // Level-0 shortfall: estimate the composite (level-0 x level-1)
  // domain. Inputs covering both leading attributes bound it by their
  // level-1 key count; inputs covering only the second bound it by
  // level0 x their root key count.
  int64_t level01 = std::numeric_limits<int64_t>::max();
  if (plan->order.size() >= 2) {
    const std::string& attr1 = plan->order[1];
    for (const auto& in : inputs) {
      const auto& attrs = *in.attrs;
      if (attrs.size() >= 2 && attrs[0] == attr0 && attrs[1] == attr1) {
        level01 = std::min(level01, LevelEstimate(*in.trie, in.path, 1));
      } else if (!attrs.empty() && attrs[0] == attr1) {
        int64_t roots = LevelEstimate(*in.trie, in.path, 0);
        if (level0 > 0 &&
            roots < std::numeric_limits<int64_t>::max() / level0) {
          level01 = std::min(level01, level0 * roots);
        }
      }
    }
  }
  if (level01 == std::numeric_limits<int64_t>::max()) level01 = 0;
  sp.level01_keys = level01;

  if (level01 > level0) {
    sp.depth = 2;
    sp.count = static_cast<int>(
        std::min<int64_t>(sp.requested, std::max<int64_t>(level01, 1)));
  } else {
    sp.depth = 1;
    sp.count = static_cast<int>(
        std::min<int64_t>(sp.requested, std::max<int64_t>(level0, 1)));
  }
}

}  // namespace

std::string PathSignature(const Twig& twig, const TwigPath& path) {
  std::string sig;
  for (size_t i = 0; i < path.nodes.size(); ++i) {
    if (i) sig += '/';
    sig += twig.node(path.nodes[i]).tag;
    sig += ':';
    sig += path.attributes[i];
  }
  return sig;
}

size_t PlanFingerprint(const XJoinOptions& options) {
  size_t fp = 0;
  fp = HashBytes(fp, JoinStrings(options.attribute_order, ","));
  fp = HashCombine(fp, static_cast<size_t>(options.order_heuristic));
  fp = HashCombine(fp, (options.materialize_paths ? 1u : 0u) |
                           (options.structural_pruning ? 2u : 0u));
  fp = HashCombine(fp, static_cast<size_t>(std::max(1, options.num_threads)));
  fp = HashCombine(fp, static_cast<size_t>(std::max(0, options.num_shards)));
  fp = HashCombine(fp, static_cast<size_t>(std::max(0, options.batch_size)));
  return fp;
}

Result<std::shared_ptr<XJoinPlan>> PrepareXJoin(const MultiModelQuery& query,
                                                const XJoinOptions& options) {
  Timer timer;
  XJ_RETURN_NOT_OK(ValidateQuery(query));

  auto plan = std::make_shared<XJoinPlan>();
  plan->query = query;
  plan->order_heuristic = options.order_heuristic;
  plan->materialize_paths = options.materialize_paths;
  plan->structural_pruning = options.structural_pruning;
  plan->num_threads = std::max(1, options.num_threads);
  plan->num_shards = options.num_shards;
  plan->batch_size = std::max(0, options.batch_size);

  // 1. Expansion order (PA).
  if (options.attribute_order.empty()) {
    XJ_ASSIGN_OR_RETURN(
        plan->order,
        ChooseAttributeOrder(plan->query, options.order_heuristic));
  } else {
    XJ_RETURN_NOT_OK(CheckAttributeOrder(plan->query, options.attribute_order));
    plan->order = options.attribute_order;
  }
  std::map<std::string, size_t> order_pos;
  for (size_t i = 0; i < plan->order.size(); ++i) order_pos[plan->order[i]] = i;

  // 2. Transform(Sx): decompose twigs into path relations and build the
  // structural validators. The validators point into plan->query's twig
  // storage, which is why XJoinPlan is pinned to the heap.
  for (size_t t = 0; t < plan->query.twigs.size(); ++t) {
    const TwigInput& ti = plan->query.twigs[t];
    XJoinPlan::TwigExec exec(TwigStructureValidator(&ti.twig, ti.index));
    XJ_ASSIGN_OR_RETURN(exec.decomposition, DecomposeTwig(ti.twig));
    exec.order_pos_of_node.resize(ti.twig.num_nodes());
    for (size_t q = 0; q < ti.twig.num_nodes(); ++q) {
      exec.order_pos_of_node[q] =
          order_pos.at(ti.twig.node(static_cast<TwigNodeId>(q)).attribute);
    }
    for (size_t p = 0; p < exec.decomposition.paths.size(); ++p) {
      XJ_ASSIGN_OR_RETURN(
          PathRelation rel,
          PathRelation::Make(ti.twig, exec.decomposition.paths[p], ti.index));
      exec.paths.push_back(std::move(rel));
      XJoinPlan::PathInput input;
      input.name =
          "twig" + std::to_string(t + 1) + ".P" + std::to_string(p + 1);
      input.twig_index = t;
      input.path_index = p;
      input.attrs = exec.decomposition.paths[p].attributes;
      input.signature = PathSignature(ti.twig, exec.decomposition.paths[p]);
      plan->path_inputs.push_back(std::move(input));
    }
    plan->twigs.push_back(std::move(exec));
  }

  // 3. Pin relation tries: provider (the database cache) first, private
  // build otherwise. Builds use the plan's thread budget. Trie builds
  // are the expensive prepare-time step, so a cancelled caller is
  // checked before each one rather than only at execution.
  TrieBuildOptions build_options;
  build_options.num_threads = plan->num_threads;
  build_options.metrics = options.metrics;
  for (const auto& nr : plan->query.relations) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return options.cancel->status();
    }
    XJoinPlan::RelInput input;
    input.name = nr.name;
    input.relation = nr.relation;
    for (const auto& a : plan->order) {
      if (nr.relation->schema().Contains(a)) input.attrs.push_back(a);
    }
    if (options.trie_provider) {
      XJ_ASSIGN_OR_RETURN(input.trie, options.trie_provider(
                                          nr.name, *nr.relation, input.attrs));
      input.from_provider = input.trie != nullptr;
    }
    if (input.trie == nullptr) {
      XJ_ASSIGN_OR_RETURN(
          RelationTrie built,
          RelationTrie::Build(*nr.relation, input.attrs, build_options));
      input.trie = std::make_shared<const RelationTrie>(std::move(built));
    }
    (input.from_provider ? plan->tries_provider : plan->tries_built) += 1;
    plan->rel_inputs.push_back(std::move(input));
  }

  // 4. Pin path tries (ablation only; the default is lazy navigation).
  if (plan->materialize_paths) {
    for (auto& input : plan->path_inputs) {
      if (options.cancel != nullptr && options.cancel->cancelled()) {
        return options.cancel->status();
      }
      const PathRelation& rel =
          plan->twigs[input.twig_index].paths[input.path_index];
      if (options.path_trie_provider) {
        XJ_ASSIGN_OR_RETURN(input.trie,
                            options.path_trie_provider(rel, input.signature));
        input.from_provider = input.trie != nullptr;
      }
      if (input.trie == nullptr) {
        XJ_ASSIGN_OR_RETURN(Relation mat, rel.Materialize());
        XJ_ASSIGN_OR_RETURN(
            RelationTrie built,
            RelationTrie::Build(mat, input.attrs, build_options));
        input.trie = std::make_shared<const RelationTrie>(std::move(built));
      }
      (input.from_provider ? plan->tries_provider : plan->tries_built) += 1;
    }
  }

  // 5. Per-level rationale and the shard plan, from the pinned tries'
  // O(1) level statistics.
  PlanLevels(plan.get());
  PlanShards(plan.get());

  MetricsAdd(options.metrics, "plan.prepared", 1);
  MetricsAdd(options.metrics, "plan.prepare_micros", timer.ElapsedMicros());
  return plan;
}

Result<std::shared_ptr<XJoinPlan>> RebindXJoin(const XJoinPlan& stale,
                                               const MultiModelQuery& query,
                                               const XJoinOptions& options) {
  Timer timer;
  XJoinOptions rebind_options = options;
  // Pin the stale plan's expansion order: the query shape is unchanged,
  // so re-running order selection could only reproduce (or needlessly
  // perturb) it. Metrics are detached so a rebind counts below rather
  // than as a full "plan.prepared"; the providers carry their own
  // metrics pointers and are unaffected.
  rebind_options.attribute_order = stale.order;
  rebind_options.metrics = nullptr;
  XJ_ASSIGN_OR_RETURN(std::shared_ptr<XJoinPlan> plan,
                      PrepareXJoin(query, rebind_options));
  MetricsAdd(options.metrics, "plan.rebinds", 1);
  MetricsAdd(options.metrics, "plan.rebind_micros", timer.ElapsedMicros());
  return plan;
}

std::string ExplainPlan(const XJoinPlan& plan) {
  std::string out;
  out += "inputs:\n";
  for (const auto& r : plan.rel_inputs) {
    out += "  relation " + r.relation->schema().ToString(r.name) + "  [" +
           std::to_string(r.relation->num_rows()) + " rows]  trie: " +
           (r.from_provider ? "pinned via db cache" : "built privately") +
           "\n";
  }
  for (size_t t = 0; t < plan.query.twigs.size(); ++t) {
    const TwigInput& ti = plan.query.twigs[t];
    out += "  twig " + ti.twig.ToString() + "  [document: " +
           std::to_string(ti.index->doc().num_nodes()) + " nodes]\n";
    out += "    transform(Sx): " +
           DecompositionToString(ti.twig, plan.twigs[t].decomposition) + "\n";
  }
  for (const auto& p : plan.path_inputs) {
    out += "  path " + p.name + " = " + p.signature + "  [" +
           (p.trie != nullptr
                ? std::string(p.from_provider ? "materialized, db cache"
                                              : "materialized, private")
                : std::string("lazy")) +
           "]\n";
  }

  out += "expansion order (PA): " + JoinStrings(plan.order, " -> ") + "\n";
  for (size_t d = 0; d < plan.levels.size(); ++d) {
    const PlanLevel& level = plan.levels[d];
    out += "  level " + std::to_string(d) + ": " + level.attribute +
           "  inputs {" + JoinStrings(level.participants, ", ") + "}  lead " +
           level.lead + " (~" + std::to_string(level.lead_estimate) +
           " keys)";
    if (!level.kernel.empty()) out += "  kernel " + level.kernel;
    out += "\n";
  }

  const ShardPlan& sp = plan.shard_plan;
  out += "shard plan: depth=" + std::to_string(sp.depth) +
         ", shards=" + std::to_string(sp.count) + " (requested " +
         std::to_string(sp.requested) + "; level-0 domain ~" +
         std::to_string(sp.level0_keys);
  if (sp.depth == 2) {
    out += ", composite domain ~" + std::to_string(sp.level01_keys);
  }
  out += ")\n";
  out += "execution: ";
  if (plan.batch_size > 0) {
    out += "batched (columnar, block=" + std::to_string(plan.batch_size) +
           "; CSR levels devirtualized)\n";
    // Live property of the host running EXPLAIN, not a plan snapshot:
    // the dispatch ladder is resolved again wherever the plan executes.
    out += "simd dispatch: " +
           std::string(SimdLevelName(ActiveSimdLevel())) + "\n";
  } else {
    out += "scalar (row-at-a-time; batch_size=0)\n";
  }
  out += "pinned tries: " + std::to_string(plan.tries_provider) +
         " via db cache, " + std::to_string(plan.tries_built) +
         " private builds\n";
  if (plan.structural_pruning) out += "structural pruning: on\n";

  BoundOptions bound_options;
  bound_options.path_size_mode = PathSizeMode::kChainCount;
  auto bound = ComputeBound(plan.query, bound_options);
  if (bound.ok()) {
    out += "worst-case size bound: 2^" +
           FormatDouble(bound->cover.log2_bound) + " = " +
           FormatDouble(std::exp2(bound->cover.log2_bound)) +
           " tuples (chain-count path sizes)\n";
    if (!plan.query.output_attributes.empty()) {
      out += "bound on output attributes: 2^" +
             FormatDouble(bound->log2_output_bound) + "\n";
    }
  }

  out += "output: ";
  if (plan.query.output_attributes.empty()) {
    out += "all attributes\n";
  } else {
    out += JoinStrings(plan.query.output_attributes, ", ") + "\n";
  }
  return out;
}

}  // namespace xjoin
