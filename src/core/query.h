// The multi-model join query: relational tables plus XML twig patterns,
// joined naturally on shared attribute names (paper Figure 1). This is
// the input type of XJoin, the baseline, and the bound calculator.
#ifndef XJOIN_CORE_QUERY_H_
#define XJOIN_CORE_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"
#include "xml/node_index.h"
#include "xml/twig.h"

namespace xjoin {

/// One XML side of the query: a twig over an indexed document.
struct TwigInput {
  Twig twig;
  const NodeIndex* index = nullptr;  ///< document + values (shared dict!)
};

/// The full query. All relations and all NodeIndexes must encode values
/// through the same Dictionary for the equi-joins to be meaningful.
struct MultiModelQuery {
  struct NamedRelation {
    std::string name;
    const Relation* relation = nullptr;
  };
  std::vector<NamedRelation> relations;
  std::vector<TwigInput> twigs;
  /// Attributes of the result Q(A'); empty means "all attributes".
  std::vector<std::string> output_attributes;
};

/// All distinct attribute names of the query in deterministic order
/// (relations first, then twigs, first-appearance order).
std::vector<std::string> QueryAttributes(const MultiModelQuery& query);

/// Validates shape: non-empty, valid twigs, no wildcard twig tags, and
/// output attributes that exist.
Status ValidateQuery(const MultiModelQuery& query);

}  // namespace xjoin

#endif  // XJOIN_CORE_QUERY_H_
