#include "core/validate.h"

#include <algorithm>

#include "common/logging.h"

namespace xjoin {

TwigStructureValidator::TwigStructureValidator(const Twig* twig,
                                               const NodeIndex* index)
    : twig_(twig), index_(index) {
  tag_codes_.reserve(twig->num_nodes());
  for (size_t i = 0; i < twig->num_nodes(); ++i) {
    tag_codes_.push_back(
        index->doc().LookupTag(twig->node(static_cast<TwigNodeId>(i)).tag));
  }
}

bool TwigStructureValidator::ExistsEmbedding(
    const std::vector<std::optional<int64_t>>& values, Metrics* metrics) const {
  XJ_DCHECK(values.size() == twig_->num_nodes());
  const size_t n = twig_->num_nodes();
  const XmlDocument& doc = index_->doc();

  // Contract the twig onto its bound nodes: for each bound node, find the
  // nearest bound proper ancestor and the properties of the contracted
  // edge (distance, all-P-C?, direct edge?).
  std::vector<std::vector<SkeletonEdge>> children(n);
  std::vector<TwigNodeId> bound_nodes;
  for (size_t i = 0; i < n; ++i) {
    if (!values[i].has_value()) continue;
    TwigNodeId q = static_cast<TwigNodeId>(i);
    bound_nodes.push_back(q);
    // Walk up until a bound ancestor (or root).
    int32_t distance = 0;
    bool all_pc = true;
    TwigNodeId cur = q;
    while (twig_->node(cur).parent != kNullTwigNode) {
      if (twig_->node(cur).axis == TwigAxis::kDescendant) all_pc = false;
      ++distance;
      cur = twig_->node(cur).parent;
      if (values[static_cast<size_t>(cur)].has_value()) {
        SkeletonEdge e;
        e.child = q;
        e.distance = distance;
        e.exact_parent = (distance == 1 && all_pc);
        e.exact_level = all_pc;
        children[static_cast<size_t>(cur)].push_back(e);
        break;
      }
    }
  }

  // Bottom-up feasibility: bound nodes are in preorder, so reverse order
  // processes children before parents. F[q] holds feasible candidate
  // nodes sorted by NodeId.
  std::vector<std::vector<NodeId>> feasible(n);
  for (auto it = bound_nodes.rbegin(); it != bound_nodes.rend(); ++it) {
    TwigNodeId q = *it;
    size_t qi = static_cast<size_t>(q);
    if (tag_codes_[qi] < 0) return false;  // tag absent from document
    std::vector<NodeId> candidates =
        index_->NodesByTagValue(tag_codes_[qi], *values[qi]);
    MetricsAdd(metrics, "validate.candidates",
               static_cast<int64_t>(candidates.size()));
    if (candidates.empty()) return false;
    std::vector<NodeId> kept;
    for (NodeId x : candidates) {
      bool ok = true;
      for (const SkeletonEdge& e : children[qi]) {
        const std::vector<NodeId>& fc = feasible[static_cast<size_t>(e.child)];
        // Descendants of x occupy the NodeId range (x, subtree_end].
        auto lo = std::upper_bound(fc.begin(), fc.end(), x);
        NodeId end = doc.node(x).subtree_end;
        bool found = false;
        for (auto yit = lo; yit != fc.end() && *yit <= end; ++yit) {
          NodeId y = *yit;
          if (e.exact_parent) {
            if (doc.node(y).parent == x) {
              found = true;
              break;
            }
          } else if (e.exact_level) {
            if (doc.node(y).level == doc.node(x).level + e.distance) {
              found = true;
              break;
            }
          } else {
            if (doc.node(y).level >= doc.node(x).level + e.distance) {
              found = true;
              break;
            }
          }
        }
        if (!found) {
          ok = false;
          break;
        }
      }
      if (ok) kept.push_back(x);
    }
    if (kept.empty()) return false;
    feasible[qi] = std::move(kept);
  }
  return true;
}

}  // namespace xjoin
