#include "core/decompose.h"

#include <algorithm>
#include <sstream>

namespace xjoin {

Result<TwigDecomposition> DecomposeTwig(const Twig& twig) {
  XJ_RETURN_NOT_OK(twig.Validate());
  TwigDecomposition d;
  const size_t n = twig.num_nodes();
  d.subtwig_root_of.resize(n);

  // Step 1: sub-twig roots are the twig root plus every target of an A-D
  // edge. Nodes are in preorder, so a single pass assigns components.
  for (size_t i = 0; i < n; ++i) {
    TwigNodeId id = static_cast<TwigNodeId>(i);
    const TwigNode& node = twig.node(id);
    if (node.parent == kNullTwigNode) {
      d.subtwig_root_of[i] = id;
    } else if (node.axis == TwigAxis::kDescendant) {
      d.subtwig_root_of[i] = id;
      d.cut_edges.emplace_back(node.parent, id);
    } else {
      d.subtwig_root_of[i] =
          d.subtwig_root_of[static_cast<size_t>(node.parent)];
    }
  }

  // Step 2: root-leaf paths per sub-twig. A node is a sub-twig leaf when
  // it has no P-C children.
  for (size_t i = 0; i < n; ++i) {
    TwigNodeId id = static_cast<TwigNodeId>(i);
    bool has_pc_child = false;
    for (TwigNodeId c : twig.node(id).children) {
      if (twig.node(c).axis == TwigAxis::kChild) {
        has_pc_child = true;
        break;
      }
    }
    if (has_pc_child) continue;
    // Walk up to the sub-twig root.
    TwigPath path;
    TwigNodeId root = d.subtwig_root_of[i];
    for (TwigNodeId cur = id;; cur = twig.node(cur).parent) {
      path.nodes.push_back(cur);
      if (cur == root) break;
    }
    std::reverse(path.nodes.begin(), path.nodes.end());
    for (TwigNodeId q : path.nodes)
      path.attributes.push_back(twig.node(q).attribute);
    d.paths.push_back(std::move(path));
  }
  return d;
}

std::string DecompositionToString(const Twig& twig,
                                  const TwigDecomposition& d) {
  std::ostringstream out;
  for (size_t p = 0; p < d.paths.size(); ++p) {
    out << "P" << (p + 1) << "(";
    for (size_t i = 0; i < d.paths[p].attributes.size(); ++i) {
      if (i) out << ", ";
      out << d.paths[p].attributes[i];
    }
    out << ")";
    if (p + 1 < d.paths.size()) out << "  ";
  }
  for (const auto& [a, b] : d.cut_edges) {
    out << "  [cut: " << twig.node(a).attribute << "//"
        << twig.node(b).attribute << "]";
  }
  return out.str();
}

}  // namespace xjoin
