#include "core/xjoin.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "common/parallel.h"
#include "core/generic_join.h"
#include "relational/operators.h"
#include "relational/trie.h"

namespace xjoin {

Result<Relation> ExecutePlan(const XJoinPlan& plan,
                             const XJoinOptions& options) {
  const int num_threads = plan.num_threads;

  // A cancellation token rides the budget tracker as a cancel source so
  // both the expansion loop and the validation stage observe it through
  // one violated() poll; a token without a caller budget gets a private
  // unlimited tracker. (The caller's tracker may carry further tokens —
  // session- and statement-scoped — attached upstream.)
  BudgetTracker local_budget;
  BudgetTracker* budget = options.budget;
  if (options.cancel != nullptr) {
    if (budget == nullptr) budget = &local_budget;
    budget->AddCancelSource(options.cancel);
  }

  // 1. Instantiate cursors over the pinned tries: relations first, then
  // twig paths, mirroring the plan's input order.
  std::vector<JoinInput> inputs;
  std::vector<std::unique_ptr<TrieIterator>> iterators;
  inputs.reserve(plan.rel_inputs.size() + plan.path_inputs.size());
  iterators.reserve(plan.rel_inputs.size() + plan.path_inputs.size());
  for (const auto& rel : plan.rel_inputs) {
    iterators.push_back(rel.trie->NewIterator());
    inputs.push_back(JoinInput{rel.name, rel.attrs, iterators.back().get()});
  }
  for (const auto& path : plan.path_inputs) {
    if (path.trie != nullptr) {
      iterators.push_back(path.trie->NewIterator());
    } else {
      iterators.push_back(plan.twigs[path.twig_index]
                              .paths[path.path_index]
                              .NewLazyIterator());
    }
    inputs.push_back(JoinInput{path.name, path.attrs, iterators.back().get()});
  }

  // 2. Optional partial structural validation during expansion. The
  // validators are stateless-const and shared across shard threads;
  // each invocation records into the engine's shard-local metrics bag,
  // merged at the join barrier — counters stay exact in parallel runs.
  GenericJoinOptions gj_options;
  gj_options.attribute_order = plan.order;
  gj_options.metrics = options.metrics;
  gj_options.num_threads = num_threads;
  gj_options.num_shards = plan.shard_plan.count;
  gj_options.shard_depth = plan.shard_plan.depth;
  gj_options.batch_size = plan.batch_size;
  gj_options.budget = budget;
  gj_options.executor = options.executor;
  if (plan.structural_pruning) {
    gj_options.prefix_filter = [&plan](size_t depth,
                                       const std::vector<int64_t>& prefix,
                                       Metrics* metrics) {
      for (size_t t = 0; t < plan.twigs.size(); ++t) {
        const XJoinPlan::TwigExec& exec = plan.twigs[t];
        const Twig& twig = plan.query.twigs[t].twig;
        // Only re-check when the newly bound attribute belongs to this
        // twig.
        bool relevant = false;
        std::vector<std::optional<int64_t>> values(twig.num_nodes());
        for (size_t q = 0; q < twig.num_nodes(); ++q) {
          size_t pos = exec.order_pos_of_node[q];
          if (pos <= depth) values[q] = prefix[pos];
          if (pos == depth) relevant = true;
        }
        if (!relevant) continue;
        if (!exec.validator.ExistsEmbedding(values, metrics)) {
          MetricsAdd(metrics, "xjoin.pruned", 1);
          return false;
        }
      }
      return true;
    };
  }

  // 3. Expansion (Algorithm 1's loop). The budget tracker (if any) is
  // shared with the engine, which charges every expanded row against it
  // and returns the typed violation Status here — expansion output
  // counts toward max_rows/max_bytes even though validation may later
  // discard most of it (the budget meters work, not final result size).
  XJ_ASSIGN_OR_RETURN(Relation expanded, GenericJoin(inputs, gj_options));
  MetricsAdd(options.metrics, "xjoin.expanded",
             static_cast<int64_t>(expanded.num_rows()));

  // 4. Final structural validation. Row checks are independent, so they
  // run chunked across the thread pool with one scratch Metrics per
  // worker (merged after the barrier — sub-counters stay exact); the
  // keep-mask is filled at disjoint indices and the surviving rows are
  // appended serially in row order, keeping the output deterministic.
  Relation validated(expanded.schema());
  if (plan.twigs.empty()) {
    validated = std::move(expanded);
  } else {
    const size_t num_rows = expanded.num_rows();
    constexpr size_t kGrain = 64;
    std::vector<uint8_t> keep(num_rows, 0);
    std::vector<Metrics> worker_metrics(
        options.metrics != nullptr
            ? static_cast<size_t>(
                  ParallelWorkerCount(num_threads, num_rows, kGrain))
            : 0);
    Executor* executor =
        options.executor != nullptr ? options.executor : Executor::Default();
    executor->ParallelForWorker(
        num_threads, num_rows, kGrain, [&](int worker, size_t r) {
          // Cancelled (or budget-tripped) mid-validation: skip the
          // remaining rows (the whole result is discarded below, so a
          // zero keep-bit is fine).
          if (budget != nullptr && budget->violated()) return;
          Metrics* metrics = worker_metrics.empty()
                                 ? nullptr
                                 : &worker_metrics[static_cast<size_t>(worker)];
          bool ok = true;
          for (size_t t = 0; t < plan.twigs.size(); ++t) {
            const XJoinPlan::TwigExec& exec = plan.twigs[t];
            const Twig& twig = plan.query.twigs[t].twig;
            std::vector<std::optional<int64_t>> values(twig.num_nodes());
            for (size_t q = 0; q < twig.num_nodes(); ++q) {
              values[q] = expanded.at(r, exec.order_pos_of_node[q]);
            }
            if (!exec.validator.ExistsEmbedding(values, metrics)) {
              ok = false;
              break;
            }
          }
          keep[r] = ok ? 1 : 0;
        });
    for (const Metrics& m : worker_metrics) options.metrics->MergeFrom(m);
    for (size_t r = 0; r < num_rows; ++r) {
      if (keep[r] != 0) validated.AppendRow(expanded.GetRow(r));
    }
  }
  // Deadline/cancel check after the validation stage (its cost scales
  // with the expansion size, which the deadline is meant to bound).
  // Surviving rows were already charged as expansion output — no double
  // count.
  if (budget != nullptr) {
    budget->CheckDeadline();
    if (budget->violated()) return budget->status();
  }
  MetricsAdd(options.metrics, "xjoin.validated",
             static_cast<int64_t>(validated.num_rows()));
  if (options.metrics != nullptr) {
    options.metrics->RecordMax("xjoin.max_intermediate",
                               options.metrics->Get("gj.max_intermediate"));
  }

  // 5. Projection.
  if (plan.query.output_attributes.empty()) return validated;
  return Project(validated, plan.query.output_attributes);
}

Result<Relation> ExecuteXJoin(const MultiModelQuery& query,
                              const XJoinOptions& options) {
  XJ_ASSIGN_OR_RETURN(std::shared_ptr<XJoinPlan> plan,
                      PrepareXJoin(query, options));
  return ExecutePlan(*plan, options);
}

}  // namespace xjoin
