#include "core/xjoin.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <optional>

#include "common/parallel.h"
#include "core/decompose.h"
#include "core/generic_join.h"
#include "core/order.h"
#include "core/validate.h"
#include "core/virtual_relation.h"
#include "relational/operators.h"
#include "relational/trie.h"

namespace xjoin {

namespace {

// Everything one twig contributes to the join.
struct TwigPlan {
  const TwigInput* input;
  TwigDecomposition decomposition;
  std::vector<PathRelation> paths;
  TwigStructureValidator validator;
  // Maps: twig node id -> position of its attribute in the global order.
  std::vector<size_t> order_pos_of_node;

  TwigPlan(const TwigInput* in, TwigStructureValidator v)
      : input(in), validator(std::move(v)) {}
};

}  // namespace

Result<Relation> ExecuteXJoin(const MultiModelQuery& query,
                              const XJoinOptions& options) {
  XJ_RETURN_NOT_OK(ValidateQuery(query));

  // 1. Expansion order (PA).
  std::vector<std::string> order;
  if (options.attribute_order.empty()) {
    XJ_ASSIGN_OR_RETURN(order,
                        ChooseAttributeOrder(query, options.order_heuristic));
  } else {
    XJ_RETURN_NOT_OK(CheckAttributeOrder(query, options.attribute_order));
    order = options.attribute_order;
  }
  std::map<std::string, size_t> order_pos;
  for (size_t i = 0; i < order.size(); ++i) order_pos[order[i]] = i;

  // 2. S <- Sr ∪ transform(Sx).
  std::vector<JoinInput> inputs;
  std::vector<std::unique_ptr<TrieIterator>> iterators;
  std::vector<RelationTrie> tries;           // owns materialized tries
  std::vector<std::unique_ptr<TwigPlan>> twig_plans;

  // Relational tables: materialized tries in induced order.
  // (Build after collecting specs so `tries` never reallocates under
  // live iterators.)
  struct RelSpec {
    std::string name;
    const Relation* relation;
    std::vector<std::string> attrs;
  };
  std::vector<RelSpec> rel_specs;
  for (const auto& nr : query.relations) {
    RelSpec spec;
    spec.name = nr.name;
    spec.relation = nr.relation;
    for (const auto& a : order) {
      if (nr.relation->schema().Contains(a)) spec.attrs.push_back(a);
    }
    rel_specs.push_back(std::move(spec));
  }

  // Twigs: decomposition + path relations (+ materialized tries for the
  // ablation).
  struct PathSpec {
    std::string name;
    std::vector<std::string> attrs;
    const PathRelation* path;  // filled after twig_plans stabilizes
    size_t twig_index;
    size_t path_index;
  };
  std::vector<PathSpec> path_specs;
  for (size_t t = 0; t < query.twigs.size(); ++t) {
    const TwigInput& ti = query.twigs[t];
    auto plan = std::make_unique<TwigPlan>(
        &ti, TwigStructureValidator(&ti.twig, ti.index));
    XJ_ASSIGN_OR_RETURN(plan->decomposition, DecomposeTwig(ti.twig));
    plan->order_pos_of_node.resize(ti.twig.num_nodes());
    for (size_t q = 0; q < ti.twig.num_nodes(); ++q) {
      plan->order_pos_of_node[q] =
          order_pos.at(ti.twig.node(static_cast<TwigNodeId>(q)).attribute);
    }
    for (size_t p = 0; p < plan->decomposition.paths.size(); ++p) {
      XJ_ASSIGN_OR_RETURN(
          PathRelation rel,
          PathRelation::Make(ti.twig, plan->decomposition.paths[p], ti.index));
      plan->paths.push_back(std::move(rel));
      PathSpec spec;
      spec.name = "twig" + std::to_string(t + 1) + ".P" + std::to_string(p + 1);
      spec.attrs = plan->decomposition.paths[p].attributes;
      spec.twig_index = t;
      spec.path_index = p;
      path_specs.push_back(std::move(spec));
    }
    twig_plans.push_back(std::move(plan));
  }

  // Materialize relation tries (and path tries if requested). Named
  // relations go through the trie provider first (the database-level
  // trie cache); a null provider result means "build locally". Local
  // builds use the query's thread budget for the parallel CSR pass.
  const int num_threads = std::max(1, options.num_threads);
  TrieBuildOptions build_options;
  build_options.num_threads = num_threads;
  build_options.metrics = options.metrics;
  std::vector<Relation> materialized_paths;  // keeps Relations alive
  std::vector<std::shared_ptr<const RelationTrie>> shared_tries;
  shared_tries.reserve(rel_specs.size());
  size_t num_tries = rel_specs.size() +
                     (options.materialize_paths ? path_specs.size() : 0);
  tries.reserve(num_tries);
  for (const auto& spec : rel_specs) {
    const RelationTrie* trie = nullptr;
    if (options.trie_provider) {
      XJ_ASSIGN_OR_RETURN(
          std::shared_ptr<const RelationTrie> shared,
          options.trie_provider(spec.name, *spec.relation, spec.attrs));
      if (shared != nullptr) {
        shared_tries.push_back(std::move(shared));
        trie = shared_tries.back().get();
      }
    }
    if (trie == nullptr) {
      XJ_ASSIGN_OR_RETURN(
          RelationTrie built,
          RelationTrie::Build(*spec.relation, spec.attrs, build_options));
      tries.push_back(std::move(built));
      trie = &tries.back();
    }
    iterators.push_back(trie->NewIterator());
    inputs.push_back(JoinInput{spec.name, spec.attrs, iterators.back().get()});
  }
  if (options.materialize_paths) {
    materialized_paths.reserve(path_specs.size());
  }
  for (const auto& spec : path_specs) {
    const PathRelation& rel =
        twig_plans[spec.twig_index]->paths[spec.path_index];
    if (options.materialize_paths) {
      XJ_ASSIGN_OR_RETURN(Relation mat, rel.Materialize());
      materialized_paths.push_back(std::move(mat));
      XJ_ASSIGN_OR_RETURN(RelationTrie trie,
                          RelationTrie::Build(materialized_paths.back(),
                                              spec.attrs, build_options));
      tries.push_back(std::move(trie));
      iterators.push_back(tries.back().NewIterator());
    } else {
      iterators.push_back(rel.NewLazyIterator());
    }
    inputs.push_back(JoinInput{spec.name, spec.attrs, iterators.back().get()});
  }

  // 3. Optional partial structural validation during expansion.
  // Validator metrics would race across worker threads; the validators
  // themselves are stateless-const and safe to share. num_shards > 1 with
  // a single thread stays inline, so metrics are safe there.
  Metrics* validator_metrics = num_threads > 1 ? nullptr : options.metrics;
  GenericJoinOptions gj_options;
  gj_options.attribute_order = order;
  gj_options.metrics = options.metrics;
  gj_options.num_threads = num_threads;
  gj_options.num_shards = options.num_shards;
  std::atomic<int64_t> pruned{0};
  if (options.structural_pruning) {
    gj_options.prefix_filter = [&](size_t depth,
                                   const std::vector<int64_t>& prefix) {
      for (const auto& plan : twig_plans) {
        const Twig& twig = plan->input->twig;
        // Only re-check when the newly bound attribute belongs to this
        // twig.
        bool relevant = false;
        std::vector<std::optional<int64_t>> values(twig.num_nodes());
        for (size_t q = 0; q < twig.num_nodes(); ++q) {
          size_t pos = plan->order_pos_of_node[q];
          if (pos <= depth) values[q] = prefix[pos];
          if (pos == depth) relevant = true;
        }
        if (!relevant) continue;
        if (!plan->validator.ExistsEmbedding(values, validator_metrics)) {
          pruned.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
      }
      return true;
    };
  }

  // 4. Expansion (Algorithm 1's loop).
  XJ_ASSIGN_OR_RETURN(Relation expanded, GenericJoin(inputs, gj_options));
  MetricsAdd(options.metrics, "xjoin.expanded",
             static_cast<int64_t>(expanded.num_rows()));
  MetricsAdd(options.metrics, "xjoin.pruned",
             pruned.load(std::memory_order_relaxed));

  // 5. Final structural validation. Row checks are independent, so they
  // run chunked across the thread pool; the keep-mask is filled at
  // disjoint indices and the surviving rows are appended serially in row
  // order, keeping the output deterministic.
  Relation validated(expanded.schema());
  if (twig_plans.empty()) {
    validated = std::move(expanded);
  } else {
    const size_t num_rows = expanded.num_rows();
    std::vector<uint8_t> keep(num_rows, 0);
    ParallelFor(num_threads, num_rows, /*grain=*/64, [&](size_t r) {
      bool ok = true;
      for (const auto& plan : twig_plans) {
        const Twig& twig = plan->input->twig;
        std::vector<std::optional<int64_t>> values(twig.num_nodes());
        for (size_t q = 0; q < twig.num_nodes(); ++q) {
          values[q] = expanded.at(r, plan->order_pos_of_node[q]);
        }
        if (!plan->validator.ExistsEmbedding(values, validator_metrics)) {
          ok = false;
          break;
        }
      }
      keep[r] = ok ? 1 : 0;
    });
    for (size_t r = 0; r < num_rows; ++r) {
      if (keep[r] != 0) validated.AppendRow(expanded.GetRow(r));
    }
  }
  MetricsAdd(options.metrics, "xjoin.validated",
             static_cast<int64_t>(validated.num_rows()));
  if (options.metrics != nullptr) {
    options.metrics->RecordMax("xjoin.max_intermediate",
                               options.metrics->Get("gj.max_intermediate"));
  }

  // 6. Projection.
  if (query.output_attributes.empty()) return validated;
  return Project(validated, query.output_attributes);
}

}  // namespace xjoin
