// The paper's baseline (Figure 3, Example 3.4): evaluate Q1 (the
// relational-only join) and Q2 (each twig matched independently by a
// classical XML algorithm), then join the per-model results. Correct,
// but its intermediate results are bounded only by each model's own
// worst case (n^5 in Example 3.4 against the true n^2).
#ifndef XJOIN_CORE_BASELINE_H_
#define XJOIN_CORE_BASELINE_H_

#include "common/metrics.h"
#include "common/status.h"
#include "core/query.h"
#include "relational/relation.h"

namespace xjoin {

/// Which twig matcher evaluates Q2.
enum class TwigMatchStrategy {
  kPathStack,       ///< PathStack per root-leaf path + merge (default)
  kStructuralPlan,  ///< binary stack-tree structural joins
  kTwigStack,       ///< holistic TwigStack (Bruno et al. 2002)
  kNaive,           ///< brute force (oracle; for tests/small inputs)
};

/// Baseline options.
struct BaselineOptions {
  TwigMatchStrategy strategy = TwigMatchStrategy::kPathStack;
  /// Nullable counters: "baseline.q1_size", "baseline.q2_matches" (raw
  /// embeddings before value conversion), "baseline.max_intermediate",
  /// "baseline.total_intermediate".
  Metrics* metrics = nullptr;
};

/// Runs the baseline plan; the result is identical (as a set) to
/// ExecuteXJoin's on every valid query.
Result<Relation> ExecuteBaseline(const MultiModelQuery& query,
                                 const BaselineOptions& options = {});

}  // namespace xjoin

#endif  // XJOIN_CORE_BASELINE_H_
