#include "core/baseline.h"

#include <algorithm>

#include "relational/operators.h"
#include "twigjoin/twig_matchers.h"
#include "twigjoin/twigstack.h"

namespace xjoin {

namespace {

// Replaces node-id bindings with join values, preserving the schema.
Relation BindingsToValues(const Relation& bindings, const NodeIndex& index) {
  Relation out(bindings.schema());
  Tuple row(bindings.num_columns());
  for (size_t r = 0; r < bindings.num_rows(); ++r) {
    for (size_t c = 0; c < bindings.num_columns(); ++c) {
      row[c] = index.ValueOf(static_cast<NodeId>(bindings.at(r, c)));
    }
    out.AppendRow(row);
  }
  return out;
}

}  // namespace

Result<Relation> ExecuteBaseline(const MultiModelQuery& query,
                                 const BaselineOptions& options) {
  XJ_RETURN_NOT_OK(ValidateQuery(query));
  Metrics* metrics = options.metrics;
  int64_t max_intermediate = 0;
  int64_t total_intermediate = 0;

  // Q1: relational-only join.
  std::vector<Relation> partials;
  if (!query.relations.empty()) {
    std::vector<const Relation*> rels;
    rels.reserve(query.relations.size());
    for (const auto& nr : query.relations) rels.push_back(nr.relation);
    Metrics local;
    XJ_ASSIGN_OR_RETURN(Relation q1, JoinAll(rels, &local));
    max_intermediate =
        std::max(max_intermediate, local.Get("plan.max_intermediate"));
    total_intermediate += local.Get("plan.total_intermediate");
    MetricsAdd(metrics, "baseline.q1_size",
               static_cast<int64_t>(q1.num_rows()));
    partials.push_back(std::move(q1));
  }

  // Q2 per twig: classical matching, then node->value conversion.
  for (const auto& ti : query.twigs) {
    Metrics local;
    Relation bindings(Schema{});
    switch (options.strategy) {
      case TwigMatchStrategy::kPathStack: {
        XJ_ASSIGN_OR_RETURN(
            bindings, MatchTwigPathStack(ti.index->doc(), *ti.index, ti.twig,
                                         &local));
        max_intermediate =
            std::max(max_intermediate, local.Get("twig_path.max_intermediate"));
        total_intermediate += local.Get("twig_path.path_solutions");
        break;
      }
      case TwigMatchStrategy::kStructuralPlan: {
        XJ_ASSIGN_OR_RETURN(
            bindings, MatchTwigStructuralPlan(ti.index->doc(), *ti.index,
                                              ti.twig, &local));
        max_intermediate =
            std::max(max_intermediate, local.Get("twig_plan.max_intermediate"));
        total_intermediate += local.Get("twig_plan.total_intermediate");
        break;
      }
      case TwigMatchStrategy::kTwigStack: {
        XJ_ASSIGN_OR_RETURN(
            bindings, MatchTwigStack(ti.index->doc(), *ti.index, ti.twig,
                                     &local));
        max_intermediate =
            std::max(max_intermediate, local.Get("twigstack.max_intermediate"));
        total_intermediate += local.Get("twigstack.path_solutions");
        break;
      }
      case TwigMatchStrategy::kNaive: {
        std::vector<TwigMatch> matches =
            MatchTwigNaive(ti.index->doc(), ti.twig);
        XJ_ASSIGN_OR_RETURN(bindings, MatchesToRelation(ti.twig, matches));
        break;
      }
    }
    MetricsAdd(metrics, "baseline.q2_matches",
               static_cast<int64_t>(bindings.num_rows()));
    max_intermediate =
        std::max(max_intermediate, static_cast<int64_t>(bindings.num_rows()));
    total_intermediate += static_cast<int64_t>(bindings.num_rows());
    Relation values = BindingsToValues(bindings, *ti.index);
    values.SortAndDedup();
    partials.push_back(std::move(values));
  }

  // Combine the per-model results.
  std::vector<const Relation*> inputs;
  inputs.reserve(partials.size());
  for (const auto& p : partials) inputs.push_back(&p);
  Metrics combine;
  XJ_ASSIGN_OR_RETURN(Relation combined, JoinAll(inputs, &combine));
  max_intermediate =
      std::max(max_intermediate, combine.Get("plan.max_intermediate"));
  total_intermediate += combine.Get("plan.total_intermediate");

  if (metrics != nullptr) {
    metrics->RecordMax("baseline.max_intermediate", max_intermediate);
    metrics->Add("baseline.total_intermediate", total_intermediate);
  }
  if (query.output_attributes.empty()) return combined;
  return Project(combined, query.output_attributes);
}

}  // namespace xjoin
