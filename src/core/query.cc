#include "core/query.h"

#include <algorithm>
#include <unordered_set>

namespace xjoin {

std::vector<std::string> QueryAttributes(const MultiModelQuery& query) {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  auto add = [&](const std::string& a) {
    if (seen.insert(a).second) out.push_back(a);
  };
  for (const auto& nr : query.relations) {
    for (const auto& a : nr.relation->schema().attributes()) add(a);
  }
  for (const auto& twig_input : query.twigs) {
    for (const auto& a : twig_input.twig.attributes()) add(a);
  }
  return out;
}

Status ValidateQuery(const MultiModelQuery& query) {
  if (query.relations.empty() && query.twigs.empty()) {
    return Status::InvalidArgument("query has no inputs");
  }
  for (const auto& nr : query.relations) {
    if (nr.relation == nullptr) {
      return Status::InvalidArgument("relation " + nr.name + " is null");
    }
  }
  // Within a twig attributes are unique (Twig::Validate); the same
  // attribute appearing in two different twigs is a cross-document value
  // join and is allowed.
  for (const auto& twig_input : query.twigs) {
    if (twig_input.index == nullptr) {
      return Status::InvalidArgument("twig input without node index");
    }
    XJ_RETURN_NOT_OK(twig_input.twig.Validate());
    for (size_t i = 0; i < twig_input.twig.num_nodes(); ++i) {
      const TwigNode& n = twig_input.twig.node(static_cast<TwigNodeId>(i));
      if (n.tag == "*") {
        return Status::InvalidArgument(
            "wildcard twig tags are not joinable in multi-model queries");
      }
    }
  }
  std::vector<std::string> all = QueryAttributes(query);
  for (const auto& a : query.output_attributes) {
    if (std::find(all.begin(), all.end(), a) == all.end()) {
      return Status::InvalidArgument("output attribute " + a +
                                     " not in any input");
    }
  }
  return Status::OK();
}

}  // namespace xjoin
