// Structural validation of value-level join results (the final "Filter R
// by validating structure of Sx" of Algorithm 1, and the in-join partial
// validation the paper lists as on-going work).
//
// A value assignment to twig attributes is *structurally valid* when at
// least one embedding of the twig binds every query node q to a document
// node with tag(q) and the assigned value. The check is a tree-shaped
// constraint-satisfaction problem solved bottom-up over candidate node
// sets — exact for full assignments; for partial assignments the twig is
// contracted onto the bound nodes (nearest-bound-ancestor skeleton with
// level-distance constraints), a sound relaxation used for pruning.
#ifndef XJOIN_CORE_VALIDATE_H_
#define XJOIN_CORE_VALIDATE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "xml/node_index.h"
#include "xml/twig.h"

namespace xjoin {

/// Validator for one (twig, document) pair. Stateless between calls;
/// cheap to copy.
class TwigStructureValidator {
 public:
  TwigStructureValidator(const Twig* twig, const NodeIndex* index);

  /// `values[q]` is the value bound to twig node q, or nullopt when the
  /// node is not (yet) bound. Returns true when some embedding is
  /// consistent with every bound value (exact if all nodes are bound).
  bool ExistsEmbedding(const std::vector<std::optional<int64_t>>& values,
                       Metrics* metrics = nullptr) const;

 private:
  struct SkeletonEdge {
    TwigNodeId child;      // bound twig node
    bool exact_parent;     // direct P-C edge: require parent(y) == x
    bool exact_level;      // all-P-C contracted path: level diff == dist
    int32_t distance;      // number of twig edges contracted
  };

  const Twig* twig_;
  const NodeIndex* index_;
  std::vector<int32_t> tag_codes_;  // per twig node; -1 if absent in doc
};

}  // namespace xjoin

#endif  // XJOIN_CORE_VALIDATE_H_
