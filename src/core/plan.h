// The prepared-statement layer of the engine: everything Algorithm 1
// derives from the *shape* of a query — expansion order, twig
// decompositions, shard plan — plus pinned trie handles, computed once
// by PrepareXJoin and replayed by ExecutePlan (core/xjoin.h). The
// lifecycle is Prepare -> Pin -> Execute:
//
//   Prepare  resolve inputs, transform(Sx) path relations, choose PA
//            with its per-level rationale, plan the shard partitioning
//   Pin      obtain shared_ptr<const RelationTrie> handles through the
//            providers below (the database's caches) or build privately
//   Execute  ExecutePlan walks the pinned tries; no planning work left
//
// MultiModelDatabase caches XJoinPlans keyed by canonical query text +
// options fingerprint and re-validates input versions on every hit, so
// repeated query shapes skip order selection, shard planning, and all
// trie builds.
#ifndef XJOIN_CORE_PLAN_H_
#define XJOIN_CORE_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/executor.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/decompose.h"
#include "core/order.h"
#include "core/query.h"
#include "core/validate.h"
#include "core/virtual_relation.h"
#include "relational/relation.h"
#include "relational/result_batch.h"
#include "relational/trie.h"

namespace xjoin {

/// Optional supplier of materialized relation tries, consulted for every
/// named relational input before the engine builds one privately — this
/// is how MultiModelDatabase's trie cache plugs into XJoin. Returning a
/// null shared_ptr (inside an OK result) means "no cached trie, build
/// locally". A returned trie must match (relation, order) exactly and
/// must stay immutable and alive for the duration of the query; the
/// plan keeps the shared_ptr pinned until it is destroyed.
using TrieProvider = std::function<Result<std::shared_ptr<const RelationTrie>>(
    const std::string& name, const Relation& relation,
    const std::vector<std::string>& order)>;

/// Optional supplier of materialized *path* tries (consulted only when
/// materialize_paths is set). `signature` identifies the twig path
/// within its document — PathSignature() below — and, combined with the
/// document (reachable as &relation.index()) and its version, is the
/// database's cache key. Same null-means-build-locally contract as
/// TrieProvider.
using PathTrieProvider =
    std::function<Result<std::shared_ptr<const RelationTrie>>(
        const PathRelation& relation, const std::string& signature)>;

/// Execution options for XJoin. The plan-shaping fields (attribute
/// order, heuristic, materialize_paths, structural_pruning, num_threads,
/// num_shards) are snapshotted into the XJoinPlan at prepare time and
/// are part of the database's plan-cache fingerprint; metrics and the
/// providers are per-call services.
struct XJoinOptions {
  /// The paper's PA: explicit expansion order. Empty = choose
  /// automatically (core/order.h). Must respect twig path precedence.
  std::vector<std::string> attribute_order;
  /// Greedy rule used when attribute_order is empty.
  OrderHeuristic order_heuristic = OrderHeuristic::kCoverage;
  /// Ablation: flatten path relations to materialized tries first.
  bool materialize_paths = false;
  /// §4 extension: prune prefixes whose partial twig structure is
  /// already infeasible.
  bool structural_pruning = false;
  /// Worker threads for the expansion loop and the final structural
  /// validation. <= 1 (default) runs fully serial, bit-identical to the
  /// pre-sharding engine; > 1 shards the first attribute's key domain
  /// across a thread pool (see GenericJoinOptions::num_threads). The
  /// result relation is byte-identical either way.
  int num_threads = 1;
  /// Prefix shard count forwarded to the shard plan (0 = one shard per
  /// thread). num_shards > 1 with num_threads == 1 exercises the shard
  /// partitioning deterministically on one thread.
  int num_shards = 0;
  /// Result-batch capacity for the expansion loop, snapshotted into the
  /// plan and part of the cache fingerprint. > 0 (the default) =
  /// block-at-a-time execution with columnar materialization and
  /// runtime-dispatched SIMD intersection kernels over raw CSR inputs;
  /// 0 = the legacy scalar opt-out (see GenericJoinOptions::batch_size).
  /// Results and "gj.*"/"validate.*" counters are identical either way.
  int batch_size = kDefaultResultBatchCapacity;
  /// Optional trie cache hook (see TrieProvider above). Empty = every
  /// prepare builds its own relation tries.
  TrieProvider trie_provider;
  /// Optional materialized-path-trie cache hook (used only with
  /// materialize_paths). Empty = materialize and build locally.
  PathTrieProvider path_trie_provider;
  /// Optional per-query admission budget (nullable), shared by the
  /// expansion loop and the final structural validation: every
  /// materialized row at any stage is charged against it and the
  /// deadline is sampled as work progresses. On violation the engine
  /// stops, discards partial rows, and returns the tracker's typed
  /// Status (kResourceExhausted / kDeadlineExceeded). Per-call service —
  /// never part of the plan fingerprint.
  BudgetTracker* budget = nullptr;
  /// Optional cooperative cancellation token (nullable), observed both
  /// at prepare time (between trie pins, so a cancelled caller never
  /// pays for a cold trie build) and throughout execution (attached to
  /// the budget tracker as a cancel source, polled every binding).
  /// Cancelled queries return the token's typed kCancelled Status and
  /// discard partial rows. Per-call service — never part of the plan
  /// fingerprint.
  const CancellationToken* cancel = nullptr;
  /// Executor pool for sharded expansion and parallel validation
  /// (nullable; null = the shared Executor::Default() pool). Per-call
  /// service — never part of the plan fingerprint.
  Executor* executor = nullptr;
  /// Nullable counters. Records the generic-join "gj.*" counters plus
  /// "plan.prepared" / "plan.prepare_micros" (prepare side),
  /// "xjoin.expanded" (tuples before validation), "xjoin.validated"
  /// (tuples after), "xjoin.pruned" (prefixes cut by partial
  /// validation), "xjoin.max_intermediate", and the per-twig
  /// "validate.*" sub-counters — exact at every thread count (per-shard
  /// bags merged at the barriers).
  Metrics* metrics = nullptr;
};

/// Rationale for one expansion level, recorded at prepare time: who
/// participates, who the planned leapfrog lead is, and why (smallest
/// static key-count estimate). The executor still re-picks the lead
/// dynamically per prefix (estimates sharpen as prefixes bind); the
/// planned lead is the level's a-priori choice shown by EXPLAIN.
struct PlanLevel {
  std::string attribute;
  std::vector<std::string> participants;  ///< input names covering it
  std::string lead;                       ///< planned leapfrog lead input
  int64_t lead_estimate = 0;              ///< its static key-count estimate
  int coverage = 0;                       ///< #inputs covering the attribute
  /// Planned intersection kernel for the level, shown by EXPLAIN:
  /// "scalar" (batch_size == 0 — virtual leapfrog throughout), "drain"
  /// (single participant: bulk block copies), "gallop"/"merge" (the
  /// SIMD-dispatched raw-CSR kernel, strategy picked from the static
  /// cardinality skew), or "leapfrog" (non-CSR participant, virtual
  /// protocol). Like the lead, the executor re-decides per prefix from
  /// live estimates; this is the a-priori choice.
  std::string kernel;
};

/// The shard partitioning decision, chosen at prepare time from the
/// level-0 / level-1 domain-size estimates (instead of the engine's
/// run-time half-shortfall rule).
struct ShardPlan {
  int requested = 1;  ///< num_shards, defaulted to num_threads
  /// 1 = contiguous level-0 key ranges; 2 = level-0 x level-1 composite
  /// prefixes (chosen when the level-0 domain estimate falls short of
  /// the request and going one level deeper widens the domain).
  int depth = 1;
  int count = 1;             ///< planned shard count (capped by domain)
  int64_t level0_keys = 0;   ///< level-0 domain estimate
  int64_t level01_keys = 0;  ///< composite domain estimate (0 = unknown)
};

/// A fully prepared query: the immutable output of PrepareXJoin.
/// Holds pointers into the caller's storage (Relations, NodeIndexes) —
/// valid as long as that storage outlives the plan and is not mutated.
/// Safe to share across concurrent ExecutePlan calls (everything is
/// const after prepare); not copyable or movable (twig validators point
/// into the embedded query).
struct XJoinPlan {
  XJoinPlan() = default;
  XJoinPlan(const XJoinPlan&) = delete;
  XJoinPlan& operator=(const XJoinPlan&) = delete;

  /// The resolved query (relations + twigs + output attributes).
  MultiModelQuery query;

  // --- plan-shaping option snapshot (part of the cache fingerprint) ---
  OrderHeuristic order_heuristic = OrderHeuristic::kCoverage;
  bool materialize_paths = false;
  bool structural_pruning = false;
  int num_threads = 1;
  int num_shards = 0;
  int batch_size = kDefaultResultBatchCapacity;

  /// The chosen expansion order (PA) with its per-level rationale.
  std::vector<std::string> order;
  std::vector<PlanLevel> levels;

  /// One pinned relational input: trie levels follow the global order
  /// restricted to the relation's attributes.
  struct RelInput {
    std::string name;
    const Relation* relation = nullptr;
    std::vector<std::string> attrs;
    std::shared_ptr<const RelationTrie> trie;  ///< always set
    /// Pinned through the provider (the database cache — hit or
    /// freshly inserted) vs built privately for this plan.
    bool from_provider = false;
  };
  std::vector<RelInput> rel_inputs;

  /// Everything one twig contributes to execution.
  struct TwigExec {
    TwigDecomposition decomposition;
    std::vector<PathRelation> paths;
    TwigStructureValidator validator;
    /// Twig node id -> position of its attribute in the global order.
    std::vector<size_t> order_pos_of_node;

    explicit TwigExec(TwigStructureValidator v) : validator(std::move(v)) {}
  };
  std::vector<TwigExec> twigs;

  /// One twig path input ("twig<i>.P<j>"): lazy by default (trie left
  /// null, ExecutePlan navigates the document in place), materialized
  /// and pinned when materialize_paths is set.
  struct PathInput {
    std::string name;
    size_t twig_index = 0;
    size_t path_index = 0;
    std::vector<std::string> attrs;
    std::string signature;  ///< PathSignature(), the cache identity
    std::shared_ptr<const RelationTrie> trie;  ///< null = lazy
    bool from_provider = false;
  };
  std::vector<PathInput> path_inputs;

  ShardPlan shard_plan;

  /// Pin statistics (EXPLAIN): tries obtained through the providers
  /// (cache hits or fresh inserts — the db counters split those) vs
  /// built privately for this plan.
  int64_t tries_provider = 0;
  int64_t tries_built = 0;

  // --- filled by the caching layer (MultiModelDatabase), unused by the
  //     free-standing pipeline ---
  struct SourceVersion {
    std::string name;
    bool is_document = false;
    uint64_t version = 0;
  };
  std::vector<SourceVersion> sources;  ///< input versions at prepare time
  std::string cache_key;               ///< canonical text + fingerprint
  /// Snapshot pins: shared_ptr handles to the registry storage the raw
  /// pointers above (RelInput::relation, the validators' NodeIndexes)
  /// point into. Filled by the caching layer from the session snapshot
  /// so a plan stays executable after a writer copy-on-swaps the
  /// registry entry out from under it.
  std::vector<std::shared_ptr<const void>> pins;
};

/// Stable identity of one decomposed twig path inside its document:
/// "tag:attr" per level, '/'-joined (tags disambiguate same-named
/// attributes across twigs; attributes capture aliasing). Part of the
/// database's path-trie cache key.
std::string PathSignature(const Twig& twig, const TwigPath& path);

/// Fingerprint of the plan-shaping option fields (attribute_order,
/// order_heuristic, materialize_paths, structural_pruning, num_threads,
/// num_shards, batch_size) — the second half of the database's
/// plan-cache key, so e.g. num_threads and structural_pruning variants
/// get distinct plans.
size_t PlanFingerprint(const XJoinOptions& options);

/// Prepares `query`: validates it, chooses the expansion order (with
/// per-level lead rationale), decomposes twigs into path relations,
/// pins relation tries (and path tries under materialize_paths) through
/// the providers or private builds, and plans the shard partitioning
/// from the level-0/level-1 domain estimates. O(planning) only — no
/// expansion runs. Records "plan.prepared" and "plan.prepare_micros" on
/// options.metrics. The returned plan is mutable only so the caching
/// layer can attach versions; treat it as const afterwards.
Result<std::shared_ptr<XJoinPlan>> PrepareXJoin(const MultiModelQuery& query,
                                                const XJoinOptions& options);

/// Re-prepares a structurally unchanged plan against updated inputs:
/// the caller supplies `query` as the stale plan's parsed query with
/// relation pointers remapped to the new storage (documents must be
/// unchanged), and the stale plan's expansion order is forced, so
/// rebinding skips parsing and order selection and spends its time only
/// re-pinning tries through the providers — which is where the
/// database's delta-patched tries at the new versions come from.
/// Records "plan.rebinds" / "plan.rebind_micros" instead of
/// "plan.prepared"; used by the plan cache to keep entries serving
/// across ApplyRelationDelta version bumps without a full re-plan.
Result<std::shared_ptr<XJoinPlan>> RebindXJoin(const XJoinPlan& stale,
                                               const MultiModelQuery& query,
                                               const XJoinOptions& options);

/// Renders the plan for EXPLAIN: inputs and their transform(Sx)
/// decompositions, the expansion order with per-level bound rationale,
/// pinned-trie cache provenance, the shard plan, and the Equation-1
/// worst-case size bound (chain-count path sizes, enumeration-free).
std::string ExplainPlan(const XJoinPlan& plan);

}  // namespace xjoin

#endif  // XJOIN_CORE_PLAN_H_
