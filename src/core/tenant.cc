#include "core/tenant.h"

#include <algorithm>
#include <chrono>

#include "common/fault.h"

namespace xjoin {

namespace {
// Queued waiters re-check in short slices rather than sleeping until
// the queue deadline, so a Cancel() from another thread aborts the wait
// within about a millisecond instead of the full deadline.
constexpr std::chrono::milliseconds kWaitSlice{1};
}  // namespace

TenantPool::TenantPool(std::string name, TenantPoolOptions options)
    : name_(std::move(name)), options_([&] {
        TenantPoolOptions o = options;
        o.max_concurrent = std::max(1, o.max_concurrent);
        o.max_queue_depth = std::max(0, o.max_queue_depth);
        o.queue_deadline_micros = std::max<int64_t>(0, o.queue_deadline_micros);
        return o;
      }()) {
  if (options_.max_inflight_rows > 0 || options_.max_inflight_bytes > 0) {
    aggregate_ = std::make_unique<AggregateBudget>(
        name_, options_.max_inflight_rows, options_.max_inflight_bytes);
  }
}

// A saturated pool should clear a queue slot within about one queue
// deadline (that is how long the current head is allowed to wait), so
// both rejection flavors suggest it as the machine-readable retry
// hint, floored at 1ms so a zero-deadline pool still backs callers off.
int64_t TenantPool::RetryAfterMicros() const {
  return std::max<int64_t>(options_.queue_deadline_micros, 1000);
}

Status TenantPool::QueueFullError(int depth) {
  return Status::ResourceExhausted(
             "tenant pool '" + name_ + "' is saturated: " +
             std::to_string(options_.max_concurrent) +
             " queries running and its " + "wait queue is full (" +
             std::to_string(depth) + "/" +
             std::to_string(options_.max_queue_depth) +
             " waiting); retry after a running query finishes or raise "
             "max_queue_depth")
      .WithRetryInfo(RetryInfo{RetryAfterMicros(), depth});
}

Status TenantPool::QueueTimeoutError(int depth) {
  return Status::ResourceExhausted(
             "tenant pool '" + name_ + "' admission timed out after " +
             std::to_string(options_.queue_deadline_micros) +
             "us in the wait queue (" + std::to_string(depth) +
             " still waiting, " + std::to_string(options_.max_concurrent) +
             " running); retry later or raise queue_deadline_micros")
      .WithRetryInfo(RetryInfo{RetryAfterMicros(), depth});
}

Status TenantPool::Admit(BudgetTracker* budget, bool* queued) {
  if (queued != nullptr) *queued = false;
  const bool forced_full = XJOIN_FAULT("admission.queue_full");
  std::unique_lock<std::mutex> lock(mu_);
  if (forced_full) {
    ++rejected_;
    return QueueFullError(static_cast<int>(waiting_.size()));
  }
  if (running_ < options_.max_concurrent && waiting_.empty()) {
    ++running_;
    ++admitted_;
    return Status::OK();
  }
  if (static_cast<int>(waiting_.size()) >= options_.max_queue_depth) {
    ++rejected_;
    return QueueFullError(static_cast<int>(waiting_.size()));
  }

  const uint64_t ticket = next_ticket_++;
  waiting_.insert(ticket);
  ++queued_;
  if (queued != nullptr) *queued = true;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(options_.queue_deadline_micros);

  for (;;) {
    if (running_ < options_.max_concurrent && *waiting_.begin() == ticket) {
      waiting_.erase(ticket);
      ++running_;
      ++admitted_;
      // The head changed: the next waiter may now be admissible too.
      cv_.notify_all();
      return Status::OK();
    }
    if (budget != nullptr && budget->violated()) {
      waiting_.erase(ticket);
      Status st = budget->status();
      if (st.code() == StatusCode::kCancelled) {
        ++cancelled_;
      } else {
        ++rejected_;
      }
      cv_.notify_all();
      return st.WithContext("while queued for tenant pool '" + name_ + "'");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      waiting_.erase(ticket);
      ++rejected_;
      const int depth = static_cast<int>(waiting_.size());
      cv_.notify_all();
      return QueueTimeoutError(depth);
    }
    cv_.wait_for(lock, std::min<std::chrono::steady_clock::duration>(
                           kWaitSlice, deadline - now));
  }
}

void TenantPool::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_all();
}

void TenantPool::NoteCancelled() {
  std::lock_guard<std::mutex> lock(mu_);
  ++cancelled_;
}

TenantPoolStats TenantPool::stats() {
  TenantPoolStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.admitted = admitted_;
    out.queued = queued_;
    out.rejected = rejected_;
    out.cancelled = cancelled_;
    out.running = running_;
    out.waiting = static_cast<int>(waiting_.size());
  }
  if (aggregate_ != nullptr) {
    out.inflight_rows = aggregate_->inflight_rows();
    out.inflight_bytes = aggregate_->inflight_bytes();
  }
  return out;
}

}  // namespace xjoin
