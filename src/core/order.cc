#include "core/order.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/decompose.h"

namespace xjoin {

namespace {

// Precedence edges a -> b (a must come before b) from every twig path.
Result<std::vector<std::pair<std::string, std::string>>> PrecedenceEdges(
    const MultiModelQuery& query) {
  std::vector<std::pair<std::string, std::string>> edges;
  for (const auto& ti : query.twigs) {
    XJ_ASSIGN_OR_RETURN(TwigDecomposition d, DecomposeTwig(ti.twig));
    for (const auto& path : d.paths) {
      for (size_t i = 0; i + 1 < path.attributes.size(); ++i) {
        edges.emplace_back(path.attributes[i], path.attributes[i + 1]);
      }
    }
  }
  return edges;
}

}  // namespace

Result<std::vector<std::string>> ChooseAttributeOrder(
    const MultiModelQuery& query, OrderHeuristic heuristic) {
  XJ_RETURN_NOT_OK(ValidateQuery(query));
  std::vector<std::string> attrs = QueryAttributes(query);
  XJ_ASSIGN_OR_RETURN(auto edges, PrecedenceEdges(query));

  // Coverage counts: how many inputs (relations + paths) contain each
  // attribute.
  std::map<std::string, int> coverage;
  for (const auto& nr : query.relations) {
    for (const auto& a : nr.relation->schema().attributes()) ++coverage[a];
  }
  for (const auto& ti : query.twigs) {
    XJ_ASSIGN_OR_RETURN(TwigDecomposition d, DecomposeTwig(ti.twig));
    for (const auto& path : d.paths) {
      for (const auto& a : path.attributes) ++coverage[a];
    }
  }

  // Domain estimates: the smallest candidate set any single input
  // offers for the attribute (distinct codes for relational columns,
  // tag population for twig nodes).
  std::map<std::string, int64_t> domain;
  if (heuristic == OrderHeuristic::kSmallestDomain) {
    auto shrink = [&](const std::string& a, int64_t estimate) {
      auto it = domain.find(a);
      if (it == domain.end() || estimate < it->second) domain[a] = estimate;
    };
    for (const auto& nr : query.relations) {
      for (size_t c = 0; c < nr.relation->schema().size(); ++c) {
        // sort+unique on a flat copy: same count as a std::set, without
        // the node-per-element allocation on large columns.
        std::vector<int64_t> values = nr.relation->column(c);
        std::sort(values.begin(), values.end());
        auto distinct = static_cast<int64_t>(
            std::unique(values.begin(), values.end()) - values.begin());
        shrink(nr.relation->schema().attribute(c), distinct);
      }
    }
    for (const auto& ti : query.twigs) {
      for (size_t i = 0; i < ti.twig.num_nodes(); ++i) {
        const TwigNode& node = ti.twig.node(static_cast<TwigNodeId>(i));
        int32_t tag = ti.index->doc().LookupTag(node.tag);
        shrink(node.attribute,
               static_cast<int64_t>(ti.index->NodesByTag(tag).size()));
      }
    }
  }

  std::map<std::string, int> indegree;
  for (const auto& a : attrs) indegree[a] = 0;
  std::multimap<std::string, std::string> succ;
  for (const auto& [from, to] : edges) {
    succ.emplace(from, to);
    ++indegree[to];
  }

  std::vector<std::string> order;
  std::set<std::string> emitted;
  while (order.size() < attrs.size()) {
    // Greedy among zero-indegree attributes per the heuristic,
    // tie-break by first appearance in `attrs`.
    const std::string* best = nullptr;
    for (const auto& a : attrs) {
      if (emitted.count(a) || indegree[a] != 0) continue;
      if (best == nullptr) {
        best = &a;
      } else if (heuristic == OrderHeuristic::kCoverage) {
        if (coverage[a] > coverage[*best]) best = &a;
      } else {
        if (domain[a] < domain[*best]) best = &a;
      }
    }
    if (best == nullptr) {
      // Possible only with cross-twig shared attributes whose path
      // directions conflict (twig1: X above Y, twig2: Y above X).
      return Status::InvalidArgument(
          "cyclic path precedence between shared twig attributes; "
          "alias one of the conflicting nodes");
    }
    order.push_back(*best);
    emitted.insert(*best);
    auto [lo, hi] = succ.equal_range(*best);
    for (auto it = lo; it != hi; ++it) --indegree[it->second];
  }
  return order;
}

Status CheckAttributeOrder(const MultiModelQuery& query,
                           const std::vector<std::string>& order) {
  std::vector<std::string> attrs = QueryAttributes(query);
  if (order.size() != attrs.size()) {
    return Status::InvalidArgument("attribute order must list all " +
                                   std::to_string(attrs.size()) +
                                   " query attributes");
  }
  std::map<std::string, size_t> position;
  for (size_t i = 0; i < order.size(); ++i) {
    if (!position.emplace(order[i], i).second) {
      return Status::InvalidArgument("attribute order repeats " + order[i]);
    }
  }
  for (const auto& a : attrs) {
    if (!position.count(a)) {
      return Status::InvalidArgument("attribute order misses " + a);
    }
  }
  XJ_ASSIGN_OR_RETURN(auto edges, PrecedenceEdges(query));
  for (const auto& [from, to] : edges) {
    if (position[from] > position[to]) {
      return Status::InvalidArgument(
          "attribute order violates path precedence: " + from +
          " must precede " + to);
    }
  }
  return Status::OK();
}

}  // namespace xjoin
