// Attribute expansion order (the paper's PA input to Algorithm 1).
// Any order works for correctness as long as each twig path's attributes
// appear root-first (the lazy path tries can only descend top-down);
// this module picks one automatically and checks user-supplied orders.
#ifndef XJOIN_CORE_ORDER_H_
#define XJOIN_CORE_ORDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"

namespace xjoin {

/// Greedy tie-breaking rule used inside the topological order.
enum class OrderHeuristic {
  /// Prefer attributes covered by the most inputs (they constrain the
  /// search earliest). Default.
  kCoverage,
  /// Prefer attributes with the smallest estimated domain (distinct
  /// relational values / candidate document nodes), so the search tree
  /// narrows early. Costs one scan per input at planning time.
  kSmallestDomain,
};

/// Chooses a valid global order (the PA input of paper Algorithm 1): a
/// topological order of the path precedence constraints with greedy
/// tie-breaking per `heuristic`, then first appearance for determinism.
/// O(A^2 · I) for A attributes over I inputs (kCoverage); kSmallestDomain
/// adds one domain scan per input at planning time. Any valid order is
/// correct; the heuristic only shapes intermediate sizes (Lemma 3.5
/// bounds them for every order that the LP bound respects).
Result<std::vector<std::string>> ChooseAttributeOrder(
    const MultiModelQuery& query,
    OrderHeuristic heuristic = OrderHeuristic::kCoverage);

/// Verifies that `order` contains every query attribute exactly once and
/// respects every twig path's root-first precedence (the lazy path tries
/// of core/virtual_relation.h can only descend top-down). O(A · I).
Status CheckAttributeOrder(const MultiModelQuery& query,
                           const std::vector<std::string>& order);

}  // namespace xjoin

#endif  // XJOIN_CORE_ORDER_H_
