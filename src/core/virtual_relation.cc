#include "core/virtual_relation.h"

#include <algorithm>

#include "common/logging.h"
#include "relational/schema.h"

namespace xjoin {

Result<PathRelation> PathRelation::Make(const Twig& twig, const TwigPath& path,
                                        const NodeIndex* index) {
  PathRelation rel;
  rel.index_ = index;
  rel.attributes_ = path.attributes;
  for (TwigNodeId q : path.nodes) {
    const std::string& tag = twig.node(q).tag;
    if (tag == "*") {
      return Status::InvalidArgument(
          "wildcard tags are not supported in multi-model joins");
    }
    rel.tags_.push_back(index->doc().LookupTag(tag));
  }
  return rel;
}

std::unique_ptr<TrieIterator> PathRelation::NewLazyIterator() const {
  return std::make_unique<LazyPathTrieIterator>(this);
}

Result<Relation> PathRelation::Materialize() const {
  XJ_ASSIGN_OR_RETURN(Schema schema, Schema::Make(attributes_));
  Relation out(std::move(schema));
  const XmlDocument& doc = index_->doc();
  if (tags_.empty()) return out;
  if (tags_[0] < 0) return out;  // root tag absent

  Tuple row(tags_.size());
  // Depth-first chain enumeration.
  struct Level {
    std::vector<NodeId> nodes;
    size_t next;
  };
  std::vector<Level> stack;
  stack.push_back({index_->NodesByTag(tags_[0]), 0});
  while (!stack.empty()) {
    Level& top = stack.back();
    if (top.next >= top.nodes.size()) {
      stack.pop_back();
      continue;
    }
    NodeId node = top.nodes[top.next++];
    row[stack.size() - 1] = index_->ValueOf(node);
    if (stack.size() == tags_.size()) {
      out.AppendRow(row);
      continue;
    }
    int32_t next_tag = tags_[stack.size()];
    std::vector<NodeId> children;
    if (next_tag >= 0) {
      for (NodeId c = doc.node(node).first_child; c != kNullNode;
           c = doc.node(c).next_sibling) {
        if (doc.node(c).tag == next_tag) children.push_back(c);
      }
    }
    stack.push_back({std::move(children), 0});
  }
  out.SortAndDedup();
  return out;
}

int64_t PathRelation::CountChains() const {
  if (tags_.empty()) return 0;
  if (tags_[0] < 0) return 0;
  const XmlDocument& doc = index_->doc();
  // chains[x] = number of chains for the path suffix starting at level
  // `lvl` whose first node is x. Computed bottom-up over levels.
  const size_t k = tags_.size();
  // For the last level every matching node contributes one chain.
  std::vector<int64_t> counts;  // parallel to nodes of current level
  std::vector<NodeId> nodes = index_->NodesByTag(tags_[k - 1]);
  counts.assign(nodes.size(), 1);
  for (size_t lvl = k - 1; lvl-- > 0;) {
    // Map node -> count for quick child lookup.
    std::vector<int64_t> count_by_node(doc.num_nodes(), 0);
    for (size_t i = 0; i < nodes.size(); ++i) {
      count_by_node[static_cast<size_t>(nodes[i])] = counts[i];
    }
    std::vector<NodeId> up_nodes = index_->NodesByTag(tags_[lvl]);
    std::vector<int64_t> up_counts(up_nodes.size(), 0);
    int32_t child_tag = tags_[lvl + 1];
    for (size_t i = 0; i < up_nodes.size(); ++i) {
      int64_t total = 0;
      for (NodeId c = doc.node(up_nodes[i]).first_child; c != kNullNode;
           c = doc.node(c).next_sibling) {
        if (doc.node(c).tag == child_tag) {
          total += count_by_node[static_cast<size_t>(c)];
        }
      }
      up_counts[i] = total;
    }
    nodes = std::move(up_nodes);
    counts = std::move(up_counts);
  }
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  return total;
}

LazyPathTrieIterator::LazyPathTrieIterator(const PathRelation* relation)
    : relation_(relation) {}

void LazyPathTrieIterator::FixGroup() {
  Frame& f = frames_[static_cast<size_t>(depth_)];
  if (f.pos >= f.entries.size()) {
    f.group_end = f.pos;
    return;
  }
  int64_t value = f.entries[f.pos].value;
  size_t e = f.pos + 1;
  while (e < f.entries.size() && f.entries[e].value == value) ++e;
  f.group_end = e;
}

void LazyPathTrieIterator::Open() {
  XJ_DCHECK(depth_ + 1 < relation_->arity());
  Frame next;
  const NodeIndex& index = relation_->index();
  if (depth_ < 0) {
    int32_t tag = relation_->tags()[0];
    if (tag >= 0) next.entries = index.ValueSortedNodes(tag);
  } else {
    const Frame& parent = frames_[static_cast<size_t>(depth_)];
    XJ_DCHECK(parent.pos < parent.group_end);
    int32_t tag = relation_->tags()[static_cast<size_t>(depth_) + 1];
    if (tag >= 0) {
      const XmlDocument& doc = index.doc();
      for (size_t i = parent.pos; i < parent.group_end; ++i) {
        NodeId parent_node = parent.entries[i].node;
        for (NodeId c = doc.node(parent_node).first_child; c != kNullNode;
             c = doc.node(c).next_sibling) {
          if (doc.node(c).tag == tag) {
            next.entries.push_back(ValueNode{index.ValueOf(c), c});
          }
        }
      }
      std::sort(next.entries.begin(), next.entries.end(),
                [](const ValueNode& a, const ValueNode& b) {
                  if (a.value != b.value) return a.value < b.value;
                  return a.node < b.node;
                });
    }
  }
  ++depth_;
  frames_.push_back(std::move(next));
  FixGroup();
}

void LazyPathTrieIterator::Up() {
  XJ_DCHECK(depth_ >= 0);
  frames_.pop_back();
  --depth_;
}

bool LazyPathTrieIterator::AtEnd() const {
  XJ_DCHECK(depth_ >= 0);
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  return f.pos >= f.entries.size();
}

int64_t LazyPathTrieIterator::Key() const {
  XJ_DCHECK(!AtEnd());
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  return f.entries[f.pos].value;
}

void LazyPathTrieIterator::Next() {
  XJ_DCHECK(!AtEnd());
  Frame& f = frames_[static_cast<size_t>(depth_)];
  f.pos = f.group_end;
  FixGroup();
}

void LazyPathTrieIterator::Seek(int64_t key) {
  XJ_DCHECK(!AtEnd());
  Frame& f = frames_[static_cast<size_t>(depth_)];
  auto cmp = [](const ValueNode& a, int64_t v) { return a.value < v; };
  // Gallop from the cursor to bracket the target (leapfrog seeks are
  // usually near), then binary search inside the bracket.
  size_t base = f.pos;
  size_t step = 1;
  const size_t n = f.entries.size();
  while (base + step < n && f.entries[base + step].value < key) {
    base += step;
    step <<= 1;
  }
  size_t search_hi = std::min(base + step, n);
  f.pos = static_cast<size_t>(
      std::lower_bound(f.entries.begin() + static_cast<ptrdiff_t>(base),
                       f.entries.begin() + static_cast<ptrdiff_t>(search_hi),
                       key, cmp) -
      f.entries.begin());
  FixGroup();
}

int64_t LazyPathTrieIterator::EstimateKeys() const {
  XJ_DCHECK(depth_ >= 0);
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  return static_cast<int64_t>(f.entries.size() - f.pos);
}

std::unique_ptr<TrieIterator> LazyPathTrieIterator::Clone() const {
  return std::make_unique<LazyPathTrieIterator>(relation_);
}

}  // namespace xjoin
