// The attribute-at-a-time worst-case-optimal join engine (Algorithm 1's
// expansion loop). Generic Join / Leapfrog Triejoin over any mix of
// TrieIterator implementations: materialized relational tries and lazy
// XML path tries join through the same interface, which is what lets
// XJoin "expand attributes by satisfying common values and relations
// from all databases at the same time".
#ifndef XJOIN_CORE_GENERIC_JOIN_H_
#define XJOIN_CORE_GENERIC_JOIN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "relational/relation.h"
#include "relational/trie_iterator.h"

namespace xjoin {

/// One join participant: a trie whose level order must equal the global
/// attribute order restricted to its attributes.
struct JoinInput {
  std::string name;                     ///< for diagnostics and metrics
  std::vector<std::string> attributes;  ///< trie level order
  TrieIterator* iterator = nullptr;     ///< positioned at the root
};

/// Called after each attribute binding with the bound prefix (values of
/// attribute_order[0..depth]). Returning false prunes the subtree — used
/// by XJoin's partial structural validation.
using PrefixFilter =
    std::function<bool(size_t depth, const std::vector<int64_t>& prefix)>;

/// Engine options.
struct GenericJoinOptions {
  /// Global expansion order (the paper's PA). Every attribute of every
  /// input must appear exactly once.
  std::vector<std::string> attribute_order;
  /// Optional pruning hook (may be empty).
  PrefixFilter prefix_filter;
  /// Optional counters (nullable): per level "gj.level<i>.bindings" plus
  /// "gj.max_intermediate", "gj.total_intermediate", "gj.seeks",
  /// "gj.output".
  Metrics* metrics = nullptr;
};

/// Runs the join and returns all result tuples over attribute_order.
/// Fails when an attribute is covered by no input or an input's attribute
/// order is inconsistent with the global order.
Result<Relation> GenericJoin(const std::vector<JoinInput>& inputs,
                             const GenericJoinOptions& options);

/// Leapfrog intersection step over iterators positioned at the same
/// level: advances them to their next common key. Returns false when the
/// intersection is exhausted. On true, every iterator is positioned at
/// the common key. `seeks` (nullable) accumulates Seek/Next calls.
/// Exposed for testing and for the micro-benchmarks.
bool LeapfrogAlign(const std::vector<TrieIterator*>& iters, int64_t* seeks);

/// After a match, advances the intersection past the current key.
/// Returns false when exhausted.
bool LeapfrogAdvance(const std::vector<TrieIterator*>& iters, int64_t* seeks);

}  // namespace xjoin

#endif  // XJOIN_CORE_GENERIC_JOIN_H_
