// The attribute-at-a-time worst-case-optimal join engine (Algorithm 1's
// expansion loop). Generic Join / Leapfrog Triejoin over any mix of
// TrieIterator implementations: materialized relational tries and lazy
// XML path tries join through the same interface, which is what lets
// XJoin "expand attributes by satisfying common values and relations
// from all databases at the same time".
//
// Execution model: the expansion loop runs as an iterative explicit-stack
// walk (one LevelState per attribute, no recursion), optionally sharded —
// the first attribute's key domain is partitioned into K contiguous
// ranges, every input is Clone()d per shard, and shards run on a thread
// pool with zero shared mutable state. Shard outputs are concatenated in
// shard order, which makes the sharded result byte-identical to the
// serial one.
#ifndef XJOIN_CORE_GENERIC_JOIN_H_
#define XJOIN_CORE_GENERIC_JOIN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/executor.h"
#include "common/metrics.h"
#include "common/status.h"
#include "relational/relation.h"
#include "relational/result_batch.h"
#include "relational/trie_iterator.h"

namespace xjoin {

/// One join participant: a trie whose level order must equal the global
/// attribute order restricted to its attributes.
struct JoinInput {
  std::string name;                     ///< for diagnostics and metrics
  std::vector<std::string> attributes;  ///< trie level order
  TrieIterator* iterator = nullptr;     ///< positioned at the root
};

/// Called after each attribute binding. `prefix` is the engine's binding
/// buffer: it always has length attribute_order.size(), and exactly the
/// entries prefix[0..depth] (values of attribute_order[0..depth]) are
/// valid for this call — entries past `depth` are stale and must be
/// ignored. Returning false prunes the subtree — used by XJoin's partial
/// structural validation.
///
/// `metrics` is the engine's shard-local counter bag (options.metrics in
/// a serial run, a private per-shard bag in a sharded one, merged into
/// options.metrics at the join barrier; nullptr when the caller passed
/// no metrics). Filters record their own counters through it, which
/// keeps them exact — not silently dropped — in parallel runs.
///
/// When the join runs sharded (num_threads/num_shards > 1), the filter is
/// invoked concurrently from multiple shard threads (each with its own
/// prefix buffer and metrics bag) and must otherwise be thread-safe.
using PrefixFilter = std::function<bool(
    size_t depth, const std::vector<int64_t>& prefix, Metrics* metrics)>;

/// Engine options.
struct GenericJoinOptions {
  /// Global expansion order (the paper's PA). Every attribute of every
  /// input must appear exactly once.
  std::vector<std::string> attribute_order;
  /// Optional pruning hook (may be empty). Must be thread-safe when the
  /// join runs with more than one shard.
  PrefixFilter prefix_filter;
  /// Number of worker threads. <= 1 runs the serial executor; > 1 runs
  /// the sharded driver (see num_shards) on up to this many threads.
  int num_threads = 1;
  /// Number of prefix-range shards. 0 means "= num_threads". Values
  /// > 1 force the sharded driver even when num_threads == 1 (useful for
  /// deterministic testing of the shard partitioning itself). Shards
  /// normally cover contiguous ranges of the level-0 intersection keys;
  /// when that domain has fewer than half the requested shard count
  /// (and the order has >= 2 attributes), the driver shards on the
  /// level-0 x level-1 composite prefix instead, so small leading
  /// domains no longer degenerate to ~1 shard. The effective shard
  /// count is capped by the size of the chosen prefix domain.
  int num_shards = 0;
  /// Shard partitioning depth hint, normally set from an XJoinPlan's
  /// shard plan. 0 = decide at run time from the actual level-0
  /// intersection (the rule above); 1 = always shard on level-0 key
  /// ranges; 2 = shard on the level-0 x level-1 composite prefix (falls
  /// back to level-0 / serial when the order has < 2 attributes or the
  /// pair domain has <= 1 element). Results are byte-identical for
  /// every setting.
  int shard_depth = 0;
  /// Result-batch capacity in rows. > 0 (the default) runs
  /// block-at-a-time execution: when every input is a plain CSR
  /// RelationTrie the whole expansion runs over the raw level arrays
  /// with runtime-dispatched SIMD intersection kernels (SSE4.2/AVX2
  /// galloping lower-bound, see relational/intersect_kernels.h);
  /// otherwise block-at-a-time applies at the deepest level — bulk
  /// TrieIterator::NextBlock drains when one input covers the level,
  /// the dispatched kernel when every participant exposes a raw span,
  /// the scalar leapfrog otherwise. Results stage in a columnar
  /// ResultBatch of this many rows, flushed via
  /// Relation::AppendColumnBlock. 0 opts out: the legacy scalar path,
  /// one virtual Key/Next/Seek round per binding and one
  /// Relation::AppendRow per result row. Results are byte-identical and
  /// every "gj.*" counter (bindings, seeks, total_intermediate, output)
  /// is identical to the scalar path at any batch size and SIMD
  /// dispatch level, serial or sharded.
  int batch_size = kDefaultResultBatchCapacity;
  /// Optional per-query admission budget shared by every shard
  /// (nullable). The engine charges each materialized output row
  /// (rows x 8*arity bytes) against it, samples the deadline every few
  /// thousand bindings, and aborts all shards as soon as any ceiling is
  /// crossed — GenericJoin then returns the tracker's typed Status
  /// (kResourceExhausted / kDeadlineExceeded) and discards partial
  /// rows. With no budget (or an unlimited one) results and counters
  /// are bit-identical to a budget-free run.
  BudgetTracker* budget = nullptr;
  /// Optional cooperative cancellation token (nullable). Attached to the
  /// budget tracker (a private one is used when `budget` is null) as a
  /// cancel source, so every shard's per-binding violation poll also
  /// observes Cancel() from any thread and the join returns the token's
  /// typed kCancelled Status within one budget-check interval per
  /// shard, discarding partial rows. Per-call service, never part of a
  /// plan fingerprint.
  const CancellationToken* cancel = nullptr;
  /// Executor pool for the sharded driver (nullable; null = the shared
  /// Executor::Default() pool). Per-call service, never part of a plan
  /// fingerprint.
  Executor* executor = nullptr;
  /// Optional counters (nullable): per level "gj.level<i>.bindings" plus
  /// "gj.max_intermediate", "gj.total_intermediate", "gj.seeks",
  /// "gj.output". Sharded runs additionally record "gj.shards" (effective
  /// shard count), "gj.shard_depth" (1 = level-0 ranges, 2 = composite
  /// prefixes), and "gj.plan_seeks" (seeks spent enumerating the shard
  /// partitioning domain). With level-0 sharding the binding counters
  /// are exact sums over shards and equal the serial counts; composite
  /// sharding may recount a level-0 binding once per shard that splits
  /// its children (at most num_shards extra), while output and
  /// deeper-level counters stay exact.
  Metrics* metrics = nullptr;
};

/// Runs the join and returns all result tuples over attribute_order.
/// Fails when an attribute is covered by no input or an input's attribute
/// order is inconsistent with the global order. The sharded path
/// (num_threads/num_shards > 1) produces a Relation byte-identical to the
/// serial path: shards cover contiguous ascending ranges of the first
/// attribute's matching keys and are concatenated in shard order.
Result<Relation> GenericJoin(const std::vector<JoinInput>& inputs,
                             const GenericJoinOptions& options);

/// Leapfrog intersection step over iterators positioned at the same
/// level: advances them to their next common key. Returns false when the
/// intersection is exhausted. On true, every iterator is positioned at
/// the common key. `seeks` (nullable) accumulates Seek/Next calls.
/// Exposed for testing and for the micro-benchmarks.
bool LeapfrogAlign(const std::vector<TrieIterator*>& iters, int64_t* seeks);

/// After a match, advances the intersection past the current key.
/// Returns false when exhausted.
bool LeapfrogAdvance(const std::vector<TrieIterator*>& iters, int64_t* seeks);

}  // namespace xjoin

#endif  // XJOIN_CORE_GENERIC_JOIN_H_
