#include "core/bound.h"

#include <algorithm>

#include "core/decompose.h"
#include "core/virtual_relation.h"

namespace xjoin {

Result<Hypergraph> BuildQueryHypergraph(const MultiModelQuery& query,
                                        const BoundOptions& options) {
  XJ_RETURN_NOT_OK(ValidateQuery(query));
  Hypergraph graph;
  for (const auto& nr : query.relations) {
    HyperEdge edge;
    edge.name = nr.name;
    edge.attributes = nr.relation->schema().attributes();
    edge.size =
        options.path_size_mode == PathSizeMode::kUniform
            ? options.uniform_n
            : std::max<double>(
                  1.0, static_cast<double>(nr.relation->num_rows()));
    XJ_RETURN_NOT_OK(graph.AddEdge(std::move(edge)));
  }
  for (size_t t = 0; t < query.twigs.size(); ++t) {
    const TwigInput& ti = query.twigs[t];
    XJ_ASSIGN_OR_RETURN(TwigDecomposition d, DecomposeTwig(ti.twig));
    for (size_t p = 0; p < d.paths.size(); ++p) {
      XJ_ASSIGN_OR_RETURN(PathRelation rel,
                          PathRelation::Make(ti.twig, d.paths[p], ti.index));
      HyperEdge edge;
      edge.name = "twig" + std::to_string(t + 1) + ".P" + std::to_string(p + 1);
      edge.attributes = d.paths[p].attributes;
      switch (options.path_size_mode) {
        case PathSizeMode::kExact: {
          XJ_ASSIGN_OR_RETURN(Relation mat, rel.Materialize());
          edge.size =
              std::max<double>(1.0, static_cast<double>(mat.num_rows()));
          break;
        }
        case PathSizeMode::kChainCount:
          edge.size =
              std::max<double>(1.0, static_cast<double>(rel.CountChains()));
          break;
        case PathSizeMode::kUniform:
          edge.size = options.uniform_n;
          break;
      }
      XJ_RETURN_NOT_OK(graph.AddEdge(std::move(edge)));
    }
  }
  return graph;
}

Result<MultiModelBound> ComputeBound(const MultiModelQuery& query,
                                     const BoundOptions& options) {
  MultiModelBound bound;
  XJ_ASSIGN_OR_RETURN(bound.hypergraph, BuildQueryHypergraph(query, options));
  XJ_ASSIGN_OR_RETURN(bound.cover, SolveFractionalEdgeCover(bound.hypergraph));
  if (query.output_attributes.empty()) {
    bound.log2_output_bound = bound.cover.log2_bound;
  } else {
    XJ_ASSIGN_OR_RETURN(
        bound.log2_output_bound,
        Log2BoundForSubset(bound.hypergraph, query.output_attributes));
  }
  return bound;
}

}  // namespace xjoin
