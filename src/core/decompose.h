// Twig decomposition (paper Section 3, Figure 2): cut every A-D edge,
// split the twig into P-C-only sub-twigs, and enumerate each sub-twig's
// root-to-leaf paths. Every path becomes one relational-like schema; the
// cut A-D edges become residual structural constraints enforced by
// validation (core/validate.h).
#ifndef XJOIN_CORE_DECOMPOSE_H_
#define XJOIN_CORE_DECOMPOSE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "xml/twig.h"

namespace xjoin {

/// One root-leaf path of a P-C sub-twig (paper Section 3 step (3): each
/// such path becomes a relational-like schema / one hyperedge of
/// Equation 1's program).
struct TwigPath {
  std::vector<TwigNodeId> nodes;       ///< root of sub-twig first
  std::vector<std::string> attributes; ///< parallel attribute names
};

/// The decomposition of one twig (paper Figure 2: the example twig
/// splits into P1(A,B), P2(A,D), P3(C,E), P4(F,H), P5(G)).
struct TwigDecomposition {
  std::vector<TwigPath> paths;
  /// The A-D edges removed in step (1): (ancestor node, descendant node).
  /// These become the residual structural constraints re-checked by
  /// core/validate.h after expansion.
  std::vector<std::pair<TwigNodeId, TwigNodeId>> cut_edges;
  /// For each twig node, the sub-twig root it belongs to.
  std::vector<TwigNodeId> subtwig_root_of;
};

/// Decomposes `twig` (paper Section 3 steps (1)-(3)): cut every A-D
/// edge, split into P-C-only sub-twigs, enumerate each sub-twig's
/// root-leaf paths. O(nodes + total path length) — linear in the twig
/// except for twigs whose sub-trees branch heavily (a node on k paths is
/// emitted k times). Fails only on invalid twigs.
Result<TwigDecomposition> DecomposeTwig(const Twig& twig);

/// Rendering like "P1(A, B)  P2(A, D)  [cut: A//C]" (matches how the
/// paper writes Figure 2's decomposition).
std::string DecompositionToString(const Twig& twig, const TwigDecomposition& d);

}  // namespace xjoin

#endif  // XJOIN_CORE_DECOMPOSE_H_
