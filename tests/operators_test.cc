#include <gtest/gtest.h>

#include "common/random.h"
#include "relational/operators.h"
#include "tests/test_util.h"

namespace xjoin {
namespace {

Relation MakeRel(const std::vector<std::string>& attrs,
                 std::vector<Tuple> tuples) {
  auto s = Schema::Make(attrs);
  auto r = Relation::FromTuples(*s, std::move(tuples));
  return *std::move(r);
}

TEST(ProjectTest, DropsColumnsAndDedups) {
  Relation r = MakeRel({"A", "B"}, {{1, 10}, {1, 20}, {2, 10}});
  auto p = Project(r, {"A"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_rows(), 2u);
  EXPECT_TRUE(p->ContainsRow({1}));
  EXPECT_TRUE(p->ContainsRow({2}));
}

TEST(ProjectTest, Reorders) {
  Relation r = MakeRel({"A", "B"}, {{1, 10}});
  auto p = Project(r, {"B", "A"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->GetRow(0), (Tuple{10, 1}));
}

TEST(ProjectTest, UnknownAttributeFails) {
  Relation r = MakeRel({"A"}, {{1}});
  EXPECT_FALSE(Project(r, {"Z"}).ok());
}

TEST(SelectTest, FiltersByPredicate) {
  Relation r = MakeRel({"A", "B"}, {{1, 10}, {2, 20}, {3, 30}});
  Relation out = Select(r, [](const Tuple& t) { return t[0] >= 2; });
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST(HashJoinTest, NaturalJoinOnSharedAttribute) {
  Relation r = MakeRel({"A", "B"}, {{1, 10}, {2, 20}});
  Relation s = MakeRel({"B", "C"}, {{10, 100}, {10, 101}, {30, 300}});
  auto j = HashJoin(r, s);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->schema().attributes(),
            (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_EQ(j->num_rows(), 2u);
  EXPECT_TRUE(j->ContainsRow({1, 10, 100}));
  EXPECT_TRUE(j->ContainsRow({1, 10, 101}));
}

TEST(HashJoinTest, NoSharedAttributesIsCrossProduct) {
  Relation r = MakeRel({"A"}, {{1}, {2}});
  Relation s = MakeRel({"B"}, {{10}, {20}, {30}});
  auto j = HashJoin(r, s);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 6u);
}

TEST(HashJoinTest, MultiAttributeKey) {
  Relation r = MakeRel({"A", "B"}, {{1, 2}, {1, 3}});
  Relation s = MakeRel({"A", "B", "C"}, {{1, 2, 7}, {1, 9, 8}});
  auto j = HashJoin(r, s);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 1u);
  EXPECT_TRUE(j->ContainsRow({1, 2, 7}));
}

TEST(HashJoinTest, MetricsRecorded) {
  Relation r = MakeRel({"A"}, {{1}});
  Relation s = MakeRel({"A"}, {{1}});
  Metrics m;
  auto j = HashJoin(r, s, &m);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(m.Get("hash_join.output"), 1);
  EXPECT_EQ(m.Get("hash_join.probe_matches"), 1);
}

TEST(JoinAllTest, TracksIntermediates) {
  Relation r = MakeRel({"A", "B"}, {{1, 1}, {1, 2}, {2, 1}});
  Relation s = MakeRel({"B", "C"}, {{1, 1}, {1, 2}});
  Relation t = MakeRel({"C", "A"}, {{1, 1}});
  Metrics m;
  auto j = JoinAll({&r, &s, &t}, &m);
  ASSERT_TRUE(j.ok());
  EXPECT_GT(m.Get("plan.max_intermediate"), 0);
  EXPECT_GE(m.Get("plan.total_intermediate"), m.Get("plan.max_intermediate"));
  // Triangle-ish check: result must satisfy all three relations.
  for (size_t i = 0; i < j->num_rows(); ++i) {
    Tuple row = j->GetRow(i);  // schema A,B,C
    EXPECT_TRUE(r.ContainsRow({row[0], row[1]}));
    EXPECT_TRUE(s.ContainsRow({row[1], row[2]}));
    EXPECT_TRUE(t.ContainsRow({row[2], row[0]}));
  }
}

TEST(JoinAllTest, EmptyInputFails) {
  EXPECT_FALSE(JoinAll({}).ok());
}

TEST(SemiJoinTest, KeepsMatchingRows) {
  Relation r = MakeRel({"A", "B"}, {{1, 10}, {2, 20}});
  Relation s = MakeRel({"B"}, {{10}});
  auto out = SemiJoin(r, s);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 1u);
  EXPECT_TRUE(out->ContainsRow({1, 10}));
}

TEST(SemiJoinTest, DisjointSchemas) {
  Relation r = MakeRel({"A"}, {{1}});
  Relation s_nonempty = MakeRel({"B"}, {{5}});
  Relation s_empty = MakeRel({"B"}, {});
  EXPECT_EQ(SemiJoin(r, s_nonempty)->num_rows(), 1u);
  EXPECT_EQ(SemiJoin(r, s_empty)->num_rows(), 0u);
}

TEST(RelationsEqualAsSetsTest, OrderAndDuplicatesIgnored) {
  Relation a = MakeRel({"A"}, {{1}, {2}, {1}});
  Relation b = MakeRel({"A"}, {{2}, {1}});
  Relation c = MakeRel({"A"}, {{2}, {3}});
  EXPECT_TRUE(RelationsEqualAsSets(a, b));
  EXPECT_FALSE(RelationsEqualAsSets(a, c));
  Relation d = MakeRel({"B"}, {{1}, {2}});
  EXPECT_FALSE(RelationsEqualAsSets(a, d));  // schema differs
}

// Property: HashJoin of two random relations equals the brute-force
// natural join.
class HashJoinProperty : public ::testing::TestWithParam<int> {};

TEST_P(HashJoinProperty, MatchesNaiveJoin) {
  Rng rng(2000 + static_cast<uint64_t>(GetParam()));
  Dictionary dict;
  // Random overlapping schemas out of a pool of 4 attribute names.
  std::vector<std::string> pool = {"A", "B", "C", "D"};
  auto pick_schema = [&]() {
    std::vector<std::string> attrs;
    for (const auto& a : pool) {
      if (rng.NextBernoulli(0.6)) attrs.push_back(a);
    }
    if (attrs.empty()) attrs.push_back("A");
    return attrs;
  };
  Relation r = testing::RandomRelation(&rng, &dict, pick_schema(),
                                       rng.NextBounded(30), 4);
  Relation s = testing::RandomRelation(&rng, &dict, pick_schema(),
                                       rng.NextBounded(30), 4);
  auto fast = HashJoin(r, s);
  ASSERT_TRUE(fast.ok());
  Relation slow = testing::NaiveNaturalJoin({&r, &s});
  // Schemas may order attributes differently; project both to the fast
  // schema's order.
  auto slow_proj = Project(slow, fast->schema().attributes());
  ASSERT_TRUE(slow_proj.ok());
  Relation fast_copy = *fast;
  fast_copy.SortAndDedup();
  EXPECT_TRUE(RelationsEqualAsSets(fast_copy, *slow_proj));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, HashJoinProperty,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace xjoin
