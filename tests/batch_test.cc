// Batched execution equivalence: with batch_size > 0 the engine runs
// block-at-a-time (bulk NextBlock drains, the devirtualized CSR
// last-level kernel, columnar ResultBatch materialization) and must be
// indistinguishable from the scalar path — byte-identical result
// relations and identical "gj." / "validate." / "xjoin." counters — on
// every workload, at every batch size, at every thread count. Also
// covers the ResultBatch / Relation::AppendColumnBlock substrate
// directly.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/simd.h"
#include "core/generic_join.h"
#include "core/xjoin.h"
#include "relational/intersect_kernels.h"
#include "relational/result_batch.h"
#include "relational/trie.h"
#include "tests/test_util.h"
#include "workload/adversarial.h"
#include "workload/paper_example.h"
#include "workload/xmark.h"

namespace xjoin {
namespace {

const std::vector<int> kBatchSizes = {1, 7, 1024};
const std::vector<int> kThreadCounts = {1, 4};

// The deterministic counter families that must match exactly between
// scalar and batched runs. Timing counters (plan.prepare_micros,
// trie.build_micros) are excluded by construction.
std::map<std::string, int64_t> DeterministicCounters(const Metrics& m) {
  std::map<std::string, int64_t> out;
  for (const auto& [name, value] : m.counters()) {
    if (name.rfind("gj.", 0) == 0 || name.rfind("validate.", 0) == 0 ||
        name.rfind("xjoin.", 0) == 0) {
      out[name] = value;
    }
  }
  return out;
}

void ExpectByteIdentical(const Relation& scalar, const Relation& batched) {
  ASSERT_EQ(scalar.schema().attributes(), batched.schema().attributes());
  ASSERT_EQ(scalar.num_rows(), batched.num_rows());
  EXPECT_EQ(scalar.ToTuples(), batched.ToTuples());
}

// --- substrate: ResultBatch and AppendColumnBlock ------------------------

TEST(ResultBatchTest, FlushPreservesRowOrderAndClears) {
  auto schema = Schema::Make({"A", "B"});
  Relation out(*schema);
  ResultBatch batch(2, 3);
  EXPECT_TRUE(batch.empty());
  batch.PushRow({1, 10});
  batch.PushRow({2, 20});
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FALSE(batch.full());
  batch.PushRow({3, 30});
  EXPECT_TRUE(batch.full());
  batch.Flush(&out);
  EXPECT_TRUE(batch.empty());
  batch.PushRow({4, 40});
  batch.Flush(&out);
  batch.Flush(&out);  // empty flush is a no-op
  EXPECT_EQ(out.ToTuples(),
            (std::vector<Tuple>{{1, 10}, {2, 20}, {3, 30}, {4, 40}}));
}

TEST(ResultBatchTest, PushRunBroadcastsPrefixColumns) {
  auto schema = Schema::Make({"A", "B", "C"});
  Relation out(*schema);
  ResultBatch batch(3, 8);
  std::vector<int64_t> prefix = {7, 8, 999};  // last entry unused
  std::vector<int64_t> keys = {1, 2, 5};
  batch.PushRun(prefix, keys.data(), keys.size());
  batch.Flush(&out);
  EXPECT_EQ(out.ToTuples(),
            (std::vector<Tuple>{{7, 8, 1}, {7, 8, 2}, {7, 8, 5}}));
}

TEST(RelationTest, AppendColumnBlockMatchesAppendRow) {
  auto schema = Schema::Make({"A", "B"});
  Relation by_row(*schema);
  Relation by_block(*schema);
  by_block.Reserve(4);
  std::vector<int64_t> a = {1, 2, 3, 4};
  std::vector<int64_t> b = {9, 8, 7, 6};
  for (size_t i = 0; i < a.size(); ++i) by_row.AppendRow({a[i], b[i]});
  const int64_t* cols[] = {a.data(), b.data()};
  by_block.AppendColumnBlock(cols, 2);
  by_block.AppendColumnBlock(&cols[0], 0);  // empty block is a no-op
  const int64_t* rest[] = {a.data() + 2, b.data() + 2};
  by_block.AppendColumnBlock(rest, 2);
  EXPECT_EQ(by_row.ToTuples(), by_block.ToTuples());
}

// --- engine level: GenericJoin over relation tries -----------------------

// Triangle join R(A,B) x S(B,C) x T(A,C): the deepest level has two CSR
// participants, so batch_size > 0 engages the devirtualized raw-cursor
// kernel.
struct TriangleFixture {
  std::optional<RelationTrie> tr, ts, tt;
  std::unique_ptr<TrieIterator> ir, is, it;

  explicit TriangleFixture(int n) {
    auto mk = [](std::vector<Tuple> t, std::vector<std::string> attrs) {
      auto s = Schema::Make(attrs);
      return *Relation::FromTuples(*s, std::move(t));
    };
    std::vector<Tuple> r_rows, s_rows, t_rows;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if ((i * 7 + j * 3) % 5 == 0) r_rows.push_back({i, j});
        if ((i * 5 + j * 2) % 4 == 0) s_rows.push_back({i, j});
        if ((i * 3 + j * 11) % 6 == 0) t_rows.push_back({i, j});
      }
    }
    tr = *RelationTrie::Build(mk(r_rows, {"A", "B"}), {"A", "B"});
    ts = *RelationTrie::Build(mk(s_rows, {"B", "C"}), {"B", "C"});
    tt = *RelationTrie::Build(mk(t_rows, {"A", "C"}), {"A", "C"});
    ir = tr->NewIterator();
    is = ts->NewIterator();
    it = tt->NewIterator();
  }

  std::vector<JoinInput> Inputs() {
    return {{"R", {"A", "B"}, ir.get()},
            {"S", {"B", "C"}, is.get()},
            {"T", {"A", "C"}, it.get()}};
  }
};

TEST(BatchedGenericJoinTest, TriangleMatchesScalarAtEveryBatchAndThread) {
  TriangleFixture fx(20);
  GenericJoinOptions scalar_opts;
  scalar_opts.attribute_order = {"A", "B", "C"};
  scalar_opts.batch_size = 0;  // batching defaults on; baseline opts out
  Metrics scalar_m;
  scalar_opts.metrics = &scalar_m;
  auto scalar = GenericJoin(fx.Inputs(), scalar_opts);
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  ASSERT_GT(scalar->num_rows(), 0u);

  for (int batch : kBatchSizes) {
    for (int threads : kThreadCounts) {
      GenericJoinOptions opts;
      opts.attribute_order = {"A", "B", "C"};
      opts.batch_size = batch;
      opts.num_threads = threads;
      Metrics m;
      opts.metrics = &m;
      auto batched = GenericJoin(fx.Inputs(), opts);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();
      SCOPED_TRACE("batch=" + std::to_string(batch) +
                   " threads=" + std::to_string(threads));
      ExpectByteIdentical(*scalar, *batched);
      if (threads == 1) {
        // Serial: every counter matches the scalar serial run exactly
        // (sharded runs additionally report gj.shards etc.).
        EXPECT_EQ(DeterministicCounters(m), DeterministicCounters(scalar_m));
      } else {
        // Sharded: compare against the scalar run at the same thread
        // count below; here the row-level counters still match.
        EXPECT_EQ(m.Get("gj.output"), scalar_m.Get("gj.output"));
        EXPECT_EQ(m.Get("gj.total_intermediate"),
                  scalar_m.Get("gj.total_intermediate"));
      }
    }
  }
}

TEST(BatchedGenericJoinTest, ShardedCountersMatchScalarSharded) {
  TriangleFixture fx(20);
  for (int threads : kThreadCounts) {
    for (int shards : {3, 16}) {
      GenericJoinOptions opts;
      opts.attribute_order = {"A", "B", "C"};
      opts.num_threads = threads;
      opts.num_shards = shards;
      opts.batch_size = 0;
      Metrics scalar_m;
      opts.metrics = &scalar_m;
      auto scalar = GenericJoin(fx.Inputs(), opts);
      ASSERT_TRUE(scalar.ok());
      for (int batch : kBatchSizes) {
        GenericJoinOptions bopts = opts;
        bopts.batch_size = batch;
        Metrics m;
        bopts.metrics = &m;
        auto batched = GenericJoin(fx.Inputs(), bopts);
        ASSERT_TRUE(batched.ok());
        SCOPED_TRACE("batch=" + std::to_string(batch) +
                     " threads=" + std::to_string(threads) +
                     " shards=" + std::to_string(shards));
        ExpectByteIdentical(*scalar, *batched);
        EXPECT_EQ(DeterministicCounters(m), DeterministicCounters(scalar_m));
      }
    }
  }
}

// Composite (level-0 x level-1) sharding cuts and re-enters the deepest
// level mid-range; the batched kernel must respect both bounds.
TEST(BatchedGenericJoinTest, CompositeShardingMatchesScalar) {
  auto mk = [](std::vector<Tuple> t, std::vector<std::string> attrs) {
    auto s = Schema::Make(attrs);
    return *Relation::FromTuples(*s, std::move(t));
  };
  std::vector<Tuple> r_rows, s_rows, t_rows;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 40; ++b) {
      if ((a * 7 + b) % 3 != 0) r_rows.push_back({a, b});
    }
  }
  for (int b = 0; b < 40; ++b) {
    for (int c = 0; c < 6; ++c) {
      if ((b + c) % 2 == 0) s_rows.push_back({b, c});
    }
  }
  for (int a = 0; a < 2; ++a) {
    for (int c = 0; c < 6; ++c) t_rows.push_back({a, c});
  }
  auto tr = RelationTrie::Build(mk(r_rows, {"A", "B"}), {"A", "B"});
  auto ts = RelationTrie::Build(mk(s_rows, {"B", "C"}), {"B", "C"});
  auto tt = RelationTrie::Build(mk(t_rows, {"A", "C"}), {"A", "C"});
  auto ir = tr->NewIterator();
  auto is = ts->NewIterator();
  auto it = tt->NewIterator();
  std::vector<JoinInput> inputs{{"R", {"A", "B"}, ir.get()},
                                {"S", {"B", "C"}, is.get()},
                                {"T", {"A", "C"}, it.get()}};

  GenericJoinOptions base;
  base.attribute_order = {"A", "B", "C"};
  base.num_threads = 4;
  base.num_shards = 8;
  base.shard_depth = 2;
  base.batch_size = 0;
  Metrics scalar_m;
  base.metrics = &scalar_m;
  auto scalar = GenericJoin(inputs, base);
  ASSERT_TRUE(scalar.ok());
  ASSERT_EQ(scalar_m.Get("gj.shard_depth"), 2);

  for (int batch : kBatchSizes) {
    GenericJoinOptions opts = base;
    opts.batch_size = batch;
    Metrics m;
    opts.metrics = &m;
    auto batched = GenericJoin(inputs, opts);
    ASSERT_TRUE(batched.ok());
    SCOPED_TRACE("batch=" + std::to_string(batch));
    ExpectByteIdentical(*scalar, *batched);
    EXPECT_EQ(DeterministicCounters(m), DeterministicCounters(scalar_m));
  }
}

// Two-relation join R(A,B) x S(B,C): attribute C is covered by S alone,
// so the deepest level takes the single-participant NextBlock drain —
// the pure block-copy kernel.
TEST(BatchedGenericJoinTest, SingleParticipantDeepestLevelDrain) {
  auto mk = [](std::vector<Tuple> t, std::vector<std::string> attrs) {
    auto s = Schema::Make(attrs);
    return *Relation::FromTuples(*s, std::move(t));
  };
  std::vector<Tuple> r_rows, s_rows;
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 30; ++j) {
      if ((i + j) % 3 == 0) r_rows.push_back({i, j});
      if ((i * 2 + j) % 4 != 0) s_rows.push_back({i, j});
    }
  }
  auto tr = RelationTrie::Build(mk(r_rows, {"A", "B"}), {"A", "B"});
  auto ts = RelationTrie::Build(mk(s_rows, {"B", "C"}), {"B", "C"});

  GenericJoinOptions scalar_opts;
  scalar_opts.attribute_order = {"A", "B", "C"};
  scalar_opts.batch_size = 0;
  Metrics scalar_m;
  scalar_opts.metrics = &scalar_m;
  auto ir = tr->NewIterator();
  auto is = ts->NewIterator();
  std::vector<JoinInput> inputs{{"R", {"A", "B"}, ir.get()},
                                {"S", {"B", "C"}, is.get()}};
  auto scalar = GenericJoin(inputs, scalar_opts);
  ASSERT_TRUE(scalar.ok());
  ASSERT_GT(scalar->num_rows(), 1000u);

  for (int batch : kBatchSizes) {
    for (int threads : kThreadCounts) {
      GenericJoinOptions opts;
      opts.attribute_order = {"A", "B", "C"};
      opts.batch_size = batch;
      opts.num_threads = threads;
      Metrics m;
      opts.metrics = &m;
      auto batched = GenericJoin(inputs, opts);
      ASSERT_TRUE(batched.ok());
      SCOPED_TRACE("batch=" + std::to_string(batch) +
                   " threads=" + std::to_string(threads));
      ExpectByteIdentical(*scalar, *batched);
      if (threads == 1) {
        EXPECT_EQ(DeterministicCounters(m), DeterministicCounters(scalar_m));
      }
    }
  }
}

// Pins the SIMD dispatch override for a scope, restoring on exit.
class DispatchOverrideGuard {
 public:
  explicit DispatchOverrideGuard(SimdLevel level) {
    SetSimdDispatchOverride(level);
  }
  ~DispatchOverrideGuard() { ClearSimdDispatchOverride(); }
};

// The same join must produce byte-identical rows and identical
// deterministic counters at every compiled SIMD dispatch level — the
// kernels only accelerate each seek's interior search, never change the
// jump sequence — across the batch-size and thread matrices.
TEST(BatchedGenericJoinTest, DispatchMatrixMatchesForcedScalar) {
  TriangleFixture fx(20);
  GenericJoinOptions scalar_opts;
  scalar_opts.attribute_order = {"A", "B", "C"};
  scalar_opts.batch_size = 0;
  Metrics scalar_m;
  scalar_opts.metrics = &scalar_m;
  auto scalar = GenericJoin(fx.Inputs(), scalar_opts);
  ASSERT_TRUE(scalar.ok());
  ASSERT_GT(scalar->num_rows(), 0u);

  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
    if (IntersectKernelFor(level) == nullptr) continue;  // not compiled in
    if (level > DetectedSimdLevel()) continue;           // not runnable here
    DispatchOverrideGuard guard(level);
    for (int batch : kBatchSizes) {
      for (int threads : kThreadCounts) {
        GenericJoinOptions opts;
        opts.attribute_order = {"A", "B", "C"};
        opts.batch_size = batch;
        opts.num_threads = threads;
        Metrics m;
        opts.metrics = &m;
        auto batched = GenericJoin(fx.Inputs(), opts);
        ASSERT_TRUE(batched.ok());
        SCOPED_TRACE(std::string("level=") + SimdLevelName(level) +
                     " batch=" + std::to_string(batch) +
                     " threads=" + std::to_string(threads));
        ExpectByteIdentical(*scalar, *batched);
        if (threads == 1) {
          EXPECT_EQ(DeterministicCounters(m), DeterministicCounters(scalar_m));
        } else {
          EXPECT_EQ(m.Get("gj.output"), scalar_m.Get("gj.output"));
          EXPECT_EQ(m.Get("gj.total_intermediate"),
                    scalar_m.Get("gj.total_intermediate"));
        }
      }
    }
  }
}

// --- XJoin level: paper, adversarial, and XMark workloads ----------------

// Runs `query` scalar and batched across the batch/thread matrix and
// demands byte-identical relations plus identical deterministic
// counters (per thread count — sharded runs add gj.shards et al., so
// scalar and batched are compared at matching thread counts).
void ExpectBatchedXJoinMatchesScalar(const MultiModelQuery& query,
                                     XJoinOptions base) {
  for (int threads : kThreadCounts) {
    XJoinOptions scalar_opts = base;
    scalar_opts.num_threads = threads;
    scalar_opts.batch_size = 0;
    Metrics scalar_m;
    scalar_opts.metrics = &scalar_m;
    auto scalar = ExecuteXJoin(query, scalar_opts);
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();

    for (int batch : kBatchSizes) {
      XJoinOptions opts = base;
      opts.num_threads = threads;
      opts.batch_size = batch;
      Metrics m;
      opts.metrics = &m;
      auto batched = ExecuteXJoin(query, opts);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      ExpectByteIdentical(*scalar, *batched);
      EXPECT_EQ(DeterministicCounters(m), DeterministicCounters(scalar_m));
    }
  }
}

TEST(BatchedXJoinTest, PaperExampleWorkloads) {
  for (PaperSchema schema :
       {PaperSchema::kExample33, PaperSchema::kExample34}) {
    for (PaperDataMode mode :
         {PaperDataMode::kAdversarial, PaperDataMode::kRandom}) {
      PaperInstance inst = MakePaperInstance(5, schema, mode);
      ExpectBatchedXJoinMatchesScalar(inst.Query(), XJoinOptions{});
    }
  }
}

TEST(BatchedXJoinTest, PaperExampleWithPruningAndMaterializedPaths) {
  PaperInstance inst = MakePaperInstance(5, PaperSchema::kExample34,
                                         PaperDataMode::kRandom);
  MultiModelQuery q = inst.Query();
  // structural_pruning exercises the per-binding filter inside every
  // batched kernel; materialize_paths turns all inputs into CSR tries,
  // exercising the devirtualized path end to end.
  XJoinOptions pruning;
  pruning.structural_pruning = true;
  ExpectBatchedXJoinMatchesScalar(q, pruning);
  XJoinOptions materialized;
  materialized.materialize_paths = true;
  ExpectBatchedXJoinMatchesScalar(q, materialized);
}

TEST(BatchedXJoinTest, AdversarialAgmTightWorkload) {
  auto inst = MakeAgmTightInstance({{"A", "B"}, {"B", "C"}, {"C", "A"}}, 64);
  ASSERT_TRUE(inst.ok());
  MultiModelQuery q;
  for (size_t i = 0; i < inst->relations.size(); ++i) {
    q.relations.push_back(
        {"R" + std::to_string(i + 1), inst->relations[i].get()});
  }
  ExpectBatchedXJoinMatchesScalar(q, XJoinOptions{});
}

TEST(BatchedXJoinTest, XMarkWorkloads) {
  XMarkOptions opts;
  opts.num_items = 40;
  opts.num_persons = 25;
  opts.num_open_auctions = 30;
  opts.num_closed_auctions = 25;
  XMarkInstance inst = MakeXMark(opts);
  for (MultiModelQuery q :
       {inst.ClosedAuctionQuery(), inst.OpenAuctionQuery()}) {
    ExpectBatchedXJoinMatchesScalar(q, XJoinOptions{});
  }
}

}  // namespace
}  // namespace xjoin
