# Invoked by ctest as build_system_test:
#   cmake -DTESTS_DIR=<repo>/tests -DREGISTERED=a_test.cc,b_test.cc,... \
#         -P check_tests_registered.cmake
# Fails when a tests/*_test.cc exists on disk but is absent from the
# XJOIN_TEST_SOURCES list in tests/CMakeLists.txt.
cmake_minimum_required(VERSION 3.16)

if(NOT DEFINED TESTS_DIR OR NOT DEFINED REGISTERED)
  message(FATAL_ERROR "TESTS_DIR and REGISTERED must be defined")
endif()

string(REPLACE "," ";" registered_list "${REGISTERED}")
file(GLOB on_disk RELATIVE "${TESTS_DIR}" "${TESTS_DIR}/*_test.cc")

set(missing "")
foreach(src IN LISTS on_disk)
  if(NOT src IN_LIST registered_list)
    list(APPEND missing ${src})
  endif()
endforeach()

set(stale "")
foreach(src IN LISTS registered_list)
  if(NOT src IN_LIST on_disk)
    list(APPEND stale ${src})
  endif()
endforeach()

if(missing)
  message(FATAL_ERROR
    "tests present on disk but not registered with ctest "
    "(add them to XJOIN_TEST_SOURCES in tests/CMakeLists.txt): ${missing}")
endif()
if(stale)
  message(FATAL_ERROR
    "tests registered in tests/CMakeLists.txt but missing on disk: ${stale}")
endif()

list(LENGTH on_disk n)
message(STATUS "all ${n} tests/*_test.cc files are registered with ctest")
