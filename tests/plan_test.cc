// Plan lifecycle (Prepare -> Pin -> Execute): cached-plan reuse is
// byte-identical to cold execution and skips order selection, shard
// planning, and all trie builds; UpdateRelation / document mutation
// invalidate dependent plans and path tries; the options fingerprint
// separates num_threads / structural_pruning variants; the byte-budget
// LRU bounds the trie cache; and the per-twig validation sub-counters
// stay exact in parallel runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/string_util.h"
#include "core/database.h"
#include "core/xjoin.h"

namespace xjoin {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.RegisterRelationCsv("R",
                                        "A,B\n"
                                        "1,x\n"
                                        "1,y\n"
                                        "2,x\n")
                    .ok());
    ASSERT_TRUE(db_.RegisterRelationCsv("S",
                                        "B,C\n"
                                        "x,7\n"
                                        "y,8\n")
                    .ok());
    ASSERT_TRUE(db_.RegisterDocumentXml("doc", R"(
        <items><item><B>x</B><D>5</D></item>
               <item><B>y</B><D>6</D></item></items>)")
                    .ok());
  }

  MultiModelDatabase db_;
  const std::string q_ = "Q(*) := R, S, doc : item[B]/D";
};

TEST(CanonicalizeQueryTextTest, NormalizesSpellingSafely) {
  EXPECT_EQ(CanonicalizeQueryText("Q(*) := R , S"),
            CanonicalizeQueryText("Q(*):=R,S"));
  EXPECT_EQ(CanonicalizeQueryText("  Q(a, b) := R,\n d : x[y]/z  "),
            CanonicalizeQueryText("Q(a,b):=R,d:x[y]/z"));
  // Whitespace inside identifiers is collapsed, not deleted: distinct
  // names cannot alias.
  EXPECT_NE(CanonicalizeQueryText("a b"), CanonicalizeQueryText("ab"));
  EXPECT_EQ(CanonicalizeQueryText("a  \t b"), "a b");
}

TEST_F(PlanTest, CachedPlanReuseIsByteIdenticalToColdExecution) {
  Metrics cold_metrics;
  XJoinOptions cold;
  cold.metrics = &cold_metrics;
  auto first = db_.QueryXJoin(q_, cold);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(cold_metrics.Get("db.plan_cache.misses"), 1);
  EXPECT_EQ(cold_metrics.Get("plan.prepared"), 1);

  auto second = db_.QueryXJoin(q_, XJoinOptions{});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->ToTuples(), second->ToTuples());

  // A plan-free execution over the same parsed query agrees byte for
  // byte (no database caches involved at all).
  auto prepared = db_.Prepare(q_);
  ASSERT_TRUE(prepared.ok());
  auto bare = ExecuteXJoin(prepared->query(), XJoinOptions{});
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(first->ToTuples(), bare->ToTuples());
}

TEST_F(PlanTest, PlanCacheHitSkipsPlanningAndTrieWork) {
  ASSERT_TRUE(db_.QueryXJoin(q_, XJoinOptions{}).ok());
  ASSERT_EQ(db_.PlanCacheSize(), 1u);

  Metrics warm;
  XJoinOptions options;
  options.metrics = &warm;
  ASSERT_TRUE(db_.QueryXJoin(q_, options).ok());
  // The hit skips order selection + shard planning (no prepare ran),
  // every trie build, and does not even consult the trie cache — the
  // plan replays its pinned handles.
  EXPECT_EQ(warm.Get("db.plan_cache.hits"), 1);
  EXPECT_EQ(warm.Get("db.plan_cache.misses"), 0);
  EXPECT_EQ(warm.Get("plan.prepared"), 0);
  EXPECT_EQ(warm.Get("trie.builds"), 0);
  EXPECT_EQ(warm.Get("db.trie_cache.hits"), 0);
  EXPECT_EQ(warm.Get("db.trie_cache.misses"), 0);
  // The join itself still ran.
  EXPECT_GT(warm.Get("gj.total_intermediate"), 0);
}

TEST_F(PlanTest, SpellingVariantsShareOnePlan) {
  ASSERT_TRUE(db_.QueryXJoin("Q(*) := R, S", XJoinOptions{}).ok());
  ASSERT_TRUE(db_.QueryXJoin("Q(*):=R,  S", XJoinOptions{}).ok());
  EXPECT_EQ(db_.PlanCacheSize(), 1u);
  EXPECT_EQ(db_.plan_cache_hits(), 1);
}

TEST_F(PlanTest, OptionsFingerprintSeparatesVariants) {
  XJoinOptions serial;
  ASSERT_TRUE(db_.QueryXJoin(q_, serial).ok());
  XJoinOptions threaded;
  threaded.num_threads = 2;
  ASSERT_TRUE(db_.QueryXJoin(q_, threaded).ok());
  XJoinOptions pruning;
  pruning.structural_pruning = true;
  ASSERT_TRUE(db_.QueryXJoin(q_, pruning).ok());
  // Batch size is on by default, so the scalar opt-out is the variant
  // that must fingerprint separately.
  XJoinOptions scalar;
  scalar.batch_size = 0;
  ASSERT_TRUE(db_.QueryXJoin(q_, scalar).ok());
  EXPECT_EQ(db_.PlanCacheSize(), 4u);
  EXPECT_EQ(db_.plan_cache_hits(), 0);
  EXPECT_EQ(db_.plan_cache_misses(), 4);
  // Re-running each variant hits its own entry.
  ASSERT_TRUE(db_.QueryXJoin(q_, threaded).ok());
  ASSERT_TRUE(db_.QueryXJoin(q_, scalar).ok());
  EXPECT_EQ(db_.plan_cache_hits(), 2);
  EXPECT_EQ(db_.PlanCacheSize(), 4u);
}

TEST_F(PlanTest, ExplainShowsExecutionMode) {
  // Batched execution is the default (block = kDefaultResultBatchCapacity)
  // and renders the live SIMD dispatch level plus a per-level kernel;
  // batch_size = 0 opts back into the legacy scalar mode.
  auto default_text = db_.ExplainXJoin(q_);
  ASSERT_TRUE(default_text.ok());
  EXPECT_NE(default_text->find(
                "execution: batched (columnar, block=" +
                std::to_string(kDefaultResultBatchCapacity)),
            std::string::npos);
  EXPECT_NE(default_text->find("simd dispatch: "), std::string::npos);
  EXPECT_NE(default_text->find("kernel "), std::string::npos);
  XJoinOptions scalar;
  scalar.batch_size = 0;
  auto scalar_text = db_.ExplainXJoin(q_, scalar);
  ASSERT_TRUE(scalar_text.ok());
  EXPECT_NE(scalar_text->find("execution: scalar"), std::string::npos);
  EXPECT_NE(scalar_text->find("kernel scalar"), std::string::npos);
  EXPECT_EQ(scalar_text->find("simd dispatch: "), std::string::npos);
  XJoinOptions batched;
  batched.batch_size = 512;
  auto batched_text = db_.ExplainXJoin(q_, batched);
  ASSERT_TRUE(batched_text.ok());
  EXPECT_NE(batched_text->find("execution: batched (columnar, block=512"),
            std::string::npos);
}

TEST_F(PlanTest, UpdateRelationInvalidatesDependentPlans) {
  ASSERT_TRUE(db_.QueryXJoin(q_, XJoinOptions{}).ok());
  ASSERT_TRUE(db_.QueryXJoin("Q(*) := S", XJoinOptions{}).ok());
  EXPECT_EQ(db_.PlanCacheSize(), 2u);
  EXPECT_EQ(*db_.relation_version("R"), 0u);

  Relation replacement = **db_.relation("R");
  Tuple extra = {db_.mutable_dictionary()->Intern("2"),
                 db_.mutable_dictionary()->Intern("y")};
  replacement.AppendRow(extra);
  ASSERT_TRUE(db_.UpdateRelation("R", std::move(replacement)).ok());

  // Version bump observed; only the plan reading R was dropped.
  EXPECT_EQ(*db_.relation_version("R"), 1u);
  EXPECT_EQ(db_.PlanCacheSize(), 1u);
  EXPECT_EQ(db_.plan_cache_invalidations(), 1);

  // The re-prepared plan sees the new contents.
  auto result = db_.QueryXJoin("Q(A, B, C) := R, S", XJoinOptions{});
  ASSERT_TRUE(result.ok());
  const Dictionary& dict = db_.dictionary();
  EXPECT_TRUE(result->ContainsRow(
      {dict.Lookup("2"), dict.Lookup("y"), dict.Lookup("8")}));
}

TEST_F(PlanTest, DocumentMutationInvalidatesPlansAndPathTries) {
  XJoinOptions mat;
  mat.materialize_paths = true;
  ASSERT_TRUE(db_.QueryXJoin(q_, mat).ok());
  // 2 relation tries + 2 materialized path tries (item/B, item/D).
  EXPECT_EQ(db_.TrieCacheSize(), 4u);
  EXPECT_EQ(*db_.document_version("doc"), 0u);
  EXPECT_EQ(db_.PlanCacheSize(), 1u);

  ASSERT_TRUE(db_.UpdateDocumentXml("doc", R"(
      <items><item><B>x</B><D>5</D></item>
             <item><B>y</B><D>6</D></item>
             <item><B>y</B><D>7</D></item></items>)")
                  .ok());
  // Version bump observed; the document's path tries and the dependent
  // plan are gone, the relation tries stay.
  EXPECT_EQ(*db_.document_version("doc"), 1u);
  EXPECT_EQ(db_.TrieCacheSize(), 2u);
  EXPECT_EQ(db_.PlanCacheSize(), 0u);
  EXPECT_GE(db_.plan_cache_invalidations(), 1);

  auto result = db_.QueryXJoin("Q(D) := R, S, doc : item[B]/D", mat);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ContainsRow({db_.dictionary().Lookup("7")}));
  // The new document's path tries were cached under the new version.
  EXPECT_EQ(db_.TrieCacheSize(), 4u);

  // Updating an unregistered document fails.
  EXPECT_FALSE(db_.UpdateDocumentXml("nope", "<a/>").ok());
}

TEST_F(PlanTest, RepeatedMaterializedPathQueriesHitThePathTrieCache) {
  XJoinOptions mat;
  mat.materialize_paths = true;
  ASSERT_TRUE(db_.QueryXJoin(q_, mat).ok());
  int64_t misses = db_.trie_cache_misses();
  EXPECT_EQ(misses, 4);  // 2 relations + 2 paths

  // Re-planning the same text pins all four tries from the cache.
  db_.ClearPlanCache();
  Metrics metrics;
  mat.metrics = &metrics;
  ASSERT_TRUE(db_.QueryXJoin(q_, mat).ok());
  EXPECT_EQ(db_.trie_cache_misses(), misses);
  EXPECT_EQ(metrics.Get("db.trie_cache.hits"), 4);
}

TEST_F(PlanTest, ByteBudgetLruEvictsLeastRecentlyUsed) {
  EXPECT_EQ(db_.trie_cache_budget(), size_t{256} << 20);  // default 256 MiB
  ASSERT_TRUE(db_.QueryXJoin("Q(*) := R, S", XJoinOptions{}).ok());
  EXPECT_EQ(db_.TrieCacheSize(), 2u);
  EXPECT_GT(db_.trie_cache_bytes(), 0u);

  // Shrinking the budget below the current footprint evicts from the
  // LRU tail immediately.
  db_.SetTrieCacheBudget(1);
  EXPECT_EQ(db_.TrieCacheSize(), 0u);
  EXPECT_EQ(db_.trie_cache_bytes(), 0u);
  EXPECT_EQ(db_.trie_cache_evictions(), 2);

  // Oversize tries are served uncached; queries still work.
  db_.ClearPlanCache();
  Metrics metrics;
  XJoinOptions options;
  options.metrics = &metrics;
  auto result = db_.QueryXJoin("Q(*) := R, S", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(db_.TrieCacheSize(), 0u);
  EXPECT_EQ(metrics.Get("db.trie_cache.misses"), 2);
}

TEST_F(PlanTest, PlanCacheCapacityBoundsThePins) {
  // Each cached plan pins its tries past trie-cache eviction, so the
  // plan cache itself is LRU-capped.
  EXPECT_EQ(db_.plan_cache_capacity(), 256u);
  db_.SetPlanCacheCapacity(1);
  ASSERT_TRUE(db_.QueryXJoin("Q(*) := R, S", XJoinOptions{}).ok());
  ASSERT_TRUE(db_.QueryXJoin("Q(*) := R", XJoinOptions{}).ok());
  EXPECT_EQ(db_.PlanCacheSize(), 1u);
  EXPECT_EQ(db_.plan_cache_evictions(), 1);

  // The resident plan hits; the evicted text re-prepares.
  ASSERT_TRUE(db_.QueryXJoin("Q(*) := R", XJoinOptions{}).ok());
  EXPECT_EQ(db_.plan_cache_hits(), 1);
  ASSERT_TRUE(db_.QueryXJoin("Q(*) := R, S", XJoinOptions{}).ok());
  EXPECT_EQ(db_.plan_cache_misses(), 3);

  // Capacity 0 disables plan caching entirely.
  db_.SetPlanCacheCapacity(0);
  EXPECT_EQ(db_.PlanCacheSize(), 0u);
  ASSERT_TRUE(db_.QueryXJoin("Q(*) := R", XJoinOptions{}).ok());
  EXPECT_EQ(db_.PlanCacheSize(), 0u);
}

TEST_F(PlanTest, ParallelValidationCountersAreExact) {
  // Wide level-0 domain (30 items) so the shard plan stays at depth 1,
  // where binding and filter counts match the serial run exactly.
  std::string xml = "<items>";
  std::string csv = "B,E\n";
  for (int i = 0; i < 30; ++i) {
    xml += "<item><B>b" + std::to_string(i) + "</B><D>d" + std::to_string(i) +
           "</D></item>";
    if (i % 2 == 0) csv += "b" + std::to_string(i) + ",e\n";
  }
  xml += "</items>";
  ASSERT_TRUE(db_.RegisterDocumentXml("wide", xml).ok());
  ASSERT_TRUE(db_.RegisterRelationCsv("T", csv).ok());
  const std::string query = "Q(*) := T, wide : item[B]/D";

  Metrics serial;
  XJoinOptions serial_options;
  serial_options.structural_pruning = true;
  serial_options.metrics = &serial;
  auto serial_result = db_.QueryXJoin(query, serial_options);
  ASSERT_TRUE(serial_result.ok());

  Metrics parallel;
  XJoinOptions parallel_options;
  parallel_options.structural_pruning = true;
  parallel_options.num_threads = 4;
  parallel_options.metrics = &parallel;
  auto parallel_result = db_.QueryXJoin(query, parallel_options);
  ASSERT_TRUE(parallel_result.ok());

  EXPECT_EQ(serial_result->ToTuples(), parallel_result->ToTuples());
  // Before the per-shard Metrics merge these were silently skipped with
  // num_threads > 1; now they must match the serial run exactly.
  EXPECT_GT(serial.Get("validate.candidates"), 0);
  EXPECT_EQ(serial.Get("validate.candidates"),
            parallel.Get("validate.candidates"));
  EXPECT_EQ(serial.Get("xjoin.pruned"), parallel.Get("xjoin.pruned"));
  EXPECT_EQ(serial.Get("xjoin.expanded"), parallel.Get("xjoin.expanded"));
  EXPECT_EQ(serial.Get("xjoin.validated"), parallel.Get("xjoin.validated"));
}

TEST_F(PlanTest, AdaptiveShardPlanGoesCompositeOnSmallLevel0Domains) {
  // R has 2 distinct A values but 3 (A, B) pairs; requesting 4 shards
  // must shard on the composite prefix (depth 2), decided at prepare
  // time from the domain estimates.
  Metrics metrics;
  XJoinOptions sharded;
  sharded.num_shards = 4;
  sharded.metrics = &metrics;
  sharded.attribute_order = {"A", "B", "C"};
  auto sharded_result = db_.QueryXJoin("Q(*) := R, S", sharded);
  ASSERT_TRUE(sharded_result.ok());
  EXPECT_EQ(metrics.Get("gj.shard_depth"), 2);
  EXPECT_GE(metrics.Get("gj.shards"), 2);

  XJoinOptions serial;
  serial.attribute_order = {"A", "B", "C"};
  auto serial_result = db_.QueryXJoin("Q(*) := R, S", serial);
  ASSERT_TRUE(serial_result.ok());
  EXPECT_EQ(serial_result->ToTuples(), sharded_result->ToTuples());
}

TEST_F(PlanTest, ExplainXJoinRendersThePlanAndCacheCounters) {
  auto text = db_.ExplainXJoin(q_);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("query:"), std::string::npos);
  EXPECT_NE(text->find("relation R(A, B)"), std::string::npos);
  EXPECT_NE(text->find("transform(Sx)"), std::string::npos);
  EXPECT_NE(text->find("expansion order"), std::string::npos);
  EXPECT_NE(text->find("lead"), std::string::npos);
  EXPECT_NE(text->find("shard plan:"), std::string::npos);
  EXPECT_NE(text->find("worst-case size bound"), std::string::npos);
  EXPECT_NE(text->find("plan cache:"), std::string::npos);
  EXPECT_NE(text->find("trie cache:"), std::string::npos);
}

}  // namespace
}  // namespace xjoin
