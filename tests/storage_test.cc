#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"
#include "relational/storage.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xml/serialize.h"

namespace xjoin {
namespace {

TEST(BinaryCodecTest, VarintRoundTrip) {
  BinaryWriter w;
  std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1ULL << 40,
                                  ~0ULL};
  for (uint64_t v : values) w.PutVarint(v);
  BinaryReader r(w.buffer());
  for (uint64_t v : values) {
    auto got = r.GetVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryCodecTest, SignedVarintRoundTrip) {
  BinaryWriter w;
  std::vector<int64_t> values = {0, -1, 1, -64, 63, -1000000,
                                 INT64_MIN, INT64_MAX};
  for (int64_t v : values) w.PutSignedVarint(v);
  BinaryReader r(w.buffer());
  for (int64_t v : values) {
    auto got = r.GetSignedVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(BinaryCodecTest, TruncationDetected) {
  BinaryWriter w;
  w.PutVarint(1ULL << 40);
  w.PutString("hello");
  std::string data = w.TakeBuffer();
  for (size_t cut = 0; cut < data.size(); ++cut) {
    BinaryReader r(std::string_view(data).substr(0, cut));
    auto v = r.GetVarint();
    if (!v.ok()) continue;
    EXPECT_FALSE(r.GetString().ok()) << "cut=" << cut;
  }
}

TEST(StorageTest, DictionaryRoundTrip) {
  Dictionary dict;
  dict.Intern("alpha");
  dict.Intern("beta with spaces");
  dict.Intern("");  // empty string is a legal entry
  dict.Intern("\x1Fnode:3");
  std::string blob = SerializeDictionary(dict);
  auto loaded = DeserializeDictionary(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), dict.size());
  for (int64_t c = 0; c < dict.size(); ++c) {
    EXPECT_EQ(loaded->Decode(c), dict.Decode(c));
  }
}

TEST(StorageTest, RelationRoundTrip) {
  Rng rng(1);
  Dictionary dict;
  Relation rel = testing::RandomRelation(&rng, &dict, {"A", "B", "C"}, 200, 50);
  std::string blob = SerializeRelation(rel);
  auto loaded = DeserializeRelation(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), rel.num_rows());
  EXPECT_TRUE(loaded->schema() == rel.schema());
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    EXPECT_EQ(loaded->GetRow(r), rel.GetRow(r));
  }
}

TEST(StorageTest, EmptyRelationRoundTrip) {
  auto schema = Schema::Make({"A"});
  Relation rel(*schema);
  auto loaded = DeserializeRelation(SerializeRelation(rel));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 0u);
}

TEST(StorageTest, DocumentRoundTrip) {
  auto doc = ParseXml(
      "<site a=\"1\"><item><name>Tom &amp; Co</name></item>"
      "<item><name>Other</name><empty/></item></site>");
  ASSERT_TRUE(doc.ok());
  std::string blob = SerializeDocument(*doc);
  auto loaded = DeserializeDocument(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_nodes(), doc->num_nodes());
  for (size_t i = 0; i < doc->num_nodes(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    EXPECT_EQ(loaded->TagName(id), doc->TagName(id));
    EXPECT_EQ(loaded->node(id).text, doc->node(id).text);
    EXPECT_EQ(loaded->node(id).parent, doc->node(id).parent);
    EXPECT_EQ(loaded->node(id).subtree_end, doc->node(id).subtree_end);
    EXPECT_EQ(loaded->node(id).level, doc->node(id).level);
  }
  EXPECT_TRUE(loaded->Validate().ok());
}

TEST(StorageTest, WrongMagicRejected) {
  Dictionary dict;
  dict.Intern("x");
  std::string blob = SerializeDictionary(dict);
  EXPECT_FALSE(DeserializeRelation(blob).ok());
  EXPECT_FALSE(DeserializeDocument(blob).ok());
}

TEST(StorageTest, CorruptionDetected) {
  Rng rng(2);
  Dictionary dict;
  Relation rel = testing::RandomRelation(&rng, &dict, {"A", "B"}, 50, 10);
  std::string blob = SerializeRelation(rel);
  // Flip one payload byte (past the 6-byte header region).
  for (size_t pos : {size_t{8}, blob.size() / 2, blob.size() - 2}) {
    std::string corrupted = blob;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x5A);
    auto loaded = DeserializeRelation(corrupted);
    EXPECT_FALSE(loaded.ok()) << "flip at " << pos;
  }
  // Truncation.
  EXPECT_FALSE(DeserializeRelation(blob.substr(0, blob.size() / 2)).ok());
}

TEST(StorageTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/xjoin_storage_test.bin";
  Dictionary dict;
  dict.Intern("persisted");
  ASSERT_TRUE(WriteFileBytes(path, SerializeDictionary(dict)).ok());
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  auto loaded = DeserializeDictionary(*bytes);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Decode(0), "persisted");
  std::remove(path.c_str());
  EXPECT_FALSE(ReadFileBytes(path).ok());
}

// Property: random documents survive the binary round trip.
class DocumentStorageProperty : public ::testing::TestWithParam<int> {};

TEST_P(DocumentStorageProperty, RoundTripPreservesEverything) {
  Rng rng(60000 + static_cast<uint64_t>(GetParam()));
  auto doc = testing::RandomDocument(&rng, 2 + rng.NextBounded(60),
                                     {"a", "b", "c", "d"}, 6);
  auto loaded = DeserializeDocument(SerializeDocument(*doc));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_nodes(), doc->num_nodes());
  // Round trip again through the XML serializer for good measure.
  EXPECT_EQ(WriteXml(*loaded), WriteXml(*doc));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DocumentStorageProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace xjoin
