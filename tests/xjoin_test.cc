// End-to-end tests of XJoin and the baseline: differential equivalence,
// the paper's example instances, and the Lemma 3.5 optimality property
// (per-stage intermediates within the LP bound).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "core/baseline.h"
#include "core/bound.h"
#include "core/xjoin.h"
#include "relational/operators.h"
#include "tests/test_util.h"
#include "twigjoin/naive_twig.h"
#include "workload/adversarial.h"
#include "workload/bookstore.h"
#include "workload/paper_example.h"
#include "workload/xmark.h"
#include "xml/parser.h"

namespace xjoin {
namespace {

// Reference evaluator: naive twig matches -> value tuples, then naive
// natural join with the relations, then projection.
Relation ReferenceAnswer(const MultiModelQuery& query) {
  std::vector<Relation> twig_values;
  for (const auto& ti : query.twigs) {
    auto schema = Schema::Make(ti.twig.attributes());
    Relation values(*schema);
    for (const auto& m : MatchTwigNaive(ti.index->doc(), ti.twig)) {
      Tuple row(m.size());
      for (size_t i = 0; i < m.size(); ++i) row[i] = ti.index->ValueOf(m[i]);
      values.AppendRow(row);
    }
    values.SortAndDedup();
    twig_values.push_back(std::move(values));
  }
  std::vector<const Relation*> inputs;
  for (const auto& nr : query.relations) inputs.push_back(nr.relation);
  for (const auto& tv : twig_values) inputs.push_back(&tv);
  Relation joined = testing::NaiveNaturalJoin(inputs);
  if (query.output_attributes.empty()) return joined;
  return *Project(joined, query.output_attributes);
}

void ExpectSameAnswer(const MultiModelQuery& query, const XJoinOptions& opts) {
  auto fast = ExecuteXJoin(query, opts);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  Relation expected = ReferenceAnswer(query);
  auto fast_proj = Project(*fast, expected.schema().attributes());
  ASSERT_TRUE(fast_proj.ok());
  EXPECT_TRUE(RelationsEqualAsSets(*fast_proj, expected))
      << "XJoin diverged from reference\nXJoin:\n"
      << fast_proj->ToString() << "\nreference:\n"
      << expected.ToString();
}

TEST(XJoinTest, Figure1BookstoreExample) {
  // The exact Figure 1 data.
  auto doc = ParseXml(R"(
    <invoices>
      <invoice><orderID>10963</orderID>
        <orderLine><ISBN>978-3-16-1</ISBN><price>30</price>
                   <discount>0.1</discount></orderLine>
      </invoice>
      <invoice><orderID>20134</orderID>
        <orderLine><ISBN>634-3-12-2</ISBN><price>20</price>
                   <discount>0.3</discount></orderLine>
      </invoice>
    </invoices>)");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);

  auto schema = Schema::Make({"orderID", "userID"});
  Relation orders(*schema);
  orders.AppendRow({dict.Intern("10963"), dict.Intern("jack")});
  orders.AppendRow({dict.Intern("20134"), dict.Intern("tom")});
  orders.AppendRow({dict.Intern("35768"), dict.Intern("bob")});

  MultiModelQuery q;
  q.relations.push_back({"R", &orders});
  auto twig = Twig::Parse("invoice[orderID]/orderLine[ISBN]/price");
  ASSERT_TRUE(twig.ok());
  q.twigs.push_back(TwigInput{*std::move(twig), &index});
  q.output_attributes = {"userID", "ISBN", "price"};

  auto result = ExecuteXJoin(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_TRUE(result->ContainsRow(
      {dict.Lookup("jack"), dict.Lookup("978-3-16-1"), dict.Lookup("30")}));
  EXPECT_TRUE(result->ContainsRow(
      {dict.Lookup("tom"), dict.Lookup("634-3-12-2"), dict.Lookup("20")}));
}

TEST(XJoinTest, PaperAdversarialInstanceHasNResults) {
  for (int64_t n : {1, 2, 5, 8}) {
    PaperInstance inst = MakePaperInstance(n, PaperSchema::kExample34,
                                           PaperDataMode::kAdversarial);
    MultiModelQuery q = inst.Query();
    auto result = ExecuteXJoin(q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->num_rows(), static_cast<size_t>(n)) << "n=" << n;
  }
}

TEST(XJoinTest, PaperInstanceTwigAloneHasN5Embeddings) {
  const int64_t n = 3;
  PaperInstance inst = MakePaperInstance(n, PaperSchema::kExample34,
                                         PaperDataMode::kAdversarial);
  auto matches = MatchTwigNaive(*inst.doc, inst.twig);
  EXPECT_EQ(matches.size(), static_cast<size_t>(n * n * n * n * n));
}

TEST(XJoinTest, AgreesWithBaselineOnPaperInstances) {
  for (PaperSchema schema :
       {PaperSchema::kExample33, PaperSchema::kExample34}) {
    for (PaperDataMode mode :
         {PaperDataMode::kAdversarial, PaperDataMode::kRandom}) {
      PaperInstance inst = MakePaperInstance(4, schema, mode);
      MultiModelQuery q = inst.Query();
      auto a = ExecuteXJoin(q);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      auto b = ExecuteBaseline(q);
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      auto b_proj = Project(*b, a->schema().attributes());
      ASSERT_TRUE(b_proj.ok());
      EXPECT_TRUE(RelationsEqualAsSets(*a, *b_proj));
    }
  }
}

TEST(XJoinTest, MaterializedPathsGiveSameAnswer) {
  PaperInstance inst = MakePaperInstance(4, PaperSchema::kExample34,
                                         PaperDataMode::kAdversarial);
  MultiModelQuery q = inst.Query();
  auto lazy = ExecuteXJoin(q);
  XJoinOptions mat_opts;
  mat_opts.materialize_paths = true;
  auto mat = ExecuteXJoin(q, mat_opts);
  ASSERT_TRUE(lazy.ok() && mat.ok());
  EXPECT_TRUE(RelationsEqualAsSets(*lazy, *mat));
}

TEST(XJoinTest, StructuralPruningGivesSameAnswerWithFewerExpansions) {
  PaperInstance inst = MakePaperInstance(5, PaperSchema::kExample34,
                                         PaperDataMode::kRandom);
  MultiModelQuery q = inst.Query();
  Metrics plain_m, pruned_m;
  XJoinOptions plain;
  plain.metrics = &plain_m;
  XJoinOptions pruned;
  pruned.structural_pruning = true;
  pruned.metrics = &pruned_m;
  auto a = ExecuteXJoin(q, plain);
  auto b = ExecuteXJoin(q, pruned);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(RelationsEqualAsSets(*a, *b));
  EXPECT_LE(pruned_m.Get("xjoin.expanded"), plain_m.Get("xjoin.expanded"));
}

TEST(XJoinTest, ExplicitAttributeOrderHonored) {
  PaperInstance inst = MakePaperInstance(3, PaperSchema::kExample34,
                                         PaperDataMode::kAdversarial);
  MultiModelQuery q = inst.Query();
  XJoinOptions opts;
  opts.attribute_order = {"A", "D", "B", "C", "E", "F", "G", "H"};
  auto result = ExecuteXJoin(q, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 3u);

  opts.attribute_order = {"B", "A", "D", "C", "E", "F", "G", "H"};
  EXPECT_FALSE(ExecuteXJoin(q, opts).ok());  // violates precedence
}

TEST(XJoinTest, RelationalOnlyQueryWorks) {
  // No twigs at all: XJoin degenerates to a pure WCOJ.
  auto inst = MakeAgmTightInstance({{"A", "B"}, {"B", "C"}, {"C", "A"}}, 16);
  ASSERT_TRUE(inst.ok());
  MultiModelQuery q;
  for (size_t i = 0; i < inst->relations.size(); ++i) {
    q.relations.push_back(
        {"R" + std::to_string(i + 1), inst->relations[i].get()});
  }
  auto result = ExecuteXJoin(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(static_cast<double>(result->num_rows()),
              inst->expected_join_size, 1e-9);
}

TEST(XJoinTest, TwigOnlyQueryWorks) {
  auto doc = ParseXml("<r><a>1<b>x</b></a><a>2<b>y</b></a></r>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  MultiModelQuery q;
  auto twig = Twig::Parse("a/b");
  q.twigs.push_back(TwigInput{*std::move(twig), &index});
  auto result = ExecuteXJoin(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST(XJoinTest, EmptyQueryRejected) {
  MultiModelQuery q;
  EXPECT_FALSE(ExecuteXJoin(q).ok());
  EXPECT_FALSE(ExecuteBaseline(q).ok());
}

TEST(XJoinTest, Lemma35IntermediatesWithinBound) {
  // Per-stage intermediate counts must stay within the AGM bound of the
  // whole query (the LP bound of Equation 1) on the adversarial
  // instance. (Each prefix's count is bounded by the full bound since
  // projections cannot exceed it.)
  const int64_t n = 6;
  PaperInstance inst = MakePaperInstance(n, PaperSchema::kExample34,
                                         PaperDataMode::kAdversarial);
  MultiModelQuery q = inst.Query();
  BoundOptions bopts;
  bopts.path_size_mode = PathSizeMode::kChainCount;
  auto bound = ComputeBound(q, bopts);
  ASSERT_TRUE(bound.ok());
  Metrics m;
  XJoinOptions opts;
  opts.metrics = &m;
  auto result = ExecuteXJoin(q, opts);
  ASSERT_TRUE(result.ok());
  double limit = std::exp2(bound->cover.log2_bound);
  for (size_t d = 0; d < 8; ++d) {
    int64_t count = m.Get("gj.level" + std::to_string(d) + ".bindings");
    EXPECT_LE(static_cast<double>(count), limit + 1e-6)
        << "stage " << d << " exceeded the worst-case bound";
  }
  // And the baseline's peak intermediate must blow past XJoin's on this
  // instance (the Figure 3 phenomenon).
  Metrics bm;
  BaselineOptions bl;
  bl.metrics = &bm;
  auto base = ExecuteBaseline(q, bl);
  ASSERT_TRUE(base.ok());
  EXPECT_GT(bm.Get("baseline.max_intermediate"),
            m.Get("xjoin.max_intermediate"));
}

TEST(XJoinTest, AgmTightInstanceSaturatesBound) {
  // Lemma 3.2: the generated instance's join size equals the bound.
  auto inst = MakeAgmTightInstance({{"A", "B"}, {"B", "C"}, {"C", "A"}}, 64);
  ASSERT_TRUE(inst.ok());
  MultiModelQuery q;
  for (size_t i = 0; i < inst->relations.size(); ++i) {
    q.relations.push_back(
        {"R" + std::to_string(i + 1), inst->relations[i].get()});
    EXPECT_LE(inst->relations[i]->num_rows(), 64u);
  }
  auto result = ExecuteXJoin(q);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(static_cast<double>(result->num_rows()),
              inst->expected_join_size, 1e-9);
  // 64^1.5 = 512 when domains split evenly.
  EXPECT_EQ(result->num_rows(), 512u);
}

TEST(BaselineTest, StrategiesAgree) {
  PaperInstance inst = MakePaperInstance(3, PaperSchema::kExample34,
                                         PaperDataMode::kRandom);
  MultiModelQuery q = inst.Query();
  BaselineOptions a, b, c, d;
  a.strategy = TwigMatchStrategy::kPathStack;
  b.strategy = TwigMatchStrategy::kStructuralPlan;
  c.strategy = TwigMatchStrategy::kNaive;
  d.strategy = TwigMatchStrategy::kTwigStack;
  auto ra = ExecuteBaseline(q, a);
  auto rb = ExecuteBaseline(q, b);
  auto rc = ExecuteBaseline(q, c);
  auto rd = ExecuteBaseline(q, d);
  ASSERT_TRUE(ra.ok() && rb.ok() && rc.ok() && rd.ok());
  auto pb = Project(*rb, ra->schema().attributes());
  auto pc = Project(*rc, ra->schema().attributes());
  auto pd = Project(*rd, ra->schema().attributes());
  EXPECT_TRUE(RelationsEqualAsSets(*ra, *pb));
  EXPECT_TRUE(RelationsEqualAsSets(*ra, *pc));
  EXPECT_TRUE(RelationsEqualAsSets(*ra, *pd));
}

TEST(WorkloadTest, XMarkQueriesAnswerAndAgree) {
  XMarkOptions opts;
  opts.num_items = 40;
  opts.num_persons = 25;
  opts.num_open_auctions = 30;
  opts.num_closed_auctions = 25;
  XMarkInstance inst = MakeXMark(opts);
  ASSERT_TRUE(inst.doc->Validate().ok());
  for (MultiModelQuery q :
       {inst.ClosedAuctionQuery(), inst.OpenAuctionQuery()}) {
    auto a = ExecuteXJoin(q);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    EXPECT_GT(a->num_rows(), 0u);
    auto b = ExecuteBaseline(q);
    ASSERT_TRUE(b.ok());
    auto bp = Project(*b, a->schema().attributes());
    EXPECT_TRUE(RelationsEqualAsSets(*a, *bp));
  }
}

TEST(WorkloadTest, BookstoreQueriesAnswerAndAgree) {
  BookstoreOptions opts;
  opts.num_orders = 80;
  opts.num_invoices = 60;
  opts.num_users = 20;
  opts.num_books = 30;
  BookstoreInstance inst = MakeBookstore(opts);
  ASSERT_TRUE(inst.doc->Validate().ok());
  for (MultiModelQuery q : {inst.Figure1Query(), inst.EnrichedQuery()}) {
    auto a = ExecuteXJoin(q);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    EXPECT_GT(a->num_rows(), 0u);
    auto b = ExecuteBaseline(q);
    ASSERT_TRUE(b.ok());
    auto bp = Project(*b, a->schema().attributes());
    EXPECT_TRUE(RelationsEqualAsSets(*a, *bp));
  }
}

// The heavyweight differential property: random document + random P-C/A-D
// twig + random relations over twig attributes; XJoin under several
// configurations must equal the brute-force reference.
struct DiffParam {
  int seed;
  bool materialize;
  bool pruning;
};

class XJoinDifferential : public ::testing::TestWithParam<DiffParam> {};

TEST_P(XJoinDifferential, MatchesReference) {
  DiffParam param = GetParam();
  Rng rng(20000 + static_cast<uint64_t>(param.seed));
  std::vector<std::string> tags = {"a", "b", "c"};
  auto doc = testing::RandomDocument(&rng, 2 + rng.NextBounded(25), tags, 3);
  auto dict = std::make_unique<Dictionary>();
  NodeIndex index = NodeIndex::Build(doc.get(), dict.get());
  Twig twig = testing::RandomTwig(&rng, 1 + rng.NextBounded(4), tags);

  // 0-2 relations over a random subset of twig attributes (+ maybe one
  // fresh attribute), values from the document's value pool.
  std::vector<std::string> twig_attrs = twig.attributes();
  size_t num_rels = rng.NextBounded(3);
  std::vector<Relation> rels;
  for (size_t i = 0; i < num_rels; ++i) {
    std::vector<std::string> attrs;
    for (const auto& a : twig_attrs) {
      if (rng.NextBernoulli(0.5)) attrs.push_back(a);
    }
    if (rng.NextBernoulli(0.3)) attrs.push_back("extra" + std::to_string(i));
    if (attrs.empty()) attrs.push_back(twig_attrs[0]);
    rels.push_back(testing::RandomRelation(&rng, dict.get(), attrs,
                                           3 + rng.NextBounded(15), 3));
  }

  MultiModelQuery q;
  for (size_t i = 0; i < rels.size(); ++i) {
    q.relations.push_back({"R" + std::to_string(i), &rels[i]});
  }
  q.twigs.push_back(TwigInput{twig, &index});

  XJoinOptions opts;
  opts.materialize_paths = param.materialize;
  opts.structural_pruning = param.pruning;
  ExpectSameAnswer(q, opts);
}

// Cross-twig joins: two random twigs over two random documents, the
// second twig's root attribute aliased to a shared name so the twigs
// value-join directly, plus an optional bridging relation.
class CrossTwigDifferential : public ::testing::TestWithParam<int> {};

TEST_P(CrossTwigDifferential, MatchesReference) {
  Rng rng(40000 + static_cast<uint64_t>(GetParam()));
  std::vector<std::string> tags = {"a", "b", "c"};
  auto doc1 = testing::RandomDocument(&rng, 2 + rng.NextBounded(20), tags, 3);
  auto doc2 = testing::RandomDocument(&rng, 2 + rng.NextBounded(20), tags, 3);
  auto dict = std::make_unique<Dictionary>();
  NodeIndex index1 = NodeIndex::Build(doc1.get(), dict.get());
  NodeIndex index2 = NodeIndex::Build(doc2.get(), dict.get());

  Twig twig1 = testing::RandomTwig(&rng, 1 + rng.NextBounded(3), tags);
  // Second twig: leaf attribute renamed to match one of twig1's
  // attributes, creating the cross-document join.
  TwigBuilder tb;
  std::string shared =
      twig1.attributes()[rng.NextBounded(twig1.num_nodes())];
  TwigNodeId root = tb.AddRoot(tags[rng.NextBounded(tags.size())], "p0");
  tb.AddChild(root,
              rng.NextBernoulli(0.4) ? TwigAxis::kDescendant : TwigAxis::kChild,
              tags[rng.NextBounded(tags.size())], shared);
  auto twig2 = tb.Finish();
  ASSERT_TRUE(twig2.ok());

  Relation bridge = testing::RandomRelation(
      &rng, dict.get(), {twig1.attributes()[0], "p0"}, 10, 3);

  MultiModelQuery q;
  q.relations.push_back({"bridge", &bridge});
  q.twigs.push_back(TwigInput{twig1, &index1});
  q.twigs.push_back(TwigInput{*twig2, &index2});
  ExpectSameAnswer(q, XJoinOptions{});
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CrossTwigDifferential,
                         ::testing::Range(0, 30));

std::vector<DiffParam> MakeDiffParams() {
  std::vector<DiffParam> params;
  for (int seed = 0; seed < 40; ++seed) {
    params.push_back({seed, false, false});
  }
  for (int seed = 0; seed < 15; ++seed) {
    params.push_back({100 + seed, true, false});
    params.push_back({200 + seed, false, true});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, XJoinDifferential,
                         ::testing::ValuesIn(MakeDiffParams()));

}  // namespace
}  // namespace xjoin
