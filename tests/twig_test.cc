#include <gtest/gtest.h>

#include "common/random.h"
#include "xml/twig.h"

namespace xjoin {
namespace {

TEST(TwigParseTest, LinearPath) {
  auto t = Twig::Parse("a/b//c");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_nodes(), 3u);
  EXPECT_EQ(t->node(0).tag, "a");
  EXPECT_EQ(t->node(1).axis, TwigAxis::kChild);
  EXPECT_EQ(t->node(2).axis, TwigAxis::kDescendant);
  EXPECT_EQ(t->node(2).parent, 1);
}

TEST(TwigParseTest, Branches) {
  auto t = Twig::Parse("a[b,//c/e]/d");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_nodes(), 5u);
  // preorder: a, b, c, e, d
  EXPECT_EQ(t->node(1).tag, "b");
  EXPECT_EQ(t->node(2).tag, "c");
  EXPECT_EQ(t->node(2).axis, TwigAxis::kDescendant);
  EXPECT_EQ(t->node(3).tag, "e");
  EXPECT_EQ(t->node(3).parent, 2);
  EXPECT_EQ(t->node(4).tag, "d");
  EXPECT_EQ(t->node(4).parent, 0);
}

TEST(TwigParseTest, LeadingSeparatorsIgnored) {
  EXPECT_TRUE(Twig::Parse("/a/b").ok());
  EXPECT_TRUE(Twig::Parse("//a/b").ok());
}

TEST(TwigParseTest, AliasesAllowRepeatedTags) {
  EXPECT_FALSE(Twig::Parse("a/a").ok());  // duplicate attribute
  auto t = Twig::Parse("a/a=a2");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->node(1).tag, "a");
  EXPECT_EQ(t->node(1).attribute, "a2");
}

TEST(TwigParseTest, Errors) {
  EXPECT_FALSE(Twig::Parse("").ok());
  EXPECT_FALSE(Twig::Parse("a[").ok());
  EXPECT_FALSE(Twig::Parse("a[b").ok());
  EXPECT_FALSE(Twig::Parse("a]b").ok());
  EXPECT_FALSE(Twig::Parse("a/b extra garbage ]").ok());
  EXPECT_FALSE(Twig::Parse("a//").ok());
  EXPECT_FALSE(Twig::Parse("[a]").ok());
}

TEST(TwigParseTest, WhitespaceTolerated) {
  auto t = Twig::Parse("a [ b , c ] / d");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_nodes(), 4u);
}

TEST(TwigTest, AttributesAndLookup) {
  auto t = Twig::Parse("a[b]/c");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->attributes(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(t->NodeByAttribute("c"), 2);
  EXPECT_EQ(t->NodeByAttribute("zzz"), kNullTwigNode);
}

TEST(TwigTest, LeavesAndPaths) {
  auto t = Twig::Parse("a[b,c/e]/d");
  ASSERT_TRUE(t.ok());
  // preorder: a(0), b(1), c(2), e(3), d(4); leaves: b, e, d
  EXPECT_EQ(t->Leaves(), (std::vector<TwigNodeId>{1, 3, 4}));
  EXPECT_EQ(t->PathFromRoot(3), (std::vector<TwigNodeId>{0, 2, 3}));
  EXPECT_EQ(t->PathFromRoot(0), (std::vector<TwigNodeId>{0}));
}

TEST(TwigTest, HasDescendantEdge) {
  EXPECT_FALSE(Twig::Parse("a/b")->HasDescendantEdge());
  EXPECT_TRUE(Twig::Parse("a//b")->HasDescendantEdge());
}

TEST(TwigTest, ToStringRoundTrips) {
  for (const char* pattern :
       {"a", "a/b", "a//b", "a[b]/c", "a[b,c/e]//d", "a[b,//c]/d=dd",
        "invoice[orderID]/orderLine[ISBN]/price"}) {
    auto t = Twig::Parse(pattern);
    ASSERT_TRUE(t.ok()) << pattern;
    auto t2 = Twig::Parse(t->ToString());
    ASSERT_TRUE(t2.ok()) << t->ToString();
    ASSERT_EQ(t2->num_nodes(), t->num_nodes()) << t->ToString();
    for (size_t i = 0; i < t->num_nodes(); ++i) {
      TwigNodeId id = static_cast<TwigNodeId>(i);
      EXPECT_EQ(t2->node(id).tag, t->node(id).tag);
      EXPECT_EQ(t2->node(id).attribute, t->node(id).attribute);
      EXPECT_EQ(t2->node(id).parent, t->node(id).parent);
      EXPECT_EQ(t2->node(id).axis == TwigAxis::kDescendant,
                t->node(id).axis == TwigAxis::kDescendant)
          << "node " << i << " of " << t->ToString();
    }
  }
}

// Property: random twigs survive ToString -> Parse exactly.
class TwigRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(TwigRoundTripProperty, ToStringParsesBack) {
  Rng rng(70000 + static_cast<uint64_t>(GetParam()));
  std::vector<std::string> tags = {"a", "b", "c", "d"};
  TwigBuilder builder;
  size_t n = 1 + rng.NextBounded(8);
  builder.AddRoot(tags[rng.NextBounded(tags.size())], "q0");
  for (size_t i = 1; i < n; ++i) {
    builder.AddChild(static_cast<TwigNodeId>(rng.NextBounded(i)),
                     rng.NextBernoulli(0.4) ? TwigAxis::kDescendant
                                            : TwigAxis::kChild,
                     tags[rng.NextBounded(tags.size())],
                     "q" + std::to_string(i));
  }
  auto twig = builder.Finish();
  ASSERT_TRUE(twig.ok());
  auto reparsed = Twig::Parse(twig->ToString());
  ASSERT_TRUE(reparsed.ok()) << twig->ToString();
  ASSERT_EQ(reparsed->num_nodes(), twig->num_nodes());
  // Node ids are renumbered to pattern preorder by the parser; compare
  // the trees through the (unique) attribute names instead.
  for (size_t i = 0; i < twig->num_nodes(); ++i) {
    TwigNodeId id = static_cast<TwigNodeId>(i);
    const TwigNode& original = twig->node(id);
    TwigNodeId found = reparsed->NodeByAttribute(original.attribute);
    ASSERT_NE(found, kNullTwigNode) << twig->ToString();
    const TwigNode& copy = reparsed->node(found);
    EXPECT_EQ(copy.tag, original.tag) << twig->ToString();
    if (original.parent == kNullTwigNode) {
      EXPECT_EQ(copy.parent, kNullTwigNode);
    } else {
      ASSERT_NE(copy.parent, kNullTwigNode) << twig->ToString();
      EXPECT_EQ(reparsed->node(copy.parent).attribute,
                twig->node(original.parent).attribute)
          << twig->ToString();
      EXPECT_EQ(static_cast<int>(copy.axis), static_cast<int>(original.axis))
          << twig->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, TwigRoundTripProperty,
                         ::testing::Range(0, 40));

TEST(TwigBuilderTest, BuildsPreorder) {
  TwigBuilder b;
  TwigNodeId root = b.AddRoot("a");
  TwigNodeId child = b.AddChild(root, TwigAxis::kDescendant, "b", "bb");
  b.AddChild(child, TwigAxis::kChild, "c");
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->node(1).attribute, "bb");
  EXPECT_EQ(t->node(0).children, (std::vector<TwigNodeId>{1}));
}

TEST(TwigValidateTest, CatchesDuplicates) {
  TwigBuilder b;
  TwigNodeId root = b.AddRoot("a", "x");
  b.AddChild(root, TwigAxis::kChild, "b", "x");
  EXPECT_FALSE(b.Finish().ok());
}

}  // namespace
}  // namespace xjoin
