#include <gtest/gtest.h>

#include "common/dictionary.h"
#include "relational/catalog.h"
#include "relational/csv.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace xjoin {
namespace {

TEST(SchemaTest, MakeAndLookup) {
  auto s = Schema::Make({"A", "B", "C"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 3u);
  EXPECT_EQ(s->IndexOf("B"), 1);
  EXPECT_EQ(s->IndexOf("Z"), -1);
  EXPECT_TRUE(s->Contains("C"));
  EXPECT_EQ(s->ToString("R"), "R(A, B, C)");
}

TEST(SchemaTest, RejectsDuplicatesAndEmpty) {
  EXPECT_FALSE(Schema::Make({"A", "A"}).ok());
  EXPECT_FALSE(Schema::Make({"A", ""}).ok());
  EXPECT_TRUE(Schema::Make({}).ok());  // nullary schema is legal
}

TEST(ValueTest, TypesAndToString) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(3.5).ToString(), "3.5");
  EXPECT_EQ(Value(std::string("hi")).ToString(), "hi");
  EXPECT_TRUE(Value(int64_t{1}).is_int64());
  EXPECT_TRUE(Value(1.0).is_double());
  EXPECT_TRUE(Value(std::string("s")).is_string());
}

TEST(ValueTest, ParseByType) {
  EXPECT_EQ(ParseValue(ValueType::kInt64, "12")->AsInt64(), 12);
  EXPECT_DOUBLE_EQ(ParseValue(ValueType::kDouble, "2.5")->AsDouble(), 2.5);
  EXPECT_EQ(ParseValue(ValueType::kString, " raw ")->AsString(), " raw ");
  EXPECT_FALSE(ParseValue(ValueType::kInt64, "1.5").ok());
}

TEST(ValueTest, EncodeCanonicalizes) {
  Dictionary d;
  // "007" parsed as int64 encodes like "7".
  EXPECT_EQ(ParseValue(ValueType::kInt64, "007")->Encode(&d),
            ParseValue(ValueType::kInt64, "7")->Encode(&d));
}

TEST(RelationTest, AppendAndAccess) {
  auto s = Schema::Make({"A", "B"});
  Relation r(*s);
  r.AppendRow({1, 2});
  r.AppendRow({3, 4});
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.at(1, 0), 3);
  EXPECT_EQ(r.GetRow(0), (Tuple{1, 2}));
  EXPECT_TRUE(r.ContainsRow({3, 4}));
  EXPECT_FALSE(r.ContainsRow({3, 5}));
  EXPECT_FALSE(r.ContainsRow({3}));
}

TEST(RelationTest, ColumnByName) {
  auto s = Schema::Make({"A", "B"});
  Relation r(*s);
  r.AppendRow({1, 2});
  auto col = r.ColumnByName("B");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((**col)[0], 2);
  EXPECT_FALSE(r.ColumnByName("Z").ok());
}

TEST(RelationTest, SortAndDedup) {
  auto s = Schema::Make({"A", "B"});
  Relation r(*s);
  r.AppendRow({3, 1});
  r.AppendRow({1, 2});
  r.AppendRow({3, 1});
  r.AppendRow({1, 1});
  r.SortAndDedup();
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.GetRow(0), (Tuple{1, 1}));
  EXPECT_EQ(r.GetRow(1), (Tuple{1, 2}));
  EXPECT_EQ(r.GetRow(2), (Tuple{3, 1}));
}

TEST(RelationTest, FromTuplesValidatesArity) {
  auto s = Schema::Make({"A", "B"});
  EXPECT_TRUE(Relation::FromTuples(*s, {{1, 2}, {3, 4}}).ok());
  EXPECT_FALSE(Relation::FromTuples(*s, {{1, 2, 3}}).ok());
}

TEST(RelationTest, EmptyRelation) {
  auto s = Schema::Make({"A"});
  Relation r(*s);
  EXPECT_EQ(r.num_rows(), 0u);
  r.SortAndDedup();
  EXPECT_EQ(r.num_rows(), 0u);
}

TEST(CsvTest, BasicParse) {
  Dictionary d;
  CsvOptions opts;
  auto r = ReadCsv("A,B\n1,x\n2,y\n", opts, &d);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->schema().attribute(0), "A");
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(d.Decode(r->at(0, 1)), "x");
}

TEST(CsvTest, TypedColumnsCanonicalize) {
  Dictionary d;
  CsvOptions opts;
  opts.types = {ValueType::kInt64, ValueType::kString};
  auto r = ReadCsv("A,B\n007,x\n7,y\n", opts, &d);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0, 0), r->at(1, 0));  // 007 == 7 after canonicalization
}

TEST(CsvTest, QuotedFields) {
  Dictionary d;
  CsvOptions opts;
  auto r = ReadCsv("A,B\n\"a,b\",\"say \"\"hi\"\"\"\n", opts, &d);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(d.Decode(r->at(0, 0)), "a,b");
  EXPECT_EQ(d.Decode(r->at(0, 1)), "say \"hi\"");
}

TEST(CsvTest, Errors) {
  Dictionary d;
  CsvOptions opts;
  EXPECT_FALSE(ReadCsv("", opts, &d).ok());
  EXPECT_FALSE(ReadCsv("A,B\n1\n", opts, &d).ok());          // arity
  EXPECT_FALSE(ReadCsv("A,B\n\"x,1\n", opts, &d).ok());      // dangling quote
  opts.types = {ValueType::kInt64};
  EXPECT_FALSE(ReadCsv("A\nnotanum\n", opts, &d).ok());      // bad int
  EXPECT_FALSE(ReadCsv("A,B\n1,2\n", opts, &d).ok());        // type arity
}

TEST(CsvTest, NoHeader) {
  Dictionary d;
  CsvOptions opts;
  opts.has_header = false;
  auto r = ReadCsv("1,2\n3,4\n", opts, &d);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().attribute(0), "col0");
  EXPECT_EQ(r->num_rows(), 2u);
}

TEST(CsvTest, RoundTrip) {
  Dictionary d;
  CsvOptions opts;
  auto r = ReadCsv("A,B\nplain,\"with,comma\"\n", opts, &d);
  ASSERT_TRUE(r.ok());
  std::string text = WriteCsv(*r, d);
  auto r2 = ReadCsv(text, opts, &d);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->num_rows(), r->num_rows());
  for (size_t c = 0; c < r->num_columns(); ++c) {
    EXPECT_EQ(r2->at(0, c), r->at(0, c));
  }
}

TEST(CatalogTest, AddGetAndNames) {
  Catalog cat;
  auto s = Schema::Make({"A"});
  EXPECT_TRUE(cat.AddRelation("r1", Relation(*s)).ok());
  EXPECT_FALSE(cat.AddRelation("r1", Relation(*s)).ok());
  EXPECT_TRUE(cat.HasRelation("r1"));
  EXPECT_TRUE(cat.GetRelation("r1").ok());
  EXPECT_FALSE(cat.GetRelation("r2").ok());
  cat.PutRelation("r2", Relation(*s));
  EXPECT_EQ(cat.RelationNames(), (std::vector<std::string>{"r1", "r2"}));
}

}  // namespace
}  // namespace xjoin
