// Parameterized TrieIterator conformance suite, run against every
// implementation — RelationTrie (CSR level arrays), its delta-backed
// form (base CSR + pending insert/tombstone side-file, pre and post
// compaction), LazyPathTrie (in-place document navigation), and the
// materialized path trie (RelationTrie over a flattened PathRelation) —
// plus a randomized equivalence check of the CSR trie against a
// reference sorted-vector oracle. Every implementation must satisfy
// the exact protocol in
// relational/trie_iterator.h: Open/Up/Next/Seek/AtEnd/Key semantics,
// EstimateKeys as an upper bound, and root-positioned independent
// Clones.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/decompose.h"
#include "core/virtual_relation.h"
#include "relational/operators.h"
#include "relational/trie.h"
#include "tests/test_util.h"
#include "xml/parser.h"

namespace xjoin {
namespace {

// ---------------------------------------------------------------------
// Reference oracle: a TrieIterator over an explicit sorted-distinct
// tuple vector, implemented with plain linear scans — deliberately the
// dumbest possible realization of the contract.
class OracleTrieIterator final : public TrieIterator {
 public:
  OracleTrieIterator(std::shared_ptr<const std::vector<Tuple>> tuples,
                     int arity)
      : tuples_(std::move(tuples)), arity_(arity) {}

  int arity() const override { return arity_; }
  int depth() const override { return depth_; }

  void Open() override {
    size_t lo, hi;
    if (depth_ < 0) {
      lo = 0;
      hi = tuples_->size();
    } else {
      const Frame& f = frames_[static_cast<size_t>(depth_)];
      lo = f.pos;
      hi = f.group_end;
    }
    ++depth_;
    frames_.push_back(Frame{lo, hi, lo, lo});
    FixGroup();
  }

  void Up() override {
    frames_.pop_back();
    --depth_;
  }

  bool AtEnd() const override {
    const Frame& f = frames_[static_cast<size_t>(depth_)];
    return f.pos >= f.hi;
  }

  int64_t Key() const override {
    const Frame& f = frames_[static_cast<size_t>(depth_)];
    return (*tuples_)[f.pos][static_cast<size_t>(depth_)];
  }

  void Next() override {
    Frame& f = frames_[static_cast<size_t>(depth_)];
    f.pos = f.group_end;
    FixGroup();
  }

  void Seek(int64_t key) override {
    while (!AtEnd() && Key() < key) Next();
  }

  int64_t EstimateKeys() const override {
    // Exact distinct count remaining at this level (linear scan).
    const Frame& f = frames_[static_cast<size_t>(depth_)];
    int64_t count = 0;
    size_t i = f.pos;
    while (i < f.hi) {
      ++count;
      int64_t key = (*tuples_)[i][static_cast<size_t>(depth_)];
      while (i < f.hi && (*tuples_)[i][static_cast<size_t>(depth_)] == key) {
        ++i;
      }
    }
    return count;
  }

  std::unique_ptr<TrieIterator> Clone() const override {
    return std::make_unique<OracleTrieIterator>(tuples_, arity_);
  }

 private:
  struct Frame {
    size_t lo, hi;
    size_t pos, group_end;
  };

  void FixGroup() {
    Frame& f = frames_[static_cast<size_t>(depth_)];
    if (f.pos >= f.hi) {
      f.group_end = f.pos;
      return;
    }
    int64_t key = (*tuples_)[f.pos][static_cast<size_t>(depth_)];
    size_t e = f.pos + 1;
    while (e < f.hi && (*tuples_)[e][static_cast<size_t>(depth_)] == key) ++e;
    f.group_end = e;
  }

  std::shared_ptr<const std::vector<Tuple>> tuples_;
  int arity_;
  int depth_ = -1;
  std::vector<Frame> frames_;
};

// ---------------------------------------------------------------------
// Fixtures: one per implementation, each owning its backing data and
// exposing (a) fresh iterators and (b) the sorted-distinct oracle
// tuples describing the same logical trie.
struct TrieFixture {
  virtual ~TrieFixture() = default;
  virtual std::unique_ptr<TrieIterator> NewIterator() const = 0;
  virtual int arity() const = 0;
  const std::vector<Tuple>& oracle() const { return *oracle_; }
  std::unique_ptr<TrieIterator> NewOracleIterator() const {
    return std::make_unique<OracleTrieIterator>(oracle_, arity());
  }

 protected:
  void SetOracle(std::vector<Tuple> tuples) {
    std::sort(tuples.begin(), tuples.end());
    tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
    oracle_ = std::make_shared<const std::vector<Tuple>>(std::move(tuples));
  }

 private:
  std::shared_ptr<const std::vector<Tuple>> oracle_;
};

// Delta-backed RelationTrie: a base build followed by one or more
// ApplyDelta rounds (inserts + deletes in trie attribute order). When
// `compact_last` is false every round stays a pending side-file, so the
// RelationDeltaTrieIterator merge path is what the suite exercises;
// when true the final round force-compacts, proving the folded CSR is
// indistinguishable from a fresh build.
struct DeltaRelationTrieFixture : TrieFixture {
  struct Round {
    std::vector<Tuple> inserts;
    std::vector<Tuple> deletes;
  };

  DeltaRelationTrieFixture(const Relation& base,
                           const std::vector<std::string>& order,
                           const std::vector<Round>& rounds,
                           bool compact_last) {
    auto projected = Project(base, order);
    std::set<Tuple> logical;
    for (const Tuple& t : projected->ToTuples()) logical.insert(t);

    auto built = RelationTrie::Build(base, order);
    RelationTrie current = *std::move(built);
    for (size_t i = 0; i < rounds.size(); ++i) {
      TrieDeltaOptions options;
      options.compact_min_rows = std::numeric_limits<size_t>::max();
      if (compact_last && i + 1 == rounds.size()) options.force_compact = true;
      auto next = current.ApplyDelta(rounds[i].inserts, rounds[i].deletes,
                                     options);
      current = *std::move(next);
      for (const Tuple& t : rounds[i].deletes) logical.erase(t);
      for (const Tuple& t : rounds[i].inserts) logical.insert(t);
    }
    trie = std::make_unique<RelationTrie>(std::move(current));
    SetOracle(std::vector<Tuple>(logical.begin(), logical.end()));
  }

  std::unique_ptr<TrieIterator> NewIterator() const override {
    return trie->NewIterator();
  }
  int arity() const override { return trie->arity(); }

  std::unique_ptr<RelationTrie> trie;
};

struct RelationTrieFixture : TrieFixture {
  RelationTrieFixture(const Relation& rel,
                      const std::vector<std::string>& order) {
    auto projected = Project(rel, order);
    SetOracle(projected->ToTuples());
    auto built = RelationTrie::Build(rel, order);
    trie = std::make_unique<RelationTrie>(*std::move(built));
  }

  std::unique_ptr<TrieIterator> NewIterator() const override {
    return trie->NewIterator();
  }
  int arity() const override { return trie->arity(); }

  std::unique_ptr<RelationTrie> trie;
};

// Shared XML backing for the two path-trie fixtures.
struct PathBacking {
  PathBacking(const std::string& xml, const std::string& pattern) {
    auto parsed = ParseXml(xml);
    doc = std::make_unique<XmlDocument>(*std::move(parsed));
    index = std::make_unique<NodeIndex>(NodeIndex::Build(doc.get(), &dict));
    auto parsed_twig = Twig::Parse(pattern);
    twig = std::make_unique<Twig>(*std::move(parsed_twig));
    auto decomposition = DecomposeTwig(*twig);
    auto rel = PathRelation::Make(*twig, decomposition->paths[0], index.get());
    relation = std::make_unique<PathRelation>(*std::move(rel));
  }

  Dictionary dict;
  std::unique_ptr<XmlDocument> doc;
  std::unique_ptr<NodeIndex> index;
  std::unique_ptr<Twig> twig;
  std::unique_ptr<PathRelation> relation;
};

struct LazyPathTrieFixture : TrieFixture {
  LazyPathTrieFixture(const std::string& xml, const std::string& pattern)
      : backing(xml, pattern) {
    SetOracle(backing.relation->Materialize()->ToTuples());
  }

  std::unique_ptr<TrieIterator> NewIterator() const override {
    return backing.relation->NewLazyIterator();
  }
  int arity() const override { return backing.relation->arity(); }

  PathBacking backing;
};

struct MaterializedPathTrieFixture : TrieFixture {
  MaterializedPathTrieFixture(const std::string& xml,
                              const std::string& pattern)
      : backing(xml, pattern) {
    Relation mat = *backing.relation->Materialize();
    SetOracle(mat.ToTuples());
    auto built = RelationTrie::Build(mat, backing.relation->attributes());
    trie = std::make_unique<RelationTrie>(*std::move(built));
  }

  std::unique_ptr<TrieIterator> NewIterator() const override {
    return trie->NewIterator();
  }
  int arity() const override { return trie->arity(); }

  PathBacking backing;
  std::unique_ptr<RelationTrie> trie;
};

// ---------------------------------------------------------------------
// Fixture registry (the parameter domain).
Relation BasicRelation() {
  auto s = Schema::Make({"A", "B"});
  Relation r(*s);
  r.AppendRow({1, 10});
  r.AppendRow({1, 20});
  r.AppendRow({2, 10});
  r.AppendRow({2, 10});  // duplicate
  r.AppendRow({5, 7});
  r.AppendRow({5, 9});
  r.AppendRow({9, 1});
  return r;
}

Relation Arity3Relation() {
  auto s = Schema::Make({"A", "B", "C"});
  Relation r(*s);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) r.AppendRow({i, j, (i * j) % 3});
  }
  return r;
}

// The lazy path trie exposes every chain prefix, so its conformance
// fixtures use documents where every partial chain extends to a full
// one (no dangling prefixes); the dangling-prefix behavior gets its own
// targeted tests below. The materialized fixtures flatten first, so
// they tolerate dangling chains.
constexpr char kCompleteXml[] =
    "<r><a>1<b>x</b><b>y</b><b>y</b></a><a>2<b>x</b></a>"
    "<a>1<b>z</b></a></r>";
constexpr char kCompleteDeepXml[] =
    "<r><a>1<b>x<c>p</c><c>q</c></b><b>y<c>p</c></b></a>"
    "<a>2<b>x<c>r</c></b></a></r>";
constexpr char kDanglingXml[] =
    "<r><a>1<b>x</b><b>y</b><b>y</b></a><a>2<b>x</b></a>"
    "<a>1<b>z</b></a><a>3</a></r>";
constexpr char kDanglingDeepXml[] =
    "<r><a>1<b>x<c>p</c><c>q</c></b><b>y<c>p</c></b></a>"
    "<a>2<b>x<c>r</c></b></a><a>3<b>w</b></a></r>";

struct FixtureSpec {
  const char* name;
  std::function<std::shared_ptr<TrieFixture>()> make;
};

const std::vector<FixtureSpec>& Registry() {
  static const std::vector<FixtureSpec>* specs = new std::vector<FixtureSpec>{
      {"RelationTrieBasic",
       [] {
         return std::make_shared<RelationTrieFixture>(
             BasicRelation(), std::vector<std::string>{"A", "B"});
       }},
      {"RelationTriePermutedOrder",
       [] {
         return std::make_shared<RelationTrieFixture>(
             BasicRelation(), std::vector<std::string>{"B", "A"});
       }},
      {"RelationTrieArity3",
       [] {
         return std::make_shared<RelationTrieFixture>(
             Arity3Relation(), std::vector<std::string>{"A", "B", "C"});
       }},
      {"RelationTrieEmpty",
       [] {
         auto s = Schema::Make({"A", "B"});
         return std::make_shared<RelationTrieFixture>(
             Relation(*s), std::vector<std::string>{"A", "B"});
       }},
      {"RelationTrieSingleRow",
       [] {
         auto s = Schema::Make({"A"});
         Relation r(*s);
         r.AppendRow({42});
         return std::make_shared<RelationTrieFixture>(
             r, std::vector<std::string>{"A"});
       }},
      // Delta-backed variants: base + pending side-file (the merge
      // iterator) and the same logical contents after compaction.
      {"DeltaTriePendingBasic",
       [] {
         std::vector<DeltaRelationTrieFixture::Round> rounds = {
             {{{1, 15}, {3, 3}, {0, 5}, {9, 2}}, {{2, 10}, {9, 1}}}};
         return std::make_shared<DeltaRelationTrieFixture>(
             BasicRelation(), std::vector<std::string>{"A", "B"}, rounds,
             /*compact_last=*/false);
       }},
      {"DeltaTrieCompactedBasic",
       [] {
         std::vector<DeltaRelationTrieFixture::Round> rounds = {
             {{{1, 15}, {3, 3}, {0, 5}, {9, 2}}, {{2, 10}, {9, 1}}}};
         return std::make_shared<DeltaRelationTrieFixture>(
             BasicRelation(), std::vector<std::string>{"A", "B"}, rounds,
             /*compact_last=*/true);
       }},
      {"DeltaTrieChainedArity3",
       [] {
         // Round 2 deletes a round-1 insert (cancel), deletes base rows,
         // and resurrects a round-1 delete — the full classification
         // matrix, left pending so the merge iterator serves it.
         std::vector<DeltaRelationTrieFixture::Round> rounds = {
             {{{7, 7, 7}, {0, 0, 1}}, {{1, 1, 1}, {2, 3, 0}}},
             {{{1, 1, 1}, {5, 0, 0}}, {{7, 7, 7}, {0, 1, 0}}}};
         return std::make_shared<DeltaRelationTrieFixture>(
             Arity3Relation(), std::vector<std::string>{"A", "B", "C"},
             rounds, /*compact_last=*/false);
       }},
      {"DeltaTrieAllBaseDeleted",
       [] {
         // Every base row tombstoned, fresh inserts only: level-0
         // Reposition must skip fully-dead base subtrees.
         std::vector<DeltaRelationTrieFixture::Round> rounds = {
             {{{4, 4}, {6, 1}},
              {{1, 10}, {1, 20}, {2, 10}, {5, 7}, {5, 9}, {9, 1}}}};
         return std::make_shared<DeltaRelationTrieFixture>(
             BasicRelation(), std::vector<std::string>{"A", "B"}, rounds,
             /*compact_last=*/false);
       }},
      {"DeltaTrieEmptiedPending",
       [] {
         // Deletes everything, inserts nothing: logically empty trie
         // whose base arrays are still fully populated.
         std::vector<DeltaRelationTrieFixture::Round> rounds = {
             {{}, {{1, 10}, {1, 20}, {2, 10}, {5, 7}, {5, 9}, {9, 1}}}};
         return std::make_shared<DeltaRelationTrieFixture>(
             BasicRelation(), std::vector<std::string>{"A", "B"}, rounds,
             /*compact_last=*/false);
       }},
      {"LazyPathTrieBasic",
       [] {
         return std::make_shared<LazyPathTrieFixture>(kCompleteXml, "a/b");
       }},
      {"LazyPathTrieDepth3",
       [] {
         return std::make_shared<LazyPathTrieFixture>(kCompleteDeepXml,
                                                      "a/b/c");
       }},
      {"MaterializedPathTrieBasic",
       [] {
         return std::make_shared<MaterializedPathTrieFixture>(kDanglingXml,
                                                              "a/b");
       }},
      {"MaterializedPathTrieDepth3",
       [] {
         return std::make_shared<MaterializedPathTrieFixture>(kDanglingDeepXml,
                                                              "a/b/c");
       }},
      {"MaterializedPathTrieAbsentTag",
       [] {
         return std::make_shared<MaterializedPathTrieFixture>(kDanglingXml,
                                                              "a/zz");
       }},
  };
  return *specs;
}

// Depth-first enumeration of all tuples below the virtual root.
std::vector<Tuple> Enumerate(TrieIterator* it) {
  std::vector<Tuple> out;
  if (it->arity() == 0) return out;
  Tuple current(static_cast<size_t>(it->arity()));
  auto recurse = [&](auto&& self) -> void {
    it->Open();
    while (!it->AtEnd()) {
      current[static_cast<size_t>(it->depth())] = it->Key();
      if (it->depth() + 1 == it->arity()) {
        out.push_back(current);
      } else {
        self(self);
      }
      it->Next();
    }
    it->Up();
  };
  recurse(recurse);
  return out;
}

class TrieConformanceTest : public ::testing::TestWithParam<size_t> {
 protected:
  std::shared_ptr<TrieFixture> fixture_ = Registry()[GetParam()].make();
};

TEST_P(TrieConformanceTest, EnumerationMatchesOracle) {
  auto it = fixture_->NewIterator();
  EXPECT_EQ(it->depth(), -1);
  EXPECT_EQ(Enumerate(it.get()), fixture_->oracle());
  // The walk must restore the root position; a second pass sees the
  // same trie.
  EXPECT_EQ(it->depth(), -1);
  EXPECT_EQ(Enumerate(it.get()), fixture_->oracle());
}

TEST_P(TrieConformanceTest, OpenUpBookkeeping) {
  auto it = fixture_->NewIterator();
  ASSERT_GT(it->arity(), 0);
  it->Open();
  EXPECT_EQ(it->depth(), 0);
  if (fixture_->oracle().empty()) {
    EXPECT_TRUE(it->AtEnd());
  } else {
    ASSERT_FALSE(it->AtEnd());
    EXPECT_EQ(it->Key(), fixture_->oracle()[0][0]);
    for (int d = 1; d < it->arity(); ++d) {
      it->Open();
      EXPECT_EQ(it->depth(), d);
      ASSERT_FALSE(it->AtEnd());
      EXPECT_EQ(it->Key(), fixture_->oracle()[0][static_cast<size_t>(d)]);
    }
    for (int d = it->arity() - 1; d > 0; --d) {
      it->Up();
      EXPECT_EQ(it->depth(), d - 1);
      EXPECT_FALSE(it->AtEnd());
    }
  }
  it->Up();
  EXPECT_EQ(it->depth(), -1);
}

TEST_P(TrieConformanceTest, NextWalksDistinctAscendingKeys) {
  auto it = fixture_->NewIterator();
  ASSERT_GT(it->arity(), 0);
  it->Open();
  std::vector<int64_t> keys;
  while (!it->AtEnd()) {
    keys.push_back(it->Key());
    it->Next();
  }
  std::vector<int64_t> expected;
  for (const Tuple& t : fixture_->oracle()) {
    if (expected.empty() || expected.back() != t[0]) expected.push_back(t[0]);
  }
  EXPECT_EQ(keys, expected);
  // Strictly ascending == distinct.
  for (size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i - 1], keys[i]);
}

TEST_P(TrieConformanceTest, SeekFindsLeastKeyAtLeastTarget) {
  if (fixture_->oracle().empty()) return;
  // Level-0 distinct keys.
  std::vector<int64_t> keys;
  for (const Tuple& t : fixture_->oracle()) {
    if (keys.empty() || keys.back() != t[0]) keys.push_back(t[0]);
  }
  // Probe every key, every midpoint, and one past the end.
  std::vector<int64_t> targets = keys;
  for (int64_t k : keys) targets.push_back(k + 1);
  targets.push_back(keys.back() + 100);
  for (int64_t target : targets) {
    auto it = fixture_->NewIterator();
    it->Open();
    if (it->Key() > target) continue;  // Seek precondition: key >= Key()
    it->Seek(target);
    auto expected = std::lower_bound(keys.begin(), keys.end(), target);
    if (expected == keys.end()) {
      EXPECT_TRUE(it->AtEnd()) << "target=" << target;
    } else {
      ASSERT_FALSE(it->AtEnd()) << "target=" << target;
      EXPECT_EQ(it->Key(), *expected) << "target=" << target;
    }
  }
  // Seeking the current key is a no-op.
  auto it = fixture_->NewIterator();
  it->Open();
  int64_t first = it->Key();
  it->Seek(first);
  EXPECT_EQ(it->Key(), first);
}

TEST_P(TrieConformanceTest, EstimateKeysIsUpperBoundAndShrinks) {
  if (fixture_->oracle().empty()) return;
  auto it = fixture_->NewIterator();
  auto oracle = fixture_->NewOracleIterator();
  it->Open();
  oracle->Open();
  int64_t prev = it->EstimateKeys();
  while (!it->AtEnd()) {
    EXPECT_GE(it->EstimateKeys(), oracle->EstimateKeys());
    EXPECT_LE(it->EstimateKeys(), prev);
    prev = it->EstimateKeys();
    it->Next();
    oracle->Next();
  }
}

TEST_P(TrieConformanceTest, CloneIsRootPositionedAndIndependent) {
  auto original = fixture_->NewIterator();
  std::vector<Tuple> reference = Enumerate(original.get());
  auto fresh = original->Clone();
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->arity(), original->arity());
  EXPECT_EQ(fresh->depth(), -1);
  EXPECT_EQ(Enumerate(fresh.get()), reference);

  if (reference.empty()) return;

  // A clone taken mid-walk does not observe or perturb the original.
  original->Open();
  int64_t key_before = original->Key();
  auto mid = original->Clone();
  EXPECT_EQ(mid->depth(), -1);
  // Interleave: step the clone while the original is parked.
  mid->Open();
  while (!mid->AtEnd()) mid->Next();
  EXPECT_EQ(original->depth(), 0);
  EXPECT_EQ(original->Key(), key_before);
  mid->Up();
  EXPECT_EQ(Enumerate(mid.get()), reference);
  original->Up();
  EXPECT_EQ(Enumerate(original.get()), reference);
}

// NextBlock against the scalar protocol: a drained block must equal
// what { Key(); Next(); } produces under the same capacity and bound,
// and the cursor must land exactly where the scalar loop leaves it.
// The oracle iterator deliberately keeps the base-class default
// implementation, so this also pits each override (the CSR bulk copy)
// against the documented scalar semantics.
TEST_P(TrieConformanceTest, NextBlockMatchesScalarDrain) {
  std::vector<int64_t> keys;
  for (const Tuple& t : fixture_->oracle()) {
    if (keys.empty() || keys.back() != t[0]) keys.push_back(t[0]);
  }
  std::vector<int64_t> bounds = keys;
  for (int64_t k : keys) bounds.push_back(k + 1);
  bounds.push_back(std::numeric_limits<int64_t>::max());
  for (size_t capacity : {size_t{1}, size_t{2}, size_t{3}, size_t{1000}}) {
    for (int64_t bound : bounds) {
      auto it = fixture_->NewIterator();
      auto oracle = fixture_->NewOracleIterator();
      it->Open();
      oracle->Open();
      KeyBlock impl_block(capacity);
      KeyBlock oracle_block(capacity);
      // Drain the whole level block by block; the oracle uses the
      // default scalar NextBlock.
      for (;;) {
        size_t n = it->NextBlock(bound, &impl_block);
        size_t m = oracle->NextBlock(bound, &oracle_block);
        SCOPED_TRACE("capacity=" + std::to_string(capacity) +
                     " bound=" + std::to_string(bound));
        ASSERT_EQ(n, m);
        ASSERT_EQ(impl_block.keys, oracle_block.keys);
        ASSERT_EQ(it->AtEnd(), oracle->AtEnd());
        if (!it->AtEnd()) {
          ASSERT_EQ(it->Key(), oracle->Key());
        }
        if (n < capacity) break;
      }
      // The cursor rests on the first key not drained (>= bound), so a
      // subsequent scalar walk continues seamlessly.
      while (!it->AtEnd()) {
        ASSERT_FALSE(oracle->AtEnd());
        EXPECT_EQ(it->Key(), oracle->Key());
        it->Next();
        oracle->Next();
      }
      EXPECT_TRUE(oracle->AtEnd());
    }
  }
}

// A partial block drain is abandoned by Up(); re-opening the level must
// restart it from the first key, at every level of the trie.
TEST_P(TrieConformanceTest, NextBlockMidBlockUpAndReopen) {
  if (fixture_->oracle().empty()) return;
  auto it = fixture_->NewIterator();
  const int64_t no_bound = std::numeric_limits<int64_t>::max();
  for (int d = 0; d < it->arity(); ++d) {
    it->Open();
    // Full reference drain via the scalar protocol on a clone.
    std::vector<int64_t> expected;
    {
      auto ref = fixture_->NewIterator();
      for (int l = 0; l <= d; ++l) ref->Open();
      while (!ref->AtEnd()) {
        expected.push_back(ref->Key());
        ref->Next();
      }
    }
    // Drain one short block, abandon it, re-open, drain everything.
    KeyBlock partial(1);
    it->NextBlock(no_bound, &partial);
    it->Up();
    it->Open();
    KeyBlock all(expected.size() + 1);
    it->NextBlock(no_bound, &all);
    EXPECT_EQ(all.keys, expected) << "level " << d;
    EXPECT_TRUE(it->AtEnd());
    // Park the cursor back on the first key so the next level can open.
    it->Up();
    it->Open();
  }
}

// Randomized equivalence: drive the implementation and the sorted-
// vector oracle with one random-but-legal op sequence and compare all
// observable state after every step.
TEST_P(TrieConformanceTest, RandomWalkMatchesOracle) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(7000 + 31 * GetParam() + seed);
    auto it = fixture_->NewIterator();
    auto oracle = fixture_->NewOracleIterator();
    const int arity = it->arity();
    if (arity == 0) return;
    for (int step = 0; step < 400; ++step) {
      // Legal moves given the current state.
      enum class Op { kOpen, kUp, kNext, kSeek, kBlock };
      std::vector<Op> moves;
      if (it->depth() == -1) {
        moves.push_back(Op::kOpen);
      } else {
        moves.push_back(Op::kUp);
        moves.push_back(Op::kBlock);  // legal even AtEnd (drains nothing)
        if (!it->AtEnd()) {
          moves.push_back(Op::kNext);
          moves.push_back(Op::kSeek);
          if (it->depth() + 1 < arity) moves.push_back(Op::kOpen);
        }
      }
      Op op = moves[rng.NextBounded(moves.size())];
      switch (op) {
        case Op::kOpen:
          it->Open();
          oracle->Open();
          break;
        case Op::kUp:
          it->Up();
          oracle->Up();
          break;
        case Op::kNext:
          it->Next();
          oracle->Next();
          break;
        case Op::kSeek: {
          int64_t target = it->Key();
          target += static_cast<int64_t>(rng.NextBounded(4));
          it->Seek(target);
          oracle->Seek(target);
          break;
        }
        case Op::kBlock: {
          // Random capacity and a randomized hi bound (sometimes
          // unbounded, sometimes cutting mid-level).
          KeyBlock impl_block(1 + rng.NextBounded(4));
          KeyBlock oracle_block(impl_block.capacity);
          int64_t bound = std::numeric_limits<int64_t>::max();
          if (!it->AtEnd() && rng.NextBernoulli(0.5)) {
            bound = it->Key() + static_cast<int64_t>(rng.NextBounded(5));
          }
          size_t n = it->NextBlock(bound, &impl_block);
          size_t m = oracle->NextBlock(bound, &oracle_block);
          ASSERT_EQ(n, m) << "step " << step;
          ASSERT_EQ(impl_block.keys, oracle_block.keys) << "step " << step;
          break;
        }
      }
      ASSERT_EQ(it->depth(), oracle->depth()) << "step " << step;
      if (it->depth() >= 0) {
        ASSERT_EQ(it->AtEnd(), oracle->AtEnd()) << "step " << step;
        if (!it->AtEnd()) {
          ASSERT_EQ(it->Key(), oracle->Key()) << "step " << step;
          ASSERT_GE(it->EstimateKeys(), oracle->EstimateKeys())
              << "step " << step;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllImplementations, TrieConformanceTest,
    ::testing::Range(size_t{0}, Registry().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return Registry()[info.param].name;
    });

// ---------------------------------------------------------------------
// The lazy path trie's documented relaxation: it enumerates every chain
// prefix, so a level may expose keys whose deeper subtree turns out to
// be empty (a node with no matching children). Full-tuple enumeration
// still agrees with the materialized relation — which is all the join
// engine relies on — and opening a dangling key yields an empty level,
// exactly what the leapfrog backtracks over.
TEST(LazyPathTrieRelaxationTest, DanglingPrefixesExposeEmptySubtrees) {
  LazyPathTrieFixture fixture(kDanglingXml, "a/b");
  // Enumeration matches the materialized relation despite <a>3</a>
  // contributing no chain.
  auto it = fixture.NewIterator();
  EXPECT_EQ(Enumerate(it.get()), fixture.oracle());

  // Level 0 exposes a superset of the oracle's level-0 keys ...
  std::vector<int64_t> oracle_keys;
  for (const Tuple& t : fixture.oracle()) {
    if (oracle_keys.empty() || oracle_keys.back() != t[0]) {
      oracle_keys.push_back(t[0]);
    }
  }
  std::vector<int64_t> lazy_keys;
  it->Open();
  while (!it->AtEnd()) {
    lazy_keys.push_back(it->Key());
    it->Next();
  }
  EXPECT_GT(lazy_keys.size(), oracle_keys.size());
  for (int64_t k : oracle_keys) {
    EXPECT_TRUE(std::find(lazy_keys.begin(), lazy_keys.end(), k) !=
                lazy_keys.end());
  }

  // ... and opening a dangling key yields an empty next level.
  bool saw_dangling = false;
  it->Up();
  it->Open();
  while (!it->AtEnd()) {
    it->Open();
    if (it->AtEnd()) saw_dangling = true;
    it->Up();
    it->Next();
  }
  EXPECT_TRUE(saw_dangling);
}

TEST(LazyPathTrieRelaxationTest, AbsentTagYieldsNoTuples) {
  LazyPathTrieFixture fixture(kDanglingXml, "a/zz");
  EXPECT_TRUE(fixture.oracle().empty());
  auto it = fixture.NewIterator();
  EXPECT_TRUE(Enumerate(it.get()).empty());
}

// ---------------------------------------------------------------------
// Randomized CSR-vs-oracle equivalence on generated relations (random
// arity, random attribute order, duplicate-heavy domains).
class CsrTrieRandomizedTest : public ::testing::TestWithParam<int> {};

TEST_P(CsrTrieRandomizedTest, MatchesSortedVectorOracle) {
  Rng rng(9000 + static_cast<uint64_t>(GetParam()));
  Dictionary dict;
  size_t arity = 1 + rng.NextBounded(4);
  std::vector<std::string> attrs;
  for (size_t i = 0; i < arity; ++i) attrs.push_back("a" + std::to_string(i));
  Relation rel = xjoin::testing::RandomRelation(&rng, &dict, attrs,
                                                rng.NextBounded(300), 6);
  std::vector<std::string> order = attrs;
  rng.Shuffle(&order);

  RelationTrieFixture fixture(rel, order);
  auto it = fixture.NewIterator();
  EXPECT_EQ(Enumerate(it.get()), fixture.oracle());

  // Random walk against the oracle.
  auto impl = fixture.NewIterator();
  auto oracle = fixture.NewOracleIterator();
  for (int step = 0; step < 300; ++step) {
    if (impl->depth() == -1) {
      impl->Open();
      oracle->Open();
    } else if (impl->AtEnd() || rng.NextBernoulli(0.2)) {
      impl->Up();
      oracle->Up();
    } else if (rng.NextBernoulli(0.5) && impl->depth() + 1 < impl->arity()) {
      impl->Open();
      oracle->Open();
    } else if (rng.NextBernoulli(0.5)) {
      impl->Next();
      oracle->Next();
    } else {
      int64_t target = impl->Key() + static_cast<int64_t>(rng.NextBounded(3));
      impl->Seek(target);
      oracle->Seek(target);
    }
    ASSERT_EQ(impl->depth(), oracle->depth()) << "step " << step;
    if (impl->depth() >= 0) {
      ASSERT_EQ(impl->AtEnd(), oracle->AtEnd()) << "step " << step;
      if (!impl->AtEnd()) {
        ASSERT_EQ(impl->Key(), oracle->Key()) << "step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CsrTrieRandomizedTest,
                         ::testing::Range(0, 20));

// The radix path (>= 256 rows) and the std::sort path must produce
// identical tries.
TEST(CsrTrieBuildTest, RadixAndComparatorSortsAgree) {
  Rng rng(123);
  Dictionary dict;
  // Values that exercise multiple radix bytes, plus negatives.
  auto s = Schema::Make({"A", "B"});
  Relation rel(*s);
  for (int i = 0; i < 1000; ++i) {
    int64_t a = static_cast<int64_t>(rng.NextBounded(1 << 20)) - (1 << 19);
    int64_t b = static_cast<int64_t>(rng.NextBounded(97));
    rel.AppendRow({a, b});
  }
  auto big = RelationTrie::Build(rel, {"A", "B"});
  ASSERT_TRUE(big.ok());

  // Reference: sort+dedup through the Relation and re-enumerate.
  Relation sorted_rel = rel;
  sorted_rel.SortAndDedup();
  RelationTrieFixture fixture(sorted_rel, {"A", "B"});
  auto it = big->NewIterator();
  EXPECT_EQ(Enumerate(it.get()), fixture.oracle());
}

// Parallel builds must be byte-identical to serial builds.
TEST(CsrTrieBuildTest, ParallelBuildMatchesSerial) {
  Rng rng(321);
  Dictionary dict;
  Relation rel = xjoin::testing::RandomRelation(
      &rng, &dict, {"a0", "a1", "a2"}, 2000, 40);
  auto serial = RelationTrie::Build(rel, {"a2", "a0", "a1"});
  ASSERT_TRUE(serial.ok());
  TrieBuildOptions options;
  options.num_threads = 4;
  auto parallel = RelationTrie::Build(rel, {"a2", "a0", "a1"}, options);
  ASSERT_TRUE(parallel.ok());
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_EQ(serial->level_keys(d), parallel->level_keys(d));
    if (d + 1 < 3) {
      EXPECT_EQ(serial->child_begin(d), parallel->child_begin(d));
    }
  }
}

}  // namespace
}  // namespace xjoin
