// Serving-core tests: Session snapshot isolation under concurrent
// writers, admission-budget enforcement (typed Statuses, no partial
// results), session/plan pin lifetime vs cache eviction, cooperative
// cancellation (session-, statement-, and options-scoped tokens),
// per-tenant admission pools, the atomically-snapshotted CacheStats
// getter, and — in XJOIN_FAULTS builds — deterministic fault
// injection at the catalogued sites.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/string_util.h"
#include "core/database.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"

namespace xjoin {
namespace {

// CSV for a two-column relation whose rows are (i, i % mod) for
// i in [0, n) — joins on the shared column name chain naturally.
std::string MakeCsv(const std::string& a, const std::string& b, int n,
                    int mod, int offset) {
  std::string csv = a + "," + b + "\n";
  for (int i = 0; i < n; ++i) {
    csv += std::to_string(i + offset) + "," +
           std::to_string((i + offset) % mod) + "\n";
  }
  return csv;
}

class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.RegisterRelationCsv("R", MakeCsv("A", "B", 60, 7, 0)).ok());
    ASSERT_TRUE(db_.RegisterRelationCsv("S", MakeCsv("B", "C", 60, 7, 0)).ok());
  }

  MultiModelDatabase db_;
  const std::string q_ = "Q(*) := R, S";
};

TEST_F(ServingTest, SessionSeesRepeatableSnapshot) {
  Session session = db_.OpenSession();
  auto before = session.Query(q_);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Writer lands after the session opened: the session keeps reading
  // the old contents, a fresh session (and the one-shot API) sees the
  // new ones.
  Relation replacement = **db_.relation("S");
  Relation bigger(replacement.schema());
  for (const auto& row : replacement.ToTuples()) bigger.AppendRow(row);
  bigger.AppendRow({db_.mutable_dictionary()->Intern("1"),
                    db_.mutable_dictionary()->Intern("999")});
  ASSERT_TRUE(db_.UpdateRelation("S", std::move(bigger)).ok());

  auto after = session.Query(q_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->ToTuples(), after->ToTuples());
  EXPECT_EQ(*session.relation_version("S"), 0u);
  EXPECT_EQ(*db_.relation_version("S"), 1u);

  Session fresh = db_.OpenSession();
  auto updated = fresh.Query(q_);
  ASSERT_TRUE(updated.ok());
  EXPECT_GT(updated->num_rows(), before->num_rows());
}

TEST_F(ServingTest, ConcurrentReadersSeeConsistentSnapshots) {
  // Writers flip R between two contents and S between two contents;
  // every reader must observe one of the four consistent combinations
  // (byte-identical to a serial run on that combination) — never a
  // torn mix and never a crash from freed storage.
  MultiModelDatabase db;
  ASSERT_TRUE(db.RegisterRelationCsv("R", MakeCsv("A", "B", 40, 5, 0)).ok());
  ASSERT_TRUE(db.RegisterRelationCsv("S", MakeCsv("B", "C", 40, 5, 0)).ok());
  auto parse = [&](const std::string& csv) {
    auto rel = ReadCsv(csv, CsvOptions{}, db.mutable_dictionary());
    EXPECT_TRUE(rel.ok());
    return *std::move(rel);
  };
  const Relation r0 = parse(MakeCsv("A", "B", 40, 5, 0));
  const Relation r1 = parse(MakeCsv("A", "B", 40, 5, 100));
  const Relation s0 = parse(MakeCsv("B", "C", 40, 5, 0));
  const Relation s1 = parse(MakeCsv("B", "C", 40, 5, 100));

  // Precompute the four expected results serially, ending back at
  // (r0, s0) with even version parities: R version even <=> r0
  // contents, S version even <=> s0, an invariant the writers below
  // maintain. expected[R parity][S parity] is the byte-exact answer.
  const std::string q = "Q(*) := R, S";
  std::vector<Tuple> expected[2][2];
  expected[0][0] = db.Query(q)->ToTuples();
  ASSERT_TRUE(db.UpdateRelation("S", Relation(s1)).ok());  // S v1
  expected[0][1] = db.Query(q)->ToTuples();
  ASSERT_TRUE(db.UpdateRelation("R", Relation(r1)).ok());  // R v1
  expected[1][1] = db.Query(q)->ToTuples();
  ASSERT_TRUE(db.UpdateRelation("S", Relation(s0)).ok());  // S v2
  expected[1][0] = db.Query(q)->ToTuples();
  ASSERT_TRUE(db.UpdateRelation("R", Relation(r0)).ok());  // R v2
  ASSERT_NE(expected[0][0], expected[1][1]);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(6);  // gcc 12 -Werror: avoid the _M_realloc_insert FP
  // Two writers, alternating contents to preserve the parity map.
  threads.emplace_back([&] {
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      if (!db.UpdateRelation("R", Relation(i % 2 == 0 ? r1 : r0)).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      if (!db.UpdateRelation("S", Relation(i % 2 == 0 ? s1 : s0)).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });
  // Four readers: every query's result must be byte-identical to the
  // expected answer for the snapshot the session captured, and
  // re-querying the same session must reproduce it exactly.
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        Session session = db.OpenSession();
        uint64_t rv = *session.relation_version("R");
        uint64_t sv = *session.relation_version("S");
        QueryOptions options;
        options.xjoin.num_threads = (i % 3 == 0) ? 2 : 1;
        auto first = session.Query(q, options);
        auto second = session.Query(q, options);
        if (!first.ok() || !second.ok() ||
            first->ToTuples() != expected[rv % 2][sv % 2] ||
            second->ToTuples() != first->ToTuples()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (size_t t = 2; t < threads.size(); ++t) threads[t].join();
  stop.store(true);
  threads[0].join();
  threads[1].join();
  EXPECT_EQ(failures.load(), 0);
}

// Set difference of two relations expressed as a RelationDelta: the
// batch that morphs `from` into `to` when applied.
RelationDelta DiffDelta(const Relation& from, const Relation& to) {
  std::vector<Tuple> from_rows = from.ToTuples();
  std::vector<Tuple> to_rows = to.ToTuples();
  std::sort(from_rows.begin(), from_rows.end());
  std::sort(to_rows.begin(), to_rows.end());
  RelationDelta delta;
  std::set_difference(to_rows.begin(), to_rows.end(), from_rows.begin(),
                      from_rows.end(), std::back_inserter(delta.inserts));
  std::set_difference(from_rows.begin(), from_rows.end(), to_rows.begin(),
                      to_rows.end(), std::back_inserter(delta.deletes));
  return delta;
}

TEST_F(ServingTest, ConcurrentDeltaWritersSeeConsistentSnapshots) {
  // The delta-path twin of ConcurrentReadersSeeConsistentSnapshots:
  // writers morph R and S between two contents via ApplyRelationDelta
  // (patching cached tries in place, compacting when the side-file
  // crosses the threshold) while readers demand results byte-identical
  // to some consistent snapshot. Exercised under TSan in CI.
  MultiModelDatabase db;
  ASSERT_TRUE(db.RegisterRelationCsv("R", MakeCsv("A", "B", 40, 5, 0)).ok());
  ASSERT_TRUE(db.RegisterRelationCsv("S", MakeCsv("B", "C", 40, 5, 0)).ok());
  // Small thresholds so the stream keeps crossing the compaction
  // boundary: readers see pending side-files and freshly-folded cores.
  db.SetTrieDeltaCompaction(0.25, 8);
  auto parse = [&](const std::string& csv) {
    auto rel = ReadCsv(csv, CsvOptions{}, db.mutable_dictionary());
    EXPECT_TRUE(rel.ok());
    return *std::move(rel);
  };
  const Relation r0 = parse(MakeCsv("A", "B", 40, 5, 0));
  const Relation r1 = parse(MakeCsv("A", "B", 40, 5, 100));
  const Relation s0 = parse(MakeCsv("B", "C", 40, 5, 0));
  const Relation s1 = parse(MakeCsv("B", "C", 40, 5, 100));

  // Version parity map, same invariant as the rebuild-path test: the
  // precompute below ends at (r0, s0) with both versions even, and
  // every ApplyRelationDelta bumps exactly one version while flipping
  // that relation's contents.
  const std::string q = "Q(*) := R, S";
  QueryOptions pinned;
  pinned.xjoin.attribute_order = {"A", "B", "C"};
  std::vector<Tuple> expected[2][2];
  expected[0][0] = db.Query(q, pinned)->ToTuples();
  ASSERT_TRUE(db.ApplyRelationDelta("S", DiffDelta(s0, s1)).ok());  // S v1
  expected[0][1] = db.Query(q, pinned)->ToTuples();
  ASSERT_TRUE(db.ApplyRelationDelta("R", DiffDelta(r0, r1)).ok());  // R v1
  expected[1][1] = db.Query(q, pinned)->ToTuples();
  ASSERT_TRUE(db.ApplyRelationDelta("S", DiffDelta(s1, s0)).ok());  // S v2
  expected[1][0] = db.Query(q, pinned)->ToTuples();
  ASSERT_TRUE(db.ApplyRelationDelta("R", DiffDelta(r1, r0)).ok());  // R v2
  ASSERT_NE(expected[0][0], expected[1][1]);

  const RelationDelta r_fwd = DiffDelta(r0, r1), r_back = DiffDelta(r1, r0);
  const RelationDelta s_fwd = DiffDelta(s0, s1), s_back = DiffDelta(s1, s0);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(6);  // gcc 12 -Werror: avoid the _M_realloc_insert FP
  threads.emplace_back([&] {
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      if (!db.ApplyRelationDelta("R", i % 2 == 0 ? r_fwd : r_back).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      if (!db.ApplyRelationDelta("S", i % 2 == 0 ? s_fwd : s_back).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        Session session = db.OpenSession();
        uint64_t rv = *session.relation_version("R");
        uint64_t sv = *session.relation_version("S");
        QueryOptions options = pinned;
        options.xjoin.num_threads = (i % 3 == 0) ? 2 : 1;
        auto first = session.Query(q, options);
        auto second = session.Query(q, options);
        if (!first.ok() || !second.ok() ||
            first->ToTuples() != expected[rv % 2][sv % 2] ||
            second->ToTuples() != first->ToTuples()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (size_t t = 2; t < threads.size(); ++t) threads[t].join();
  stop.store(true);
  threads[0].join();
  threads[1].join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(db.cache_stats().trie_patches, 0);
}

TEST_F(ServingTest, SnapshotPinsSurviveCompactionUnderLivePin) {
  // Regression: a session/prepared statement opened before a delta
  // keeps pinning the PRE-compaction trie object. Compaction must swap
  // in a new core (never fold in place), so evicting the cache and
  // compacting under the live pin cannot perturb the pinned snapshot.
  db_.SetTrieDeltaCompaction(0.0, 0);  // fold on every delta
  Session session = db_.OpenSession();
  auto prepared = session.Prepare(q_);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto expected = session.Execute(*prepared);
  ASSERT_TRUE(expected.ok());

  // Delta + forced compaction patches the cached tries; the pinned
  // plan must keep executing against the old core.
  RelationDelta delta;
  delta.inserts = {{db_.mutable_dictionary()->Intern("777"),
                    db_.mutable_dictionary()->Intern("777")}};
  ASSERT_TRUE(db_.ApplyRelationDelta("R", delta).ok());
  ASSERT_TRUE(db_.ApplyRelationDelta("S", delta).ok());
  EXPECT_GT(db_.cache_stats().trie_compactions, 0);

  auto after_patch = session.Execute(*prepared);
  ASSERT_TRUE(after_patch.ok());
  EXPECT_EQ(expected->ToTuples(), after_patch->ToTuples());

  // Evict everything; the pins alone keep the old storage alive.
  db_.ClearPlanCache();
  db_.ClearTrieCache();
  db_.SetTrieCacheBudget(0);
  auto after_evict = session.Execute(*prepared);
  ASSERT_TRUE(after_evict.ok());
  EXPECT_EQ(expected->ToTuples(), after_evict->ToTuples());
  auto session_query = session.Query(q_);
  ASSERT_TRUE(session_query.ok());
  EXPECT_EQ(expected->ToTuples(), session_query->ToTuples());

  // A fresh session sees the post-delta contents (one new join row).
  auto fresh = db_.OpenSession().Query(q_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->num_rows(), expected->num_rows() + 1);
}

TEST_F(ServingTest, PlanRebindKeepsPlansAcrossDeltaVersionBumps) {
  // Warm the plan cache, apply a delta, query again: the plan must be
  // re-pinned to the new trie versions (a rebind), not re-planned from
  // scratch, and the rebound entry must serve subsequent hits.
  ASSERT_TRUE(db_.Query(q_).ok());
  CacheStats warm = db_.cache_stats();
  RelationDelta delta;
  delta.inserts = {{db_.mutable_dictionary()->Intern("888"),
                    db_.mutable_dictionary()->Intern("888")}};
  ASSERT_TRUE(db_.ApplyRelationDelta("R", delta).ok());
  ASSERT_TRUE(db_.Query(q_).ok());
  CacheStats after = db_.cache_stats();
  EXPECT_EQ(after.plan_rebinds, warm.plan_rebinds + 1);
  EXPECT_EQ(after.plan_misses, warm.plan_misses);  // no full re-plan
  EXPECT_EQ(after.plan_entries, warm.plan_entries);
  ASSERT_TRUE(db_.Query(q_).ok());
  EXPECT_EQ(db_.cache_stats().plan_hits, after.plan_hits + 1);
}

TEST_F(ServingTest, BudgetMaxRowsReturnsResourceExhausted) {
  QueryOptions options;
  options.max_rows = 1;  // the join produces hundreds of rows
  auto result = db_.OpenSession().Query(q_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
}

TEST_F(ServingTest, BudgetMaxBytesReturnsResourceExhausted) {
  QueryOptions options;
  options.max_bytes = 8;  // one column of one row
  auto result = db_.OpenSession().Query(q_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ServingTest, BudgetDeadlineReturnsDeadlineExceeded) {
  QueryOptions options;
  options.deadline_micros = 1;  // any real execution takes longer
  auto result = db_.OpenSession().Query(q_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
}

TEST_F(ServingTest, UnlimitedBudgetMatchesLegacyApi) {
  QueryOptions unlimited;  // all budgets 0
  auto via_session = db_.OpenSession().Query(q_, unlimited);
  auto via_legacy = db_.Query(q_);
  ASSERT_TRUE(via_session.ok());
  ASSERT_TRUE(via_legacy.ok());
  EXPECT_EQ(via_session->ToTuples(), via_legacy->ToTuples());
}

TEST_F(ServingTest, BaselineEngineThroughUnifiedOptions) {
  // Explicit head: Q(*) leaves the column order engine-defined
  // (expansion order vs combine order), the projection normalizes it.
  const std::string q = "Q(A, B, C) := R, S";
  QueryOptions options;
  options.engine = Engine::kBaseline;
  auto baseline = db_.OpenSession().Query(q, options);
  auto xjoin = db_.OpenSession().Query(q);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_TRUE(xjoin.ok());
  // Same rows (order may differ between engines).
  auto lhs = baseline->ToTuples();
  auto rhs = xjoin->ToTuples();
  std::sort(lhs.begin(), lhs.end());
  std::sort(rhs.begin(), rhs.end());
  EXPECT_EQ(lhs, rhs);
  // Budgets apply to the baseline too (post-hoc).
  options.max_rows = 1;
  auto budgeted = db_.OpenSession().Query(q, options);
  ASSERT_FALSE(budgeted.ok());
  EXPECT_EQ(budgeted.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ServingTest, SessionPinsSurviveCacheEvictionAndUpdates) {
  Session session = db_.OpenSession();
  auto prepared = session.Prepare(q_);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto expected = session.Execute(*prepared);
  ASSERT_TRUE(expected.ok());

  // Evict everything the caches hold; the prepared statement's pins
  // must keep its tries and storage alive.
  db_.ClearPlanCache();
  db_.ClearTrieCache();
  db_.SetTrieCacheBudget(0);
  auto after_eviction = session.Execute(*prepared);
  ASSERT_TRUE(after_eviction.ok());
  EXPECT_EQ(expected->ToTuples(), after_eviction->ToTuples());

  // Replace both inputs; the statement still executes against the
  // snapshot it was prepared on.
  ASSERT_TRUE(db_.UpdateRelation("R", Relation((*db_.relation("R"))->schema()))
                  .ok());
  ASSERT_TRUE(db_.UpdateRelation("S", Relation((*db_.relation("S"))->schema()))
                  .ok());
  auto after_update = session.Execute(*prepared);
  ASSERT_TRUE(after_update.ok());
  EXPECT_EQ(expected->ToTuples(), after_update->ToTuples());
  // Session queries also still see the old snapshot...
  auto session_query = session.Query(q_);
  ASSERT_TRUE(session_query.ok());
  EXPECT_EQ(expected->ToTuples(), session_query->ToTuples());
  // ...while a fresh session sees the (now empty) relations.
  auto fresh = db_.OpenSession().Query(q_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->num_rows(), 0u);
}

TEST_F(ServingTest, OldSessionPlansDoNotPoisonTheCacheForNewSessions) {
  Session old_session = db_.OpenSession();
  ASSERT_TRUE(old_session.Query(q_).ok());  // seeds the cache at v0

  ASSERT_TRUE(db_.UpdateRelation("R", **db_.relation("R")).ok());  // v1

  // A new session must re-prepare (the cached plan is v0)...
  Session new_session = db_.OpenSession();
  ASSERT_TRUE(new_session.Query(q_).ok());
  CacheStats after_new = db_.cache_stats();

  // ...and the old session's private rebuilds must not evict or
  // replace the fresh entry: repeated old-session queries keep
  // building privately (no poisoning), repeated new-session queries
  // keep hitting.
  ASSERT_TRUE(old_session.Query(q_).ok());
  ASSERT_TRUE(new_session.Query(q_).ok());
  CacheStats final_stats = db_.cache_stats();
  EXPECT_EQ(final_stats.plan_hits, after_new.plan_hits + 1);
  EXPECT_EQ(final_stats.plan_entries, after_new.plan_entries);
}

TEST_F(ServingTest, CacheStatsMatchesLegacyGetters) {
  ASSERT_TRUE(db_.Query(q_).ok());
  ASSERT_TRUE(db_.Query(q_).ok());
  CacheStats stats = db_.cache_stats();
  EXPECT_EQ(stats.trie_entries, db_.TrieCacheSize());
  EXPECT_EQ(stats.trie_bytes, db_.trie_cache_bytes());
  EXPECT_EQ(stats.trie_hits, db_.trie_cache_hits());
  EXPECT_EQ(stats.trie_misses, db_.trie_cache_misses());
  EXPECT_EQ(stats.trie_evictions, db_.trie_cache_evictions());
  EXPECT_EQ(stats.plan_entries, db_.PlanCacheSize());
  EXPECT_EQ(stats.plan_hits, db_.plan_cache_hits());
  EXPECT_EQ(stats.plan_misses, db_.plan_cache_misses());
  EXPECT_EQ(stats.plan_invalidations, db_.plan_cache_invalidations());
  EXPECT_EQ(stats.plan_evictions, db_.plan_cache_evictions());
  EXPECT_GT(stats.plan_hits, 0);
  EXPECT_GT(stats.trie_misses, 0);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation.

TEST_F(ServingTest, SessionCancelFailsItsQueriesOnly) {
  Session session = db_.OpenSession();
  session.Cancel("tearing the session down");
  auto result = session.Query(q_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("tearing the session down"),
            std::string::npos)
      << result.status().ToString();
  // Other sessions and the one-shot API are unaffected.
  EXPECT_TRUE(db_.OpenSession().Query(q_).ok());
  EXPECT_TRUE(db_.Query(q_).ok());
}

TEST_F(ServingTest, PreparedCancelIsStatementScoped) {
  Session session = db_.OpenSession();
  auto doomed = session.Prepare(q_);
  auto healthy = session.Prepare(q_);
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(healthy.ok());
  doomed->Cancel();
  auto result = session.Execute(*doomed);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // The sibling statement and the session itself still work.
  EXPECT_TRUE(session.Execute(*healthy).ok());
  EXPECT_TRUE(session.Query(q_).ok());
}

TEST_F(ServingTest, OptionsTokenCancelsMidQueryFromAnotherThread) {
  // A join large enough that the canceller reliably lands mid-run; the
  // token makes it fail kCancelled instead of materializing ~3M rows.
  ASSERT_TRUE(
      db_.RegisterRelationCsv("RB", MakeCsv("A", "B", 3000, 3, 0)).ok());
  ASSERT_TRUE(
      db_.RegisterRelationCsv("SB", MakeCsv("C", "B", 3000, 3, 0)).ok());
  CancellationToken token;
  QueryOptions options;
  options.cancel = &token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.Cancel("operator abort");
  });
  auto result = db_.OpenSession().Query("QB(*) := RB, SB", options);
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  EXPECT_GE(db_.cache_stats().admission_cancelled, 1);
}

TEST_F(ServingTest, CancelledQueriesDoNotPoisonCaches) {
  const auto expected = db_.Query(q_)->ToTuples();
  CacheStats warm = db_.cache_stats();
  CancellationToken token;
  token.Cancel("cancelled before it started");
  QueryOptions options;
  options.cancel = &token;
  for (int i = 0; i < 3; ++i) {
    auto result = db_.OpenSession().Query(q_, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  // The warm plan/trie entries survive and still serve correct results.
  auto after = db_.OpenSession().Query(q_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->ToTuples(), expected);
  CacheStats stats = db_.cache_stats();
  EXPECT_EQ(stats.plan_entries, warm.plan_entries);
  EXPECT_EQ(stats.trie_entries, warm.trie_entries);
  EXPECT_EQ(stats.plan_invalidations, warm.plan_invalidations);
  EXPECT_GE(stats.admission_cancelled, 3);
}

TEST_F(ServingTest, CancellationTortureNeverYieldsPartialResults) {
  // Racing cancellers against live queries (the TSan CI target): every
  // outcome must be either the complete, correct result or a clean
  // typed kCancelled — never a partial OK and never a data race.
  const auto expected = db_.Query(q_)->ToTuples();
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 15; ++i) {
        CancellationToken token;
        std::thread canceller([&] {
          std::this_thread::sleep_for(
              std::chrono::microseconds((t * 37 + i * 13) % 150));
          token.Cancel("torture");
        });
        QueryOptions options;
        options.cancel = &token;
        options.xjoin.num_threads = (i % 2 == 0) ? 2 : 1;
        auto result = db_.OpenSession().Query(q_, options);
        canceller.join();
        if (result.ok()) {
          if (result->ToTuples() != expected) failures.fetch_add(1);
        } else if (result.status().code() != StatusCode::kCancelled) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// TenantPool admission gate (unit level, no database).

TEST(TenantPoolTest, AdmitsUpToLimitThenQueuesFifo) {
  TenantPoolOptions options;
  options.max_concurrent = 1;
  options.max_queue_depth = 4;
  options.queue_deadline_micros = 5 * 1000 * 1000;
  TenantPool pool("p", options);
  ASSERT_TRUE(pool.Admit(nullptr).ok());

  std::atomic<int> order{0};
  std::atomic<int> first_pos{-1};
  std::atomic<int> second_pos{-1};
  std::thread first([&] {
    bool queued = false;
    EXPECT_TRUE(pool.Admit(nullptr, &queued).ok());
    EXPECT_TRUE(queued);
    first_pos.store(order.fetch_add(1));
    pool.Release();
  });
  while (pool.stats().waiting < 1) std::this_thread::yield();
  std::thread second([&] {
    bool queued = false;
    EXPECT_TRUE(pool.Admit(nullptr, &queued).ok());
    EXPECT_TRUE(queued);
    second_pos.store(order.fetch_add(1));
    pool.Release();
  });
  while (pool.stats().waiting < 2) std::this_thread::yield();

  pool.Release();  // frees the slot: first must win, then second
  first.join();
  second.join();
  EXPECT_LT(first_pos.load(), second_pos.load());
  TenantPoolStats stats = pool.stats();
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.queued, 2);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.running, 0);
  EXPECT_EQ(stats.waiting, 0);
}

TEST(TenantPoolTest, QueueFullAndQueueDeadlineRejectTyped) {
  TenantPoolOptions no_queue;
  no_queue.max_concurrent = 1;
  no_queue.max_queue_depth = 0;
  TenantPool pool("edge", no_queue);
  ASSERT_TRUE(pool.Admit(nullptr).ok());
  Status full = pool.Admit(nullptr);
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(full.ToString().find("saturated"), std::string::npos)
      << full.ToString();
  pool.Release();

  TenantPoolOptions short_wait;
  short_wait.max_concurrent = 1;
  short_wait.max_queue_depth = 2;
  short_wait.queue_deadline_micros = 2000;
  TenantPool slow("slow", short_wait);
  ASSERT_TRUE(slow.Admit(nullptr).ok());
  bool queued = false;
  Status timeout = slow.Admit(nullptr, &queued);
  EXPECT_TRUE(queued);
  EXPECT_EQ(timeout.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(timeout.ToString().find("timed out"), std::string::npos)
      << timeout.ToString();
  slow.Release();
  EXPECT_EQ(pool.stats().rejected, 1);
  EXPECT_EQ(slow.stats().rejected, 1);
}

TEST(TenantPoolTest, CancelWhileQueuedCountsCancelledAndUnblocksPeers) {
  TenantPoolOptions options;
  options.max_concurrent = 1;
  options.max_queue_depth = 4;
  options.queue_deadline_micros = 5 * 1000 * 1000;
  TenantPool pool("p", options);
  ASSERT_TRUE(pool.Admit(nullptr).ok());

  CancellationToken token;
  BudgetTracker budget;
  budget.AddCancelSource(&token);
  Status status;
  std::thread waiter([&] { status = pool.Admit(&budget); });
  while (pool.stats().waiting < 1) std::this_thread::yield();
  token.Cancel("client went away");
  waiter.join();
  EXPECT_EQ(status.code(), StatusCode::kCancelled) << status.ToString();
  EXPECT_NE(status.ToString().find("while queued for tenant pool 'p'"),
            std::string::npos)
      << status.ToString();
  TenantPoolStats stats = pool.stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.waiting, 0);
  pool.Release();
}

// ---------------------------------------------------------------------------
// Tenant admission through the database.

TEST_F(ServingTest, UnknownTenantIsNotFound) {
  QueryOptions options;
  options.tenant = "nobody";
  auto result = db_.OpenSession().Query(q_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().ToString().find("CreateTenantPool"),
            std::string::npos);
}

TEST_F(ServingTest, TenantPoolRegistryCrud) {
  EXPECT_TRUE(db_.TenantPoolNames().empty());
  ASSERT_TRUE(db_.CreateTenantPool("acme").ok());
  ASSERT_TRUE(db_.CreateTenantPool("initech").ok());
  EXPECT_EQ(db_.CreateTenantPool("acme").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(db_.TenantPoolNames(),
            (std::vector<std::string>{"acme", "initech"}));
  EXPECT_EQ(db_.tenant_pool_stats("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.RemoveTenantPool("ghost").code(), StatusCode::kNotFound);

  // History folds into the db-wide totals on removal.
  QueryOptions options;
  options.tenant = "acme";
  ASSERT_TRUE(db_.OpenSession().Query(q_, options).ok());
  int64_t admitted_before = db_.cache_stats().admission_admitted;
  ASSERT_TRUE(db_.RemoveTenantPool("acme").ok());
  EXPECT_EQ(db_.cache_stats().admission_admitted, admitted_before);
  EXPECT_EQ(db_.TenantPoolNames(), (std::vector<std::string>{"initech"}));
}

TEST_F(ServingTest, SaturatedPoolRejectsWithQueueContext) {
  TenantPoolOptions popt;
  popt.max_concurrent = 1;
  popt.max_queue_depth = 0;  // saturation rejects outright
  ASSERT_TRUE(db_.CreateTenantPool("acme", popt).ok());
  ASSERT_TRUE(
      db_.RegisterRelationCsv("RB", MakeCsv("A", "B", 3000, 3, 0)).ok());
  ASSERT_TRUE(
      db_.RegisterRelationCsv("SB", MakeCsv("C", "B", 3000, 3, 0)).ok());

  CancellationToken blocker_token;
  QueryOptions blocker_options;
  blocker_options.tenant = "acme";
  blocker_options.cancel = &blocker_token;
  std::atomic<bool> blocker_done{false};
  std::thread blocker([&] {
    // Holds the pool's only slot until cancelled (the join would
    // otherwise materialize ~3M rows).
    auto result = db_.OpenSession().Query("QB(*) := RB, SB", blocker_options);
    EXPECT_FALSE(result.ok());
    blocker_done.store(true);
  });
  while (!blocker_done.load() &&
         (*db_.tenant_pool_stats("acme")).running < 1) {
    std::this_thread::yield();
  }
  if (blocker_done.load()) {
    blocker.join();
    FAIL() << "blocker finished before saturation was observed";
  }

  QueryOptions options;
  options.tenant = "acme";
  auto rejected = db_.OpenSession().Query(q_, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status().ToString();
  EXPECT_NE(rejected.status().ToString().find("saturated"), std::string::npos)
      << rejected.status().ToString();

  blocker_token.Cancel("test done");
  blocker.join();
  TenantPoolStats stats = *db_.tenant_pool_stats("acme");
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.running, 0);
}

TEST_F(ServingTest, QueuedQueryTimesOutWithTypedError) {
  TenantPoolOptions popt;
  popt.max_concurrent = 1;
  popt.max_queue_depth = 4;
  popt.queue_deadline_micros = 3000;
  ASSERT_TRUE(db_.CreateTenantPool("acme", popt).ok());
  ASSERT_TRUE(
      db_.RegisterRelationCsv("RB", MakeCsv("A", "B", 3000, 3, 0)).ok());
  ASSERT_TRUE(
      db_.RegisterRelationCsv("SB", MakeCsv("C", "B", 3000, 3, 0)).ok());

  CancellationToken blocker_token;
  QueryOptions blocker_options;
  blocker_options.tenant = "acme";
  blocker_options.cancel = &blocker_token;
  std::atomic<bool> blocker_done{false};
  std::thread blocker([&] {
    (void)db_.OpenSession().Query("QB(*) := RB, SB", blocker_options);
    blocker_done.store(true);
  });
  while (!blocker_done.load() &&
         (*db_.tenant_pool_stats("acme")).running < 1) {
    std::this_thread::yield();
  }
  if (blocker_done.load()) {
    blocker.join();
    FAIL() << "blocker finished before saturation was observed";
  }

  QueryOptions options;
  options.tenant = "acme";
  auto timed_out = db_.OpenSession().Query(q_, options);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(timed_out.status().ToString().find("timed out"),
            std::string::npos)
      << timed_out.status().ToString();
  blocker_token.Cancel("test done");
  blocker.join();
  EXPECT_EQ((*db_.tenant_pool_stats("acme")).queued, 1);
}

TEST_F(ServingTest, AggregateCeilingTripsAndDrains) {
  TenantPoolOptions popt;
  popt.max_inflight_rows = 50;  // q_ materializes hundreds of rows
  ASSERT_TRUE(db_.CreateTenantPool("tiny", popt).ok());
  QueryOptions options;
  options.tenant = "tiny";
  auto result = db_.OpenSession().Query(q_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().ToString().find("tenant pool 'tiny'"),
            std::string::npos)
      << result.status().ToString();
  // The failed query's charges were released: the pool drained and a
  // differently-limited pool admits the same query fine.
  EXPECT_EQ((*db_.tenant_pool_stats("tiny")).inflight_rows, 0);
  EXPECT_EQ((*db_.tenant_pool_stats("tiny")).inflight_bytes, 0);
  ASSERT_TRUE(db_.CreateTenantPool("roomy").ok());
  options.tenant = "roomy";
  EXPECT_TRUE(db_.OpenSession().Query(q_, options).ok());
}

TEST_F(ServingTest, AdmissionCountersSurfaceEverywhere) {
  ASSERT_TRUE(db_.CreateTenantPool("acme").ok());
  Session session = db_.OpenSession();
  QueryOptions tenanted;
  tenanted.tenant = "acme";
  ASSERT_TRUE(session.Query(q_, tenanted).ok());
  ASSERT_TRUE(session.Query(q_).ok());  // pool-less admission

  CacheStats stats = db_.cache_stats();
  EXPECT_GE(stats.admission_admitted, 2);
  EXPECT_EQ(stats.admission_rejected, 0);
  TenantPoolStats pool = *db_.tenant_pool_stats("acme");
  EXPECT_EQ(pool.admitted, 1);
  EXPECT_EQ(pool.running, 0);

  // Explain surfaces the same counters.
  auto explain = session.Explain(q_);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("admission:"), std::string::npos) << *explain;

  // Per-query metrics carry the admitted marker.
  Metrics metrics;
  QueryOptions with_metrics;
  with_metrics.metrics = &metrics;
  ASSERT_TRUE(session.Query(q_, with_metrics).ok());
  EXPECT_EQ(metrics.Get("db.admission.admitted"), 1);
}

// ---------------------------------------------------------------------------
// Drain paths of the network front-end: the same serving core behind a
// live loopback socket. The scenarios that cannot be reached from the
// in-process API — shutdown racing queued and executing requests,
// clients vanishing mid-query — land here.

// Connects to `server` and sends `query` without reading the reply;
// returns the raw fd (caller closes).
int SendRawQuery(const net::XJoinServer& server, const std::string& query) {
  auto fd = net::ConnectTcp("127.0.0.1", server.port(),
                            net::SteadyNowMicros() + 2'000'000);
  EXPECT_TRUE(fd.ok()) << fd.status().ToString();
  if (!fd.ok()) return -1;
  net::QueryRequest request;
  request.text = query;
  const Status wrote =
      net::WriteFrame(*fd, net::FrameType::kQuery,
                      net::EncodeQueryRequest(request),
                      net::SteadyNowMicros() + 2'000'000);
  EXPECT_TRUE(wrote.ok()) << wrote.ToString();
  return *fd;
}

// Reads one kError frame off `fd` and returns the decoded Status.
Status ReadErrorReply(int fd) {
  auto reply = net::ReadFrame(fd, net::SteadyNowMicros() + 10'000'000);
  EXPECT_TRUE(reply.ok()) << reply.status().ToString();
  if (!reply.ok()) return reply.status();
  EXPECT_EQ(reply->first.type, net::FrameType::kError);
  Status decoded;
  const Status parsed = net::DecodeErrorStatus(reply->second, &decoded);
  EXPECT_TRUE(parsed.ok()) << parsed.ToString();
  return parsed.ok() ? decoded : parsed;
}

class NetDrainTest : public ServingTest {
 protected:
  void SetUp() override {
    ServingTest::SetUp();
    // The blocker join (~3M output rows) holds a worker busy long
    // enough for shutdown and disconnect races to be forced.
    ASSERT_TRUE(
        db_.RegisterRelationCsv("RB", MakeCsv("A", "B", 3000, 3, 0)).ok());
    ASSERT_TRUE(
        db_.RegisterRelationCsv("SB", MakeCsv("C", "B", 3000, 3, 0)).ok());
  }

  void StartServer(net::ServerOptions options) {
    server_ = std::make_unique<net::XJoinServer>(&db_, options);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  bool WaitFor(const std::function<bool()>& pred, int64_t timeout_micros) {
    const int64_t deadline = net::SteadyNowMicros() + timeout_micros;
    while (net::SteadyNowMicros() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
  }

  std::unique_ptr<net::XJoinServer> server_;
  const std::string blocker_q_ = "QB(*) := RB, SB";
};

TEST_F(NetDrainTest, ShutdownWhileRunningCancelsAtDrainDeadline) {
  net::ServerOptions options;
  options.num_workers = 1;
  StartServer(options);
  const int blocker = SendRawQuery(*server_, blocker_q_);
  ASSERT_GE(blocker, 0);
  ASSERT_TRUE(WaitFor([&] { return server_->stats().inflight >= 1; },
                      5'000'000))
      << "blocker query never started executing";

  // The drain deadline is far shorter than the blocker join: phase 1
  // expires, phase 2 cancels the in-flight token, and the client reads
  // a typed kCancelled before the socket closes.
  server_->Shutdown(/*drain_deadline_micros=*/25'000);
  if (server_->stats().cancelled_drain == 0) {
    ::close(blocker);
    FAIL() << "blocker finished before the drain deadline was enforced";
  }
  const Status cancelled = ReadErrorReply(blocker);
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled)
      << cancelled.ToString();
  EXPECT_NE(cancelled.ToString().find("drain deadline"), std::string::npos)
      << cancelled.ToString();
  ::close(blocker);
  EXPECT_EQ(server_->stats().inflight, 0);
}

TEST_F(NetDrainTest, ShutdownWhileQueuedCancelsTheQueuedRequestToo) {
  net::ServerOptions options;
  options.num_workers = 1;  // the second request must queue
  options.max_inflight = 4;
  StartServer(options);
  const int running = SendRawQuery(*server_, blocker_q_);
  ASSERT_GE(running, 0);
  ASSERT_TRUE(WaitFor([&] { return server_->stats().inflight >= 1; },
                      5'000'000));
  const int queued = SendRawQuery(*server_, blocker_q_);
  ASSERT_GE(queued, 0);
  ASSERT_TRUE(WaitFor([&] { return server_->stats().inflight >= 2; },
                      5'000'000))
      << "second request never reached the queue";

  server_->Shutdown(/*drain_deadline_micros=*/25'000);
  if (server_->stats().cancelled_drain == 0) {
    ::close(running);
    ::close(queued);
    FAIL() << "blockers finished before the drain deadline was enforced";
  }
  // Both the executing and the still-queued request end kCancelled —
  // the queued one runs against an already-cancelled token and unwinds
  // immediately.
  EXPECT_EQ(ReadErrorReply(running).code(), StatusCode::kCancelled);
  EXPECT_EQ(ReadErrorReply(queued).code(), StatusCode::kCancelled);
  ::close(running);
  ::close(queued);
  EXPECT_EQ(server_->stats().inflight, 0);
  EXPECT_GE(server_->stats().cancelled_drain, 2);
}

TEST_F(NetDrainTest, ClientDisconnectMidQueryCancelsCooperatively) {
  net::ServerOptions options;
  options.num_workers = 1;
  StartServer(options);
  const int blocker = SendRawQuery(*server_, blocker_q_);
  ASSERT_GE(blocker, 0);
  ASSERT_TRUE(WaitFor([&] { return server_->stats().inflight >= 1; },
                      5'000'000));

  // Hang up without reading: the event loop notices, cancels the
  // request token, and the engine unwinds within one budget-check
  // interval — long before the join would have finished.
  ::close(blocker);
  EXPECT_TRUE(WaitFor(
      [&] {
        const net::ServerStats stats = server_->stats();
        return stats.cancelled_disconnect >= 1 && stats.inflight == 0;
      },
      10'000'000))
      << "disconnect did not cancel the in-flight query";

  // The serving core is unharmed: a clean request still answers.
  const int fd = SendRawQuery(*server_, q_);
  ASSERT_GE(fd, 0);
  auto reply = net::ReadFrame(fd, net::SteadyNowMicros() + 10'000'000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->first.type, net::FrameType::kResult);
  ::close(fd);
  server_->Shutdown();
}

TEST_F(NetDrainTest, DisconnectTortureLeavesServerConsistent) {
  // TSan leg: a storm of connections that vanish at every stage of the
  // request lifecycle — before writing, mid-header, after the query is
  // queued or executing — must leave no race, no leaked connection,
  // and a server that still answers correctly.
  net::ServerOptions options;
  options.num_workers = 2;
  StartServer(options);
  for (int i = 0; i < 30; ++i) {
    auto fd = net::ConnectTcp("127.0.0.1", server_->port(),
                              net::SteadyNowMicros() + 2'000'000);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    switch (i % 4) {
      case 0:  // connect, say nothing, vanish
        break;
      case 1: {  // torn header, then vanish
        const uint8_t half[6] = {0x49, 0x4f, 0x4a, 0x58, 1, 1};
        (void)net::WriteFull(*fd, half, sizeof(half),
                             net::SteadyNowMicros() + 1'000'000);
        break;
      }
      case 2: {  // cheap query, vanish without reading the result
        net::QueryRequest request;
        request.text = q_;
        (void)net::WriteFrame(*fd, net::FrameType::kQuery,
                              net::EncodeQueryRequest(request),
                              net::SteadyNowMicros() + 1'000'000);
        break;
      }
      case 3: {  // expensive query, vanish mid-execution
        net::QueryRequest request;
        request.text = blocker_q_;
        (void)net::WriteFrame(*fd, net::FrameType::kQuery,
                              net::EncodeQueryRequest(request),
                              net::SteadyNowMicros() + 1'000'000);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        break;
      }
    }
    ::close(*fd);
  }
  // Every in-flight remnant drains (disconnect cancellation), and the
  // server still serves a correct answer afterwards.
  EXPECT_TRUE(WaitFor([&] { return server_->stats().inflight == 0; },
                      30'000'000));
  const auto expected = db_.Query(q_)->ToTuples();
  const int fd = SendRawQuery(*server_, q_);
  ASSERT_GE(fd, 0);
  auto reply = net::ReadFrame(fd, net::SteadyNowMicros() + 10'000'000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->first.type, net::FrameType::kResult);
  auto rows = net::DecodeQueryResultSet(reply->second);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), expected.size());
  ::close(fd);
  server_->Shutdown();
  const net::ServerStats stats = server_->stats();
  EXPECT_EQ(stats.active_connections, 0);
  EXPECT_EQ(stats.inflight, 0);
}

#ifdef XJOIN_FAULTS_ENABLED
// ---------------------------------------------------------------------------
// Deterministic fault injection (XJOIN_FAULTS=ON builds only).

TEST_F(ServingTest, FaultTrieBuildFailsQueryWithoutPoisoningCache) {
  ScopedFaultInjection scoped;
  FaultInjector::Global().FailAt("trie.build", 1);
  auto result = db_.OpenSession().Query(q_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal)
      << result.status().ToString();
  EXPECT_GE(FaultInjector::Global().hits("trie.build"), 1);
  // Nothing broken was cached: disarmed, the same query succeeds.
  FaultInjector::Global().Disarm();
  EXPECT_TRUE(db_.OpenSession().Query(q_).ok());
}

TEST_F(ServingTest, FaultCompactionFailureLeavesOldVersionIntact) {
  ScopedFaultInjection scoped;
  const auto before = db_.Query(q_)->ToTuples();
  const uint64_t version = *db_.relation_version("R");
  FaultInjector::Global().FailAt("trie.compact", 1);
  RelationDelta delta;
  delta.inserts = {{db_.mutable_dictionary()->Intern("777"),
                    db_.mutable_dictionary()->Intern("777")}};
  Status status = db_.ApplyRelationDelta("R", delta);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal) << status.ToString();
  // The failed update never published: same version, same answers.
  FaultInjector::Global().Disarm();
  EXPECT_EQ(*db_.relation_version("R"), version);
  EXPECT_EQ(db_.Query(q_)->ToTuples(), before);
  // And the stream recovers once the fault clears.
  ASSERT_TRUE(db_.ApplyRelationDelta("R", delta).ok());
  EXPECT_EQ(*db_.relation_version("R"), version + 1);
}

TEST_F(ServingTest, FaultForcedQueueFullRejectsThenRecovers) {
  ScopedFaultInjection scoped;
  ASSERT_TRUE(db_.CreateTenantPool("acme").ok());
  FaultInjector::Global().FailAt("admission.queue_full", 1);
  QueryOptions options;
  options.tenant = "acme";
  auto rejected = db_.OpenSession().Query(q_, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status().ToString().find("saturated"),
            std::string::npos);
  FaultInjector::Global().Disarm();
  EXPECT_TRUE(db_.OpenSession().Query(q_, options).ok());
  EXPECT_EQ((*db_.tenant_pool_stats("acme")).rejected, 1);
}

TEST_F(ServingTest, FaultMorselHandoffFailsQueryWithTypedInternal) {
  // A dropped morsel hand-off must never surface as a silently partial
  // result: the barrier notices the missing shard and the whole query
  // fails kInternal.
  ScopedFaultInjection scoped;
  const auto expected = db_.Query(q_)->ToTuples();
  QueryOptions options;
  options.xjoin.num_threads = 4;  // the site lives in the sharded driver
  FaultInjector::Global().FailAt("gj.morsel", 1);
  auto result = db_.OpenSession().Query(q_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal)
      << result.status().ToString();
  EXPECT_GE(FaultInjector::Global().hits("gj.morsel"), 1);
  FaultInjector::Global().Disarm();
  auto calm = db_.OpenSession().Query(q_, options);
  ASSERT_TRUE(calm.ok());
  EXPECT_EQ(calm->ToTuples(), expected);
}

TEST_F(ServingTest, FaultResultMergeFailureIsTypedAndRecoverable) {
  ScopedFaultInjection scoped;
  const auto expected = db_.Query(q_)->ToTuples();
  QueryOptions options;
  options.xjoin.num_threads = 4;
  FaultInjector::Global().FailAt("gj.result_merge", 1);
  auto result = db_.OpenSession().Query(q_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal)
      << result.status().ToString();
  EXPECT_GE(FaultInjector::Global().hits("gj.result_merge"), 1);
  FaultInjector::Global().Disarm();
  auto calm = db_.OpenSession().Query(q_, options);
  ASSERT_TRUE(calm.ok());
  EXPECT_EQ(calm->ToTuples(), expected);
}

TEST_F(ServingTest, FaultTickHandlerCancelsDeterministicallyMidQuery) {
  // The gj.tick observer fires at the engine's budget-poll cadence;
  // cancelling there proves a mid-expansion Cancel() aborts within one
  // budget-check interval instead of running the ~3M-row join dry.
  ScopedFaultInjection scoped;
  ASSERT_TRUE(
      db_.RegisterRelationCsv("RB", MakeCsv("A", "B", 3000, 3, 0)).ok());
  ASSERT_TRUE(
      db_.RegisterRelationCsv("SB", MakeCsv("C", "B", 3000, 3, 0)).ok());
  CancellationToken token;
  FaultInjector::Global().SetHandler(
      "gj.tick", [&token](int64_t) { token.Cancel("tick handler"); });
  QueryOptions options;
  options.cancel = &token;
  auto result = db_.OpenSession().Query("QB(*) := RB, SB", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  EXPECT_GE(FaultInjector::Global().hits("gj.tick"), 1);
}

TEST_F(ServingTest, FaultSeededChaosAlwaysReturnsTypedStatuses) {
  // Seeded chaos sweep (CI varies XJOIN_FAULT_SEED): with every site
  // failing at p=0.05, each query must still end in either the exact
  // correct result or a clean typed error — never a crash, a partial
  // result, or a poisoned cache.
  ScopedFaultInjection scoped;
  const auto expected = db_.Query(q_)->ToTuples();
  // Hardened parse: a garbled XJOIN_FAULT_SEED warns and falls back
  // deterministically instead of silently wrapping.
  const uint64_t seed = EnvUint64OrDefault("XJOIN_FAULT_SEED", 42);
  FaultInjector::Global().SetSeed(seed, 0.05);
  for (int i = 0; i < 50; ++i) {
    if (i % 7 == 0) db_.ClearTrieCache();  // force rebuilds through faults
    auto result = db_.OpenSession().Query(q_);
    if (result.ok()) {
      EXPECT_EQ(result->ToTuples(), expected) << "iteration " << i;
    } else {
      StatusCode code = result.status().code();
      EXPECT_TRUE(code == StatusCode::kInternal ||
                  code == StatusCode::kResourceExhausted ||
                  code == StatusCode::kCancelled)
          << "iteration " << i << ": " << result.status().ToString();
    }
  }
  // After the storm: a clean run still answers correctly.
  FaultInjector::Global().Disarm();
  auto calm = db_.OpenSession().Query(q_);
  ASSERT_TRUE(calm.ok());
  EXPECT_EQ(calm->ToTuples(), expected);
}
#endif  // XJOIN_FAULTS_ENABLED

}  // namespace
}  // namespace xjoin
