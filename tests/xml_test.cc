#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xml/serialize.h"

namespace xjoin {
namespace {

TEST(XmlBuilderTest, BuildsTreeWithRegions) {
  XmlDocumentBuilder b;
  b.StartElement("a");
  b.StartElement("b");
  b.AddText("  hello ");
  auto st = b.EndElement();
  ASSERT_TRUE(st.ok());
  b.AddLeaf("c", "world");
  ASSERT_TRUE(b.EndElement().ok());
  auto doc = b.Finish();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->num_nodes(), 3u);
  EXPECT_EQ(doc->TagName(0), "a");
  EXPECT_EQ(doc->node(1).text, "hello");
  EXPECT_EQ(doc->node(2).text, "world");
  EXPECT_EQ(doc->node(0).subtree_end, 2);
  EXPECT_EQ(doc->node(1).level, 1);
  EXPECT_TRUE(doc->IsAncestor(0, 1));
  EXPECT_TRUE(doc->IsParent(0, 2));
  EXPECT_FALSE(doc->IsAncestor(1, 2));
  EXPECT_TRUE(doc->Validate().ok());
}

TEST(XmlBuilderTest, RejectsUnbalanced) {
  XmlDocumentBuilder b;
  b.StartElement("a");
  EXPECT_FALSE(b.Finish().ok());  // still open
}

TEST(XmlBuilderTest, RejectsEmptyAndMultiRoot) {
  {
    XmlDocumentBuilder b;
    EXPECT_FALSE(b.Finish().ok());
  }
  {
    XmlDocumentBuilder b;
    b.AddLeaf("a", "");
    b.AddLeaf("b", "");
    EXPECT_FALSE(b.Finish().ok());
  }
}

TEST(XmlBuilderTest, EndElementAtDepthZeroFails) {
  XmlDocumentBuilder b;
  EXPECT_FALSE(b.EndElement().ok());
}

TEST(XmlDocumentTest, ChildrenAndNodesWithTag) {
  XmlDocumentBuilder b;
  b.StartElement("r");
  b.AddLeaf("x", "1");
  b.AddLeaf("y", "2");
  b.AddLeaf("x", "3");
  ASSERT_TRUE(b.EndElement().ok());
  auto doc = b.Finish();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Children(0).size(), 3u);
  int32_t x = doc->LookupTag("x");
  EXPECT_EQ(doc->NodesWithTag(x).size(), 2u);
  EXPECT_EQ(doc->LookupTag("zzz"), -1);
}

TEST(XmlParserTest, ParsesElementsAndText) {
  auto doc = ParseXml("<a><b>hi</b><c/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->num_nodes(), 3u);
  EXPECT_EQ(doc->node(1).text, "hi");
  EXPECT_TRUE(doc->Validate().ok());
}

TEST(XmlParserTest, AttributesBecomeChildren) {
  auto doc = ParseXml("<a id=\"7\" name='x'><b/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // a, @id, @name, b
  EXPECT_EQ(doc->num_nodes(), 4u);
  EXPECT_EQ(doc->TagName(1), "@id");
  EXPECT_EQ(doc->node(1).text, "7");
  EXPECT_EQ(doc->TagName(2), "@name");
}

TEST(XmlParserTest, EntitiesAndCharRefs) {
  auto doc = ParseXml("<a>x &amp; y &lt;z&gt; &#65;&#x42;</a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->node(0).text, "x & y <z> AB");
}

TEST(XmlParserTest, CdataAndComments) {
  auto doc = ParseXml("<a><!-- c --><![CDATA[<raw&>]]></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->node(0).text, "<raw&>");
}

TEST(XmlParserTest, PrologAndDoctypeSkipped) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a>t</a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->node(0).text, "t");
}

TEST(XmlParserTest, Errors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());                 // unterminated
  EXPECT_FALSE(ParseXml("<a></b>").ok());             // mismatch
  EXPECT_FALSE(ParseXml("<a>x</a><b/>").ok());        // two roots
  EXPECT_FALSE(ParseXml("<a attr></a>").ok());        // attr without value
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>").ok());    // bad entity
  EXPECT_FALSE(ParseXml("<a>&#xZZ;</a>").ok());       // bad char ref
  EXPECT_FALSE(ParseXml("plain text").ok());
}

TEST(XmlParserTest, ErrorsCarryPosition) {
  auto r = ParseXml("<a>\n<b></c>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("2:"), std::string::npos)
      << r.status().ToString();
}

TEST(XmlSerializeTest, EscapesSpecials) {
  EXPECT_EQ(EscapeXml("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(XmlSerializeTest, RoundTripsThroughParser) {
  const char* input =
      "<site version=\"1\"><item id=\"i1\"><name>Tom &amp; Co</name>"
      "<empty/></item><note>n1</note></site>";
  auto doc = ParseXml(input);
  ASSERT_TRUE(doc.ok());
  std::string text = WriteXml(*doc);
  auto doc2 = ParseXml(text);
  ASSERT_TRUE(doc2.ok()) << doc2.status().ToString() << "\n" << text;
  ASSERT_EQ(doc2->num_nodes(), doc->num_nodes());
  for (size_t i = 0; i < doc->num_nodes(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    EXPECT_EQ(doc2->TagName(id), doc->TagName(id));
    EXPECT_EQ(doc2->node(id).text, doc->node(id).text);
    EXPECT_EQ(doc2->node(id).parent, doc->node(id).parent);
  }
}

// Property: random documents validate, and region encoding agrees with
// the parent-pointer definition of ancestry.
class RegionEncodingProperty : public ::testing::TestWithParam<int> {};

TEST_P(RegionEncodingProperty, ContainmentMatchesParentChains) {
  Rng rng(3000 + static_cast<uint64_t>(GetParam()));
  auto doc = testing::RandomDocument(&rng, 2 + rng.NextBounded(40),
                                     {"a", "b", "c"}, 4);
  ASSERT_TRUE(doc->Validate().ok());
  const size_t n = doc->num_nodes();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      NodeId a = static_cast<NodeId>(i), d = static_cast<NodeId>(j);
      // Reference: walk parent pointers.
      bool expected = false;
      for (NodeId cur = doc->node(d).parent; cur != kNullNode;
           cur = doc->node(cur).parent) {
        if (cur == a) {
          expected = true;
          break;
        }
      }
      EXPECT_EQ(doc->IsAncestor(a, d), expected) << "a=" << a << " d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, RegionEncodingProperty,
                         ::testing::Range(0, 15));

// Property: serialize-then-parse preserves random documents.
class SerializeRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(SerializeRoundTripProperty, PreservesStructure) {
  Rng rng(4000 + static_cast<uint64_t>(GetParam()));
  auto doc = testing::RandomDocument(&rng, 2 + rng.NextBounded(30),
                                     {"x", "y", "z"}, 5);
  std::string text = WriteXml(*doc);
  auto doc2 = ParseXml(text);
  ASSERT_TRUE(doc2.ok()) << text;
  ASSERT_EQ(doc2->num_nodes(), doc->num_nodes());
  for (size_t i = 0; i < doc->num_nodes(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    EXPECT_EQ(doc2->TagName(id), doc->TagName(id));
    EXPECT_EQ(doc2->node(id).text, doc->node(id).text);
    EXPECT_EQ(doc2->node(id).subtree_end, doc->node(id).subtree_end);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SerializeRoundTripProperty,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace xjoin
