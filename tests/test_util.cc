#include "tests/test_util.h"

#include <unordered_set>

namespace xjoin::testing {

Relation NaiveNaturalJoin(const std::vector<const Relation*>& inputs) {
  // Output schema: union of attributes, first appearance order.
  std::vector<std::string> attrs;
  for (const Relation* r : inputs) {
    for (const auto& a : r->schema().attributes()) {
      bool seen = false;
      for (const auto& existing : attrs) {
        if (existing == a) {
          seen = true;
          break;
        }
      }
      if (!seen) attrs.push_back(a);
    }
  }
  auto out_schema = Schema::Make(attrs);
  Relation out(*out_schema);

  // Recursive nested loops.
  Tuple binding(attrs.size());
  std::vector<bool> bound(attrs.size(), false);
  auto attr_index = [&](const std::string& name) {
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == name) return i;
    }
    return attrs.size();
  };

  std::vector<std::vector<size_t>> col_to_global(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (const auto& a : inputs[i]->schema().attributes()) {
      col_to_global[i].push_back(attr_index(a));
    }
  }

  auto recurse = [&](auto&& self, size_t input_idx) -> void {
    if (input_idx == inputs.size()) {
      out.AppendRow(binding);
      return;
    }
    const Relation& rel = *inputs[input_idx];
    for (size_t r = 0; r < rel.num_rows(); ++r) {
      bool compatible = true;
      std::vector<size_t> newly_bound;
      for (size_t c = 0; c < rel.num_columns(); ++c) {
        size_t g = col_to_global[input_idx][c];
        if (bound[g]) {
          if (binding[g] != rel.at(r, c)) {
            compatible = false;
            break;
          }
        } else {
          binding[g] = rel.at(r, c);
          bound[g] = true;
          newly_bound.push_back(g);
        }
      }
      if (compatible) self(self, input_idx + 1);
      for (size_t g : newly_bound) bound[g] = false;
    }
  };
  if (!inputs.empty()) recurse(recurse, 0);
  out.SortAndDedup();
  return out;
}

}  // namespace xjoin::testing
