#include <gtest/gtest.h>

#include "relational/aggregate.h"

namespace xjoin {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  AggregateTest() : rel_(*Schema::Make({"cat", "price"})) {
    auto add = [&](const char* cat, const char* price) {
      rel_.AppendRow({dict_.Intern(cat), dict_.Intern(price)});
    };
    add("a", "10");
    add("a", "20");
    add("a", "10");
    add("b", "5.5");
  }

  int64_t Code(const char* s) { return dict_.Lookup(s); }

  Dictionary dict_;
  Relation rel_;
};

TEST_F(AggregateTest, CountPerGroup) {
  auto out = GroupBy(rel_, {"cat"}, {{AggregateFunction::kCount, "", "n"}},
                     &dict_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_TRUE(out->ContainsRow({Code("a"), Code("3")}));
  EXPECT_TRUE(out->ContainsRow({Code("b"), Code("1")}));
}

TEST_F(AggregateTest, SumMinMaxAvg) {
  auto out = GroupBy(rel_, {"cat"},
                     {{AggregateFunction::kSum, "price", "total"},
                      {AggregateFunction::kMin, "price", "lo"},
                      {AggregateFunction::kMax, "price", "hi"},
                      {AggregateFunction::kAvg, "price", "mean"}},
                     &dict_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_TRUE(out->ContainsRow(
      {Code("a"), Code("40"), Code("10"), Code("20"),
       dict_.Lookup("13.3333")}));
  EXPECT_TRUE(out->ContainsRow(
      {Code("b"), Code("5.5"), Code("5.5"), Code("5.5"), Code("5.5")}));
}

TEST_F(AggregateTest, CountDistinct) {
  auto out = GroupBy(rel_, {"cat"},
                     {{AggregateFunction::kCountDistinct, "price", "k"}},
                     &dict_);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ContainsRow({Code("a"), Code("2")}));
  EXPECT_TRUE(out->ContainsRow({Code("b"), Code("1")}));
}

TEST_F(AggregateTest, GlobalAggregateEmptyGroupBy) {
  auto out = GroupBy(rel_, {}, {{AggregateFunction::kCount, "", "n"}}, &dict_);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->at(0, 0), Code("4"));
}

TEST_F(AggregateTest, MultiKeyGroupBy) {
  Relation wide(*Schema::Make({"x", "y", "v"}));
  for (int i = 0; i < 4; ++i) {
    wide.AppendRow({dict_.Intern(i % 2 ? "x1" : "x0"),
                    dict_.Intern("y0"), dict_.Intern("1")});
  }
  auto out = GroupBy(wide, {"x", "y"},
                     {{AggregateFunction::kSum, "v", "s"}}, &dict_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
  EXPECT_TRUE(out->ContainsRow({Code("x0"), Code("y0"), Code("2")}));
}

TEST_F(AggregateTest, Errors) {
  EXPECT_FALSE(GroupBy(rel_, {"zzz"}, {}, &dict_).ok());
  EXPECT_FALSE(
      GroupBy(rel_, {"cat"}, {{AggregateFunction::kSum, "zzz", "s"}}, &dict_)
          .ok());
  EXPECT_FALSE(
      GroupBy(rel_, {"cat"}, {{AggregateFunction::kSum, "cat", "s"}}, &dict_)
          .ok());  // non-numeric values
  EXPECT_FALSE(
      GroupBy(rel_, {"cat"}, {{AggregateFunction::kCount, "", ""}}, &dict_)
          .ok());  // missing output name
}

TEST_F(AggregateTest, EmptyInput) {
  Relation empty(*Schema::Make({"cat"}));
  auto out =
      GroupBy(empty, {"cat"}, {{AggregateFunction::kCount, "", "n"}}, &dict_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0u);
}

}  // namespace
}  // namespace xjoin
