// Tests for decomposition, path relations, the generic join engine,
// order selection, bounds, and validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>

#include "common/random.h"
#include "core/bound.h"
#include "core/decompose.h"
#include "core/generic_join.h"
#include "core/order.h"
#include "core/validate.h"
#include "core/virtual_relation.h"
#include "core/xjoin.h"
#include "relational/operators.h"
#include "relational/trie.h"
#include "tests/test_util.h"
#include "twigjoin/naive_twig.h"
#include "workload/paper_example.h"
#include "xml/parser.h"

namespace xjoin {
namespace {

TEST(DecomposeTest, PaperTwigYieldsFigure2Paths) {
  Twig twig = MakePaperTwig();
  auto d = DecomposeTwig(twig);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->paths.size(), 5u);
  EXPECT_EQ(d->paths[0].attributes, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(d->paths[1].attributes, (std::vector<std::string>{"A", "D"}));
  EXPECT_EQ(d->paths[2].attributes, (std::vector<std::string>{"C", "E"}));
  EXPECT_EQ(d->paths[3].attributes, (std::vector<std::string>{"F", "H"}));
  EXPECT_EQ(d->paths[4].attributes, (std::vector<std::string>{"G"}));
  EXPECT_EQ(d->cut_edges.size(), 3u);  // A//C, E//F, F//G
}

TEST(DecomposeTest, PcOnlyTwigIsItsOwnPaths) {
  auto twig = Twig::Parse("a[b]/c/d");
  auto d = DecomposeTwig(*twig);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->paths.size(), 2u);
  EXPECT_EQ(d->paths[0].attributes, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(d->paths[1].attributes, (std::vector<std::string>{"a", "c", "d"}));
  EXPECT_TRUE(d->cut_edges.empty());
}

TEST(DecomposeTest, AllDescendantEdgesGiveSingletons) {
  auto twig = Twig::Parse("a//b//c");
  auto d = DecomposeTwig(*twig);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->paths.size(), 3u);
  for (const auto& p : d->paths) EXPECT_EQ(p.attributes.size(), 1u);
  EXPECT_EQ(d->cut_edges.size(), 2u);
  EXPECT_FALSE(DecompositionToString(*twig, *d).empty());
}

TEST(PathRelationTest, MaterializeEnumeratesChains) {
  auto doc = ParseXml(
      "<r><a>1<b>x</b><b>y</b></a><a>2<b>x</b></a><a>3</a></r>");
  ASSERT_TRUE(doc.ok());
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a/b");
  auto d = DecomposeTwig(*twig);
  auto rel = PathRelation::Make(*twig, d->paths[0], &index);
  ASSERT_TRUE(rel.ok());
  auto mat = rel->Materialize();
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->num_rows(), 3u);  // (1,x),(1,y),(2,x)
  EXPECT_EQ(rel->CountChains(), 3);
}

TEST(PathRelationTest, CountChainsCountsDuplicates) {
  // Two (a=1, b=x) chains: CountChains counts 4 chains while the
  // materialized set has 3 distinct tuples.
  auto doc = ParseXml(
      "<r><a>1<b>x</b><b>x</b><b>y</b></a><a>2<b>x</b></a></r>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a/b");
  auto d = DecomposeTwig(*twig);
  auto rel = PathRelation::Make(*twig, d->paths[0], &index);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->CountChains(), 4);
  EXPECT_EQ(rel->Materialize()->num_rows(), 3u);
}

TEST(PathRelationTest, AbsentTagYieldsEmpty) {
  auto doc = ParseXml("<r><a>1</a></r>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a/zzz");
  auto d = DecomposeTwig(*twig);
  auto rel = PathRelation::Make(*twig, d->paths[0], &index);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->Materialize()->num_rows(), 0u);
  EXPECT_EQ(rel->CountChains(), 0);
  // The lazy trie still exposes level-0 candidates (the 'a' nodes), but
  // descending under any of them finds nothing.
  auto it = rel->NewLazyIterator();
  it->Open();
  ASSERT_FALSE(it->AtEnd());
  it->Open();
  EXPECT_TRUE(it->AtEnd());
}

TEST(PathRelationTest, WildcardRejected) {
  auto doc = ParseXml("<r><a>1</a></r>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a/*");
  auto d = DecomposeTwig(*twig);
  EXPECT_FALSE(PathRelation::Make(*twig, d->paths[0], &index).ok());
}

// Property: the lazy path trie enumerates exactly the materialized
// relation, on random documents and random linear paths.
class LazyPathTrieProperty : public ::testing::TestWithParam<int> {};

std::vector<Tuple> EnumerateIterator(TrieIterator* it) {
  std::vector<Tuple> out;
  Tuple current(static_cast<size_t>(it->arity()));
  auto recurse = [&](auto&& self) -> void {
    it->Open();
    while (!it->AtEnd()) {
      current[static_cast<size_t>(it->depth())] = it->Key();
      if (it->depth() + 1 == it->arity()) {
        out.push_back(current);
      } else {
        self(self);
      }
      it->Next();
    }
    it->Up();
  };
  recurse(recurse);
  return out;
}

TEST_P(LazyPathTrieProperty, LazyEqualsMaterialized) {
  Rng rng(8000 + static_cast<uint64_t>(GetParam()));
  std::vector<std::string> tags = {"a", "b", "c"};
  auto doc = testing::RandomDocument(&rng, 2 + rng.NextBounded(40), tags, 3);
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(doc.get(), &dict);
  // Random linear path twig of length 1..4 (P-C only, as produced by
  // decomposition).
  size_t len = 1 + rng.NextBounded(4);
  TwigBuilder tb;
  TwigNodeId prev = tb.AddRoot(tags[rng.NextBounded(tags.size())], "q0");
  for (size_t i = 1; i < len; ++i) {
    prev = tb.AddChild(prev, TwigAxis::kChild,
                       tags[rng.NextBounded(tags.size())],
                       "q" + std::to_string(i));
  }
  auto twig = tb.Finish();
  ASSERT_TRUE(twig.ok());
  auto d = DecomposeTwig(*twig);
  ASSERT_EQ(d->paths.size(), 1u);
  auto rel = PathRelation::Make(*twig, d->paths[0], &index);
  ASSERT_TRUE(rel.ok());

  auto lazy_it = rel->NewLazyIterator();
  std::vector<Tuple> lazy = EnumerateIterator(lazy_it.get());

  auto mat = rel->Materialize();
  ASSERT_TRUE(mat.ok());
  ASSERT_EQ(lazy.size(), mat->num_rows());
  for (size_t r = 0; r < lazy.size(); ++r) {
    EXPECT_EQ(lazy[r], mat->GetRow(r));
  }
  EXPECT_GE(rel->CountChains(), static_cast<int64_t>(mat->num_rows()));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LazyPathTrieProperty,
                         ::testing::Range(0, 40));

TEST(GenericJoinTest, TriangleQuery) {
  // Classic triangle R(A,B) ⋈ S(B,C) ⋈ T(A,C).
  auto mk = [](std::vector<Tuple> t, std::vector<std::string> attrs) {
    auto s = Schema::Make(attrs);
    return *Relation::FromTuples(*s, std::move(t));
  };
  Relation r = mk({{0, 1}, {0, 2}, {1, 2}}, {"A", "B"});
  Relation s = mk({{1, 2}, {2, 0}, {2, 3}}, {"B", "C"});
  Relation t = mk({{0, 2}, {0, 3}, {1, 0}}, {"A", "C"});

  auto tr = RelationTrie::Build(r, {"A", "B"});
  auto ts = RelationTrie::Build(s, {"B", "C"});
  auto tt = RelationTrie::Build(t, {"A", "C"});
  auto ir = tr->NewIterator();
  auto is = ts->NewIterator();
  auto it = tt->NewIterator();

  GenericJoinOptions opts;
  opts.attribute_order = {"A", "B", "C"};
  Metrics m;
  opts.metrics = &m;
  auto result = GenericJoin({{"R", {"A", "B"}, ir.get()},
                             {"S", {"B", "C"}, is.get()},
                             {"T", {"A", "C"}, it.get()}},
                            opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Triangles: (0,1,2), (0,2,3)? check: R(0,2) S(2,3) T(0,3) yes;
  // R(1,2) S(2,0) T(1,0) yes.
  EXPECT_EQ(result->num_rows(), 3u);
  EXPECT_TRUE(result->ContainsRow({0, 1, 2}));
  EXPECT_TRUE(result->ContainsRow({0, 2, 3}));
  EXPECT_TRUE(result->ContainsRow({1, 2, 0}));
  EXPECT_EQ(m.Get("gj.output"), 3);
  EXPECT_GT(m.Get("gj.seeks"), 0);
}

TEST(GenericJoinTest, PrefixFilterPrunes) {
  auto s = Schema::Make({"A"});
  Relation r(*s);
  for (int i = 0; i < 10; ++i) r.AppendRow({i});
  auto trie = RelationTrie::Build(r, {"A"});
  auto it = trie->NewIterator();
  GenericJoinOptions opts;
  opts.attribute_order = {"A"};
  opts.prefix_filter = [](size_t, const std::vector<int64_t>& p, Metrics*) {
    return p[0] % 2 == 0;
  };
  auto result = GenericJoin({{"R", {"A"}, it.get()}}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 5u);
}

TEST(GenericJoinTest, RejectsUncoveredAttribute) {
  auto s = Schema::Make({"A"});
  Relation r(*s);
  auto trie = RelationTrie::Build(r, {"A"});
  auto it = trie->NewIterator();
  GenericJoinOptions opts;
  opts.attribute_order = {"A", "B"};
  EXPECT_FALSE(GenericJoin({{"R", {"A"}, it.get()}}, opts).ok());
}

TEST(GenericJoinTest, RejectsInconsistentInputOrder) {
  auto s = Schema::Make({"A", "B"});
  Relation r(*s);
  auto trie = RelationTrie::Build(r, {"B", "A"});
  auto it = trie->NewIterator();
  GenericJoinOptions opts;
  opts.attribute_order = {"A", "B"};
  EXPECT_FALSE(GenericJoin({{"R", {"B", "A"}, it.get()}}, opts).ok());
}

// Property: GenericJoin over random relations equals the hash-join plan.
class GenericJoinProperty : public ::testing::TestWithParam<int> {};

TEST_P(GenericJoinProperty, MatchesHashJoinPlan) {
  Rng rng(9000 + static_cast<uint64_t>(GetParam()));
  Dictionary dict;
  std::vector<std::string> pool = {"A", "B", "C", "D"};
  size_t num_rels = 2 + rng.NextBounded(2);
  std::vector<Relation> rels;
  std::vector<std::vector<std::string>> schemas;
  for (size_t i = 0; i < num_rels; ++i) {
    std::vector<std::string> attrs;
    for (const auto& a : pool) {
      if (rng.NextBernoulli(0.6)) attrs.push_back(a);
    }
    if (attrs.empty()) attrs.push_back(pool[rng.NextBounded(4)]);
    schemas.push_back(attrs);
    rels.push_back(testing::RandomRelation(&rng, &dict, attrs,
                                           5 + rng.NextBounded(25), 4));
  }
  // Global order: union of attrs in pool order.
  std::vector<std::string> order;
  for (const auto& a : pool) {
    for (const auto& schema : schemas) {
      if (std::find(schema.begin(), schema.end(), a) != schema.end()) {
        order.push_back(a);
        break;
      }
    }
  }

  std::vector<RelationTrie> tries;
  std::vector<std::unique_ptr<TrieIterator>> iters;
  std::vector<JoinInput> inputs;
  tries.reserve(num_rels);
  for (size_t i = 0; i < num_rels; ++i) {
    std::vector<std::string> trie_order;
    for (const auto& a : order) {
      if (std::find(schemas[i].begin(), schemas[i].end(), a) !=
          schemas[i].end()) {
        trie_order.push_back(a);
      }
    }
    auto trie = RelationTrie::Build(rels[i], trie_order);
    ASSERT_TRUE(trie.ok());
    tries.push_back(*std::move(trie));
  }
  for (size_t i = 0; i < num_rels; ++i) {
    iters.push_back(tries[i].NewIterator());
    inputs.push_back(
        JoinInput{"R" + std::to_string(i), tries[i].attribute_order(),
                  iters.back().get()});
  }

  GenericJoinOptions opts;
  opts.attribute_order = order;
  auto fast = GenericJoin(inputs, opts);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();

  std::vector<const Relation*> rel_ptrs;
  for (const auto& r : rels) rel_ptrs.push_back(&r);
  Relation slow = testing::NaiveNaturalJoin(rel_ptrs);
  auto slow_proj = Project(slow, order);
  ASSERT_TRUE(slow_proj.ok());
  Relation fast_copy = *fast;
  fast_copy.SortAndDedup();
  EXPECT_TRUE(RelationsEqualAsSets(fast_copy, *slow_proj));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GenericJoinProperty,
                         ::testing::Range(0, 40));

TEST(OrderTest, RespectsPathPrecedence) {
  PaperInstance inst = MakePaperInstance(3, PaperSchema::kExample34,
                                         PaperDataMode::kAdversarial);
  MultiModelQuery q = inst.Query();
  auto order = ChooseAttributeOrder(q);
  ASSERT_TRUE(order.ok());
  EXPECT_TRUE(CheckAttributeOrder(q, *order).ok());
  // A before B and D; C before E; F before H.
  auto pos = [&](const std::string& a) {
    return std::find(order->begin(), order->end(), a) - order->begin();
  };
  EXPECT_LT(pos("A"), pos("B"));
  EXPECT_LT(pos("A"), pos("D"));
  EXPECT_LT(pos("C"), pos("E"));
  EXPECT_LT(pos("F"), pos("H"));
  EXPECT_EQ(order->size(), 8u);
}

TEST(OrderTest, SmallestDomainHeuristicIsValidToo) {
  PaperInstance inst = MakePaperInstance(5, PaperSchema::kExample34,
                                         PaperDataMode::kAdversarial);
  MultiModelQuery q = inst.Query();
  auto order = ChooseAttributeOrder(q, OrderHeuristic::kSmallestDomain);
  ASSERT_TRUE(order.ok()) << order.status().ToString();
  EXPECT_TRUE(CheckAttributeOrder(q, *order).ok());
  // Both heuristics must produce the same answer through XJoin.
  XJoinOptions a;
  a.order_heuristic = OrderHeuristic::kCoverage;
  XJoinOptions b;
  b.order_heuristic = OrderHeuristic::kSmallestDomain;
  auto ra = ExecuteXJoin(q, a);
  auto rb = ExecuteXJoin(q, b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  // Column order follows the expansion order; compare as sets after
  // projecting onto a common schema.
  auto rb_proj = Project(*rb, ra->schema().attributes());
  ASSERT_TRUE(rb_proj.ok());
  Relation ra_copy = *ra;
  ra_copy.SortAndDedup();
  EXPECT_TRUE(RelationsEqualAsSets(ra_copy, *rb_proj));
}

TEST(OrderTest, CheckRejectsBadOrders) {
  PaperInstance inst = MakePaperInstance(2, PaperSchema::kExample34,
                                         PaperDataMode::kAdversarial);
  MultiModelQuery q = inst.Query();
  EXPECT_FALSE(CheckAttributeOrder(q, {"A"}).ok());  // missing attrs
  EXPECT_FALSE(
      CheckAttributeOrder(
          q, {"B", "A", "C", "D", "E", "F", "G", "H"}).ok());  // B before A
  EXPECT_FALSE(
      CheckAttributeOrder(
          q, {"A", "A", "C", "D", "E", "F", "G", "H"}).ok());  // repeat
  EXPECT_TRUE(
      CheckAttributeOrder(
          q, {"A", "B", "C", "D", "E", "F", "G", "H"}).ok());
}

TEST(BoundTest, PaperUniformBounds) {
  PaperInstance inst = MakePaperInstance(4, PaperSchema::kExample33,
                                         PaperDataMode::kAdversarial);
  MultiModelQuery q = inst.Query();
  BoundOptions opts;
  opts.path_size_mode = PathSizeMode::kUniform;
  opts.uniform_n = 16.0;
  auto bound = ComputeBound(q, opts);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_NEAR(bound->cover.uniform_exponent, 3.5, 1e-6);

  PaperInstance inst34 = MakePaperInstance(4, PaperSchema::kExample34,
                                           PaperDataMode::kAdversarial);
  MultiModelQuery q34 = inst34.Query();
  auto bound34 = ComputeBound(q34, opts);
  ASSERT_TRUE(bound34.ok());
  EXPECT_NEAR(bound34->cover.uniform_exponent, 2.0, 1e-6);
}

TEST(BoundTest, ExactAndChainCountModes) {
  PaperInstance inst = MakePaperInstance(3, PaperSchema::kExample34,
                                         PaperDataMode::kAdversarial);
  MultiModelQuery q = inst.Query();
  BoundOptions exact;
  exact.path_size_mode = PathSizeMode::kExact;
  auto b1 = ComputeBound(q, exact);
  ASSERT_TRUE(b1.ok());
  BoundOptions chain;
  chain.path_size_mode = PathSizeMode::kChainCount;
  auto b2 = ComputeBound(q, chain);
  ASSERT_TRUE(b2.ok());
  // Chain counts upper-bound exact sizes, so the bound can only grow.
  EXPECT_GE(b2->cover.log2_bound, b1->cover.log2_bound - 1e-9);
}

TEST(ValidateTest, FullAssignmentExactness) {
  auto doc = ParseXml(
      "<r><a>1<b>x</b></a><a>2<b>y</b></a><c>only-under-a2</c></r>");
  ASSERT_TRUE(doc.ok());
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a/b");
  TwigStructureValidator v(&*twig, &index);
  auto val = [&](const char* s) { return dict.Lookup(s); };
  // (1,x) and (2,y) embed; (1,y) does not.
  EXPECT_TRUE(v.ExistsEmbedding({val("1"), val("x")}));
  EXPECT_TRUE(v.ExistsEmbedding({val("2"), val("y")}));
  EXPECT_FALSE(v.ExistsEmbedding({val("1"), val("y")}));
}

TEST(ValidateTest, PartialAssignmentsAreSound) {
  auto doc = ParseXml("<r><a>1<b>x</b></a></r>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a/b");
  TwigStructureValidator v(&*twig, &index);
  auto val = [&](const char* s) { return dict.Lookup(s); };
  EXPECT_TRUE(v.ExistsEmbedding({val("1"), std::nullopt}));
  EXPECT_TRUE(v.ExistsEmbedding({std::nullopt, val("x")}));
  EXPECT_TRUE(v.ExistsEmbedding({std::nullopt, std::nullopt}));
  // No a-node with text x.
  EXPECT_FALSE(v.ExistsEmbedding({val("x"), std::nullopt}));
}

TEST(ValidateTest, DescendantEdgesChecked) {
  auto doc = ParseXml("<r><a>1<m><b>x</b></m></a><a>2</a><b>y</b></r>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a//b");
  TwigStructureValidator v(&*twig, &index);
  auto val = [&](const char* s) { return dict.Lookup(s); };
  EXPECT_TRUE(v.ExistsEmbedding({val("1"), val("x")}));
  EXPECT_FALSE(v.ExistsEmbedding({val("2"), val("x")}));  // b not under a2
  EXPECT_FALSE(v.ExistsEmbedding({val("1"), val("y")}));  // y outside a1
}

// Property: on full assignments the validator agrees with the naive
// matcher's value-level semantics.
class ValidateProperty : public ::testing::TestWithParam<int> {};

TEST_P(ValidateProperty, AgreesWithNaiveMatcherOnFullAssignments) {
  Rng rng(10000 + static_cast<uint64_t>(GetParam()));
  std::vector<std::string> tags = {"a", "b", "c"};
  auto doc = testing::RandomDocument(&rng, 2 + rng.NextBounded(30), tags, 3);
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(doc.get(), &dict);
  Twig twig = testing::RandomTwig(&rng, 1 + rng.NextBounded(4), tags);
  TwigStructureValidator validator(&twig, &index);

  // Value tuples with >= 1 embedding, from the oracle.
  auto matches = MatchTwigNaive(*doc, twig);
  std::set<std::vector<int64_t>> valid_tuples;
  for (const auto& m : matches) {
    std::vector<int64_t> vals(m.size());
    for (size_t i = 0; i < m.size(); ++i) vals[i] = index.ValueOf(m[i]);
    valid_tuples.insert(vals);
  }
  // Every oracle tuple must validate.
  for (const auto& vals : valid_tuples) {
    std::vector<std::optional<int64_t>> opt(vals.begin(), vals.end());
    EXPECT_TRUE(validator.ExistsEmbedding(opt));
  }
  // Perturbed tuples must validate iff they are themselves oracle tuples.
  Rng rng2(777 + static_cast<uint64_t>(GetParam()));
  for (const auto& vals : valid_tuples) {
    std::vector<int64_t> mutated = vals;
    size_t pos = rng2.NextBounded(mutated.size());
    mutated[pos] = dict.Intern("v" + std::to_string(rng2.NextBounded(3)));
    std::vector<std::optional<int64_t>> opt(mutated.begin(), mutated.end());
    EXPECT_EQ(validator.ExistsEmbedding(opt),
              valid_tuples.count(mutated) > 0);
    if (valid_tuples.size() > 400) break;  // cap runtime
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ValidateProperty,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace xjoin
