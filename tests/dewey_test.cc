#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"
#include "xml/dewey.h"
#include "xml/parser.h"

namespace xjoin {
namespace {

TEST(DeweyTest, SmallDocument) {
  auto doc = ParseXml("<a><b/><c><d/></c></a>");
  ASSERT_TRUE(doc.ok());
  DeweyLabeling labels = DeweyLabeling::Build(*doc);
  EXPECT_EQ(DeweyLabeling::ToString(labels.label(0)), "");     // a
  EXPECT_EQ(DeweyLabeling::ToString(labels.label(1)), "0");    // b
  EXPECT_EQ(DeweyLabeling::ToString(labels.label(2)), "1");    // c
  EXPECT_EQ(DeweyLabeling::ToString(labels.label(3)), "1.0");  // d
}

TEST(DeweyTest, StringRoundTrip) {
  for (const char* s : {"", "0", "3.1.4", "10.0.2"}) {
    EXPECT_EQ(DeweyLabeling::ToString(DeweyLabeling::FromString(s)), s);
  }
}

TEST(DeweyTest, AxisPredicates) {
  DeweyLabel root;  // []
  DeweyLabel a = {1};
  DeweyLabel b = {1, 0};
  DeweyLabel c = {1, 0, 2};
  DeweyLabel d = {2};
  EXPECT_TRUE(DeweyLabeling::IsAncestor(root, c));
  EXPECT_TRUE(DeweyLabeling::IsAncestor(a, c));
  EXPECT_FALSE(DeweyLabeling::IsAncestor(c, a));
  EXPECT_FALSE(DeweyLabeling::IsAncestor(a, a));
  EXPECT_FALSE(DeweyLabeling::IsAncestor(a, d));
  EXPECT_TRUE(DeweyLabeling::IsParent(a, b));
  EXPECT_FALSE(DeweyLabeling::IsParent(a, c));
  EXPECT_FALSE(DeweyLabeling::IsParent(b, a));
}

TEST(DeweyTest, CompareIsDocumentOrderOnExamples) {
  DeweyLabel a = {1};
  DeweyLabel b = {1, 0};
  DeweyLabel c = {2};
  EXPECT_LT(DeweyLabeling::Compare(a, b), 0);  // ancestor first
  EXPECT_LT(DeweyLabeling::Compare(b, c), 0);
  EXPECT_EQ(DeweyLabeling::Compare(b, b), 0);
  EXPECT_GT(DeweyLabeling::Compare(c, a), 0);
}

TEST(DeweyTest, LowestCommonAncestor) {
  DeweyLabel a = {1, 0, 2};
  DeweyLabel b = {1, 0, 3, 1};
  DeweyLabel lca = DeweyLabeling::LowestCommonAncestor(a, b);
  EXPECT_EQ(DeweyLabeling::ToString(lca), "1.0");
  EXPECT_TRUE(DeweyLabeling::LowestCommonAncestor(DeweyLabel{0}, DeweyLabel{1})
                  .empty());
}

// Property: on random documents, Dewey predicates agree with the region
// encoding, and Dewey order equals NodeId (preorder) order.
class DeweyProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeweyProperty, AgreesWithRegionEncoding) {
  Rng rng(50000 + static_cast<uint64_t>(GetParam()));
  auto doc = testing::RandomDocument(&rng, 2 + rng.NextBounded(40),
                                     {"a", "b", "c"}, 3);
  DeweyLabeling labels = DeweyLabeling::Build(*doc);
  const size_t n = doc->num_nodes();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      NodeId a = static_cast<NodeId>(i), d = static_cast<NodeId>(j);
      EXPECT_EQ(DeweyLabeling::IsAncestor(labels.label(a), labels.label(d)),
                doc->IsAncestor(a, d))
          << "a=" << a << " d=" << d;
      EXPECT_EQ(DeweyLabeling::IsParent(labels.label(a), labels.label(d)),
                doc->IsParent(a, d));
      int cmp = DeweyLabeling::Compare(labels.label(a), labels.label(d));
      EXPECT_EQ(cmp < 0, a < d);
      EXPECT_EQ(cmp == 0, a == d);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DeweyProperty,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace xjoin
