#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "tests/test_util.h"
#include "xml/node_index.h"
#include "xml/parser.h"

namespace xjoin {
namespace {

TEST(NodeIndexTest, TextValuesShareDictionaryWithRelationalSide) {
  auto doc = ParseXml("<r><a>apple</a><b>apple</b><c/></r>");
  ASSERT_TRUE(doc.ok());
  Dictionary dict;
  int64_t relational_apple = dict.Intern("apple");
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  int32_t a = doc->LookupTag("a");
  int32_t b_tag = doc->LookupTag("b");
  NodeId a_node = index.NodesByTag(a)[0];
  NodeId b_node = index.NodesByTag(b_tag)[0];
  EXPECT_EQ(index.ValueOf(a_node), relational_apple);
  EXPECT_EQ(index.ValueOf(b_node), relational_apple);
}

TEST(NodeIndexTest, TextlessNodesGetUniqueSyntheticValues) {
  auto doc = ParseXml("<r><c/><c/></r>");
  ASSERT_TRUE(doc.ok());
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto nodes = index.NodesByTag(doc->LookupTag("c"));
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_NE(index.ValueOf(nodes[0]), index.ValueOf(nodes[1]));
  // Synthetic values cannot collide with any parseable text.
  EXPECT_EQ(dict.Decode(index.ValueOf(nodes[0]))[0], '\x1F');
}

TEST(NodeIndexTest, NodeIdAlwaysPolicyIgnoresText) {
  auto doc = ParseXml("<r><a>same</a><a>same</a></r>");
  ASSERT_TRUE(doc.ok());
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict, ValuePolicy::kNodeIdAlways);
  auto nodes = index.NodesByTag(doc->LookupTag("a"));
  EXPECT_NE(index.ValueOf(nodes[0]), index.ValueOf(nodes[1]));
}

TEST(NodeIndexTest, ValueSortedNodesIsSorted) {
  auto doc = ParseXml("<r><a>b</a><a>a</a><a>c</a><a>a</a></r>");
  ASSERT_TRUE(doc.ok());
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  const auto& list = index.ValueSortedNodes(doc->LookupTag("a"));
  ASSERT_EQ(list.size(), 4u);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_TRUE(list[i - 1].value < list[i].value ||
                (list[i - 1].value == list[i].value &&
                 list[i - 1].node < list[i].node));
  }
}

TEST(NodeIndexTest, NodesByTagValue) {
  auto doc = ParseXml("<r><a>x</a><a>y</a><a>x</a></r>");
  ASSERT_TRUE(doc.ok());
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  int64_t x = dict.Lookup("x");
  auto nodes = index.NodesByTagValue(doc->LookupTag("a"), x);
  EXPECT_EQ(nodes.size(), 2u);
  EXPECT_TRUE(index.NodesByTagValue(doc->LookupTag("a"), 999999).empty());
  EXPECT_TRUE(index.NodesByTagValue(-1, x).empty());
}

TEST(NodeIndexTest, UnknownTagYieldsEmpty) {
  auto doc = ParseXml("<r/>");
  ASSERT_TRUE(doc.ok());
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  EXPECT_TRUE(index.NodesByTag(-1).empty());
  EXPECT_TRUE(index.ValueSortedNodes(12345).empty());
}

// Property: ChildValues and DescendantValues agree with brute force.
class NodeIndexProperty : public ::testing::TestWithParam<int> {};

TEST_P(NodeIndexProperty, ChildAndDescendantValuesMatchBruteForce) {
  Rng rng(5000 + static_cast<uint64_t>(GetParam()));
  auto doc = testing::RandomDocument(&rng, 2 + rng.NextBounded(40),
                                     {"a", "b", "c"}, 4);
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(doc.get(), &dict);
  for (int32_t tag = 0; tag < doc->tag_dict().size(); ++tag) {
    for (size_t i = 0; i < doc->num_nodes(); ++i) {
      NodeId id = static_cast<NodeId>(i);

      auto fast_children = index.ChildValues(id, tag);
      std::vector<ValueNode> slow_children;
      for (NodeId c : doc->Children(id)) {
        if (doc->node(c).tag == tag) {
          slow_children.push_back(ValueNode{index.ValueOf(c), c});
        }
      }
      std::sort(slow_children.begin(), slow_children.end(),
                [](const ValueNode& x, const ValueNode& y) {
                  return x.value != y.value ? x.value < y.value
                                            : x.node < y.node;
                });
      EXPECT_EQ(fast_children, slow_children);

      auto fast_desc = index.DescendantValues(id, tag);
      std::vector<ValueNode> slow_desc;
      for (size_t j = 0; j < doc->num_nodes(); ++j) {
        NodeId d = static_cast<NodeId>(j);
        if (doc->node(d).tag == tag && doc->IsAncestor(id, d)) {
          slow_desc.push_back(ValueNode{index.ValueOf(d), d});
        }
      }
      std::sort(slow_desc.begin(), slow_desc.end(),
                [](const ValueNode& x, const ValueNode& y) {
                  return x.value != y.value ? x.value < y.value
                                            : x.node < y.node;
                });
      EXPECT_EQ(fast_desc, slow_desc);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, NodeIndexProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace xjoin
