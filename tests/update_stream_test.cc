// Differential update-stream suite: the incremental trie/database
// maintenance path must be observationally identical to rebuilding
// from scratch after every update.
//
// Two layers of randomized differential checks:
//  1. Trie layer — a random chain of RelationTrie::ApplyDelta calls
//     against a std::set<Tuple> oracle, under compaction policies that
//     never / always / occasionally fold the delta, compared both by
//     EnumerateTuples and against a fresh Build of the oracle.
//  2. Database layer — the SAME interleaved insert/delete/query stream
//     driven through (a) MultiModelDatabase::ApplyRelationDelta (the
//     delta-patch path that keeps cached tries and plans alive) and
//     (b) a twin database that does a full UpdateRelation rebuild from
//     the oracle contents. Every query in the stream must return
//     byte-identical rows on both databases, across result batching
//     {off, 7} x threads {1, 4}, including seeds that straddle the
//     compaction trigger.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/database.h"
#include "relational/operators.h"
#include "relational/relation.h"
#include "relational/trie.h"

namespace xjoin {
namespace {

// ---------------------------------------------------------------------
// Shared generator: a random tuple over small per-column domains, so
// streams produce genuine collisions (re-inserts, deletes of absent
// rows, resurrections) instead of disjoint noise.
Tuple RandomTuple(Rng* rng, int arity, int64_t domain) {
  Tuple t(static_cast<size_t>(arity));
  for (auto& v : t) v = rng->NextInRange(0, domain - 1);
  return t;
}

std::vector<Tuple> RandomTuples(Rng* rng, size_t count, int arity,
                                int64_t domain) {
  std::vector<Tuple> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(RandomTuple(rng, arity, domain));
  }
  return out;
}

// ---------------------------------------------------------------------
// Layer 1: trie-level differential fuzz.

struct TrieStreamCase {
  uint64_t seed;
  double compact_ratio;
  size_t compact_min_rows;
};

class TrieUpdateStreamTest : public ::testing::TestWithParam<TrieStreamCase> {};

TEST_P(TrieUpdateStreamTest, DeltaChainMatchesRebuildOracle) {
  const TrieStreamCase& param = GetParam();
  Rng rng(param.seed);
  const int arity = 3;
  const int64_t domain = 6;  // 216 possible tuples: dense collisions
  const std::vector<std::string> order = {"A", "B", "C"};
  auto schema = Schema::Make(order);
  ASSERT_TRUE(schema.ok());

  std::set<Tuple> oracle;
  Relation base(*schema);
  for (const Tuple& t : RandomTuples(&rng, 40, arity, domain)) {
    if (oracle.insert(t).second) base.AppendRow(t);
  }
  auto built = RelationTrie::Build(base, order);
  ASSERT_TRUE(built.ok());
  RelationTrie trie = *std::move(built);

  for (int round = 0; round < 30; ++round) {
    std::vector<Tuple> inserts =
        RandomTuples(&rng, rng.NextBounded(8), arity, domain);
    std::vector<Tuple> deletes;
    // Half the deletes target live tuples, half are random (mostly
    // absent) — ApplyDelta must treat absent deletes as no-ops.
    for (size_t i = 0; i < rng.NextBounded(8); ++i) {
      if (!oracle.empty() && rng.NextBernoulli(0.5)) {
        auto it = oracle.begin();
        std::advance(it, static_cast<long>(rng.NextBounded(oracle.size())));
        deletes.push_back(*it);
      } else {
        deletes.push_back(RandomTuple(&rng, arity, domain));
      }
    }

    TrieDeltaOptions options;
    options.compact_ratio = param.compact_ratio;
    options.compact_min_rows = param.compact_min_rows;
    auto next = trie.ApplyDelta(inserts, deletes, options);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    trie = *std::move(next);

    for (const Tuple& t : deletes) oracle.erase(t);
    for (const Tuple& t : inserts) oracle.insert(t);

    // (a) Enumeration matches the oracle set exactly.
    std::vector<Tuple> expected(oracle.begin(), oracle.end());
    std::vector<Tuple> actual;
    trie.EnumerateTuples(&actual);
    ASSERT_EQ(actual, expected) << "round " << round;
    ASSERT_EQ(trie.num_rows(), oracle.size()) << "round " << round;

    // (b) ...and matches a from-scratch rebuild of the same contents.
    auto rebuilt_rel = Relation::FromTuples(*schema, expected);
    ASSERT_TRUE(rebuilt_rel.ok());
    auto rebuilt = RelationTrie::Build(*rebuilt_rel, order);
    ASSERT_TRUE(rebuilt.ok());
    std::vector<Tuple> rebuilt_tuples;
    rebuilt->EnumerateTuples(&rebuilt_tuples);
    ASSERT_EQ(actual, rebuilt_tuples) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, TrieUpdateStreamTest,
    ::testing::Values(
        // Never compact: every round deepens the pending side-file.
        TrieStreamCase{101, 1.0, std::numeric_limits<size_t>::max()},
        TrieStreamCase{102, 1.0, std::numeric_limits<size_t>::max()},
        // Always compact: every ApplyDelta folds into fresh CSR arrays.
        TrieStreamCase{201, 0.0, 0},
        // Boundary-straddling: small thresholds so the stream crosses
        // the trigger repeatedly, mixing pending and folded states.
        TrieStreamCase{301, 0.25, 4}, TrieStreamCase{302, 0.25, 4},
        TrieStreamCase{303, 0.10, 2}),
    [](const ::testing::TestParamInfo<TrieStreamCase>& info) {
      return "Seed" + std::to_string(info.param.seed);
    });

TEST(TrieUpdateStreamTest, DeltaOnZeroArityTrieIsRejected) {
  auto schema = Schema::Make({});
  ASSERT_TRUE(schema.ok());
  auto built = RelationTrie::Build(Relation(*schema), {});
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->ApplyDelta({}, {}).ok());
  EXPECT_FALSE(built->ApplyDelta({{}}, {}).ok());
}

// ---------------------------------------------------------------------
// Layer 2: database-level differential stream. One stream, two
// databases: `delta_db` takes ApplyRelationDelta, `rebuild_db` swaps in
// a full UpdateRelation built from the oracle. Queries interleave with
// updates; rows must match byte-for-byte under every execution config.

struct DbStreamCase {
  uint64_t seed;
  // Compaction knob for delta_db; rebuild_db never sees deltas.
  double compact_ratio;
  size_t compact_min_rows;
};

class DbUpdateStreamTest : public ::testing::TestWithParam<DbStreamCase> {
 protected:
  static constexpr int64_t kDomain = 8;

  void SeedDatabases(Rng* rng) {
    auto r_schema = Schema::Make({"A", "B"});
    auto s_schema = Schema::Make({"B", "C"});
    ASSERT_TRUE(r_schema.ok() && s_schema.ok());
    r_schema_ = *r_schema;
    s_schema_ = *s_schema;
    for (const Tuple& t : RandomTuples(rng, 30, 2, kDomain)) {
      r_oracle_.insert(t);
    }
    for (const Tuple& t : RandomTuples(rng, 30, 2, kDomain)) {
      s_oracle_.insert(t);
    }
    for (MultiModelDatabase* db : {&delta_db_, &rebuild_db_}) {
      ASSERT_TRUE(
          db->RegisterRelation("R", OracleRelation(r_schema_, r_oracle_)).ok());
      ASSERT_TRUE(
          db->RegisterRelation("S", OracleRelation(s_schema_, s_oracle_)).ok());
    }
  }

  static Relation OracleRelation(const Schema& schema,
                                 const std::set<Tuple>& oracle) {
    auto rel = Relation::FromTuples(
        schema, std::vector<Tuple>(oracle.begin(), oracle.end()));
    return *std::move(rel);
  }

  // Applies one random update batch to `name` on both databases and the
  // oracle; returns false on generation of an empty batch (harmless).
  void ApplyRound(Rng* rng, const std::string& name, const Schema& schema,
                  std::set<Tuple>* oracle) {
    RelationDelta delta;
    delta.inserts = RandomTuples(rng, 1 + rng->NextBounded(6), 2, kDomain);
    for (size_t i = 0; i < rng->NextBounded(6); ++i) {
      if (!oracle->empty() && rng->NextBernoulli(0.5)) {
        auto it = oracle->begin();
        std::advance(it, static_cast<long>(rng->NextBounded(oracle->size())));
        delta.deletes.push_back(*it);
      } else {
        delta.deletes.push_back(RandomTuple(rng, 2, kDomain));
      }
    }
    ASSERT_TRUE(delta_db_.ApplyRelationDelta(name, delta).ok());
    for (const Tuple& t : delta.deletes) oracle->erase(t);
    for (const Tuple& t : delta.inserts) oracle->insert(t);
    ASSERT_TRUE(
        rebuild_db_.UpdateRelation(name, OracleRelation(schema, *oracle)).ok());
  }

  // Runs `text` on both databases under one execution config and
  // demands byte-identical rows (same contents, same order).
  void ExpectIdentical(const std::string& text, int batch_size,
                       int num_threads, const char* context) {
    QueryOptions options;
    options.xjoin.batch_size = batch_size;
    options.xjoin.num_threads = num_threads;
    // Pin the expansion order so both sides run the same plan shape —
    // the differential claim is about *maintenance*, not the order
    // heuristic's response to estimate drift.
    options.xjoin.attribute_order = {"A", "B", "C"};
    auto a = delta_db_.Query(text, options);
    auto b = rebuild_db_.Query(text, options);
    ASSERT_TRUE(a.ok()) << context << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << context << ": " << b.status().ToString();
    ASSERT_EQ(a->ToTuples(), b->ToTuples())
        << context << " batch=" << batch_size << " threads=" << num_threads;
  }

  MultiModelDatabase delta_db_;
  MultiModelDatabase rebuild_db_;
  Schema r_schema_{*Schema::Make({"A", "B"})};
  Schema s_schema_{*Schema::Make({"B", "C"})};
  std::set<Tuple> r_oracle_;
  std::set<Tuple> s_oracle_;
};

TEST_P(DbUpdateStreamTest, InterleavedStreamIsByteIdentical) {
  const DbStreamCase& param = GetParam();
  Rng rng(param.seed);
  SeedDatabases(&rng);
  delta_db_.SetTrieDeltaCompaction(param.compact_ratio,
                                   param.compact_min_rows);

  const std::string join = "Q(A, B, C) := R, S";
  for (int round = 0; round < 12; ++round) {
    const std::string name = rng.NextBernoulli(0.5) ? "R" : "S";
    if (name == "R") {
      ApplyRound(&rng, "R", r_schema_, &r_oracle_);
    } else {
      ApplyRound(&rng, "S", s_schema_, &s_oracle_);
    }
    std::string context = "round " + std::to_string(round);
    for (int batch : {0, 7}) {
      for (int threads : {1, 4}) {
        ExpectIdentical(join, batch, threads, context.c_str());
      }
    }
  }

  // The delta path must actually have taken the incremental route:
  // cached tries patched in place, no full-rebuild misses per round
  // beyond the initial build, and plans surviving version bumps.
  CacheStats stats = delta_db_.cache_stats();
  EXPECT_GT(stats.trie_patches, 0);
  if (param.compact_min_rows == 0) {
    EXPECT_GT(stats.trie_compactions, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, DbUpdateStreamTest,
    ::testing::Values(
        // Pending-heavy: the merge iterator serves nearly every query.
        DbStreamCase{11, 1.0, std::numeric_limits<size_t>::max()},
        // Always compact: every delta folds immediately.
        DbStreamCase{12, 0.0, 0},
        // Boundary-straddling thresholds.
        DbStreamCase{13, 0.25, 4}, DbStreamCase{14, 0.25, 4}),
    [](const ::testing::TestParamInfo<DbStreamCase>& info) {
      return "Seed" + std::to_string(info.param.seed);
    });

// The delta path must keep sessions consistent: a session opened
// before an update keeps reading the old contents, one opened after
// reads the new — same visibility rules as the rebuild path.
TEST_F(DbUpdateStreamTest, SnapshotIsolationAcrossDeltas) {
  Rng rng(77);
  SeedDatabases(&rng);
  Session before = delta_db_.OpenSession();
  auto old_rows = before.Query("Q(A, B) := R");
  ASSERT_TRUE(old_rows.ok());

  RelationDelta delta;
  delta.inserts = {{kDomain + 5, kDomain + 5}};
  ASSERT_TRUE(delta_db_.ApplyRelationDelta("R", delta).ok());

  auto replay = before.Query("Q(A, B) := R");
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(old_rows->ToTuples(), replay->ToTuples());

  Session after = delta_db_.OpenSession();
  auto new_rows = after.Query("Q(A, B) := R");
  ASSERT_TRUE(new_rows.ok());
  EXPECT_EQ(new_rows->num_rows(), old_rows->num_rows() + 1);
  EXPECT_TRUE(new_rows->ContainsRow({kDomain + 5, kDomain + 5}));
}

// Error surface: unknown relation, arity mismatch, empty delta.
TEST_F(DbUpdateStreamTest, DeltaValidation) {
  Rng rng(78);
  SeedDatabases(&rng);
  RelationDelta empty;
  EXPECT_TRUE(delta_db_.ApplyRelationDelta("R", empty).ok());
  RelationDelta bad;
  bad.inserts = {{1, 2, 3}};
  EXPECT_FALSE(delta_db_.ApplyRelationDelta("R", bad).ok());
  RelationDelta fine;
  fine.inserts = {{1, 2}};
  EXPECT_FALSE(delta_db_.ApplyRelationDelta("missing", fine).ok());
}

}  // namespace
}  // namespace xjoin
