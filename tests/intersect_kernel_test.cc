// Kernel conformance: every compiled intersection-kernel variant
// (scalar / SSE4.2 / AVX2) against std::lower_bound and
// std::set_intersection oracles on randomized sorted duplicate-free
// arrays (the CSR level invariant) — empty inputs, no overlap, full
// overlap, unaligned starting offsets, tail lengths 0–16 — plus the
// cross-variant invariants the engine relies on: identical landing
// positions, identical seek counts, and dispatch-override semantics.
#include "relational/intersect_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <set>
#include <vector>

#include "common/simd.h"

namespace xjoin {
namespace {

std::vector<const IntersectKernel*> CompiledKernels() {
  std::vector<const IntersectKernel*> kernels;
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
    const IntersectKernel* kernel = IntersectKernelFor(level);
    if (kernel != nullptr) kernels.push_back(kernel);
  }
  return kernels;
}

// Sorted, duplicate-free keys — the CSR level-array invariant.
std::vector<int64_t> RandomSortedKeys(std::mt19937* rng, size_t n,
                                      int64_t universe) {
  std::uniform_int_distribution<int64_t> dist(0, universe);
  std::set<int64_t> keys;
  while (keys.size() < n) keys.insert(dist(*rng));
  return std::vector<int64_t>(keys.begin(), keys.end());
}

constexpr IntersectStrategy kStrategies[] = {IntersectStrategy::kGallop,
                                             IntersectStrategy::kMerge};

TEST(IntersectKernelTest, ScalarTableAlwaysCompiledIn) {
  ASSERT_NE(IntersectKernelFor(SimdLevel::kScalar), nullptr);
  EXPECT_EQ(IntersectKernelFor(SimdLevel::kScalar)->level,
            SimdLevel::kScalar);
}

TEST(IntersectKernelTest, LowerBoundMatchesStdLowerBound) {
  std::mt19937 rng(20260808);
  for (const IntersectKernel* kernel : CompiledKernels()) {
    // Tail lengths 0–16 hit every sub-block remainder of the 2- and
    // 4-lane vector loops; offsets 0–7 exercise unaligned block starts.
    for (size_t len = 0; len <= 16; ++len) {
      for (size_t rep = 0; rep < 4; ++rep) {
        std::vector<int64_t> keys = RandomSortedKeys(&rng, len + 8, 200);
        for (size_t off = 0; off < 8; ++off) {
          const size_t lo = off;
          const size_t hi = off + len;
          for (int64_t probe = -1; probe <= 201; ++probe) {
            size_t expected = static_cast<size_t>(
                std::lower_bound(keys.begin() + static_cast<long>(lo),
                                 keys.begin() + static_cast<long>(hi),
                                 probe) -
                keys.begin());
            EXPECT_EQ(kernel->lower_bound(keys.data(), lo, hi, probe),
                      expected)
                << SimdLevelName(kernel->level) << " len=" << len
                << " off=" << off << " probe=" << probe;
          }
        }
      }
    }
  }
}

TEST(IntersectKernelTest, LowerBoundHandlesExtremeKeysAndLargeArrays) {
  std::mt19937 rng(7);
  std::vector<int64_t> keys =
      RandomSortedKeys(&rng, 500, std::numeric_limits<int64_t>::max() - 1);
  keys.insert(keys.begin(), std::numeric_limits<int64_t>::min());
  keys.push_back(std::numeric_limits<int64_t>::max());
  for (const IntersectKernel* kernel : CompiledKernels()) {
    for (int64_t probe : {std::numeric_limits<int64_t>::min(),
                          std::numeric_limits<int64_t>::min() + 1, int64_t{0},
                          keys[250], keys[251] - 1,
                          std::numeric_limits<int64_t>::max() - 1,
                          std::numeric_limits<int64_t>::max()}) {
      size_t expected = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
      EXPECT_EQ(kernel->lower_bound(keys.data(), 0, keys.size(), probe),
                expected)
          << SimdLevelName(kernel->level) << " probe=" << probe;
    }
  }
}

TEST(IntersectKernelTest, SeekMatchesLowerBoundUnderBothStrategies) {
  std::mt19937 rng(42);
  for (const IntersectKernel* kernel : CompiledKernels()) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{16}, size_t{65},
                     size_t{400}}) {
      std::vector<int64_t> keys = RandomSortedKeys(&rng, n, 4000);
      std::uniform_int_distribution<int64_t> probe_dist(-5, 4005);
      for (size_t rep = 0; rep < 200; ++rep) {
        int64_t probe = probe_dist(rng);
        size_t pos = n == 0 ? 0 : rep % n;
        size_t expected = static_cast<size_t>(
            std::lower_bound(keys.begin() + static_cast<long>(pos),
                             keys.end(), probe) -
            keys.begin());
        for (IntersectStrategy strategy : kStrategies) {
          EXPECT_EQ(kernel->seek(keys.data(), pos, n, probe, strategy),
                    expected)
              << SimdLevelName(kernel->level) << " "
              << IntersectStrategyName(strategy) << " n=" << n
              << " pos=" << pos << " probe=" << probe;
        }
      }
    }
  }
}

// Drives one full drain (resuming across capacity exhaustion) and
// returns the produced keys plus the seek count.
struct DrainResult {
  std::vector<int64_t> keys;
  int64_t seeks = 0;
  std::vector<size_t> final_positions;
};

DrainResult RunDrain(const IntersectKernel& kernel,
                     const std::vector<std::vector<int64_t>>& lists,
                     IntersectStrategy strategy, bool has_hi, int64_t hi,
                     size_t cap) {
  std::vector<KeyCursor> cursors;
  for (const auto& list : lists) {
    cursors.push_back(KeyCursor{list.data(), 0, list.size()});
  }
  DrainResult result;
  std::vector<int64_t> buffer(cap);
  bool first = true;
  bool done = false;
  while (!done) {
    size_t produced = kernel.drain(cursors.data(), cursors.size(), strategy,
                                   first, has_hi, hi, buffer.data(), cap,
                                   &result.seeks, &done);
    first = false;
    result.keys.insert(result.keys.end(), buffer.begin(),
                       buffer.begin() + static_cast<long>(produced));
  }
  for (const KeyCursor& c : cursors) result.final_positions.push_back(c.pos);
  return result;
}

std::vector<int64_t> OracleIntersection(
    const std::vector<std::vector<int64_t>>& lists, bool has_hi, int64_t hi) {
  std::vector<int64_t> acc = lists[0];
  for (size_t i = 1; i < lists.size(); ++i) {
    std::vector<int64_t> next;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    acc = std::move(next);
  }
  if (has_hi) {
    acc.erase(std::lower_bound(acc.begin(), acc.end(), hi), acc.end());
  }
  return acc;
}

TEST(IntersectKernelTest, DrainMatchesSetIntersectionOracle) {
  std::mt19937 rng(1234);
  const IntersectKernel& scalar = *IntersectKernelFor(SimdLevel::kScalar);
  struct Shape {
    size_t ways;
    std::vector<size_t> sizes;
    int64_t universe;
  };
  const Shape shapes[] = {
      {2, {0, 10}, 50},       // one side empty
      {2, {12, 12}, 24},      // dense, near-total overlap
      {2, {8, 300}, 2000},    // skewed: gallop territory
      {2, {40, 45}, 90},      // near-equal: merge territory
      {3, {30, 40, 50}, 120},  // 3-way
      {4, {15, 20, 25, 30}, 60},
  };
  for (const Shape& shape : shapes) {
    for (size_t rep = 0; rep < 6; ++rep) {
      std::vector<std::vector<int64_t>> lists;
      for (size_t w = 0; w < shape.ways; ++w) {
        lists.push_back(
            RandomSortedKeys(&rng, shape.sizes[w], shape.universe));
      }
      // Disjoint-universe variant every third rep: zero overlap.
      if (rep % 3 == 2 && shape.ways == 2 && !lists[0].empty()) {
        for (auto& key : lists[1]) key += shape.universe + 10;
        std::sort(lists[1].begin(), lists[1].end());
      }
      for (bool has_hi : {false, true}) {
        int64_t hi = has_hi ? shape.universe / 2 : 0;
        std::vector<int64_t> expected =
            OracleIntersection(lists, has_hi, hi);
        for (IntersectStrategy strategy : kStrategies) {
          // Capacity 1 forces a resume per key; 3 and 1024 cover
          // mid-drain and single-shot paths.
          for (size_t cap : {size_t{1}, size_t{3}, size_t{1024}}) {
            DrainResult reference = RunDrain(scalar, lists, strategy,
                                             has_hi, hi, cap);
            EXPECT_EQ(reference.keys, expected)
                << "scalar oracle mismatch ways=" << shape.ways;
            for (const IntersectKernel* kernel : CompiledKernels()) {
              DrainResult got =
                  RunDrain(*kernel, lists, strategy, has_hi, hi, cap);
              EXPECT_EQ(got.keys, expected)
                  << SimdLevelName(kernel->level) << " "
                  << IntersectStrategyName(strategy) << " cap=" << cap;
              // The counter-exactness contract: identical seek counts
              // and final cursor positions across every variant.
              EXPECT_EQ(got.seeks, reference.seeks)
                  << SimdLevelName(kernel->level) << " "
                  << IntersectStrategyName(strategy) << " cap=" << cap;
              EXPECT_EQ(got.final_positions, reference.final_positions)
                  << SimdLevelName(kernel->level);
            }
          }
        }
      }
    }
  }
}

TEST(IntersectKernelTest, StrategySelectionFollowsTheSkewRatio) {
  // 2-way near-equal goes merge; skew beyond the ratio, or 3+ ways,
  // goes gallop.
  EXPECT_EQ(ChooseIntersectStrategy(2, 100, 100), IntersectStrategy::kMerge);
  EXPECT_EQ(ChooseIntersectStrategy(2, 100, 100 * kMergeSkewRatio),
            IntersectStrategy::kMerge);
  EXPECT_EQ(ChooseIntersectStrategy(2, 100, 100 * kMergeSkewRatio + 1),
            IntersectStrategy::kGallop);
  EXPECT_EQ(ChooseIntersectStrategy(3, 100, 100), IntersectStrategy::kGallop);
  EXPECT_EQ(ChooseIntersectStrategy(2, 0, 50), IntersectStrategy::kGallop);
}

TEST(IntersectKernelTest, DispatchOverrideClampsToDetectedLevel) {
  ClearSimdDispatchOverride();
  SimdLevel detected = DetectedSimdLevel();

  SetSimdDispatchOverride(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  EXPECT_EQ(ActiveIntersectKernel().level, SimdLevel::kScalar);

  // Requesting above the hardware clamps down, never up.
  SetSimdDispatchOverride(SimdLevel::kAvx2);
  EXPECT_EQ(ActiveSimdLevel(), detected);
  EXPECT_LE(static_cast<int>(ActiveIntersectKernel().level),
            static_cast<int>(detected));

  // Clearing restores environment/detection policy, still <= detected.
  ClearSimdDispatchOverride();
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(detected));
}

TEST(IntersectKernelTest, SimdLevelNamesRoundTrip) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
    SimdLevel parsed = SimdLevel::kScalar;
    EXPECT_TRUE(ParseSimdLevelName(SimdLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  SimdLevel parsed = SimdLevel::kAvx2;
  EXPECT_FALSE(ParseSimdLevelName("bogus", &parsed));
  EXPECT_EQ(parsed, SimdLevel::kAvx2);  // untouched on failure
}

}  // namespace
}  // namespace xjoin
