#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "relational/operators.h"
#include "tests/test_util.h"
#include "twigjoin/naive_twig.h"
#include "twigjoin/structural_join.h"
#include "twigjoin/twig_matchers.h"
#include "xml/node_index.h"
#include "xml/parser.h"

namespace xjoin {
namespace {

TEST(NaiveTwigTest, SimplePath) {
  auto doc = ParseXml("<a><b><c/></b><c/></a>");
  ASSERT_TRUE(doc.ok());
  auto twig = Twig::Parse("a//c");
  ASSERT_TRUE(twig.ok());
  auto matches = MatchTwigNaive(*doc, *twig);
  EXPECT_EQ(matches.size(), 2u);  // both c's are descendants of a
  for (const auto& m : matches) EXPECT_TRUE(IsValidMatch(*doc, *twig, m));
}

TEST(NaiveTwigTest, ChildVsDescendant) {
  auto doc = ParseXml("<a><b><c/></b><c/></a>");
  ASSERT_TRUE(doc.ok());
  auto twig = Twig::Parse("a/c");
  auto matches = MatchTwigNaive(*doc, *twig);
  EXPECT_EQ(matches.size(), 1u);  // only the direct child
}

TEST(NaiveTwigTest, WildcardTag) {
  auto doc = ParseXml("<a><b/><c/></a>");
  auto twig = Twig::Parse("a/*");
  auto matches = MatchTwigNaive(*doc, *twig);
  EXPECT_EQ(matches.size(), 2u);
}

TEST(NaiveTwigTest, LimitStopsEarly) {
  auto doc = ParseXml("<a><b/><b/><b/></a>");
  auto twig = Twig::Parse("a/b");
  EXPECT_EQ(MatchTwigNaive(*doc, *twig, 2).size(), 2u);
}

TEST(NaiveTwigTest, AbsentTagNoMatches) {
  auto doc = ParseXml("<a><b/></a>");
  auto twig = Twig::Parse("a/zzz");
  EXPECT_TRUE(MatchTwigNaive(*doc, *twig).empty());
}

TEST(IsValidMatchTest, RejectsBadBindings) {
  auto doc = ParseXml("<a><b/></a>");
  auto twig = Twig::Parse("a/b");
  EXPECT_TRUE(IsValidMatch(*doc, *twig, {0, 1}));
  EXPECT_FALSE(IsValidMatch(*doc, *twig, {1, 0}));
  EXPECT_FALSE(IsValidMatch(*doc, *twig, {0}));
  EXPECT_FALSE(IsValidMatch(*doc, *twig, {0, 5}));
}

TEST(StructuralJoinTest, AncestorDescendantPairs) {
  auto doc = ParseXml("<a><a><b/></a><b/></a>");
  ASSERT_TRUE(doc.ok());
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto a_nodes = index.NodesByTag(doc->LookupTag("a"));
  auto b_nodes = index.NodesByTag(doc->LookupTag("b"));
  auto ad = StructuralJoin(*doc, a_nodes, b_nodes, TwigAxis::kDescendant);
  // outer a contains both b's; inner a contains the first b.
  EXPECT_EQ(ad.size(), 3u);
  auto pc = StructuralJoin(*doc, a_nodes, b_nodes, TwigAxis::kChild);
  EXPECT_EQ(pc.size(), 2u);
}

TEST(StructuralJoinTest, EmptyInputs) {
  auto doc = ParseXml("<a/>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  EXPECT_TRUE(StructuralJoin(*doc, {}, {0}, TwigAxis::kDescendant).empty());
  EXPECT_TRUE(StructuralJoin(*doc, {0}, {}, TwigAxis::kDescendant).empty());
}

// Property: StructuralJoin equals the quadratic reference on random
// documents, for both axes.
class StructuralJoinProperty : public ::testing::TestWithParam<int> {};

TEST_P(StructuralJoinProperty, MatchesBruteForce) {
  Rng rng(6000 + static_cast<uint64_t>(GetParam()));
  auto doc = testing::RandomDocument(&rng, 2 + rng.NextBounded(50),
                                     {"a", "b"}, 3);
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(doc.get(), &dict);
  for (TwigAxis axis : {TwigAxis::kDescendant, TwigAxis::kChild}) {
    for (int32_t t1 = 0; t1 < doc->tag_dict().size(); ++t1) {
      for (int32_t t2 = 0; t2 < doc->tag_dict().size(); ++t2) {
        auto fast = StructuralJoin(*doc, index.NodesByTag(t1),
                                   index.NodesByTag(t2), axis);
        std::vector<NodePair> slow;
        for (NodeId a : index.NodesByTag(t1)) {
          for (NodeId d : index.NodesByTag(t2)) {
            bool related = axis == TwigAxis::kChild ? doc->IsParent(a, d)
                                                    : doc->IsAncestor(a, d);
            if (related) slow.emplace_back(a, d);
          }
        }
        std::sort(slow.begin(), slow.end(),
                  [](const NodePair& x, const NodePair& y) {
                    return x.second != y.second ? x.second < y.second
                                                : x.first < y.first;
                  });
        EXPECT_EQ(fast, slow);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, StructuralJoinProperty,
                         ::testing::Range(0, 15));

// Differential: both fast matchers equal the naive oracle on random
// documents and twigs.
class TwigMatcherProperty : public ::testing::TestWithParam<int> {};

TEST_P(TwigMatcherProperty, FastMatchersEqualNaive) {
  Rng rng(7000 + static_cast<uint64_t>(GetParam()));
  std::vector<std::string> tags = {"a", "b", "c"};
  auto doc = testing::RandomDocument(&rng, 2 + rng.NextBounded(35), tags, 3);
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(doc.get(), &dict);
  Twig twig = testing::RandomTwig(&rng, 1 + rng.NextBounded(5), tags);

  auto expected = MatchesToRelation(twig, MatchTwigNaive(*doc, twig));
  ASSERT_TRUE(expected.ok());
  expected->SortAndDedup();

  Metrics m1, m2;
  auto plan = MatchTwigStructuralPlan(*doc, index, twig, &m1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto plan_proj = Project(*plan, expected->schema().attributes());
  ASSERT_TRUE(plan_proj.ok());
  EXPECT_TRUE(RelationsEqualAsSets(*plan_proj, *expected))
      << "structural plan diverged on twig " << twig.ToString();

  auto pathstack = MatchTwigPathStack(*doc, index, twig, &m2);
  ASSERT_TRUE(pathstack.ok()) << pathstack.status().ToString();
  auto ps_proj = Project(*pathstack, expected->schema().attributes());
  ASSERT_TRUE(ps_proj.ok());
  EXPECT_TRUE(RelationsEqualAsSets(*ps_proj, *expected))
      << "pathstack diverged on twig " << twig.ToString();
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, TwigMatcherProperty,
                         ::testing::Range(0, 60));

TEST(MatchersConversionTest, RelationRoundTrip) {
  auto doc = ParseXml("<a><b/><b/></a>");
  auto twig = Twig::Parse("a/b");
  auto matches = MatchTwigNaive(*doc, *twig);
  auto rel = MatchesToRelation(*twig, matches);
  ASSERT_TRUE(rel.ok());
  auto back = RelationToMatches(*twig, *rel);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, matches);
}

TEST(MatchersTest, SingleNodeTwig) {
  auto doc = ParseXml("<a><b/><b/></a>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("b");
  auto rel = MatchTwigStructuralPlan(*doc, index, *twig);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 2u);
  auto rel2 = MatchTwigPathStack(*doc, index, *twig);
  ASSERT_TRUE(rel2.ok());
  EXPECT_EQ(rel2->num_rows(), 2u);
}

TEST(MatchersTest, PathStackRecordsPathSolutionBlowup) {
  // Document where path solutions vastly exceed twig matches:
  // a's with b-children but no c-children produce (a,b) path solutions
  // that die in the merge.
  std::string xml = "<root>";
  for (int i = 0; i < 10; ++i) xml += "<a><b/></a>";
  xml += "<a><b/><c/></a></root>";
  auto doc = ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a[b]/c");
  Metrics m;
  auto rel = MatchTwigPathStack(*doc, index, *twig, &m);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 1u);
  EXPECT_GE(m.Get("twig_path.path_solutions"), 11);  // 11 (a,b) + 1 (a,c)
}

}  // namespace
}  // namespace xjoin
