// Tests for the sharded generic-join executor and the TrieIterator
// Clone() contract: sharded runs must be byte-identical to serial runs
// on every workload, and every iterator implementation must produce
// root-positioned, independent clones.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/decompose.h"
#include "core/generic_join.h"
#include "core/virtual_relation.h"
#include "core/xjoin.h"
#include "relational/trie.h"
#include "tests/test_util.h"
#include "workload/adversarial.h"
#include "workload/paper_example.h"
#include "workload/xmark.h"
#include "xml/parser.h"

namespace xjoin {
namespace {

// Byte-identical: same schema, same rows, same row order.
void ExpectByteIdentical(const Relation& serial, const Relation& sharded) {
  ASSERT_EQ(serial.schema().attributes(), sharded.schema().attributes());
  ASSERT_EQ(serial.num_rows(), sharded.num_rows());
  EXPECT_EQ(serial.ToTuples(), sharded.ToTuples());
}

// Depth-first enumeration of every tuple below the iterator's current
// position (must be at the virtual root for a full enumeration).
std::vector<Tuple> EnumerateIterator(TrieIterator* it) {
  std::vector<Tuple> out;
  Tuple current(static_cast<size_t>(it->arity()));
  auto recurse = [&](auto&& self) -> void {
    it->Open();
    while (!it->AtEnd()) {
      current[static_cast<size_t>(it->depth())] = it->Key();
      if (it->depth() + 1 == it->arity()) {
        out.push_back(current);
      } else {
        self(self);
      }
      it->Next();
    }
    it->Up();
  };
  recurse(recurse);
  return out;
}

// Triangle join fixture R(A,B) ⋈ S(B,C) ⋈ T(A,C) over random data big
// enough that every shard count below gets a non-trivial key slice.
struct TriangleFixture {
  std::optional<RelationTrie> tr, ts, tt;
  std::unique_ptr<TrieIterator> ir, is, it;

  explicit TriangleFixture(int n) {
    auto mk = [](std::vector<Tuple> t, std::vector<std::string> attrs) {
      auto s = Schema::Make(attrs);
      return *Relation::FromTuples(*s, std::move(t));
    };
    std::vector<Tuple> r_rows, s_rows, t_rows;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if ((i * 7 + j * 3) % 5 == 0) r_rows.push_back({i, j});
        if ((i * 5 + j * 2) % 4 == 0) s_rows.push_back({i, j});
        if ((i * 3 + j * 11) % 6 == 0) t_rows.push_back({i, j});
      }
    }
    tr = *RelationTrie::Build(mk(r_rows, {"A", "B"}), {"A", "B"});
    ts = *RelationTrie::Build(mk(s_rows, {"B", "C"}), {"B", "C"});
    tt = *RelationTrie::Build(mk(t_rows, {"A", "C"}), {"A", "C"});
    ir = tr->NewIterator();
    is = ts->NewIterator();
    it = tt->NewIterator();
  }

  std::vector<JoinInput> Inputs() {
    return {{"R", {"A", "B"}, ir.get()},
            {"S", {"B", "C"}, is.get()},
            {"T", {"A", "C"}, it.get()}};
  }
};

TEST(ShardedGenericJoinTest, ShardCountsMatchSerialByteForByte) {
  TriangleFixture fx(20);
  GenericJoinOptions serial_opts;
  serial_opts.attribute_order = {"A", "B", "C"};
  auto serial = GenericJoin(fx.Inputs(), serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_GT(serial->num_rows(), 0u);

  for (int shards : {2, 3, 7, 16}) {
    for (int threads : {1, 4}) {
      GenericJoinOptions opts = serial_opts;
      opts.num_threads = threads;
      opts.num_shards = shards;
      auto sharded = GenericJoin(fx.Inputs(), opts);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      ExpectByteIdentical(*serial, *sharded);
    }
  }
}

TEST(ShardedGenericJoinTest, BindingCountersEqualSerialCounters) {
  TriangleFixture fx(20);
  GenericJoinOptions opts;
  opts.attribute_order = {"A", "B", "C"};
  Metrics serial_m;
  opts.metrics = &serial_m;
  ASSERT_TRUE(GenericJoin(fx.Inputs(), opts).ok());

  Metrics sharded_m;
  opts.metrics = &sharded_m;
  opts.num_threads = 4;
  ASSERT_TRUE(GenericJoin(fx.Inputs(), opts).ok());

  // Per-level binding counts are exact sums over shards.
  for (int d = 0; d < 3; ++d) {
    std::string name = "gj.level" + std::to_string(d) + ".bindings";
    EXPECT_EQ(sharded_m.Get(name), serial_m.Get(name)) << name;
  }
  EXPECT_EQ(sharded_m.Get("gj.total_intermediate"),
            serial_m.Get("gj.total_intermediate"));
  EXPECT_EQ(sharded_m.Get("gj.output"), serial_m.Get("gj.output"));
  EXPECT_GE(sharded_m.Get("gj.shards"), 2);
  EXPECT_GT(sharded_m.Get("gj.plan_seeks"), 0);
}

TEST(ShardedGenericJoinTest, MoreShardsThanKeysDegradesGracefully) {
  TriangleFixture fx(6);
  GenericJoinOptions serial_opts;
  serial_opts.attribute_order = {"A", "B", "C"};
  auto serial = GenericJoin(fx.Inputs(), serial_opts);
  ASSERT_TRUE(serial.ok());

  GenericJoinOptions opts = serial_opts;
  opts.num_threads = 4;
  opts.num_shards = 1000;  // far more than distinct level-0 keys
  auto sharded = GenericJoin(fx.Inputs(), opts);
  ASSERT_TRUE(sharded.ok());
  ExpectByteIdentical(*serial, *sharded);
}

// A tiny level-0 domain must shard on the level-0 x level-1 composite
// prefix instead of degenerating to ~1 shard — and stay byte-identical.
TEST(ShardedGenericJoinTest, CompositePrefixShardingMatchesSerial) {
  // R(A,B) x S(B,C) x T(A,C) with only two distinct A values but a wide
  // B domain: level-0 sharding could use at most 2 shards.
  auto mk = [](std::vector<Tuple> t, std::vector<std::string> attrs) {
    auto s = Schema::Make(attrs);
    return *Relation::FromTuples(*s, std::move(t));
  };
  std::vector<Tuple> r_rows, s_rows, t_rows;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 40; ++b) {
      if ((a * 7 + b) % 3 != 0) r_rows.push_back({a, b});
    }
  }
  for (int b = 0; b < 40; ++b) {
    for (int c = 0; c < 6; ++c) {
      if ((b + c) % 2 == 0) s_rows.push_back({b, c});
    }
  }
  for (int a = 0; a < 2; ++a) {
    for (int c = 0; c < 6; ++c) t_rows.push_back({a, c});
  }
  auto tr = RelationTrie::Build(mk(r_rows, {"A", "B"}), {"A", "B"});
  auto ts = RelationTrie::Build(mk(s_rows, {"B", "C"}), {"B", "C"});
  auto tt = RelationTrie::Build(mk(t_rows, {"A", "C"}), {"A", "C"});
  auto ir = tr->NewIterator();
  auto is = ts->NewIterator();
  auto it = tt->NewIterator();
  std::vector<JoinInput> inputs{{"R", {"A", "B"}, ir.get()},
                                {"S", {"B", "C"}, is.get()},
                                {"T", {"A", "C"}, it.get()}};

  GenericJoinOptions serial_opts;
  serial_opts.attribute_order = {"A", "B", "C"};
  auto serial = GenericJoin(inputs, serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_GT(serial->num_rows(), 0u);

  for (int shards : {4, 8, 16}) {
    for (int threads : {1, 4}) {
      GenericJoinOptions opts = serial_opts;
      opts.num_threads = threads;
      opts.num_shards = shards;
      Metrics m;
      opts.metrics = &m;
      auto sharded = GenericJoin(inputs, opts);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      ExpectByteIdentical(*serial, *sharded);
      // The driver really did go deeper than level 0, with more shards
      // than the 2-key level-0 domain would allow.
      EXPECT_EQ(m.Get("gj.shard_depth"), 2);
      EXPECT_GT(m.Get("gj.shards"), 2);
      // Output and deeper-level counters stay exact under composite
      // sharding (level 0 may recount boundary keys).
      EXPECT_EQ(m.Get("gj.output"),
                static_cast<int64_t>(serial->num_rows()));
    }
  }
}

TEST(ShardedGenericJoinTest, EmptyIntersectionYieldsEmptyResult) {
  auto mk = [](std::vector<Tuple> t, std::vector<std::string> attrs) {
    auto s = Schema::Make(attrs);
    return *Relation::FromTuples(*s, std::move(t));
  };
  Relation r = mk({{0, 1}, {1, 2}}, {"A", "B"});
  Relation t = mk({{5, 7}, {6, 8}}, {"A", "C"});  // disjoint A domain
  auto tr = RelationTrie::Build(r, {"A", "B"});
  auto tt = RelationTrie::Build(t, {"A", "C"});
  auto ir = tr->NewIterator();
  auto it = tt->NewIterator();
  GenericJoinOptions opts;
  opts.attribute_order = {"A", "B", "C"};
  opts.num_threads = 4;
  auto result = GenericJoin(
      {{"R", {"A", "B"}, ir.get()}, {"T", {"A", "C"}, it.get()}}, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST(ShardedGenericJoinTest, ShardedRunIsDeterministic) {
  TriangleFixture fx(20);
  GenericJoinOptions opts;
  opts.attribute_order = {"A", "B", "C"};
  opts.num_threads = 4;
  auto a = GenericJoin(fx.Inputs(), opts);
  auto b = GenericJoin(fx.Inputs(), opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectByteIdentical(*a, *b);
}

// --- XJoin-level equivalence on the seed workloads -----------------------

void ExpectShardedXJoinMatchesSerial(const MultiModelQuery& query,
                                     XJoinOptions base) {
  base.num_threads = 1;
  base.num_shards = 0;
  auto serial = ExecuteXJoin(query, base);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {2, 4}) {
    for (int shards : {0, 3}) {
      XJoinOptions opts = base;
      opts.num_threads = threads;
      opts.num_shards = shards;
      auto sharded = ExecuteXJoin(query, opts);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      ExpectByteIdentical(*serial, *sharded);
    }
  }
}

TEST(ShardedXJoinTest, PaperExampleWorkloads) {
  for (PaperSchema schema :
       {PaperSchema::kExample33, PaperSchema::kExample34}) {
    for (PaperDataMode mode :
         {PaperDataMode::kAdversarial, PaperDataMode::kRandom}) {
      PaperInstance inst = MakePaperInstance(5, schema, mode);
      MultiModelQuery q = inst.Query();
      ExpectShardedXJoinMatchesSerial(q, XJoinOptions{});
    }
  }
}

TEST(ShardedXJoinTest, PaperExampleWithPruningAndMaterializedPaths) {
  PaperInstance inst = MakePaperInstance(5, PaperSchema::kExample34,
                                         PaperDataMode::kRandom);
  MultiModelQuery q = inst.Query();
  XJoinOptions pruning;
  pruning.structural_pruning = true;
  ExpectShardedXJoinMatchesSerial(q, pruning);
  XJoinOptions materialized;
  materialized.materialize_paths = true;
  ExpectShardedXJoinMatchesSerial(q, materialized);
}

TEST(ShardedXJoinTest, AdversarialAgmTightWorkload) {
  auto inst = MakeAgmTightInstance({{"A", "B"}, {"B", "C"}, {"C", "A"}}, 64);
  ASSERT_TRUE(inst.ok());
  MultiModelQuery q;
  for (size_t i = 0; i < inst->relations.size(); ++i) {
    q.relations.push_back(
        {"R" + std::to_string(i + 1), inst->relations[i].get()});
  }
  ExpectShardedXJoinMatchesSerial(q, XJoinOptions{});
}

TEST(ShardedXJoinTest, XMarkWorkloads) {
  XMarkOptions opts;
  opts.num_items = 40;
  opts.num_persons = 25;
  opts.num_open_auctions = 30;
  opts.num_closed_auctions = 25;
  XMarkInstance inst = MakeXMark(opts);
  for (MultiModelQuery q :
       {inst.ClosedAuctionQuery(), inst.OpenAuctionQuery()}) {
    ExpectShardedXJoinMatchesSerial(q, XJoinOptions{});
  }
}

// --- Clone() conformance -------------------------------------------------

// The contract every implementation must satisfy: a clone starts at the
// virtual root, enumerates the full trie, and leaves the original's
// cursor untouched (and vice versa).
void CheckCloneConformance(TrieIterator* original) {
  // A clone of a root-positioned iterator enumerates the same tuples.
  std::vector<Tuple> reference = EnumerateIterator(original);
  auto fresh = original->Clone();
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->arity(), original->arity());
  EXPECT_EQ(fresh->depth(), -1);
  EXPECT_EQ(EnumerateIterator(fresh.get()), reference);

  if (reference.empty()) return;

  // A clone taken mid-walk is root-positioned and unaffected by (and does
  // not affect) the original's ongoing iteration.
  original->Open();
  ASSERT_FALSE(original->AtEnd());
  int64_t key_before = original->Key();
  auto mid = original->Clone();
  EXPECT_EQ(mid->depth(), -1);
  EXPECT_EQ(EnumerateIterator(mid.get()), reference);
  EXPECT_EQ(original->depth(), 0);
  EXPECT_EQ(original->Key(), key_before);
  original->Up();
  EXPECT_EQ(EnumerateIterator(original), reference);

  // Clones of clones keep the contract.
  auto second = mid->Clone();
  EXPECT_EQ(EnumerateIterator(second.get()), reference);
}

TEST(CloneConformanceTest, RelationTrieIterator) {
  auto schema = Schema::Make({"A", "B", "C"});
  Relation rel(*schema);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 4; ++j) rel.AppendRow({i, j, (i + j) % 3});
  }
  auto trie = RelationTrie::Build(rel, {"A", "B", "C"});
  ASSERT_TRUE(trie.ok());
  auto it = trie->NewIterator();
  CheckCloneConformance(it.get());
}

TEST(CloneConformanceTest, RelationTrieIteratorEmptyRelation) {
  auto schema = Schema::Make({"A"});
  Relation rel(*schema);
  auto trie = RelationTrie::Build(rel, {"A"});
  ASSERT_TRUE(trie.ok());
  auto it = trie->NewIterator();
  CheckCloneConformance(it.get());
}

TEST(CloneConformanceTest, LazyPathTrieIterator) {
  auto doc = ParseXml(
      "<r><a>1<b>x</b><b>y</b></a><a>2<b>x</b></a><a>3<b>z</b></a></r>");
  ASSERT_TRUE(doc.ok());
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a/b");
  ASSERT_TRUE(twig.ok());
  auto d = DecomposeTwig(*twig);
  ASSERT_TRUE(d.ok());
  auto rel = PathRelation::Make(*twig, d->paths[0], &index);
  ASSERT_TRUE(rel.ok());
  auto it = rel->NewLazyIterator();
  CheckCloneConformance(it.get());
}

}  // namespace
}  // namespace xjoin
